(* hacsh — an interactive shell over a HAC file system.

   The file system lives in memory for the session.  Ordinary UNIX-style
   commands (cd/ls/mkdir/mv/rm/cat/write/chmod) work as everywhere, and the
   s* family manipulates queries, semantic directories and mounts — type
   `help` for the list.  All logic lives in the Hac_shell library; this
   binary is the stdin/stdout loop.

   Scripted use:  echo "ls /" | hacsh      or      hacsh -c "ls /; help" *)

module Shell = Hac_shell.Shell

let repl s ~interactive =
  let buf = Buffer.create 256 in
  let rec loop () =
    if interactive then begin
      print_string (Shell.cwd s ^ " $ ");
      flush stdout
    end;
    match input_line stdin with
    | line ->
        Buffer.clear buf;
        let continue = Shell.run s buf line in
        print_string (Buffer.contents buf);
        if continue then loop ()
    | exception End_of_file -> ()
  in
  loop ()

let main demo command =
  let s = Shell.make ~demo () in
  (match command with
  | Some c -> print_string (Shell.run_string s c)
  | None -> repl s ~interactive:(Unix.isatty Unix.stdin));
  0

open Cmdliner

let demo_flag = Arg.(value & flag & info [ "demo" ] ~doc:"Preload a small demo world.")

let command_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "c" ] ~docv:"COMMANDS" ~doc:"Run semicolon-separated commands and exit.")

let cmd =
  let doc = "interactive shell over a HAC (Hierarchy And Content) file system" in
  Cmd.v (Cmd.info "hacsh" ~doc) Term.(const main $ demo_flag $ command_opt)

let () = exit (Cmd.eval' cmd)
