(* Tests for the per-process descriptor tables and the shared attribute
   cache — the paper's per-process shared-memory structures. *)

module Fs = Hac_vfs.Fs
module Fd = Hac_vfs.Fd_table
module Cache = Hac_vfs.Attr_cache
module Errno = Hac_vfs.Errno
module Event = Hac_vfs.Event

let check_str = Alcotest.(check string)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let expect_errno code f =
  match f () with
  | _ -> Alcotest.failf "expected %s" (Errno.to_string code)
  | exception Errno.Error (got, _) ->
      Alcotest.check
        (Alcotest.testable Errno.pp ( = ))
        ("raises " ^ Errno.to_string code)
        code got

(* -- fd table ---------------------------------------------------------------- *)

let test_open_read_close () =
  let fs = Fs.create () in
  Fs.write_file fs "/f" "hello world";
  let t = Fd.create fs in
  let fd = Fd.openfile t Fd.Read_only "/f" in
  check_str "first read" "hello" (Fd.read t fd 5);
  check_int "position" 5 (Fd.position t fd);
  check_str "rest" " world" (Fd.read_all t fd);
  check_str "eof" "" (Fd.read t fd 10);
  Fd.close t fd;
  expect_errno Errno.EBADF (fun () -> Fd.read t fd 1)

let test_write_modes () =
  let fs = Fs.create () in
  let t = Fd.create fs in
  let fd = Fd.openfile t ~create:true Fd.Read_write "/new" in
  check_int "written" 3 (Fd.write t fd "abc");
  ignore (Fd.seek t fd 0);
  check_str "readback" "abc" (Fd.read t fd 3);
  Fd.close t fd;
  let ro = Fd.openfile t Fd.Read_only "/new" in
  expect_errno Errno.EBADF (fun () -> Fd.write t ro "x");
  Fd.close t ro;
  let wo = Fd.openfile t Fd.Write_only "/new" in
  expect_errno Errno.EBADF (fun () -> Fd.read t wo 1);
  Fd.close t wo

let test_open_errors () =
  let fs = Fs.create () in
  let t = Fd.create fs in
  expect_errno Errno.ENOENT (fun () -> Fd.openfile t Fd.Read_only "/missing");
  Fs.mkdir fs "/d";
  expect_errno Errno.EISDIR (fun () -> Fd.openfile t Fd.Read_only "/d")

let test_fd_survives_rename () =
  let fs = Fs.create () in
  Fs.write_file fs "/f" "stable";
  let t = Fd.create fs in
  let fd = Fd.openfile t Fd.Read_only "/f" in
  Fs.rename fs ~src:"/f" ~dst:"/g";
  check_str "reads after rename" "stable" (Fd.read_all t fd);
  Fd.close t fd

let test_fd_table_growth () =
  let fs = Fs.create () in
  Fs.write_file fs "/f" "x";
  let t = Fd.create fs in
  let fds = List.init 200 (fun _ -> Fd.openfile t Fd.Read_only "/f") in
  check_int "all open" 200 (Fd.open_count t);
  List.iter (Fd.close t) fds;
  check_int "all closed" 0 (Fd.open_count t);
  check_bool "bytes positive" true (Fd.approx_bytes t > 0)

let test_seek_and_sparse_write () =
  let fs = Fs.create () in
  let t = Fd.create fs in
  let fd = Fd.openfile t ~create:true Fd.Read_write "/s" in
  ignore (Fd.seek t fd 4);
  ignore (Fd.write t fd "X");
  check_int "size includes gap" 5 (Fd.size t fd);
  expect_errno Errno.EINVAL (fun () -> Fd.seek t fd (-1));
  Fd.close t fd

(* -- attribute cache ----------------------------------------------------------- *)

let test_cache_hits () =
  let fs = Fs.create () in
  Fs.write_file fs "/f" "abc";
  let c = Cache.create fs in
  let s1 = Cache.stat c "/f" in
  let s2 = Cache.stat c "/f" in
  check_bool "same answer" true (s1 = s2);
  check_int "one miss" 1 (Cache.misses c);
  check_int "one hit" 1 (Cache.hits c)

let test_cache_invalidation_on_write () =
  let fs = Fs.create () in
  Fs.write_file fs "/f" "abc";
  let c = Cache.create fs in
  let before = Cache.stat c "/f" in
  Fs.write_file fs "/f" "abcdef";
  let after = Cache.stat c "/f" in
  check_int "size tracked" 6 after.Fs.st_size;
  check_bool "stat changed" true (before.Fs.st_size <> after.Fs.st_size)

let test_cache_invalidation_on_rename () =
  let fs = Fs.create () in
  Fs.mkdir fs "/d";
  Fs.write_file fs "/d/f" "abc";
  let c = Cache.create fs in
  ignore (Cache.stat c "/d/f");
  Fs.rename fs ~src:"/d" ~dst:"/e";
  expect_errno Errno.ENOENT (fun () -> Cache.stat c "/d/f");
  check_int "new path" 3 (Cache.stat c "/e/f").Fs.st_size

let test_cache_lstat_vs_stat () =
  let fs = Fs.create () in
  Fs.write_file fs "/t" "x";
  Fs.symlink fs ~target:"/t" ~link:"/ln";
  let c = Cache.create fs in
  check_bool "stat follows" true ((Cache.stat c "/ln").Fs.st_kind = Event.File);
  check_bool "lstat does not" true ((Cache.lstat c "/ln").Fs.st_kind = Event.Link)

let test_cache_capacity () =
  let fs = Fs.create () in
  for i = 0 to 49 do
    Fs.write_file fs (Printf.sprintf "/f%d" i) "x"
  done;
  let c = Cache.create ~capacity:10 fs in
  for i = 0 to 49 do
    ignore (Cache.stat c (Printf.sprintf "/f%d" i))
  done;
  check_bool "bounded" true (Cache.entry_count c <= 10)

let test_cache_manual_control () =
  let fs = Fs.create () in
  Fs.write_file fs "/f" "x";
  let c = Cache.create fs in
  ignore (Cache.stat c "/f");
  Cache.invalidate c "/f";
  ignore (Cache.stat c "/f");
  check_int "two misses after invalidate" 2 (Cache.misses c);
  Cache.clear c;
  check_int "cleared" 0 (Cache.entry_count c);
  check_bool "bytes nonneg" true (Cache.approx_bytes c >= 0)

let () =
  Alcotest.run "fd_attr"
    [
      ( "fd_table",
        [
          Alcotest.test_case "open/read/close" `Quick test_open_read_close;
          Alcotest.test_case "write modes" `Quick test_write_modes;
          Alcotest.test_case "open errors" `Quick test_open_errors;
          Alcotest.test_case "survives rename" `Quick test_fd_survives_rename;
          Alcotest.test_case "table growth" `Quick test_fd_table_growth;
          Alcotest.test_case "seek and sparse write" `Quick test_seek_and_sparse_write;
        ] );
      ( "attr_cache",
        [
          Alcotest.test_case "hits" `Quick test_cache_hits;
          Alcotest.test_case "invalidation on write" `Quick test_cache_invalidation_on_write;
          Alcotest.test_case "invalidation on rename" `Quick test_cache_invalidation_on_rename;
          Alcotest.test_case "lstat vs stat" `Quick test_cache_lstat_vs_stat;
          Alcotest.test_case "capacity bound" `Quick test_cache_capacity;
          Alcotest.test_case "manual control" `Quick test_cache_manual_control;
        ] );
    ]
