(* Tests for the VFS permission model (owner/mode/current-user) and its
   interaction with HAC — "HAC does not contain any security and access
   control features of its own; it borrows them from the underlying
   operating system" (section 4). *)

module Fs = Hac_vfs.Fs
module Fd = Hac_vfs.Fd_table
module Errno = Hac_vfs.Errno
module Hac = Hac_core.Hac
module Link = Hac_core.Link

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let expect code f =
  match f () with
  | _ -> Alcotest.failf "expected %s" (Errno.to_string code)
  | exception Errno.Error (got, _) ->
      Alcotest.check (Alcotest.testable Errno.pp ( = )) (Errno.to_string code) code got

(* A world owned by alice (uid 1) with a private and a public area. *)
let alice = 1

let bob = 2

let world () =
  let fs = Fs.create () in
  Fs.set_user fs alice;
  Fs.mkdir fs "/pub";
  Fs.write_file fs "/pub/open.txt" "anyone may read this\n";
  Fs.mkdir fs "/priv";
  Fs.write_file fs "/priv/secret.txt" "alice only\n";
  Fs.chmod fs "/priv" 0o700;
  Fs.chmod fs "/priv/secret.txt" 0o600;
  fs

(* -- ownership and defaults ---------------------------------------------------------- *)

let test_ownership_and_defaults () =
  let fs = world () in
  check_int "file owner" alice (Fs.stat fs "/pub/open.txt").Fs.st_uid;
  check_int "file default mode" 0o666 (Fs.stat fs "/pub/open.txt").Fs.st_mode;
  check_int "dir default mode" 0o777 (Fs.stat fs "/pub").Fs.st_mode;
  check_int "root owned by superuser" 0 (Fs.stat fs "/").Fs.st_uid

let test_world_readable_by_default () =
  let fs = world () in
  Fs.set_user fs bob;
  Alcotest.(check string) "default open" "anyone may read this\n" (Fs.read_file fs "/pub/open.txt");
  Fs.write_file fs "/pub/bobs.txt" "bob can write in open dirs\n";
  check_int "bob owns his file" bob (Fs.stat fs "/pub/bobs.txt").Fs.st_uid

(* -- read/write/execute enforcement --------------------------------------------------- *)

let test_file_read_denied () =
  let fs = world () in
  Fs.set_user fs bob;
  expect Errno.EACCES (fun () -> Fs.read_file fs "/priv/secret.txt")

let test_file_write_denied () =
  let fs = world () in
  Fs.chmod fs "/pub/open.txt" 0o644;
  Fs.set_user fs bob;
  expect Errno.EACCES (fun () -> Fs.write_file fs "/pub/open.txt" "overwrite")

let test_dir_traversal_denied () =
  let fs = world () in
  Fs.set_user fs bob;
  (* /priv is 0o700: even reaching the file fails on the x bit. *)
  expect Errno.EACCES (fun () -> Fs.stat fs "/priv/secret.txt")

let test_dir_listing_denied () =
  let fs = world () in
  Fs.chmod fs "/priv" 0o711 (* x but not r: enter, don't list *);
  Fs.set_user fs bob;
  expect Errno.EACCES (fun () -> Fs.readdir fs "/priv");
  (* ...but a known name can still be stat'ed through the x bit. *)
  check_bool "traverse ok" true (Fs.exists fs "/priv/secret.txt")

let test_create_in_readonly_dir () =
  let fs = world () in
  Fs.chmod fs "/pub" 0o755;
  Fs.set_user fs bob;
  expect Errno.EACCES (fun () -> Fs.write_file fs "/pub/new.txt" "x");
  expect Errno.EACCES (fun () -> Fs.mkdir fs "/pub/sub");
  expect Errno.EACCES (fun () -> Fs.unlink fs "/pub/open.txt");
  expect Errno.EACCES (fun () -> Fs.rename fs ~src:"/pub/open.txt" ~dst:"/pub/renamed")

let test_owner_keeps_access () =
  let fs = world () in
  Alcotest.(check string) "owner reads 0600" "alice only\n" (Fs.read_file fs "/priv/secret.txt");
  Fs.write_file fs "/priv/secret.txt" "updated\n";
  Alcotest.(check string) "owner writes" "updated\n" (Fs.read_file fs "/priv/secret.txt")

let test_superuser_bypasses () =
  let fs = world () in
  Fs.set_user fs 0;
  Alcotest.(check string) "root reads anything" "alice only\n"
    (Fs.read_file fs "/priv/secret.txt");
  Fs.write_file fs "/priv/secret.txt" "root was here\n"

let test_access_call () =
  let fs = world () in
  check_bool "owner rw" true (Fs.access fs "/priv/secret.txt" 6);
  Fs.set_user fs bob;
  check_bool "bob denied" false (Fs.access fs "/priv/secret.txt" 4);
  check_bool "nonexistent false" false (Fs.access fs "/nope" 4);
  check_bool "public ok" true (Fs.access fs "/pub/open.txt" 4)

(* -- chmod / chown rules ---------------------------------------------------------------- *)

let test_chmod_rules () =
  let fs = world () in
  Fs.chmod fs "/pub/open.txt" 0o640;
  check_int "mode set" 0o640 (Fs.stat fs "/pub/open.txt").Fs.st_mode;
  Fs.set_user fs bob;
  expect Errno.EPERM (fun () -> Fs.chmod fs "/pub/open.txt" 0o777)

let test_chown_rules () =
  let fs = world () in
  expect Errno.EPERM (fun () -> Fs.chown fs "/pub/open.txt" bob);
  Fs.set_user fs 0;
  Fs.chown fs "/pub/open.txt" bob;
  check_int "new owner" bob (Fs.stat fs "/pub/open.txt").Fs.st_uid

(* -- descriptor table -------------------------------------------------------------------- *)

let test_fd_open_checks () =
  let fs = world () in
  Fs.chmod fs "/pub/open.txt" 0o644;
  let t = Fd.create fs in
  Fs.set_user fs bob;
  (* Read is allowed, write is not. *)
  let fd = Fd.openfile t Fd.Read_only "/pub/open.txt" in
  Alcotest.(check string) "fd read" "anyone may read this\n" (Fd.read_all t fd);
  Fd.close t fd;
  expect Errno.EACCES (fun () -> Fd.openfile t Fd.Write_only "/pub/open.txt");
  expect Errno.EACCES (fun () -> Fd.openfile t Fd.Read_write "/pub/open.txt")

let test_fd_checks_follow_chmod () =
  let fs = world () in
  let t = Fd.create fs in
  let fd = Fd.openfile t Fd.Read_only "/priv/secret.txt" in
  (* Tightening the mode after open denies subsequent reads (our per-op
     checks are stricter than POSIX's open-time-only semantics). *)
  Fs.chmod fs "/priv/secret.txt" 0o000;
  Fs.set_user fs bob;
  expect Errno.EACCES (fun () -> Fd.read t fd 5);
  Fd.close t fd

(* -- HAC integration ------------------------------------------------------------------------ *)

let hac_world ?auto_sync () =
  let t = Hac.create ?auto_sync () in
  let fs = Hac.fs t in
  Fs.set_user fs alice;
  Hac.mkdir_p t "/docs";
  Hac.write_file t "/docs/open.txt" "shared apple notes\n";
  Hac.write_file t "/docs/secret.txt" "private apple stash\n";
  Fs.chmod fs "/docs/secret.txt" 0o600;
  t

let transient_targets t dir =
  Hac.links t dir
  |> List.filter_map (fun l ->
         if l.Link.cls = Link.Transient then Some (Link.target_key l.Link.target) else None)
  |> List.sort compare

let test_hac_metadata_protected () =
  let t = hac_world ~auto_sync:true () in
  (* The metadata area was created by the library (superuser); users write
     through HAC without ever touching it directly, and HAC's own
     bookkeeping succeeds regardless of the calling user. *)
  Hac.smkdir t "/apples" "apple";
  check_bool "metadata maintained" true (Fs.is_file (Hac.fs t) "/.hac/dirs.log");
  check_int "semdir owned by alice" alice (Fs.stat (Hac.fs t) "/apples").Fs.st_uid

let test_hac_indexing_respects_permissions () =
  (* Lazy mode: alice's writes are still dirty when BOB runs the
     data-consistency pass, so indexing happens under bob's credentials —
     the unreadable file cannot be indexed and never matches. *)
  let t = hac_world () in
  Fs.set_user (Hac.fs t) bob;
  ignore (Hac.reindex t ());
  Hac.smkdir t "/apples" "apple";
  Alcotest.(check (list string))
    "only the readable file" [ "/docs/open.txt" ]
    (transient_targets t "/apples")

let test_hac_indexing_as_owner_sees_all () =
  let t = hac_world () in
  ignore (Hac.reindex t ()) (* still alice *);
  Hac.smkdir t "/apples" "apple";
  Alcotest.(check (list string))
    "owner sees both"
    [ "/docs/open.txt"; "/docs/secret.txt" ]
    (transient_targets t "/apples")

(* -- properties -------------------------------------------------------------------------- *)

(* access(2) must predict exactly whether reads and writes succeed, for any
   owner / mode / acting-user combination. *)
let prop_access_predicts_outcomes =
  let gen =
    QCheck.Gen.(
      quad (int_bound 3) (* owner *) (int_bound 0o777) (* mode *)
        (int_bound 3) (* acting user *) bool (* try write (else read) *))
  in
  QCheck.Test.make ~name:"access() predicts op outcomes" ~count:1000
    (QCheck.make gen ~print:(fun (o, m, u, w) ->
         Printf.sprintf "owner=%d mode=%o user=%d %s" o m u (if w then "write" else "read")))
    (fun (owner, mode, user, try_write) ->
      let fs = Fs.create () in
      Fs.write_file fs "/f" "payload";
      Fs.chown fs "/f" owner;
      Fs.chmod fs "/f" mode;
      Fs.set_user fs user;
      let predicted = Fs.access fs "/f" (if try_write then 2 else 4) in
      let actual =
        match
          if try_write then Fs.write_file fs "/f" "new" else ignore (Fs.read_file fs "/f")
        with
        | () -> true
        | exception Errno.Error (Errno.EACCES, _) -> false
      in
      predicted = actual)

(* Traversal: reaching /d/f requires x on /d for non-owners exactly when the
   other-x bit is clear. *)
let prop_traversal_needs_x =
  let gen = QCheck.Gen.(pair (int_bound 0o777) (int_bound 3)) in
  QCheck.Test.make ~name:"directory traversal needs the x bit" ~count:500
    (QCheck.make gen ~print:(fun (m, u) -> Printf.sprintf "mode=%o user=%d" m u))
    (fun (mode, user) ->
      let fs = Fs.create () in
      Fs.set_user fs 1;
      Fs.mkdir fs "/d";
      Fs.write_file fs "/d/f" "x";
      Fs.chmod fs "/d" mode;
      Fs.set_user fs user;
      let can_x = user = 0 || (if user = 1 then mode lsr 6 else mode) land 1 = 1 in
      let reached =
        match Fs.stat fs "/d/f" with
        | _ -> true
        | exception Errno.Error (Errno.EACCES, _) -> false
      in
      reached = can_x)

let () =
  Alcotest.run "perms"
    [
      ( "ownership",
        [
          Alcotest.test_case "defaults" `Quick test_ownership_and_defaults;
          Alcotest.test_case "world readable by default" `Quick
            test_world_readable_by_default;
        ] );
      ( "enforcement",
        [
          Alcotest.test_case "file read denied" `Quick test_file_read_denied;
          Alcotest.test_case "file write denied" `Quick test_file_write_denied;
          Alcotest.test_case "dir traversal denied" `Quick test_dir_traversal_denied;
          Alcotest.test_case "dir listing denied" `Quick test_dir_listing_denied;
          Alcotest.test_case "create in read-only dir" `Quick test_create_in_readonly_dir;
          Alcotest.test_case "owner keeps access" `Quick test_owner_keeps_access;
          Alcotest.test_case "superuser bypasses" `Quick test_superuser_bypasses;
          Alcotest.test_case "access call" `Quick test_access_call;
        ] );
      ( "chmod/chown",
        [
          Alcotest.test_case "chmod rules" `Quick test_chmod_rules;
          Alcotest.test_case "chown rules" `Quick test_chown_rules;
        ] );
      ( "descriptors",
        [
          Alcotest.test_case "open checks" `Quick test_fd_open_checks;
          Alcotest.test_case "checks follow chmod" `Quick test_fd_checks_follow_chmod;
        ] );
      ( "hac",
        [
          Alcotest.test_case "metadata protected" `Quick test_hac_metadata_protected;
          Alcotest.test_case "indexing respects permissions" `Quick
            test_hac_indexing_respects_permissions;
          Alcotest.test_case "owner indexes everything" `Quick
            test_hac_indexing_as_owner_sees_all;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_access_predicts_outcomes; prop_traversal_needs_x ] );
    ]
