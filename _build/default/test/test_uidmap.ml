(* Tests for the global directory-identifier map — the structure that makes
   queries rename-proof (section 2.5). *)

module Uidmap = Hac_core.Uidmap

let check_int = Alcotest.(check int)

let check_opt_int = Alcotest.(check (option int))

let check_opt_str = Alcotest.(check (option string))

let test_root () =
  let m = Uidmap.create () in
  check_opt_int "root registered" (Some Uidmap.root_uid) (Uidmap.uid_of_path m "/");
  check_opt_str "root path" (Some "/") (Uidmap.path_of_uid m Uidmap.root_uid);
  check_int "count" 1 (Uidmap.count m)

let test_register_stable () =
  let m = Uidmap.create () in
  let a = Uidmap.register m "/a" in
  let a' = Uidmap.register m "/a" in
  check_int "same uid" a a';
  let b = Uidmap.register m "/b" in
  Alcotest.(check bool) "distinct" true (a <> b);
  check_opt_str "lookup back" (Some "/a") (Uidmap.path_of_uid m a)

let test_register_normalizes () =
  let m = Uidmap.create () in
  let a = Uidmap.register m "/a/b/../b/" in
  check_opt_int "normalized key" (Some a) (Uidmap.uid_of_path m "/a/b")

let test_rename_single () =
  let m = Uidmap.create () in
  let a = Uidmap.register m "/old" in
  Uidmap.rename m ~old_path:"/old" ~new_path:"/new";
  check_opt_str "uid follows" (Some "/new") (Uidmap.path_of_uid m a);
  check_opt_int "new path maps" (Some a) (Uidmap.uid_of_path m "/new");
  check_opt_int "old path gone" None (Uidmap.uid_of_path m "/old")

let test_rename_subtree () =
  let m = Uidmap.create () in
  let d = Uidmap.register m "/d" in
  let s = Uidmap.register m "/d/sub" in
  let deep = Uidmap.register m "/d/sub/deep" in
  let other = Uidmap.register m "/dx" in
  Uidmap.rename m ~old_path:"/d" ~new_path:"/e";
  check_opt_str "top" (Some "/e") (Uidmap.path_of_uid m d);
  check_opt_str "mid" (Some "/e/sub") (Uidmap.path_of_uid m s);
  check_opt_str "deep" (Some "/e/sub/deep") (Uidmap.path_of_uid m deep);
  (* Similar-looking sibling is untouched (component-wise prefix). *)
  check_opt_str "sibling untouched" (Some "/dx") (Uidmap.path_of_uid m other)

let test_remove () =
  let m = Uidmap.create () in
  let a = Uidmap.register m "/a" in
  check_opt_int "removed uid returned" (Some a) (Uidmap.remove m "/a");
  check_opt_int "gone" None (Uidmap.uid_of_path m "/a");
  check_opt_str "uid gone" None (Uidmap.path_of_uid m a);
  check_opt_int "double remove" None (Uidmap.remove m "/a")

let test_remove_subtree () =
  let m = Uidmap.create () in
  let d = Uidmap.register m "/d" in
  let s = Uidmap.register m "/d/s" in
  let keep = Uidmap.register m "/k" in
  let removed = List.sort compare (Uidmap.remove_subtree m "/d") in
  Alcotest.(check (list int)) "both removed" (List.sort compare [ d; s ]) removed;
  check_opt_str "outsider kept" (Some "/k") (Uidmap.path_of_uid m keep)

let test_fold_and_bytes () =
  let m = Uidmap.create () in
  ignore (Uidmap.register m "/a");
  ignore (Uidmap.register m "/b");
  let n = Uidmap.fold (fun _ _ acc -> acc + 1) m 0 in
  check_int "fold visits all" 3 n;
  Alcotest.(check bool) "bytes positive" true (Uidmap.approx_bytes m > 0)

let prop_uid_stable_under_renames =
  (* Rename chains never change a directory's uid, and lookups stay
     consistent in both directions. *)
  let gen =
    QCheck.Gen.(list_size (int_range 1 10) (pair (char_range 'a' 'e') (char_range 'a' 'e')))
  in
  QCheck.Test.make ~name:"uids survive rename chains" ~count:300
    (QCheck.make gen ~print:(fun l ->
         String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%c->%c" a b) l)))
    (fun renames ->
      let m = Uidmap.create () in
      let top = Uidmap.register m "/a" in
      let sub = Uidmap.register m "/a/x" in
      List.iter
        (fun (f, t) ->
          let from_p = Printf.sprintf "/%c" f and to_p = Printf.sprintf "/%c" t in
          if
            from_p <> to_p
            && Uidmap.uid_of_path m from_p <> None
            && Uidmap.uid_of_path m to_p = None
          then Uidmap.rename m ~old_path:from_p ~new_path:to_p)
        renames;
      match (Uidmap.path_of_uid m top, Uidmap.path_of_uid m sub) with
      | Some tp, Some sp ->
          Uidmap.uid_of_path m tp = Some top
          && Uidmap.uid_of_path m sp = Some sub
          && Hac_vfs.Vpath.is_prefix ~prefix:tp sp
      | _ -> false)

let () =
  Alcotest.run "uidmap"
    [
      ( "units",
        [
          Alcotest.test_case "root" `Quick test_root;
          Alcotest.test_case "register stable" `Quick test_register_stable;
          Alcotest.test_case "register normalizes" `Quick test_register_normalizes;
          Alcotest.test_case "rename single" `Quick test_rename_single;
          Alcotest.test_case "rename subtree" `Quick test_rename_subtree;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "remove subtree" `Quick test_remove_subtree;
          Alcotest.test_case "fold and bytes" `Quick test_fold_and_bytes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_uid_stable_under_renames ] );
    ]
