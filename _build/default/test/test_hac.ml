(* End-to-end tests for the HAC core: semantic directories, the three link
   classes, scope consistency under user edits, query changes, moves and
   renames, data consistency, and the s* API surface. *)

module Hac = Hac_core.Hac
module Link = Hac_core.Link
module Fs = Hac_vfs.Fs
module Errno = Hac_vfs.Errno

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_list = Alcotest.(check (list string))

let link_names t dir = List.map (fun l -> l.Link.name) (Hac.links t dir)

let transient_targets t dir =
  Hac.links t dir
  |> List.filter_map (fun l ->
         if l.Link.cls = Link.Transient then Some (Link.target_key l.Link.target) else None)
  |> List.sort compare

let permanent_targets t dir =
  Hac.links t dir
  |> List.filter_map (fun l ->
         if l.Link.cls = Link.Permanent then Some (Link.target_key l.Link.target) else None)
  |> List.sort compare

(* A small world: three fruit files and one unrelated file. *)
let world () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/docs";
  Hac.write_file t "/docs/apple.txt" "apple pie recipe with cinnamon\n";
  Hac.write_file t "/docs/banana.txt" "banana bread and apple chutney\n";
  Hac.write_file t "/docs/cherry.txt" "cherry clafoutis for dessert\n";
  Hac.write_file t "/docs/readme.txt" "no fruit here at all\n";
  t

(* -- smkdir basics --------------------------------------------------------------- *)

let test_smkdir_populates () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  check_list "matching transient links"
    [ "/docs/apple.txt"; "/docs/banana.txt" ]
    (transient_targets t "/apples");
  check_bool "is semantic" true (Hac.is_semantic t "/apples");
  check_bool "plain dir is not" false (Hac.is_semantic t "/docs");
  Alcotest.(check (option string)) "sreadin" (Some "apple") (Hac.sreadin t "/apples")

let test_smkdir_physical_links () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  (* The result is stored compactly (the paper's bitmap): no physical links
     exist until the directory is accessed through HAC... *)
  check_bool "lazy before access" false
    (List.mem "apple.txt" (Fs.readdir (Hac.fs t) "/apples"));
  (* ...and the first access materialises real symlinks in the file system. *)
  ignore (Hac.readdir t "/apples");
  check_bool "symlink exists" true (Fs.is_symlink (Hac.fs t) "/apples/apple.txt");
  Alcotest.(check string)
    "readable through link" "apple pie recipe with cinnamon\n"
    (Hac.read_file t "/apples/apple.txt")

let test_smkdir_boolean_query () =
  let t = world () in
  Hac.smkdir t "/only-pie" "apple AND NOT banana";
  check_list "boolean" [ "/docs/apple.txt" ] (transient_targets t "/only-pie")

let test_smkdir_errors_rollback () =
  let t = world () in
  (match Hac.smkdir t "/bad" "((broken" with
  | () -> Alcotest.fail "expected parse failure"
  | exception Hac.Hac_error _ -> ());
  check_bool "no debris" false (Hac.exists t "/bad");
  (match Hac.smkdir t "/bad2" "{/nonexistent}" with
  | () -> Alcotest.fail "expected dirref failure"
  | exception Hac.Hac_error _ -> ());
  check_bool "no debris 2" false (Hac.exists t "/bad2");
  (* Existing directory: smkdir must fail like mkdir. *)
  match Hac.smkdir t "/docs" "apple" with
  | () -> Alcotest.fail "expected EEXIST"
  | exception Errno.Error (Errno.EEXIST, _) -> ()

let test_semantic_dirs_listing () =
  let t = world () in
  Hac.smkdir t "/a1" "apple";
  Hac.smkdir t "/a2" "banana";
  check_list "listed" [ "/a1"; "/a2" ] (Hac.semantic_dirs t);
  check_int "count" 2 (Hac.semdir_count t)

(* -- the three link classes -------------------------------------------------------- *)

let test_prohibited_never_returns () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  Hac.remove_link t ~dir:"/apples" ~name:"banana.txt";
  check_list "prohibited recorded" [ "/docs/banana.txt" ] (Hac.prohibited t "/apples");
  (* Re-evaluate every way we can: it must not come back. *)
  Hac.ssync t "/apples";
  ignore (Hac.reindex t ());
  Hac.sync_all t;
  check_list "still only apple" [ "/docs/apple.txt" ] (transient_targets t "/apples")

let test_plain_unlink_also_prohibits () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  ignore (Hac.readdir t "/apples") (* materialise the links *);
  (* Bypass the wrapper: raw fs unlink is intercepted via events. *)
  Fs.unlink (Hac.fs t) "/apples/banana.txt";
  check_list "prohibited via raw op" [ "/docs/banana.txt" ] (Hac.prohibited t "/apples");
  (* The stored result shrank with the physical link. *)
  Hac.ssync t "/apples";
  check_list "result stays pruned" [ "/docs/apple.txt" ] (transient_targets t "/apples")

let test_permanent_survives () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  ignore (Hac.add_permanent t ~dir:"/apples" ~target:"/docs/cherry.txt");
  Hac.ssync t "/apples";
  check_list "permanent kept" [ "/docs/cherry.txt" ] (permanent_targets t "/apples");
  (* Permanent links survive even a query change that matches nothing. *)
  Hac.schquery t "/apples" "zzznothing";
  check_list "transient gone" [] (transient_targets t "/apples");
  check_list "permanent still there" [ "/docs/cherry.txt" ] (permanent_targets t "/apples")

let test_matching_permanent_not_duplicated () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  (* apple.txt matches the query; make it permanent by replacing the link. *)
  Hac.remove_link t ~dir:"/apples" ~name:"apple.txt";
  ignore (Hac.add_permanent t ~dir:"/apples" ~target:"/docs/apple.txt");
  Hac.ssync t "/apples";
  let targets = List.map (fun l -> Link.target_key l.Link.target) (Hac.links t "/apples") in
  check_int "no duplicate"
    (List.length (List.sort_uniq compare targets))
    (List.length targets);
  check_list "apple permanent now" [ "/docs/apple.txt" ] (permanent_targets t "/apples")

let test_manual_readd_lifts_prohibition () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  Hac.remove_link t ~dir:"/apples" ~name:"banana.txt";
  check_list "prohibited" [ "/docs/banana.txt" ] (Hac.prohibited t "/apples");
  ignore (Hac.add_permanent t ~dir:"/apples" ~target:"/docs/banana.txt");
  check_list "prohibition lifted" [] (Hac.prohibited t "/apples");
  check_list "now permanent" [ "/docs/banana.txt" ] (permanent_targets t "/apples")

let test_unprohibit_api () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  Hac.remove_link t ~dir:"/apples" ~name:"banana.txt";
  Hac.unprohibit t ~dir:"/apples" ~target:"/docs/banana.txt";
  Hac.ssync t "/apples";
  check_list "transient returns"
    [ "/docs/apple.txt"; "/docs/banana.txt" ]
    (transient_targets t "/apples")

let test_fresh_name_collision () =
  let t = world () in
  Hac.mkdir_p t "/other";
  Hac.write_file t "/other/apple.txt" "a different apple text\n";
  Hac.smkdir t "/apples" "apple";
  (* Two distinct targets share a basename: one gets the ~2 suffix. *)
  check_list "dedup names" [ "apple.txt"; "apple.txt~2"; "banana.txt" ]
    (link_names t "/apples")

(* -- hierarchy and scope -------------------------------------------------------------- *)

let test_child_scope_refinement () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  Hac.smkdir t "/apples/with-banana" "banana";
  (* banana.txt is in the parent's scope; cherry.txt is not. *)
  check_list "refined" [ "/docs/banana.txt" ] (transient_targets t "/apples/with-banana");
  (* The child's transient set is a subset of the parent's scope. *)
  Hac.remove_link t ~dir:"/apples" ~name:"banana.txt";
  Hac.ssync t "/apples";
  check_list "shrinks with parent" [] (transient_targets t "/apples/with-banana")

let test_three_level_propagation () =
  let t = world () in
  Hac.smkdir t "/l1" "apple OR cherry";
  Hac.smkdir t "/l1/l2" "apple OR cherry";
  Hac.smkdir t "/l1/l2/l3" "cherry";
  check_list "l3 sees cherry" [ "/docs/cherry.txt" ] (transient_targets t "/l1/l2/l3");
  Hac.remove_link t ~dir:"/l1" ~name:"cherry.txt";
  Hac.ssync t "/l1";
  check_list "prohibition cascades two levels" [] (transient_targets t "/l1/l2/l3")

let test_dirref_dependency () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  Hac.smkdir t "/combo" "{/apples} AND banana";
  check_list "combo" [ "/docs/banana.txt" ] (transient_targets t "/combo");
  (* Not in the subtree, still updated via the dependency DAG. *)
  Hac.remove_link t ~dir:"/apples" ~name:"banana.txt";
  Hac.ssync t "/apples";
  check_list "propagated across tree" [] (transient_targets t "/combo")

let test_dirref_cycle_rejected () =
  let t = world () in
  Hac.smkdir t "/a" "apple";
  Hac.smkdir t "/b" "{/a}";
  (match Hac.schquery t "/a" "{/b}" with
  | () -> Alcotest.fail "expected cycle error"
  | exception Hac.Hac_error _ -> ());
  (* Query unchanged after the refused change. *)
  Alcotest.(check (option string)) "query kept" (Some "apple") (Hac.sreadin t "/a")

let test_self_reference_rejected () =
  let t = world () in
  match Hac.smkdir t "/self" "{/self}" with
  | () -> Alcotest.fail "expected failure"
  | exception Hac.Hac_error _ -> check_bool "rolled back" false (Hac.exists t "/self")

let test_rename_referenced_dir () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  Hac.smkdir t "/combo" "{/apples}";
  Hac.rename t ~src:"/apples" ~dst:"/fruit";
  Alcotest.(check (option string))
    "query follows rename" (Some "{/fruit}") (Hac.sreadin t "/combo");
  Hac.ssync t "/combo";
  check_list "still evaluates"
    [ "/docs/apple.txt"; "/docs/banana.txt" ]
    (transient_targets t "/combo")

let test_move_semdir_changes_scope () =
  let t = world () in
  Hac.smkdir t "/narrow" "apple AND cherry AND banana AND zzznothing" (* empty *);
  Hac.schquery t "/narrow" "apple" (* now matches *);
  Hac.smkdir t "/narrow/sub" "banana";
  check_list "sub under narrow" [ "/docs/banana.txt" ] (transient_targets t "/narrow/sub");
  (* Move sub directly under the root: scope becomes the whole fs. *)
  Hac.rename t ~src:"/narrow/sub" ~dst:"/sub";
  Hac.ssync t "/sub";
  check_list "wider scope after move" [ "/docs/banana.txt" ] (transient_targets t "/sub");
  check_bool "still semantic" true (Hac.is_semantic t "/sub")

let test_srmdir_cleans_up () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  Hac.smkdir t "/combo" "{/apples} OR cherry";
  Hac.srmdir t "/apples";
  check_bool "gone" false (Hac.exists t "/apples");
  check_list "one semantic dir left" [ "/combo" ] (Hac.semantic_dirs t);
  (* The dangling reference degrades to empty rather than erroring. *)
  Hac.ssync t "/combo";
  check_list "dangling dirref empty side" [ "/docs/cherry.txt" ] (transient_targets t "/combo")

let test_srmdir_keeps_user_files () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  Hac.write_file t "/apples/note.txt" "my own file\n";
  (match Hac.srmdir t "/apples" with
  | () -> Alcotest.fail "expected ENOTEMPTY"
  | exception Errno.Error (Errno.ENOTEMPTY, _) -> ());
  check_bool "user file safe" true (Hac.exists t "/apples/note.txt")

(* -- schquery ---------------------------------------------------------------------------- *)

let test_schquery_replaces_results () =
  let t = world () in
  Hac.smkdir t "/q" "apple";
  Hac.schquery t "/q" "cherry";
  check_list "new results" [ "/docs/cherry.txt" ] (transient_targets t "/q")

let test_schquery_retrofits_plain_dir () =
  let t = world () in
  Hac.mkdir t "/plain";
  check_bool "before" false (Hac.is_semantic t "/plain");
  Hac.schquery t "/plain" "cherry";
  check_bool "after" true (Hac.is_semantic t "/plain");
  check_list "populated" [ "/docs/cherry.txt" ] (transient_targets t "/plain")

(* -- data consistency ---------------------------------------------------------------------- *)

let lazy_world () =
  (* No auto_sync: data consistency is periodic, as in the paper. *)
  let t = Hac.create () in
  Hac.mkdir_p t "/docs";
  Hac.write_file t "/docs/apple.txt" "apple pie\n";
  ignore (Hac.reindex t ());
  t

let test_lazy_new_file_needs_reindex () =
  let t = lazy_world () in
  Hac.smkdir t "/apples" "apple";
  check_list "initial" [ "/docs/apple.txt" ] (transient_targets t "/apples");
  Hac.write_file t "/docs/apple2.txt" "another apple\n";
  check_int "dirty" 1 (Hac.dirty_count t);
  (* Not visible yet: the semantic directory is stale, by design. *)
  check_list "stale until reindex" [ "/docs/apple.txt" ] (transient_targets t "/apples");
  ignore (Hac.reindex t ());
  check_int "clean" 0 (Hac.dirty_count t);
  check_list "visible after reindex"
    [ "/docs/apple.txt"; "/docs/apple2.txt" ]
    (transient_targets t "/apples")

let test_lazy_removed_file_cleared () =
  let t = lazy_world () in
  Hac.smkdir t "/apples" "apple";
  Hac.unlink t "/docs/apple.txt";
  ignore (Hac.reindex t ());
  check_list "link dropped" [] (transient_targets t "/apples")

let test_content_change_moves_links () =
  let t = lazy_world () in
  Hac.smkdir t "/apples" "apple";
  Hac.write_file t "/docs/apple.txt" "now all about pears\n";
  ignore (Hac.reindex t ());
  check_list "no longer matches" [] (transient_targets t "/apples")

let test_reindex_every_period () =
  let t = Hac.create ~reindex_every:5 () in
  Hac.mkdir_p t "/d";
  Hac.smkdir t "/hits" "target";
  (* Burn mutations; somewhere within the next period the new file gets
     indexed and the directory refreshed without an explicit reindex. *)
  for i = 1 to 12 do
    Hac.write_file t (Printf.sprintf "/d/f%d.txt" i) "target practice\n"
  done;
  check_bool "periodic settle happened" true (List.length (transient_targets t "/hits") >= 1)

let test_partial_reindex_under () =
  let t = Hac.create () in
  Hac.mkdir_p t "/a";
  Hac.mkdir_p t "/b";
  Hac.write_file t "/a/f.txt" "alpha text\n";
  Hac.write_file t "/b/g.txt" "alpha text\n";
  ignore (Hac.reindex t ~under:"/a" ());
  check_int "only /b dirty" 1 (Hac.dirty_count t)

(* -- sact and reading ------------------------------------------------------------------------- *)

let test_sact () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  let lines = Hac.sact t "/apples/banana.txt" in
  Alcotest.(check (list (pair int string)))
    "matching lines"
    [ (1, "banana bread and apple chutney") ]
    lines;
  match Hac.sact t "/docs/apple.txt" with
  | _ -> Alcotest.fail "sact outside a semantic dir must fail"
  | exception Hac.Hac_error _ -> ()

let test_resolve_link () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  Alcotest.(check (option string))
    "through link" (Some "apple pie recipe with cinnamon\n")
    (Hac.resolve_link t "/apples/apple.txt");
  Alcotest.(check (option string))
    "plain path too" (Some "cherry clafoutis for dessert\n")
    (Hac.resolve_link t "/docs/cherry.txt")

(* -- moving links between semantic directories -------------------------------------------------- *)

let test_move_link_between_semdirs () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  Hac.smkdir t "/cherries" "cherry";
  (* Drag a query result from one folder to another. *)
  Hac.rename t ~src:"/apples/banana.txt" ~dst:"/cherries/banana.txt";
  check_list "prohibited at source" [ "/docs/banana.txt" ] (Hac.prohibited t "/apples");
  check_list "permanent at destination" [ "/docs/banana.txt" ]
    (permanent_targets t "/cherries");
  Hac.sync_all t;
  check_list "source stays pruned" [ "/docs/apple.txt" ] (transient_targets t "/apples")

(* -- attribute queries --------------------------------------------------------------------------- *)

let test_attr_queries () =
  let t = world () in
  Hac.write_file t "/docs/notes.md" "apple sauce\n";
  Hac.smkdir t "/md" "ext:md";
  check_list "ext" [ "/docs/notes.md" ] (transient_targets t "/md");
  Hac.smkdir t "/named" "name:readme.txt";
  check_list "name" [ "/docs/readme.txt" ] (transient_targets t "/named");
  Hac.smkdir t "/under" "path:/docs AND apple";
  check_list "path+word"
    [ "/docs/apple.txt"; "/docs/banana.txt"; "/docs/notes.md" ]
    (transient_targets t "/under")

(* -- accounting ------------------------------------------------------------------------------------ *)

let test_space_accounting () =
  let t = world () in
  Hac.smkdir t "/apples" "apple";
  let sp = Hac.space t in
  check_bool "semdir bytes" true (sp.Hac.semdir_bytes > 0);
  check_bool "uidmap bytes" true (sp.Hac.uidmap_bytes > 0);
  check_bool "index bytes" true (sp.Hac.index_bytes > 0);
  check_bool "fs metadata" true (sp.Hac.fs_metadata_bytes > 0);
  check_bool "overhead sums" true
    (Hac.hac_overhead_bytes sp
    = sp.Hac.semdir_bytes + sp.Hac.uidmap_bytes + sp.Hac.depgraph_bytes)

let test_of_fs_adoption () =
  let fs = Fs.create () in
  Fs.mkdir_p fs "/pre/existing";
  Fs.write_file fs "/pre/existing/doc.txt" "adopted apple content\n";
  let t = Hac.of_fs ~auto_sync:true fs in
  Hac.smkdir t "/found" "apple";
  check_list "adopted files searchable" [ "/pre/existing/doc.txt" ]
    (transient_targets t "/found")

let () =
  Alcotest.run "hac"
    [
      ( "smkdir",
        [
          Alcotest.test_case "populates" `Quick test_smkdir_populates;
          Alcotest.test_case "physical links" `Quick test_smkdir_physical_links;
          Alcotest.test_case "boolean query" `Quick test_smkdir_boolean_query;
          Alcotest.test_case "errors roll back" `Quick test_smkdir_errors_rollback;
          Alcotest.test_case "listing" `Quick test_semantic_dirs_listing;
        ] );
      ( "link classes",
        [
          Alcotest.test_case "prohibited never returns" `Quick test_prohibited_never_returns;
          Alcotest.test_case "raw unlink prohibits" `Quick test_plain_unlink_also_prohibits;
          Alcotest.test_case "permanent survives" `Quick test_permanent_survives;
          Alcotest.test_case "no permanent/transient duplicate" `Quick
            test_matching_permanent_not_duplicated;
          Alcotest.test_case "re-add lifts prohibition" `Quick
            test_manual_readd_lifts_prohibition;
          Alcotest.test_case "unprohibit api" `Quick test_unprohibit_api;
          Alcotest.test_case "name collision" `Quick test_fresh_name_collision;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "child scope refinement" `Quick test_child_scope_refinement;
          Alcotest.test_case "three-level propagation" `Quick test_three_level_propagation;
          Alcotest.test_case "dirref dependency" `Quick test_dirref_dependency;
          Alcotest.test_case "dirref cycle rejected" `Quick test_dirref_cycle_rejected;
          Alcotest.test_case "self reference rejected" `Quick test_self_reference_rejected;
          Alcotest.test_case "rename referenced dir" `Quick test_rename_referenced_dir;
          Alcotest.test_case "move semdir changes scope" `Quick test_move_semdir_changes_scope;
          Alcotest.test_case "srmdir cleans up" `Quick test_srmdir_cleans_up;
          Alcotest.test_case "srmdir keeps user files" `Quick test_srmdir_keeps_user_files;
        ] );
      ( "schquery",
        [
          Alcotest.test_case "replaces results" `Quick test_schquery_replaces_results;
          Alcotest.test_case "retrofits plain dir" `Quick test_schquery_retrofits_plain_dir;
        ] );
      ( "data consistency",
        [
          Alcotest.test_case "new file needs reindex" `Quick test_lazy_new_file_needs_reindex;
          Alcotest.test_case "removed file cleared" `Quick test_lazy_removed_file_cleared;
          Alcotest.test_case "content change moves links" `Quick
            test_content_change_moves_links;
          Alcotest.test_case "periodic reindex" `Quick test_reindex_every_period;
          Alcotest.test_case "partial reindex" `Quick test_partial_reindex_under;
        ] );
      ( "retrieval",
        [
          Alcotest.test_case "sact" `Quick test_sact;
          Alcotest.test_case "resolve_link" `Quick test_resolve_link;
        ] );
      ( "user edits",
        [ Alcotest.test_case "move link between semdirs" `Quick test_move_link_between_semdirs ]
      );
      ("attributes", [ Alcotest.test_case "attr queries" `Quick test_attr_queries ]);
      ( "accounting",
        [
          Alcotest.test_case "space" `Quick test_space_accounting;
          Alcotest.test_case "of_fs adoption" `Quick test_of_fs_adoption;
        ] );
    ]
