(* Tests for the workload layer: PRNG determinism, corpus generation,
   marker planting, the Andrew benchmark on all four systems, and the
   layered baselines themselves. *)

module Fs = Hac_vfs.Fs
module Prng = Hac_workload.Prng
module Corpus = Hac_workload.Corpus
module Andrew = Hac_workload.Andrew
module Fsops = Hac_workload.Fsops
module Jade_fs = Hac_workload.Jade_fs
module Pseudo_fs = Hac_workload.Pseudo_fs
module Timer = Hac_workload.Timer
module Hac = Hac_core.Hac

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_str = Alcotest.(check string)

(* -- prng -------------------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.make ~seed:42 and b = Prng.make ~seed:42 in
  let sa = List.init 20 (fun _ -> Prng.next a) in
  let sb = List.init 20 (fun _ -> Prng.next b) in
  Alcotest.(check (list int)) "same stream" sa sb;
  let c = Prng.make ~seed:43 in
  check_bool "different seed differs" true (List.init 20 (fun _ -> Prng.next c) <> sa)

let test_prng_bounds () =
  let g = Prng.make ~seed:1 in
  for _ = 1 to 1000 do
    let v = Prng.int g 10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of bounds"
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_prng_float_range () =
  let g = Prng.make ~seed:99 in
  for _ = 1 to 10_000 do
    let u = Prng.float g in
    if u < 0.0 || u >= 1.0 then Alcotest.failf "float out of range: %f" u
  done

let test_prng_zipf_shape () =
  let g = Prng.make ~seed:7 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let r = Prng.zipf g ~n:100 ~skew:1.05 in
    counts.(r) <- counts.(r) + 1
  done;
  (* Zipf: heavy head AND a populated tail (a degenerate sampler returning
     only rank 0 must fail here). *)
  check_bool "rank 0 beats rank 50" true (counts.(0) > 5 * max 1 counts.(50));
  check_bool "rank 0 drawn a lot" true (counts.(0) > 1000);
  check_bool "tail populated" true (counts.(50) > 0 && counts.(99) > 0);
  let distinct = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 counts in
  check_bool "most ranks drawn" true (distinct > 80)

(* -- corpus ------------------------------------------------------------------------- *)

let test_corpus_deterministic () =
  let mk () =
    let c = Corpus.make ~seed:11 () in
    Corpus.document c ~words:50
  in
  check_str "same seed same text" (mk ()) (mk ())

let test_corpus_vocab () =
  let c = Corpus.make ~vocab_size:100 ~seed:3 () in
  let w0 = Corpus.vocab_word c 0 in
  check_bool "vocab word nonempty" true (String.length w0 >= 2);
  Alcotest.check_raises "bad rank" (Invalid_argument "Corpus.vocab_word") (fun () ->
      ignore (Corpus.vocab_word c 100))

let test_build_tree_shape () =
  let c = Corpus.make ~seed:5 () in
  let fs = Fs.create () in
  let spec = { Corpus.depth = 2; dirs_per_level = 2; files_per_dir = 3; words_per_file = 30 } in
  let files = Corpus.build_tree c fs ~root:"/corpus" spec in
  (* Dirs per level: 1 + 2 + 4 = 7 nodes, 3 files each. *)
  check_int "file count" 21 (List.length files);
  check_int "fs agrees" 21 (Fs.file_count fs);
  List.iter (fun p -> check_bool p true (Fs.is_file fs p)) files

let test_plant_controls_selectivity () =
  let c = Corpus.make ~seed:9 () in
  let fs = Fs.create () in
  let files = Corpus.build_tree c fs ~root:"/corpus" Corpus.small_tree in
  let chosen = Corpus.plant fs ~paths:files ~word:"xylophone" ~count:5 in
  check_int "planted" 5 (List.length chosen);
  let matching =
    List.filter
      (fun p -> Hac_index.Tokenizer.contains_word (Fs.read_file fs p) "xylophone")
      files
  in
  check_int "exactly the planted files" 5 (List.length matching);
  Alcotest.check_raises "too many"
    (Invalid_argument "Corpus.plant: count exceeds available files") (fun () ->
      ignore (Corpus.plant fs ~paths:files ~word:"x" ~count:10_000))

(* -- jade layer ---------------------------------------------------------------------- *)

let test_jade_translate () =
  let fs = Fs.create () in
  let j = Jade_fs.create fs in
  check_str "identity by default" "/a/b" (Jade_fs.translate j "/a/b");
  Jade_fs.add_mapping j ~logical:"/home" ~physical:"/vol0/users";
  check_str "mapped" "/vol0/users/alice" (Jade_fs.translate j "/home/alice");
  check_str "unmapped untouched" "/etc/conf" (Jade_fs.translate j "/etc/conf");
  (* Deeper mapping wins over the shallow one. *)
  Jade_fs.add_mapping j ~logical:"/home/bob" ~physical:"/vol1/bob";
  check_str "deep mapping" "/vol1/bob/f" (Jade_fs.translate j "/home/bob/f")

let test_jade_ops_work () =
  let fs = Fs.create () in
  let j = Jade_fs.create fs in
  Jade_fs.add_mapping j ~logical:"/logical" ~physical:"/physical";
  Fs.mkdir fs "/physical";
  let ops = Jade_fs.ops j in
  ops.Fsops.mkdir "/logical/d";
  ops.Fsops.write "/logical/d/f" "via jade";
  check_str "read back" "via jade" (ops.Fsops.read "/logical/d/f");
  check_bool "physically placed" true (Fs.is_file fs "/physical/d/f")

(* -- pseudo layer ---------------------------------------------------------------------- *)

let test_pseudo_ops_work () =
  let fs = Fs.create () in
  let p = Pseudo_fs.create fs in
  let ops = Pseudo_fs.ops p in
  ops.Fsops.mkdir "/d";
  ops.Fsops.write "/d/f" "via rpc";
  check_str "read back" "via rpc" (ops.Fsops.read "/d/f");
  Alcotest.(check (list string)) "readdir" [ "f" ] (ops.Fsops.readdir "/d");
  let c = Pseudo_fs.counters p in
  check_int "requests counted" 4 c.Pseudo_fs.requests;
  check_bool "wire traffic" true (c.Pseudo_fs.bytes_on_wire > 0)

(* -- andrew benchmark -------------------------------------------------------------------- *)

let source = Andrew.make_source ~spec:Corpus.small_tree ~seed:21 ()

let test_source_deterministic () =
  let s2 = Andrew.make_source ~spec:Corpus.small_tree ~seed:21 () in
  check_bool "same dirs" true (source.Andrew.dirs = s2.Andrew.dirs);
  check_bool "same files" true (source.Andrew.files = s2.Andrew.files);
  check_bool "has files" true (List.length source.Andrew.files > 0)

let verify_replication ops fs =
  (* After a run, the destination holds every source file plus one .o per
     file from the Make phase. *)
  ignore ops;
  let dest_files = Fs.find_files fs "/dest" in
  check_int "copies + objects"
    (2 * List.length source.Andrew.files)
    (List.length dest_files)

let test_andrew_on_vfs () =
  let fs = Fs.create () in
  let times = Andrew.run source (Fsops.of_fs fs) ~dest:"/dest" in
  check_bool "all phases nonnegative" true
    (times.Andrew.makedir >= 0. && times.Andrew.copy >= 0. && times.Andrew.scan >= 0.
   && times.Andrew.read >= 0. && times.Andrew.make >= 0.);
  verify_replication () fs

let test_andrew_on_hac () =
  let hac = Hac.create () in
  let times = Andrew.run source (Fsops.of_hac hac) ~dest:"/dest" in
  check_bool "total positive" true (Andrew.total times > 0.);
  verify_replication () (Hac.fs hac);
  (* HAC observed the whole load: reindex must pick all the files up. *)
  check_bool "dirty tracked" true (Hac.dirty_count hac > 0);
  ignore (Hac.reindex hac ());
  check_int "indexed everything"
    (2 * List.length source.Andrew.files)
    (Hac_index.Index.doc_count (Hac.index hac))

let test_andrew_on_jade () =
  let fs = Fs.create () in
  let times = Andrew.run source (Jade_fs.ops (Jade_fs.create fs)) ~dest:"/dest" in
  check_bool "ran" true (Andrew.total times > 0.);
  verify_replication () fs

let test_andrew_on_pseudo () =
  let fs = Fs.create () in
  let times = Andrew.run source (Pseudo_fs.ops (Pseudo_fs.create fs)) ~dest:"/dest" in
  check_bool "ran" true (Andrew.total times > 0.);
  verify_replication () fs

let test_slowdown_math () =
  let base =
    { Andrew.makedir = 1.; copy = 1.; scan = 1.; read = 1.; make = 1. }
  in
  let slower =
    { Andrew.makedir = 1.5; copy = 1.5; scan = 1.5; read = 1.5; make = 1.5 }
  in
  Alcotest.(check (float 0.001)) "50%" 50.0 (Andrew.slowdown ~base slower);
  Alcotest.(check (float 0.001)) "total" 5.0 (Andrew.total base)

(* -- trace -------------------------------------------------------------------- *)

module Trace = Hac_workload.Trace

let small_profile =
  { Trace.dirs = 3; files = 10; ops = 60; read_fraction = 0.7; words_per_file = 20 }

let test_trace_deterministic () =
  let a = Trace.generate ~seed:5 ~profile:small_profile () in
  let b = Trace.generate ~seed:5 ~profile:small_profile () in
  check_bool "same trace" true (a = b);
  check_bool "different seed differs" true (Trace.generate ~seed:6 ~profile:small_profile () <> a);
  check_int "setup + ops" (1 + 3 + 10 + 60) (List.length a)

let test_trace_replay_on_vfs () =
  let trace = Trace.generate ~seed:5 ~profile:small_profile () in
  let fs = Fs.create () in
  let st = Trace.replay trace (Fsops.of_fs fs) in
  check_int "all ops ran" (List.length trace) st.Trace.ops_replayed;
  check_int "no errors" 0 st.Trace.errors;
  check_bool "reads happened" true (st.Trace.bytes_read > 0);
  check_int "files created" 10 (Fs.file_count fs)

let test_trace_replay_identical_content () =
  let trace = Trace.generate ~seed:5 ~profile:small_profile () in
  let run () =
    let fs = Fs.create () in
    ignore (Trace.replay trace (Fsops.of_fs fs));
    List.map (fun p -> (p, Fs.read_file fs p)) (Fs.find_files fs "/")
  in
  check_bool "byte-identical across backends" true (run () = run ())

let test_trace_serialisation () =
  let trace = Trace.generate ~seed:5 ~profile:small_profile () in
  (match Trace.of_string (Trace.to_string trace) with
  | Ok parsed -> check_bool "roundtrip" true (parsed = trace)
  | Error e -> Alcotest.fail e);
  match Trace.of_string "mkdir /a\nbogus line here extra\n" with
  | Error msg -> check_bool "reports line" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected parse error"

let test_trace_replay_on_hac () =
  let trace = Trace.generate ~seed:5 ~profile:small_profile () in
  let hac = Hac.create () in
  let st = Trace.replay trace (Fsops.of_hac hac) in
  check_int "no errors" 0 st.Trace.errors;
  ignore (Hac.reindex hac ());
  check_int "all files indexed" 10 (Hac_index.Index.doc_count (Hac.index hac))

let test_timer () =
  let d, v = Timer.time (fun () -> 41 + 1) in
  check_int "result" 42 v;
  check_bool "nonneg" true (d >= 0.0);
  Alcotest.(check (float 0.001)) "pct" 100.0 (Timer.pct_over ~base:1.0 2.0);
  check_bool "median runs" true (Timer.median 3 (fun () -> ()) >= 0.0)

let () =
  Alcotest.run "workload"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "zipf shape" `Quick test_prng_zipf_shape;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "deterministic" `Quick test_corpus_deterministic;
          Alcotest.test_case "vocab" `Quick test_corpus_vocab;
          Alcotest.test_case "tree shape" `Quick test_build_tree_shape;
          Alcotest.test_case "plant selectivity" `Quick test_plant_controls_selectivity;
        ] );
      ( "jade",
        [
          Alcotest.test_case "translate" `Quick test_jade_translate;
          Alcotest.test_case "ops" `Quick test_jade_ops_work;
        ] );
      ("pseudo", [ Alcotest.test_case "ops and counters" `Quick test_pseudo_ops_work ]);
      ( "trace",
        [
          Alcotest.test_case "deterministic" `Quick test_trace_deterministic;
          Alcotest.test_case "replay on vfs" `Quick test_trace_replay_on_vfs;
          Alcotest.test_case "identical content" `Quick test_trace_replay_identical_content;
          Alcotest.test_case "serialisation" `Quick test_trace_serialisation;
          Alcotest.test_case "replay on hac" `Quick test_trace_replay_on_hac;
        ] );
      ( "andrew",
        [
          Alcotest.test_case "source deterministic" `Quick test_source_deterministic;
          Alcotest.test_case "on vfs" `Quick test_andrew_on_vfs;
          Alcotest.test_case "on hac" `Quick test_andrew_on_hac;
          Alcotest.test_case "on jade" `Quick test_andrew_on_jade;
          Alcotest.test_case "on pseudo" `Quick test_andrew_on_pseudo;
          Alcotest.test_case "slowdown math" `Quick test_slowdown_math;
          Alcotest.test_case "timer" `Quick test_timer;
        ] );
    ]
