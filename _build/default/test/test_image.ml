(* Tests for file-system images (dump/load) and the full snapshot-restart
   story: image + persisted HAC metadata -> recovered semantics. *)

module Fs = Hac_vfs.Fs
module Image = Hac_vfs.Image
module Hac = Hac_core.Hac
module Recover = Hac_core.Recover
module Link = Hac_core.Link

let check_bool = Alcotest.(check bool)

let check_str = Alcotest.(check string)

let check_int = Alcotest.(check int)

let sample_fs () =
  let fs = Fs.create () in
  Fs.set_user fs 3;
  Fs.mkdir_p fs "/a/b";
  Fs.write_file fs "/a/b/file.txt" "hello image\n";
  Fs.write_file fs "/a/binary" "nul\000inside\nand \xffmore";
  Fs.symlink fs ~target:"/a/b/file.txt" ~link:"/a/ln";
  Fs.symlink fs ~target:"remote://x/with space" ~link:"/a/weird";
  Fs.set_user fs 0;
  Fs.chmod fs "/a/b/file.txt" 0o640;
  fs

let roundtrip fs =
  match Image.load (Image.dump fs) with
  | Ok fs' -> fs'
  | Error e -> Alcotest.failf "load failed: %s" e

let test_roundtrip_content () =
  let fs = sample_fs () in
  let fs' = roundtrip fs in
  check_str "text file" "hello image\n" (Fs.read_file fs' "/a/b/file.txt");
  check_str "binary file" "nul\000inside\nand \xffmore" (Fs.read_file fs' "/a/binary");
  check_str "symlink" "/a/b/file.txt" (Fs.readlink fs' "/a/ln");
  check_str "weird target survives" "remote://x/with space" (Fs.readlink fs' "/a/weird");
  Alcotest.(check (list string)) "structure" [ "b"; "binary"; "ln"; "weird" ]
    (Fs.readdir fs' "/a")

let test_roundtrip_metadata () =
  let fs = sample_fs () in
  let fs' = roundtrip fs in
  check_int "owner restored" 3 (Fs.stat fs' "/a/b/file.txt").Fs.st_uid;
  check_int "mode restored" 0o640 (Fs.stat fs' "/a/b/file.txt").Fs.st_mode;
  check_int "dir owner" 3 (Fs.stat fs' "/a").Fs.st_uid

let test_roundtrip_stability () =
  let fs = sample_fs () in
  let img = Image.dump fs in
  let img2 = Image.dump (roundtrip fs) in
  check_str "dump of load of dump" img img2

let test_empty_fs () =
  let fs' = roundtrip (Fs.create ()) in
  Alcotest.(check (list string)) "empty" [] (Fs.readdir fs' "/")

let test_malformed () =
  let expect_error data =
    match Image.load data with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected error for %S" data
  in
  expect_error "";
  expect_error "NOTANIMAGE\n";
  expect_error "HACIMG1\nD 777 0 2\n/a" (* missing E *);
  expect_error "HACIMG1\nF 666 0 5 999\n/a/fxx" (* truncated payload *);
  expect_error "HACIMG1\nX nonsense\nE\n"

let test_host_file_roundtrip () =
  let fs = sample_fs () in
  let path = Filename.temp_file "hacimg" ".img" in
  Image.save_file fs path;
  (match Image.load_file path with
  | Ok fs' -> check_str "via host file" "hello image\n" (Fs.read_file fs' "/a/b/file.txt")
  | Error e -> Alcotest.failf "load_file: %s" e);
  Sys.remove path;
  match Image.load_file "/nonexistent/path.img" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected missing-file error"

(* The whole restart story: snapshot a live HAC, load the image elsewhere,
   recover the semantics. *)
let test_snapshot_restart () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/docs";
  Hac.write_file t "/docs/a.txt" "alpha\n";
  Hac.write_file t "/docs/b.txt" "alpha beta\n";
  Hac.smkdir t "/alpha" "alpha";
  Hac.remove_link t ~dir:"/alpha" ~name:"b.txt";
  Hac.ssync t "/alpha";
  let image = Image.dump (Hac.fs t) in
  match Image.load image with
  | Error e -> Alcotest.fail e
  | Ok fs' ->
      let t' = Hac.of_fs ~auto_sync:true fs' in
      check_int "recovered" 1 (Recover.reload t');
      Alcotest.(check (option string)) "query" (Some "alpha") (Hac.sreadin t' "/alpha");
      Alcotest.(check (list string)) "prohibition survived the snapshot"
        [ "/docs/b.txt" ] (Hac.prohibited t' "/alpha");
      check_bool "results live" true
        (List.exists
           (fun l -> Link.target_key l.Link.target = "/docs/a.txt")
           (Hac.links t' "/alpha"))

(* Shell-level save/restore. *)
let test_shell_save_restore () =
  let module Shell = Hac_shell.Shell in
  let s = Shell.make () in
  ignore (Shell.run_string s "mkdir /d; write /d/f.txt apple pie; smkdir /q apple");
  let path = Filename.temp_file "hacsh" ".img" in
  let out = Shell.run_string s (Printf.sprintf "save %s" path) in
  check_bool "saved" true (String.length out > 0);
  let s2 = Shell.make () in
  let out2 = Shell.run_string s2 (Printf.sprintf "restore %s" path) in
  Sys.remove path;
  check_bool "recovered one" true
    (Hac_index.Agrep.find_exact ~pattern:"recovered 1" out2 <> None);
  check_str "contents back" "apple pie\n" (Shell.run_string s2 "cat /d/f.txt");
  check_bool "semantics back" true
    (Hac_index.Agrep.find_exact ~pattern:"f.txt" (Shell.run_string s2 "links /q") <> None)

let () =
  Alcotest.run "image"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "content" `Quick test_roundtrip_content;
          Alcotest.test_case "owners and modes" `Quick test_roundtrip_metadata;
          Alcotest.test_case "stable" `Quick test_roundtrip_stability;
          Alcotest.test_case "empty" `Quick test_empty_fs;
        ] );
      ("errors", [ Alcotest.test_case "malformed images" `Quick test_malformed ]);
      ( "host files",
        [ Alcotest.test_case "save/load file" `Quick test_host_file_roundtrip ] );
      ( "restart",
        [
          Alcotest.test_case "snapshot + recover" `Quick test_snapshot_restart;
          Alcotest.test_case "shell save/restore" `Quick test_shell_save_restore;
        ] );
    ]
