(* Tests for the text pipeline: tokenizer and stemmer. *)

module Tokenizer = Hac_index.Tokenizer
module Stemmer = Hac_index.Stemmer

let check_list = Alcotest.(check (list string))

let check_str = Alcotest.(check string)

let check_bool = Alcotest.(check bool)

(* -- tokenizer ---------------------------------------------------------------- *)

let test_words_basic () =
  check_list "split and lowercase" [ "hello"; "world" ] (Tokenizer.words "Hello, WORLD!");
  check_list "digits and underscore" [ "foo_bar2"; "x9" ] (Tokenizer.words "foo_bar2 x9!");
  check_list "empty" [] (Tokenizer.words "");
  check_list "punctuation only" [] (Tokenizer.words "... !!! ---")

let test_words_min_len () =
  (* Single characters are below min_word_len. *)
  check_list "singles dropped" [ "ab" ] (Tokenizer.words "a b c ab")

let test_words_truncation () =
  let long = String.make 100 'x' in
  match Tokenizer.words long with
  | [ w ] -> Alcotest.(check int) "truncated" Tokenizer.max_word_len (String.length w)
  | other -> Alcotest.failf "expected one word, got %d" (List.length other)

let test_unique_words () =
  check_list "dedup sorted" [ "aa"; "bb" ] (Tokenizer.unique_words "bb aa bb aa")

let test_contains_word () =
  check_bool "present" true (Tokenizer.contains_word "the quick fox" "quick");
  check_bool "substring is not a word" false (Tokenizer.contains_word "quicksand" "quick");
  check_bool "case folded text" true (Tokenizer.contains_word "QUICK" "quick")

let test_iter_lines () =
  let got = ref [] in
  Tokenizer.iter_lines "one\ntwo\n\nfour" (fun n l -> got := (n, l) :: !got);
  Alcotest.(check (list (pair int string)))
    "lines with numbers"
    [ (1, "one"); (2, "two"); (3, ""); (4, "four") ]
    (List.rev !got)

let test_iter_lines_trailing_newline () =
  let got = ref [] in
  Tokenizer.iter_lines "only\n" (fun n l -> got := (n, l) :: !got);
  Alcotest.(check (list (pair int string))) "no phantom line" [ (1, "only") ] (List.rev !got)

(* -- stemmer ------------------------------------------------------------------- *)

let test_stem_families () =
  (* Inflections of the same word must collide. *)
  let families =
    [
      [ "query"; "queries" ];
      [ "match"; "matches"; "matched" ];
      [ "link"; "links" ];
      [ "finding"; "findings" ];
      [ "quick"; "quickly" ];
    ]
  in
  List.iter
    (fun family ->
      match List.map Stemmer.stem family with
      | [] -> ()
      | first :: rest ->
          List.iter
            (fun s -> check_str (String.concat "/" family) first s)
            rest)
    families

let test_stem_short_words () =
  check_str "short unchanged" "as" (Stemmer.stem "as");
  check_str "three chars unchanged" "its" (Stemmer.stem "its")

let test_stem_guards () =
  check_str "ss preserved" "class" (Stemmer.stem "class");
  check_str "us preserved" "virus" (Stemmer.stem "virus")

let test_stem_specific () =
  check_str "queries" "query" (Stemmer.stem "queries");
  check_str "classes" "class" (Stemmer.stem "classes");
  check_str "running" "runn" (Stemmer.stem "running");
  check_str "darkness" "dark" (Stemmer.stem "darkness")

let prop_stem_idempotent =
  let word_gen =
    QCheck.Gen.(
      map
        (fun cs -> String.concat "" (List.map (String.make 1) cs))
        (list_size (int_range 1 12) (char_range 'a' 'z')))
    |> QCheck.make ~print:(fun s -> s)
  in
  QCheck.Test.make ~name:"stem idempotent" ~count:1000 word_gen (fun w ->
      Stemmer.stem (Stemmer.stem w) = Stemmer.stem w)

let prop_stem_never_longer =
  let word_gen =
    QCheck.Gen.(
      map
        (fun cs -> String.concat "" (List.map (String.make 1) cs))
        (list_size (int_range 1 12) (char_range 'a' 'z')))
    |> QCheck.make ~print:(fun s -> s)
  in
  QCheck.Test.make ~name:"stem never longer" ~count:1000 word_gen (fun w ->
      String.length (Stemmer.stem w) <= String.length w)

(* The in-place scanner must agree exactly with the token-based reference. *)
let prop_contains_word_equiv =
  let text_gen =
    QCheck.Gen.(
      map
        (fun cs -> String.concat "" (List.map (String.make 1) cs))
        (list_size (int_range 0 60)
           (oneof [ char_range 'a' 'c'; return ' '; return '.'; char_range 'A' 'C' ])))
  in
  let word_gen =
    QCheck.Gen.(
      map
        (fun cs -> String.concat "" (List.map (String.make 1) cs))
        (list_size (int_range 1 5) (char_range 'a' 'c')))
  in
  QCheck.Test.make ~name:"contains_word equals token scan" ~count:2000
    (QCheck.make
       QCheck.Gen.(pair text_gen word_gen)
       ~print:(fun (t, w) -> Printf.sprintf "%S / %S" t w))
    (fun (text, w) ->
      let reference =
        List.exists (fun tok -> tok = w) (Tokenizer.words text)
      in
      Tokenizer.contains_word text w = reference)

let test_contains_word_truncation () =
  (* A 40-char run is indexed as its 32-char prefix; the scanner must agree. *)
  let long_run = String.make 40 'a' in
  let prefix32 = String.make 32 'a' in
  check_bool "truncated token matches" true (Tokenizer.contains_word long_run prefix32);
  check_bool "shorter prefix does not" false
    (Tokenizer.contains_word long_run (String.make 31 'a'))

let prop_tokenizer_words_valid =
  QCheck.Test.make ~name:"tokenizer output within length bounds" ~count:500
    QCheck.(string_gen QCheck.Gen.printable)
    (fun text ->
      List.for_all
        (fun w ->
          String.length w >= Tokenizer.min_word_len
          && String.length w <= Tokenizer.max_word_len
          && String.lowercase_ascii w = w)
        (Tokenizer.words text))

let () =
  Alcotest.run "text"
    [
      ( "tokenizer",
        [
          Alcotest.test_case "basic words" `Quick test_words_basic;
          Alcotest.test_case "min length" `Quick test_words_min_len;
          Alcotest.test_case "truncation" `Quick test_words_truncation;
          Alcotest.test_case "unique words" `Quick test_unique_words;
          Alcotest.test_case "contains_word" `Quick test_contains_word;
          Alcotest.test_case "contains_word truncation" `Quick test_contains_word_truncation;
          Alcotest.test_case "iter_lines" `Quick test_iter_lines;
          Alcotest.test_case "trailing newline" `Quick test_iter_lines_trailing_newline;
        ] );
      ( "stemmer",
        [
          Alcotest.test_case "families collide" `Quick test_stem_families;
          Alcotest.test_case "short words" `Quick test_stem_short_words;
          Alcotest.test_case "guards" `Quick test_stem_guards;
          Alcotest.test_case "specific forms" `Quick test_stem_specific;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_stem_idempotent;
            prop_stem_never_longer;
            prop_tokenizer_words_valid;
            prop_contains_word_equiv;
          ] );
    ]
