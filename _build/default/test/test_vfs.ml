(* Tests for the virtual file system: operations, error codes, symbolic
   links, rename semantics, events, traversal and accounting. *)

module Fs = Hac_vfs.Fs
module Errno = Hac_vfs.Errno
module Event = Hac_vfs.Event

let check_str = Alcotest.(check string)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_list = Alcotest.(check (list string))

let expect_errno code f =
  match f () with
  | _ -> Alcotest.failf "expected %s" (Errno.to_string code)
  | exception Errno.Error (got, _) ->
      Alcotest.check
        (Alcotest.testable Errno.pp ( = ))
        ("raises " ^ Errno.to_string code)
        code got

(* -- directories ------------------------------------------------------------ *)

let test_mkdir_readdir () =
  let fs = Fs.create () in
  Fs.mkdir fs "/a";
  Fs.mkdir fs "/a/b";
  check_list "root" [ "a" ] (Fs.readdir fs "/");
  check_list "nested" [ "b" ] (Fs.readdir fs "/a");
  check_bool "is_dir" true (Fs.is_dir fs "/a/b")

let test_mkdir_errors () =
  let fs = Fs.create () in
  Fs.mkdir fs "/a";
  expect_errno Errno.EEXIST (fun () -> Fs.mkdir fs "/a");
  expect_errno Errno.ENOENT (fun () -> Fs.mkdir fs "/missing/child");
  Fs.write_file fs "/f" "x";
  expect_errno Errno.ENOTDIR (fun () -> Fs.mkdir fs "/f/sub");
  expect_errno Errno.EINVAL (fun () -> Fs.mkdir fs "/")

let test_mkdir_p () =
  let fs = Fs.create () in
  Fs.mkdir_p fs "/x/y/z";
  check_bool "deep exists" true (Fs.is_dir fs "/x/y/z");
  Fs.mkdir_p fs "/x/y/z" (* idempotent *);
  Fs.write_file fs "/x/f" "data";
  expect_errno Errno.ENOTDIR (fun () -> Fs.mkdir_p fs "/x/f/deeper")

let test_rmdir () =
  let fs = Fs.create () in
  Fs.mkdir fs "/a";
  Fs.mkdir fs "/a/b";
  expect_errno Errno.ENOTEMPTY (fun () -> Fs.rmdir fs "/a");
  Fs.rmdir fs "/a/b";
  Fs.rmdir fs "/a";
  check_list "gone" [] (Fs.readdir fs "/");
  expect_errno Errno.EBUSY (fun () -> Fs.rmdir fs "/");
  Fs.write_file fs "/f" "x";
  expect_errno Errno.ENOTDIR (fun () -> Fs.rmdir fs "/f")

(* -- files ------------------------------------------------------------------ *)

let test_write_read () =
  let fs = Fs.create () in
  Fs.write_file fs "/f.txt" "hello";
  check_str "roundtrip" "hello" (Fs.read_file fs "/f.txt");
  Fs.write_file fs "/f.txt" "shorter";
  check_str "overwrite" "shorter" (Fs.read_file fs "/f.txt");
  Fs.write_file fs "/f.txt" "";
  check_str "truncate to empty" "" (Fs.read_file fs "/f.txt");
  check_int "size" 0 (Fs.file_size fs "/f.txt")

let test_append () =
  let fs = Fs.create () in
  Fs.append_file fs "/log" "a";
  Fs.append_file fs "/log" "b";
  check_str "appended" "ab" (Fs.read_file fs "/log")

let test_create_file_errors () =
  let fs = Fs.create () in
  Fs.create_file fs "/f";
  expect_errno Errno.EEXIST (fun () -> Fs.create_file fs "/f");
  Fs.mkdir fs "/d";
  expect_errno Errno.EISDIR (fun () -> Fs.read_file fs "/d");
  expect_errno Errno.ENOENT (fun () -> Fs.read_file fs "/missing")

let test_unlink () =
  let fs = Fs.create () in
  Fs.write_file fs "/f" "x";
  Fs.unlink fs "/f";
  check_bool "gone" false (Fs.exists fs "/f");
  Fs.mkdir fs "/d";
  expect_errno Errno.EISDIR (fun () -> Fs.unlink fs "/d");
  expect_errno Errno.ENOENT (fun () -> Fs.unlink fs "/f")

let test_large_file () =
  let fs = Fs.create () in
  let big = String.make 100_000 'z' in
  Fs.write_file fs "/big" big;
  check_int "big size" 100_000 (Fs.file_size fs "/big");
  check_str "big content" big (Fs.read_file fs "/big")

(* -- symlinks ---------------------------------------------------------------- *)

let test_symlink_follow () =
  let fs = Fs.create () in
  Fs.write_file fs "/target" "payload";
  Fs.symlink fs ~target:"/target" ~link:"/ln";
  check_str "read through link" "payload" (Fs.read_file fs "/ln");
  check_str "readlink" "/target" (Fs.readlink fs "/ln");
  check_bool "lexists" true (Fs.lexists fs "/ln");
  check_bool "is_symlink" true (Fs.is_symlink fs "/ln");
  check_bool "stat follows" true ((Fs.stat fs "/ln").Fs.st_kind = Event.File);
  check_bool "lstat does not" true ((Fs.lstat fs "/ln").Fs.st_kind = Event.Link)

let test_symlink_dangling () =
  let fs = Fs.create () in
  Fs.symlink fs ~target:"/nowhere" ~link:"/dangling";
  check_bool "lexists" true (Fs.lexists fs "/dangling");
  check_bool "exists follows and fails" false (Fs.exists fs "/dangling");
  expect_errno Errno.ENOENT (fun () -> Fs.read_file fs "/dangling")

let test_symlink_dir_traversal () =
  let fs = Fs.create () in
  Fs.mkdir_p fs "/real/sub";
  Fs.write_file fs "/real/sub/f" "deep";
  Fs.symlink fs ~target:"/real" ~link:"/alias";
  check_str "through dir link" "deep" (Fs.read_file fs "/alias/sub/f");
  check_str "resolve" "/real/sub/f" (Fs.resolve fs "/alias/sub/f")

let test_symlink_relative_target () =
  let fs = Fs.create () in
  Fs.mkdir fs "/d";
  Fs.write_file fs "/d/file" "rel";
  Fs.symlink fs ~target:"file" ~link:"/d/ln";
  check_str "relative target" "rel" (Fs.read_file fs "/d/ln");
  Fs.symlink fs ~target:"../d/file" ~link:"/d/up";
  check_str "dotdot target" "rel" (Fs.read_file fs "/d/up")

let test_symlink_loop () =
  let fs = Fs.create () in
  Fs.symlink fs ~target:"/b" ~link:"/a";
  Fs.symlink fs ~target:"/a" ~link:"/b";
  expect_errno Errno.ELOOP (fun () -> Fs.read_file fs "/a")

let test_readlink_not_symlink () =
  let fs = Fs.create () in
  Fs.write_file fs "/f" "x";
  expect_errno Errno.EINVAL (fun () -> Fs.readlink fs "/f")

(* -- rename ------------------------------------------------------------------- *)

let test_rename_file () =
  let fs = Fs.create () in
  Fs.write_file fs "/a" "data";
  Fs.rename fs ~src:"/a" ~dst:"/b";
  check_bool "src gone" false (Fs.exists fs "/a");
  check_str "dst has data" "data" (Fs.read_file fs "/b")

let test_rename_replaces_file () =
  let fs = Fs.create () in
  Fs.write_file fs "/a" "new";
  Fs.write_file fs "/b" "old";
  Fs.rename fs ~src:"/a" ~dst:"/b";
  check_str "replaced" "new" (Fs.read_file fs "/b")

let test_rename_dir_subtree () =
  let fs = Fs.create () in
  Fs.mkdir_p fs "/d/sub";
  Fs.write_file fs "/d/sub/f" "x";
  Fs.rename fs ~src:"/d" ~dst:"/e";
  check_str "subtree moved" "x" (Fs.read_file fs "/e/sub/f");
  check_bool "old gone" false (Fs.exists fs "/d")

let test_rename_into_self () =
  let fs = Fs.create () in
  Fs.mkdir_p fs "/d/sub";
  expect_errno Errno.EINVAL (fun () -> Fs.rename fs ~src:"/d" ~dst:"/d/sub/d2")

let test_rename_dir_over_nonempty () =
  let fs = Fs.create () in
  Fs.mkdir fs "/a";
  Fs.mkdir fs "/b";
  Fs.write_file fs "/b/f" "x";
  expect_errno Errno.ENOTEMPTY (fun () -> Fs.rename fs ~src:"/a" ~dst:"/b");
  Fs.unlink fs "/b/f";
  Fs.rename fs ~src:"/a" ~dst:"/b" (* empty dir is replaced *);
  check_bool "a gone" false (Fs.exists fs "/a")

let test_rename_file_over_dir () =
  let fs = Fs.create () in
  Fs.write_file fs "/f" "x";
  Fs.mkdir fs "/d";
  expect_errno Errno.EISDIR (fun () -> Fs.rename fs ~src:"/f" ~dst:"/d");
  expect_errno Errno.ENOTDIR (fun () -> Fs.rename fs ~src:"/d" ~dst:"/f")

let test_rename_noop () =
  let fs = Fs.create () in
  Fs.write_file fs "/f" "x";
  Fs.rename fs ~src:"/f" ~dst:"/f";
  check_str "still there" "x" (Fs.read_file fs "/f")

(* -- events -------------------------------------------------------------------- *)

let record_events fs =
  let log = ref [] in
  Event.subscribe (Fs.events fs) (fun ev -> log := ev :: !log);
  fun () -> List.rev !log

let test_events_basic () =
  let fs = Fs.create () in
  let events = record_events fs in
  Fs.mkdir fs "/d";
  Fs.write_file fs "/d/f" "x";
  Fs.symlink fs ~target:"/d/f" ~link:"/ln";
  Fs.unlink fs "/ln";
  Fs.rename fs ~src:"/d/f" ~dst:"/d/g";
  Fs.unlink fs "/d/g";
  Fs.rmdir fs "/d";
  Alcotest.(check (list string))
    "event trace"
    [
      "created dir /d";
      "created file /d/f";
      "written /d/f";
      "created link /ln";
      "removed link /ln";
      "renamed /d/f -> /d/g";
      "removed file /d/g";
      "removed dir /d";
    ]
    (List.map (Format.asprintf "%a" Event.pp) (events ()))

let test_event_write_on_create_empty () =
  let fs = Fs.create () in
  let events = record_events fs in
  Fs.write_file fs "/empty" "";
  (* Creating an empty file should not also claim a write happened. *)
  Alcotest.(check (list string))
    "only created" [ "created file /empty" ]
    (List.map (Format.asprintf "%a" Event.pp) (events ()))

(* -- traversal and accounting ---------------------------------------------------- *)

let build_sample fs =
  Fs.mkdir_p fs "/p/q";
  Fs.write_file fs "/p/a.txt" "aa";
  Fs.write_file fs "/p/q/b.txt" "bbb";
  Fs.symlink fs ~target:"/p/a.txt" ~link:"/p/q/ln"

let test_walk () =
  let fs = Fs.create () in
  build_sample fs;
  let visited = ref [] in
  Fs.walk fs "/" (fun p _ -> visited := p :: !visited);
  check_list "all objects"
    [ "/p"; "/p/a.txt"; "/p/q"; "/p/q/b.txt"; "/p/q/ln" ]
    (List.sort compare !visited)

let test_find_files () =
  let fs = Fs.create () in
  build_sample fs;
  check_list "files only" [ "/p/a.txt"; "/p/q/b.txt" ] (Fs.find_files fs "/");
  check_list "scoped" [ "/p/q/b.txt" ] (Fs.find_files fs "/p/q")

let test_rmtree () =
  let fs = Fs.create () in
  build_sample fs;
  Fs.rmtree fs "/p";
  check_bool "gone" false (Fs.exists fs "/p");
  check_list "root empty" [] (Fs.readdir fs "/")

let test_counts () =
  let fs = Fs.create () in
  build_sample fs;
  check_int "files" 2 (Fs.file_count fs);
  check_int "dirs (incl root)" 3 (Fs.dir_count fs);
  check_int "bytes" 5 (Fs.total_bytes fs);
  check_bool "metadata positive" true (Fs.metadata_bytes fs > 0)

let test_pread_pwrite () =
  let fs = Fs.create () in
  Fs.write_file fs "/f" "0123456789";
  let ino = Fs.ino_of_path fs "/f" in
  check_str "pread middle" "345" (Fs.pread_ino fs ino ~pos:3 ~len:3);
  check_str "pread past end" "" (Fs.pread_ino fs ino ~pos:100 ~len:5);
  check_str "pread short at end" "89" (Fs.pread_ino fs ino ~pos:8 ~len:10);
  ignore (Fs.pwrite_ino fs ino ~path:"/f" ~pos:10 "AB");
  check_str "extended" "0123456789AB" (Fs.read_file fs "/f");
  ignore (Fs.pwrite_ino fs ino ~path:"/f" ~pos:15 "Z");
  check_int "gap zero-filled" 16 (Fs.file_size fs "/f")

let () =
  Alcotest.run "vfs"
    [
      ( "directories",
        [
          Alcotest.test_case "mkdir/readdir" `Quick test_mkdir_readdir;
          Alcotest.test_case "mkdir errors" `Quick test_mkdir_errors;
          Alcotest.test_case "mkdir_p" `Quick test_mkdir_p;
          Alcotest.test_case "rmdir" `Quick test_rmdir;
        ] );
      ( "files",
        [
          Alcotest.test_case "write/read" `Quick test_write_read;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "create errors" `Quick test_create_file_errors;
          Alcotest.test_case "unlink" `Quick test_unlink;
          Alcotest.test_case "large file" `Quick test_large_file;
          Alcotest.test_case "pread/pwrite" `Quick test_pread_pwrite;
        ] );
      ( "symlinks",
        [
          Alcotest.test_case "follow" `Quick test_symlink_follow;
          Alcotest.test_case "dangling" `Quick test_symlink_dangling;
          Alcotest.test_case "directory traversal" `Quick test_symlink_dir_traversal;
          Alcotest.test_case "relative target" `Quick test_symlink_relative_target;
          Alcotest.test_case "loop detection" `Quick test_symlink_loop;
          Alcotest.test_case "readlink non-link" `Quick test_readlink_not_symlink;
        ] );
      ( "rename",
        [
          Alcotest.test_case "file" `Quick test_rename_file;
          Alcotest.test_case "replaces file" `Quick test_rename_replaces_file;
          Alcotest.test_case "directory subtree" `Quick test_rename_dir_subtree;
          Alcotest.test_case "into own subtree" `Quick test_rename_into_self;
          Alcotest.test_case "over non-empty dir" `Quick test_rename_dir_over_nonempty;
          Alcotest.test_case "file/dir mismatch" `Quick test_rename_file_over_dir;
          Alcotest.test_case "no-op" `Quick test_rename_noop;
        ] );
      ( "events",
        [
          Alcotest.test_case "basic trace" `Quick test_events_basic;
          Alcotest.test_case "no write on empty create" `Quick test_event_write_on_create_empty;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "walk" `Quick test_walk;
          Alcotest.test_case "find_files" `Quick test_find_files;
          Alcotest.test_case "rmtree" `Quick test_rmtree;
          Alcotest.test_case "counts" `Quick test_counts;
        ] );
    ]
