test/test_transducer.ml: Alcotest Hac_bitset Hac_core Hac_index List Option
