test/test_vpath.ml: Alcotest Hac_vfs List QCheck QCheck_alcotest String
