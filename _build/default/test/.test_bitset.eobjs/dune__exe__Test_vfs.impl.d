test/test_vfs.ml: Alcotest Format Hac_vfs List String
