test/test_uidmap.mli:
