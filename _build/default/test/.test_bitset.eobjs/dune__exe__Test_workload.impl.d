test/test_workload.ml: Alcotest Array Hac_core Hac_index Hac_vfs Hac_workload List String
