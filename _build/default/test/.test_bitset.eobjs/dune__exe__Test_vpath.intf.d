test/test_vpath.mli:
