test/test_text.ml: Alcotest Hac_index List Printf QCheck QCheck_alcotest String
