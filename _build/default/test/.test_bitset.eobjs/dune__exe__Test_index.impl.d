test/test_index.ml: Alcotest Array Hac_bitset Hac_index Hac_vfs List Option Printf QCheck QCheck_alcotest String
