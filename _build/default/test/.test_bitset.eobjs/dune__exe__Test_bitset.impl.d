test/test_bitset.ml: Alcotest Hac_bitset Int List QCheck QCheck_alcotest Set
