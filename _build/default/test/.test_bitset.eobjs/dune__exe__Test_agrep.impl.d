test/test_agrep.ml: Alcotest Array Bytes Hac_index List QCheck QCheck_alcotest String
