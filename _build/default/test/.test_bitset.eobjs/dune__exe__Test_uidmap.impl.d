test/test_uidmap.ml: Alcotest Hac_core Hac_vfs List Printf QCheck QCheck_alcotest String
