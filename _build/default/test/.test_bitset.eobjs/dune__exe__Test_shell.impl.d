test/test_shell.ml: Alcotest Buffer Hac_core Hac_index Hac_shell List QCheck QCheck_alcotest String
