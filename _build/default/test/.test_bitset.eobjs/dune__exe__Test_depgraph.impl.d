test/test_depgraph.ml: Alcotest Hac_depgraph Hashtbl List Option Printf QCheck QCheck_alcotest String
