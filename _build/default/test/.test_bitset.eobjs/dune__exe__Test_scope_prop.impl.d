test/test_scope_prop.ml: Alcotest Hac_core Hac_index Hac_vfs List Printf QCheck QCheck_alcotest Set String
