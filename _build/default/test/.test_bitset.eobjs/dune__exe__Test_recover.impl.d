test/test_recover.ml: Alcotest Hac_core Hac_index Hac_remote Hac_vfs List String
