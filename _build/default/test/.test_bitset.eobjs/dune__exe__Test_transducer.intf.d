test/test_transducer.mli:
