test/test_query.ml: Alcotest Format Fun Hac_bitset Hac_query Hashtbl List Option QCheck QCheck_alcotest String
