test/test_hac.ml: Alcotest Hac_core Hac_vfs List Printf
