test/test_agrep.mli:
