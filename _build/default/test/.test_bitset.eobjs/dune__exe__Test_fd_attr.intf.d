test/test_fd_attr.mli:
