test/test_regex.ml: Alcotest Hac_core Hac_index List Printf QCheck QCheck_alcotest Str String
