test/test_hac.mli:
