test/test_consistency_prop.mli:
