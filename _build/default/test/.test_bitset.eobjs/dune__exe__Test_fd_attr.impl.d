test/test_fd_attr.ml: Alcotest Hac_vfs List Printf
