test/test_consistency_prop.ml: Alcotest Array Hac_bitset Hac_core Hac_index Hac_vfs List Printf QCheck QCheck_alcotest Set String
