test/test_recover.mli:
