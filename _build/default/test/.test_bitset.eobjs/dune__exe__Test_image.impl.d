test/test_image.ml: Alcotest Filename Hac_core Hac_index Hac_shell Hac_vfs List Printf String Sys
