test/test_scope_prop.mli:
