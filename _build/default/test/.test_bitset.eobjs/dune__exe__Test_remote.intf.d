test/test_remote.mli:
