test/test_remote.ml: Alcotest Hac_core Hac_index Hac_remote Hac_vfs List
