(* Differential property tests for data consistency (section 2.4): after any
   sequence of file operations and a reindex, the content index must agree
   exactly with the file system — and searching must find exactly the files
   whose current contents match. *)

module Hac = Hac_core.Hac
module Fs = Hac_vfs.Fs
module Vpath = Hac_vfs.Vpath
module Index = Hac_index.Index
module Search = Hac_index.Search
module Fileset = Hac_bitset.Fileset
module StrSet = Set.Make (String)

let files = [| "/d0/a.txt"; "/d0/b.txt"; "/d1/c.txt"; "/d1/d.txt"; "/d2/e.txt" |]

let words = [| "red"; "green"; "blue"; "cyan" |]

type op =
  | Write of int * int (* file slot, word slot *)
  | Delete of int
  | MoveFile of int * int
  | MoveDir (* shuffle /d1 <-> /d3 *)

let pp_op = function
  | Write (f, w) -> Printf.sprintf "Write(%d,%d)" f w
  | Delete f -> Printf.sprintf "Delete(%d)" f
  | MoveFile (a, b) -> Printf.sprintf "MoveFile(%d,%d)" a b
  | MoveDir -> "MoveDir"

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun f w -> Write (f, w)) (int_bound 4) (int_bound 3));
        (2, map (fun f -> Delete f) (int_bound 4));
        (2, map2 (fun a b -> MoveFile (a, b)) (int_bound 4) (int_bound 4));
        (1, return MoveDir);
      ])

let arb_ops =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 30) gen_op)
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))

let apply t op =
  let ignore_errors f = try f () with Hac_vfs.Errno.Error _ | Hac.Hac_error _ -> () in
  match op with
  | Write (f, w) ->
      ignore_errors (fun () ->
          Hac.write_file t files.(f) (Printf.sprintf "some %s text\n" words.(w)))
  | Delete f -> ignore_errors (fun () -> Hac.unlink t files.(f))
  | MoveFile (a, b) ->
      ignore_errors (fun () -> Hac.rename t ~src:files.(a) ~dst:files.(b))
  | MoveDir ->
      ignore_errors (fun () ->
          if Hac.exists t "/d1" then Hac.rename t ~src:"/d1" ~dst:"/d3"
          else Hac.rename t ~src:"/d3" ~dst:"/d1")

let fs_files t =
  Fs.find_files (Hac.fs t) "/"
  |> List.filter (fun p -> not (Vpath.is_prefix ~prefix:"/.hac" p))
  |> StrSet.of_list

let indexed_files t =
  Fileset.fold
    (fun id acc ->
      match Index.doc_path (Hac.index t) id with
      | Some p -> StrSet.add p acc
      | None -> acc)
    (Index.universe (Hac.index t))
    StrSet.empty

let build ops =
  let t = Hac.create ~stem:false () in
  List.iter (fun d -> Hac.mkdir_p t d) [ "/d0"; "/d1"; "/d2" ];
  List.iter (apply t) ops;
  ignore (Hac.reindex t ());
  t

let prop_index_matches_fs =
  QCheck.Test.make ~name:"after reindex the index mirrors the fs" ~count:200 arb_ops
    (fun ops ->
      let t = build ops in
      if not (StrSet.equal (fs_files t) (indexed_files t)) then
        QCheck.Test.fail_reportf "fs {%s} vs index {%s}"
          (String.concat ", " (StrSet.elements (fs_files t)))
          (String.concat ", " (StrSet.elements (indexed_files t)))
      else true)

let prop_search_matches_grep =
  QCheck.Test.make ~name:"search equals a grep over the fs" ~count:200 arb_ops
    (fun ops ->
      let t = build ops in
      let reader p =
        try Some (Fs.read_file (Hac.fs t) p) with Hac_vfs.Errno.Error _ -> None
      in
      List.for_all
        (fun w ->
          let found =
            Fileset.fold
              (fun id acc ->
                match Index.doc_path (Hac.index t) id with
                | Some p -> StrSet.add p acc
                | None -> acc)
              (Search.search_word (Hac.index t) reader w)
              StrSet.empty
          in
          let expect =
            StrSet.filter
              (fun p ->
                Hac_index.Tokenizer.contains_word (Fs.read_file (Hac.fs t) p) w)
              (fs_files t)
          in
          StrSet.equal found expect)
        (Array.to_list words))

let prop_dirty_clears =
  QCheck.Test.make ~name:"reindex leaves nothing dirty" ~count:200 arb_ops (fun ops ->
      let t = build ops in
      Hac.dirty_count t = 0)

let () =
  Alcotest.run "consistency_prop"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_index_matches_fs; prop_search_matches_grep; prop_dirty_clears ] );
    ]
