(* Tests for attribute transducers (SFS-style metadata extraction) and their
   integration with the index and the query language. *)

module Transducer = Hac_index.Transducer
module Index = Hac_index.Index
module Fileset = Hac_bitset.Fileset
module Hac = Hac_core.Hac
module Link = Hac_core.Link

let check_bool = Alcotest.(check bool)

let check_list = Alcotest.(check (list string))

let check_pairs = Alcotest.(check (list (pair string string)))

let mail =
  "From: Ana Lopez\nTo: bob\nSubject: Budget Draft\n\nPlease review the numbers.\n"

(* -- extraction units ---------------------------------------------------------- *)

let test_email_extraction () =
  let attrs = Transducer.email.Transducer.extract ~path:"/m.eml" ~content:mail in
  check_bool "from" true (List.mem ("from", "ana lopez") attrs);
  check_bool "to" true (List.mem ("to", "bob") attrs);
  check_bool "whole subject" true (List.mem ("subject", "budget draft") attrs);
  check_bool "subject word" true (List.mem ("subject", "budget") attrs);
  check_bool "body not headers" false (List.exists (fun (k, _) -> k = "please") attrs)

let test_email_ignores_nonmail () =
  check_pairs "plain text yields nothing" []
    (Transducer.email.Transducer.extract ~path:"/t.txt" ~content:"just some words\n")

let test_key_value () =
  let attrs =
    Transducer.key_value.Transducer.extract ~path:"/c.conf"
      ~content:"host: example\nport: 8080\n\nbody text: ignored? no - line 4 counts\n"
  in
  check_bool "host" true (List.mem ("host", "example") attrs);
  check_bool "port" true (List.mem ("port", "8080") attrs);
  (* Keys must be all letters. *)
  check_pairs "weird keys dropped" []
    (Transducer.key_value.Transducer.extract ~path:"/x" ~content:"a1b2: nope\n")

let test_file_type () =
  let ty path content =
    List.assoc "type" (Transducer.file_type.Transducer.extract ~path ~content)
  in
  Alcotest.(check string) "code" "code" (ty "/a.ml" "let x = 1");
  Alcotest.(check string) "mail ext" "mail" (ty "/a.eml" "hi");
  Alcotest.(check string) "mail sniffed" "mail" (ty "/a" mail);
  Alcotest.(check string) "text" "text" (ty "/a.txt" "plain words")

let test_combine () =
  let td = Transducer.combine [ Transducer.email; Transducer.file_type ] in
  let attrs = td.Transducer.extract ~path:"/m.eml" ~content:mail in
  check_bool "email attrs present" true (List.mem_assoc "from" attrs);
  check_bool "type present" true (List.mem_assoc "type" attrs)

(* -- index integration ----------------------------------------------------------- *)

let test_index_attr_docs () =
  let idx = Index.create ~block_size:1 ~transducer:Transducer.email () in
  let id = Index.add_document idx ~path:"/m1.eml" ~content:mail in
  ignore (Index.add_document idx ~path:"/m2.eml" ~content:"From: carol\n\nhi\n");
  check_bool "by from" true (Fileset.mem (Index.attr_docs idx "from" "ana lopez") id);
  check_bool "case folded" true (Fileset.mem (Index.attr_docs idx "FROM" "Ana Lopez") id);
  check_bool "other doc not" false (Fileset.mem (Index.attr_docs idx "from" "carol") id);
  check_bool "unknown attr empty" true (Fileset.is_empty (Index.attr_docs idx "zz" "x"));
  check_bool "attributes listed" true (List.mem ("from", "carol") (Index.attributes idx))

let test_index_without_transducer () =
  let idx = Index.create () in
  ignore (Index.add_document idx ~path:"/m.eml" ~content:mail);
  check_bool "no transducer, no attrs" true (Fileset.is_empty (Index.attr_docs idx "from" "ana lopez"))

let test_rebuild_keeps_attrs () =
  let docs = [ ("/m1.eml", mail) ] in
  let idx = Index.create ~block_size:1 ~transducer:Transducer.email () in
  List.iter (fun (p, c) -> ignore (Index.add_document idx ~path:p ~content:c)) docs;
  Index.rebuild idx (fun id -> Option.bind (Index.doc_path idx id) (fun p -> List.assoc_opt p docs));
  check_bool "attrs survive rebuild" false
    (Fileset.is_empty (Index.attr_docs idx "from" "ana lopez"))

(* -- end to end through HAC --------------------------------------------------------- *)

let mail_world () =
  let t =
    Hac.create ~auto_sync:true
      ~transducer:(Transducer.combine [ Transducer.email; Transducer.file_type ])
      ()
  in
  Hac.mkdir_p t "/mail";
  Hac.write_file t "/mail/m1.eml" "From: ana\nSubject: budget\n\nnumbers\n";
  Hac.write_file t "/mail/m2.eml" "From: bob\nSubject: lunch\n\nfood\n";
  Hac.write_file t "/mail/m3.eml" "From: ana\nSubject: offsite\n\ntravel\n";
  Hac.write_file t "/notes.txt" "ana wrote about the budget\n";
  t

let transient_targets t dir =
  Hac.links t dir
  |> List.filter_map (fun l ->
         if l.Link.cls = Link.Transient then Some (Link.target_key l.Link.target) else None)
  |> List.sort compare

let test_attr_query_through_hac () =
  let t = mail_world () in
  Hac.smkdir t "/from-ana" "from:ana";
  (* Attribute match, not content match: notes.txt merely contains "ana". *)
  check_list "only ana's mail" [ "/mail/m1.eml"; "/mail/m3.eml" ] (transient_targets t "/from-ana");
  Hac.smkdir t "/ana-budget" "from:ana AND subject:budget";
  check_list "conjunction with attrs" [ "/mail/m1.eml" ] (transient_targets t "/ana-budget");
  Hac.smkdir t "/mailish" "type:mail";
  check_list "type attribute" [ "/mail/m1.eml"; "/mail/m2.eml"; "/mail/m3.eml" ]
    (transient_targets t "/mailish")

let test_attr_query_tracks_updates () =
  let t = mail_world () in
  Hac.smkdir t "/from-ana" "from:ana";
  Hac.write_file t "/mail/m4.eml" "From: ana\nSubject: new one\n\nmore\n";
  check_list "new mail appears"
    [ "/mail/m1.eml"; "/mail/m3.eml"; "/mail/m4.eml" ]
    (transient_targets t "/from-ana");
  (* Changing the sender moves the message out at the next settle. *)
  Hac.write_file t "/mail/m1.eml" "From: dave\nSubject: budget\n\nnumbers\n";
  ignore (Hac.reindex t ());
  check_list "rewritten sender leaves"
    [ "/mail/m3.eml"; "/mail/m4.eml" ]
    (transient_targets t "/from-ana")

let test_attr_no_transducer_empty () =
  let t = Hac.create ~auto_sync:true () in
  Hac.write_file t "/m.eml" mail;
  Hac.smkdir t "/q" "from:ana";
  check_list "no transducer -> nothing" [] (transient_targets t "/q")

let () =
  Alcotest.run "transducer"
    [
      ( "extraction",
        [
          Alcotest.test_case "email" `Quick test_email_extraction;
          Alcotest.test_case "email vs plain text" `Quick test_email_ignores_nonmail;
          Alcotest.test_case "key_value" `Quick test_key_value;
          Alcotest.test_case "file_type" `Quick test_file_type;
          Alcotest.test_case "combine" `Quick test_combine;
        ] );
      ( "index",
        [
          Alcotest.test_case "attr_docs" `Quick test_index_attr_docs;
          Alcotest.test_case "without transducer" `Quick test_index_without_transducer;
          Alcotest.test_case "rebuild keeps attrs" `Quick test_rebuild_keeps_attrs;
        ] );
      ( "hac",
        [
          Alcotest.test_case "attr queries" `Quick test_attr_query_through_hac;
          Alcotest.test_case "tracks updates" `Quick test_attr_query_tracks_updates;
          Alcotest.test_case "no transducer" `Quick test_attr_no_transducer_empty;
        ] );
    ]
