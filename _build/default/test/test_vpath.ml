(* Unit and property tests for Hac_vfs.Vpath — the lexical path rules every
   other layer relies on. *)

module Vpath = Hac_vfs.Vpath

let check_str = Alcotest.(check string)

let check_bool = Alcotest.(check bool)

let test_normalize () =
  check_str "identity" "/a/b" (Vpath.normalize "/a/b");
  check_str "trailing slash" "/a" (Vpath.normalize "/a/");
  check_str "duplicate slashes" "/a/b" (Vpath.normalize "//a///b");
  check_str "dot" "/a/b" (Vpath.normalize "/a/./b");
  check_str "dotdot" "/b" (Vpath.normalize "/a/../b");
  check_str "dotdot above root" "/a" (Vpath.normalize "/../../a");
  check_str "root" "/" (Vpath.normalize "/");
  check_str "empty" "/" (Vpath.normalize "");
  check_str "relative becomes absolute" "/x/y" (Vpath.normalize "x/y")

let test_normalize_under () =
  check_str "relative under cwd" "/home/a/f" (Vpath.normalize_under ~cwd:"/home/a" "f");
  check_str "dotdot under cwd" "/home/f" (Vpath.normalize_under ~cwd:"/home/a" "../f");
  check_str "absolute ignores cwd" "/etc" (Vpath.normalize_under ~cwd:"/home/a" "/etc")

let test_split_join () =
  Alcotest.(check (list string)) "split" [ "a"; "b" ] (Vpath.split "/a/b");
  Alcotest.(check (list string)) "split root" [] (Vpath.split "/");
  check_str "join" "/a/b/c" (Vpath.join "/a/b" "c");
  check_str "join relative path" "/a/b/c/d" (Vpath.join "/a/b" "c/d");
  check_str "join absolute replaces" "/z" (Vpath.join "/a/b" "/z");
  check_str "join dotdot" "/a" (Vpath.join "/a/b" "..")

let test_basename_dirname () =
  check_str "basename" "c" (Vpath.basename "/a/b/c");
  check_str "basename root" "" (Vpath.basename "/");
  check_str "dirname" "/a/b" (Vpath.dirname "/a/b/c");
  check_str "dirname one level" "/" (Vpath.dirname "/a");
  check_str "dirname root" "/" (Vpath.dirname "/")

let test_prefix () =
  check_bool "self prefix" true (Vpath.is_prefix ~prefix:"/a/b" "/a/b");
  check_bool "strict prefix" true (Vpath.is_prefix ~prefix:"/a/b" "/a/b/c");
  check_bool "not component prefix" false (Vpath.is_prefix ~prefix:"/a/b" "/a/bc");
  check_bool "root prefixes all" true (Vpath.is_prefix ~prefix:"/" "/x");
  check_bool "deeper not prefix" false (Vpath.is_prefix ~prefix:"/a/b/c" "/a/b")

let test_replace_prefix () =
  Alcotest.(check (option string))
    "basic" (Some "/b/x")
    (Vpath.replace_prefix ~prefix:"/a" ~by:"/b" "/a/x");
  Alcotest.(check (option string))
    "exact" (Some "/b")
    (Vpath.replace_prefix ~prefix:"/a" ~by:"/b" "/a");
  Alcotest.(check (option string))
    "not prefix" None
    (Vpath.replace_prefix ~prefix:"/a" ~by:"/b" "/ax");
  Alcotest.(check (option string))
    "root prefix" (Some "/b/a/x")
    (Vpath.replace_prefix ~prefix:"/" ~by:"/b" "/a/x");
  Alcotest.(check (option string))
    "deeper destination" (Some "/p/q/x")
    (Vpath.replace_prefix ~prefix:"/a" ~by:"/p/q" "/a/x")

let test_valid_name () =
  check_bool "plain" true (Vpath.valid_name "file.txt");
  check_bool "empty" false (Vpath.valid_name "");
  check_bool "dot" false (Vpath.valid_name ".");
  check_bool "dotdot" false (Vpath.valid_name "..");
  check_bool "slash" false (Vpath.valid_name "a/b");
  check_bool "tilde ok" true (Vpath.valid_name "name~2")

let test_depth () =
  Alcotest.(check int) "root" 0 (Vpath.depth "/");
  Alcotest.(check int) "two" 2 (Vpath.depth "/a/b")

(* -- properties ------------------------------------------------------------ *)

let name_gen =
  QCheck.Gen.(
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 1 8) (oneof [ char_range 'a' 'z'; return '.' ])))
  |> QCheck.make ~print:(fun s -> s)

let path_gen =
  QCheck.Gen.(
    map
      (fun parts -> "/" ^ String.concat "/" parts)
      (list_size (int_range 0 6)
         (map
            (fun cs -> String.concat "" (List.map (String.make 1) cs))
            (list_size (int_range 1 6) (char_range 'a' 'z')))))
  |> QCheck.make ~print:(fun s -> s)

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"normalize idempotent" ~count:500 path_gen (fun p ->
      Vpath.normalize (Vpath.normalize p) = Vpath.normalize p)

let prop_join_normalized =
  QCheck.Test.make ~name:"join yields normalized" ~count:500
    (QCheck.pair path_gen name_gen)
    (fun (d, n) ->
      let j = Vpath.join d n in
      Vpath.normalize j = j && Vpath.is_absolute j)

let prop_dirname_basename =
  QCheck.Test.make ~name:"join (dirname p) (basename p) = p" ~count:500 path_gen
    (fun p ->
      let p = Vpath.normalize p in
      p = "/" || Vpath.join (Vpath.dirname p) (Vpath.basename p) = p)

let prop_replace_prefix_preserves_suffix =
  QCheck.Test.make ~name:"replace_prefix round trip" ~count:500
    (QCheck.pair path_gen name_gen)
    (fun (d, n) ->
      QCheck.assume (Vpath.valid_name n);
      let p = Vpath.join d n in
      match Vpath.replace_prefix ~prefix:d ~by:"/elsewhere" p with
      | Some r -> r = Vpath.join "/elsewhere" n
      | None -> false)

let () =
  Alcotest.run "vpath"
    [
      ( "units",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "normalize_under" `Quick test_normalize_under;
          Alcotest.test_case "split/join" `Quick test_split_join;
          Alcotest.test_case "basename/dirname" `Quick test_basename_dirname;
          Alcotest.test_case "is_prefix" `Quick test_prefix;
          Alcotest.test_case "replace_prefix" `Quick test_replace_prefix;
          Alcotest.test_case "valid_name" `Quick test_valid_name;
          Alcotest.test_case "depth" `Quick test_depth;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_normalize_idempotent;
            prop_join_normalized;
            prop_dirname_basename;
            prop_replace_prefix_preserves_suffix;
          ] );
    ]
