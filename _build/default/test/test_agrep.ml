(* Tests for the bitap/agrep engine: exact matching, approximate matching
   with k errors (validated against a reference Levenshtein implementation)
   and the edit-distance helper itself. *)

module Agrep = Hac_index.Agrep

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_opt = Alcotest.(check (option int))

(* -- exact -------------------------------------------------------------------- *)

let test_find_exact () =
  check_opt "at start" (Some 0) (Agrep.find_exact ~pattern:"abc" "abcdef");
  check_opt "in middle" (Some 3) (Agrep.find_exact ~pattern:"def" "abcdefgh");
  check_opt "at end" (Some 5) (Agrep.find_exact ~pattern:"fgh" "abcdefgh");
  check_opt "absent" None (Agrep.find_exact ~pattern:"zzz" "abcdefgh");
  check_opt "empty pattern" (Some 0) (Agrep.find_exact ~pattern:"" "abc");
  check_opt "pattern longer than text" None (Agrep.find_exact ~pattern:"abcd" "abc")

let test_count_exact () =
  check_int "overlapping" 3 (Agrep.count_exact ~pattern:"aa" "aaaa");
  check_int "disjoint" 2 (Agrep.count_exact ~pattern:"ab" "abab");
  check_int "none" 0 (Agrep.count_exact ~pattern:"x" "abab");
  check_int "empty pattern" 0 (Agrep.count_exact ~pattern:"" "abab")

let test_pattern_too_long () =
  let long = String.make (Agrep.max_pattern_len + 1) 'a' in
  Alcotest.check_raises "too long"
    (Invalid_argument "Agrep: pattern longer than a machine word")
    (fun () -> ignore (Agrep.find_exact ~pattern:long "text"))

(* -- approximate ---------------------------------------------------------------- *)

let test_find_approx_basic () =
  check_bool "exact counts as 0 errors" true
    (Agrep.matches_approx ~pattern:"hello" ~errors:0 "say hello there");
  check_bool "one substitution" true
    (Agrep.matches_approx ~pattern:"hello" ~errors:1 "say hallo there");
  check_bool "one deletion in text" true
    (Agrep.matches_approx ~pattern:"hello" ~errors:1 "say hllo there");
  check_bool "one insertion in text" true
    (Agrep.matches_approx ~pattern:"hello" ~errors:1 "say heXllo there");
  check_bool "two errors refused at k=1" false
    (Agrep.matches_approx ~pattern:"hello" ~errors:1 "say hXlXo there");
  check_bool "two errors accepted at k=2" true
    (Agrep.matches_approx ~pattern:"hello" ~errors:2 "say hXlXo there")

let test_find_approx_degenerate () =
  check_opt "empty pattern" (Some 0) (Agrep.find_approx ~pattern:"" ~errors:1 "abc");
  check_bool "k >= pattern length matches anything" true
    (Agrep.matches_approx ~pattern:"ab" ~errors:2 "zzz");
  Alcotest.check_raises "negative errors"
    (Invalid_argument "Agrep.find_approx: negative errors") (fun () ->
      ignore (Agrep.find_approx ~pattern:"a" ~errors:(-1) "a"))

(* -- edit distance ---------------------------------------------------------------- *)

(* Reference implementation: full DP matrix. *)
let reference_edit_distance a b =
  let la = String.length a and lb = String.length b in
  let d = Array.make_matrix (la + 1) (lb + 1) 0 in
  for i = 0 to la do
    d.(i).(0) <- i
  done;
  for j = 0 to lb do
    d.(0).(j) <- j
  done;
  for i = 1 to la do
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      d.(i).(j) <-
        min (min (d.(i - 1).(j) + 1) (d.(i).(j - 1) + 1)) (d.(i - 1).(j - 1) + cost)
    done
  done;
  d.(la).(lb)

let test_edit_distance_units () =
  check_int "identical" 0 (Agrep.edit_distance "same" "same");
  check_int "empty vs word" 4 (Agrep.edit_distance "" "word");
  check_int "substitution" 1 (Agrep.edit_distance "cat" "cut");
  check_int "kitten/sitting" 3 (Agrep.edit_distance "kitten" "sitting");
  check_int "cutoff exceeded" 2 (Agrep.edit_distance ~cutoff:1 "abcdef" "uvwxyz")

let test_word_matches () =
  check_bool "within budget" true (Agrep.word_matches ~pattern:"color" ~errors:1 "colour");
  check_bool "exact" true (Agrep.word_matches ~pattern:"color" ~errors:0 "color");
  check_bool "too far" false (Agrep.word_matches ~pattern:"color" ~errors:1 "colours")

(* -- properties --------------------------------------------------------------------- *)

let word_gen =
  QCheck.Gen.(
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 0 10) (char_range 'a' 'd')))
  |> QCheck.make ~print:(fun s -> s)

let prop_edit_distance_matches_reference =
  QCheck.Test.make ~name:"edit_distance matches reference DP" ~count:1000
    (QCheck.pair word_gen word_gen)
    (fun (a, b) -> Agrep.edit_distance a b = reference_edit_distance a b)

let prop_edit_distance_symmetric =
  QCheck.Test.make ~name:"edit_distance symmetric" ~count:500
    (QCheck.pair word_gen word_gen)
    (fun (a, b) -> Agrep.edit_distance a b = Agrep.edit_distance b a)

let prop_find_exact_matches_substring =
  QCheck.Test.make ~name:"find_exact agrees with a naive scan" ~count:1000
    (QCheck.pair word_gen word_gen)
    (fun (pat, text) ->
      QCheck.assume (String.length pat > 0);
      let naive () =
        let m = String.length pat and n = String.length text in
        let rec go i =
          if i + m > n then None
          else if String.sub text i m = pat then Some i
          else go (i + 1)
        in
        go 0
      in
      Agrep.find_exact ~pattern:pat text = naive ())

(* Whole-word approx must agree with edit distance by definition. *)
let prop_word_matches_is_edit_distance =
  QCheck.Test.make ~name:"word_matches consistent with edit_distance" ~count:1000
    (QCheck.triple word_gen word_gen (QCheck.int_bound 3))
    (fun (a, b, k) -> Agrep.word_matches ~pattern:a ~errors:k b = (reference_edit_distance a b <= k))

(* If pattern occurs within distance k as a whole word of the text, the
   sliding approx search must find something too. *)
let prop_approx_finds_planted =
  QCheck.Test.make ~name:"approx search finds planted near-match" ~count:500
    (QCheck.pair word_gen (QCheck.int_bound 2))
    (fun (w, k) ->
      QCheck.assume (String.length w > k);
      (* Mutate w with exactly <= k substitutions. *)
      let b = Bytes.of_string w in
      for i = 0 to k - 1 do
        if i < Bytes.length b then Bytes.set b i 'z'
      done;
      let mutated = Bytes.to_string b in
      let text = "prefix " ^ mutated ^ " suffix" in
      Agrep.matches_approx ~pattern:w ~errors:k text)

let () =
  Alcotest.run "agrep"
    [
      ( "exact",
        [
          Alcotest.test_case "find_exact" `Quick test_find_exact;
          Alcotest.test_case "count_exact" `Quick test_count_exact;
          Alcotest.test_case "pattern too long" `Quick test_pattern_too_long;
        ] );
      ( "approximate",
        [
          Alcotest.test_case "basic edits" `Quick test_find_approx_basic;
          Alcotest.test_case "degenerate cases" `Quick test_find_approx_degenerate;
        ] );
      ( "edit distance",
        [
          Alcotest.test_case "units" `Quick test_edit_distance_units;
          Alcotest.test_case "word_matches" `Quick test_word_matches;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_edit_distance_matches_reference;
            prop_edit_distance_symmetric;
            prop_find_exact_matches_substring;
            prop_word_matches_is_edit_distance;
            prop_approx_finds_planted;
          ] );
    ]
