(* Property test of the paper's scope invariant (section 2.3).

   A random sequence of user operations (file writes and deletions, semantic
   directory creation, link deletion, permanent additions, query changes) is
   applied; after settling (reindex + sync_all) every semantic directory
   must satisfy, against an INDEPENDENT re-implementation of the scope
   definition:

     transient(sd) = { f in scope(parent sd) | f matches query(sd) }
                     \ prohibited(sd) \ permanent(sd) \ subtree(sd)

   The oracle here recomputes scopes from first principles (walking the real
   file system), so any disagreement flags a consistency bug rather than a
   shared mistake. *)

module Hac = Hac_core.Hac
module Link = Hac_core.Link
module Fs = Hac_vfs.Fs
module Vpath = Hac_vfs.Vpath
module Tokenizer = Hac_index.Tokenizer
module StrSet = Set.Make (String)

(* A small fixed world of paths and words keeps the generator dense. *)
let file_paths =
  [ "/docs/f0.txt"; "/docs/f1.txt"; "/docs/sub/f2.txt"; "/docs/sub/f3.txt"; "/misc/f4.txt" ]

let words = [ "red"; "green"; "blue" ]

let semdir_paths = [ "/s0"; "/s1"; "/s0/n0" ]

type op =
  | Write of int * bool list (* which words the file contains *)
  | Delete of int
  | Smkdir of int * int (* semdir slot, query word *)
  | RemoveSomeLink of int
  | AddPermanent of int * int (* semdir slot, file slot *)
  | Schquery of int * int

let pp_op = function
  | Write (i, ws) ->
      Printf.sprintf "Write(%d,[%s])" i (String.concat "" (List.map (fun b -> if b then "1" else "0") ws))
  | Delete i -> Printf.sprintf "Delete(%d)" i
  | Smkdir (s, w) -> Printf.sprintf "Smkdir(%d,%d)" s w
  | RemoveSomeLink s -> Printf.sprintf "RemoveSomeLink(%d)" s
  | AddPermanent (s, f) -> Printf.sprintf "AddPermanent(%d,%d)" s f
  | Schquery (s, w) -> Printf.sprintf "Schquery(%d,%d)" s w

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun i ws -> Write (i, ws)) (int_bound 4) (list_size (return 3) bool));
        (2, map (fun i -> Delete i) (int_bound 4));
        (3, map2 (fun s w -> Smkdir (s, w)) (int_bound 2) (int_bound 2));
        (2, map (fun s -> RemoveSomeLink s) (int_bound 2));
        (2, map2 (fun s f -> AddPermanent (s, f)) (int_bound 2) (int_bound 4));
        (2, map2 (fun s w -> Schquery (s, w)) (int_bound 2) (int_bound 2));
      ])

let arb_ops =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 25) gen_op)
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))

let content_for flags =
  let chosen = List.filteri (fun i _ -> List.nth flags i) words in
  "filler text " ^ String.concat " " chosen ^ "\n"

let apply t op =
  (* User-level ops may legitimately fail (missing file, existing dir...);
     that's part of the random walk. *)
  let ignore_errors f = try f () with Hac_vfs.Errno.Error _ | Hac.Hac_error _ -> () in
  match op with
  | Write (i, flags) ->
      ignore_errors (fun () -> Hac.write_file t (List.nth file_paths i) (content_for flags))
  | Delete i -> ignore_errors (fun () -> Hac.unlink t (List.nth file_paths i))
  | Smkdir (s, w) ->
      ignore_errors (fun () -> Hac.smkdir t (List.nth semdir_paths s) (List.nth words w))
  | RemoveSomeLink s ->
      ignore_errors (fun () ->
          let dir = List.nth semdir_paths s in
          match Hac.links t dir with
          | l :: _ -> Hac.remove_link t ~dir ~name:l.Link.name
          | [] -> ())
  | AddPermanent (s, f) ->
      ignore_errors (fun () ->
          ignore (Hac.add_permanent t ~dir:(List.nth semdir_paths s) ~target:(List.nth file_paths f)))
  | Schquery (s, w) ->
      ignore_errors (fun () -> Hac.schquery t (List.nth semdir_paths s) (List.nth words w))

(* -- the independent oracle ------------------------------------------------- *)

(* HAC's own metadata area is invisible to indexing and scopes. *)
let all_files fs =
  Fs.find_files fs "/"
  |> List.filter (fun p -> not (Vpath.is_prefix ~prefix:"/.hac" p))
  |> StrSet.of_list

let files_under fs prefix =
  StrSet.filter (fun p -> Vpath.is_prefix ~prefix p) (all_files fs)

let link_targets_of t dir ~cls_filter =
  Hac.links t dir
  |> List.filter_map (fun l ->
         match (l.Link.target, cls_filter) with
         | Link.Local p, None -> Some p
         | Link.Local p, Some c when l.Link.cls = c -> Some p
         | _ -> None)
  |> StrSet.of_list

(* Scope a directory provides: for a semantic dir, its links plus physical
   files below it; otherwise just the files below it ("/" = everything). *)
let oracle_scope t fs dir =
  if Hac.is_semantic t dir then
    StrSet.union (link_targets_of t dir ~cls_filter:None) (files_under fs dir)
  else files_under fs dir

let matches fs word path =
  match Fs.read_file fs path with
  | content -> Tokenizer.contains_word content word
  | exception Hac_vfs.Errno.Error _ -> false

let check_invariant t fs dir =
  match Hac.sreadin t dir with
  | None -> true
  | Some query_word ->
      let parent = Vpath.dirname dir in
      let scope = oracle_scope t fs parent in
      let prohibited = StrSet.of_list (Hac.prohibited t dir) in
      let permanent = link_targets_of t dir ~cls_filter:(Some Link.Permanent) in
      let expected =
        scope
        |> StrSet.filter (fun p -> matches fs query_word p)
        |> (fun s -> StrSet.diff s prohibited)
        |> (fun s -> StrSet.diff s permanent)
        |> StrSet.filter (fun p -> not (Vpath.is_prefix ~prefix:dir p))
      in
      let actual = link_targets_of t dir ~cls_filter:(Some Link.Transient) in
      if StrSet.equal expected actual then true
      else
        QCheck.Test.fail_reportf
          "scope invariant violated at %s (query %s):@ expected {%s}@ actual {%s}" dir
          query_word
          (String.concat ", " (StrSet.elements expected))
          (String.concat ", " (StrSet.elements actual))

let prop_scope_invariant =
  QCheck.Test.make ~name:"scope invariant holds after random ops" ~count:150 arb_ops
    (fun ops ->
      (* Queries here are single words with stemming off, so the oracle's
         word-containment check is exactly the system's match semantics. *)
      let t = Hac.create ~stem:false () in
      Hac.mkdir_p t "/docs/sub";
      Hac.mkdir_p t "/misc";
      List.iter (apply t) ops;
      ignore (Hac.reindex t ());
      Hac.sync_all t;
      let fs = Hac.fs t in
      List.for_all (fun d -> check_invariant t fs d) (Hac.semantic_dirs t))

(* A second walk in eager mode: auto_sync must maintain the same invariant
   continuously (checked at the end, but without an explicit settle). *)
let prop_scope_invariant_auto =
  QCheck.Test.make ~name:"scope invariant holds in auto_sync mode" ~count:75 arb_ops
    (fun ops ->
      let t = Hac.create ~stem:false ~auto_sync:true () in
      Hac.mkdir_p t "/docs/sub";
      Hac.mkdir_p t "/misc";
      List.iter (apply t) ops;
      let fs = Hac.fs t in
      List.for_all (fun d -> check_invariant t fs d) (Hac.semantic_dirs t))

(* Prohibited targets must never be linked, settled or not. *)
let prop_prohibited_never_linked =
  QCheck.Test.make ~name:"prohibited targets never appear as links" ~count:150 arb_ops
    (fun ops ->
      let t = Hac.create ~stem:false ~auto_sync:true () in
      Hac.mkdir_p t "/docs/sub";
      Hac.mkdir_p t "/misc";
      List.iter (apply t) ops;
      List.for_all
        (fun dir ->
          let prohibited = StrSet.of_list (Hac.prohibited t dir) in
          List.for_all
            (fun l -> not (StrSet.mem (Link.target_key l.Link.target) prohibited))
            (Hac.links t dir))
        (Hac.semantic_dirs t))

let () =
  Alcotest.run "scope_prop"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_scope_invariant;
            prop_scope_invariant_auto;
            prop_prohibited_never_linked;
          ] );
    ]
