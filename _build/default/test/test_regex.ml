(* Tests for the Thompson-NFA regex engine: unit semantics, anchors, the
   required-literal extraction, query-language integration — plus a
   differential property test against OCaml's Str library on a shared
   syntax subset. *)

module Regex = Hac_index.Regex
module Hac = Hac_core.Hac
module Link = Hac_core.Link

let check_bool = Alcotest.(check bool)

let m pattern text = Regex.matches (Regex.compile pattern) text

(* -- basics ---------------------------------------------------------------------- *)

let test_literals () =
  check_bool "exact" true (m "abc" "abc");
  check_bool "inside" true (m "abc" "xxabcxx");
  check_bool "absent" false (m "abc" "ab c");
  check_bool "empty pattern matches" true (m "a*" "zzz");
  check_bool "case sensitive" false (m "abc" "ABC")

let test_metachars () =
  check_bool "dot" true (m "a.c" "abc");
  check_bool "dot not newline" false (m "a.c" "a\nc");
  check_bool "star" true (m "ab*c" "ac");
  check_bool "star many" true (m "ab*c" "abbbbc");
  check_bool "plus needs one" false (m "ab+c" "ac");
  check_bool "plus" true (m "ab+c" "abbc");
  check_bool "opt" true (m "colou?r" "color");
  check_bool "opt present" true (m "colou?r" "colour");
  check_bool "alt left" true (m "cat|dog" "hotdog");
  check_bool "alt both sides" true (m "cat|dog" "a cat");
  check_bool "alt neither" false (m "cat|dog" "bird");
  check_bool "group" true (m "(ab)+c" "abababc");
  check_bool "group alt" true (m "(a|b)c" "bc")

let test_classes () =
  check_bool "class" true (m "[abc]x" "bx");
  check_bool "class miss" false (m "[abc]x" "dx");
  check_bool "range" true (m "[a-f]9" "c9");
  check_bool "negated" true (m "[^0-9]z" "az");
  check_bool "negated miss" false (m "[^0-9]z" "5z");
  check_bool "class with dash literal" true (m "[a-]x" "-x");
  check_bool "multi range" true (m "[a-cx-z]1" "y1")

let test_escapes () =
  check_bool "escaped dot" true (m "a\\.c" "a.c");
  check_bool "escaped dot strict" false (m "a\\.c" "abc");
  check_bool "escaped star" true (m "a\\*" "a*");
  check_bool "newline escape" true (m "a\\nb" "a\nb");
  check_bool "tab escape" true (m "\\t" "col\tumn");
  check_bool "escaped slash" true (m "a\\/b" "a/b")

let test_anchors () =
  check_bool "start" true (m "^abc" "abcdef");
  check_bool "start miss" false (m "^abc" "xabc");
  check_bool "end" true (m "abc$" "xxabc");
  check_bool "end miss" false (m "abc$" "abcx");
  check_bool "both" true (m "^abc$" "abc");
  check_bool "both strict" false (m "^abc$" "abcd");
  check_bool "empty both" false (m "^a*$" "bb");
  check_bool "caret inside is literal" true (m "a^b" "x a^b y")

let test_find () =
  let find p t = Regex.find (Regex.compile p) t in
  Alcotest.(check (option (pair int int))) "leftmost" (Some (2, 5)) (find "abc" "xxabcabc");
  Alcotest.(check (option (pair int int))) "none" None (find "zz" "xxabc");
  Alcotest.(check (option (pair int int))) "shortest at start" (Some (1, 2)) (find "ab*" "xay");
  Alcotest.(check (option (pair int int))) "anchored" (Some (0, 2)) (find "^xa" "xay")

let test_parse_errors () =
  let bad p =
    match Regex.compile_result p with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" p
  in
  bad "(ab";
  bad "ab)";
  bad "[abc";
  bad "*a";
  bad "+";
  bad "a\\";
  bad "[z-a]x"

let test_no_backtracking_blowup () =
  (* The classic exponential-backtracking killer must run instantly. *)
  let p = "(a+)+b" and t = String.make 30 'a' ^ "c" in
  check_bool "no match, fast" false (m p t)

let test_source () =
  Alcotest.(check string) "source kept" "a+b" (Regex.source (Regex.compile "a+b"))

(* -- required-literal extraction -------------------------------------------------- *)

let test_required_word () =
  let req p = Regex.required_word (Regex.compile p) in
  Alcotest.(check (option string)) "plain literal" (Some "abc") (req "abc");
  Alcotest.(check (option string)) "longest run" (Some "world") (req "hi.world");
  Alcotest.(check (option string)) "lowercased" (Some "abc") (req "ABC");
  Alcotest.(check (option string)) "stops at star" (Some "ab") (req "abx*");
  Alcotest.(check (option string)) "nothing certain" None (req "a*|b+");
  Alcotest.(check (option string)) "alt kills" None (req "abc|xyz");
  Alcotest.(check (option string)) "plus body required" (Some "abc") (req "(abc)+");
  Alcotest.(check (option string)) "single char too short" None (req "a.b.c")

(* -- query-language integration ---------------------------------------------------- *)

let transient_targets t dir =
  Hac.links t dir
  |> List.filter_map (fun l ->
         if l.Link.cls = Link.Transient then Some (Link.target_key l.Link.target) else None)
  |> List.sort compare

let test_regex_queries () =
  let t = Hac.create ~auto_sync:true ~stem:false () in
  Hac.mkdir_p t "/src";
  Hac.write_file t "/src/a.ml" "let handle_error e = raise e\n";
  Hac.write_file t "/src/b.ml" "let handler x = x + 1\n";
  Hac.write_file t "/src/c.txt" "errors were handled gracefully\n";
  Hac.smkdir t "/q1" "/handle_[a-z]+/";
  Alcotest.(check (list string)) "regex term" [ "/src/a.ml" ] (transient_targets t "/q1");
  Hac.smkdir t "/q2" "/let handler?/ AND ext:ml";
  Alcotest.(check (list string))
    "regex AND attr" [ "/src/a.ml"; "/src/b.ml" ]
    (transient_targets t "/q2");
  Alcotest.(check (option string)) "round trips in sreadin"
    (Some "/handle_[a-z]+/") (Hac.sreadin t "/q1");
  (* Malformed patterns fail at smkdir time like other bad queries... *)
  match Hac.smkdir t "/q3" "/((broken/" with
  | () ->
      (* ...or evaluate to empty if only semantically wrong; either way no
         crash.  The current engine rejects at evaluation, yielding empty. *)
      Alcotest.(check (list string)) "broken regex empty" [] (transient_targets t "/q3")
  | exception Hac.Hac_error _ -> ()

let test_regex_tracks_changes () =
  let t = Hac.create ~auto_sync:true ~stem:false () in
  Hac.write_file t "/log.txt" "status: ok\n";
  Hac.smkdir t "/errs" "/error [0-9]+/";
  Alcotest.(check (list string)) "initially empty" [] (transient_targets t "/errs");
  Hac.write_file t "/log.txt" "status: error 42\n";
  Alcotest.(check (list string)) "appears on change" [ "/log.txt" ] (transient_targets t "/errs")

(* -- differential property vs Str -------------------------------------------------- *)

(* Generate small ASTs over a tiny alphabet, render them both in our syntax
   and in Str's, and compare unanchored search verdicts on random texts. *)
type dast =
  | DChar of char
  | DAny
  | DSeq of dast * dast
  | DAlt of dast * dast
  | DStar of dast
  | DPlus of dast
  | DOpt of dast

let rec render_ours = function
  | DChar c -> String.make 1 c
  | DAny -> "."
  | DSeq (a, b) -> render_ours a ^ render_ours b
  | DAlt (a, b) -> "(" ^ render_ours a ^ "|" ^ render_ours b ^ ")"
  | DStar a -> "(" ^ render_ours a ^ ")*"
  | DPlus a -> "(" ^ render_ours a ^ ")+"
  | DOpt a -> "(" ^ render_ours a ^ ")?"

let rec render_str = function
  | DChar c -> String.make 1 c
  | DAny -> "."
  | DSeq (a, b) -> render_str a ^ render_str b
  | DAlt (a, b) -> "\\(" ^ render_str a ^ "\\|" ^ render_str b ^ "\\)"
  | DStar a -> "\\(" ^ render_str a ^ "\\)*"
  | DPlus a -> "\\(" ^ render_str a ^ "\\)+"
  | DOpt a -> "\\(" ^ render_str a ^ "\\)?"

let gen_dast =
  QCheck.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 1 then
              oneof [ map (fun c -> DChar c) (char_range 'a' 'c'); return DAny ]
            else
              frequency
                [
                  (3, map (fun c -> DChar c) (char_range 'a' 'c'));
                  (2, map2 (fun a b -> DSeq (a, b)) (self (n / 2)) (self (n / 2)));
                  (2, map2 (fun a b -> DAlt (a, b)) (self (n / 2)) (self (n / 2)));
                  (1, map (fun a -> DStar a) (self (n / 2)));
                  (1, map (fun a -> DPlus a) (self (n / 2)));
                  (1, map (fun a -> DOpt a) (self (n / 2)));
                ])
          (min n 8)))

let gen_text =
  QCheck.Gen.(
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 0 12) (char_range 'a' 'd')))

let prop_matches_str =
  QCheck.Test.make ~name:"matches agrees with Str on shared subset" ~count:1500
    (QCheck.make
       QCheck.Gen.(pair gen_dast gen_text)
       ~print:(fun (d, t) -> Printf.sprintf "/%s/ on %S" (render_ours d) t))
    (fun (dast, text) ->
      let ours = m (render_ours dast) text in
      let theirs =
        match Str.search_forward (Str.regexp (render_str dast)) text 0 with
        | _ -> true
        | exception Not_found ->
            (* Str.search_forward misses empty matches at the very end for
               some patterns; check an explicit anchored match everywhere. *)
            List.exists
              (fun i -> Str.string_match (Str.regexp (render_str dast)) text i)
              (List.init (String.length text + 1) (fun i -> i))
      in
      ours = theirs)

let prop_find_consistent =
  QCheck.Test.make ~name:"find implies matches" ~count:500
    (QCheck.make
       QCheck.Gen.(pair gen_dast gen_text)
       ~print:(fun (d, t) -> Printf.sprintf "/%s/ on %S" (render_ours d) t))
    (fun (dast, text) ->
      let re = Regex.compile (render_ours dast) in
      match Regex.find re text with
      | Some (i, j) -> 0 <= i && i <= j && j <= String.length text && Regex.matches re text
      | None -> not (Regex.matches re text))

let () =
  Alcotest.run "regex"
    [
      ( "semantics",
        [
          Alcotest.test_case "literals" `Quick test_literals;
          Alcotest.test_case "metacharacters" `Quick test_metachars;
          Alcotest.test_case "classes" `Quick test_classes;
          Alcotest.test_case "escapes" `Quick test_escapes;
          Alcotest.test_case "anchors" `Quick test_anchors;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "no backtracking blowup" `Quick test_no_backtracking_blowup;
          Alcotest.test_case "source" `Quick test_source;
        ] );
      ( "literal extraction",
        [ Alcotest.test_case "required_word" `Quick test_required_word ] );
      ( "queries",
        [
          Alcotest.test_case "regex terms" `Quick test_regex_queries;
          Alcotest.test_case "tracks changes" `Quick test_regex_tracks_changes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_matches_str; prop_find_consistent ] );
    ]
