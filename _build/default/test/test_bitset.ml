(* Unit and property tests for Hac_bitset: Bitset, Sparse and the adaptive
   Fileset.  Property tests check every operation against Stdlib's Set as a
   reference model. *)

module Bitset = Hac_bitset.Bitset
module Sparse = Hac_bitset.Sparse
module Fileset = Hac_bitset.Fileset
module IntSet = Set.Make (Int)

let check_list = Alcotest.(check (list int))

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* -- Bitset units -------------------------------------------------------- *)

let test_bitset_empty () =
  let s = Bitset.create () in
  check_int "cardinal" 0 (Bitset.cardinal s);
  check_bool "is_empty" true (Bitset.is_empty s);
  check_bool "mem" false (Bitset.mem s 3);
  check_list "elements" [] (Bitset.elements s)

let test_bitset_add_remove () =
  let s = Bitset.create () in
  Bitset.add s 5;
  Bitset.add s 0;
  Bitset.add s 200;
  check_list "elements sorted" [ 0; 5; 200 ] (Bitset.elements s);
  Bitset.add s 5;
  check_int "idempotent add" 3 (Bitset.cardinal s);
  Bitset.remove s 5;
  check_bool "removed" false (Bitset.mem s 5);
  Bitset.remove s 5;
  check_int "idempotent remove" 2 (Bitset.cardinal s);
  Bitset.remove s 9999 (* beyond allocation: no-op, no exception *)

let test_bitset_growth () =
  let s = Bitset.create ~capacity:1 () in
  Bitset.add s 100_000;
  check_bool "grown mem" true (Bitset.mem s 100_000);
  check_int "cardinal" 1 (Bitset.cardinal s)

let test_bitset_negative () =
  let s = Bitset.create () in
  Alcotest.check_raises "negative add" (Invalid_argument "Bitset.add: negative element")
    (fun () -> Bitset.add s (-1));
  check_bool "negative mem" false (Bitset.mem s (-1))

let test_bitset_ops () =
  let a = Bitset.of_list [ 1; 2; 3; 64; 65 ] in
  let b = Bitset.of_list [ 2; 64; 999 ] in
  check_list "union" [ 1; 2; 3; 64; 65; 999 ] (Bitset.elements (Bitset.union a b));
  check_list "inter" [ 2; 64 ] (Bitset.elements (Bitset.inter a b));
  check_list "diff" [ 1; 3; 65 ] (Bitset.elements (Bitset.diff a b));
  check_bool "subset yes" true (Bitset.subset (Bitset.of_list [ 2; 64 ]) a);
  check_bool "subset no" false (Bitset.subset b a);
  check_bool "equal self" true (Bitset.equal a (Bitset.copy a));
  check_bool "equal across sizes" true
    (Bitset.equal (Bitset.of_list [ 1 ]) (Bitset.of_list [ 1 ]))

let test_bitset_inplace () =
  let a = Bitset.of_list [ 1; 70 ] in
  Bitset.union_into a (Bitset.of_list [ 2; 300 ]);
  check_list "union_into" [ 1; 2; 70; 300 ] (Bitset.elements a);
  Bitset.inter_into a (Bitset.of_list [ 2; 300; 5 ]);
  check_list "inter_into" [ 2; 300 ] (Bitset.elements a);
  Bitset.diff_into a (Bitset.of_list [ 300 ]);
  check_list "diff_into" [ 2 ] (Bitset.elements a)

let test_bitset_copy_isolated () =
  let a = Bitset.of_list [ 1 ] in
  let b = Bitset.copy a in
  Bitset.add b 2;
  check_bool "original untouched" false (Bitset.mem a 2)

let test_bitset_choose_max () =
  let s = Bitset.of_list [ 42; 7; 100 ] in
  Alcotest.(check (option int)) "choose" (Some 7) (Bitset.choose_opt s);
  Alcotest.(check (option int)) "max" (Some 100) (Bitset.max_elt_opt s);
  Alcotest.(check (option int)) "choose empty" None (Bitset.choose_opt (Bitset.create ()));
  Alcotest.(check (option int)) "max empty" None (Bitset.max_elt_opt (Bitset.create ()))

let test_bitset_clear () =
  let s = Bitset.of_list [ 1; 2; 3 ] in
  Bitset.clear s;
  check_bool "cleared" true (Bitset.is_empty s)

let test_paper_byte_size () =
  (* The paper: 17000 indexed files -> about 2 KB per semantic directory. *)
  check_int "17000 files" 2125 (Bitset.paper_byte_size ~universe:17000);
  check_int "8 files" 1 (Bitset.paper_byte_size ~universe:8);
  check_int "9 files" 2 (Bitset.paper_byte_size ~universe:9)

(* -- Sparse units --------------------------------------------------------- *)

let test_sparse_basic () =
  let s = Sparse.of_list [ 5; 1; 5; 3 ] in
  check_list "dedup sorted" [ 1; 3; 5 ] (Sparse.elements s);
  check_bool "mem" true (Sparse.mem s 3);
  check_bool "not mem" false (Sparse.mem s 4);
  check_int "cardinal" 3 (Sparse.cardinal s);
  check_bool "empty" true (Sparse.is_empty Sparse.empty)

let test_sparse_add_remove () =
  let s = Sparse.of_list [ 1; 5 ] in
  let s2 = Sparse.add s 3 in
  check_list "insert middle" [ 1; 3; 5 ] (Sparse.elements s2);
  check_list "original immutable" [ 1; 5 ] (Sparse.elements s);
  let s3 = Sparse.remove s2 1 in
  check_list "remove head" [ 3; 5 ] (Sparse.elements s3);
  check_bool "remove absent is same" true (Sparse.equal s (Sparse.remove s 42))

let test_sparse_setops () =
  let a = Sparse.of_list [ 1; 3; 5 ] and b = Sparse.of_list [ 2; 3; 6 ] in
  check_list "union" [ 1; 2; 3; 5; 6 ] (Sparse.elements (Sparse.union a b));
  check_list "inter" [ 3 ] (Sparse.elements (Sparse.inter a b));
  check_list "diff" [ 1; 5 ] (Sparse.elements (Sparse.diff a b));
  check_bool "subset" true (Sparse.subset (Sparse.of_list [ 3 ]) a)

(* -- Fileset units --------------------------------------------------------- *)

let test_fileset_adaptive () =
  let small = Fileset.of_list [ 1; 2; 3 ] in
  check_bool "small stays sparse" false (Fileset.is_dense small);
  let big = Fileset.range 0 1000 in
  check_bool "dense range" true (Fileset.is_dense big);
  check_int "range cardinal" 1001 (Fileset.cardinal big);
  (* A huge-universe tiny set must not densify. *)
  let scattered = Fileset.of_list [ 1; 1_000_000 ] in
  check_bool "scattered sparse" false (Fileset.is_dense scattered)

let test_fileset_ops_mixed_repr () =
  let dense = Fileset.range 0 500 in
  let sparse = Fileset.of_list [ 100; 501 ] in
  check_int "union" 502 (Fileset.cardinal (Fileset.union dense sparse));
  check_list "inter" [ 100 ] (Fileset.elements (Fileset.inter dense sparse));
  check_bool "diff" false (Fileset.mem (Fileset.diff dense sparse) 100);
  check_bool "equal across reprs" true
    (Fileset.equal (Fileset.of_list [ 1; 2 ]) (Fileset.of_list [ 2; 1 ]))

let test_fileset_filter () =
  let s = Fileset.range 0 20 in
  let even = Fileset.filter (fun i -> i mod 2 = 0) s in
  check_int "filtered" 11 (Fileset.cardinal even);
  check_bool "no odd" false (Fileset.mem even 3)

let test_fileset_empty_range () =
  check_bool "inverted range empty" true (Fileset.is_empty (Fileset.range 5 2))

(* -- properties ------------------------------------------------------------ *)

let small_int_list = QCheck.(small_list (int_bound 400))

let model_of l = IntSet.of_list l

let prop_bitset_matches_model =
  QCheck.Test.make ~name:"bitset setops match Set model" ~count:300
    QCheck.(pair small_int_list small_int_list)
    (fun (la, lb) ->
      let a = Bitset.of_list la and b = Bitset.of_list lb in
      let ma = model_of la and mb = model_of lb in
      Bitset.elements (Bitset.union a b) = IntSet.elements (IntSet.union ma mb)
      && Bitset.elements (Bitset.inter a b) = IntSet.elements (IntSet.inter ma mb)
      && Bitset.elements (Bitset.diff a b) = IntSet.elements (IntSet.diff ma mb)
      && Bitset.cardinal a = IntSet.cardinal ma
      && Bitset.subset a b = IntSet.subset ma mb)

let prop_sparse_matches_model =
  QCheck.Test.make ~name:"sparse setops match Set model" ~count:300
    QCheck.(pair small_int_list small_int_list)
    (fun (la, lb) ->
      let a = Sparse.of_list la and b = Sparse.of_list lb in
      let ma = model_of la and mb = model_of lb in
      Sparse.elements (Sparse.union a b) = IntSet.elements (IntSet.union ma mb)
      && Sparse.elements (Sparse.inter a b) = IntSet.elements (IntSet.inter ma mb)
      && Sparse.elements (Sparse.diff a b) = IntSet.elements (IntSet.diff ma mb)
      && Sparse.subset a b = IntSet.subset ma mb)

let prop_fileset_matches_model =
  QCheck.Test.make ~name:"fileset setops match Set model" ~count:300
    QCheck.(pair small_int_list small_int_list)
    (fun (la, lb) ->
      let a = Fileset.of_list la and b = Fileset.of_list lb in
      let ma = model_of la and mb = model_of lb in
      Fileset.elements (Fileset.union a b) = IntSet.elements (IntSet.union ma mb)
      && Fileset.elements (Fileset.inter a b) = IntSet.elements (IntSet.inter ma mb)
      && Fileset.elements (Fileset.diff a b) = IntSet.elements (IntSet.diff ma mb))

let prop_fileset_add_remove =
  QCheck.Test.make ~name:"fileset add/remove roundtrip" ~count:300
    QCheck.(pair small_int_list (int_bound 400))
    (fun (l, x) ->
      let s = Fileset.of_list l in
      Fileset.mem (Fileset.add s x) x
      && (not (Fileset.mem (Fileset.remove s x) x))
      && Fileset.cardinal (Fileset.add s x)
         = Fileset.cardinal s + if Fileset.mem s x then 0 else 1)

let prop_bitset_iter_sorted =
  QCheck.Test.make ~name:"bitset iterates in increasing order" ~count:200
    small_int_list
    (fun l ->
      let s = Bitset.of_list l in
      let elems = Bitset.elements s in
      elems = List.sort_uniq compare l)

let () =
  Alcotest.run "bitset"
    [
      ( "bitset",
        [
          Alcotest.test_case "empty" `Quick test_bitset_empty;
          Alcotest.test_case "add/remove" `Quick test_bitset_add_remove;
          Alcotest.test_case "growth" `Quick test_bitset_growth;
          Alcotest.test_case "negative elements" `Quick test_bitset_negative;
          Alcotest.test_case "set operations" `Quick test_bitset_ops;
          Alcotest.test_case "in-place operations" `Quick test_bitset_inplace;
          Alcotest.test_case "copy isolation" `Quick test_bitset_copy_isolated;
          Alcotest.test_case "choose/max" `Quick test_bitset_choose_max;
          Alcotest.test_case "clear" `Quick test_bitset_clear;
          Alcotest.test_case "paper byte size" `Quick test_paper_byte_size;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "basic" `Quick test_sparse_basic;
          Alcotest.test_case "add/remove" `Quick test_sparse_add_remove;
          Alcotest.test_case "set operations" `Quick test_sparse_setops;
        ] );
      ( "fileset",
        [
          Alcotest.test_case "adaptive representation" `Quick test_fileset_adaptive;
          Alcotest.test_case "mixed-repr operations" `Quick test_fileset_ops_mixed_repr;
          Alcotest.test_case "filter" `Quick test_fileset_filter;
          Alcotest.test_case "empty range" `Quick test_fileset_empty_range;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bitset_matches_model;
            prop_sparse_matches_model;
            prop_fileset_matches_model;
            prop_fileset_add_remove;
            prop_bitset_iter_sorted;
          ] );
    ]
