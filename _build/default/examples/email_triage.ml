(* Email triage (section 2.3): semantic directories let one message live in
   several folders at once — by sender, by topic, by combination — because
   folders hold links, not the message itself.  Also demonstrates query
   refinement with directory references ({dir} terms, section 2.5) and
   schquery-driven reorganisation.

   Run with:  dune exec examples/email_triage.exe *)

module Hac = Hac_core.Hac
module Link = Hac_core.Link

let deliver t n ~from ~subject ~body =
  Hac.write_file t
    (Printf.sprintf "/mail/inbox/msg%03d.eml" n)
    (Printf.sprintf "From: %s\nSubject: %s\n\n%s\n" from subject body)

let names t dir = List.map (fun l -> l.Link.name) (Hac.links t dir)

let show t dir =
  Printf.printf "%-28s %s\n" dir (String.concat ", " (names t dir))

let () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/mail/inbox";
  deliver t 1 ~from:"ana" ~subject:"budget draft"
    ~body:"The budget spreadsheet needs revising before Friday.";
  deliver t 2 ~from:"ana" ~subject:"team offsite"
    ~body:"Vote for the offsite location, please.";
  deliver t 3 ~from:"bob" ~subject:"budget approval"
    ~body:"I approved the budget, see attached notes.";
  deliver t 4 ~from:"bob" ~subject:"re: parser bug"
    ~body:"The tokenizer drops underscores, patch attached.";
  deliver t 5 ~from:"carol" ~subject:"quarterly budget review"
    ~body:"Scheduling the quarterly budget review meeting.";

  (* Folders by sender, by topic — one message may appear in many. *)
  Hac.smkdir t "/mail/from-ana" "ana";
  Hac.smkdir t "/mail/from-bob" "bob";
  Hac.smkdir t "/mail/budget" "budget";
  Printf.printf "== folders ==\n";
  List.iter (show t) [ "/mail/from-ana"; "/mail/from-bob"; "/mail/budget" ];

  (* Combination via a directory reference: Bob's budget mail.  {dir} terms
     make the new folder depend on the referenced ones; renames of those
     folders won't break the query (the global uid map absorbs them). *)
  Hac.smkdir t "/mail/bob-budget" "{/mail/from-bob} AND {/mail/budget}";
  Printf.printf "\n== bob AND budget, via directory references ==\n";
  show t "/mail/bob-budget";

  (* Rename a referenced folder: the dependent query is unaffected. *)
  Hac.rename t ~src:"/mail/from-bob" ~dst:"/mail/bob";
  Hac.ssync t "/mail/bob";
  Printf.printf "\n== after renaming from-bob to bob ==\n";
  Printf.printf "bob-budget query now reads: %s\n"
    (Option.get (Hac.sreadin t "/mail/bob-budget"));
  show t "/mail/bob-budget";

  (* Hand-tuning flows through dependencies: prohibit one message in the
     budget folder and the combination folder follows at the next sync. *)
  Hac.remove_link t ~dir:"/mail/budget" ~name:"msg003.eml";
  Hac.ssync t "/mail/budget";
  Printf.printf "\n== after deleting msg003 from budget (propagates) ==\n";
  show t "/mail/budget";
  show t "/mail/bob-budget";

  (* Reorganise by editing the query in place. *)
  Hac.schquery t "/mail/budget" "budget AND NOT quarterly";
  Printf.printf "\n== after schquery: budget AND NOT quarterly ==\n";
  show t "/mail/budget";

  Printf.printf "\nemail_triage: ok\n"
