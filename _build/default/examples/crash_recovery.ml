(* Crash recovery and attribute transducers.

   HAC pays real I/O to persist every directory's structures (section 4's
   phase-1 overhead) precisely so the semantic state outlives the user-level
   library.  This example classifies mail with SFS-style attribute queries
   (from:ana), "crashes" the instance, and reloads everything from the
   metadata area — queries, prohibitions and hand-pinned links included.

   Run with:  dune exec examples/crash_recovery.exe *)

module Hac = Hac_core.Hac
module Recover = Hac_core.Recover
module Link = Hac_core.Link
module Transducer = Hac_index.Transducer

let show t dir =
  Printf.printf "%s  (query: %s)\n" dir (Option.value (Hac.sreadin t dir) ~default:"-");
  List.iter
    (fun l ->
      Printf.printf "  %-16s -> %-28s [%s]\n" l.Link.name
        (Link.target_key l.Link.target)
        (Link.cls_name l.Link.cls))
    (Hac.links t dir);
  List.iter (Printf.printf "  prohibited: %s\n") (Hac.prohibited t dir);
  print_newline ()

let transducer = Transducer.combine [ Transducer.email; Transducer.file_type ]

let () =
  let t = Hac.create ~auto_sync:true ~transducer () in
  Hac.mkdir_p t "/mail";
  Hac.write_file t "/mail/m1.eml" "From: ana\nSubject: budget numbers\n\nAttached.\n";
  Hac.write_file t "/mail/m2.eml" "From: ana\nSubject: cat pictures\n\nEnjoy!\n";
  Hac.write_file t "/mail/m3.eml" "From: bob\nSubject: budget approval\n\nDone.\n";
  Hac.write_file t "/notes.txt" "ana said the budget is fine\n";

  (* Attribute queries come from the transducer, not word matching:
     notes.txt contains "ana" but has no From: header. *)
  Hac.smkdir t "/from-ana" "from:ana";
  Hac.remove_link t ~dir:"/from-ana" ~name:"m2.eml" (* no cat pictures *);
  ignore (Hac.add_permanent t ~dir:"/from-ana" ~target:"/mail/m3.eml");
  Hac.ssync t "/from-ana";
  Printf.printf "== before the crash ==\n";
  show t "/from-ana";

  (* The library goes away; only the file system (with /.hac) survives. *)
  Hac.shutdown ~graceful:false t;
  let disk = Hac.fs t in

  (* A new instance adopts the file system and recovers the semantics. *)
  let t2 = Hac.of_fs ~auto_sync:true ~transducer disk in
  Printf.printf "== fresh instance, before recovery: is /from-ana semantic? %b ==\n\n"
    (Hac.is_semantic t2 "/from-ana");
  let n = Recover.reload t2 in
  Printf.printf "== recovered %d semantic directories ==\n" n;
  show t2 "/from-ana";

  (* The recovered directory is alive: new matching mail flows in, and the
     old prohibition still holds. *)
  Hac.write_file t2 "/mail/m4.eml" "From: ana\nSubject: budget follow-up\n\nPing.\n";
  Printf.printf "== after new mail, post-recovery ==\n";
  show t2 "/from-ana";

  Printf.printf "crash_recovery: ok\n"
