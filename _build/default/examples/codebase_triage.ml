(* Triaging a codebase with content-based directories.

   Uses the later-generation query features: regular-expression terms,
   attribute terms from the file-type transducer, selectivity-planned
   conjunctions — and finishes by snapshotting the whole file system to a
   host image and restarting from it.

   Run with:  dune exec examples/codebase_triage.exe *)

module Hac = Hac_core.Hac
module Recover = Hac_core.Recover
module Image = Hac_vfs.Image
module Link = Hac_core.Link

let show t dir =
  Printf.printf "%s  (query: %s)\n" dir (Option.value (Hac.sreadin t dir) ~default:"-");
  List.iter
    (fun l -> Printf.printf "  %-14s -> %s\n" l.Link.name (Link.target_key l.Link.target))
    (Hac.links t dir);
  print_newline ()

let () =
  let t =
    Hac.create ~auto_sync:true ~stem:false
      ~transducer:Hac_index.Transducer.file_type ()
  in
  Hac.mkdir_p t "/src";
  Hac.mkdir_p t "/docs";
  Hac.write_file t "/src/io.ml"
    "let read_config path =\n  try load path with _ -> failwith \"TODO: handle errors\"\n";
  Hac.write_file t "/src/net.ml"
    "let connect host =\n  (* TODO retry logic *)\n  open_socket host\n";
  Hac.write_file t "/src/tidy.ml" "let add x y = x + y\n";
  Hac.write_file t "/docs/notes.txt" "TODO: write the manual for error handling\n";

  (* Regex + attribute: sloppy error handling, but only in code. *)
  Hac.smkdir t "/triage-failwith" "/failwith \"[A-Za-z :]+\"/ AND type:code";
  Printf.printf "== string-y failwith calls in code ==\n";
  show t "/triage-failwith";

  (* Word + regex conjunction: the planner runs the rarer side first and the
     evaluator verifies the regex only on the survivors. *)
  Hac.smkdir t "/triage-todo" "todo AND /TODO[ :]/";
  Printf.printf "== TODOs anywhere ==\n";
  show t "/triage-todo";

  (* Refine to code-only TODOs by referencing the other triage folder. *)
  Hac.smkdir t "/triage-todo-code" "{/triage-todo} AND type:code";
  Printf.printf "== TODOs in code only ==\n";
  show t "/triage-todo-code";

  (* Fixing a file moves it out of every triage folder on the next settle. *)
  Hac.write_file t "/src/net.ml" "let connect host =\n  retry 3 (open_socket host)\n";
  Printf.printf "== net.ml fixed ==\n";
  show t "/triage-todo-code";

  (* Snapshot the world, then restart from the image. *)
  let image_path = Filename.temp_file "hac_triage" ".img" in
  Image.save_file (Hac.fs t) image_path;
  Hac.shutdown t;
  (match Image.load_file image_path with
  | Error e -> failwith e
  | Ok fs ->
      let t2 =
        Hac.of_fs ~auto_sync:true ~stem:false
          ~transducer:Hac_index.Transducer.file_type fs
      in
      let n = Recover.reload t2 in
      Printf.printf "== restarted from %s: %d semantic directories recovered ==\n"
        (Filename.basename image_path) n;
      show t2 "/triage-todo");
  Sys.remove image_path;
  Printf.printf "codebase_triage: ok\n"
