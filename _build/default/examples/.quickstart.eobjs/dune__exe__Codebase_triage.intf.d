examples/codebase_triage.mli:
