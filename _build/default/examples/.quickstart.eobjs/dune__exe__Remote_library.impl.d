examples/remote_library.ml: Hac_core Hac_remote List Option Printf String
