examples/remote_library.mli:
