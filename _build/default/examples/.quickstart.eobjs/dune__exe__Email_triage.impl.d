examples/email_triage.ml: Hac_core List Option Printf String
