examples/fingerprint.ml: Hac_core Hac_remote List Option Printf
