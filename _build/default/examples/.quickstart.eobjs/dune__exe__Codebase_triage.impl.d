examples/codebase_triage.ml: Filename Hac_core Hac_index Hac_vfs List Option Printf Sys
