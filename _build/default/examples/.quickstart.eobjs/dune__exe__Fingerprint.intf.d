examples/fingerprint.mli:
