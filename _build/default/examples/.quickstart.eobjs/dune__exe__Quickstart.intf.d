examples/quickstart.mli:
