examples/email_triage.mli:
