examples/quickstart.ml: Hac_core List Option Printf String
