examples/crash_recovery.ml: Hac_core Hac_index List Option Printf
