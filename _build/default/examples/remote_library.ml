(* Remote name spaces (section 3): mount a simulated web search engine and a
   colleague's HAC file system on the SAME directory (a multiple semantic
   mount point), build a personal classification of remote information, and
   share semantic directories through the central database of section 3.2.

   Run with:  dune exec examples/remote_library.exe *)

module Hac = Hac_core.Hac
module Export = Hac_core.Export
module Link = Hac_core.Link
module Namespace = Hac_remote.Namespace
module Web_search = Hac_remote.Web_search
module Remote_fs = Hac_remote.Remote_fs

let show t dir =
  Printf.printf "%s  (query: %s)\n" dir (Option.value (Hac.sreadin t dir) ~default:"-");
  List.iter
    (fun l ->
      Printf.printf "  %-24s -> %-44s [%s]\n" l.Link.name
        (Link.target_key l.Link.target)
        (Link.cls_name l.Link.cls))
    (Hac.links t dir);
  print_newline ()

(* A colleague's HAC file system, reachable as a remote namespace. *)
let colleague_namespace () =
  let colleague = Hac.create ~auto_sync:true () in
  Hac.mkdir_p colleague "/papers";
  Hac.write_file colleague "/papers/raid.txt"
    "RAID levels and disk array reliability, a measurement study.\n";
  Hac.write_file colleague "/papers/lfs.txt"
    "The log structured file system: write everything sequentially.\n";
  Hac.write_file colleague "/papers/consistency.txt"
    "Crash consistency in journaling file systems.\n";
  Remote_fs.create ~ns_id:"colleague" (Hac.fs colleague) (Hac.index colleague)

(* A simulated web search engine (query-only: it cannot be enumerated). *)
let engine () =
  Web_search.create "websearch"
    [
      {
        Web_search.title = "Disk scheduling algorithms compared";
        uri = "http://websearch/results/disk-sched";
        body = "elevator scan and shortest seek disk scheduling for file system throughput";
      };
      {
        Web_search.title = "File system benchmarks considered harmful";
        uri = "http://websearch/results/fs-bench";
        body = "benchmark design pitfalls for file system papers";
      };
      {
        Web_search.title = "Cooking with cast iron";
        uri = "http://websearch/results/cast-iron";
        body = "seasoning a skillet for the home cook";
      };
    ]

let () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/research/local";
  Hac.write_file t "/research/local/notes.txt"
    "My own notes on file system aging and fragmentation.\n";

  (* Multiple semantic mount point: two namespaces on one directory. *)
  Hac.mkdir_p t "/research/world";
  Hac.smount t "/research/world" (colleague_namespace ());
  Hac.smount t "/research/world" (engine ());
  Printf.printf "mounted at /research/world: %s\n\n"
    (String.concat ", " (Hac.mounted_at t "/research/world"));

  (* One semantic directory pulls from both remotes AND local files. *)
  Hac.smkdir t "/research/fs-reading" "file AND system";
  Printf.printf "== fs-reading: union of local + both remote namespaces ==\n";
  show t "/research/fs-reading";

  (* Personal classification of remote results: prune and annotate. *)
  Hac.remove_link t ~dir:"/research/fs-reading" ~name:"fs-bench";
  Hac.ssync t "/research/fs-reading";
  ignore
    (Hac.add_permanent t ~dir:"/research/fs-reading"
       ~target:"http://websearch/results/cast-iron");
  Printf.printf "== after pruning fs-bench and pinning cast-iron ==\n";
  show t "/research/fs-reading";

  (* Read a remote result through the link, like any file. *)
  (match Hac.resolve_link t "/research/fs-reading/lfs.txt" with
  | Some content -> Printf.printf "lfs.txt (fetched remotely): %s\n" (String.trim content)
  | None -> Printf.printf "lfs.txt could not be fetched\n");

  (* Share via the central database (section 3.2): export this user's
     semantic directories, publish, and search them as another user. *)
  let db = Export.to_namespace ~ns_id:"semdb" [ ("udi", Export.export_all t) ] in
  Printf.printf "\n== central database search: who has fs material? ==\n";
  List.iter
    (fun e -> Printf.printf "  %s (%s)\n" e.Namespace.name e.Namespace.uri)
    (db.Namespace.search "file system");

  (* A second user mounts the database and imports the classification. *)
  let other = Hac.create ~auto_sync:true () in
  Hac.mkdir_p other "/import";
  (match Export.import other ~under:"/import" (Export.export_all t) with
  | Ok n -> Printf.printf "\nimported %d semantic directories into the other user's HAC\n" n
  | Error e -> Printf.printf "import failed: %s\n" e);
  Printf.printf "imported dirs: %s\n"
    (String.concat ", " (Hac.semantic_dirs other));

  Printf.printf "\nremote_library: ok\n"
