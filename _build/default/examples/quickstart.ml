(* Quickstart: the smallest useful HAC session.

   Creates a few files, makes a semantic directory with [smkdir], shows how
   query results appear as symbolic links, and demonstrates the paper's
   three link classes: transient (query results), permanent (added by the
   user) and prohibited (deleted by the user — never silently re-added).

   Run with:  dune exec examples/quickstart.exe *)

module Hac = Hac_core.Hac
module Link = Hac_core.Link

let show_links t dir =
  Printf.printf "%s:\n" dir;
  List.iter
    (fun l ->
      Printf.printf "  %-22s -> %-28s [%s]\n" l.Link.name
        (Link.target_key l.Link.target)
        (Link.cls_name l.Link.cls))
    (Hac.links t dir);
  if Hac.prohibited t dir <> [] then
    Printf.printf "  prohibited: %s\n" (String.concat ", " (Hac.prohibited t dir))

let () =
  (* auto_sync keeps index and semantic directories up to date after every
     operation — right for interactive use, wrong for bulk loads. *)
  let t = Hac.create ~auto_sync:true () in

  (* A perfectly ordinary hierarchical file system... *)
  Hac.mkdir_p t "/home/alice/notes";
  Hac.write_file t "/home/alice/notes/pasta.txt"
    "Recipe: spaghetti with garlic and olive oil.\nBoil pasta until al dente.\n";
  Hac.write_file t "/home/alice/notes/curry.txt"
    "Recipe: chickpea curry with rice.\nSimmer the sauce slowly.\n";
  Hac.write_file t "/home/alice/notes/standup.txt"
    "Monday standup notes: discussed the parser bug.\n";

  (* ...extended with content-based access: a semantic directory. *)
  Hac.smkdir t "/home/alice/recipes" "recipe";
  Printf.printf "After smkdir /home/alice/recipes with query %S\n\n"
    (Option.get (Hac.sreadin t "/home/alice/recipes"));
  show_links t "/home/alice/recipes";

  (* New matching content shows up on its own (auto_sync). *)
  Hac.write_file t "/home/alice/notes/salad.txt" "Recipe: fennel salad.\n";
  Printf.printf "\nAfter writing salad.txt (a new recipe):\n\n";
  show_links t "/home/alice/recipes";

  (* Deleting a query result prohibits it: it will not come back. *)
  Hac.remove_link t ~dir:"/home/alice/recipes" ~name:"curry.txt";
  Hac.ssync t "/home/alice/recipes";
  Printf.printf "\nAfter deleting curry.txt from the semantic directory:\n\n";
  show_links t "/home/alice/recipes";

  (* Adding an unrelated file by hand makes a permanent link. *)
  ignore (Hac.add_permanent t ~dir:"/home/alice/recipes" ~target:"/home/alice/notes/standup.txt");
  Printf.printf "\nAfter hand-adding standup.txt (permanent):\n\n";
  show_links t "/home/alice/recipes";

  (* sact: what in the linked file matched the query? *)
  Printf.printf "\nsact pasta.txt:\n";
  List.iter
    (fun (n, line) -> Printf.printf "  %d: %s\n" n line)
    (Hac.sact t "/home/alice/recipes/pasta.txt");

  Printf.printf "\nquickstart: ok\n"
