(* The paper's running example (section 2.1): a researcher working on a
   fingerprint project whose material is scattered across email, notes,
   source code and a remote digital library.  HAC collects everything into
   one semantic directory, which the user then tunes by hand, refines with a
   sub-query, and keeps fresh as new mail arrives.

   Run with:  dune exec examples/fingerprint.exe *)

module Hac = Hac_core.Hac
module Link = Hac_core.Link
module Namespace = Hac_remote.Namespace

let show t dir =
  Printf.printf "%s  (query: %s)\n" dir
    (Option.value (Hac.sreadin t dir) ~default:"-");
  List.iter
    (fun l ->
      Printf.printf "  %-26s -> %-46s [%s]\n" l.Link.name
        (Link.target_key l.Link.target)
        (Link.cls_name l.Link.cls))
    (Hac.links t dir);
  print_newline ()

let () =
  let t = Hac.create ~auto_sync:true () in

  (* Scattered project material, exactly as the paper describes. *)
  Hac.mkdir_p t "/home/udi/mail";
  Hac.mkdir_p t "/home/udi/notes";
  Hac.mkdir_p t "/home/udi/src";
  Hac.mkdir_p t "/home/udi/archive";
  Hac.write_file t "/home/udi/mail/msg1.eml"
    "From: gopal\nSubject: fingerprint matching results\nThe minutiae matcher now works.\n";
  Hac.write_file t "/home/udi/mail/msg2.eml"
    "From: dean\nSubject: lunch\nNoodles on Tuesday?\n";
  Hac.write_file t "/home/udi/notes/ideas.txt"
    "Fingerprint ridge counting could use the new hashing scheme.\n";
  Hac.write_file t "/home/udi/src/match.c"
    "/* fingerprint minutiae matcher */\nint match(int *ridges) { return 0; }\n";
  Hac.write_file t "/home/udi/src/parse.c"
    "/* config parser, nothing biometric */\nint parse(void) { return 1; }\n";
  Hac.write_file t "/home/udi/notes/crime.txt"
    "News clipping: a fingerprint found at the crime scene, murder inquiry.\n";

  (* One semantic directory gathers the project. *)
  Hac.smkdir t "/home/udi/fingerprint" "fingerprint";
  Printf.printf "== the fingerprint semantic directory ==\n";
  show t "/home/udi/fingerprint";

  (* Tune by hand: the murder clipping matches but is unwanted (the paper's
     "often it is easier to remove a few files manually"), while parse.c is
     wanted though it never says "fingerprint". *)
  Hac.remove_link t ~dir:"/home/udi/fingerprint" ~name:"crime.txt";
  ignore (Hac.add_permanent t ~dir:"/home/udi/fingerprint" ~target:"/home/udi/src/parse.c");
  Hac.ssync t "/home/udi/fingerprint";
  Printf.printf "== after manual tuning (crime.txt prohibited, parse.c permanent) ==\n";
  show t "/home/udi/fingerprint";

  (* Query refinement in the hierarchy: a child semantic directory whose
     scope is the parent's links — here, only project email. *)
  Hac.smkdir t "/home/udi/fingerprint/email" "path:/home/udi/mail";
  Printf.printf "== refinement: fingerprint/email ==\n";
  show t "/home/udi/fingerprint/email";

  (* A remote digital library, semantically mounted (section 3.1). *)
  let library =
    Namespace.static ~ns_id:"dlib"
      [
        ( "ridge-analysis.ps",
          "dlib://papers/ridge-analysis.ps",
          "A survey of fingerprint ridge analysis algorithms." );
        ( "iris-scan.ps",
          "dlib://papers/iris-scan.ps",
          "Iris scanning hardware, no dactyloscopy here." );
        ( "latent-prints.ps",
          "dlib://papers/latent-prints.ps",
          "Lifting latent fingerprint impressions from surfaces." );
      ]
  in
  Hac.mkdir_p t "/home/udi/library";
  Hac.smount t "/home/udi/library" library;
  Hac.smkdir t "/home/udi/library/fp-papers" "fingerprint";
  Printf.printf "== semantic mount: library/fp-papers ==\n";
  show t "/home/udi/library/fp-papers";

  (* New mail arrives; data consistency brings it into scope on sync. *)
  Hac.write_file t "/home/udi/mail/msg3.eml"
    "From: gopal\nSubject: fingerprint demo\nDemo of the fingerprint browser on Friday.\n";
  Printf.printf "== after new fingerprint mail ==\n";
  show t "/home/udi/fingerprint";

  (* Old material moves to the archive — out of sight but findable. *)
  Hac.rename t ~src:"/home/udi/notes/ideas.txt" ~dst:"/home/udi/archive/ideas.txt";
  Printf.printf "== after archiving ideas.txt (link follows the file) ==\n";
  show t "/home/udi/fingerprint";

  Printf.printf "fingerprint: ok\n"
