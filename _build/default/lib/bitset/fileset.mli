(** Immutable sets of file identifiers with an adaptive representation.

    Small results are kept sparse (section 4 of the paper calls sparse sets
    future work); results whose density crosses a threshold switch to the
    paper's bitmap representation.  All operations are functional, which is
    what the query evaluator wants: query results flow through AND/OR/NOT
    combinators without aliasing hazards. *)

type t
(** An immutable set of non-negative file identifiers. *)

val empty : t
(** The empty set. *)

val singleton : int -> t
(** One-element set. *)

val of_list : int list -> t
(** Set of the listed identifiers. *)

val of_bitset : Bitset.t -> t
(** Snapshot of a mutable bitmap (the bitmap is copied). *)

val range : int -> int -> t
(** [range lo hi] is [{lo, ..., hi}]; empty when [lo > hi]. *)

val mem : t -> int -> bool
(** Membership test. *)

val add : t -> int -> t
(** Functional insert. *)

val remove : t -> int -> t
(** Functional delete. *)

val union : t -> t -> t
(** Set union. *)

val inter : t -> t -> t
(** Set intersection. *)

val diff : t -> t -> t
(** Set difference. *)

val cardinal : t -> int
(** Number of elements. *)

val is_empty : t -> bool
(** [is_empty s] iff [cardinal s = 0]. *)

val equal : t -> t -> bool
(** Extensional equality (representation-independent). *)

val subset : t -> t -> bool
(** [subset a b] iff every element of [a] is in [b]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold in increasing order. *)

val filter : (int -> bool) -> t -> t
(** Keep the elements satisfying the predicate. *)

val elements : t -> int list
(** Elements in increasing order. *)

val choose_opt : t -> int option
(** Smallest element, or [None] when empty. *)

val byte_size : t -> int
(** Payload bytes of the current representation. *)

val is_dense : t -> bool
(** [true] when currently stored as a bitmap. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{1, 5, 9}]. *)
