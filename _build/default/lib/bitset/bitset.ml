(* Bits are packed into an int array; word [w] holds elements
   [w * bits_per_word .. w * bits_per_word + bits_per_word - 1].  The array
   only ever grows; [highest] tracks the last word that may be non-zero so
   iteration does not scan trailing zero words. *)

let bits_per_word = Sys.int_size

type t = {
  mutable words : int array;
  mutable highest : int; (* index of the last possibly non-zero word, -1 if empty *)
}

let words_for capacity =
  if capacity <= 0 then 1 else (capacity + bits_per_word - 1) / bits_per_word

let create ?(capacity = 64) () =
  { words = Array.make (words_for capacity) 0; highest = -1 }

let copy s = { words = Array.copy s.words; highest = s.highest }

let ensure s w =
  let n = Array.length s.words in
  if w >= n then begin
    let n' = max (w + 1) (2 * n) in
    let words = Array.make n' 0 in
    Array.blit s.words 0 words 0 n;
    s.words <- words
  end

let add s i =
  if i < 0 then invalid_arg "Bitset.add: negative element";
  let w = i / bits_per_word and b = i mod bits_per_word in
  ensure s w;
  s.words.(w) <- s.words.(w) lor (1 lsl b);
  if w > s.highest then s.highest <- w

let remove s i =
  if i >= 0 then begin
    let w = i / bits_per_word and b = i mod bits_per_word in
    if w < Array.length s.words then
      s.words.(w) <- s.words.(w) land lnot (1 lsl b)
  end

let mem s i =
  if i < 0 then false
  else
    let w = i / bits_per_word and b = i mod bits_per_word in
    w < Array.length s.words && s.words.(w) land (1 lsl b) <> 0

let clear s =
  Array.fill s.words 0 (Array.length s.words) 0;
  s.highest <- -1

let popcount =
  (* Kernighan's loop; word population counts are small in practice and this
     keeps the code portable across OCaml versions without C stubs. *)
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  fun x -> go 0 x

let cardinal s =
  let total = ref 0 in
  for w = 0 to min s.highest (Array.length s.words - 1) do
    total := !total + popcount s.words.(w)
  done;
  !total

let is_empty s =
  let rec go w = w < 0 || (s.words.(w) = 0 && go (w - 1)) in
  go (min s.highest (Array.length s.words - 1))

let union_into dst src =
  let hi = min src.highest (Array.length src.words - 1) in
  if hi >= 0 then begin
    ensure dst hi;
    for w = 0 to hi do
      dst.words.(w) <- dst.words.(w) lor src.words.(w)
    done;
    if hi > dst.highest then dst.highest <- hi
  end

let inter_into dst src =
  let src_len = Array.length src.words in
  for w = 0 to min dst.highest (Array.length dst.words - 1) do
    let sw = if w < src_len then src.words.(w) else 0 in
    dst.words.(w) <- dst.words.(w) land sw
  done

let diff_into dst src =
  let hi = min dst.highest (Array.length dst.words - 1) in
  let src_len = Array.length src.words in
  for w = 0 to hi do
    if w < src_len then dst.words.(w) <- dst.words.(w) land lnot src.words.(w)
  done

let union a b =
  let r = copy a in
  union_into r b;
  r

let inter a b =
  let r = copy a in
  inter_into r b;
  r

let diff a b =
  let r = copy a in
  diff_into r b;
  r

let equal a b =
  let la = Array.length a.words and lb = Array.length b.words in
  let rec go w =
    if w >= la && w >= lb then true
    else
      let wa = if w < la then a.words.(w) else 0
      and wb = if w < lb then b.words.(w) else 0 in
      wa = wb && go (w + 1)
  in
  go 0

let subset a b =
  let la = Array.length a.words and lb = Array.length b.words in
  let rec go w =
    if w >= la then true
    else
      let wb = if w < lb then b.words.(w) else 0 in
      a.words.(w) land lnot wb = 0 && go (w + 1)
  in
  go 0

let iter f s =
  let hi = min s.highest (Array.length s.words - 1) in
  for w = 0 to hi do
    let word = s.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list l =
  let s = create () in
  List.iter (add s) l;
  s

exception Found of int

let choose_opt s =
  try
    iter (fun i -> raise (Found i)) s;
    None
  with Found i -> Some i

let max_elt_opt s = fold (fun i _ -> Some i) s None

let byte_size s = Array.length s.words * (bits_per_word / 8 + 1)

let paper_byte_size ~universe = (universe + 7) / 8

let pp ppf s =
  let first = ref true in
  Format.fprintf ppf "{";
  iter
    (fun i ->
      if !first then first := false else Format.fprintf ppf ", ";
      Format.fprintf ppf "%d" i)
    s;
  Format.fprintf ppf "}"
