(** Growable mutable bitmaps over non-negative integers.

    This is the compact query-result representation described in section 4 of
    the paper: a semantic directory stores the set of matching file
    identifiers as a bitmap of [ceil (n/8)] bytes where [n] is the number of
    indexed files.  The implementation packs bits into OCaml [int] words. *)

type t
(** A mutable set of non-negative integers. *)

val create : ?capacity:int -> unit -> t
(** [create ?capacity ()] is an empty set.  [capacity] is a hint for the
    largest element expected; the set grows automatically beyond it. *)

val copy : t -> t
(** [copy s] is a set equal to [s] sharing no state with it. *)

val add : t -> int -> unit
(** [add s i] inserts [i].  Raises [Invalid_argument] if [i < 0]. *)

val remove : t -> int -> unit
(** [remove s i] deletes [i]; no-op when absent. *)

val mem : t -> int -> bool
(** [mem s i] is [true] iff [i] is in [s].  Never raises for [i >= 0]. *)

val clear : t -> unit
(** [clear s] removes every element. *)

val cardinal : t -> int
(** Number of elements. *)

val is_empty : t -> bool
(** [is_empty s] iff [cardinal s = 0]. *)

val union_into : t -> t -> unit
(** [union_into dst src] adds every element of [src] to [dst]. *)

val inter_into : t -> t -> unit
(** [inter_into dst src] removes from [dst] the elements not in [src]. *)

val diff_into : t -> t -> unit
(** [diff_into dst src] removes from [dst] the elements of [src]. *)

val union : t -> t -> t
(** Functional union. *)

val inter : t -> t -> t
(** Functional intersection. *)

val diff : t -> t -> t
(** Functional difference. *)

val equal : t -> t -> bool
(** Extensional equality. *)

val subset : t -> t -> bool
(** [subset a b] iff every element of [a] is in [b]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over elements in increasing order. *)

val elements : t -> int list
(** Elements in increasing order. *)

val of_list : int list -> t
(** Set holding exactly the given elements. *)

val choose_opt : t -> int option
(** Smallest element, or [None] when empty. *)

val max_elt_opt : t -> int option
(** Largest element, or [None] when empty. *)

val byte_size : t -> int
(** Bytes of payload currently allocated for the bit words. *)

val paper_byte_size : universe:int -> int
(** [paper_byte_size ~universe] is the paper's per-directory bitmap cost for
    [universe] indexed files: [ceil (universe / 8)] bytes. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{1, 5, 9}]. *)
