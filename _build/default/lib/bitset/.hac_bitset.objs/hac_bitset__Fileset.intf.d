lib/bitset/fileset.mli: Bitset Format
