lib/bitset/sparse.mli: Format
