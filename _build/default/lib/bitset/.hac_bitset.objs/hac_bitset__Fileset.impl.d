lib/bitset/fileset.ml: Bitset List Sparse Sys
