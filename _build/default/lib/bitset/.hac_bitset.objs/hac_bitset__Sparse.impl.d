lib/bitset/sparse.ml: Array Format List Sys
