(** The hacsh command interpreter, as a library.

    One {!session} wraps a HAC instance with a working directory and a
    current user; {!run} executes one command line and appends its output to
    the given buffer.  The [bin/hacsh] executable is a thin stdin/stdout
    loop over this module, and the test suite drives it directly. *)

type session
(** Interpreter state: the HAC instance, the working directory, the user. *)

val make : ?demo:bool -> unit -> session
(** A fresh session over a fresh HAC (auto-sync, email/file-type
    transducers installed).  [demo] preloads a small world. *)

val of_hac : Hac_core.Hac.t -> session
(** Wrap an existing instance. *)

val hac : session -> Hac_core.Hac.t
(** The underlying instance. *)

val cwd : session -> string
(** Current working directory. *)

val run : session -> Buffer.t -> string -> bool
(** Execute one command line, appending output (results and error messages)
    to the buffer.  Returns [false] when the command asks to quit.  Never
    raises: user errors print. *)

val run_string : session -> string -> string
(** Convenience: {!run} on each [;]-separated command, collecting output. *)

val help_text : string
(** The text printed by the [help] command. *)
