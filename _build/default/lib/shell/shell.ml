module Hac = Hac_core.Hac
module Export = Hac_core.Export
module Recover = Hac_core.Recover
module Link = Hac_core.Link
module Vpath = Hac_vfs.Vpath
module Fs = Hac_vfs.Fs
module Errno = Hac_vfs.Errno

type session = { mutable t : Hac.t; mutable wd : string }

let help_text =
  {|Commands:
  pwd | cd DIR | ls [-l] [DIR]        navigate
  mkdir DIR | rmdir DIR               plain directories
  write FILE TEXT...                  create/overwrite a file
  append FILE TEXT...                 append a line
  cat FILE                            show contents (follows links, local or remote)
  rm PATH                             remove file or link (link removal prohibits it)
  mv SRC DST                          rename/move
  ln TARGET LINK                      symbolic link (permanent inside a semantic dir)
  chmod MODE PATH | chown UID PATH    permissions (octal MODE, e.g. 600)
  su UID                              switch current user (0 = superuser)
  smkdir DIR QUERY...                 create a semantic directory
  srmdir DIR                          remove a semantic directory
  schquery DIR QUERY...               change (or retro-fit) a directory's query
  sreadin DIR                         show a directory's query
  ssearch QUERY...                    evaluate a query ad hoc (no directory)
  sgrep REGEX [DIR]                   regex search, with matching lines
  links [DIR]                         show links with their classes
  prohibited [DIR]                    show prohibited targets
  sact LINK                           show the lines that match the query
  ssync [DIR]                         re-evaluate a directory and its dependents
  sreindex                            settle data consistency now
  smount DIR demo-library|demo-web    mount a built-in demo namespace
  sumount DIR NS                      unmount a namespace
  sprohibit DIR TARGET                prohibit a target directly
  sunprohibit DIR TARGET              lift a prohibition
  sexport [DIR]                       export semantic directories as text
  srecover                            restore semantic state from /.hac metadata
  save HOSTFILE | restore HOSTFILE    snapshot the whole fs to the host disk
  sdirs                               list semantic directories
  stats                               space and consistency counters
  help | quit

Query syntax: words, "phrases", ~approx, /regex/, attr:value (from:, subject:,
type:, name:, ext:, path:), {/dir} references, AND OR NOT ( ) *|}

let transducer = Hac_index.Transducer.(combine [ email; file_type ])

let demo_library () =
  Hac_remote.Namespace.static ~ns_id:"demo-library"
    [
      ("sorting.ps", "dlib://demo/sorting.ps", "A taxonomy of sorting algorithms.\n");
      ("btrees.ps", "dlib://demo/btrees.ps", "B-tree indexing for databases and file systems.\n");
      ("raft.ps", "dlib://demo/raft.ps", "Consensus made understandable.\n");
    ]

let demo_web () =
  Hac_remote.Web_search.create "demo-web"
    [
      {
        Hac_remote.Web_search.title = "filesystem-tuning";
        uri = "http://demo-web/fs-tuning";
        body = "tuning file systems for small files";
      };
      {
        Hac_remote.Web_search.title = "index-compression";
        uri = "http://demo-web/index-compression";
        body = "compressing inverted index postings";
      };
    ]

let load_demo t =
  Hac.mkdir_p t "/home/demo/notes";
  Hac.mkdir_p t "/home/demo/src";
  Hac.write_file t "/home/demo/notes/fs.txt"
    "Ideas about file systems and indexing.\nSemantic directories are folders with queries.\n";
  Hac.write_file t "/home/demo/notes/todo.txt" "Buy coffee.\nFix the parser.\n";
  Hac.write_file t "/home/demo/src/main.ml" "let () = print_endline \"indexing demo\"\n"

let make ?(demo = false) () =
  let t = Hac.create ~auto_sync:true ~transducer () in
  if demo then load_demo t;
  { t; wd = "/" }

let of_hac t = { t; wd = "/" }

let hac s = s.t

let cwd s = s.wd

let resolve s p = Vpath.normalize_under ~cwd:s.wd p

let out buf fmt = Printf.ksprintf (fun msg -> Buffer.add_string buf msg) fmt

let show_links s buf dir =
  List.iter
    (fun l ->
      out buf "%-24s -> %-40s [%s]\n" l.Link.name
        (Link.target_key l.Link.target)
        (Link.cls_name l.Link.cls))
    (Hac.links s.t dir)

let cmd_ls s buf long args =
  let dir = match args with [] -> s.wd | d :: _ -> resolve s d in
  List.iter
    (fun name ->
      let p = Vpath.join dir name in
      if long then begin
        let st = Fs.lstat (Hac.fs s.t) p in
        let kind =
          match st.Fs.st_kind with
          | Hac_vfs.Event.Dir -> if Hac.is_semantic s.t p then "sdir" else "dir "
          | Hac_vfs.Event.File -> "file"
          | Hac_vfs.Event.Link -> "link"
        in
        out buf "%s %3o %2d %8d  %s\n" kind st.Fs.st_mode st.Fs.st_uid st.Fs.st_size name
      end
      else out buf "%s\n" name)
    (Hac.readdir s.t dir)

let cmd_ssearch s buf query =
  match Hac_query.Parser.parse_result query with
  | Error msg -> out buf "bad query: %s\n" msg
  | Ok _ -> (
      (* Evaluate through a throwaway semantic directory, then clean up —
         the paper's point that queries and directories are the same thing. *)
      let dir = "/.ssearch-tmp" in
      match Hac.smkdir s.t dir query with
      | () ->
          List.iter
            (fun l -> out buf "%s\n" (Link.target_key l.Link.target))
            (Hac.links s.t dir);
          Hac.srmdir s.t dir
      | exception Hac.Hac_error msg -> out buf "error: %s\n" msg)

let cmd_sgrep s buf pattern dir =
  (* Accept the query language's /re/ spelling as well as a bare pattern. *)
  let pattern =
    let n = String.length pattern in
    if n >= 2 && pattern.[0] = '/' && pattern.[n - 1] = '/' then String.sub pattern 1 (n - 2)
    else pattern
  in
  match Hac_index.Regex.compile_result pattern with
  | Error msg -> out buf "bad regex: %s\n" msg
  | Ok re ->
      let fs = Hac.fs s.t in
      let files =
        try Fs.find_files fs dir with Errno.Error _ -> []
      in
      List.iter
        (fun p ->
          if not (Vpath.is_prefix ~prefix:"/.hac" p) then
            match Fs.read_file fs p with
            | content ->
                Hac_index.Tokenizer.iter_lines content (fun lineno line ->
                    if Hac_index.Regex.matches re line then
                      out buf "%s:%d: %s\n" p lineno line)
            | exception Errno.Error _ -> ())
        files

let space_report s buf =
  let sp = Hac.space s.t in
  out buf "semantic dirs        : %d\n" (Hac.semdir_count s.t);
  out buf "dirty (stale index)  : %d files\n" (Hac.dirty_count s.t);
  out buf "indexed documents    : %d\n" (Hac_index.Index.doc_count (Hac.index s.t));
  out buf "index bytes          : %d\n" sp.Hac.index_bytes;
  out buf "HAC structure bytes  : %d (semdirs %d, uidmap %d, depgraph %d)\n"
    (Hac.hac_overhead_bytes sp) sp.Hac.semdir_bytes sp.Hac.uidmap_bytes sp.Hac.depgraph_bytes;
  out buf "fs metadata bytes    : %d\n" sp.Hac.fs_metadata_bytes;
  out buf "current user         : %d\n" (Fs.current_user (Hac.fs s.t))

let run s buf line =
  let parts =
    String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
  in
  match parts with
  | [] -> true
  | "quit" :: _ | "exit" :: _ -> false
  | cmd :: args ->
      (try
         match (cmd, args) with
         | "help", _ -> out buf "%s\n" help_text
         | "pwd", _ -> out buf "%s\n" s.wd
         | "cd", [ d ] ->
             let d = resolve s d in
             if Hac.is_dir s.t d then s.wd <- d else out buf "cd: %s: not a directory\n" d
         | "ls", "-l" :: rest -> cmd_ls s buf true rest
         | "ls", rest -> cmd_ls s buf false rest
         | "mkdir", [ d ] -> Hac.mkdir s.t (resolve s d)
         | "rmdir", [ d ] -> Hac.rmdir s.t (resolve s d)
         | "write", f :: text ->
             Hac.write_file s.t (resolve s f) (String.concat " " text ^ "\n")
         | "append", f :: text ->
             Hac.append_file s.t (resolve s f) (String.concat " " text ^ "\n")
         | "cat", [ f ] -> (
             match Hac.resolve_link s.t (resolve s f) with
             | Some c -> Buffer.add_string buf c
             | None -> out buf "cat: %s: cannot read\n" f)
         | "rm", [ p ] -> Hac.unlink s.t (resolve s p)
         | "mv", [ a; b ] -> Hac.rename s.t ~src:(resolve s a) ~dst:(resolve s b)
         | "ln", [ target; link ] ->
             Hac.symlink s.t ~target:(resolve s target) ~link:(resolve s link)
         | "chmod", [ mode; p ] -> (
             match int_of_string_opt ("0o" ^ mode) with
             | Some m -> Fs.chmod (Hac.fs s.t) (resolve s p) m
             | None -> out buf "chmod: bad octal mode %s\n" mode)
         | "chown", [ uid; p ] -> (
             match int_of_string_opt uid with
             | Some u -> Fs.chown (Hac.fs s.t) (resolve s p) u
             | None -> out buf "chown: bad uid %s\n" uid)
         | "su", [ uid ] -> (
             match int_of_string_opt uid with
             | Some u -> Fs.set_user (Hac.fs s.t) u
             | None -> out buf "su: bad uid %s\n" uid)
         | "smkdir", d :: q when q <> [] -> Hac.smkdir s.t (resolve s d) (String.concat " " q)
         | "srmdir", [ d ] -> Hac.srmdir s.t (resolve s d)
         | "schquery", d :: q when q <> [] ->
             Hac.schquery s.t (resolve s d) (String.concat " " q)
         | "sreadin", [ d ] -> (
             match Hac.sreadin s.t (resolve s d) with
             | Some q -> out buf "%s\n" q
             | None -> out buf "%s is not semantic\n" d)
         | "ssearch", q when q <> [] -> cmd_ssearch s buf (String.concat " " q)
         | "sgrep", pattern :: rest ->
             cmd_sgrep s buf pattern (match rest with [] -> s.wd | d :: _ -> resolve s d)
         | "links", rest -> show_links s buf (match rest with [] -> s.wd | d :: _ -> resolve s d)
         | "prohibited", rest ->
             let dir = match rest with [] -> s.wd | d :: _ -> resolve s d in
             List.iter (fun k -> out buf "%s\n" k) (Hac.prohibited s.t dir)
         | "sact", [ l ] ->
             List.iter
               (fun (n, line) -> out buf "%d: %s\n" n line)
               (Hac.sact s.t (resolve s l))
         | "ssync", rest -> Hac.ssync s.t (match rest with [] -> s.wd | d :: _ -> resolve s d)
         | "sreindex", _ -> out buf "reindexed %d files\n" (Hac.reindex s.t ())
         | "smount", [ d; "demo-library" ] -> Hac.smount s.t (resolve s d) (demo_library ())
         | "smount", [ d; "demo-web" ] -> Hac.smount s.t (resolve s d) (demo_web ())
         | "sumount", [ d; ns ] -> Hac.sumount s.t (resolve s d) ~ns_id:ns
         | "sprohibit", [ d; target ] ->
             Hac.prohibit_target s.t ~dir:(resolve s d) ~target:(resolve s target)
         | "sunprohibit", [ d; target ] ->
             Hac.unprohibit s.t ~dir:(resolve s d) ~target:(resolve s target)
         | "sexport", [] -> Buffer.add_string buf (Export.export_all s.t)
         | "sexport", [ d ] -> (
             match Export.export_dir s.t (resolve s d) with
             | Some text -> Buffer.add_string buf text
             | None -> out buf "%s is not semantic\n" d)
         | "srecover", _ -> out buf "restored %d semantic directories\n" (Recover.reload s.t)
         | "save", [ host ] ->
             Hac_vfs.Image.save_file (Hac.fs s.t) host;
             out buf "saved image to %s\n" host
         | "restore", [ host ] -> (
             match Hac_vfs.Image.load_file host with
             | Error msg -> out buf "restore failed: %s\n" msg
             | Ok fs ->
                 Hac.shutdown ~graceful:false s.t;
                 s.t <- Hac.of_fs ~auto_sync:true ~transducer fs;
                 s.wd <- "/";
                 out buf "restored image; recovered %d semantic directories\n"
                   (Recover.reload s.t))
         | "sdirs", _ -> List.iter (fun d -> out buf "%s\n" d) (Hac.semantic_dirs s.t)
         | "stats", _ -> space_report s buf
         | _, _ -> out buf "unknown or malformed command (try: help)\n"
       with
      | Errno.Error (code, subject) -> out buf "error: %s: %s\n" subject (Errno.message code)
      | Hac.Hac_error msg -> out buf "error: %s\n" msg);
      true

let run_string s input =
  let buf = Buffer.create 256 in
  List.iter (fun line -> ignore (run s buf line)) (String.split_on_char ';' input);
  Buffer.contents buf
