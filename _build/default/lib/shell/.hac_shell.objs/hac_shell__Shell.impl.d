lib/shell/shell.ml: Buffer Hac_core Hac_index Hac_query Hac_remote Hac_vfs List Printf String
