lib/shell/shell.mli: Buffer Hac_core
