(** Per-process open-file-descriptor tables.

    The paper's HAC keeps an open file-descriptor table (and attribute cache)
    in shared memory per process; here each [Fd_table.t] models one process's
    table over a shared {!Fs.t}.  Descriptors survive renames of the opened
    file because they hold the inode, as on UNIX. *)

type t
(** One process's descriptor table. *)

type mode = Read_only | Write_only | Read_write
(** Open modes; writing through a [Read_only] descriptor is [EBADF]. *)

val create : Fs.t -> t
(** An empty table for a "process" using the given file system. *)

val openfile : t -> ?create:bool -> mode -> string -> int
(** Open a regular file and return its descriptor.  With [~create:true] a
    missing file is created first.  [EISDIR] on directories. *)

val close : t -> int -> unit
(** Release a descriptor.  [EBADF] when not open. *)

val read : t -> int -> int -> string
(** [read t fd len] reads up to [len] bytes at the current position and
    advances it; [""] at end of file. *)

val write : t -> int -> string -> int
(** Write at the current position, advance it, return the byte count. *)

val seek : t -> int -> int -> int
(** [seek t fd pos] sets the absolute position; returns it. *)

val position : t -> int -> int
(** Current position of a descriptor. *)

val size : t -> int -> int
(** Current file size seen through the descriptor. *)

val read_all : t -> int -> string
(** Read from the current position to end of file. *)

val open_count : t -> int
(** Number of currently open descriptors. *)

val approx_bytes : t -> int
(** Estimated memory held by the table — the per-process shared-memory cost
    the paper reports (~16 KB together with the attribute cache). *)
