(** Attribute (stat) cache shared between processes.

    The paper keeps an attribute cache in UNIX shared memory so Scan and Read
    phases of the Andrew Benchmark are served without touching the underlying
    file system.  Here the cache subscribes to the file system's event bus
    and invalidates affected entries on every mutation, so hits are always
    coherent. *)

type t
(** One cache instance (shareable between any number of {!Fd_table}s). *)

val create : ?capacity:int -> Fs.t -> t
(** A cache over [fs], automatically invalidated by its events.
    [capacity] bounds the entry count (default 4096); eviction is random. *)

val stat : t -> string -> Fs.stat
(** Like {!Fs.stat} but served from the cache when possible. *)

val lstat : t -> string -> Fs.stat
(** Like {!Fs.lstat} but served from the cache when possible. *)

val invalidate : t -> string -> unit
(** Drop the entries for one path. *)

val clear : t -> unit
(** Drop everything. *)

val hits : t -> int
(** Number of lookups served from the cache. *)

val misses : t -> int
(** Number of lookups that had to consult the file system. *)

val entry_count : t -> int
(** Live entries. *)

val approx_bytes : t -> int
(** Estimated memory held — the other half of the paper's ~16 KB per-process
    shared-memory figure. *)
