(** POSIX-flavoured error codes raised by the virtual file system. *)

type t =
  | ENOENT  (** No such file or directory. *)
  | EEXIST  (** Entry already exists. *)
  | ENOTDIR (** A path component is not a directory. *)
  | EISDIR  (** Operation needs a non-directory but got a directory. *)
  | ENOTEMPTY  (** Directory not empty. *)
  | EINVAL  (** Invalid argument (bad name, bad offset, ...). *)
  | EBADF   (** Bad file descriptor. *)
  | ELOOP   (** Too many levels of symbolic links. *)
  | EXDEV   (** Cross-filesystem rename. *)
  | EBUSY   (** Object is busy (e.g. a mount point). *)
  | EROFS   (** Read-only file system. *)
  | EACCES  (** Permission denied (missing r/w/x bit). *)
  | EPERM   (** Operation not permitted (not the owner). *)

exception Error of t * string
(** [Error (code, subject)] carries the failing path or descriptor. *)

val raise_error : t -> string -> 'a
(** [raise_error code subject] raises {!Error}. *)

val to_string : t -> string
(** Symbolic name, e.g. ["ENOENT"]. *)

val message : t -> string
(** Human-readable description. *)

val pp : Format.formatter -> t -> unit
(** Prints the symbolic name. *)
