lib/vfs/image.ml: Buffer Errno Event Fs Printf String Vpath
