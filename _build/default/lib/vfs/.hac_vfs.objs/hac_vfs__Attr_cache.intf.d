lib/vfs/attr_cache.mli: Fs
