lib/vfs/event.mli: Format
