lib/vfs/fd_table.ml: Array Errno Fs Inode String Sys Vpath
