lib/vfs/fs.mli: Event Inode
