lib/vfs/fd_table.mli: Fs
