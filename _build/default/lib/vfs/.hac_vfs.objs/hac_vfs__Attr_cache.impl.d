lib/vfs/attr_cache.ml: Event Fs Hashtbl List String Sys Vpath
