lib/vfs/fs.ml: Bytes Errno Event Hashtbl Inode List String Vpath
