lib/vfs/event.ml: Format List
