lib/vfs/vpath.mli:
