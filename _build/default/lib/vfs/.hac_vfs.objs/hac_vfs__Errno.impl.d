lib/vfs/errno.ml: Format Printexc Printf
