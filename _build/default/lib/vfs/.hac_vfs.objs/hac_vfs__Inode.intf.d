lib/vfs/inode.mli: Bytes Hashtbl
