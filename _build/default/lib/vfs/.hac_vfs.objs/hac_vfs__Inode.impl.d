lib/vfs/inode.ml: Bytes Hashtbl Printf String
