lib/vfs/vpath.ml: List String
