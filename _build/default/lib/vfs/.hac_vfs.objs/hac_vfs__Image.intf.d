lib/vfs/image.mli: Fs
