type kind = File | Dir | Link

type t =
  | Created of kind * string
  | Removed of kind * string
  | Renamed of string * string
  | Written of string

type bus = { mutable subscribers : (t -> unit) list }

let create_bus () = { subscribers = [] }

let subscribe bus f = bus.subscribers <- bus.subscribers @ [ f ]

let publish bus ev = List.iter (fun f -> f ev) bus.subscribers

let pp_kind ppf = function
  | File -> Format.pp_print_string ppf "file"
  | Dir -> Format.pp_print_string ppf "dir"
  | Link -> Format.pp_print_string ppf "link"

let pp ppf = function
  | Created (k, p) -> Format.fprintf ppf "created %a %s" pp_kind k p
  | Removed (k, p) -> Format.fprintf ppf "removed %a %s" pp_kind k p
  | Renamed (a, b) -> Format.fprintf ppf "renamed %s -> %s" a b
  | Written p -> Format.fprintf ppf "written %s" p
