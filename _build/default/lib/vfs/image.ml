(* Record grammar (binary safe: strings are length-prefixed):

     HACIMG1\n
     ( "D <mode> <owner> <plen>\n" path
     | "F <mode> <owner> <plen> <clen>\n" path content
     | "S <mode> <owner> <plen> <tlen>\n" path target )*
     "E\n"
*)

let magic = "HACIMG1\n"

let dump fs =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  let add_record kind st path payload =
    (match payload with
    | None ->
        Buffer.add_string b
          (Printf.sprintf "%c %o %d %d\n" kind st.Fs.st_mode st.Fs.st_uid
             (String.length path));
        Buffer.add_string b path
    | Some data ->
        Buffer.add_string b
          (Printf.sprintf "%c %o %d %d %d\n" kind st.Fs.st_mode st.Fs.st_uid
             (String.length path) (String.length data));
        Buffer.add_string b path;
        Buffer.add_string b data)
  in
  Fs.walk fs Vpath.root (fun path st ->
      match st.Fs.st_kind with
      | Event.Dir -> add_record 'D' st path None
      | Event.File -> add_record 'F' st path (Some (Fs.read_file fs path))
      | Event.Link -> add_record 'S' st path (Some (Fs.readlink fs path)));
  Buffer.add_string b "E\n";
  Buffer.contents b

type cursor = { src : string; mutable pos : int }

let read_line c =
  match String.index_from_opt c.src c.pos '\n' with
  | None -> Error "unterminated header line"
  | Some nl ->
      let line = String.sub c.src c.pos (nl - c.pos) in
      c.pos <- nl + 1;
      Ok line

let read_bytes c n =
  if c.pos + n > String.length c.src then Error "truncated payload"
  else begin
    let s = String.sub c.src c.pos n in
    c.pos <- c.pos + n;
    Ok s
  end

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let load image =
  let hl = String.length magic in
  if String.length image < hl || String.sub image 0 hl <> magic then
    Error "not a HAC image (bad magic)"
  else begin
    let c = { src = image; pos = hl } in
    let fs = Fs.create () in
    let apply_meta path mode owner =
      Fs.chown fs ~follow:false path owner;
      Fs.chmod fs ~follow:false path mode
    in
    let rec go () =
      let* line = read_line c in
      match String.split_on_char ' ' line with
      | [ "E" ] -> Ok fs
      | [ "D"; mode; owner; plen ] -> (
          match (int_of_string_opt ("0o" ^ mode), int_of_string_opt owner, int_of_string_opt plen) with
          | Some mode, Some owner, Some plen ->
              let* path = read_bytes c plen in
              Fs.mkdir fs path;
              apply_meta path mode owner;
              go ()
          | _ -> Error ("bad directory record: " ^ line))
      | [ ("F" | "S") as kind; mode; owner; plen; dlen ] -> (
          match
            ( int_of_string_opt ("0o" ^ mode),
              int_of_string_opt owner,
              int_of_string_opt plen,
              int_of_string_opt dlen )
          with
          | Some mode, Some owner, Some plen, Some dlen ->
              let* path = read_bytes c plen in
              let* data = read_bytes c dlen in
              if kind = "F" then Fs.write_file fs path data
              else Fs.symlink fs ~target:data ~link:path;
              apply_meta path mode owner;
              go ()
          | _ -> Error ("bad record: " ^ line))
      | _ -> Error ("unrecognised record: " ^ line)
    in
    match go () with
    | Ok _ as ok -> ok
    | Error _ as e -> e
    | exception Errno.Error (code, subject) ->
        Error (Printf.sprintf "image replay failed: %s on %s" (Errno.to_string code) subject)
  end

let save_file fs host_path =
  let oc = open_out_bin host_path in
  output_string oc (dump fs);
  close_out oc

let load_file host_path =
  match open_in_bin host_path with
  | ic ->
      let n = in_channel_length ic in
      let data = really_input_string ic n in
      close_in ic;
      load data
  | exception Sys_error msg -> Error msg
