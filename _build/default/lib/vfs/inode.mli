(** Inodes and the inode table of the virtual file system. *)

type ino = int
(** Inode numbers; stable for the life of an object. *)

type file_data = { mutable bytes : Bytes.t; mutable len : int }
(** A regular file's growable byte buffer; [len <= Bytes.length bytes]. *)

type body =
  | Regular of file_data
  | Directory of (string, ino) Hashtbl.t  (** name -> child inode *)
  | Symlink of string  (** target path, possibly dangling *)

type t = {
  ino : ino;
  mutable body : body;
  mutable nlink : int;  (** directory entries referencing this inode *)
  mutable mtime : int;  (** logical modification stamp *)
  mutable ctime : int;  (** logical status-change stamp *)
  mutable owner : int;  (** user id of the owner (0 is the superuser) *)
  mutable mode : int;  (** permission bits, [0oXYZ] (group bits unused) *)
}

type table
(** Allocator and store of all inodes of one file system. *)

val create_table : unit -> table
(** Fresh table containing only inode 0, the root directory. *)

val root_ino : ino
(** Inode number of the root directory (0). *)

val alloc : table -> ?owner:int -> ?mode:int -> body -> t
(** Allocate a new inode with the given body, [nlink = 0], stamps at the
    table's current logical clock.  Defaults: [owner 0], [mode 0o777]. *)

val get : table -> ino -> t
(** Lookup; raises [Invalid_argument] for a dangling inode number. *)

val free : table -> ino -> unit
(** Drop an inode from the table (its number is not reused). *)

val tick : table -> int
(** Advance and return the table's logical clock, used for stamps. *)

val count : table -> int
(** Number of live inodes. *)

val size : t -> int
(** Size in bytes: file length, entry count for directories, target length
    for symlinks. *)

val kind_name : t -> string
(** ["file"], ["dir"] or ["symlink"]. *)
