type t =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | EINVAL
  | EBADF
  | ELOOP
  | EXDEV
  | EBUSY
  | EROFS
  | EACCES
  | EPERM

exception Error of t * string

let raise_error code subject = raise (Error (code, subject))

let to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EINVAL -> "EINVAL"
  | EBADF -> "EBADF"
  | ELOOP -> "ELOOP"
  | EXDEV -> "EXDEV"
  | EBUSY -> "EBUSY"
  | EROFS -> "EROFS"
  | EACCES -> "EACCES"
  | EPERM -> "EPERM"

let message = function
  | ENOENT -> "no such file or directory"
  | EEXIST -> "file exists"
  | ENOTDIR -> "not a directory"
  | EISDIR -> "is a directory"
  | ENOTEMPTY -> "directory not empty"
  | EINVAL -> "invalid argument"
  | EBADF -> "bad file descriptor"
  | ELOOP -> "too many levels of symbolic links"
  | EXDEV -> "invalid cross-device link"
  | EBUSY -> "resource busy"
  | EROFS -> "read-only file system"
  | EACCES -> "permission denied"
  | EPERM -> "operation not permitted"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let () =
  Printexc.register_printer (function
    | Error (code, subject) ->
        Some (Printf.sprintf "Vfs error %s (%s): %s" (to_string code) (message code) subject)
    | _ -> None)
