(** Mutation events published by the file system.

    The HAC layer (and the attribute cache) subscribe to this stream to learn
    about every change made through the VFS — the moral equivalent of the
    paper's call interposition.  Events carry normalized absolute paths. *)

type kind = File | Dir | Link
(** What changed: a regular file, a directory, or a symbolic link. *)

type t =
  | Created of kind * string  (** A new object appeared at the path. *)
  | Removed of kind * string  (** The object at the path was deleted. *)
  | Renamed of string * string  (** [Renamed (src, dst)]: moved, subtree included. *)
  | Written of string  (** A regular file's contents changed. *)

type bus
(** A synchronous publish/subscribe channel. *)

val create_bus : unit -> bus
(** A bus with no subscribers. *)

val subscribe : bus -> (t -> unit) -> unit
(** Register a callback, invoked synchronously on every {!publish}. *)

val publish : bus -> t -> unit
(** Deliver an event to every subscriber, in subscription order. *)

val pp : Format.formatter -> t -> unit
(** Debug printer. *)
