(** File-system images: serialise a whole tree, load it back.

    A binary-safe, length-prefixed format (think minimal tar) covering every
    directory, regular file and symbolic link with its owner and mode.
    Together with the metadata HAC persists inside the tree, an image is a
    complete restartable snapshot: [load] + [Hac.of_fs] + [Recover.reload]
    resurrects a session, including its semantic directories.

    Built purely on {!Fs}'s public API; dumping runs as the superuser view
    of whoever calls it (no permission checks are bypassed — dump with an
    appropriate current user). *)

val dump : Fs.t -> string
(** Serialise the entire tree (parents before children). *)

val load : string -> (Fs.t, string) result
(** Rebuild a fresh file system from an image; [Error] describes the first
    malformed record.  Owners and modes are restored exactly. *)

val save_file : Fs.t -> string -> unit
(** {!dump} to a file on the {e host} file system (for hacsh's [save]). *)

val load_file : string -> (Fs.t, string) result
(** {!load} from a host file. *)
