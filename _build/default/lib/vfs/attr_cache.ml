(* Keys distinguish the follow/no-follow variants because a symlink path has
   two distinct answers.  Invalidation is prefix-based for renames and
   removals of directories: any cached path at or below the changed one is
   dropped. *)

type key = { path : string; follow : bool }

type t = {
  fs : Fs.t;
  entries : (key, Fs.stat) Hashtbl.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
}

let invalidate_prefix t prefix =
  let doomed =
    Hashtbl.fold
      (fun k _ acc -> if Vpath.is_prefix ~prefix k.path then k :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) doomed

let invalidate_exact t p =
  Hashtbl.remove t.entries { path = p; follow = true };
  Hashtbl.remove t.entries { path = p; follow = false }

(* Point events (file writes and creations) need only O(1) invalidation of
   the object and its parent; only directory removals and renames can strand
   cached descendants and pay the prefix sweep. *)
let on_event t = function
  | Event.Created (_, p) | Event.Written p | Event.Removed ((Event.File | Event.Link), p)
    ->
      invalidate_exact t p;
      invalidate_exact t (Vpath.dirname p)
  | Event.Removed (Event.Dir, p) ->
      invalidate_prefix t p;
      invalidate_exact t (Vpath.dirname p)
  | Event.Renamed (src, dst) ->
      invalidate_prefix t src;
      invalidate_prefix t dst;
      invalidate_exact t (Vpath.dirname src);
      invalidate_exact t (Vpath.dirname dst)

let create ?(capacity = 4096) fs =
  let t = { fs; entries = Hashtbl.create 256; capacity; hits = 0; misses = 0 } in
  Event.subscribe (Fs.events fs) (on_event t);
  t

let evict_one t =
  (* Cheap pseudo-random eviction: drop the first key the hash iterator
     yields; good enough for a bounded cache. *)
  match Hashtbl.fold (fun k _ _ -> Some k) t.entries None with
  | Some k -> Hashtbl.remove t.entries k
  | None -> ()

let lookup t ~follow path =
  let key = { path = Vpath.normalize path; follow } in
  match Hashtbl.find_opt t.entries key with
  | Some st ->
      t.hits <- t.hits + 1;
      st
  | None ->
      t.misses <- t.misses + 1;
      let st = if follow then Fs.stat t.fs key.path else Fs.lstat t.fs key.path in
      if Hashtbl.length t.entries >= t.capacity then evict_one t;
      Hashtbl.replace t.entries key st;
      st

let stat t path = lookup t ~follow:true path

let lstat t path = lookup t ~follow:false path

let invalidate t path =
  let path = Vpath.normalize path in
  Hashtbl.remove t.entries { path; follow = true };
  Hashtbl.remove t.entries { path; follow = false }

let clear t = Hashtbl.reset t.entries

let hits t = t.hits

let misses t = t.misses

let entry_count t = Hashtbl.length t.entries

let approx_bytes t =
  let word = Sys.int_size / 8 + 1 in
  Hashtbl.fold
    (fun k _ acc -> acc + String.length k.path + (10 * word))
    t.entries 0
