type mode = Read_only | Write_only | Read_write

type entry = {
  ino : Inode.ino;
  path : string; (* the path used at open time, for Written events *)
  mode : mode;
  mutable pos : int;
}

type t = {
  fs : Fs.t;
  mutable slots : entry option array;
  mutable open_slots : int;
}

let initial_slots = 64

let create fs = { fs; slots = Array.make initial_slots None; open_slots = 0 }

let find_free t =
  let n = Array.length t.slots in
  let rec go i = if i >= n then None else if t.slots.(i) = None then Some i else go (i + 1) in
  match go 0 with
  | Some i -> i
  | None ->
      let slots = Array.make (2 * n) None in
      Array.blit t.slots 0 slots 0 n;
      t.slots <- slots;
      n

let openfile t ?(create = false) mode path =
  let path = Vpath.normalize path in
  if create && not (Fs.exists t.fs path) then Fs.create_file t.fs path;
  let need = match mode with Read_only -> 4 | Write_only -> 2 | Read_write -> 6 in
  if Fs.exists t.fs path && not (Fs.access t.fs path need) then
    Errno.raise_error Errno.EACCES path;
  let ino = Fs.ino_of_path t.fs path in
  (* Reject directories now rather than on first read. *)
  ignore (Fs.pread_ino t.fs ino ~pos:0 ~len:0);
  let fd = find_free t in
  t.slots.(fd) <- Some { ino; path; mode; pos = 0 };
  t.open_slots <- t.open_slots + 1;
  fd

let entry t fd =
  if fd < 0 || fd >= Array.length t.slots then Errno.raise_error Errno.EBADF (string_of_int fd);
  match t.slots.(fd) with
  | None -> Errno.raise_error Errno.EBADF (string_of_int fd)
  | Some e -> e

let close t fd =
  ignore (entry t fd);
  t.slots.(fd) <- None;
  t.open_slots <- t.open_slots - 1

let read t fd len =
  let e = entry t fd in
  if e.mode = Write_only then Errno.raise_error Errno.EBADF (string_of_int fd);
  let data = Fs.pread_ino t.fs e.ino ~pos:e.pos ~len in
  e.pos <- e.pos + String.length data;
  data

let write t fd data =
  let e = entry t fd in
  if e.mode = Read_only then Errno.raise_error Errno.EBADF (string_of_int fd);
  let n = Fs.pwrite_ino t.fs e.ino ~path:e.path ~pos:e.pos data in
  e.pos <- e.pos + n;
  n

let seek t fd pos =
  if pos < 0 then Errno.raise_error Errno.EINVAL (string_of_int pos);
  let e = entry t fd in
  e.pos <- pos;
  pos

let position t fd = (entry t fd).pos

let size t fd = Fs.size_ino t.fs (entry t fd).ino

let read_all t fd =
  let e = entry t fd in
  let len = max 0 (Fs.size_ino t.fs e.ino - e.pos) in
  read t fd len

let open_count t = t.open_slots

(* One slot record is roughly: ino + mode + pos + path pointer + path
   bytes.  The array itself costs a word per slot. *)
let approx_bytes t =
  let word = Sys.int_size / 8 + 1 in
  let slot_cost acc = function
    | None -> acc + word
    | Some e -> acc + (5 * word) + String.length e.path
  in
  Array.fold_left slot_cost 0 t.slots
