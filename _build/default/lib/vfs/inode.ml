type ino = int

type file_data = { mutable bytes : Bytes.t; mutable len : int }

type body =
  | Regular of file_data
  | Directory of (string, ino) Hashtbl.t
  | Symlink of string

type t = {
  ino : ino;
  mutable body : body;
  mutable nlink : int;
  mutable mtime : int;
  mutable ctime : int;
  mutable owner : int;
  mutable mode : int;
}

type table = {
  inodes : (ino, t) Hashtbl.t;
  mutable next : ino;
  mutable clock : int;
}

let root_ino = 0

let create_table () =
  let tbl = { inodes = Hashtbl.create 1024; next = 1; clock = 0 } in
  let root =
    {
      ino = root_ino;
      body = Directory (Hashtbl.create 16);
      nlink = 1;
      mtime = 0;
      ctime = 0;
      owner = 0;
      mode = 0o777;
    }
  in
  Hashtbl.replace tbl.inodes root_ino root;
  tbl

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let alloc t ?(owner = 0) ?(mode = 0o777) body =
  let ino = t.next in
  t.next <- t.next + 1;
  let stamp = tick t in
  let node = { ino; body; nlink = 0; mtime = stamp; ctime = stamp; owner; mode } in
  Hashtbl.replace t.inodes ino node;
  node

let get t ino =
  match Hashtbl.find_opt t.inodes ino with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Inode.get: dangling inode %d" ino)

let free t ino = Hashtbl.remove t.inodes ino

let count t = Hashtbl.length t.inodes

let size n =
  match n.body with
  | Regular f -> f.len
  | Directory d -> Hashtbl.length d
  | Symlink s -> String.length s

let kind_name n =
  match n.body with
  | Regular _ -> "file"
  | Directory _ -> "dir"
  | Symlink _ -> "symlink"
