lib/depgraph/depgraph.ml: Hashtbl Int List Option Set Sys
