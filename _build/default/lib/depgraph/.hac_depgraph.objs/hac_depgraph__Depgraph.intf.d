lib/depgraph/depgraph.mli:
