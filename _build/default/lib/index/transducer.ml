type t = {
  td_name : string;
  extract : path:string -> content:string -> (string * string) list;
}

let header_lines ?(limit = 20) content =
  let lines = ref [] in
  Tokenizer.iter_lines content (fun n line -> if n <= limit then lines := line :: !lines);
  List.rev !lines

let split_header line =
  match String.index_opt line ':' with
  | Some i when i > 0 ->
      let key = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
      let value =
        String.lowercase_ascii
          (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
      in
      if key <> "" && value <> "" && String.for_all (fun c -> c >= 'a' && c <= 'z') key
      then Some (key, value)
      else None
  | Some _ | None -> None

let email =
  {
    td_name = "email";
    extract =
      (fun ~path:_ ~content ->
        header_lines content
        |> List.filter_map split_header
        |> List.concat_map (fun (k, v) ->
               match k with
               | "from" | "to" | "cc" -> [ (k, v) ]
               | "subject" ->
                   (* The whole subject plus one pair per word, so both
                      [subject:budget] and exact-phrase lookups work. *)
                   (k, v) :: List.map (fun w -> (k, w)) (Tokenizer.words v)
               | _ -> []));
  }

let key_value =
  {
    td_name = "key_value";
    extract = (fun ~path:_ ~content -> List.filter_map split_header (header_lines content));
  }

let file_type =
  let ext_of path =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> ""
  in
  {
    td_name = "file_type";
    extract =
      (fun ~path ~content ->
        let ty =
          match ext_of path with
          | "ml" | "mli" | "c" | "h" | "py" | "sh" -> "code"
          | "eml" | "mbox" -> "mail"
          | _ ->
              if
                List.exists
                  (fun l -> String.length l >= 5 && String.sub l 0 5 = "From:")
                  (header_lines ~limit:3 content)
              then "mail"
              else "text"
        in
        [ ("type", ty) ]);
  }

let combine ts =
  {
    td_name = String.concat "+" (List.map (fun t -> t.td_name) ts);
    extract =
      (fun ~path ~content -> List.concat_map (fun t -> t.extract ~path ~content) ts);
  }
