lib/index/tokenizer.mli:
