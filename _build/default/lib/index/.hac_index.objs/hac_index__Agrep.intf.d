lib/index/agrep.mli:
