lib/index/stemmer.ml: String
