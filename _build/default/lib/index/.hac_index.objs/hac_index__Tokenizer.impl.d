lib/index/tokenizer.ml: Buffer Char List String
