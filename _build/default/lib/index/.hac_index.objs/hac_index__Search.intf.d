lib/index/search.mli: Hac_bitset Index
