lib/index/search.ml: Agrep Hac_bitset Index List Option Regex Stemmer String Tokenizer
