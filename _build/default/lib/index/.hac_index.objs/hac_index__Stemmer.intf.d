lib/index/stemmer.mli:
