lib/index/transducer.ml: List String Tokenizer
