lib/index/index.ml: Agrep Array Hac_bitset Hashtbl List Stemmer String Sys Tokenizer Transducer
