lib/index/transducer.mli:
