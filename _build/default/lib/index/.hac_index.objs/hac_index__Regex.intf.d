lib/index/regex.mli:
