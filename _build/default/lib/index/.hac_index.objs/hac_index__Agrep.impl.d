lib/index/agrep.ml: Array Char String Sys
