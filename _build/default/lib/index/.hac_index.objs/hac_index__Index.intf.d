lib/index/index.mli: Hac_bitset Transducer
