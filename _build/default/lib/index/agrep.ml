let max_pattern_len = Sys.int_size - 1

let check_pattern p =
  if String.length p > max_pattern_len then
    invalid_arg "Agrep: pattern longer than a machine word"

(* Character-class bitmasks: [masks.(c)] has bit [i] set when [pattern.[i] = c]. *)
let build_masks pattern =
  let masks = Array.make 256 0 in
  String.iteri (fun i c -> masks.(Char.code c) <- masks.(Char.code c) lor (1 lsl i)) pattern;
  masks

let find_exact ~pattern text =
  check_pattern pattern;
  let m = String.length pattern in
  if m = 0 then Some 0
  else begin
    let masks = build_masks pattern in
    let accept = 1 lsl (m - 1) in
    let n = String.length text in
    let rec go i r =
      if i >= n then None
      else
        let r = ((r lsl 1) lor 1) land masks.(Char.code text.[i]) in
        if r land accept <> 0 then Some (i - m + 1) else go (i + 1) r
    in
    go 0 0
  end

let count_exact ~pattern text =
  check_pattern pattern;
  let m = String.length pattern in
  if m = 0 then 0
  else begin
    let masks = build_masks pattern in
    let accept = 1 lsl (m - 1) in
    let n = String.length text in
    let count = ref 0 in
    let r = ref 0 in
    for i = 0 to n - 1 do
      r := ((!r lsl 1) lor 1) land masks.(Char.code text.[i]);
      if !r land accept <> 0 then incr count
    done;
    !count
  end

(* Wu–Manber: one bit row per error budget.  Row k matches with <= k
   errors.  Update order matters: use the previous iteration's row k-1 for
   deletion/substitution and the current one for insertion. *)
let find_approx ~pattern ~errors text =
  check_pattern pattern;
  if errors < 0 then invalid_arg "Agrep.find_approx: negative errors";
  let m = String.length pattern in
  if m = 0 then Some 0
  else begin
    let k = min errors m in
    let masks = build_masks pattern in
    let accept = 1 lsl (m - 1) in
    let rows = Array.make (k + 1) 0 in
    (* Row j starts pre-filled with j leading matches allowed via deletions. *)
    for j = 1 to k do
      rows.(j) <- (rows.(j - 1) lsl 1) lor 1
    done;
    if k >= m then Some 0
    else begin
      let n = String.length text in
      let rec go i =
        if i >= n then None
        else begin
          let c = masks.(Char.code text.[i]) in
          let old0 = rows.(0) in
          rows.(0) <- ((old0 lsl 1) lor 1) land c;
          let prev_old = ref old0 in
          for j = 1 to k do
            let oldj = rows.(j) in
            let matched = ((oldj lsl 1) lor 1) land c in
            let substituted = !prev_old lsl 1 in
            let deleted = rows.(j - 1) lsl 1 in
            let inserted = !prev_old in
            rows.(j) <- matched lor substituted lor deleted lor inserted lor 1;
            prev_old := oldj
          done;
          if rows.(k) land accept <> 0 then Some (i + 1) else go (i + 1)
        end
      in
      go 0
    end
  end

let matches_approx ~pattern ~errors text =
  find_approx ~pattern ~errors text <> None

let edit_distance ?cutoff a b =
  let la = String.length a and lb = String.length b in
  let big = la + lb + 1 in
  let bound = match cutoff with Some c -> c | None -> big in
  if abs (la - lb) > bound then bound + 1
  else begin
    (* One-row dynamic program; [row.(j)] is the distance between a-prefix of
       the current length and the b-prefix of length j. *)
    let row = Array.init (lb + 1) (fun j -> j) in
    let exceeded = ref (la = 0 && lb > bound) in
    for i = 1 to la do
      let diag = ref row.(0) in
      row.(0) <- i;
      let row_min = ref row.(0) in
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        let v = min (min (row.(j) + 1) (row.(j - 1) + 1)) (!diag + cost) in
        diag := row.(j);
        row.(j) <- v;
        if v < !row_min then row_min := v
      done;
      if !row_min > bound then exceeded := true
    done;
    if !exceeded && row.(lb) > bound then bound + 1 else row.(lb)
  end

let word_matches ~pattern ~errors w =
  edit_distance ~cutoff:errors pattern w <= errors
