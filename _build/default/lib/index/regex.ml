exception Parse_error of string

let fail msg = raise (Parse_error msg)

(* -- syntax ----------------------------------------------------------------- *)

type ast =
  | Char of char
  | Any
  | Class of bool * (char * char) list (* negated?, inclusive ranges *)
  | Seq of ast list
  | Alt of ast * ast
  | Star of ast
  | Plus of ast
  | Opt of ast

(* Anchors are recognised only at the very ends of the whole pattern;
   elsewhere '^' and '$' are literals (the common, forgiving convention). *)
let split_anchors pattern =
  let n = String.length pattern in
  let anchored_start = n > 0 && pattern.[0] = '^' in
  let body_start = if anchored_start then 1 else 0 in
  let escaped_last =
    (* Is a final '$' escaped?  Count the backslashes before it. *)
    let rec count i acc = if i >= body_start && pattern.[i] = '\\' then count (i - 1) (acc + 1) else acc in
    n >= 2 && count (n - 2) 0 mod 2 = 1
  in
  let anchored_end = n > body_start && pattern.[n - 1] = '$' && not escaped_last in
  let body_end = if anchored_end then n - 1 else n in
  (anchored_start, anchored_end, String.sub pattern body_start (body_end - body_start))

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let parse_class c =
  (* c.pos is just after '['. *)
  let negated = peek c = Some '^' in
  if negated then advance c;
  let ranges = ref [] in
  let rec go first =
    match peek c with
    | None -> fail "unterminated character class"
    | Some ']' when not first -> advance c
    | Some ch ->
        advance c;
        let ch = if ch = '\\' then (match peek c with
          | Some e -> advance c; (match e with 'n' -> '\n' | 't' -> '\t' | _ -> e)
          | None -> fail "trailing backslash in class")
          else ch
        in
        (match (peek c, c.pos + 1 < String.length c.src) with
        | Some '-', true when c.src.[c.pos + 1] <> ']' ->
            advance c;
            (match peek c with
            | Some hi ->
                advance c;
                if hi < ch then fail "inverted range in character class";
                ranges := (ch, hi) :: !ranges
            | None -> fail "unterminated character class")
        | _ -> ranges := (ch, ch) :: !ranges);
        go false
  in
  go true;
  Class (negated, List.rev !ranges)

let rec parse_alt c =
  let left = parse_seq c in
  match peek c with
  | Some '|' ->
      advance c;
      Alt (left, parse_alt c)
  | _ -> left

and parse_seq c =
  let items = ref [] in
  let rec go () =
    match peek c with
    | None | Some ')' | Some '|' -> ()
    | Some _ ->
        items := parse_postfix c :: !items;
        go ()
  in
  go ();
  match List.rev !items with [ one ] -> one | items -> Seq items

and parse_postfix c =
  let atom = parse_atom c in
  let rec wrap a =
    match peek c with
    | Some '*' ->
        advance c;
        wrap (Star a)
    | Some '+' ->
        advance c;
        wrap (Plus a)
    | Some '?' ->
        advance c;
        wrap (Opt a)
    | _ -> a
  in
  wrap atom

and parse_atom c =
  match peek c with
  | None -> fail "expected an atom"
  | Some '(' ->
      advance c;
      let inner = parse_alt c in
      (match peek c with
      | Some ')' -> advance c
      | _ -> fail "unclosed group");
      inner
  | Some '[' ->
      advance c;
      parse_class c
  | Some '.' ->
      advance c;
      Any
  | Some '\\' ->
      advance c;
      (match peek c with
      | None -> fail "trailing backslash"
      | Some e ->
          advance c;
          Char (match e with 'n' -> '\n' | 't' -> '\t' | _ -> e))
  | Some (('*' | '+' | '?') as ch) -> fail (Printf.sprintf "dangling %c" ch)
  | Some ')' -> fail "unmatched )"
  | Some ch ->
      advance c;
      Char ch

let parse body =
  let c = { src = body; pos = 0 } in
  let ast = parse_alt c in
  if c.pos < String.length body then fail "trailing input";
  ast

(* -- Thompson NFA ------------------------------------------------------------- *)

type trans = Eps of int | Test of (char -> bool) * int

type nfa = {
  states : trans list array; (* out-transitions per state *)
  start : int;
  final : int;
}

type builder = { mutable out : trans list array; mutable used : int }

let new_state b =
  if b.used >= Array.length b.out then begin
    let bigger = Array.make (2 * Array.length b.out) [] in
    Array.blit b.out 0 bigger 0 b.used;
    b.out <- bigger
  end;
  let id = b.used in
  b.used <- b.used + 1;
  id

let add b s t = b.out.(s) <- t :: b.out.(s)

let test_of = function
  | Char ch -> fun x -> x = ch
  | Any -> fun x -> x <> '\n'
  | Class (negated, ranges) ->
      fun x ->
        let inside = List.exists (fun (lo, hi) -> lo <= x && x <= hi) ranges in
        inside <> negated
  | Seq _ | Alt _ | Star _ | Plus _ | Opt _ -> assert false

(* Returns (start, final) of a fragment with a single final state. *)
let rec build b = function
  | (Char _ | Any | Class _) as atom ->
      let s = new_state b and e = new_state b in
      add b s (Test (test_of atom, e));
      (s, e)
  | Seq items ->
      let s = new_state b in
      let last =
        List.fold_left
          (fun prev item ->
            let fs, fe = build b item in
            add b prev (Eps fs);
            fe)
          s items
      in
      (s, last)
  | Alt (x, y) ->
      let s = new_state b and e = new_state b in
      let xs, xe = build b x and ys, ye = build b y in
      add b s (Eps xs);
      add b s (Eps ys);
      add b xe (Eps e);
      add b ye (Eps e);
      (s, e)
  | Star x ->
      let s = new_state b and e = new_state b in
      let xs, xe = build b x in
      add b s (Eps xs);
      add b s (Eps e);
      add b xe (Eps xs);
      add b xe (Eps e);
      (s, e)
  | Plus x ->
      let xs, xe = build b x in
      let e = new_state b in
      add b xe (Eps xs);
      add b xe (Eps e);
      (xs, e)
  | Opt x ->
      let s = new_state b and e = new_state b in
      let xs, xe = build b x in
      add b s (Eps xs);
      add b s (Eps e);
      add b xe (Eps e);
      (s, e)

type t = {
  source : string;
  nfa : nfa;
  anchored_start : bool;
  anchored_end : bool;
  ast : ast;
}

let compile pattern =
  let anchored_start, anchored_end, body = split_anchors pattern in
  let ast = parse body in
  let b = { out = Array.make 16 []; used = 0 } in
  let start, final = build b ast in
  {
    source = pattern;
    nfa = { states = Array.sub b.out 0 b.used; start; final };
    anchored_start;
    anchored_end;
    ast;
  }

let compile_result pattern =
  match compile pattern with
  | t -> Ok t
  | exception Parse_error msg -> Error msg

let source t = t.source

(* -- simulation ------------------------------------------------------------------ *)

(* Add [state] and everything epsilon-reachable from it to [set]. *)
let rec close nfa set state =
  if not set.(state) then begin
    set.(state) <- true;
    List.iter
      (function Eps target -> close nfa set target | Test _ -> ())
      nfa.states.(state)
  end

let step nfa current ch =
  let next = Array.make (Array.length nfa.states) false in
  Array.iteri
    (fun s active ->
      if active then
        List.iter
          (function
            | Test (f, target) -> if f ch then close nfa next target
            | Eps _ -> ())
          nfa.states.(s))
    current;
  next

let matches t text =
  let nfa = t.nfa in
  let n = String.length text in
  let current = ref (Array.make (Array.length nfa.states) false) in
  close nfa !current nfa.start;
  let accepted_at i = !current.(nfa.final) && ((not t.anchored_end) || i = n) in
  if accepted_at 0 && not t.anchored_end then true
  else begin
    let result = ref (accepted_at 0 && n = 0) in
    let i = ref 0 in
    while (not !result) && !i < n do
      let next = step nfa !current text.[!i] in
      if not t.anchored_start then close nfa next nfa.start;
      current := next;
      incr i;
      if !current.(nfa.final) && ((not t.anchored_end) || !i = n) then result := true
    done;
    !result
  end

let find t text =
  let nfa = t.nfa in
  let n = String.length text in
  let try_from start =
    let current = ref (Array.make (Array.length nfa.states) false) in
    close nfa !current nfa.start;
    if !current.(nfa.final) && ((not t.anchored_end) || start = n) then Some start
    else begin
      let found = ref None in
      let i = ref start in
      while !found = None && !i < n do
        current := step nfa !current text.[!i];
        incr i;
        if !current.(nfa.final) && ((not t.anchored_end) || !i = n) then found := Some !i
      done;
      !found
    end
  in
  let starts = if t.anchored_start then [ 0 ] else List.init (n + 1) (fun i -> i) in
  List.fold_left
    (fun acc start ->
      match acc with
      | Some _ -> acc
      | None -> Option.map (fun stop -> (start, stop)) (try_from start))
    None starts

(* -- literal extraction -------------------------------------------------------------- *)

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

(* Word-character runs every match must contain.  Only certain-to-appear
   parts count: sequence members and Plus bodies; anything optional,
   repeated-from-zero or alternated is skipped.  Runs never extend across a
   sub-fragment boundary (repetitions may interleave other text). *)
let required_word t =
  let runs = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf >= 2 then runs := Buffer.contents buf :: !runs;
    Buffer.clear buf
  in
  let rec walk = function
    | Char c when is_word_char c -> Buffer.add_char buf (Char.lowercase_ascii c)
    | Char _ | Any | Class _ -> flush ()
    | Seq items -> List.iter walk items
    | Plus x ->
        flush ();
        walk x;
        flush ()
    | Alt _ | Star _ | Opt _ -> flush ()
  in
  walk t.ast;
  flush ();
  match List.sort (fun a b -> compare (String.length b) (String.length a)) !runs with
  | longest :: _ -> Some longest
  | [] -> None
