(** Word extraction for the content-based index.

    A word is a maximal run of ASCII letters, digits or underscores, folded
    to lowercase.  Words shorter than {!min_word_len} are ignored; longer
    than {!max_word_len} are truncated — the index treats very long tokens as
    their prefix, like Glimpse does. *)

val min_word_len : int
(** Shortest indexed word (2). *)

val max_word_len : int
(** Longest stored word (32); longer tokens are truncated to this. *)

val iter_words : string -> (string -> unit) -> unit
(** Apply the callback to every word of the text, in order, duplicates
    included. *)

val words : string -> string list
(** All words in order, duplicates included. *)

val unique_words : string -> string list
(** Sorted de-duplicated words. *)

val contains_word : string -> string -> bool
(** [contains_word text w] is [true] when [w] (already lowercase) occurs in
    [text] as a whole word. *)

val iter_lines : string -> (int -> string -> unit) -> unit
(** Apply the callback to each line with its 1-based number; newlines are
    stripped. *)
