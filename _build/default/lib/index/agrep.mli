(** Bitap ("shift-or") exact and approximate string matching.

    Glimpse verifies index candidates with agrep; this module is our agrep:
    Baeza-Yates–Gonnet exact bitap and the Wu–Manber extension allowing up to
    [k] edit errors (insertion, deletion, substitution).  Patterns are
    limited to one machine word ([Sys.int_size - 1] characters, 62 on 64-bit)
    which comfortably covers indexable words. *)

val max_pattern_len : int
(** Longest supported pattern. *)

val find_exact : pattern:string -> string -> int option
(** Index of the first exact occurrence of [pattern] in the text, or
    [None].  The empty pattern matches at 0.  Raises [Invalid_argument] when
    the pattern is too long. *)

val count_exact : pattern:string -> string -> int
(** Number of (possibly overlapping) exact occurrences. *)

val find_approx : pattern:string -> errors:int -> string -> int option
(** End position (exclusive) of the first match of [pattern] within edit
    distance [errors], or [None].  [errors = 0] behaves like
    {!find_exact} except for the returned position convention. *)

val matches_approx : pattern:string -> errors:int -> string -> bool
(** Whether the text contains a match within the given edit distance. *)

val edit_distance : ?cutoff:int -> string -> string -> int
(** Levenshtein distance between two whole strings.  When [cutoff] is given
    and the distance exceeds it, returns [cutoff + 1] quickly. *)

val word_matches : pattern:string -> errors:int -> string -> bool
(** Whole-word approximate equality: the edit distance between [pattern] and
    the candidate word is at most [errors].  This is what vocabulary
    expansion of [~approx] query terms uses. *)
