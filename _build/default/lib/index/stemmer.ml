let ends_with ~suffix w =
  let sl = String.length suffix and wl = String.length w in
  wl >= sl && String.sub w (wl - sl) sl = suffix

let chop w n = String.sub w 0 (String.length w - n)

(* Each rule: (suffix, chars to drop, replacement, minimum stem length after
   dropping).  First applicable rule wins; at most one rule fires, which is
   what makes [stem] idempotent together with the replacement choices (no
   replacement itself ends with a strippable suffix). *)
let rules =
  [
    ("sses", 2, "", 2) (* classes -> class *);
    ("ies", 3, "y", 2) (* queries -> query *);
    ("ness", 4, "", 3) (* darkness -> dark *);
    ("ments", 5, "", 3) (* arguments -> argu? no: min stem 3 keeps argument\ments=argu -- see tests *);
    ("ment", 4, "", 3);
    ("ings", 4, "", 3) (* findings -> find *);
    ("ing", 3, "", 3) (* running -> runn *);
    ("edly", 4, "", 3);
    ("ed", 2, "", 3) (* matched -> match *);
    ("ly", 2, "", 3) (* quickly -> quick *);
    ("es", 2, "", 3) (* matches -> match *);
    ("s", 1, "", 3) (* links -> link; keeps "ss" words because "ss" also matches "s"? no: guard below *);
  ]

(* The bare plural rules must not strip "class" or "virus"; longer suffixes
   like "ness"/"sses" are safe despite also ending in s. *)
let plural_guard suffix w =
  (suffix = "s" || suffix = "es")
  && (ends_with ~suffix:"ss" w || ends_with ~suffix:"us" w)

(* Strip suffixes to a fixpoint: stacked inflections ("worked" + plural =
   "workeds") strip one layer per pass, and the fixpoint makes [stem]
   idempotent by construction.  Every rule shortens the word, so this
   terminates. *)
let rec stem w =
  let n = String.length w in
  if n <= 3 then w
  else
    let rec try_rules = function
      | [] -> w
      | (suffix, drop, repl, min_stem) :: rest ->
          if
            ends_with ~suffix w
            && String.length w - drop >= min_stem
            && not (plural_guard suffix w)
          then stem (chop w drop ^ repl)
          else try_rules rest
    in
    try_rules rules
