let min_word_len = 2

let max_word_len = 32

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let lower c = if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c

let iter_words text f =
  let n = String.length text in
  let buf = Buffer.create max_word_len in
  let flush () =
    let len = Buffer.length buf in
    if len >= min_word_len then f (Buffer.contents buf);
    Buffer.clear buf
  in
  for i = 0 to n - 1 do
    let c = text.[i] in
    if is_word_char c then begin
      if Buffer.length buf < max_word_len then Buffer.add_char buf (lower c)
    end
    else flush ()
  done;
  flush ()

let words text =
  let acc = ref [] in
  iter_words text (fun w -> acc := w :: !acc);
  List.rev !acc

let unique_words text = List.sort_uniq compare (words text)

(* Equivalent to scanning [iter_words] for an equal token, but in place and
   allocation-free — this is the hot path of Glimpse-style candidate
   verification, where every candidate file's bytes are scanned. *)
let contains_word text w =
  let m = String.length w in
  if m < min_word_len || m > max_word_len then false
  else begin
    let n = String.length text in
    (* [i] is the first character of a word run. *)
    let rec at_word_start i =
      let rec cmp j = j = m || (lower text.[i + j] = w.[j] && cmp (j + 1)) in
      let matched =
        i + m <= n && cmp 0
        (* Whole-word: the run must end here — except that runs longer than
           [max_word_len] are truncated to a [max_word_len] token. *)
        && (m = max_word_len || i + m = n || not (is_word_char text.[i + m]))
      in
      if matched then true else skip_run (i + 1)
    and skip_run i =
      if i >= n then false
      else if is_word_char text.[i] then skip_run (i + 1)
      else seek_start (i + 1)
    and seek_start i =
      if i >= n then false
      else if is_word_char text.[i] then at_word_start i
      else seek_start (i + 1)
    in
    if n = 0 then false
    else if is_word_char text.[0] then at_word_start 0
    else seek_start 1
  end

let iter_lines text f =
  let n = String.length text in
  let line = ref 1 in
  let start = ref 0 in
  for i = 0 to n - 1 do
    if text.[i] = '\n' then begin
      f !line (String.sub text !start (i - !start));
      incr line;
      start := i + 1
    end
  done;
  if !start < n then f !line (String.sub text !start (n - !start))
