(** A small regular-expression engine (Thompson NFA).

    Glimpse/agrep answer regular-expression queries; this engine backs the
    query language's [/pattern/] terms.  Supported syntax:

    {v
    literals     abc            (any byte except metacharacters)
    escapes      \* \. \/ \\ \n \t  and any escaped metacharacter
    any          .              (any byte except newline)
    classes      [a-z0-9_] [^abc]
    repetition   r* r+ r?
    grouping     (r)
    alternation  r1|r2
    anchors      ^ at the start, $ at the end of the whole pattern
    v}

    Matching is unanchored by default ([matches] finds the pattern anywhere)
    and runs in O(text × states) with no backtracking, so adversarial
    patterns cannot blow up. *)

type t
(** A compiled pattern. *)

exception Parse_error of string
(** Raised by {!compile} on malformed patterns. *)

val compile : string -> t
(** Compile a pattern.  Raises {!Parse_error}. *)

val compile_result : string -> (t, string) result
(** Non-raising variant. *)

val source : t -> string
(** The original pattern text. *)

val matches : t -> string -> bool
(** Does the pattern occur in the text (honouring anchors)? *)

val find : t -> string -> (int * int) option
(** Leftmost match as [(start, stop))] byte offsets — the shortest match at
    the leftmost starting position. *)

val required_word : t -> string option
(** A lowercase word (>= 2 chars) that every match must contain, if one can
    be read off the pattern syntactically — the literal the index can be
    consulted with before verification, as Glimpse extracts literals from
    regular expressions.  [None] when no such word is certain. *)
