(** Attribute transducers — SFS-style metadata extraction.

    The Semantic File System (related work, section 5) introduced
    {e transducers}: programs that extract attribute/value pairs from files
    so queries can say [author:smith].  HAC's CBA interface is "general
    enough to integrate any CBA mechanism"; this module provides that
    attribute dimension for our index.  A transducer maps a document to
    attribute/value pairs; the index stores them next to the word postings
    and the query language reaches them through [attr:value] terms. *)

type t = {
  td_name : string;  (** For diagnostics. *)
  extract : path:string -> content:string -> (string * string) list;
      (** Attribute/value pairs of one document.  Both sides are
          lowercased by the index. *)
}

val email : t
(** RFC-822-ish header extraction: leading [From:], [To:], [Cc:] and
    [Subject:] lines become [from]/[to]/[cc]/[subject] attributes (subjects
    additionally yield one pair per word). *)

val key_value : t
(** Generic colon-separated headers: each leading [key: value] line (keys of
    letters only, at most the first 20 lines) becomes an attribute. *)

val file_type : t
(** A [type] attribute guessed from the extension and content: [type:text],
    [type:code], [type:mail]. *)

val combine : t list -> t
(** Run several transducers, concatenating their output. *)
