(** A light, deterministic English suffix stripper.

    Much simpler than a full Porter stemmer; the goal is only that common
    inflections of a query word and of indexed text collide on the same key
    ("query", "queries", "querying" all stem alike).  Stemming is idempotent:
    [stem (stem w) = stem w]. *)

val stem : string -> string
(** Stem of a lowercase word.  Words of 3 characters or fewer are returned
    unchanged. *)
