type dirref = Ref_path of string | Ref_uid of int

type term =
  | Word of string
  | Phrase of string list
  | Approx of string * int
  | Attr of string * string
  | Regex of string
  | Dirref of dirref

type t = Term of term | And of t * t | Or of t * t | Not of t | All

let equal = ( = )

let rec map_dirrefs f = function
  | Term (Dirref r) -> Term (Dirref (f r))
  | Term _ as q -> q
  | And (a, b) -> And (map_dirrefs f a, map_dirrefs f b)
  | Or (a, b) -> Or (map_dirrefs f a, map_dirrefs f b)
  | Not a -> Not (map_dirrefs f a)
  | All -> All

let rec fold_dirrefs f q acc =
  match q with
  | Term (Dirref r) -> f r acc
  | Term _ | All -> acc
  | And (a, b) | Or (a, b) -> fold_dirrefs f b (fold_dirrefs f a acc)
  | Not a -> fold_dirrefs f a acc

let dir_uids q =
  fold_dirrefs
    (fun r acc -> match r with Ref_uid u -> u :: acc | Ref_path _ -> acc)
    q []
  |> List.sort_uniq compare

let words q =
  let rec go q acc =
    match q with
    | Term (Word w) -> String.lowercase_ascii w :: acc
    | Term (Phrase ws) -> List.rev_append (List.map String.lowercase_ascii ws) acc
    | Term (Approx (w, _)) -> String.lowercase_ascii w :: acc
    | Term (Attr _) | Term (Regex _) | Term (Dirref _) | All -> acc
    | And (a, b) | Or (a, b) -> go b (go a acc)
    | Not a -> go a acc
  in
  List.sort_uniq compare (go q [])

let rec size = function
  | Term _ | All -> 1
  | Not a -> 1 + size a
  | And (a, b) | Or (a, b) -> 1 + size a + size b

(* Precedence for printing with minimal parentheses:
   OR (1) < AND (2) < NOT (3) < atoms. *)
let to_string ?path_of_uid q =
  let buf = Buffer.create 64 in
  let dirref_str = function
    | Ref_path p -> Printf.sprintf "{%s}" p
    | Ref_uid u -> (
        match path_of_uid with
        | Some f -> (
            match f u with
            | Some p -> Printf.sprintf "{%s}" p
            | None -> Printf.sprintf "{#%d}" u)
        | None -> Printf.sprintf "{#%d}" u)
  in
  let term_str = function
    | Word w -> w
    | Phrase ws -> Printf.sprintf "\"%s\"" (String.concat " " ws)
    | Approx (w, 1) -> Printf.sprintf "~%s" w
    | Approx (w, k) -> Printf.sprintf "~%d~%s" k w
    | Attr (a, v) -> Printf.sprintf "%s:%s" a v
    | Regex r -> Printf.sprintf "/%s/" r
    | Dirref r -> dirref_str r
  in
  let rec go prec = function
    | Term t -> Buffer.add_string buf (term_str t)
    | All -> Buffer.add_char buf '*'
    | Not a ->
        paren (prec > 3) (fun () ->
            Buffer.add_string buf "NOT ";
            go 3 a)
    | And (a, b) ->
        paren (prec > 2) (fun () ->
            go 2 a;
            Buffer.add_string buf " AND ";
            go 3 b)
    | Or (a, b) ->
        paren (prec > 1) (fun () ->
            go 1 a;
            Buffer.add_string buf " OR ";
            go 2 b)
  and paren need body =
    if need then begin
      Buffer.add_char buf '(';
      body ();
      Buffer.add_char buf ')'
    end
    else body ()
  in
  go 0 q;
  Buffer.contents buf

let pp ppf q = Format.pp_print_string ppf (to_string q)
