let big = max_int / 2

let rec subtree_cost ~cost = function
  | Ast.Term t -> cost t
  | Ast.And (a, b) -> min (subtree_cost ~cost a) (subtree_cost ~cost b)
  | Ast.Or (a, b) ->
      let sa = subtree_cost ~cost a and sb = subtree_cost ~cost b in
      if sa + sb < 0 then big else sa + sb (* overflow guard *)
  | Ast.Not _ | Ast.All -> big

(* Flatten an AND chain into its operands. *)
let rec conjuncts = function
  | Ast.And (a, b) -> conjuncts a @ conjuncts b
  | q -> [ q ]

let rec optimize ~cost q =
  match q with
  | Ast.Term _ | Ast.All -> q
  | Ast.Not a -> Ast.Not (optimize ~cost a)
  | Ast.Or (a, b) -> Ast.Or (optimize ~cost a, optimize ~cost b)
  | Ast.And _ -> (
      let parts = List.map (optimize ~cost) (conjuncts q) in
      let ranked =
        List.stable_sort
          (fun a b -> compare (subtree_cost ~cost a) (subtree_cost ~cost b))
          parts
      in
      match ranked with
      | [] -> assert false (* conjuncts never returns [] *)
      | first :: rest -> List.fold_left (fun acc p -> Ast.And (acc, p)) first rest)
