lib/query/ast.ml: Buffer Format List Printf String
