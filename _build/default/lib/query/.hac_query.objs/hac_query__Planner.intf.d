lib/query/planner.mli: Ast
