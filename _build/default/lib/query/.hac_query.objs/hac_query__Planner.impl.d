lib/query/planner.ml: Ast List
