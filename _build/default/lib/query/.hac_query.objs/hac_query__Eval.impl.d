lib/query/eval.ml: Ast Hac_bitset Lazy
