lib/query/eval.mli: Ast Hac_bitset
