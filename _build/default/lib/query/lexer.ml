type token =
  | LPAREN
  | RPAREN
  | STAR
  | AND
  | OR
  | NOT
  | WORD of string
  | PHRASE of string list
  | APPROX of string * int
  | ATTR of string * string
  | REGEX of string
  | DIRREF of string
  | EOF

exception Syntax_error of string * int

let fail msg at = raise (Syntax_error (msg, at))

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

(* Attribute values may be path-ish: also allow . - / *)
let is_value_char c = is_ident_char c || c = '.' || c = '-' || c = '/' || c = '*'

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let tokens input =
  let n = String.length input in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let take_while start pred =
    let rec go i = if i < n && pred input.[i] then go (i + 1) else i in
    let stop = go start in
    (String.sub input start (stop - start), stop)
  in
  let rec go i =
    if i >= n then ()
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '(' ->
          emit LPAREN;
          go (i + 1)
      | ')' ->
          emit RPAREN;
          go (i + 1)
      | '*' ->
          emit STAR;
          go (i + 1)
      | '"' ->
          let rec find_close j =
            if j >= n then fail "unterminated phrase" i
            else if input.[j] = '"' then j
            else find_close (j + 1)
          in
          let close = find_close (i + 1) in
          let body = String.sub input (i + 1) (close - i - 1) in
          let words = List.map String.lowercase_ascii (split_ws body) in
          if words = [] then fail "empty phrase" i;
          emit (PHRASE words);
          go (close + 1)
      | '{' ->
          let rec find_close j =
            if j >= n then fail "unterminated directory reference" i
            else if input.[j] = '}' then j
            else find_close (j + 1)
          in
          let close = find_close (i + 1) in
          let body = String.trim (String.sub input (i + 1) (close - i - 1)) in
          if body = "" then fail "empty directory reference" i;
          emit (DIRREF body);
          go (close + 1)
      | '/' ->
          (* Regex literal: up to the next unescaped '/'. *)
          let rec find_close j =
            if j >= n then fail "unterminated regex" i
            else if input.[j] = '\\' && j + 1 < n then find_close (j + 2)
            else if input.[j] = '/' then j
            else find_close (j + 1)
          in
          let close = find_close (i + 1) in
          let body = String.sub input (i + 1) (close - i - 1) in
          if body = "" then fail "empty regex" i;
          emit (REGEX body);
          go (close + 1)
      | '~' ->
          let digits, after_digits = take_while (i + 1) (fun c -> c >= '0' && c <= '9') in
          let errors, word_start =
            if digits <> "" && after_digits < n && input.[after_digits] = '~' then
              (int_of_string digits, after_digits + 1)
            else (1, i + 1)
          in
          let w, stop = take_while word_start is_ident_char in
          if w = "" then fail "~ must be followed by a word" i;
          emit (APPROX (String.lowercase_ascii w, errors));
          go stop
      | c when is_ident_char c ->
          let w, stop = take_while i is_ident_char in
          if stop < n && input.[stop] = ':' then begin
            let v, vstop = take_while (stop + 1) is_value_char in
            if v = "" then fail "attribute needs a value" stop;
            emit (ATTR (String.lowercase_ascii w, v));
            go vstop
          end
          else begin
            (match String.uppercase_ascii w with
            | "AND" -> emit AND
            | "OR" -> emit OR
            | "NOT" -> emit NOT
            | _ -> emit (WORD (String.lowercase_ascii w)));
            go stop
          end
      | c -> fail (Printf.sprintf "unexpected character %C" c) i
  in
  go 0;
  List.rev (EOF :: !toks)

let pp_token ppf = function
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | STAR -> Format.pp_print_string ppf "*"
  | AND -> Format.pp_print_string ppf "AND"
  | OR -> Format.pp_print_string ppf "OR"
  | NOT -> Format.pp_print_string ppf "NOT"
  | WORD w -> Format.fprintf ppf "WORD(%s)" w
  | PHRASE ws -> Format.fprintf ppf "PHRASE(%s)" (String.concat " " ws)
  | APPROX (w, k) -> Format.fprintf ppf "APPROX(%s,%d)" w k
  | ATTR (a, v) -> Format.fprintf ppf "ATTR(%s,%s)" a v
  | REGEX r -> Format.fprintf ppf "REGEX(%s)" r
  | DIRREF p -> Format.fprintf ppf "DIRREF(%s)" p
  | EOF -> Format.pp_print_string ppf "EOF"
