exception Parse_error of string

(* The token stream is a mutable cursor over the lexer's list; the grammar is
   LL(1): each production decides by peeking one token. *)
type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  if peek st = tok then advance st
  else raise (Parse_error (Printf.sprintf "expected %s" what))

let starts_atom = function
  | Lexer.LPAREN | Lexer.STAR | Lexer.WORD _ | Lexer.PHRASE _ | Lexer.APPROX _
  | Lexer.ATTR _ | Lexer.REGEX _ | Lexer.DIRREF _ | Lexer.NOT ->
      true
  | Lexer.RPAREN | Lexer.AND | Lexer.OR | Lexer.EOF -> false

let rec parse_query st =
  let left = parse_conj st in
  let rec loop acc =
    if peek st = Lexer.OR then begin
      advance st;
      let right = parse_conj st in
      loop (Ast.Or (acc, right))
    end
    else acc
  in
  loop left

and parse_conj st =
  let left = parse_neg st in
  let rec loop acc =
    match peek st with
    | Lexer.AND ->
        advance st;
        loop (Ast.And (acc, parse_neg st))
    | t when starts_atom t -> loop (Ast.And (acc, parse_neg st))
    | _ -> acc
  in
  loop left

and parse_neg st =
  if peek st = Lexer.NOT then begin
    advance st;
    Ast.Not (parse_neg st)
  end
  else parse_atom st

and parse_atom st =
  match peek st with
  | Lexer.LPAREN ->
      advance st;
      let q = parse_query st in
      expect st Lexer.RPAREN "closing parenthesis";
      q
  | Lexer.STAR ->
      advance st;
      Ast.All
  | Lexer.WORD w ->
      advance st;
      Ast.Term (Ast.Word w)
  | Lexer.PHRASE ws ->
      advance st;
      Ast.Term (Ast.Phrase ws)
  | Lexer.APPROX (w, k) ->
      advance st;
      Ast.Term (Ast.Approx (w, k))
  | Lexer.ATTR (a, v) ->
      advance st;
      Ast.Term (Ast.Attr (a, v))
  | Lexer.REGEX r ->
      advance st;
      Ast.Term (Ast.Regex r)
  | Lexer.DIRREF p ->
      advance st;
      Ast.Term (Ast.Dirref (Ast.Ref_path p))
  | Lexer.EOF -> raise (Parse_error "unexpected end of query")
  | Lexer.RPAREN -> raise (Parse_error "unexpected ')'")
  | Lexer.AND -> raise (Parse_error "unexpected AND")
  | Lexer.OR -> raise (Parse_error "unexpected OR")
  | Lexer.NOT -> assert false (* handled by parse_neg *)

let parse input =
  let toks =
    try Lexer.tokens input
    with Lexer.Syntax_error (msg, at) ->
      raise (Parse_error (Printf.sprintf "%s (at offset %d)" msg at))
  in
  let st = { toks } in
  let q = parse_query st in
  if peek st <> Lexer.EOF then raise (Parse_error "trailing input after query");
  q

let parse_result input =
  match parse input with q -> Ok q | exception Parse_error msg -> Error msg
