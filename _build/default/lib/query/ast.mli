(** Abstract syntax of HAC queries.

    The query language is boolean over content terms, attribute terms and
    directory references:

    {v
    query  ::= query OR query
             | query AND query          (AND may be implicit juxtaposition)
             | NOT query
             | ( query )
             | word                     content word, e.g.  fingerprint
             | "w1 w2 ..."              phrase
             | /pattern/                regular expression on raw contents
             | ~word | ~k~word          approximate word, k errors (default 1)
             | attr:value               e.g.  name:report  ext:ml  path:/src
             | { path }                 directory reference (section 2.5)
             | *                        everything in scope
    v}

    Directory references are parsed as paths but stored as directory UIDs
    once installed ({!map_dirrefs}), so renames never invalidate queries —
    the paper's global identifier map. *)

type dirref =
  | Ref_path of string  (** As parsed: a path, not yet resolved. *)
  | Ref_uid of int  (** Installed: a stable directory identifier. *)

type term =
  | Word of string  (** Whole-word content match. *)
  | Phrase of string list  (** Consecutive words. *)
  | Approx of string * int  (** Word within [k] edit errors. *)
  | Attr of string * string  (** [attr:value] metadata match. *)
  | Regex of string  (** Raw contents match a regular expression. *)
  | Dirref of dirref  (** Files in another directory's query result. *)

type t =
  | Term of term
  | And of t * t
  | Or of t * t
  | Not of t
  | All  (** Everything in scope ([*]). *)

val equal : t -> t -> bool
(** Structural equality. *)

val map_dirrefs : (dirref -> dirref) -> t -> t
(** Rewrite every directory reference (e.g. path -> uid on install). *)

val fold_dirrefs : (dirref -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over every directory reference in the query. *)

val dir_uids : t -> int list
(** Sorted, de-duplicated UIDs of all installed directory references. *)

val words : t -> string list
(** All content words mentioned (from [Word], [Phrase] and [Approx] terms),
    lowercased, de-duplicated — used by [sact] to pick display lines. *)

val size : t -> int
(** Node count, a complexity measure. *)

val to_string : ?path_of_uid:(int -> string option) -> t -> string
(** Concrete syntax.  Installed dirrefs print through [path_of_uid] when
    given (falling back to [{#uid}]). *)

val pp : Format.formatter -> t -> unit
(** Same as {!to_string} with no uid resolution. *)
