(** Recursive-descent parser for the query language.

    Grammar (lowest precedence first):
    {v
    query ::= conj (OR conj)*
    conj  ::= neg ((AND)? neg)*        juxtaposition is implicit AND
    neg   ::= NOT neg | atom
    atom  ::= '(' query ')' | '*' | word | phrase | ~word | attr:value | {path}
    v} *)

exception Parse_error of string
(** Raised (with a human-readable message) on malformed queries. *)

val parse : string -> Ast.t
(** Parse the concrete syntax.  Raises {!Parse_error} (lexical errors from
    {!Lexer.Syntax_error} are converted too). *)

val parse_result : string -> (Ast.t, string) result
(** Non-raising variant. *)
