(** Tokenizer for the query language's concrete syntax. *)

type token =
  | LPAREN
  | RPAREN
  | STAR
  | AND
  | OR
  | NOT
  | WORD of string  (** bare content word, lowercased *)
  | PHRASE of string list  (** "quoted words", lowercased *)
  | APPROX of string * int  (** [~word] or [~k~word] *)
  | ATTR of string * string  (** [key:value] *)
  | REGEX of string  (** [/pattern/], delimiters stripped *)
  | DIRREF of string  (** [{/a/path}] *)
  | EOF

exception Syntax_error of string * int
(** [(message, byte offset)] of a lexical or syntax error. *)

val tokens : string -> token list
(** Token list of the input, ending with [EOF].
    Raises {!Syntax_error} on malformed input. *)

val pp_token : Format.formatter -> token -> unit
(** Debug printer. *)
