lib/remote/web_search.mli: Namespace
