lib/remote/namespace.mli:
