lib/remote/web_search.ml: Hac_index Hashtbl List Namespace Option String
