lib/remote/remote_fs.ml: Hac_bitset Hac_index Hac_query Hac_vfs List Namespace String
