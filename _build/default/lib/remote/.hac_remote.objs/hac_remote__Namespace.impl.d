lib/remote/namespace.ml: Hac_index Hashtbl List String
