lib/remote/mount_table.ml: Hashtbl List Namespace Option
