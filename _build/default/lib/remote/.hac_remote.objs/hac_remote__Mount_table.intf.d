lib/remote/mount_table.mli: Namespace
