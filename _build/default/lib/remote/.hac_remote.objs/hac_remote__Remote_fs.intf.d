lib/remote/remote_fs.mli: Hac_index Hac_vfs Namespace
