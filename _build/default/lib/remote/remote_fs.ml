module Fs = Hac_vfs.Fs
module Vpath = Hac_vfs.Vpath
module Index = Hac_index.Index
module Search = Hac_index.Search
module Fileset = Hac_bitset.Fileset

let uri_of_path ~ns_id path = "hacfs://" ^ ns_id ^ Vpath.normalize path

let path_of_uri ~ns_id uri =
  let prefix = "hacfs://" ^ ns_id ^ "/" in
  let plen = String.length prefix in
  if String.length uri >= plen && String.sub uri 0 plen = prefix then
    Some (Vpath.normalize (String.sub uri (plen - 1) (String.length uri - plen + 1)))
  else None

let create ~ns_id fs index =
  let reader path = try Some (Fs.read_file fs path) with Hac_vfs.Errno.Error _ -> None in
  let attr_match key value id =
    match Index.doc_path index id with
    | None -> false
    | Some path -> (
        match key with
        | "name" -> Vpath.basename path = value
        | "ext" ->
            let base = Vpath.basename path in
            (match String.rindex_opt base '.' with
            | Some i -> String.sub base (i + 1) (String.length base - i - 1) = value
            | None -> false)
        | "path" -> Vpath.is_prefix ~prefix:value path
        | _ -> false)
  in
  let env =
    {
      Hac_query.Eval.universe = lazy (Index.universe index);
      word = (fun ?within w -> Search.search_word ?within index reader w);
      phrase = (fun ?within ws -> Search.search_phrase ?within index reader ws);
      approx =
        (fun ?within w k -> Search.search_approx ?within index reader ~word:w ~errors:k);
      attr =
        (fun ?within:_ key value ->
          Fileset.filter (attr_match key value) (Index.universe index));
      regex = (fun ?within r -> Search.search_regex ?within index reader r);
      dirref = (fun ?within:_ _ -> Fileset.empty);
    }
  in
  let entry_of_id id =
    match Index.doc_path index id with
    | None -> None
    | Some path ->
        Some
          {
            Namespace.name = Vpath.basename path;
            uri = uri_of_path ~ns_id path;
            summary = path;
          }
  in
  let search q =
    match Hac_query.Parser.parse_result q with
    | Error _ -> []
    | Ok ast ->
        Fileset.fold
          (fun id acc -> match entry_of_id id with Some e -> e :: acc | None -> acc)
          (Hac_query.Eval.eval env ast) []
        |> List.rev
  in
  let fetch uri =
    match path_of_uri ~ns_id uri with None -> None | Some path -> reader path
  in
  let list_all () =
    Fileset.fold
      (fun id acc -> match entry_of_id id with Some e -> e :: acc | None -> acc)
      (Index.universe index) []
    |> List.rev
  in
  { Namespace.ns_id; lang = Namespace.Hac_syntax; search; fetch; list_all }
