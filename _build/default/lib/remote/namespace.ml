type entry = { name : string; uri : string; summary : string }

type lang = Keywords | Hac_syntax

type t = {
  ns_id : string;
  lang : lang;
  search : string -> entry list;
  fetch : string -> string option;
  list_all : unit -> entry list;
}

type stats = { queries : int; fetches : int }

let instrument ns =
  let queries = ref 0 and fetches = ref 0 in
  let wrapped =
    {
      ns with
      search =
        (fun q ->
          incr queries;
          ns.search q);
      fetch =
        (fun uri ->
          incr fetches;
          ns.fetch uri);
    }
  in
  (wrapped, fun () -> { queries = !queries; fetches = !fetches })

let first_line s =
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let static ~ns_id docs =
  let by_uri = Hashtbl.create (List.length docs) in
  List.iter (fun (_, uri, content) -> Hashtbl.replace by_uri uri content) docs;
  let entry_of (name, uri, content) = { name; uri; summary = first_line content } in
  let query_words q =
    String.split_on_char ' ' (String.lowercase_ascii q)
    |> List.filter (fun w -> w <> "")
  in
  let matches q content =
    let words = query_words q in
    words <> []
    && List.for_all (fun w -> Hac_index.Tokenizer.contains_word content w) words
  in
  {
    ns_id;
    lang = Keywords;
    search =
      (fun q ->
        List.filter_map
          (fun ((_, _, content) as doc) ->
            if matches q content then Some (entry_of doc) else None)
          docs);
    fetch = (fun uri -> Hashtbl.find_opt by_uri uri);
    list_all = (fun () -> List.map entry_of docs);
  }
