(** A simulated web search engine namespace.

    Stands in for the paper's "commercial search engines on the web": a
    corpus of (title, uri, body) documents with ranked conjunctive keyword
    search.  Results are ordered by a term-frequency score, best first, and
    truncated to [max_results] — which is why semantic mount points treat
    such namespaces as query-only (no enumeration). *)

type doc = { title : string; uri : string; body : string }
(** One indexed "web page". *)

val create : ?max_results:int -> string -> doc list -> Namespace.t
(** [create ~max_results ns_id docs] builds the engine.  Its query language
    is space-separated keywords, all required; ranking is by summed term
    frequency.  [list_all] returns [[]] (engines don't enumerate the web).
    Default [max_results] is 10. *)
