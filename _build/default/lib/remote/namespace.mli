(** Remote name spaces: anything that can answer a query with results.

    Section 3 of the paper uses "name space" for a traditional file system, a
    CBA mechanism, or another HAC file system.  A {!t} is the uniform
    interface semantic mount points talk to: submit a query string in the
    namespace's own language, get entries back, optionally fetch an entry's
    contents.  Implementations include simulated remote HAC file systems
    ({!Remote_fs}) and a simulated web search engine ({!Web_search}). *)

type entry = {
  name : string;  (** Display name (used as the symbolic link name). *)
  uri : string;  (** Stable identifier within the namespace. *)
  summary : string;  (** One-line description shown to users. *)
}

type lang =
  | Keywords  (** Space-separated required keywords (web engines). *)
  | Hac_syntax  (** The full HAC query language (other HAC systems). *)

type t = {
  ns_id : string;  (** Unique identifier of this namespace. *)
  lang : lang;  (** Query language this namespace understands. *)
  search : string -> entry list;  (** Evaluate a query, best first. *)
  fetch : string -> string option;  (** Contents of an entry by uri. *)
  list_all : unit -> entry list;
      (** Enumerate everything, or [[]] when the namespace cannot (e.g. a
          web search engine). *)
}

type stats = { queries : int; fetches : int }
(** Accumulated call counts of an instrumented namespace. *)

val instrument : t -> t * (unit -> stats)
(** Wrap a namespace so calls are counted; returns the wrapper and a stats
    reader.  Used by tests and by the benchmarks to show remote traffic. *)

val static : ns_id:string -> (string * string * string) list -> t
(** [static ~ns_id docs] is an in-memory namespace over [(name, uri,
    content)] triples whose query language is conjunctive whole-word match
    (every space-separated query word must occur). *)
