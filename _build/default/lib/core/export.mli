(** Sharing semantic directories (end of section 3.2).

    The paper suggests collecting the names, queries and query-results of
    many users' semantic directories into a central database that can itself
    be indexed and searched, so users can find others with similar tastes.
    This module serialises a HAC's semantic directories to a plain-text
    interchange format, re-imports them elsewhere, and builds that
    searchable central database as a {!Hac_remote.Namespace.t}. *)

val export_dir : Hac.t -> string -> string option
(** One semantic directory as a text record, or [None] if the path is not
    semantic.  The record contains the path, the query (with resolved
    reference paths) and every present link with its class. *)

val export_all : Hac.t -> string
(** Every semantic directory, one record per blank-line-separated block,
    sorted by path. *)

val import : Hac.t -> under:string -> string -> (int, string) result
(** Recreate exported semantic directories below the directory [under]
    (created if missing): each record [path q links] becomes a semantic
    directory [under/path] with query [q] and a permanent link per exported
    link (queries referencing unknown directories fall back to their word
    terms).  Returns the number of directories created, or the first
    error. *)

val to_namespace :
  ns_id:string -> (string * string) list -> Hac_remote.Namespace.t
(** [to_namespace ~ns_id users] builds the central database from
    [(user, export_all output)] pairs: each semantic directory becomes one
    searchable document ([semdb://user/path]) whose text is its query plus
    its link names — mount it and query it to find like-minded users. *)
