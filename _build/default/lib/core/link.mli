(** Symbolic-link classification — the heart of scope consistency.

    Section 2.3 of the paper classifies the links of a semantic directory as
    {e permanent} (explicitly added by the user), {e transient} (produced by
    query evaluation) or {e prohibited} (once present, explicitly deleted by
    the user; never silently re-added).  A link's target is either a local
    file or an entry of a remotely mounted namespace. *)

type cls = Permanent | Transient
(** Class of a {e present} link.  Prohibition is a property of targets, not
    of present links, and is tracked separately by {!Semdir}. *)

type target =
  | Local of string  (** Normalized absolute path in the local file system. *)
  | Remote of { ns_id : string; uri : string }  (** Entry of a mounted namespace. *)

type t = {
  name : string;  (** Directory-entry name of the symbolic link. *)
  target : target;
  cls : cls;
}

val target_key : target -> string
(** Canonical string used for set membership and prohibition: the path for
    local targets, the uri for remote ones. *)

val target_of_symlink : string -> target
(** Classify a raw symlink target string: uris of the form
    [<scheme>://<ns_id>/...] become [Remote]; anything else is a [Local]
    path (normalized). *)

val symlink_value : target -> string
(** The string to store in the physical symbolic link (inverse of
    {!target_of_symlink}). *)

val display_name : target -> string
(** Candidate link name for a target: the basename of the path or uri. *)

val cls_name : cls -> string
(** ["permanent"] or ["transient"]. *)

val pp : Format.formatter -> t -> unit
(** Debug printer. *)
