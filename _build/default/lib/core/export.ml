module Vpath = Hac_vfs.Vpath

(* Record format, one field per line:
     D <path>
     Q <query>
     L <permanent|transient> <name> <target>   (zero or more)
   Records are separated by one blank line.  Names and targets contain no
   newlines by construction (they are path/uri components). *)

let export_dir t path =
  match Hac.sreadin t path with
  | None -> None
  | Some q ->
      let b = Buffer.create 256 in
      Buffer.add_string b ("D " ^ Vpath.normalize path ^ "\n");
      Buffer.add_string b ("Q " ^ q ^ "\n");
      List.iter
        (fun l ->
          Buffer.add_string b
            (Printf.sprintf "L %s %s %s\n" (Link.cls_name l.Link.cls) l.Link.name
               (Link.symlink_value l.Link.target)))
        (Hac.links t path);
      Some (Buffer.contents b)

let export_all t =
  Hac.semantic_dirs t
  |> List.filter_map (export_dir t)
  |> String.concat "\n"

type record = { rpath : string; rquery : string; rlinks : (string * string * string) list }

let parse_records text =
  let finish acc cur =
    match cur with
    | Some r -> { r with rlinks = List.rev r.rlinks } :: acc
    | None -> acc
  in
  let step (acc, cur) line =
    let line = String.trim line in
    if line = "" then (finish acc cur, None)
    else
      match (String.length line >= 2, cur) with
      | true, _ when String.sub line 0 2 = "D " ->
          (finish acc cur, Some { rpath = String.sub line 2 (String.length line - 2); rquery = "*"; rlinks = [] })
      | true, Some r when String.sub line 0 2 = "Q " ->
          (acc, Some { r with rquery = String.sub line 2 (String.length line - 2) })
      | true, Some r when String.sub line 0 2 = "L " -> (
          match String.split_on_char ' ' line with
          | "L" :: cls :: name :: rest when rest <> [] ->
              (acc, Some { r with rlinks = (cls, name, String.concat " " rest) :: r.rlinks })
          | _ -> (acc, Some r))
      | _ -> (acc, cur)
  in
  let acc, cur = List.fold_left step ([], None) (String.split_on_char '\n' text) in
  List.rev (finish acc cur)

let import t ~under text =
  let under = Vpath.normalize under in
  Hac.mkdir_p t under;
  let records = parse_records text in
  let import_one count r =
    match count with
    | Error _ as e -> e
    | Ok n -> (
        (* Record paths are absolute in the exporter's name space; graft
           them below [under] here. *)
        let dest = Vpath.normalize (under ^ "/" ^ r.rpath) in
        Hac.mkdir_p t (Vpath.dirname dest);
        (* Imported queries may reference directories that don't exist here;
           fall back to the query's word terms joined conjunctively. *)
        let try_smkdir q =
          match Hac.smkdir t dest q with
          | () -> true
          | exception Hac.Hac_error _ -> false
        in
        let created =
          try_smkdir r.rquery
          ||
          match Hac_query.Parser.parse_result r.rquery with
          | Ok ast ->
              let fallback = String.concat " " (Hac_query.Ast.words ast) in
              fallback <> "" && try_smkdir fallback
          | Error _ -> false
        in
        if not created then Error (Printf.sprintf "could not import %s" r.rpath)
        else begin
          List.iter
            (fun (cls, _name, target) ->
              if cls = "permanent" then
                try ignore (Hac.add_permanent t ~dir:dest ~target)
                with Hac.Hac_error _ | Hac_vfs.Errno.Error _ -> ())
            r.rlinks;
          Ok (n + 1)
        end)
  in
  List.fold_left import_one (Ok 0) records

let to_namespace ~ns_id users =
  let docs =
    List.concat_map
      (fun (user, text) ->
        List.map
          (fun r ->
            let name = Vpath.basename r.rpath in
            let uri = Printf.sprintf "semdb://%s%s" user (Vpath.normalize r.rpath) in
            let link_names = List.map (fun (_, n, _) -> n) r.rlinks in
            let content =
              Printf.sprintf "user %s directory %s query %s links %s" user r.rpath
                r.rquery (String.concat " " link_names)
            in
            ((if name = "" then user else name), uri, content))
          (parse_records text))
      users
  in
  Hac_remote.Namespace.static ~ns_id docs
