type cls = Permanent | Transient

type target = Local of string | Remote of { ns_id : string; uri : string }

type t = { name : string; target : target; cls : cls }

let target_key = function Local p -> p | Remote { uri; _ } -> uri

(* A remote uri looks like  scheme://ns_id/rest ; everything else is a local
   path.  We only need to recognise what [symlink_value] produces. *)
let target_of_symlink s =
  match String.index_opt s ':' with
  | Some i
    when i + 2 < String.length s
         && s.[i + 1] = '/'
         && s.[i + 2] = '/'
         && i > 0 -> (
      let rest = String.sub s (i + 3) (String.length s - i - 3) in
      match String.index_opt rest '/' with
      | Some j -> Remote { ns_id = String.sub rest 0 j; uri = s }
      | None -> Remote { ns_id = rest; uri = s })
  | _ -> Local (Hac_vfs.Vpath.normalize s)

let symlink_value = function Local p -> p | Remote { uri; _ } -> uri

let display_name = function
  | Local p ->
      let b = Hac_vfs.Vpath.basename p in
      if b = "" then "root" else b
  | Remote { uri; _ } -> (
      match String.rindex_opt uri '/' with
      | Some i when i + 1 < String.length uri ->
          String.sub uri (i + 1) (String.length uri - i - 1)
      | _ -> uri)

let cls_name = function Permanent -> "permanent" | Transient -> "transient"

let pp ppf l =
  Format.fprintf ppf "%s -> %s [%s]" l.name (target_key l.target) (cls_name l.cls)
