module Fs = Hac_vfs.Fs
module Vpath = Hac_vfs.Vpath

(* dirs.log lines (appended by the event handler):
     D <uid> <path>     directory created
     M <uid> <path>     directory (and hence its subtree) moved here
     X <uid>            directory removed
   Replaying them yields the uid -> path map as of shutdown. *)
let replay_journal text =
  let map = Hashtbl.create 64 in
  let handle line =
    match String.split_on_char ' ' (String.trim line) with
    | [ "D"; uid; path ] -> (
        match int_of_string_opt uid with
        | Some uid -> Hashtbl.replace map uid path
        | None -> ())
    | "M" :: uid :: rest when rest <> [] -> (
        match int_of_string_opt uid with
        | None -> ()
        | Some uid -> (
            let new_path = String.concat " " rest in
            match Hashtbl.find_opt map uid with
            | None -> Hashtbl.replace map uid new_path
            | Some old_path ->
                (* The move carries the whole registered subtree along. *)
                Hashtbl.iter
                  (fun u p ->
                    match Vpath.replace_prefix ~prefix:old_path ~by:new_path p with
                    | Some p' when Vpath.is_prefix ~prefix:old_path p ->
                        Hashtbl.replace map u p'
                    | Some _ | None -> ())
                  (Hashtbl.copy map)))
    | [ "X"; uid ] -> (
        match int_of_string_opt uid with
        | Some uid -> Hashtbl.remove map uid
        | None -> ())
    | _ -> ()
  in
  String.split_on_char '\n' text |> List.iter handle;
  map

let read_opt fs path =
  try Some (Fs.read_file fs path) with Hac_vfs.Errno.Error _ -> None

let journal_map t =
  match read_opt (Hac.fs t) "/.hac/dirs.log" with
  | None -> Hashtbl.create 0
  | Some text -> replay_journal text

let journal_paths t =
  Hashtbl.fold (fun uid path acc -> (uid, path) :: acc) (journal_map t) []
  |> List.sort compare

let non_empty_lines text =
  String.split_on_char '\n' text
  |> List.map String.trim
  |> List.filter (fun l -> l <> "")

(* .links lines: "<permanent|transient> <name> <target>" (plus "remote ..."
   result lines, which the adoption of physical links supersedes). *)
let permanent_names links_text =
  non_empty_lines links_text
  |> List.filter_map (fun line ->
         match String.split_on_char ' ' line with
         | "permanent" :: name :: _ -> Some name
         | _ -> None)

let reload t =
  let fs = Hac.fs t in
  (* Snapshot all recoverable state first: restoring writes fresh metadata
     under this instance's uids, which must not alias the old ones. *)
  let plan =
    Hashtbl.fold
      (fun uid path acc ->
        match read_opt fs (Printf.sprintf "/.hac/sd-%d.query" uid) with
        | None -> acc (* never semantic, or metadata gone *)
        | Some query_text ->
            let query = String.trim query_text in
            if query = "" || not (Fs.is_dir fs path) then acc
            else
              let permanent =
                match read_opt fs (Printf.sprintf "/.hac/sd-%d.links" uid) with
                | Some text -> permanent_names text
                | None -> []
              in
              let prohibited =
                match read_opt fs (Printf.sprintf "/.hac/sd-%d.proh" uid) with
                | Some text -> non_empty_lines text
                | None -> []
              in
              (path, query, permanent, prohibited) :: acc)
      (journal_map t) []
    |> List.sort compare
  in
  let restored = ref 0 in
  List.iter
    (fun (path, query, permanent, prohibited) ->
      if not (Hac.is_semantic t path) then
        match Hac.restore_semdir t path ~query ~permanent ~prohibited with
        | () -> incr restored
        | exception Hac.Hac_error _ ->
            (* Unparseable or cyclic after the crash: leave it plain. *)
            ())
    plan;
  (* The old instance's identifiers are dead; re-key the metadata area. *)
  Hac.checkpoint_metadata t;
  Hac.sync_all t;
  !restored
