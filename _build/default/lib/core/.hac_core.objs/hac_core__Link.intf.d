lib/core/link.mli: Format
