lib/core/ctx.ml: Hac_depgraph Hac_index Hac_remote Hac_vfs Hashtbl Semdir Uidmap
