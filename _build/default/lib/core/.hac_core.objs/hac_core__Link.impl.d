lib/core/link.ml: Format Hac_vfs String
