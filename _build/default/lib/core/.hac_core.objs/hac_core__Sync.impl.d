lib/core/sync.ml: Buffer Bytes Char Ctx Hac_bitset Hac_depgraph Hac_index Hac_query Hac_remote Hac_vfs Hashtbl Link List Option Printf Qmatch Semdir String Uidmap
