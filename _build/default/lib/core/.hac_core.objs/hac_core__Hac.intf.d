lib/core/hac.mli: Hac_index Hac_query Hac_remote Hac_vfs Link
