lib/core/qmatch.mli: Hac_query
