lib/core/recover.mli: Hac
