lib/core/sync.mli: Ctx Hac_bitset Hac_query Hac_remote Link Semdir
