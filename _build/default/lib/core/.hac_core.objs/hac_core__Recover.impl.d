lib/core/recover.ml: Hac Hac_vfs Hashtbl List Printf String
