lib/core/export.ml: Buffer Hac Hac_query Hac_remote Hac_vfs Link List Printf String
