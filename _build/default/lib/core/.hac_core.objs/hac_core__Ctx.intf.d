lib/core/ctx.mli: Hac_depgraph Hac_index Hac_remote Hac_vfs Hashtbl Semdir Uidmap
