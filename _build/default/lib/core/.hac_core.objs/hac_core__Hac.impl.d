lib/core/hac.ml: Buffer Ctx Hac_bitset Hac_depgraph Hac_index Hac_query Hac_remote Hac_vfs Hashtbl Link List Option Printf Semdir String Sync Uidmap
