lib/core/qmatch.ml: Hac_index Hac_query String
