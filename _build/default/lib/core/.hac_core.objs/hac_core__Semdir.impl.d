lib/core/semdir.ml: Hac_bitset Hac_query Hashtbl Link List Printf String Sys
