lib/core/uidmap.ml: Hac_vfs Hashtbl List String Sys
