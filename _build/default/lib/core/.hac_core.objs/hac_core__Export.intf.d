lib/core/export.mli: Hac Hac_remote
