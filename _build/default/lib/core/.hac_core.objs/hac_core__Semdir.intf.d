lib/core/semdir.mli: Hac_bitset Hac_query Hashtbl Link
