lib/core/uidmap.mli:
