module Ast = Hac_query.Ast
module Tokenizer = Hac_index.Tokenizer
module Stemmer = Hac_index.Stemmer
module Agrep = Hac_index.Agrep

let ext_of name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> ""

let matches ?(stem = true) q ~name ~content =
  let k w = if stem then Stemmer.stem w else w in
  let has_word w =
    let w = k (String.lowercase_ascii w) in
    let found = ref false in
    Tokenizer.iter_words content (fun x -> if k x = w then found := true);
    !found
  in
  let has_approx w errors =
    let w = k (String.lowercase_ascii w) in
    let found = ref false in
    Tokenizer.iter_words content (fun x ->
        if Agrep.word_matches ~pattern:w ~errors (k x) then found := true);
    !found
  in
  let rec go = function
    | Ast.All -> true
    | Ast.Term (Ast.Word w) -> has_word w
    | Ast.Term (Ast.Phrase ws) -> Hac_index.Search.contains_phrase ~content ws
    | Ast.Term (Ast.Approx (w, e)) -> has_approx w e
    | Ast.Term (Ast.Attr (key, value)) -> (
        match key with
        | "name" -> name = value
        | "ext" -> ext_of name = value
        | _ -> false)
    | Ast.Term (Ast.Regex r) -> (
        match Hac_index.Regex.compile_result r with
        | Ok re -> Hac_index.Regex.matches re content
        | Error _ -> false)
    | Ast.Term (Ast.Dirref _) -> false
    | Ast.Not a -> not (go a)
    | Ast.And (a, b) -> go a && go b
    | Ast.Or (a, b) -> go a || go b
  in
  go q
