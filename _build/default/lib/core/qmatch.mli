(** Matching a query against a single document.

    Used for remote entries inherited through a parent's scope: the entry's
    content is fetched once and the query is decided locally.  Semantics
    mirror index-backed evaluation for content terms; directory references
    cannot hold for a remote document and are false. *)

val matches :
  ?stem:bool -> Hac_query.Ast.t -> name:string -> content:string -> bool
(** [matches q ~name ~content] decides [q] for one document.  [Attr] terms
    are checked against [name] ([name:], [ext:]) or always false ([path:] —
    remote entries have no local path).  [All] is true.  [stem] (default
    [true]) must match the local index's setting so local and remote results
    agree. *)
