module Fs = Hac_vfs.Fs
module Vpath = Hac_vfs.Vpath

type t = { prng : Prng.t; vocab : string array; skew : float }

let consonants = [| "b"; "c"; "d"; "f"; "g"; "k"; "l"; "m"; "n"; "p"; "r"; "s"; "t"; "v" |]

let vowels = [| "a"; "e"; "i"; "o"; "u" |]

(* Pronounceable word of 2-4 syllables, deterministic in [g]. *)
let gen_word g =
  let syllables = 2 + Prng.int g 3 in
  let b = Buffer.create 12 in
  for _ = 1 to syllables do
    Buffer.add_string b (Prng.choice g consonants);
    Buffer.add_string b (Prng.choice g vowels)
  done;
  Buffer.contents b

let make ?(vocab_size = 4000) ?(skew = 1.05) ~seed () =
  let g = Prng.make ~seed in
  (* Distinct vocabulary: regenerate on collision. *)
  let seen = Hashtbl.create vocab_size in
  let vocab =
    Array.init vocab_size (fun i ->
        let rec fresh () =
          let w = gen_word g in
          if Hashtbl.mem seen w then fresh ()
          else begin
            Hashtbl.replace seen w ();
            w
          end
        in
        ignore i;
        fresh ())
  in
  { prng = g; vocab; skew }

let word t = t.vocab.(Prng.zipf t.prng ~n:(Array.length t.vocab) ~skew:t.skew)

let vocab_word t rank =
  if rank < 0 || rank >= Array.length t.vocab then invalid_arg "Corpus.vocab_word";
  t.vocab.(rank)

let document t ~words =
  let b = Buffer.create (words * 8) in
  for i = 1 to words do
    Buffer.add_string b (word t);
    if i mod 10 = 0 then Buffer.add_char b '\n' else Buffer.add_char b ' '
  done;
  Buffer.add_char b '\n';
  Buffer.contents b

type tree_spec = {
  depth : int;
  dirs_per_level : int;
  files_per_dir : int;
  words_per_file : int;
}

let small_tree = { depth = 2; dirs_per_level = 3; files_per_dir = 4; words_per_file = 120 }

let medium_tree = { depth = 3; dirs_per_level = 3; files_per_dir = 6; words_per_file = 200 }

let build_tree t fs ~root spec =
  let root = Vpath.normalize root in
  Fs.mkdir_p fs root;
  let files = ref [] in
  let rec go dir depth =
    for f = 1 to spec.files_per_dir do
      let path = Vpath.join dir (Printf.sprintf "file%d.txt" f) in
      Fs.write_file fs path (document t ~words:spec.words_per_file);
      files := path :: !files
    done;
    if depth < spec.depth then
      for d = 1 to spec.dirs_per_level do
        let sub = Vpath.join dir (Printf.sprintf "dir%d" d) in
        Fs.mkdir fs sub;
        go sub (depth + 1)
      done
  in
  go root 0;
  List.sort compare !files

let plant fs ~paths ~word ~count =
  let n = List.length paths in
  if count > n then invalid_arg "Corpus.plant: count exceeds available files";
  if count <= 0 then []
  else begin
    let arr = Array.of_list paths in
    let step = float_of_int n /. float_of_int count in
    let chosen = ref [] in
    for i = 0 to count - 1 do
      let at = int_of_float (float_of_int i *. step) in
      let path = arr.(min at (n - 1)) in
      Fs.append_file fs path (Printf.sprintf "marker line %s here\n" word);
      chosen := path :: !chosen
    done;
    List.rev !chosen
  end
