module Fs = Hac_vfs.Fs

type request =
  | Mkdir of string
  | Write of string * string
  | Stat of string
  | Read of string
  | Readdir of string

type reply = Unit | Data of string | Names of string list

type t = { fs : Fs.t; mutable served : int; mutable wire_bytes : int }

type counters = { requests : int; bytes_on_wire : int }

let create fs = { fs; served = 0; wire_bytes = 0 }

let counters t = { requests = t.served; bytes_on_wire = t.wire_bytes }

(* One round trip: marshal the request, copy it across the user/kernel and
   kernel/server boundaries (two copies each way, as for a real pseudo-fs
   agent), decode it "server side", perform the operation, and do the same
   for the reply.  [Marshal] gives an honest serialisation cost without
   inventing a codec. *)
let boundary_copy b = Bytes.copy (Bytes.copy b)

let rpc t req =
  let wire_req = boundary_copy (Marshal.to_bytes (req : request) []) in
  t.served <- t.served + 1;
  t.wire_bytes <- t.wire_bytes + Bytes.length wire_req;
  let (decoded : request) = Marshal.from_bytes wire_req 0 in
  let reply =
    match decoded with
    | Mkdir p ->
        Fs.mkdir t.fs p;
        Unit
    | Write (p, c) ->
        Fs.write_file t.fs p c;
        Unit
    | Stat p ->
        ignore (Fs.stat t.fs p);
        Unit
    | Read p -> Data (Fs.read_file t.fs p)
    | Readdir p -> Names (Fs.readdir t.fs p)
  in
  let wire_reply = boundary_copy (Marshal.to_bytes (reply : reply) []) in
  t.wire_bytes <- t.wire_bytes + Bytes.length wire_reply;
  (Marshal.from_bytes wire_reply 0 : reply)

let ops t =
  let unit_reply = function Unit -> () | Data _ | Names _ -> assert false in
  let data_reply = function Data d -> d | Unit | Names _ -> assert false in
  let names_reply = function Names ns -> ns | Unit | Data _ -> assert false in
  {
    Fsops.label = "Pseudo FS";
    mkdir = (fun p -> unit_reply (rpc t (Mkdir p)));
    write = (fun p c -> unit_reply (rpc t (Write (p, c))));
    stat = (fun p -> unit_reply (rpc t (Stat p)));
    read = (fun p -> data_reply (rpc t (Read p)));
    readdir = (fun p -> names_reply (rpc t (Readdir p)));
  }
