module Fs = Hac_vfs.Fs

type t = {
  label : string;
  mkdir : string -> unit;
  write : string -> string -> unit;
  stat : string -> unit;
  read : string -> string;
  readdir : string -> string list;
}

let of_fs ?(label = "UNIX") fs =
  {
    label;
    mkdir = Fs.mkdir fs;
    write = Fs.write_file fs;
    stat = (fun p -> ignore (Fs.stat fs p));
    read = Fs.read_file fs;
    readdir = Fs.readdir fs;
  }

let of_fs_cached ?(label = "UNIX+cache") fs =
  let cache = Hac_vfs.Attr_cache.create fs in
  {
    label;
    mkdir = Fs.mkdir fs;
    write = Fs.write_file fs;
    stat = (fun p -> ignore (Hac_vfs.Attr_cache.stat cache p));
    read = Fs.read_file fs;
    readdir = Fs.readdir fs;
  }

let of_hac ?(label = "HAC") hac =
  (* HAC's per-process shared-memory structures: the attribute cache and an
     open-descriptor table used for the Read phase. *)
  let fs = Hac_core.Hac.fs hac in
  let cache = Hac_vfs.Attr_cache.create fs in
  let fds = Hac_vfs.Fd_table.create fs in
  let read p =
    (* Every call is interposed, including opens and reads. *)
    Hac_core.Hac.intercept hac p;
    let fd = Hac_vfs.Fd_table.openfile fds Hac_vfs.Fd_table.Read_only p in
    let data = Hac_vfs.Fd_table.read_all fds fd in
    Hac_vfs.Fd_table.close fds fd;
    data
  in
  let stat p =
    Hac_core.Hac.intercept hac p;
    ignore (Hac_vfs.Attr_cache.stat cache p)
  in
  {
    label;
    mkdir = Hac_core.Hac.mkdir hac;
    write = Hac_core.Hac.write_file hac;
    stat;
    read;
    readdir = Hac_core.Hac.readdir hac;
  }
