(** Small deterministic pseudo-random generator (splitmix64).

    All workloads are seeded so every run, test and benchmark sees the same
    corpus — determinism matters more here than statistical quality. *)

type t
(** Mutable generator state. *)

val make : seed:int -> t
(** Generator from a seed. *)

val next : t -> int
(** Next non-negative integer (62 bits). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n)].  Raises [Invalid_argument] if
    [n <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val zipf : t -> n:int -> skew:float -> int
(** Zipf-distributed rank in [0, n)] with the given skew (typically ~1.0):
    rank 0 is most likely — word frequencies in text follow this shape. *)
