let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let v = f () in
  (now () -. t0, v)

let time_only f = fst (time f)

let median n f =
  if n < 1 then invalid_arg "Timer.median";
  let samples = List.init n (fun _ -> time_only f) in
  let sorted = List.sort compare samples in
  List.nth sorted (n / 2)

let pct_over ~base x = if base = 0.0 then 0.0 else ((x /. base) -. 1.0) *. 100.0
