module Fs = Hac_vfs.Fs
module Vpath = Hac_vfs.Vpath

type t = {
  fs : Fs.t;
  (* Skeleton: logical directory path -> physical directory path.  Longest
     matching prefix wins; translation walks components so each call pays a
     lookup per component, like Jade's per-directory skeleton search. *)
  skeleton : (string, string) Hashtbl.t;
}

let create fs =
  let t = { fs; skeleton = Hashtbl.create 16 } in
  Hashtbl.replace t.skeleton Vpath.root Vpath.root;
  t

let add_mapping t ~logical ~physical =
  Hashtbl.replace t.skeleton (Vpath.normalize logical) (Vpath.normalize physical)

let translate t path =
  let comps = Vpath.split (Vpath.normalize path) in
  (* Walk down the logical path; at each prefix consult the skeleton and
     restart physical resolution when a mapping fires.  Prefixes are built
     incrementally (inputs are already normalized), so each component costs
     one concatenation and one table lookup — Jade's per-call work. *)
  let rec go logical physical = function
    | [] -> physical
    | c :: rest ->
        let logical = if logical = Vpath.root then "/" ^ c else logical ^ "/" ^ c in
        let physical =
          match Hashtbl.find_opt t.skeleton logical with
          | Some mapped -> mapped
          | None -> if physical = Vpath.root then "/" ^ c else physical ^ "/" ^ c
        in
        go logical physical rest
  in
  go Vpath.root (Hashtbl.find t.skeleton Vpath.root) comps

let ops t =
  {
    Fsops.label = "Jade FS";
    mkdir = (fun p -> Fs.mkdir t.fs (translate t p));
    write = (fun p c -> Fs.write_file t.fs (translate t p) c);
    stat = (fun p -> ignore (Fs.stat t.fs (translate t p)));
    read = (fun p -> Fs.read_file t.fs (translate t p));
    readdir = (fun p -> Fs.readdir t.fs (translate t p));
  }
