type t = { mutable state : int64 }

let make ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  next t mod n

(* [next] yields 62-bit values; 2^62 itself overflows a 63-bit int, so use
   the float constant directly. *)
let two_pow_62 = ldexp 1.0 62

let float t = float_of_int (next t) /. two_pow_62

let choice t a =
  if Array.length a = 0 then invalid_arg "Prng.choice: empty array";
  a.(int t (Array.length a))

(* Inverse-cdf sampling over precomputed harmonic weights would need a table
   per (n, skew); instead use the rejection-free approximation: draw u and
   find the rank whose cumulative weight covers it, with the cumulative sums
   cached per call site via a memo table. *)
let zipf_tables : (int * int, float array) Hashtbl.t = Hashtbl.create 8

let zipf t ~n ~skew =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  let key = (n, int_of_float (skew *. 1000.)) in
  let cum =
    match Hashtbl.find_opt zipf_tables key with
    | Some c -> c
    | None ->
        let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** skew)) in
        let cum = Array.make n 0.0 in
        let total = Array.fold_left ( +. ) 0.0 weights in
        let acc = ref 0.0 in
        Array.iteri
          (fun i w ->
            acc := !acc +. w;
            cum.(i) <- !acc /. total)
          weights;
        Hashtbl.replace zipf_tables key cum;
        cum
  in
  let u = float t in
  (* Binary search for the first index with cum >= u. *)
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cum.(mid) >= u then go lo mid else go (mid + 1) hi
  in
  go 0 (n - 1)
