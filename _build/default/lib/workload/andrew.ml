module Vpath = Hac_vfs.Vpath

type times = {
  makedir : float;
  copy : float;
  scan : float;
  read : float;
  make : float;
}

let total t = t.makedir +. t.copy +. t.scan +. t.read +. t.make

let slowdown ~base t = ((total t /. total base) -. 1.0) *. 100.0

type source = { dirs : string list; files : (string * string) list }

let make_source ?(spec = Corpus.medium_tree) ~seed () =
  let corpus = Corpus.make ~seed () in
  let fs = Hac_vfs.Fs.create () in
  let _paths = Corpus.build_tree corpus fs ~root:"/src" spec in
  let dirs = ref [] and files = ref [] in
  Hac_vfs.Fs.walk fs "/src" (fun p st ->
      let rel =
        match Vpath.replace_prefix ~prefix:"/src" ~by:"/" p with
        | Some r -> r
        | None -> p
      in
      match st.Hac_vfs.Fs.st_kind with
      | Hac_vfs.Event.Dir -> dirs := rel :: !dirs
      | Hac_vfs.Event.File -> files := (rel, Hac_vfs.Fs.read_file fs p) :: !files
      | Hac_vfs.Event.Link -> ());
  (* Parents before children: sort by depth then name. *)
  let by_depth a b =
    match compare (Vpath.depth a) (Vpath.depth b) with
    | 0 -> compare a b
    | c -> c
  in
  { dirs = List.sort by_depth !dirs; files = List.sort compare !files }

let now () = Unix.gettimeofday ()

let timed f =
  let t0 = now () in
  f ();
  now () -. t0

(* Relative source paths start with '/'; graft them under [dest]. *)
let dest_path dest rel = Vpath.normalize (dest ^ "/" ^ rel)

(* Phase 5's "compilation": a few checksum passes over the source plus an
   object file — compute-dominated, like compiling. *)
let compile_passes = 4

let checksum content =
  let h = ref 5381 in
  for pass = 1 to compile_passes do
    for i = 0 to String.length content - 1 do
      h := ((!h lsl 5) + !h + Char.code content.[i] + pass) land max_int
    done
  done;
  !h

let run src (ops : Fsops.t) ~dest =
  let makedir =
    timed (fun () ->
        ops.Fsops.mkdir dest;
        List.iter (fun d -> if d <> "/" then ops.Fsops.mkdir (dest_path dest d)) src.dirs)
  in
  let copy =
    timed (fun () ->
        List.iter (fun (f, content) -> ops.Fsops.write (dest_path dest f) content) src.files)
  in
  let scan =
    timed (fun () ->
        (* Stat every object; recurse into directories (files answer
           readdir with ENOTDIR, ending the recursion). *)
        let rec walk p =
          match ops.Fsops.readdir p with
          | entries ->
              List.iter
                (fun name ->
                  let child = Vpath.join p name in
                  ops.Fsops.stat child;
                  walk child)
                entries
          | exception Hac_vfs.Errno.Error _ -> ()
        in
        walk dest)
  in
  let read =
    timed (fun () ->
        List.iter
          (fun (f, _) ->
            let data = ops.Fsops.read (dest_path dest f) in
            ignore (String.length data))
          src.files)
  in
  let make =
    timed (fun () ->
        List.iter
          (fun (f, _) ->
            let data = ops.Fsops.read (dest_path dest f) in
            let obj = checksum data in
            ops.Fsops.write (dest_path dest (f ^ ".o")) (string_of_int obj))
          src.files)
  in
  { makedir; copy; scan; read; make }

let pp_times ppf (label, t) =
  Format.fprintf ppf "%-10s %8.4fs %8.4fs %8.4fs %8.4fs %8.4fs %9.4fs" label t.makedir
    t.copy t.scan t.read t.make (total t)
