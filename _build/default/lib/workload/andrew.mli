(** The Andrew Benchmark (Howard et al.), as used in the paper's Table 1.

    Five phases over a source tree: MakeDir replicates the directory
    hierarchy, Copy copies every file into it, Scan stats every object
    without reading data, Read reads every byte, and Make "compiles" the
    files (checksum passes standing in for compilation — compute-bound, as
    in the original, so a layered file system hurts it least).

    The benchmark is written against {!Fsops.t}, so the same driver runs on
    the native VFS, on HAC, and on the Jade-like and Pseudo-like layers. *)

type times = {
  makedir : float;
  copy : float;
  scan : float;
  read : float;
  make : float;  (** seconds per phase *)
}

val total : times -> float
(** Sum of the five phases. *)

val slowdown : base:times -> times -> float
(** Percent slowdown of a system against a baseline:
    [(total t /. total base -. 1) *. 100]. *)

type source = {
  dirs : string list;  (** Relative directory paths, parents first. *)
  files : (string * string) list;  (** Relative path, contents. *)
}
(** The immutable source tree the benchmark replicates. *)

val make_source : ?spec:Corpus.tree_spec -> seed:int -> unit -> source
(** Deterministic source tree (default shape {!Corpus.medium_tree}). *)

val run : source -> Fsops.t -> dest:string -> times
(** Run all five phases, replicating [source] under [dest] (which must not
    exist yet in the target system). *)

val pp_times : Format.formatter -> string * times -> unit
(** One Table 1 row: label then per-phase and total seconds. *)
