(** Synthetic file-system traces: generate, serialise, replay.

    The Andrew Benchmark exercises distinct phases; real workloads mix
    operations.  A trace is a deterministic operation sequence over a
    working set of paths, replayable against any {!Fsops.t} backend, so the
    same mixed workload can compare UNIX, HAC and the layered baselines —
    and be saved and reloaded as text for regression comparisons. *)

type op =
  | Mkdir of string
  | Write of string * int  (** path, approximate word count *)
  | Read of string
  | Stat of string
  | Readdir of string
  | Rewrite of string * int  (** overwrite an existing file *)

type t = op list
(** A trace; replay order is list order. *)

type profile = {
  dirs : int;  (** Directories in the working set. *)
  files : int;  (** Files in the working set. *)
  ops : int;  (** Operations after the working set is built. *)
  read_fraction : float;  (** Probability an op is a read/stat/readdir. *)
  words_per_file : int;  (** Content size for writes. *)
}
(** Workload shape. *)

val default_profile : profile
(** 20 dirs, 120 files, 2000 ops, 80% reads, 150 words. *)

val generate : ?seed:int -> ?profile:profile -> unit -> t
(** A deterministic trace: first creates the working set (mkdirs + writes),
    then mixes reads, stats, directory listings and rewrites over it. *)

type stats = { ops_replayed : int; bytes_read : int; errors : int }
(** Replay outcome; [errors] counts operations refused by the backend. *)

val replay : t -> Fsops.t -> stats
(** Run every operation against the backend, under a root that the trace's
    paths already include ([/trace]). *)

val to_string : t -> string
(** One line per op; inverse of {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse a serialised trace; reports the first malformed line. *)
