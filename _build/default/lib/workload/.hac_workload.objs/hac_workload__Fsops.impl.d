lib/workload/fsops.ml: Hac_core Hac_vfs
