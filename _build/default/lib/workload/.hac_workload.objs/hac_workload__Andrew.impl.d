lib/workload/andrew.ml: Char Corpus Format Fsops Hac_vfs List String Unix
