lib/workload/prng.mli:
