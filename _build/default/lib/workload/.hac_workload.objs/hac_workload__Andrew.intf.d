lib/workload/andrew.mli: Corpus Format Fsops
