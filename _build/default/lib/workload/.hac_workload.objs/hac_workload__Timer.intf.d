lib/workload/timer.mli:
