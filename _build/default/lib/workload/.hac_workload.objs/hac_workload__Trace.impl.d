lib/workload/trace.ml: Corpus Fsops Hac_vfs Hashtbl List Printf Prng String
