lib/workload/corpus.ml: Array Buffer Hac_vfs Hashtbl List Printf Prng
