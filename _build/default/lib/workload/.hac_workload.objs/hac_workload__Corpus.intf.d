lib/workload/corpus.mli: Hac_vfs
