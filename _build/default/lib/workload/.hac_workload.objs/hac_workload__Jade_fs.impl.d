lib/workload/jade_fs.ml: Fsops Hac_vfs Hashtbl
