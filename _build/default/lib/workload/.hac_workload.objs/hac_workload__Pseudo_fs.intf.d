lib/workload/pseudo_fs.mli: Fsops Hac_vfs
