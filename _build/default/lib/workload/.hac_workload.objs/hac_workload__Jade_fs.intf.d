lib/workload/jade_fs.mli: Fsops Hac_vfs
