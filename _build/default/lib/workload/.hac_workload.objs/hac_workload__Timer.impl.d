lib/workload/timer.ml: List Unix
