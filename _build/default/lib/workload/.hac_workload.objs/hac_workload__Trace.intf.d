lib/workload/trace.mli: Fsops
