lib/workload/pseudo_fs.ml: Bytes Fsops Hac_vfs Marshal
