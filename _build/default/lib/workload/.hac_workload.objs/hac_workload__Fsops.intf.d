lib/workload/fsops.mli: Hac_core Hac_vfs
