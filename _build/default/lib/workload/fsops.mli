(** The file-system-operations signature the Andrew Benchmark drives.

    Each compared system (native VFS, HAC, the Jade-like and Pseudo-like
    layered baselines) supplies one {!t}; the benchmark is written once
    against this record. *)

type t = {
  label : string;  (** Display name ("UNIX", "HAC", ...). *)
  mkdir : string -> unit;
  write : string -> string -> unit;  (** Create-or-truncate with contents. *)
  stat : string -> unit;  (** Examine status (result unused). *)
  read : string -> string;  (** Whole-file read. *)
  readdir : string -> string list;  (** Sorted entry names. *)
}

val of_fs : ?label:string -> Hac_vfs.Fs.t -> t
(** The native file system — the benchmark's "UNIX" baseline. *)

val of_fs_cached : ?label:string -> Hac_vfs.Fs.t -> t
(** Native fs with an {!Hac_vfs.Attr_cache} serving [stat] — how HAC's
    implementation accelerates Scan, measurable on its own. *)

val of_hac : ?label:string -> Hac_core.Hac.t -> t
(** Operations through a HAC instance: identical file-system calls, plus
    HAC's interception costs (uid map, dirty tracking, link bookkeeping,
    attribute cache). *)
