(** Deterministic synthetic text corpora.

    Stands in for the paper's 17 000-file / 150 MB Glimpse test database:
    a fixed vocabulary of pronounceable words sampled with a Zipf
    distribution, organised into a directory tree.  Everything derives from
    the seed, so experiments are reproducible bit-for-bit.

    {e Marker words} are planted in a controlled number of files to realise
    Table 4's selectivity classes ("few", "intermediate", "a lot of"
    matching files) without depending on the random text. *)

type t
(** A corpus generator (vocabulary + PRNG). *)

val make : ?vocab_size:int -> ?skew:float -> seed:int -> unit -> t
(** Generator with a [vocab_size]-word vocabulary (default 4000) and Zipf
    [skew] (default 1.05). *)

val word : t -> string
(** One Zipf-sampled vocabulary word. *)

val vocab_word : t -> int -> string
(** The vocabulary word of a given rank (rank 0 most frequent). *)

val document : t -> words:int -> string
(** A document of roughly [words] words, broken into lines of ~10 words. *)

type tree_spec = {
  depth : int;  (** Directory nesting below the root. *)
  dirs_per_level : int;  (** Subdirectories per directory. *)
  files_per_dir : int;  (** Regular files per directory. *)
  words_per_file : int;  (** Approximate words per file. *)
}
(** Shape of a generated directory tree. *)

val small_tree : tree_spec
(** depth 2 / 3 dirs / 4 files / 120 words — quick tests. *)

val medium_tree : tree_spec
(** depth 3 / 3 dirs / 6 files / 200 words — benchmarks. *)

val build_tree : t -> Hac_vfs.Fs.t -> root:string -> tree_spec -> string list
(** Create the tree under [root] (created if missing) and return the file
    paths, sorted. *)

val plant : Hac_vfs.Fs.t -> paths:string list -> word:string -> count:int -> string list
(** Append a line containing [word] to [count] files evenly spread through
    [paths]; returns the chosen paths.  Raises [Invalid_argument] when
    [count > List.length paths]. *)
