(** A Pseudo-File-System-like user-level server (Table 2 baseline).

    The Pseudo FS mechanism (Welch & Ousterhout's pseudo-file-systems, as in
    Sprite / AFS agents) routes every file system call through a user-level
    server: the kernel marshals the request, the server decodes it, performs
    the operation, and marshals the reply.  We model exactly that per-call
    marshalling boundary over our VFS — request and reply cross a byte-buffer
    "wire" — with no content-based machinery. *)

type t
(** One pseudo-fs "server" over a physical file system. *)

type counters = { requests : int; bytes_on_wire : int }
(** Wire-traffic accounting. *)

val create : Hac_vfs.Fs.t -> t
(** Make the server. *)

val counters : t -> counters
(** Requests served and bytes marshalled so far. *)

val ops : t -> Fsops.t
(** Andrew-benchmark operations through the marshalling boundary. *)
