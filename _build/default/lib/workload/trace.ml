type op =
  | Mkdir of string
  | Write of string * int
  | Read of string
  | Stat of string
  | Readdir of string
  | Rewrite of string * int

type t = op list

type profile = {
  dirs : int;
  files : int;
  ops : int;
  read_fraction : float;
  words_per_file : int;
}

let default_profile =
  { dirs = 20; files = 120; ops = 2000; read_fraction = 0.8; words_per_file = 150 }

let generate ?(seed = 7) ?(profile = default_profile) () =
  let g = Prng.make ~seed in
  let dir i = Printf.sprintf "/trace/d%d" i in
  let file i = Printf.sprintf "%s/f%d.txt" (dir (i mod profile.dirs)) i in
  let setup =
    (Mkdir "/trace" :: List.init profile.dirs (fun i -> Mkdir (dir i)))
    @ List.init profile.files (fun i -> Write (file i, profile.words_per_file))
  in
  let random_op () =
    let f = file (Prng.int g profile.files) in
    if Prng.float g < profile.read_fraction then
      match Prng.int g 3 with
      | 0 -> Read f
      | 1 -> Stat f
      | _ -> Readdir (dir (Prng.int g profile.dirs))
    else Rewrite (f, profile.words_per_file)
  in
  setup @ List.init profile.ops (fun _ -> random_op ())

type stats = { ops_replayed : int; bytes_read : int; errors : int }

let replay trace (ops : Fsops.t) =
  (* Content is generated deterministically per (path, words) so every
     backend writes identical bytes; memoised so the replay measures the
     backend, not text generation. *)
  let memo = Hashtbl.create 256 in
  let content path words =
    match Hashtbl.find_opt memo (path, words) with
    | Some c -> c
    | None ->
        let g = Corpus.make ~vocab_size:200 ~seed:(Hashtbl.hash path land 0xFFFF) () in
        let c = Corpus.document g ~words in
        Hashtbl.replace memo (path, words) c;
        c
  in
  let replayed = ref 0 and bytes = ref 0 and errors = ref 0 in
  List.iter
    (fun op ->
      incr replayed;
      try
        match op with
        | Mkdir p -> ops.Fsops.mkdir p
        | Write (p, w) | Rewrite (p, w) -> ops.Fsops.write p (content p w)
        | Read p -> bytes := !bytes + String.length (ops.Fsops.read p)
        | Stat p -> ops.Fsops.stat p
        | Readdir p -> ignore (ops.Fsops.readdir p : string list)
      with Hac_vfs.Errno.Error _ -> incr errors)
    trace;
  { ops_replayed = !replayed; bytes_read = !bytes; errors = !errors }

let op_to_string = function
  | Mkdir p -> Printf.sprintf "mkdir %s" p
  | Write (p, w) -> Printf.sprintf "write %s %d" p w
  | Read p -> Printf.sprintf "read %s" p
  | Stat p -> Printf.sprintf "stat %s" p
  | Readdir p -> Printf.sprintf "readdir %s" p
  | Rewrite (p, w) -> Printf.sprintf "rewrite %s %d" p w

let to_string trace = String.concat "\n" (List.map op_to_string trace) ^ "\n"

let of_string text =
  let parse_line lineno line =
    match String.split_on_char ' ' (String.trim line) with
    | [ "mkdir"; p ] -> Ok (Some (Mkdir p))
    | [ "write"; p; w ] -> (
        match int_of_string_opt w with
        | Some w -> Ok (Some (Write (p, w)))
        | None -> Error (Printf.sprintf "line %d: bad word count" lineno))
    | [ "rewrite"; p; w ] -> (
        match int_of_string_opt w with
        | Some w -> Ok (Some (Rewrite (p, w)))
        | None -> Error (Printf.sprintf "line %d: bad word count" lineno))
    | [ "read"; p ] -> Ok (Some (Read p))
    | [ "stat"; p ] -> Ok (Some (Stat p))
    | [ "readdir"; p ] -> Ok (Some (Readdir p))
    | [ "" ] | [] -> Ok None
    | _ -> Error (Printf.sprintf "line %d: unrecognised op" lineno)
  in
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line lineno line with
        | Ok (Some op) -> go (op :: acc) (lineno + 1) rest
        | Ok None -> go acc (lineno + 1) rest
        | Error _ as e -> e)
  in
  go [] 1 lines
