(** Wall-clock timing helpers for the benchmark harness. *)

val time : (unit -> 'a) -> float * 'a
(** Seconds elapsed and the result. *)

val time_only : (unit -> 'a) -> float
(** Seconds elapsed, result discarded. *)

val median : int -> (unit -> 'a) -> float
(** Median of [n] runs of the thunk (n >= 1). *)

val pct_over : base:float -> float -> float
(** [(x /. base -. 1) *. 100] — percent overhead over a baseline. *)
