(** A Jade-like user-level layered file system (Table 2 baseline).

    Jade (Rao & Peterson, 1993) gives each user a logical name space built
    from per-directory {e skeleton} mappings onto underlying physical file
    systems; every call translates the logical path component-by-component
    through the skeleton before reaching the physical system.  We model that
    mechanism — per-component logical→physical translation with a skeleton
    table — over our VFS, carrying no content-based machinery, so its
    slowdown is the "plain user-level layering" cost the paper compares HAC
    against. *)

type t
(** One Jade-like layer over a physical file system. *)

val create : Hac_vfs.Fs.t -> t
(** A layer whose logical root maps to the physical root. *)

val add_mapping : t -> logical:string -> physical:string -> unit
(** Graft a physical subtree at a logical prefix (skeleton entry). *)

val translate : t -> string -> string
(** Logical path to physical path, one component at a time (the per-call
    work Jade performs). *)

val ops : t -> Fsops.t
(** Andrew-benchmark operations through the layer. *)
