(* Tests for remote name spaces: the namespace abstraction, the simulated
   web search engine, remote HAC file systems, semantic mount points
   (including multiple mounts) and the export/import/central-database
   machinery of section 3.2. *)

module Hac = Hac_core.Hac
module Link = Hac_core.Link
module Export = Hac_core.Export
module Namespace = Hac_remote.Namespace
module Web_search = Hac_remote.Web_search
module Remote_fs = Hac_remote.Remote_fs
module Mount_table = Hac_remote.Mount_table
module Fs = Hac_vfs.Fs

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_list = Alcotest.(check (list string))

let entry_names es = List.map (fun e -> e.Namespace.name) es |> List.sort compare

let transient_targets t dir =
  Hac.links t dir
  |> List.filter_map (fun l ->
         if l.Link.cls = Link.Transient then Some (Link.target_key l.Link.target) else None)
  |> List.sort compare

(* -- static namespace ------------------------------------------------------------ *)

let fruit_ns () =
  Namespace.static ~ns_id:"fruit"
    [
      ("apples.txt", "fruit://apples", "apple orchard notes\nrows of trees\n");
      ("pears.txt", "fruit://pears", "pear and apple tasting\n");
      ("grapes.txt", "fruit://grapes", "grape vine cultivation\n");
    ]

let test_static_search () =
  let ns = fruit_ns () in
  check_list "single word" [ "apples.txt"; "pears.txt" ] (entry_names (ns.Namespace.search "apple"));
  check_list "conjunctive" [ "pears.txt" ] (entry_names (ns.Namespace.search "apple pear"));
  check_list "no match" [] (entry_names (ns.Namespace.search "mango"));
  check_list "empty query" [] (entry_names (ns.Namespace.search "  "))

let test_static_fetch_and_list () =
  let ns = fruit_ns () in
  Alcotest.(check (option string))
    "fetch" (Some "pear and apple tasting\n")
    (ns.Namespace.fetch "fruit://pears");
  Alcotest.(check (option string)) "fetch miss" None (ns.Namespace.fetch "fruit://kiwi");
  check_int "list_all" 3 (List.length (ns.Namespace.list_all ()))

let test_instrument () =
  let ns, stats = Namespace.instrument (fruit_ns ()) in
  ignore (ns.Namespace.search "apple");
  ignore (ns.Namespace.search "pear");
  ignore (ns.Namespace.fetch "fruit://apples");
  let s = stats () in
  check_int "queries" 2 s.Namespace.queries;
  check_int "fetches" 1 s.Namespace.fetches

(* -- web search ---------------------------------------------------------------------- *)

let engine () =
  Web_search.create ~max_results:2 "web"
    [
      { Web_search.title = "a"; uri = "http://w/a"; body = "storage storage storage disk" };
      { Web_search.title = "b"; uri = "http://w/b"; body = "storage disk" };
      { Web_search.title = "c"; uri = "http://w/c"; body = "storage systems and disk arrays" };
      { Web_search.title = "d"; uri = "http://w/d"; body = "cooking" };
    ]

let test_web_ranking_and_cap () =
  let ns = engine () in
  let results = ns.Namespace.search "storage" in
  check_int "capped at max_results" 2 (List.length results);
  (* "a" has the highest term frequency. *)
  Alcotest.(check string) "best first" "a" (List.hd results).Namespace.name

let test_web_conjunctive () =
  let ns = engine () in
  check_bool "all words required" true
    (List.for_all (fun e -> e.Namespace.uri <> "http://w/d") (ns.Namespace.search "storage disk"))

let test_web_no_enumeration () =
  let ns = engine () in
  check_int "list_all empty" 0 (List.length (ns.Namespace.list_all ()))

(* -- remote fs ------------------------------------------------------------------------- *)

let remote_world () =
  let remote = Hac.create ~auto_sync:true () in
  Hac.mkdir_p remote "/pub";
  Hac.write_file remote "/pub/one.txt" "shared document about indexing\n";
  Hac.write_file remote "/pub/two.txt" "another shared document\n";
  Remote_fs.create ~ns_id:"peer" (Hac.fs remote) (Hac.index remote)

let test_remote_fs_search_hac_syntax () =
  let ns = remote_world () in
  check_list "full syntax works" [ "one.txt" ]
    (entry_names (ns.Namespace.search "document AND indexing"));
  check_list "negation" [ "two.txt" ]
    (entry_names (ns.Namespace.search "document AND NOT indexing"));
  check_list "bad query is empty" [] (entry_names (ns.Namespace.search "((("))

let test_remote_fs_uris () =
  Alcotest.(check string)
    "uri" "hacfs://peer/pub/one.txt"
    (Remote_fs.uri_of_path ~ns_id:"peer" "/pub/one.txt");
  Alcotest.(check (option string))
    "roundtrip" (Some "/pub/one.txt")
    (Remote_fs.path_of_uri ~ns_id:"peer" "hacfs://peer/pub/one.txt");
  Alcotest.(check (option string))
    "foreign uri" None
    (Remote_fs.path_of_uri ~ns_id:"peer" "hacfs://other/pub/one.txt")

let test_remote_fs_uri_roundtrips () =
  let roundtrip path = Remote_fs.path_of_uri ~ns_id:"peer" (Remote_fs.uri_of_path ~ns_id:"peer" path) in
  Alcotest.(check (option string)) "root" (Some "/") (roundtrip "/");
  Alcotest.(check (option string)) "nested" (Some "/pub/a/b.txt") (roundtrip "/pub/a/b.txt");
  Alcotest.(check (option string))
    "spaces survive" (Some "/pub/my docs/b.txt") (roundtrip "/pub/my docs/b.txt");
  (* Normalization happens on the way in, so the round trip is canonical. *)
  Alcotest.(check (option string)) "trailing slash" (Some "/pub") (roundtrip "/pub/");
  Alcotest.(check (option string)) "dot segments" (Some "/pub/b") (roundtrip "/pub/./a/../b")

let test_remote_fs_bad_ns_id () =
  let rejects f = match f () with
    | _ -> Alcotest.fail "bad ns_id accepted"
    | exception Invalid_argument _ -> ()
  in
  rejects (fun () -> Remote_fs.uri_of_path ~ns_id:"a/b" "/pub");
  rejects (fun () -> Remote_fs.uri_of_path ~ns_id:"" "/pub");
  (* A '/' in the id would make "hacfs://a/b/pub" parse as host "a", path
     "/b/pub" — the split is ambiguous, so the id is rejected outright. *)
  rejects (fun () -> Remote_fs.path_of_uri ~ns_id:"a/b" "hacfs://a/b/pub");
  rejects (fun () -> Remote_fs.path_of_uri ~ns_id:"" "hacfs:///pub");
  let remote = Hac.create () in
  rejects (fun () -> Remote_fs.create ~ns_id:"bad/id" (Hac.fs remote) (Hac.index remote))

let test_remote_fs_fetch () =
  let ns = remote_world () in
  Alcotest.(check (option string))
    "fetch through uri" (Some "shared document about indexing\n")
    (ns.Namespace.fetch "hacfs://peer/pub/one.txt")

(* -- mount table (unit level) ------------------------------------------------------------ *)

let test_mount_table () =
  let mt = Mount_table.create () in
  check_bool "empty" false (Mount_table.is_mount_point mt ~uid:1);
  Mount_table.smount mt ~uid:1 (fruit_ns ());
  Mount_table.smount mt ~uid:1 (engine ());
  check_int "two mounted" 2 (List.length (Mount_table.mounted mt ~uid:1));
  Alcotest.(check (list int)) "mount points" [ 1 ] (Mount_table.mount_points mt);
  (* Remount same ns_id replaces, preserving count. *)
  Mount_table.smount mt ~uid:1 (fruit_ns ());
  check_int "remount replaces" 2 (List.length (Mount_table.mounted mt ~uid:1));
  let results = Mount_table.query mt ~uid:1 "apple" in
  check_bool "disjoint union tags ns" true
    (List.for_all (fun (ns_id, _) -> ns_id = "fruit" || ns_id = "web") results);
  Mount_table.sumount mt ~uid:1 ~ns_id:"fruit";
  check_int "one left" 1 (List.length (Mount_table.mounted mt ~uid:1));
  Mount_table.unmount_all mt ~uid:1;
  check_bool "all gone" false (Mount_table.is_mount_point mt ~uid:1)

(* -- semantic mount points end to end ------------------------------------------------------ *)

let test_mount_populates_semdir () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/lib";
  Hac.smount t "/lib" (fruit_ns ());
  Hac.smkdir t "/lib/apples" "apple";
  check_list "remote results linked" [ "fruit://apples"; "fruit://pears" ]
    (transient_targets t "/lib/apples");
  check_list "mounted_at" [ "fruit" ] (Hac.mounted_at t "/lib")

let test_multiple_mounts_union () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/world";
  Hac.smount t "/world" (fruit_ns ());
  Hac.smount t "/world" (remote_world ());
  Hac.smkdir t "/world/stuff" "apple OR document";
  let targets = transient_targets t "/world/stuff" in
  check_bool "has fruit result" true (List.mem "fruit://apples" targets);
  check_bool "has peer result" true (List.mem "hacfs://peer/pub/one.txt" targets)

let test_remote_prohibition () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/lib";
  Hac.smount t "/lib" (fruit_ns ());
  Hac.smkdir t "/lib/apples" "apple";
  Hac.remove_link t ~dir:"/lib/apples" ~name:"pears.txt";
  Hac.ssync t "/lib/apples";
  check_list "remote target prohibited" [ "fruit://apples" ]
    (transient_targets t "/lib/apples");
  check_list "prohibition key is uri" [ "fruit://pears" ] (Hac.prohibited t "/lib/apples")

let test_sumount_removes_results () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/lib";
  Hac.smount t "/lib" (fruit_ns ());
  Hac.smkdir t "/lib/apples" "apple";
  Hac.sumount t "/lib" ~ns_id:"fruit";
  check_list "results withdrawn" [] (transient_targets t "/lib/apples")

let test_mount_inherited_scope () =
  (* A child of a semdir inherits remote links through the parent's scope
     and re-verifies them against its own query by fetching. *)
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/lib";
  Hac.smount t "/lib" (fruit_ns ());
  Hac.smkdir t "/lib/apples" "apple";
  Hac.smkdir t "/lib/apples/tasting" "tasting";
  check_list "inherited and filtered" [ "fruit://pears" ]
    (transient_targets t "/lib/apples/tasting")

let test_sact_on_remote_link () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/lib";
  Hac.smount t "/lib" (fruit_ns ());
  Hac.smkdir t "/lib/apples" "apple";
  Alcotest.(check (list (pair int string)))
    "remote sact"
    [ (1, "apple orchard notes") ]
    (Hac.sact t "/lib/apples/apples.txt")

let test_local_files_under_mount_point () =
  (* Physical files inside a semantic mount point are indexed locally and
     match queries from outside, as the paper requires (section 3.1). *)
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/lib";
  Hac.smount t "/lib" (fruit_ns ());
  Hac.write_file t "/lib/mine.txt" "my own apple file\n";
  Hac.smkdir t "/apples-everywhere" "apple";
  let targets = transient_targets t "/apples-everywhere" in
  check_bool "local file under mount found" true (List.mem "/lib/mine.txt" targets);
  check_bool "remote found too" true (List.mem "fruit://apples" targets)

let test_keyword_rendering_with_or () =
  (* OR queries against keyword engines are sent branch by branch. *)
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/lib";
  Hac.smount t "/lib" (fruit_ns ());
  Hac.smkdir t "/lib/either" "grape OR pear";
  check_list "both branches" [ "fruit://grapes"; "fruit://pears" ]
    (transient_targets t "/lib/either")

let test_star_query_enumerates_mount () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/lib";
  Hac.smount t "/lib" (fruit_ns ());
  Hac.smkdir t "/lib/all" "*";
  check_int "everything imported" 3 (List.length (transient_targets t "/lib/all"))

(* -- export / import / central database ------------------------------------------------------ *)

let contains_substring text sub =
  Hac_index.Agrep.find_exact ~pattern:sub text <> None

let exporting_world () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/docs";
  Hac.write_file t "/docs/a.txt" "alpha content\n";
  Hac.write_file t "/docs/b.txt" "beta content\n";
  Hac.smkdir t "/alpha" "alpha";
  ignore (Hac.add_permanent t ~dir:"/alpha" ~target:"/docs/b.txt");
  t

let test_export_format () =
  let t = exporting_world () in
  let text = Export.export_all t in
  check_bool "directory line" true (contains_substring text "D /alpha");
  check_bool "query line" true (contains_substring text "Q alpha");
  check_bool "permanent link line" true
    (contains_substring text "L permanent b.txt /docs/b.txt");
  check_bool "transient link line" true
    (contains_substring text "L transient a.txt /docs/a.txt");
  Alcotest.(check (option string)) "non-semantic" None (Export.export_dir t "/docs")

let test_import () =
  let src = exporting_world () in
  let dst = Hac.create ~auto_sync:true () in
  Hac.mkdir_p dst "/docs";
  Hac.write_file dst "/docs/local.txt" "alpha here too\n";
  (* Importing at the root grafts directories at their original paths, so
     their scope is the whole file system, as in the exporter. *)
  match Export.import dst ~under:"/" (Export.export_all src) with
  | Error e -> Alcotest.fail e
  | Ok n ->
      check_int "one dir" 1 n;
      check_bool "created" true (Hac.is_semantic dst "/alpha");
      (* The imported query runs against the importer's own files. *)
      check_bool "query live" true
        (List.mem "/docs/local.txt" (transient_targets dst "/alpha"));
      (* The exported permanent link came along (dangling here, but kept). *)
      check_bool "permanent imported" true
        (List.exists (fun l -> l.Link.cls = Link.Permanent) (Hac.links dst "/alpha"));
      (* A scoped import under a subdirectory refines to that subtree. *)
      let dst2 = Hac.create ~auto_sync:true () in
      (match Export.import dst2 ~under:"/import" (Export.export_all src) with
      | Error e -> Alcotest.fail e
      | Ok _ ->
          check_bool "grafted" true (Hac.is_semantic dst2 "/import/alpha");
          check_int "narrow scope has no matches" 0
            (List.length (transient_targets dst2 "/import/alpha")))

let test_central_database () =
  let t1 = exporting_world () in
  let t2 = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t2 "/notes";
  Hac.write_file t2 "/notes/g.txt" "gamma rays\n";
  Hac.smkdir t2 "/gamma" "gamma";
  let db =
    Export.to_namespace ~ns_id:"semdb"
      [ ("udi", Export.export_all t1); ("gopal", Export.export_all t2) ]
  in
  check_list "find by query word" [ "alpha" ] (entry_names (db.Namespace.search "alpha"));
  check_list "find by user" [ "alpha" ] (entry_names (db.Namespace.search "udi"));
  check_list "other user's dir" [ "gamma" ] (entry_names (db.Namespace.search "gamma"));
  (* The database is itself a namespace: mount and search it from a HAC. *)
  let t3 = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t3 "/people";
  Hac.smount t3 "/people" db;
  Hac.smkdir t3 "/people/alpha-fans" "alpha";
  check_int "mounted db results" 1 (List.length (transient_targets t3 "/people/alpha-fans"))

let () =
  Alcotest.run "remote"
    [
      ( "static namespace",
        [
          Alcotest.test_case "search" `Quick test_static_search;
          Alcotest.test_case "fetch and list" `Quick test_static_fetch_and_list;
          Alcotest.test_case "instrumentation" `Quick test_instrument;
        ] );
      ( "web search",
        [
          Alcotest.test_case "ranking and cap" `Quick test_web_ranking_and_cap;
          Alcotest.test_case "conjunctive" `Quick test_web_conjunctive;
          Alcotest.test_case "no enumeration" `Quick test_web_no_enumeration;
        ] );
      ( "remote fs",
        [
          Alcotest.test_case "hac syntax" `Quick test_remote_fs_search_hac_syntax;
          Alcotest.test_case "uris" `Quick test_remote_fs_uris;
          Alcotest.test_case "uri roundtrips" `Quick test_remote_fs_uri_roundtrips;
          Alcotest.test_case "bad ns_id" `Quick test_remote_fs_bad_ns_id;
          Alcotest.test_case "fetch" `Quick test_remote_fs_fetch;
        ] );
      ("mount table", [ Alcotest.test_case "unit behaviour" `Quick test_mount_table ]);
      ( "semantic mounts",
        [
          Alcotest.test_case "populates semdir" `Quick test_mount_populates_semdir;
          Alcotest.test_case "multiple mounts union" `Quick test_multiple_mounts_union;
          Alcotest.test_case "remote prohibition" `Quick test_remote_prohibition;
          Alcotest.test_case "sumount removes results" `Quick test_sumount_removes_results;
          Alcotest.test_case "inherited scope" `Quick test_mount_inherited_scope;
          Alcotest.test_case "sact on remote link" `Quick test_sact_on_remote_link;
          Alcotest.test_case "local files under mount" `Quick
            test_local_files_under_mount_point;
          Alcotest.test_case "OR keyword rendering" `Quick test_keyword_rendering_with_or;
          Alcotest.test_case "star enumerates" `Quick test_star_query_enumerates_mount;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "export format" `Quick test_export_format;
          Alcotest.test_case "import" `Quick test_import;
          Alcotest.test_case "central database" `Quick test_central_database;
        ] );
    ]
