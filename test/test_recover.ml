(* Tests for crash recovery (metadata persistence + reload), the prohibit
   API, and syntactic mount points. *)

module Hac = Hac_core.Hac
module Recover = Hac_core.Recover
module Link = Hac_core.Link
module Fs = Hac_vfs.Fs
module Errno = Hac_vfs.Errno

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_list = Alcotest.(check (list string))

let transient_targets t dir =
  Hac.links t dir
  |> List.filter_map (fun l ->
         if l.Link.cls = Link.Transient then Some (Link.target_key l.Link.target) else None)
  |> List.sort compare

let permanent_targets t dir =
  Hac.links t dir
  |> List.filter_map (fun l ->
         if l.Link.cls = Link.Permanent then Some (Link.target_key l.Link.target) else None)
  |> List.sort compare

(* Build a world, let HAC persist its structures, then "crash": keep only
   the raw file system and bring up a fresh instance over it. *)
let build_and_crash () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/docs";
  Hac.write_file t "/docs/a.txt" "alpha text\n";
  Hac.write_file t "/docs/b.txt" "alpha and beta\n";
  Hac.write_file t "/docs/c.txt" "gamma only\n";
  Hac.smkdir t "/alpha" "alpha";
  ignore (Hac.readdir t "/alpha") (* materialise so physical links persist *);
  Hac.remove_link t ~dir:"/alpha" ~name:"b.txt" (* prohibition to recover *);
  ignore (Hac.add_permanent t ~dir:"/alpha" ~target:"/docs/c.txt");
  Hac.ssync t "/alpha";
  Hac.shutdown ~graceful:false t;
  Hac.fs t (* the "disk" that survives the crash *)

(* End-to-end over the real event path (not just replay_journal): a
   semantic directory whose path contains spaces must come back. *)
let test_recover_dir_with_spaces () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/my docs";
  Hac.write_file t "/my docs/a.txt" "alpha text\n";
  Hac.smkdir t "/my docs/alpha files" "alpha";
  ignore (Hac.readdir t "/my docs/alpha files");
  Hac.shutdown ~graceful:false t;
  let t2 = Hac.of_fs ~auto_sync:true (Hac.fs t) in
  check_int "restored" 1 (Recover.reload t2);
  check_bool "semantic again" true (Hac.is_semantic t2 "/my docs/alpha files");
  check_list "links back" [ "/my docs/a.txt" ] (transient_targets t2 "/my docs/alpha files")

let test_journal_accounting () =
  let fs = build_and_crash () in
  (* Damage the log: one garbage line up front, one torn record at the end. *)
  let log = Fs.read_file fs "/.hac/dirs.log" in
  Fs.write_file fs "/.hac/dirs.log"
    ("not a sealed record\n" ^ String.sub log 0 (String.length log - 4) ^ "\n");
  let t2 = Hac.of_fs ~auto_sync:true fs in
  let r = Recover.reload_report t2 in
  check_int "corrupt counted" 2 r.Recover.journal.Recover.corrupt;
  check_bool "intact records applied" true (r.Recover.journal.Recover.applied >= 1);
  check_int "nothing malformed" 0 r.Recover.journal.Recover.malformed

let test_metadata_persisted () =
  let fs = build_and_crash () in
  check_bool "journal exists" true (Fs.is_file fs "/.hac/dirs.log");
  (* One structure-file set for the semantic directory. *)
  let metas = List.filter (fun n -> String.length n > 3 && String.sub n 0 3 = "sd-") (Fs.readdir fs "/.hac") in
  check_int "four structure files" 4 (List.length metas)

let test_reload_restores_everything () =
  let fs = build_and_crash () in
  let t2 = Hac.of_fs ~auto_sync:true fs in
  check_bool "plain before reload" false (Hac.is_semantic t2 "/alpha");
  let n = Recover.reload t2 in
  check_int "one restored" 1 n;
  check_bool "semantic again" true (Hac.is_semantic t2 "/alpha");
  Alcotest.(check (option string)) "query recovered" (Some "alpha") (Hac.sreadin t2 "/alpha");
  check_list "prohibition recovered" [ "/docs/b.txt" ] (Hac.prohibited t2 "/alpha");
  check_list "permanent recovered" [ "/docs/c.txt" ] (permanent_targets t2 "/alpha");
  check_list "transient recovered" [ "/docs/a.txt" ] (transient_targets t2 "/alpha");
  (* And the restored directory is live: new matching files flow in, the
     prohibition still holds. *)
  Hac.write_file t2 "/docs/d.txt" "more alpha\n";
  check_list "live after recovery" [ "/docs/a.txt"; "/docs/d.txt" ]
    (transient_targets t2 "/alpha")

let test_reload_idempotent () =
  let fs = build_and_crash () in
  let t2 = Hac.of_fs ~auto_sync:true fs in
  check_int "first" 1 (Recover.reload t2);
  check_int "second is a no-op" 0 (Recover.reload t2)

let test_reload_survives_rename () =
  (* Rename the semantic directory before the crash; the journal's M record
     must route recovery to the new path. *)
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/docs";
  Hac.write_file t "/docs/a.txt" "alpha\n";
  Hac.smkdir t "/old" "alpha";
  Hac.rename t ~src:"/old" ~dst:"/new";
  Hac.ssync t "/new";
  Hac.shutdown t;
  let t2 = Hac.of_fs ~auto_sync:true (Hac.fs t) in
  check_int "restored" 1 (Recover.reload t2);
  check_bool "at new path" true (Hac.is_semantic t2 "/new");
  check_bool "not at old" false (Hac.is_semantic t2 "/old")

let test_reload_skips_removed () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/docs";
  Hac.write_file t "/docs/a.txt" "alpha\n";
  Hac.smkdir t "/gone" "alpha";
  Hac.srmdir t "/gone";
  Hac.shutdown t;
  let t2 = Hac.of_fs ~auto_sync:true (Hac.fs t) in
  check_int "nothing to restore" 0 (Recover.reload t2)

let test_reload_restores_dirrefs () =
  (* Queries referencing other directories persist as paths and re-resolve
     against the new instance's identifiers. *)
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/docs";
  Hac.write_file t "/docs/a.txt" "alpha beta\n";
  Hac.write_file t "/docs/b.txt" "alpha only\n";
  Hac.smkdir t "/alpha" "alpha";
  Hac.smkdir t "/combo" "{/alpha} AND beta";
  Hac.shutdown t;
  let t2 = Hac.of_fs ~auto_sync:true (Hac.fs t) in
  check_int "both restored" 2 (Recover.reload t2);
  Alcotest.(check (option string))
    "dirref query recovered" (Some "{/alpha} AND beta") (Hac.sreadin t2 "/combo");
  check_list "dirref still evaluates" [ "/docs/a.txt" ] (transient_targets t2 "/combo");
  (* ...and the dependency edge is live again: prune upstream, downstream
     follows. *)
  Hac.remove_link t2 ~dir:"/alpha" ~name:"a.txt";
  Hac.ssync t2 "/alpha";
  check_list "propagation works post-recovery" [] (transient_targets t2 "/combo")

let test_journal_paths () =
  let fs = build_and_crash () in
  let t2 = Hac.of_fs fs in
  let paths = List.map snd (Recover.journal_paths t2) in
  check_bool "docs journaled" true (List.mem "/docs" paths);
  check_bool "alpha journaled" true (List.mem "/alpha" paths)

let test_checkpoint_rewrites () =
  let fs = build_and_crash () in
  let t2 = Hac.of_fs ~auto_sync:true fs in
  ignore (Recover.reload t2);
  (* After reload+checkpoint, a second crash/recovery round works too. *)
  Hac.shutdown t2;
  let t3 = Hac.of_fs ~auto_sync:true (Hac.fs t2) in
  check_int "second generation recovers" 1 (Recover.reload t3);
  check_list "state intact" [ "/docs/b.txt" ] (Hac.prohibited t3 "/alpha")

(* -- prohibit_target -------------------------------------------------------------- *)

let test_prohibit_target_api () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/docs";
  Hac.write_file t "/docs/a.txt" "alpha\n";
  Hac.write_file t "/docs/b.txt" "alpha too\n";
  Hac.smkdir t "/q" "alpha";
  (* Prohibit a currently-linked target: link disappears. *)
  Hac.prohibit_target t ~dir:"/q" ~target:"/docs/a.txt";
  Hac.ssync t "/q";
  check_list "linked target removed" [ "/docs/b.txt" ] (transient_targets t "/q");
  (* Prohibit a not-yet-linked target: it never appears. *)
  Hac.prohibit_target t ~dir:"/q" ~target:"/docs/c.txt";
  Hac.write_file t "/docs/c.txt" "alpha as well\n";
  check_list "pre-prohibited never appears" [ "/docs/b.txt" ] (transient_targets t "/q")

(* -- syntactic mounts -------------------------------------------------------------- *)

let other_user_fs () =
  let fs = Fs.create () in
  Fs.mkdir_p fs "/projects/fp";
  Fs.write_file fs "/projects/fp/notes.txt" "their fingerprint notes\n";
  Fs.symlink fs ~target:"/projects/fp/notes.txt" ~link:"/projects/fp/alias";
  fs

let test_syntactic_mount_browsing () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/home/me";
  Hac.mkdir_p t "/net/peer";
  Hac.smount_fs t "/net/peer" (other_user_fs ());
  check_list "mount point listed" [ "/net/peer" ] (Hac.syntactic_mount_points t);
  check_list "browse root" [ "projects" ] (Hac.readdir t "/net/peer");
  check_list "browse deeper" [ "alias"; "notes.txt" ] (Hac.readdir t "/net/peer/projects/fp");
  Alcotest.(check string)
    "read through" "their fingerprint notes\n"
    (Hac.read_file t "/net/peer/projects/fp/notes.txt");
  Alcotest.(check string)
    "readlink through" "/projects/fp/notes.txt"
    (Hac.readlink t "/net/peer/projects/fp/alias");
  check_bool "exists" true (Hac.exists t "/net/peer/projects");
  check_bool "is_dir" true (Hac.is_dir t "/net/peer/projects")

let test_syntactic_mount_read_only () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/net/peer";
  Hac.smount_fs t "/net/peer" (other_user_fs ());
  let expect_rofs f =
    match f () with
    | _ -> Alcotest.fail "expected EROFS"
    | exception Errno.Error (Errno.EROFS, _) -> ()
  in
  expect_rofs (fun () -> Hac.write_file t "/net/peer/projects/evil.txt" "x");
  expect_rofs (fun () -> Hac.mkdir t "/net/peer/projects/sub");
  expect_rofs (fun () -> Hac.unlink t "/net/peer/projects/fp/notes.txt");
  expect_rofs (fun () -> Hac.rename t ~src:"/net/peer/projects" ~dst:"/mine")

let test_syntactic_unmount () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/net/peer";
  Hac.write_file t "/net/peer/local.txt" "shadowed\n";
  Hac.smount_fs t "/net/peer" (other_user_fs ());
  check_bool "local shadowed" false (List.mem "local.txt" (Hac.readdir t "/net/peer"));
  Hac.sumount_fs t "/net/peer";
  check_list "local reappears" [ "local.txt" ] (Hac.readdir t "/net/peer");
  check_list "no mounts" [] (Hac.syntactic_mount_points t)

let test_combined_mounts () =
  (* Section 3.2: combine syntactic (by-name) and semantic (by-content)
     access to the same remote system. *)
  let peer_fs = other_user_fs () in
  let peer_index = Hac_index.Index.create () in
  List.iter
    (fun p ->
      ignore
        (Hac_index.Index.add_document peer_index ~path:p ~content:(Fs.read_file peer_fs p)))
    (Fs.find_files peer_fs "/");
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/net/peer";
  Hac.smount_fs t "/net/peer" peer_fs;
  Hac.smount t "/net/peer" (Hac_remote.Remote_fs.create ~ns_id:"peer" peer_fs peer_index);
  Hac.smkdir t "/net/peer-fp" "fingerprint";
  (* Content-based access found the remote file... *)
  check_list "semantic result" [ "hacfs://peer/projects/fp/notes.txt" ]
    (transient_targets t "/net/peer-fp");
  (* ...and name-based access reads the same bytes. *)
  Alcotest.(check (option string))
    "bytes agree"
    (Some (Hac.read_file t "/net/peer/projects/fp/notes.txt"))
    (Hac.resolve_link t "/net/peer-fp/notes.txt")

let () =
  Alcotest.run "recover"
    [
      ( "persistence",
        [
          Alcotest.test_case "metadata persisted" `Quick test_metadata_persisted;
          Alcotest.test_case "journal paths" `Quick test_journal_paths;
        ] );
      ( "reload",
        [
          Alcotest.test_case "restores everything" `Quick test_reload_restores_everything;
          Alcotest.test_case "idempotent" `Quick test_reload_idempotent;
          Alcotest.test_case "survives rename" `Quick test_reload_survives_rename;
          Alcotest.test_case "restores dirrefs" `Quick test_reload_restores_dirrefs;
          Alcotest.test_case "skips removed" `Quick test_reload_skips_removed;
          Alcotest.test_case "checkpoint enables round two" `Quick test_checkpoint_rewrites;
          Alcotest.test_case "dir with spaces" `Quick test_recover_dir_with_spaces;
          Alcotest.test_case "journal accounting" `Quick test_journal_accounting;
        ] );
      ( "prohibit",
        [ Alcotest.test_case "prohibit_target" `Quick test_prohibit_target_api ] );
      ( "syntactic mounts",
        [
          Alcotest.test_case "browsing" `Quick test_syntactic_mount_browsing;
          Alcotest.test_case "read-only" `Quick test_syntactic_mount_read_only;
          Alcotest.test_case "unmount" `Quick test_syntactic_unmount;
          Alcotest.test_case "combined with semantic" `Quick test_combined_mounts;
        ] );
    ]
