(* Tests for the Glimpse-style block index and the verification search
   layer. *)

module Index = Hac_index.Index
module Search = Hac_index.Search
module Fileset = Hac_bitset.Fileset

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_list = Alcotest.(check (list int))

let docs =
  [
    ("/a.txt", "the quick brown fox jumps");
    ("/b.txt", "the lazy dog sleeps");
    ("/c.txt", "quick quick slow");
    ("/d.txt", "unrelated words entirely");
  ]

let make_index ?(block_size = 1) ?(stem = false) () =
  let idx = Index.create ~block_size ~stem () in
  List.iter (fun (path, content) -> ignore (Index.add_document idx ~path ~content)) docs;
  idx

let reader_of docs path = List.assoc_opt path docs

let ids idx paths =
  List.filter_map (fun p -> Index.doc_of_path idx p) paths |> List.sort compare

(* -- document table ------------------------------------------------------------ *)

let test_doc_table () =
  let idx = make_index () in
  check_int "count" 4 (Index.doc_count idx);
  check_int "universe" 4 (Fileset.cardinal (Index.universe idx));
  Alcotest.(check (option string)) "path" (Some "/a.txt") (Index.doc_path idx 0);
  Alcotest.(check (option int)) "id" (Some 0) (Index.doc_of_path idx "/a.txt");
  Alcotest.(check (option int)) "unknown" None (Index.doc_of_path idx "/nope")

let test_remove () =
  let idx = make_index () in
  Index.remove_path idx "/b.txt";
  check_int "count" 3 (Index.doc_count idx);
  Alcotest.(check (option string)) "dead doc" None (Index.doc_path idx 1);
  check_bool "universe excludes dead" false (Fileset.mem (Index.universe idx) 1);
  Index.remove_path idx "/b.txt" (* idempotent *);
  check_bool "stale ratio" true (Index.stale_ratio idx > 0.0)

let test_rename () =
  let idx = make_index () in
  Index.rename_path idx ~old_path:"/a.txt" ~new_path:"/z.txt";
  Alcotest.(check (option int)) "new path same id" (Some 0) (Index.doc_of_path idx "/z.txt");
  Alcotest.(check (option int)) "old gone" None (Index.doc_of_path idx "/a.txt");
  Alcotest.(check (option string)) "doc_path updated" (Some "/z.txt") (Index.doc_path idx 0)

let test_rename_clobbers () =
  let idx = make_index () in
  Index.rename_path idx ~old_path:"/a.txt" ~new_path:"/b.txt";
  Alcotest.(check (option int)) "destination now a's id" (Some 0) (Index.doc_of_path idx "/b.txt");
  check_int "one fewer live doc" 3 (Index.doc_count idx)

let test_update_same_id () =
  let idx = make_index () in
  let id = Index.update_document idx ~path:"/a.txt" ~content:"totally different words" in
  check_int "same id" 0 id;
  check_bool "new word found" true (Fileset.mem (Index.candidate_docs idx "totally") 0)

(* -- candidates ------------------------------------------------------------------ *)

let test_candidates_block1 () =
  let idx = make_index ~block_size:1 () in
  check_list "quick in a and c" (ids idx [ "/a.txt"; "/c.txt" ])
    (Fileset.elements (Index.candidate_docs idx "quick"));
  check_list "the in a and b" (ids idx [ "/a.txt"; "/b.txt" ])
    (Fileset.elements (Index.candidate_docs idx "the"));
  check_list "absent" [] (Fileset.elements (Index.candidate_docs idx "zebra"))

let test_candidates_coarse_blocks () =
  (* The CAS path answers doc-granular candidates even with coarse blocks... *)
  let idx = make_index ~block_size:4 () in
  check_list "cas precise" (ids idx [ "/a.txt"; "/c.txt" ])
    (Fileset.elements (Index.candidate_docs idx "quick"));
  (* ...while the Glimpse fallback returns the whole live block — the
     classic space/precision trade-off... *)
  Index.set_use_cas idx false;
  check_int "coarse superset" 4 (Fileset.cardinal (Index.candidate_docs idx "quick"));
  (* ...and verification restores precision on either path. *)
  let verified = Search.search_word idx (reader_of docs) "quick" in
  check_list "verified" (ids idx [ "/a.txt"; "/c.txt" ]) (Fileset.elements verified);
  Index.set_use_cas idx true;
  let verified_cas = Search.search_word idx (reader_of docs) "quick" in
  check_list "verified via cas" (ids idx [ "/a.txt"; "/c.txt" ])
    (Fileset.elements verified_cas)

let test_candidates_exclude_dead () =
  let idx = make_index ~block_size:4 () in
  Index.remove_path idx "/a.txt";
  check_bool "dead not candidate" false (Fileset.mem (Index.candidate_docs idx "quick") 0)

let test_stemming_index () =
  let idx = Index.create ~block_size:1 ~stem:true () in
  ignore (Index.add_document idx ~path:"/s.txt" ~content:"many queries were matched");
  check_bool "query finds queries" true
    (not (Fileset.is_empty (Index.candidate_docs idx "query")));
  check_bool "match finds matched" true
    (not (Fileset.is_empty (Index.candidate_docs idx "match")))

let test_candidates_approx () =
  let idx = make_index () in
  let c = Index.candidate_docs_approx idx ~word:"quack" ~errors:1 in
  (* quack ~1~ quick. *)
  check_bool "near word found" true (Fileset.mem c 0);
  check_list "exact approx at 0"
    (Fileset.elements (Index.candidate_docs idx "quick"))
    (Fileset.elements (Index.candidate_docs_approx idx ~word:"quick" ~errors:0))

let test_vocabulary_and_bytes () =
  let idx = make_index () in
  check_bool "vocab populated" true (Index.vocabulary_size idx > 5);
  check_bool "bytes positive" true (Index.index_bytes idx > 0);
  check_bool "vocab sorted" true
    (let v = Index.vocabulary idx in
     v = List.sort compare v)

let test_rebuild_reclaims () =
  let idx = make_index ~block_size:1 () in
  Index.remove_path idx "/a.txt";
  (* Stale bits: "fox" still has a.txt's block. *)
  Index.rebuild idx (fun id ->
      Option.bind (Index.doc_path idx id) (reader_of docs));
  check_list "fox gone after rebuild" [] (Fileset.elements (Index.candidate_docs idx "fox"));
  check_int "live docs kept" 3 (Index.doc_count idx)

(* -- per-directory index -------------------------------------------------------------- *)

let test_doc_ids_under () =
  let idx = Index.create () in
  let add p = ignore (Index.add_document idx ~path:p ~content:"words here") in
  List.iter add [ "/a/one.txt"; "/a/sub/two.txt"; "/b/three.txt" ];
  let under d = List.filter_map (Index.doc_path idx) (Fileset.elements (Index.doc_ids_under idx d)) in
  check_bool "root equals universe" true
    (Fileset.equal (Index.doc_ids_under idx "/") (Index.universe idx));
  Alcotest.(check (list string)) "under /a" [ "/a/one.txt"; "/a/sub/two.txt" ]
    (List.sort compare (under "/a"));
  Alcotest.(check (list string)) "under /a/sub" [ "/a/sub/two.txt" ] (under "/a/sub");
  Alcotest.(check (list string)) "unknown dir" [] (under "/zzz");
  (* Removal and rename maintain the table. *)
  Index.remove_path idx "/a/one.txt";
  Alcotest.(check (list string)) "after remove" [ "/a/sub/two.txt" ]
    (List.sort compare (under "/a"));
  Index.rename_path idx ~old_path:"/a/sub/two.txt" ~new_path:"/b/two.txt";
  Alcotest.(check (list string)) "moved out" [] (under "/a");
  Alcotest.(check (list string)) "moved in" [ "/b/three.txt"; "/b/two.txt" ]
    (List.sort compare (under "/b"))

(* The incremental table must always agree with a direct scan. *)
let prop_doc_ids_under_matches_scan =
  let dirs = [| "/x"; "/x/a"; "/x/b"; "/y" |] in
  let gen_ops =
    QCheck.Gen.(
      list_size (int_range 1 30)
        (oneof
           [
             map2 (fun d i -> `Add (Printf.sprintf "%s/f%d.txt" dirs.(d) i)) (int_bound 3) (int_bound 9);
             map2 (fun d i -> `Remove (Printf.sprintf "%s/f%d.txt" dirs.(d) i)) (int_bound 3) (int_bound 9);
             map2
               (fun (d1, i1) (d2, i2) ->
                 `Rename
                   ( Printf.sprintf "%s/f%d.txt" dirs.(d1) i1,
                     Printf.sprintf "%s/f%d.txt" dirs.(d2) i2 ))
               (pair (int_bound 3) (int_bound 9))
               (pair (int_bound 3) (int_bound 9));
           ]))
  in
  QCheck.Test.make ~name:"doc_ids_under agrees with a path scan" ~count:300
    (QCheck.make gen_ops ~print:(fun ops -> string_of_int (List.length ops)))
    (fun ops ->
      let idx = Index.create () in
      List.iter
        (function
          | `Add p -> ignore (Index.add_document idx ~path:p ~content:"w")
          | `Remove p -> Index.remove_path idx p
          | `Rename (a, b) -> Index.rename_path idx ~old_path:a ~new_path:b)
        ops;
      List.for_all
        (fun dir ->
          let scan =
            Fileset.filter
              (fun id ->
                match Index.doc_path idx id with
                | Some p -> Hac_vfs.Vpath.is_prefix ~prefix:dir p
                | None -> false)
              (Index.universe idx)
          in
          Fileset.equal scan (Index.doc_ids_under idx dir))
        (Array.to_list dirs))

(* -- search verification ------------------------------------------------------------ *)

let test_search_word () =
  let idx = make_index () in
  let r = reader_of docs in
  check_list "word" (ids idx [ "/b.txt" ]) (Fileset.elements (Search.search_word idx r "lazy"));
  check_list "case folded" (ids idx [ "/b.txt" ])
    (Fileset.elements (Search.search_word idx r "LAZY"));
  check_list "missing" [] (Fileset.elements (Search.search_word idx r "zebra"))

let test_search_phrase () =
  let idx = make_index () in
  let r = reader_of docs in
  check_list "phrase present" (ids idx [ "/a.txt" ])
    (Fileset.elements (Search.search_phrase idx r [ "quick"; "brown" ]));
  check_list "words present but not adjacent" []
    (Fileset.elements (Search.search_phrase idx r [ "brown"; "quick" ]));
  check_list "single word phrase" (ids idx [ "/b.txt" ])
    (Fileset.elements (Search.search_phrase idx r [ "lazy" ]));
  check_list "empty phrase" [] (Fileset.elements (Search.search_phrase idx r []))

let test_search_approx () =
  let idx = make_index () in
  let r = reader_of docs in
  let got = Search.search_approx idx r ~word:"quik" ~errors:1 in
  check_list "quik~1 = quick docs" (ids idx [ "/a.txt"; "/c.txt" ]) (Fileset.elements got)

let test_search_substring () =
  let idx = make_index () in
  let r = reader_of docs in
  check_list "raw substring" (ids idx [ "/a.txt" ])
    (Fileset.elements (Search.search_substring idx r "own fox"))

let test_matching_lines () =
  let idx = Index.create ~stem:false () in
  let content = "alpha one\nbeta two\nalpha three\n" in
  ignore (Index.add_document idx ~path:"/m.txt" ~content);
  let r p = if p = "/m.txt" then Some content else None in
  Alcotest.(check (list (pair int string)))
    "alpha lines"
    [ (1, "alpha one"); (3, "alpha three") ]
    (Search.matching_lines idx r ~path:"/m.txt" ~query_words:[ "alpha" ])

let test_reader_failure_filters () =
  let idx = make_index () in
  let no_reader _ = None in
  check_list "unreadable docs drop out" []
    (Fileset.elements (Search.search_word idx no_reader "quick"))

(* -- properties ----------------------------------------------------------------------- *)

(* Verified search must be invariant under block size: block granularity is
   a performance knob, not a semantics knob. *)
let prop_block_size_invariant =
  let doc_gen =
    QCheck.Gen.(
      list_size (int_range 1 8)
        (map
           (fun ws -> String.concat " " ws)
           (list_size (int_range 1 12)
              (map
                 (fun cs -> String.concat "" (List.map (String.make 1) cs))
                 (list_size (int_range 2 5) (char_range 'a' 'c'))))))
  in
  QCheck.Test.make ~name:"verified search invariant under block size" ~count:100
    (QCheck.make doc_gen ~print:(fun ds -> String.concat " | " ds))
    (fun contents ->
      let paths = List.mapi (fun i c -> (Printf.sprintf "/d%d" i, c)) contents in
      let build bs =
        let idx = Index.create ~block_size:bs ~stem:false () in
        List.iter (fun (p, c) -> ignore (Index.add_document idx ~path:p ~content:c)) paths;
        idx
      in
      let i1 = build 1 and i3 = build 3 in
      let r = reader_of paths in
      List.for_all
        (fun w ->
          Fileset.equal (Search.search_word i1 r w) (Search.search_word i3 r w))
        [ "aa"; "ab"; "ba"; "cc"; "abc" ])

let () =
  Alcotest.run "index"
    [
      ( "documents",
        [
          Alcotest.test_case "doc table" `Quick test_doc_table;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "rename clobbers" `Quick test_rename_clobbers;
          Alcotest.test_case "update keeps id" `Quick test_update_same_id;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "block_size=1 precise" `Quick test_candidates_block1;
          Alcotest.test_case "coarse blocks + verification" `Quick test_candidates_coarse_blocks;
          Alcotest.test_case "dead docs excluded" `Quick test_candidates_exclude_dead;
          Alcotest.test_case "stemming" `Quick test_stemming_index;
          Alcotest.test_case "approximate" `Quick test_candidates_approx;
          Alcotest.test_case "vocabulary and bytes" `Quick test_vocabulary_and_bytes;
          Alcotest.test_case "rebuild reclaims stale bits" `Quick test_rebuild_reclaims;
        ] );
      ( "directories",
        [ Alcotest.test_case "doc_ids_under" `Quick test_doc_ids_under ] );
      ( "search",
        [
          Alcotest.test_case "word" `Quick test_search_word;
          Alcotest.test_case "phrase" `Quick test_search_phrase;
          Alcotest.test_case "approx" `Quick test_search_approx;
          Alcotest.test_case "substring" `Quick test_search_substring;
          Alcotest.test_case "matching lines" `Quick test_matching_lines;
          Alcotest.test_case "unreadable filtered" `Quick test_reader_failure_filters;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_block_size_invariant; prop_doc_ids_under_matches_scan ] );
    ]
