(* Tests for the hacsh command interpreter: every command family exercised
   through the same entry point the binary uses. *)

module Shell = Hac_shell.Shell
module Hac = Hac_core.Hac
module Fs = Hac_vfs.Fs

let check_str = Alcotest.(check string)

let check_bool = Alcotest.(check bool)

let contains hay needle = Hac_index.Agrep.find_exact ~pattern:needle hay <> None

let run = Shell.run_string

(* -- navigation and plain fs ---------------------------------------------------------- *)

let test_pwd_cd () =
  let s = Shell.make () in
  check_str "initial" "/\n" (run s "pwd");
  check_str "cd and pwd" "/home/demo\n" (run s "mkdir /home; mkdir /home/demo; cd /home/demo; pwd");
  check_bool "bad cd reports" true (contains (run s "cd /nope") "not a directory")

let test_write_cat_ls () =
  let s = Shell.make () in
  let out = run s "write /f.txt hello shell; cat /f.txt" in
  check_str "roundtrip" "hello shell\n" out;
  check_bool "ls shows it" true (contains (run s "ls /") "f.txt");
  check_bool "ls -l shows kind" true (contains (run s "ls -l /") "file");
  check_str "append" "a\nb\n" (run s "write /g a; append /g b; cat /g")

let test_mv_rm () =
  let s = Shell.make () in
  ignore (run s "write /a data; mv /a /b");
  check_str "moved" "data\n" (run s "cat /b");
  ignore (run s "rm /b");
  check_bool "gone" true (contains (run s "cat /b") "cannot read")

let test_error_reporting () =
  let s = Shell.make () in
  check_bool "ENOENT surfaced" true (contains (run s "rm /missing") "no such file");
  check_bool "unknown command" true (contains (run s "frobnicate") "unknown");
  check_bool "help prints" true (contains (run s "help") "smkdir")

(* -- semantic commands ------------------------------------------------------------------ *)

let seeded () =
  let s = Shell.make () in
  ignore
    (run s
       "mkdir /docs; write /docs/apple.txt apple pie recipe; write /docs/cherry.txt cherry \
        tart; smkdir /apples apple");
  s

let test_smkdir_links_sreadin () =
  let s = seeded () in
  check_bool "links listed" true (contains (run s "links /apples") "apple.txt");
  check_str "query" "apple\n" (run s "sreadin /apples");
  check_bool "sdirs" true (contains (run s "sdirs") "/apples")

let test_rm_link_prohibits () =
  let s = seeded () in
  ignore (run s "rm /apples/apple.txt; ssync /apples");
  check_bool "prohibited listed" true
    (contains (run s "prohibited /apples") "/docs/apple.txt");
  check_bool "does not return" false (contains (run s "links /apples") "apple.txt");
  ignore (run s "sunprohibit /apples /docs/apple.txt; ssync /apples");
  check_bool "back after sunprohibit" true (contains (run s "links /apples") "apple.txt")

let test_sprohibit () =
  let s = seeded () in
  ignore (run s "sprohibit /apples /docs/apple.txt; ssync /apples");
  check_bool "gone" false (contains (run s "links /apples") "apple.txt")

let test_schquery_srmdir () =
  let s = seeded () in
  ignore (run s "schquery /apples cherry");
  check_bool "requeried" true (contains (run s "links /apples") "cherry.txt");
  ignore (run s "srmdir /apples");
  check_str "no sdirs left" "" (run s "sdirs")

let test_sact () =
  let s = seeded () in
  check_bool "matching line" true
    (contains (run s "sact /apples/apple.txt") "apple pie recipe")

let test_ssearch () =
  let s = seeded () in
  let out = run s "ssearch apple AND NOT cherry" in
  check_bool "finds apple" true (contains out "/docs/apple.txt");
  check_bool "excludes cherry" false (contains out "/docs/cherry.txt");
  check_str "no temp dir left behind" "/apples\n" (run s "sdirs");
  check_bool "bad query reported" true (contains (run s "ssearch ((x") "bad query")

let test_sgrep () =
  let s = seeded () in
  let out = run s "sgrep /p[ie]+/ /docs" in
  check_bool "regex hits with location" true (contains out "/docs/apple.txt:1:");
  check_bool "bad regex reported" true (contains (run s "sgrep /((/ /docs") "bad regex")

let test_attr_query_via_shell () =
  let s = Shell.make () in
  ignore (run s "mkdir /mail; write /mail/m.eml From: ana; smkdir /ana from:ana");
  check_bool "transducer works in shell" true (contains (run s "links /ana") "m.eml")

(* -- mounts ------------------------------------------------------------------------------ *)

let test_demo_mounts () =
  let s = Shell.make () in
  ignore (run s "mkdir /lib; smount /lib demo-library; smkdir /lib/idx indexing");
  check_bool "remote result" true (contains (run s "links /lib/idx") "btrees.ps");
  ignore (run s "sumount /lib demo-library; ssync /lib/idx");
  check_bool "withdrawn" false (contains (run s "links /lib/idx") "btrees.ps")

(* -- permissions --------------------------------------------------------------------------- *)

let test_su_chmod () =
  let s = Shell.make () in
  ignore (run s "su 1; write /mine.txt private; chmod 600 /mine.txt; su 2");
  check_bool "denied" true (contains (run s "cat /mine.txt") "cannot read");
  ignore (run s "su 1");
  check_str "owner ok" "private\n" (run s "cat /mine.txt");
  check_bool "chmod error surfaces" true (contains (run s "su 2; chmod 777 /mine.txt") "not permitted")

(* -- export / recover ------------------------------------------------------------------------ *)

let test_sexport () =
  let s = seeded () in
  let out = run s "sexport" in
  check_bool "record" true (contains out "D /apples");
  check_bool "single dir variant" true (contains (run s "sexport /apples") "Q apple");
  check_bool "non semantic" true (contains (run s "sexport /docs") "not semantic")

let test_srecover_roundtrip () =
  let s = seeded () in
  Hac.shutdown ~graceful:false (Shell.hac s);
  let s2 = Shell.of_hac (Hac.of_fs ~auto_sync:true (Hac.fs (Shell.hac s))) in
  check_bool "recovered" true (contains (run s2 "srecover") "restored 1");
  check_bool "alive again" true (contains (run s2 "links /apples") "apple.txt")

let test_checkpoint_compact () =
  let s = seeded () in
  check_bool "checkpoint" true (contains (run s "checkpoint") "checkpoint committed for epoch 0");
  check_bool "next epoch" true (contains (run s "checkpoint") "epoch 1");
  check_bool "compact" true (contains (run s "compact") "compaction removed");
  check_bool "still recovers" true (contains (run s "srecover -v") "checkpoint epoch")

let test_srecover_warns_on_corruption () =
  let s = seeded () in
  let t = Shell.hac s in
  Hac.shutdown ~graceful:false t;
  let fs = Hac.fs t in
  let log = "/.hac/dirs.log" in
  Fs.write_file fs log (Fs.read_file fs log ^ "D 99 /phantom zzz dir #00000000\n");
  let s2 = Shell.of_hac (Hac.of_fs ~auto_sync:true fs) in
  check_bool "warns" true (contains (run s2 "srecover") "warning: skipped 1 journal record")

let test_stats () =
  let s = seeded () in
  let out = run s "stats" in
  check_bool "semantic count" true (contains out "semantic dirs        : 1");
  check_bool "indexed docs" true (contains out "indexed documents    : 2")

let test_quit () =
  let s = Shell.make () in
  let buf = Buffer.create 16 in
  check_bool "quit returns false" false (Shell.run s buf "quit");
  check_bool "normal returns true" true (Shell.run s buf "pwd")

(* -- fuzz safety ---------------------------------------------------------------------- *)

(* No command line, however mangled, may escape the interpreter as an
   exception — user errors must print. *)
let prop_no_escaping_exceptions =
  let gen_token =
    QCheck.Gen.(
      oneof
        [
          oneofl
            [
              "ls"; "-l"; "cd"; "pwd"; "mkdir"; "rmdir"; "write"; "append"; "cat"; "rm";
              "mv"; "ln"; "chmod"; "chown"; "su"; "smkdir"; "srmdir"; "schquery";
              "sreadin"; "ssearch"; "sgrep"; "links"; "prohibited"; "sact"; "ssync";
              "sreindex"; "smount"; "sumount"; "sprohibit"; "sunprohibit"; "sexport";
              "srecover"; "sdirs"; "stats"; "help"; "checkpoint"; "compact";
            ];
          oneofl [ "/"; "/a"; "/a/b"; ".."; "."; "x"; "600"; "1"; "*"; "("; "{/a}"; "/re/" ];
          map
            (fun cs -> String.concat "" (List.map (String.make 1) cs))
            (list_size (int_range 1 6) (oneof [ char_range 'a' 'z'; oneofl [ '/'; ':'; '~' ] ]));
        ])
  in
  let gen_line = QCheck.Gen.(map (String.concat " ") (list_size (int_range 0 5) gen_token)) in
  QCheck.Test.make ~name:"random command lines never raise" ~count:400
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 12) gen_line)
       ~print:(fun ls -> String.concat " ; " ls))
    (fun lines ->
      let s = Shell.make ~demo:true () in
      let buf = Buffer.create 64 in
      List.iter (fun line -> ignore (Shell.run s buf line)) lines;
      true)

let () =
  Alcotest.run "shell"
    [
      ( "plain fs",
        [
          Alcotest.test_case "pwd/cd" `Quick test_pwd_cd;
          Alcotest.test_case "write/cat/ls" `Quick test_write_cat_ls;
          Alcotest.test_case "mv/rm" `Quick test_mv_rm;
          Alcotest.test_case "errors" `Quick test_error_reporting;
        ] );
      ( "semantic",
        [
          Alcotest.test_case "smkdir/links/sreadin" `Quick test_smkdir_links_sreadin;
          Alcotest.test_case "rm prohibits" `Quick test_rm_link_prohibits;
          Alcotest.test_case "sprohibit" `Quick test_sprohibit;
          Alcotest.test_case "schquery/srmdir" `Quick test_schquery_srmdir;
          Alcotest.test_case "sact" `Quick test_sact;
          Alcotest.test_case "ssearch" `Quick test_ssearch;
          Alcotest.test_case "sgrep" `Quick test_sgrep;
          Alcotest.test_case "attribute queries" `Quick test_attr_query_via_shell;
        ] );
      ("mounts", [ Alcotest.test_case "demo mounts" `Quick test_demo_mounts ]);
      ("permissions", [ Alcotest.test_case "su/chmod" `Quick test_su_chmod ]);
      ( "export/recover",
        [
          Alcotest.test_case "sexport" `Quick test_sexport;
          Alcotest.test_case "srecover" `Quick test_srecover_roundtrip;
          Alcotest.test_case "checkpoint/compact" `Quick test_checkpoint_compact;
          Alcotest.test_case "srecover warns" `Quick test_srecover_warns_on_corruption;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "quit" `Quick test_quit;
        ] );
      ("fuzz", List.map QCheck_alcotest.to_alcotest [ prop_no_escaping_exceptions ]);
    ]
