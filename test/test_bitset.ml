(* Unit and property tests for Hac_bitset: Bitset, Sparse and the adaptive
   Fileset.  Property tests check every operation against Stdlib's Set as a
   reference model. *)

module Bitset = Hac_bitset.Bitset
module Sparse = Hac_bitset.Sparse
module Fileset = Hac_bitset.Fileset
module IntSet = Set.Make (Int)

let check_list = Alcotest.(check (list int))

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

(* -- Bitset units -------------------------------------------------------- *)

let test_bitset_empty () =
  let s = Bitset.create () in
  check_int "cardinal" 0 (Bitset.cardinal s);
  check_bool "is_empty" true (Bitset.is_empty s);
  check_bool "mem" false (Bitset.mem s 3);
  check_list "elements" [] (Bitset.elements s)

let test_bitset_add_remove () =
  let s = Bitset.create () in
  Bitset.add s 5;
  Bitset.add s 0;
  Bitset.add s 200;
  check_list "elements sorted" [ 0; 5; 200 ] (Bitset.elements s);
  Bitset.add s 5;
  check_int "idempotent add" 3 (Bitset.cardinal s);
  Bitset.remove s 5;
  check_bool "removed" false (Bitset.mem s 5);
  Bitset.remove s 5;
  check_int "idempotent remove" 2 (Bitset.cardinal s);
  Bitset.remove s 9999 (* beyond allocation: no-op, no exception *)

let test_bitset_growth () =
  let s = Bitset.create ~capacity:1 () in
  Bitset.add s 100_000;
  check_bool "grown mem" true (Bitset.mem s 100_000);
  check_int "cardinal" 1 (Bitset.cardinal s)

let test_bitset_negative () =
  let s = Bitset.create () in
  Alcotest.check_raises "negative add" (Invalid_argument "Bitset.add: negative element")
    (fun () -> Bitset.add s (-1));
  check_bool "negative mem" false (Bitset.mem s (-1))

let test_bitset_ops () =
  let a = Bitset.of_list [ 1; 2; 3; 64; 65 ] in
  let b = Bitset.of_list [ 2; 64; 999 ] in
  check_list "union" [ 1; 2; 3; 64; 65; 999 ] (Bitset.elements (Bitset.union a b));
  check_list "inter" [ 2; 64 ] (Bitset.elements (Bitset.inter a b));
  check_list "diff" [ 1; 3; 65 ] (Bitset.elements (Bitset.diff a b));
  check_bool "subset yes" true (Bitset.subset (Bitset.of_list [ 2; 64 ]) a);
  check_bool "subset no" false (Bitset.subset b a);
  check_bool "equal self" true (Bitset.equal a (Bitset.copy a));
  check_bool "equal across sizes" true
    (Bitset.equal (Bitset.of_list [ 1 ]) (Bitset.of_list [ 1 ]))

let test_bitset_inplace () =
  let a = Bitset.of_list [ 1; 70 ] in
  Bitset.union_into a (Bitset.of_list [ 2; 300 ]);
  check_list "union_into" [ 1; 2; 70; 300 ] (Bitset.elements a);
  Bitset.inter_into a (Bitset.of_list [ 2; 300; 5 ]);
  check_list "inter_into" [ 2; 300 ] (Bitset.elements a);
  Bitset.diff_into a (Bitset.of_list [ 300 ]);
  check_list "diff_into" [ 2 ] (Bitset.elements a)

let test_bitset_copy_isolated () =
  let a = Bitset.of_list [ 1 ] in
  let b = Bitset.copy a in
  Bitset.add b 2;
  check_bool "original untouched" false (Bitset.mem a 2)

let test_bitset_choose_max () =
  let s = Bitset.of_list [ 42; 7; 100 ] in
  Alcotest.(check (option int)) "choose" (Some 7) (Bitset.choose_opt s);
  Alcotest.(check (option int)) "max" (Some 100) (Bitset.max_elt_opt s);
  Alcotest.(check (option int)) "choose empty" None (Bitset.choose_opt (Bitset.create ()));
  Alcotest.(check (option int)) "max empty" None (Bitset.max_elt_opt (Bitset.create ()))

let test_bitset_clear () =
  let s = Bitset.of_list [ 1; 2; 3 ] in
  Bitset.clear s;
  check_bool "cleared" true (Bitset.is_empty s)

let test_paper_byte_size () =
  (* The paper: 17000 indexed files -> about 2 KB per semantic directory. *)
  check_int "17000 files" 2125 (Bitset.paper_byte_size ~universe:17000);
  check_int "8 files" 1 (Bitset.paper_byte_size ~universe:8);
  check_int "9 files" 2 (Bitset.paper_byte_size ~universe:9)

(* -- Sparse units --------------------------------------------------------- *)

let test_sparse_basic () =
  let s = Sparse.of_list [ 5; 1; 5; 3 ] in
  check_list "dedup sorted" [ 1; 3; 5 ] (Sparse.elements s);
  check_bool "mem" true (Sparse.mem s 3);
  check_bool "not mem" false (Sparse.mem s 4);
  check_int "cardinal" 3 (Sparse.cardinal s);
  check_bool "empty" true (Sparse.is_empty Sparse.empty)

let test_sparse_add_remove () =
  let s = Sparse.of_list [ 1; 5 ] in
  let s2 = Sparse.add s 3 in
  check_list "insert middle" [ 1; 3; 5 ] (Sparse.elements s2);
  check_list "original immutable" [ 1; 5 ] (Sparse.elements s);
  let s3 = Sparse.remove s2 1 in
  check_list "remove head" [ 3; 5 ] (Sparse.elements s3);
  check_bool "remove absent is same" true (Sparse.equal s (Sparse.remove s 42))

let test_sparse_setops () =
  let a = Sparse.of_list [ 1; 3; 5 ] and b = Sparse.of_list [ 2; 3; 6 ] in
  check_list "union" [ 1; 2; 3; 5; 6 ] (Sparse.elements (Sparse.union a b));
  check_list "inter" [ 3 ] (Sparse.elements (Sparse.inter a b));
  check_list "diff" [ 1; 5 ] (Sparse.elements (Sparse.diff a b));
  check_bool "subset" true (Sparse.subset (Sparse.of_list [ 3 ]) a)

(* -- Fileset units --------------------------------------------------------- *)

let test_fileset_adaptive () =
  let small = Fileset.of_list [ 1; 2; 3 ] in
  check_bool "small stays sparse" false (Fileset.is_dense small);
  let big = Fileset.range 0 1000 in
  check_bool "dense range" true (Fileset.is_dense big);
  check_int "range cardinal" 1001 (Fileset.cardinal big);
  (* A huge-universe tiny set must not densify. *)
  let scattered = Fileset.of_list [ 1; 1_000_000 ] in
  check_bool "scattered sparse" false (Fileset.is_dense scattered)

let test_fileset_ops_mixed_repr () =
  let dense = Fileset.range 0 500 in
  let sparse = Fileset.of_list [ 100; 501 ] in
  check_int "union" 502 (Fileset.cardinal (Fileset.union dense sparse));
  check_list "inter" [ 100 ] (Fileset.elements (Fileset.inter dense sparse));
  check_bool "diff" false (Fileset.mem (Fileset.diff dense sparse) 100);
  check_bool "equal across reprs" true
    (Fileset.equal (Fileset.of_list [ 1; 2 ]) (Fileset.of_list [ 2; 1 ]))

let test_fileset_filter () =
  let s = Fileset.range 0 20 in
  let even = Fileset.filter (fun i -> i mod 2 = 0) s in
  check_int "filtered" 11 (Fileset.cardinal even);
  check_bool "no odd" false (Fileset.mem even 3)

let test_fileset_empty_range () =
  check_bool "inverted range empty" true (Fileset.is_empty (Fileset.range 5 2))

(* -- Roaring container units ----------------------------------------------- *)

let test_roaring_chunk_boundaries () =
  let s = Fileset.of_list [ 65534; 65535; 65536; 65537; 131072 ] in
  check_int "cardinal" 5 (Fileset.cardinal s);
  check_list "elements" [ 65534; 65535; 65536; 65537; 131072 ] (Fileset.elements s);
  check_bool "mem low edge" true (Fileset.mem s 65535);
  check_bool "mem high edge" true (Fileset.mem s 65536);
  check_bool "not mem" false (Fileset.mem s 65538);
  let st = Fileset.container_stats s in
  check_int "three chunks" 3 st.containers

let test_roaring_cross_chunk_range () =
  let s = Fileset.range 65000 70000 in
  check_int "cardinal" 5001 (Fileset.cardinal s);
  check_bool "dense (run containers)" true (Fileset.is_dense s);
  let st = Fileset.container_stats s in
  check_int "two chunks" 2 st.containers;
  check_int "both runs" 2 st.run_containers;
  (* A 5001-element range stored as runs costs a handful of words, not 5001. *)
  check_bool "run compression" true (Fileset.byte_size s < 200)

let test_roaring_bitmap_container () =
  (* Step-2 values: 5001 elements, 5001 runs -> run loses, n > 4096 -> bitmap. *)
  let l = List.init 5001 (fun i -> 2 * i) in
  let s = Fileset.of_list l in
  let st = Fileset.container_stats s in
  check_int "one bitmap container" 1 st.bitmaps;
  check_int "no arrays" 0 st.arrays;
  check_int "cardinal" 5001 (Fileset.cardinal s);
  check_bool "mem" true (Fileset.mem s 10000);
  check_bool "not mem odd" false (Fileset.mem s 9999)

let test_roaring_inter_many () =
  let a = Fileset.range 0 10_000 in
  let b = Fileset.of_list [ 5; 500; 5000; 50_000 ] in
  let c = Fileset.range 400 6000 in
  check_list "three-way" [ 500; 5000 ]
    (Fileset.elements (Fileset.inter_many [ a; b; c ]));
  check_bool "empty list" true (Fileset.is_empty (Fileset.inter_many []));
  check_bool "with empty member" true
    (Fileset.is_empty (Fileset.inter_many [ a; Fileset.empty; b ]));
  check_list "singleton list" (Fileset.elements b)
    (Fileset.elements (Fileset.inter_many [ b ]))

let test_roaring_gallop () =
  (* Tiny array against a huge one exercises the exponential-search path. *)
  let big = Fileset.of_list (List.init 4000 (fun i -> 17 * i)) in
  let small = Fileset.of_list [ 0; 17; 1700; 17_000; 17_001 ] in
  check_list "gallop inter" [ 0; 17; 1700; 17000 ]
    (Fileset.elements (Fileset.inter small big));
  check_list "gallop inter sym" [ 0; 17; 1700; 17000 ]
    (Fileset.elements (Fileset.inter big small))

let test_roaring_equal_construction_paths () =
  let l = [ 3; 70_000; 70_001; 70_002; 9 ] in
  let a = Fileset.of_list l in
  let b = List.fold_left Fileset.add Fileset.empty l in
  let c = Fileset.of_increasing_iter (fun f -> List.iter f (List.sort compare l)) in
  check_bool "of_list = folded add" true (Fileset.equal a b);
  check_bool "of_list = increasing iter" true (Fileset.equal a c);
  check_bool "subset refl" true (Fileset.subset a b);
  let r1 = Fileset.range 100 80_000 in
  let r2 =
    Fileset.of_increasing_iter (fun f ->
        for i = 100 to 80_000 do
          f i
        done)
  in
  check_bool "range = streamed range" true (Fileset.equal r1 r2)

let test_roaring_of_bitset () =
  let b = Bitset.of_list [ 0; 63; 64; 100_000 ] in
  let s = Fileset.of_bitset b in
  check_list "of_bitset" [ 0; 63; 64; 100_000 ] (Fileset.elements s)

let test_roaring_builder () =
  let bld = Fileset.Builder.create () in
  Fileset.Builder.add bld 7;
  Fileset.Builder.add bld 70_000;
  Fileset.Builder.add bld 7;
  check_int "builder cardinal" 2 (Fileset.Builder.cardinal bld);
  check_bool "builder mem" true (Fileset.Builder.mem bld 70_000);
  let s1 = Fileset.Builder.snapshot bld in
  let s1' = Fileset.Builder.snapshot bld in
  check_bool "snapshot cached" true (s1 == s1');
  check_list "snapshot" [ 7; 70_000 ] (Fileset.elements s1);
  Fileset.Builder.remove bld 7;
  let s2 = Fileset.Builder.snapshot bld in
  check_list "snapshot after remove" [ 70_000 ] (Fileset.elements s2);
  check_list "old snapshot immutable" [ 7; 70_000 ] (Fileset.elements s1);
  Fileset.Builder.clear bld;
  check_bool "cleared" true (Fileset.is_empty (Fileset.Builder.snapshot bld))

let test_roaring_byte_size () =
  (* Sanity: payload never exceeds one word per element plus the spine, and a
     dense range is radically smaller than the elementwise bound. *)
  let s = Fileset.of_list [ 1; 2; 3 ] in
  check_bool "tiny set small" true (Fileset.byte_size s <= 8 * (3 + 2));
  let r = Fileset.range 0 200_000 in
  check_bool "range compressed" true (Fileset.byte_size r < 8 * 200);
  check_int "empty is free" 0 (Fileset.byte_size Fileset.empty)

(* -- properties ------------------------------------------------------------ *)

let small_int_list = QCheck.(small_list (int_bound 400))

let model_of l = IntSet.of_list l

let prop_bitset_matches_model =
  QCheck.Test.make ~name:"bitset setops match Set model" ~count:300
    QCheck.(pair small_int_list small_int_list)
    (fun (la, lb) ->
      let a = Bitset.of_list la and b = Bitset.of_list lb in
      let ma = model_of la and mb = model_of lb in
      Bitset.elements (Bitset.union a b) = IntSet.elements (IntSet.union ma mb)
      && Bitset.elements (Bitset.inter a b) = IntSet.elements (IntSet.inter ma mb)
      && Bitset.elements (Bitset.diff a b) = IntSet.elements (IntSet.diff ma mb)
      && Bitset.cardinal a = IntSet.cardinal ma
      && Bitset.subset a b = IntSet.subset ma mb)

let prop_sparse_matches_model =
  QCheck.Test.make ~name:"sparse setops match Set model" ~count:300
    QCheck.(pair small_int_list small_int_list)
    (fun (la, lb) ->
      let a = Sparse.of_list la and b = Sparse.of_list lb in
      let ma = model_of la and mb = model_of lb in
      Sparse.elements (Sparse.union a b) = IntSet.elements (IntSet.union ma mb)
      && Sparse.elements (Sparse.inter a b) = IntSet.elements (IntSet.inter ma mb)
      && Sparse.elements (Sparse.diff a b) = IntSet.elements (IntSet.diff ma mb)
      && Sparse.subset a b = IntSet.subset ma mb)

let prop_fileset_matches_model =
  QCheck.Test.make ~name:"fileset setops match Set model" ~count:300
    QCheck.(pair small_int_list small_int_list)
    (fun (la, lb) ->
      let a = Fileset.of_list la and b = Fileset.of_list lb in
      let ma = model_of la and mb = model_of lb in
      Fileset.elements (Fileset.union a b) = IntSet.elements (IntSet.union ma mb)
      && Fileset.elements (Fileset.inter a b) = IntSet.elements (IntSet.inter ma mb)
      && Fileset.elements (Fileset.diff a b) = IntSet.elements (IntSet.diff ma mb))

let prop_fileset_add_remove =
  QCheck.Test.make ~name:"fileset add/remove roundtrip" ~count:300
    QCheck.(pair small_int_list (int_bound 400))
    (fun (l, x) ->
      let s = Fileset.of_list l in
      Fileset.mem (Fileset.add s x) x
      && (not (Fileset.mem (Fileset.remove s x) x))
      && Fileset.cardinal (Fileset.add s x)
         = Fileset.cardinal s + if Fileset.mem s x then 0 else 1)

let prop_bitset_iter_sorted =
  QCheck.Test.make ~name:"bitset iterates in increasing order" ~count:200
    small_int_list
    (fun l ->
      let s = Bitset.of_list l in
      let elems = Bitset.elements s in
      elems = List.sort_uniq compare l)

(* -- Roaring differential properties ---------------------------------------

   Generators are segment-based so the sampled sets exercise every container
   shape and kernel pair: scattered points (array containers), arithmetic
   strides crossing the 4096-element boundary (bitmap containers), contiguous
   ranges (run containers), and chunk-crossing offsets near multiples of
   2^16. *)

let segment_gen =
  QCheck.Gen.(
    let* base = oneofl [ 0; 100; 65_000; 65_536; 131_000; 200_000 ] in
    let* off = int_bound 1000 in
    let* shape = int_bound 2 in
    match shape with
    | 0 ->
        (* scattered points *)
        let* pts = list_size (int_bound 30) (int_bound 3000) in
        return (List.map (fun p -> base + off + p) pts)
    | 1 ->
        (* contiguous run *)
        let* len = int_bound 3000 in
        return (List.init (len + 1) (fun i -> base + off + i))
    | _ ->
        (* stride: enough elements to cross the array/bitmap boundary *)
        let* step = oneofl [ 2; 3; 7 ] in
        let* count = int_bound 6000 in
        return (List.init count (fun i -> base + off + (step * i))))

let roaring_list_gen =
  QCheck.Gen.(
    let* segs = list_size (int_bound 4) segment_gen in
    return (List.concat segs))

let roaring_list =
  QCheck.make roaring_list_gen
    ~print:(fun l ->
      Printf.sprintf "[%d elems: %s ...]" (List.length l)
        (String.concat ";"
           (List.map string_of_int
              (List.filteri (fun i _ -> i < 20) l))))

let prop_roaring_binops_match_model =
  QCheck.Test.make ~name:"roaring union/inter/diff match Set model" ~count:120
    QCheck.(pair roaring_list roaring_list)
    (fun (la, lb) ->
      let a = Fileset.of_list la and b = Fileset.of_list lb in
      let ma = model_of la and mb = model_of lb in
      Fileset.elements (Fileset.union a b) = IntSet.elements (IntSet.union ma mb)
      && Fileset.elements (Fileset.inter a b) = IntSet.elements (IntSet.inter ma mb)
      && Fileset.elements (Fileset.diff a b) = IntSet.elements (IntSet.diff ma mb)
      && Fileset.cardinal a = IntSet.cardinal ma
      && Fileset.subset a b = IntSet.subset ma mb
      && Fileset.equal a b = IntSet.equal ma mb)

let prop_roaring_equal_subset =
  QCheck.Test.make ~name:"roaring equal/subset vs model on related sets" ~count:120
    QCheck.(pair roaring_list roaring_list)
    (fun (la, lb) ->
      let a = Fileset.of_list la and b = Fileset.of_list lb in
      let u = Fileset.union a b and i = Fileset.inter a b in
      Fileset.subset a u && Fileset.subset i a
      && Fileset.equal (Fileset.union a a) a
      && Fileset.equal (Fileset.inter u a) a
      && Fileset.equal (Fileset.diff a b) (Fileset.diff u b))

let prop_roaring_inter_many =
  QCheck.Test.make ~name:"roaring inter_many matches folded model inter" ~count:80
    QCheck.(triple roaring_list roaring_list roaring_list)
    (fun (la, lb, lc) ->
      let sets = [ Fileset.of_list la; Fileset.of_list lb; Fileset.of_list lc ] in
      let models = [ model_of la; model_of lb; model_of lc ] in
      let expect =
        match models with
        | m :: rest -> List.fold_left IntSet.inter m rest
        | [] -> IntSet.empty
      in
      Fileset.elements (Fileset.inter_many sets) = IntSet.elements expect)

let prop_roaring_iter_sorted =
  QCheck.Test.make ~name:"roaring iterates in increasing order" ~count:100
    roaring_list
    (fun l ->
      Fileset.elements (Fileset.of_list l) = IntSet.elements (model_of l))

let prop_roaring_filter =
  QCheck.Test.make ~name:"roaring filter matches model" ~count:100
    QCheck.(pair roaring_list (int_bound 6))
    (fun (l, m) ->
      let p v = v mod (m + 2) = 0 in
      Fileset.elements (Fileset.filter p (Fileset.of_list l))
      = IntSet.elements (IntSet.filter p (model_of l)))

let prop_roaring_add_remove =
  QCheck.Test.make ~name:"roaring add/remove roundtrip" ~count:120
    QCheck.(pair roaring_list (int_bound 200_000))
    (fun (l, x) ->
      let s = Fileset.of_list l in
      Fileset.mem (Fileset.add s x) x
      && (not (Fileset.mem (Fileset.remove s x) x))
      && Fileset.equal (Fileset.remove (Fileset.add s x) x) (Fileset.remove s x)
      && Fileset.cardinal (Fileset.add s x)
         = Fileset.cardinal s + if Fileset.mem s x then 0 else 1)

let prop_roaring_byte_size_sane =
  QCheck.Test.make ~name:"roaring byte_size bounded by one word per element + spine"
    ~count:100 roaring_list
    (fun l ->
      let s = Fileset.of_list l in
      let n = Fileset.cardinal s in
      let chunks = (Fileset.container_stats s).containers in
      let bytes = Fileset.byte_size s in
      bytes <= 8 * (n + (2 * chunks))
      && (n = 0 || bytes > 0)
      && (let st = Fileset.container_stats s in
          st.arrays + st.bitmaps + st.run_containers = st.containers))

let prop_roaring_builder_matches_model =
  QCheck.Test.make ~name:"roaring builder add/remove stream matches model" ~count:80
    QCheck.(pair roaring_list roaring_list)
    (fun (adds, removes) ->
      let bld = Fileset.Builder.create () in
      List.iter (Fileset.Builder.add bld) adds;
      List.iter (Fileset.Builder.remove bld) removes;
      let m = IntSet.diff (model_of adds) (model_of removes) in
      Fileset.elements (Fileset.Builder.snapshot bld) = IntSet.elements m
      && Fileset.Builder.cardinal bld = IntSet.cardinal m)

let () =
  Alcotest.run "bitset"
    [
      ( "bitset",
        [
          Alcotest.test_case "empty" `Quick test_bitset_empty;
          Alcotest.test_case "add/remove" `Quick test_bitset_add_remove;
          Alcotest.test_case "growth" `Quick test_bitset_growth;
          Alcotest.test_case "negative elements" `Quick test_bitset_negative;
          Alcotest.test_case "set operations" `Quick test_bitset_ops;
          Alcotest.test_case "in-place operations" `Quick test_bitset_inplace;
          Alcotest.test_case "copy isolation" `Quick test_bitset_copy_isolated;
          Alcotest.test_case "choose/max" `Quick test_bitset_choose_max;
          Alcotest.test_case "clear" `Quick test_bitset_clear;
          Alcotest.test_case "paper byte size" `Quick test_paper_byte_size;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "basic" `Quick test_sparse_basic;
          Alcotest.test_case "add/remove" `Quick test_sparse_add_remove;
          Alcotest.test_case "set operations" `Quick test_sparse_setops;
        ] );
      ( "fileset",
        [
          Alcotest.test_case "adaptive representation" `Quick test_fileset_adaptive;
          Alcotest.test_case "mixed-repr operations" `Quick test_fileset_ops_mixed_repr;
          Alcotest.test_case "filter" `Quick test_fileset_filter;
          Alcotest.test_case "empty range" `Quick test_fileset_empty_range;
        ] );
      ( "roaring",
        [
          Alcotest.test_case "chunk boundaries" `Quick test_roaring_chunk_boundaries;
          Alcotest.test_case "cross-chunk range" `Quick test_roaring_cross_chunk_range;
          Alcotest.test_case "bitmap container" `Quick test_roaring_bitmap_container;
          Alcotest.test_case "inter_many" `Quick test_roaring_inter_many;
          Alcotest.test_case "galloping intersection" `Quick test_roaring_gallop;
          Alcotest.test_case "construction paths agree" `Quick
            test_roaring_equal_construction_paths;
          Alcotest.test_case "of_bitset" `Quick test_roaring_of_bitset;
          Alcotest.test_case "builder" `Quick test_roaring_builder;
          Alcotest.test_case "byte_size" `Quick test_roaring_byte_size;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bitset_matches_model;
            prop_sparse_matches_model;
            prop_fileset_matches_model;
            prop_fileset_add_remove;
            prop_bitset_iter_sorted;
            prop_roaring_binops_match_model;
            prop_roaring_equal_subset;
            prop_roaring_inter_many;
            prop_roaring_iter_sorted;
            prop_roaring_filter;
            prop_roaring_add_remove;
            prop_roaring_byte_size_sane;
            prop_roaring_builder_matches_model;
          ] );
    ]
