(* The storage tier's correctness claim is transparency: with the
   disk-backed tier on (blocks served from the hashed fan-out store,
   postings answered through cold on-disk segments, mounts taking the
   checkpointed fast path), every externally observable result — links,
   prohibitions, persisted journal bytes outside [/.hac/store] — must be
   byte-identical to the same run with the tier off.  Differential twins
   check that claim under pinned seeds; units pin the cache budget bound,
   the fan-out layout, segment-damage fallback, fast-vs-full mount parity
   and the crash-point sweep over the tier's commit boundaries. *)

module Hac = Hac_core.Hac
module Recover = Hac_core.Recover
module Journal = Hac_core.Journal
module Link = Hac_core.Link
module Fs = Hac_vfs.Fs
module Store = Hac_store.Store
module Cache = Hac_store.Cache
module Layout = Hac_store.Layout
module Harness = Hac_crash.Harness

let seed =
  match Sys.getenv_opt "FAULT_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 1)
  | None -> 1

(* -- Differential twin: store on vs store off ------------------------------ *)

let files =
  [| "/d0/a.txt"; "/d0/b.txt"; "/nest/d1/c.txt"; "/nest/d1/d.txt"; "/nest/d2/e.txt" |]

let words = [| "red"; "green"; "blue"; "cyan" |]
let sem_dirs = [| "/s0"; "/nest/s1"; "/nest/s2" |]

let queries =
  [| "red"; "green OR blue"; "blue AND NOT cyan"; "{/s0} AND green"; "red AND blue" |]

type op =
  | Write of int * int
  | Delete of int
  | Move of int * int
  | Smkdir of int * int
  | Schquery of int * int
  | Checkpoint
  | Compact

let pp_op = function
  | Write (f, w) -> Printf.sprintf "Write(%d,%d)" f w
  | Delete f -> Printf.sprintf "Delete(%d)" f
  | Move (a, b) -> Printf.sprintf "Move(%d,%d)" a b
  | Smkdir (d, q) -> Printf.sprintf "Smkdir(%d,%d)" d q
  | Schquery (d, q) -> Printf.sprintf "Schquery(%d,%d)" d q
  | Checkpoint -> "Checkpoint"
  | Compact -> "Compact"

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun f w -> Write (f, w)) (int_bound 4) (int_bound 3));
        (2, map (fun f -> Delete f) (int_bound 4));
        (3, map2 (fun a b -> Move (a, b)) (int_bound 4) (int_bound 4));
        (3, map2 (fun d q -> Smkdir (d, q)) (int_bound 2) (int_bound 4));
        (2, map2 (fun d q -> Schquery (d, q)) (int_bound 2) (int_bound 4));
        (1, return Checkpoint);
        (1, return Compact);
      ])

let apply t op =
  let ignore_errors f = try f () with Hac_vfs.Errno.Error _ | Hac.Hac_error _ -> () in
  match op with
  | Write (f, w) ->
      ignore_errors (fun () ->
          Hac.write_file t files.(f) (Printf.sprintf "some %s text\n" words.(w)))
  | Delete f -> ignore_errors (fun () -> Hac.unlink t files.(f))
  | Move (a, b) -> ignore_errors (fun () -> Hac.rename t ~src:files.(a) ~dst:files.(b))
  | Smkdir (d, q) -> ignore_errors (fun () -> Hac.smkdir t sem_dirs.(d) queries.(q))
  | Schquery (d, q) -> ignore_errors (fun () -> Hac.schquery t sem_dirs.(d) queries.(q))
  | Checkpoint -> ignore (Hac.checkpoint t : int)
  | Compact -> ignore (Hac.compact t : int)

let observe t =
  Hac.semantic_dirs t
  |> List.map (fun dir ->
         let links =
           Hac.links t dir
           |> List.map (fun l ->
                  Printf.sprintf "%s>%s%s" l.Link.name
                    (Link.target_key l.Link.target)
                    (if l.Link.cls = Link.Permanent then "!" else ""))
           |> List.sort compare
         in
         let proh = List.sort compare (Hac.prohibited t dir) in
         Printf.sprintf "%s: [%s] proh[%s]" dir (String.concat "," links)
           (String.concat "," proh))
  |> String.concat "\n"

(* Everything under /.hac except the tier's own [store/] subtree, which
   only exists on the store-on twin by construction. *)
let persisted t =
  let fs = Hac.fs t in
  match Fs.readdir fs "/.hac" with
  | exception Hac_vfs.Errno.Error _ -> ""
  | names ->
      List.filter (fun n -> n <> "store") names
      |> List.sort compare
      |> List.map (fun n ->
             let p = "/.hac/" ^ n in
             if Fs.is_file fs p then Printf.sprintf "%s:%s" n (Fs.read_file fs p) else n)
      |> String.concat "\n"

let fresh () =
  let t = Hac.create ~stem:false () in
  List.iter (Hac.mkdir_p t) [ "/d0"; "/nest/d1"; "/nest/d2" ];
  t

let rec batches = function
  | [] -> []
  | ops ->
      let rec take n = function
        | x :: rest when n > 0 ->
            let h, t = take (n - 1) rest in
            (x :: h, t)
        | rest -> ([], rest)
      in
      let batch, rest = take 3 ops in
      batch :: batches rest

(* Twin run: A reads content blocks and cold postings through the tier, B
   runs bare; observable state and the persisted metadata outside the
   tier's directory must be byte-identical after every settle. *)
let twin_run ~fail ops =
  let a = fresh () and b = fresh () in
  (* A small budget so the run actually exercises eviction and the
     oversized-value skip, not just a cache that swallows everything. *)
  Hac.enable_store ~budget:256 a;
  List.iteri
    (fun i batch ->
      List.iter
        (fun op ->
          apply a op;
          apply b op)
        batch;
      Hac.settle a;
      Hac.settle b;
      if observe a <> observe b then
        fail
          (Printf.sprintf "observable divergence (batch %d):\n%s\nvs\n%s" i (observe a)
             (observe b));
      if persisted a <> persisted b then
        fail
          (Printf.sprintf "persisted divergence (batch %d):\n%s\nvs\n%s" i (persisted a)
             (persisted b)))
    (batches ops);
  (a, b)

let seeded_twins () =
  List.iter
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let ops =
        QCheck.Gen.generate1 ~rand QCheck.Gen.(list_size (int_range 30 60) gen_op)
      in
      ignore (pp_op : op -> string);
      let a, b = twin_run ops ~fail:Alcotest.fail in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: final state" seed)
        (observe b) (observe a))
    [ 1; 42; 1999 ]

(* -- Layout units ---------------------------------------------------------- *)

let test_layout_fanout () =
  let key = Layout.key_of_content "some red text\n" in
  Alcotest.(check int) "key is 16 hex chars" 16 (String.length key);
  Alcotest.(check string)
    "key is deterministic" key
    (Layout.key_of_content "some red text\n");
  Alcotest.(check bool)
    "distinct content, distinct key" false
    (key = Layout.key_of_content "some blue text\n");
  let p = Layout.block_path key in
  let expect =
    Printf.sprintf "%s/%s/%s/%s" Layout.blocks_root (String.sub key 0 2)
      (String.sub key 2 2) key
  in
  Alcotest.(check string) "two-level fan-out path" expect p

(* -- Cache units ----------------------------------------------------------- *)

let test_cache_lru () =
  let c = Cache.create ~budget:10 in
  Cache.insert c "a" "xxxx";
  Cache.insert c "b" "yyyy";
  Alcotest.(check int) "two resident" 2 (Cache.entries c);
  (* Touch [a] so [b] is the LRU victim when [c] arrives. *)
  Alcotest.(check bool) "hit a" true (Cache.find c "a" <> None);
  Cache.insert c "c" "zzzz";
  Alcotest.(check bool) "b evicted" true (Cache.find c "b" = None);
  Alcotest.(check bool) "a survives" true (Cache.find c "a" <> None);
  Alcotest.(check bool) "budget bound holds" true (Cache.bytes c <= Cache.budget c);
  Alcotest.(check int) "one eviction counted" 1 (Cache.evictions c)

let test_cache_oversized_skip () =
  let c = Cache.create ~budget:8 in
  Cache.insert c "big" (String.make 64 'x');
  Alcotest.(check int) "oversized value never admitted" 0 (Cache.entries c);
  Alcotest.(check int) "no bytes charged" 0 (Cache.bytes c);
  Cache.insert c "fit" "ok";
  Alcotest.(check bool) "small value still admitted" true (Cache.find c "fit" <> None)

let test_cache_peak_tracks_high_water () =
  let c = Cache.create ~budget:16 in
  Cache.insert c "a" (String.make 12 'a');
  Cache.insert c "b" (String.make 12 'b');
  Alcotest.(check bool) "peak >= largest resident set" true (Cache.peak_bytes c >= 12);
  Alcotest.(check bool) "peak never exceeds budget" true
    (Cache.peak_bytes c <= Cache.budget c)

(* The acceptance bound at unit scale: settle a corpus 4x larger than the
   cache budget; the gauge must stay under budget the whole way. *)
let test_cache_bounded_settle () =
  let t = fresh () in
  let budget = 1024 in
  Hac.enable_store ~budget t;
  let body i = Printf.sprintf "file %04d holds %s words\n" i (String.make 96 'w') in
  let n = (4 * budget / String.length (body 0)) + 4 in
  for i = 1 to n do
    Hac.write_file t (Printf.sprintf "/d0/f%04d.txt" i) (body i)
  done;
  Hac.settle t;
  for i = 1 to n do
    ignore (Hac.read_file t (Printf.sprintf "/d0/f%04d.txt" i) : string)
  done;
  match Hac.store t with
  | None -> Alcotest.fail "store vanished"
  | Some store ->
      let c = Store.cache store in
      Alcotest.(check bool)
        (Printf.sprintf "resident %d <= budget %d" (Cache.bytes c) budget)
        true
        (Cache.bytes c <= budget);
      Alcotest.(check bool)
        (Printf.sprintf "peak %d <= budget %d" (Cache.peak_bytes c) budget)
        true
        (Cache.peak_bytes c <= budget)

(* -- Mount paths ----------------------------------------------------------- *)

(* A deterministic corpus builder both mount tests share: same script on
   a fresh device yields byte-identical trees. *)
let build_corpus fs =
  let t = Hac.of_fs ~stem:false fs in
  List.iter (Hac.mkdir_p t) [ "/d0"; "/nest/d1"; "/nest/d2" ];
  Hac.enable_store ~budget:4096 t;
  Array.iteri
    (fun i f -> Hac.write_file t f (Printf.sprintf "some %s text\n" words.(i mod 4)))
    files;
  Hac.smkdir t "/s0" "red";
  Hac.smkdir t "/nest/s1" "green OR blue";
  Hac.settle t;
  ignore (Hac.checkpoint t : int);
  t

let test_fast_mount_matches_full () =
  let fs = Fs.create () in
  let t0 = build_corpus fs in
  (* Post-checkpoint delta: an overwrite, a new file, a file rename. *)
  Hac.write_file t0 "/d0/a.txt" "now cyan here\n";
  Hac.write_file t0 "/nest/d2/late.txt" "a late blue entry\n";
  Hac.rename t0 ~src:"/d0/b.txt" ~dst:"/d0/bb.txt";
  Hac.settle t0;
  let expected = observe t0 in
  Hac.shutdown ~graceful:false t0;
  let t, mode = Recover.mount ~stem:false ~budget:4096 fs in
  Alcotest.(check bool) "clean chain takes the fast path" true (mode = `Fast);
  Alcotest.(check string) "fast mount reproduces the acknowledged state" expected
    (observe t);
  (match Hac.store t with
  | None -> Alcotest.fail "fast mount did not attach the store"
  | Some store ->
      Alcotest.(check bool) "postings segments survived" true
        (Store.has_segments store));
  (* Idempotence: mounting the remounted device again is still fast and
     still lands on the same state. *)
  Hac.shutdown ~graceful:false t;
  let t2, mode2 = Recover.mount ~stem:false ~budget:4096 fs in
  Alcotest.(check bool) "remount is fast again" true (mode2 = `Fast);
  Alcotest.(check string) "remount state is stable" expected (observe t2)

let test_mount_falls_back_on_damage () =
  (* Damaged document table: the fast precondition fails, the mount must
     land on the full-replay oracle and still reproduce the state. *)
  let fs = Fs.create () in
  let t0 = build_corpus fs in
  let expected = observe t0 in
  Hac.shutdown ~graceful:false t0;
  Fs.write_file fs "/.hac/store/docs.tbl" "garbage\n";
  let t, mode = Recover.mount ~stem:false ~budget:4096 fs in
  Alcotest.(check bool) "damaged docs.tbl forces full replay" true (mode = `Full);
  Alcotest.(check string) "full fallback reproduces the state" expected (observe t);
  Hac.shutdown ~graceful:false t;
  (* Torn journal tail: corrupt records refuse the fast path too. *)
  let fs2 = Fs.create () in
  let t1 = build_corpus fs2 in
  let expected2 = observe t1 in
  Hac.shutdown ~graceful:false t1;
  let seg = Journal.segment_path (Journal.current_epoch fs2) in
  Fs.append_file fs2 seg "torn nonsense not a sealed record\n";
  let t3, mode3 = Recover.mount ~stem:false ~budget:4096 fs2 in
  Alcotest.(check bool) "corrupt tail forces full replay" true (mode3 = `Full);
  Alcotest.(check string) "state survives the torn tail" expected2 (observe t3)

(* -- Segment damage: cold lookups degrade to the verified universe --------- *)

let test_segment_damage_degrades_safely () =
  let fs = Fs.create () in
  let t0 = build_corpus fs in
  Hac.shutdown ~graceful:false t0;
  let t, mode = Recover.mount ~stem:false ~budget:4096 fs in
  Alcotest.(check bool) "precondition: fast mount" true (mode = `Fast);
  (* Scribble over every postings segment AFTER the directory loaded —
     in place, through the inode, exactly like media rot — so slice reads
     fault and the term lookup degrades to the universe. *)
  (match Fs.readdir fs Layout.segs_root with
  | exception Hac_vfs.Errno.Error _ -> Alcotest.fail "no segments directory"
  | names ->
      List.iter
        (fun n ->
          if Filename.check_suffix n ".seg" then begin
            let path = Layout.segs_root ^ "/" ^ n in
            let ino = (Fs.lstat fs path).Fs.st_ino in
            let len = Fs.size_ino fs ino in
            ignore (Fs.pwrite_ino fs ino ~path ~pos:0 (String.make len '\255') : int)
          end)
        names);
  (* A fresh query evaluated through the damaged cold path must still
     produce exactly the verified answer a bare instance computes. *)
  Hac.smkdir t "/probe" "cyan";
  Hac.settle t;
  let fs2 = Fs.create () in
  let oracle = build_corpus fs2 in
  Hac.smkdir oracle "/probe" "cyan";
  Hac.settle oracle;
  let links u =
    Hac.links u "/probe"
    |> List.map (fun l -> Link.target_key l.Link.target)
    |> List.sort compare
  in
  Alcotest.(check (list string))
    "damaged segments answer through verification" (links oracle) (links t);
  match Hac.store t with
  | None -> Alcotest.fail "store missing"
  | Some store ->
      let i = Store.instr store in
      Alcotest.(check bool) "damage was observed and counted" true
        (Hac_obs.Metrics.count i.Store.seg_damaged > 0)

(* -- Crash-point sweep over the tier's commit boundaries ------------------- *)

let test_store_crash_sweep () =
  let o = Harness.run_store ~seed () in
  if o.Harness.st_violations <> [] then
    Alcotest.fail (Harness.summary_store o);
  Alcotest.(check bool) "swept a real matrix" true (o.Harness.st_points > 50);
  Alcotest.(check bool) "merge commit points covered" true (o.Harness.st_merge_points > 0);
  Alcotest.(check bool) "fast path actually exercised" true (o.Harness.st_fast_mounts > 0);
  Alcotest.(check bool) "boundary states compared" true (o.Harness.st_boundary_points > 0)

let () =
  Alcotest.run "store"
    [
      ( "layout",
        [ Alcotest.test_case "hashed fan-out" `Quick test_layout_fanout ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction order" `Quick test_cache_lru;
          Alcotest.test_case "oversized skip" `Quick test_cache_oversized_skip;
          Alcotest.test_case "peak high-water" `Quick test_cache_peak_tracks_high_water;
          Alcotest.test_case "bounded settle" `Quick test_cache_bounded_settle;
        ] );
      ( "twin",
        [ Alcotest.test_case "store on/off equivalence" `Quick seeded_twins ] );
      ( "mount",
        [
          Alcotest.test_case "fast path parity" `Quick test_fast_mount_matches_full;
          Alcotest.test_case "damage falls back" `Quick test_mount_falls_back_on_damage;
        ] );
      ( "degrade",
        [
          Alcotest.test_case "segment damage verified away" `Quick
            test_segment_damage_degrades_safely;
        ] );
      ( "crash",
        [ Alcotest.test_case "store sweep no violations" `Quick test_store_crash_sweep ]
      );
    ]
