(* Chaos harness for the concurrent serving layer.

   N client sessions drive deterministic trace workloads through the
   server while the fault injector degrades a mounted namespace (latency,
   then outage), the simulated device swallows fsyncs, and the virtual
   clock expires deadlines.  The contract under all of it:

   - every submitted op resolves to exactly one outcome — a reply or an
     explicit rejection with a retry-after hint; never a hang or a silent
     drop;
   - every acknowledged write was durable when acknowledged (the device's
     frontier covered the op log at ack time);
   - every read is prefix-consistent: replaying the commit log through a
     fresh sequential engine (the Ernst-style serial spec) reproduces
     each read at its snapshot's prefix;
   - crash states cut at arbitrary durable prefixes of the op log recover
     into a working instance.

   The FAULT_SEED environment variable (set by the serve-suite alias,
   which runs this binary under three fixed seeds) varies the injector
   weather, the device's damage offsets and the workload interleaving.
   Every assertion must hold under any seed. *)

module Fs = Hac_vfs.Fs
module Hac = Hac_core.Hac
module Recover = Hac_core.Recover
module Clock = Hac_fault.Clock
module Fault = Hac_fault.Fault
module Store = Hac_fault.Store
module Breaker = Hac_fault.Breaker
module Namespace = Hac_remote.Namespace
module Sim = Hac_crash.Sim
module Corpus = Hac_workload.Corpus
module Prng = Hac_workload.Prng
module Serveload = Hac_workload.Serveload
module Msg = Hac_serve.Msg
module Snapshot = Hac_serve.Snapshot
module Session = Hac_serve.Session
module Admission = Hac_serve.Admission
module Server = Hac_serve.Server
module Spec = Hac_serve.Spec
module Ctx = Hac_obs.Ctx
module Flight = Hac_obs.Flight
module Slo = Hac_obs.Slo

let seed =
  match Sys.getenv_opt "FAULT_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 1)
  | None -> 1

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -- the rig ---------------------------------------------------------------- *)

let markers = [| "markeralpha"; "markerbeta"; "markergamma"; "markerdelta" |]

let semdir_specs =
  [
    ("/ws/q-alpha", "markeralpha");
    ("/ws/q-beta", "markerbeta");
    ("/ws/q-gamma", "markergamma");
    ("/ws/q-delta", "markerdelta");
  ]

let remote_docs =
  [
    ("north.txt", "stat://rns/north", "remdoc north wind\n");
    ("south.txt", "stat://rns/south", "remdoc south wind\n");
  ]

type rig = {
  hac : Hac.t;
  corpus : Corpus.t;
  files : string array;
  semdirs : string array;
  store : Store.t option;
  inj : Fault.t option;
}

(* Everything the twin must share with the served instance derives from
   the seed alone: corpus tree, planted markers, semantic directories.
   The store and the faulty mount exist only on the served side. *)
let build ?(store = false) ?(mount = false) ~seed () =
  let fs = Fs.create () in
  let st =
    if store then begin
      let s = Store.create ~seed () in
      Fs.attach_disk fs s;
      Some s
    end
    else None
  in
  let corpus = Corpus.make ~seed () in
  let files = Corpus.build_tree corpus fs ~root:"/ws" Corpus.small_tree in
  Array.iteri
    (fun i w -> ignore (Corpus.plant fs ~paths:files ~word:w ~count:(4 + (2 * i))))
    markers;
  Fs.mkdir_p fs "/srv";
  let hac = Hac.of_fs fs in
  List.iter (fun (p, q) -> Hac.smkdir hac p q) semdir_specs;
  let inj =
    if mount then begin
      let clock = Hac.clock hac in
      let inj = Fault.create ~seed ~clock () in
      let policy = { Namespace.default_policy with call_budget = 1.0; max_retries = 1 } in
      let ns =
        Namespace.with_policy ~policy ~metrics:(Hac.metrics hac) ~clock
          (Namespace.with_faults inj (Namespace.static ~ns_id:"rns" remote_docs))
      in
      Hac.mkdir hac "/remote";
      Hac.smount hac "/remote" ns;
      Hac.smkdir hac "/rq" "remdoc";
      Some inj
    end
    else None
  in
  Hac.settle hac;
  {
    hac;
    corpus;
    files = Array.of_list files;
    semdirs = Array.of_list (List.map fst semdir_specs);
    store = st;
    inj;
  }

let chaos_config =
  {
    Server.default_config with
    domains = 2;
    max_batch = 12;
    admission = { Admission.default with queue_bound = 32; slo_s = 20.0; seed };
    settle_budget_s = 1.5;
    fsync_retries = 2;
  }

(* Paths outside the twin: the remote-facing semantic directory and the
   mount point.  Reads of them are served (stale when the namespace is
   down) but stay out of the serial-spec observation set. *)
let remote_facing p =
  let pre q = String.length p >= String.length q && String.sub p 0 (String.length q) = q in
  pre "/rq" || pre "/remote"

(* -- chaos driver ----------------------------------------------------------- *)

type chaos_outcome = {
  tickets : Msg.ticket list;
  ack_durable_violations : int;  (** Acks released while not durable. *)
}

let run_chaos ~mount ~seed =
  let rig = build ~store:true ~mount ~seed () in
  let clock = Hac.clock rig.hac in
  let server = Server.create ~config:chaos_config rig.hac in
  let profile = { Serveload.default with ops_per_session = 30 } in
  let n_sessions = 6 in
  let streams =
    Array.init n_sessions (fun i ->
        ref
          (List.map Msg.of_workload
             (Serveload.session_ops profile ~corpus:rig.corpus ~seed ~session:i
                ~files:rig.files ~semdirs:rig.semdirs ~fresh_root:"/srv")))
  in
  let tickets = ref [] in
  let submit name op = tickets := Server.submit server ~session:name op :: !tickets in
  let g = Prng.make ~seed:(seed lxor 0xC0FFEE) in
  let tick = ref 0 in
  let acked_before = ref 0 in
  let ack_durable_violations = ref 0 in
  let pump_and_check () =
    Server.pump server;
    (* The headline durability invariant, checked at the moment it must
       hold: new acks imply the frontier covered the whole op log. *)
    let acked = (Server.stats server).Server.acked in
    (match rig.store with
    | Some st ->
        if acked > !acked_before && Store.durable_count st <> Store.op_count st then
          incr ack_durable_violations
    | None -> ());
    acked_before := acked
  in
  while Array.exists (fun r -> !r <> []) streams do
    incr tick;
    (match rig.inj with
    | Some inj ->
        if !tick = 30 then Fault.set_plans inj [ Fault.Latency 3.0 ];
        if !tick = 60 then Fault.set_plans inj [ Fault.Outage ];
        if !tick = 90 then begin
          Fault.clear inj;
          (* Let the breaker's probe interval pass so recovery can begin. *)
          Clock.advance clock (Breaker.default_config.Breaker.probe_interval +. 1.0)
        end
    | None -> ());
    (match rig.store with
    | Some st ->
        if !tick = 45 || !tick = 100 then Store.drop_fsyncs st 3
    | None -> ());
    for _ = 0 to Prng.int g 2 do
      let nonempty = ref [] in
      Array.iteri (fun i r -> if !r <> [] then nonempty := (i, r) :: !nonempty) streams;
      match !nonempty with
      | [] -> ()
      | l ->
          let i, r = List.nth l (Prng.int g (List.length l)) in
          (match !r with
          | [] -> ()
          | op :: rest ->
              r := rest;
              submit (Printf.sprintf "s%d" i) op)
    done;
    if mount && !tick mod 10 = 0 then submit "rq-watch" (Msg.R (Msg.Links "/rq"));
    if !tick mod 3 = 0 then pump_and_check ();
    Clock.advance clock 0.05
  done;
  (match rig.inj with Some inj -> Fault.clear inj | None -> ());
  Server.drain server;
  Server.stop server;
  (server, rig, { tickets = List.rev !tickets; ack_durable_violations = !ack_durable_violations })

let assert_all_resolved outcome =
  List.iter
    (fun (tk : Msg.ticket) ->
      match tk.outcome with
      | None -> Alcotest.fail ("unresolved ticket: " ^ Msg.describe tk.op)
      | Some (Msg.Rejected { retry_after_s; _ }) ->
          check_bool "retry-after non-negative" true (retry_after_s >= 0.0)
      | Some (Msg.Replied _) -> ())
    outcome.tickets

(* The tentpole guarantee: every ticket carries a distinct trace id, and a
   replied ticket's per-stage breakdown telescopes to exactly its reported
   latency — admission to final ack, no gaps, no double counting. *)
let known_stages = [ "admission"; "queue"; "eval"; "settle"; "fsync" ]

let assert_trace_breakdowns outcome =
  let ids = Hashtbl.create 256 in
  List.iter
    (fun (tk : Msg.ticket) ->
      let id = Ctx.id tk.trace in
      check_bool "trace id positive" true (id > 0);
      check_bool ("trace id unique: " ^ Ctx.id_hex tk.trace) false (Hashtbl.mem ids id);
      Hashtbl.replace ids id ();
      List.iter
        (fun (name, d) ->
          check_bool ("known stage: " ^ name) true (List.mem name known_stages);
          check_bool ("stage non-negative: " ^ name) true (d >= -1e-9))
        (Ctx.stages tk.trace);
      match tk.outcome with
      | Some (Msg.Replied { latency_s; _ }) ->
          check_bool "replied ticket has a breakdown" true (Ctx.stages tk.trace <> []);
          let total = Ctx.total tk.trace in
          check_bool
            (Printf.sprintf "stages (%.6f) sum to latency (%.6f) for %s" total latency_s
               (Msg.describe tk.op))
            true
            (Float.abs (total -. latency_s) <= 1e-6)
      | Some (Msg.Rejected _) ->
          check_bool "rejected ticket charged admission" true
            (Ctx.find tk.trace "admission" <> None)
      | None -> ())
    outcome.tickets

let assert_spec server rig outcome =
  let observations =
    List.filter_map Spec.observe outcome.tickets
    |> List.filter (fun (ob : Spec.observation) ->
           not (remote_facing (Msg.path_of_read ob.Spec.ob_read)))
  in
  check_bool "spec has observations" true (observations <> []);
  let violations =
    Spec.check
      ~flight:(Server.flight server)
      ~build:(fun () -> (build ~seed ()).hac)
      ~writes:(Server.committed_writes server) ~observations ()
  in
  ignore rig;
  Alcotest.(check (list string)) "zero snapshot-consistency violations" [] violations

let assert_crash_recovery rig =
  match rig.store with
  | None -> ()
  | Some st ->
      (* Faults were cleared before the drain, whose last settle ends in a
         durability barrier: the whole log must be durable again. *)
      check_int "drain restored full durability" (Store.op_count st) (Store.durable_count st);
      let total = Store.op_count st in
      let cuts =
        List.sort_uniq compare
          [ Store.durable_count st; total / 3; total / 2; 2 * total / 3; total ]
        |> List.filter (fun c -> c > 0 && c <= total)
      in
      List.iter
        (fun cut ->
          let fs' = Sim.replay (Store.ops ~upto:cut st) in
          let h2 = Hac.of_fs fs' in
          let restored = Recover.reload h2 in
          check_bool
            (Printf.sprintf "crash at op %d recovers" cut)
            true (restored >= 0);
          (* Recovery must leave a settleable instance: a settle (and a
             second, idempotent one) completes without raising. *)
          Hac.settle h2;
          Hac.settle h2)
        cuts

(* -- chaos tests ------------------------------------------------------------ *)

let test_chaos_local () =
  let server, rig, outcome = run_chaos ~mount:false ~seed in
  assert_all_resolved outcome;
  assert_trace_breakdowns outcome;
  let st = Server.stats server in
  check_bool "commits happened" true (st.Server.commits > 0);
  check_bool "acks released" true (st.Server.acked > 0);
  check_bool "load was shed" true (st.Server.shed > 0);
  check_bool "stale reads served" true (st.Server.stale_reads > 0);
  check_int "acks only when durable" 0 outcome.ack_durable_violations;
  assert_spec server rig outcome;
  assert_crash_recovery rig

let test_chaos_mounted () =
  let server, rig, outcome = run_chaos ~mount:true ~seed in
  assert_all_resolved outcome;
  assert_trace_breakdowns outcome;
  let st = Server.stats server in
  check_bool "commits happened" true (st.Server.commits > 0);
  check_bool "acks released" true (st.Server.acked > 0);
  check_bool "load was shed" true (st.Server.shed > 0);
  check_int "acks only when durable" 0 outcome.ack_durable_violations;
  (* The mounted namespace failed for a stretch of the run: degradation
     must have served remote-facing entries stale rather than erroring. *)
  let rq_replies =
    List.filter_map
      (fun (tk : Msg.ticket) ->
        match (tk.op, tk.outcome) with
        | Msg.R (Msg.Links "/rq"), Some (Msg.Replied { reply = Msg.Linkset rows; _ }) ->
            Some rows
        | _ -> None)
      outcome.tickets
  in
  check_bool "remote-facing reads answered" true (rq_replies <> []);
  assert_spec server rig outcome;
  assert_crash_recovery rig

(* -- focused units ---------------------------------------------------------- *)

let test_snapshot_isolation () =
  let rig = build ~seed () in
  let server = Server.create rig.hac in
  (* A write is invisible to reads in the same batch: they run against
     the pre-batch snapshot. *)
  let w = Server.submit server ~session:"a" (Msg.W (Msg.Write ("/srv/x.txt", "hello\n"))) in
  let r1 = Server.submit server ~session:"b" (Msg.R (Msg.Read "/srv/x.txt")) in
  Server.pump server;
  (match r1.outcome with
  | Some (Msg.Replied { reply = Msg.Nack _; seq = 0; _ }) -> ()
  | _ -> Alcotest.fail "same-batch read must see the pre-batch snapshot");
  (match w.outcome with
  | Some (Msg.Replied { reply = Msg.Done; seq = 1; _ }) -> ()
  | _ -> Alcotest.fail "write must ack after the batch settles");
  (* The next batch's snapshot reflects the commit. *)
  let r2 = Server.submit server ~session:"b" (Msg.R (Msg.Read "/srv/x.txt")) in
  Server.pump server;
  (match r2.outcome with
  | Some (Msg.Replied { reply = Msg.Data "hello\n"; seq = 1; stale = false; _ }) -> ()
  | _ -> Alcotest.fail "next-batch read must see the committed write");
  Server.stop server

let test_semantic_reads_through_server () =
  let rig = build ~seed () in
  let server = Server.create rig.hac in
  let links = Server.submit server ~session:"a" (Msg.R (Msg.Links "/ws/q-alpha")) in
  Server.pump server;
  (match links.outcome with
  | Some (Msg.Replied { reply = Msg.Linkset rows; _ }) ->
      check_int "planted files all linked" 4 (List.length rows)
  | _ -> Alcotest.fail "links read must resolve");
  (* A new semantic directory created through the server materializes in
     the next snapshot. *)
  let mk = Server.submit server ~session:"a" (Msg.W (Msg.Smkdir ("/srv/q", "markerbeta"))) in
  Server.pump server;
  (match mk.outcome with
  | Some (Msg.Replied { reply = Msg.Done; _ }) -> ()
  | _ -> Alcotest.fail "smkdir must ack");
  let links2 = Server.submit server ~session:"a" (Msg.R (Msg.Links "/srv/q")) in
  Server.pump server;
  (match links2.outcome with
  | Some (Msg.Replied { reply = Msg.Linkset rows; _ }) ->
      (* Scope of /srv/q is its parent's subtree — no /ws files in it. *)
      check_int "fresh semdir evaluated in scope" 0 (List.length rows)
  | _ -> Alcotest.fail "links of the new semdir must resolve");
  Server.stop server

let test_queue_bound_sheds () =
  let rig = build ~seed () in
  let config =
    {
      Server.default_config with
      admission = { Admission.default with queue_bound = 4; seed };
      max_batch = 4;
    }
  in
  let server = Server.create ~config rig.hac in
  let results =
    List.init 10 (fun i ->
        Server.submit server
          ~session:(Printf.sprintf "s%d" i)
          (Msg.R (Msg.Read rig.files.(0))))
  in
  let shed =
    List.filter
      (fun (tk : Msg.ticket) ->
        match tk.outcome with
        | Some (Msg.Rejected { reason = Msg.Queue_full; retry_after_s }) ->
            check_bool "retry hint positive" true (retry_after_s > 0.0);
            true
        | _ -> false)
      results
  in
  check_int "everything past the bound shed" 6 (List.length shed);
  Server.drain server;
  List.iter
    (fun (tk : Msg.ticket) -> check_bool "resolved" true (tk.outcome <> None))
    results;
  Server.stop server

let test_session_suspension () =
  let rig = build ~seed () in
  let config =
    {
      Server.default_config with
      admission =
        {
          Admission.default with
          queue_bound = 1;
          seed;
          session_breaker =
            { Hac_fault.Breaker.failure_threshold = 3; probe_interval = 50.0; success_to_close = 1 };
        };
    }
  in
  let server = Server.create ~config rig.hac in
  (* One queued op fills the queue; the same session hammering after that
     accumulates sheds until its breaker suspends it. *)
  ignore (Server.submit server ~session:"noisy" (Msg.R (Msg.Read rig.files.(0))));
  let rec hammer n acc =
    if n = 0 then List.rev acc
    else
      let tk = Server.submit server ~session:"noisy" (Msg.R (Msg.Read rig.files.(0))) in
      hammer (n - 1) (tk :: acc)
  in
  let rejected = hammer 6 [] in
  let reasons =
    List.filter_map
      (fun (tk : Msg.ticket) ->
        match tk.outcome with
        | Some (Msg.Rejected { reason; _ }) -> Some reason
        | _ -> None)
      rejected
  in
  check_int "all hammered ops rejected" 6 (List.length reasons);
  check_bool "suspension kicked in" true (List.mem Msg.Session_suspended reasons);
  check_bool "session breaker open" true
    (Session.breaker_state (Server.session server "noisy") = Breaker.Open);
  Server.stop server

let test_degraded_sheds_writes_serves_reads () =
  let rig = build ~store:true ~seed () in
  let config = { chaos_config with fsync_retries = 0 } in
  let server = Server.create ~config rig.hac in
  let st = Option.get rig.store in
  (* First batch commits a write cleanly. *)
  ignore (Server.submit server ~session:"a" (Msg.W (Msg.Write ("/srv/a.txt", "one\n"))));
  Server.pump server;
  (* Device stops honouring barriers: the next write commits but cannot
     ack; the server degrades. *)
  Store.drop_fsyncs st 1000;
  let w = Server.submit server ~session:"a" (Msg.W (Msg.Write ("/srv/b.txt", "two\n"))) in
  Server.pump server;
  check_bool "degraded after stall" true (Server.is_degraded server);
  check_bool "write held, not acked" true (w.outcome = None);
  (* Degraded: writes shed with retry-after, reads still served — stale. *)
  let w2 = Server.submit server ~session:"a" (Msg.W (Msg.Write ("/srv/c.txt", "three\n"))) in
  (match w2.outcome with
  | Some (Msg.Rejected { reason = Msg.Degraded_writes; _ }) -> ()
  | _ -> Alcotest.fail "degraded server must shed writes at admission");
  let r = Server.submit server ~session:"b" (Msg.R (Msg.Read "/srv/a.txt")) in
  Server.pump server;
  (match r.outcome with
  | Some (Msg.Replied { reply = Msg.Data "one\n"; stale = true; _ }) -> ()
  | _ -> Alcotest.fail "degraded server must serve stale reads");
  (* The drain resolves the held write explicitly — no hangs, ever. *)
  Server.drain server;
  (match w.outcome with
  | Some (Msg.Replied { reply = Msg.Nack _; _ }) -> ()
  | _ -> Alcotest.fail "held write must resolve as explicit Nack");
  Server.stop server

let test_slo_breach_degrades_and_dumps_flight () =
  (* A stalled environment (the virtual clock jumps while writes sit in
     queue) blows a tight write objective: the burn-rate alert must fire,
     degrade the server with cause "slo", and freeze a readable flight
     dump. *)
  let rig = build ~seed () in
  let clock = Hac.clock rig.hac in
  let config =
    {
      Server.default_config with
      slo_objectives = [ { Slo.op = "write"; latency_s = 0.5; goal = 0.9 } ];
    }
  in
  let server = Server.create ~config rig.hac in
  let dir =
    let f = Filename.temp_file "hacslo" "" in
    Sys.remove f;
    Sys.mkdir f 0o700;
    f
  in
  Flight.set_auto_dump (Server.flight server) (Some dir);
  let writes =
    List.init 4 (fun i ->
        Server.submit server
          ~session:(Printf.sprintf "w%d" i)
          (Msg.W (Msg.Write (Printf.sprintf "/srv/slo%d.txt" i, "x\n"))))
  in
  Clock.advance clock 2.0;
  Server.pump server;
  List.iter
    (fun (tk : Msg.ticket) ->
      match tk.outcome with
      | Some (Msg.Replied { latency_s; _ }) ->
          check_bool "the stall shows in the latency" true (latency_s > 0.5)
      | _ -> Alcotest.fail "stalled write must still resolve")
    writes;
  check_bool "burn-rate alert counted" true
    (match Hac_obs.Metrics.find (Hac.metrics rig.hac) "slo.write.alerts" with
    | Some (Hac_obs.Metrics.Counter_value n) -> n >= 1
    | _ -> false);
  check_bool "server degraded" true (Server.is_degraded server);
  check_bool "degradation attributed to the slo cause" true
    (List.mem "slo" (Server.degraded_causes server));
  (* The breach froze the flight ring; the dump must read back. *)
  let dumps =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> String.length f >= 7 && String.sub f 0 7 = "flight-")
  in
  check_bool "flight dump written" true (dumps <> []);
  (match Flight.load (Filename.concat dir (List.hd dumps)) with
  | Ok d ->
      check_bool "dump names the slo breach" true
        (let r = d.Flight.reason in
         let n = String.length "slo breach" in
         String.length r >= n && String.sub r 0 n = "slo breach");
      check_bool "dump carries the run-up" true (d.Flight.events <> [])
  | Error e -> Alcotest.fail ("flight dump unreadable: " ^ e));
  (* Once the burst ages out of the fast window the server recovers. *)
  Clock.advance clock 301.0;
  let ok = Server.submit server ~session:"r" (Msg.R (Msg.Read rig.files.(0))) in
  Server.pump server;
  check_bool "read resolved during/after degradation" true (ok.outcome <> None);
  check_bool "slo cause cleared once the window is clean" false
    (List.mem "slo" (Server.degraded_causes server));
  Server.drain server;
  Server.stop server;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* -- deadline-slack accounting regression (satellite) ----------------------- *)

let test_policy_slack_recorded_on_failures () =
  let clock = Clock.create () in
  let inj = Fault.create ~seed ~clock () in
  let reg = Hac_obs.Metrics.create () in
  let policy = { Namespace.default_policy with max_retries = 1 } in
  let ns =
    Namespace.with_policy ~policy ~metrics:reg ~clock
      (Namespace.with_faults inj
         (Namespace.static ~ns_id:"slackns" [ ("a.txt", "stat://slackns/a", "alpha\n") ]))
  in
  ignore (ns.Namespace.search "alpha");
  Fault.set_plans inj [ Fault.Fail_times 2 ];
  (try ignore (ns.Namespace.search "alpha") with Namespace.Unavailable _ -> ());
  match Hac_obs.Metrics.find reg "ns.slackns.deadline_slack_s" with
  | Some (Hac_obs.Metrics.Histogram_value s) ->
      (* 1 clean attempt + 2 failed attempts: the histogram must reflect
         every attempt, not just the successes. *)
      check_int "failed attempts observed too" 3 s.Hac_obs.Metrics.count
  | _ -> Alcotest.fail "deadline_slack_s histogram missing"

let () =
  Alcotest.run "serve"
    [
      ( "server",
        [
          Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
          Alcotest.test_case "semantic reads" `Quick test_semantic_reads_through_server;
          Alcotest.test_case "queue bound sheds" `Quick test_queue_bound_sheds;
          Alcotest.test_case "session suspension" `Quick test_session_suspension;
          Alcotest.test_case "degraded mode" `Quick test_degraded_sheds_writes_serves_reads;
          Alcotest.test_case "slo breach degrades and dumps flight" `Quick
            test_slo_breach_degrades_and_dumps_flight;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "local storm" `Quick test_chaos_local;
          Alcotest.test_case "mounted storm" `Quick test_chaos_mounted;
        ] );
      ( "policy",
        [
          Alcotest.test_case "slack recorded on failures" `Quick
            test_policy_slack_recorded_on_failures;
        ] );
    ]
