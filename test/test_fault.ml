(* Tests for the fault subsystem (clock, backoff, breaker, injector), the
   namespace resilience policy, graceful degradation of semantic
   directories, and crash-safe journal hardening.

   The FAULT_SEED environment variable (set by the fault-suite alias, which
   runs this binary under three fixed seeds) varies the deterministic
   randomness: jitter, flaky-plan draws and the corruption keystream.  Every
   assertion below must hold under any seed. *)

module Clock = Hac_fault.Clock
module Backoff = Hac_fault.Backoff
module Breaker = Hac_fault.Breaker
module Fault = Hac_fault.Fault
module Namespace = Hac_remote.Namespace
module Hac = Hac_core.Hac
module Recover = Hac_core.Recover
module Journal = Hac_core.Journal
module Link = Hac_core.Link
module Fs = Hac_vfs.Fs

let seed =
  match Sys.getenv_opt "FAULT_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 1)
  | None -> 1

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_list = Alcotest.(check (list string))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* -- clock ----------------------------------------------------------------- *)

let test_clock () =
  let c = Clock.create () in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Clock.now c);
  Clock.advance c 1.5;
  Clock.advance c 0.25;
  Alcotest.(check (float 1e-9)) "accumulates" 1.75 (Clock.now c);
  Clock.advance c (-5.0);
  Alcotest.(check (float 1e-9)) "never goes backwards" 1.75 (Clock.now c)

(* -- backoff --------------------------------------------------------------- *)

let test_backoff_schedule () =
  let b = Backoff.default in
  (* Nominal delays grow geometrically and jitter stays within its band. *)
  let nominal n = min (b.Backoff.base *. (b.Backoff.factor ** float n)) b.Backoff.max_delay in
  for attempt = 0 to 9 do
    let d = Backoff.delay ~seed b ~attempt in
    let nom = nominal attempt in
    let slack = b.Backoff.jitter *. nom +. 1e-9 in
    check_bool
      (Printf.sprintf "attempt %d in [%.3f, %.3f] (got %.3f)" attempt (nom -. slack)
         (nom +. slack) d)
      true
      (d >= nom -. slack && d <= nom +. slack)
  done;
  (* The cap binds eventually. *)
  let late = Backoff.delay ~seed b ~attempt:30 in
  check_bool "capped" true (late <= b.Backoff.max_delay *. (1.0 +. b.Backoff.jitter));
  (* Determinism: same seed and attempt, same delay. *)
  Alcotest.(check (float 0.0))
    "deterministic" (Backoff.delay ~seed b ~attempt:3) (Backoff.delay ~seed b ~attempt:3)

let test_backoff_budget () =
  let b = Backoff.default in
  let budget = Backoff.total_budget ~seed b ~retries:4 in
  let sum =
    List.fold_left ( +. ) 0.0 (List.init 4 (fun n -> Backoff.delay ~seed b ~attempt:n))
  in
  Alcotest.(check (float 1e-9)) "budget sums the delays" sum budget

(* -- breaker --------------------------------------------------------------- *)

let test_breaker_transitions () =
  let config = { Breaker.failure_threshold = 3; probe_interval = 10.0; success_to_close = 2 } in
  let br = Breaker.create ~config () in
  Alcotest.(check string) "starts closed" "closed" (Breaker.state_name (Breaker.state br));
  (* Failures below the threshold keep it closed. *)
  Breaker.record_failure br ~now:0.0;
  Breaker.record_failure br ~now:0.0;
  check_bool "still allows" true (Breaker.allow br ~now:0.0);
  Alcotest.(check string) "still closed" "closed" (Breaker.state_name (Breaker.state br));
  (* A success resets the streak. *)
  Breaker.record_success br;
  check_int "streak reset" 0 (Breaker.consecutive_failures br);
  (* The threshold trips it. *)
  Breaker.record_failure br ~now:1.0;
  Breaker.record_failure br ~now:1.0;
  Breaker.record_failure br ~now:1.0;
  Alcotest.(check string) "open" "open" (Breaker.state_name (Breaker.state br));
  check_int "one trip" 1 (Breaker.trips br);
  check_bool "open rejects" false (Breaker.allow br ~now:2.0);
  (* After the probe interval, one probe is allowed: half-open. *)
  check_bool "probe allowed" true (Breaker.allow br ~now:11.5);
  Alcotest.(check string) "half-open" "half-open" (Breaker.state_name (Breaker.state br));
  (* A half-open failure re-trips immediately. *)
  Breaker.record_failure br ~now:11.5;
  Alcotest.(check string) "re-tripped" "open" (Breaker.state_name (Breaker.state br));
  check_int "two trips" 2 (Breaker.trips br);
  (* Probe again; this time successes close it. *)
  check_bool "second probe" true (Breaker.allow br ~now:30.0);
  Breaker.record_success br;
  Alcotest.(check string) "needs two successes" "half-open"
    (Breaker.state_name (Breaker.state br));
  Breaker.record_success br;
  Alcotest.(check string) "closed again" "closed" (Breaker.state_name (Breaker.state br))

(* -- injector -------------------------------------------------------------- *)

let test_injector_fail_times () =
  let clock = Clock.create () in
  let inj = Fault.create ~seed ~clock () in
  Fault.set_plans inj [ Fault.Fail_times 2 ];
  let attempt () = match Fault.guard inj ~op:"x" (fun () -> "ok") with
    | v -> Ok v
    | exception Fault.Injected op -> Error op
  in
  Alcotest.(check (result string string)) "first fails" (Error "x") (attempt ());
  Alcotest.(check (result string string)) "second fails" (Error "x") (attempt ());
  Alcotest.(check (result string string)) "third succeeds" (Ok "ok") (attempt ());
  check_int "two injected" 2 (Fault.injected inj);
  check_int "three calls" 3 (Fault.calls inj);
  check_bool "plan consumed" true (Fault.plans inj = [])

let test_injector_latency_charges_clock () =
  let clock = Clock.create () in
  let inj = Fault.create ~seed ~clock () in
  Fault.set_plans inj [ Fault.Latency 3.0 ];
  let v = Fault.guard inj ~op:"x" (fun () -> 42) in
  check_int "call succeeds" 42 v;
  Alcotest.(check (float 1e-9)) "clock charged" 3.0 (Clock.now clock);
  ignore (Fault.guard inj ~op:"x" (fun () -> 0));
  Alcotest.(check (float 1e-9)) "latency persists" 6.0 (Clock.now clock)

let test_injector_corrupt_mangles () =
  let clock = Clock.create () in
  let inj = Fault.create ~seed ~clock () in
  let payload = "the quick brown fox jumps over the lazy dog" in
  Alcotest.(check string) "no corrupt plan: identity" payload (Fault.mangle inj payload);
  Fault.set_plans inj [ Fault.Corrupt ];
  let mangled = Fault.mangle inj payload in
  check_int "length preserved" (String.length payload) (String.length mangled);
  check_bool "content scrambled" true (mangled <> payload);
  check_bool "printable" true
    (String.for_all (fun c -> Char.code c >= 0x20 && Char.code c < 0x80) mangled)

let test_injector_flaky_deterministic () =
  let run () =
    let clock = Clock.create () in
    let inj = Fault.create ~seed ~clock () in
    Fault.set_plans inj [ Fault.Flaky 0.5 ];
    List.init 40 (fun _ ->
        match Fault.guard inj ~op:"x" (fun () -> ()) with
        | () -> false
        | exception Fault.Injected _ -> true)
  in
  Alcotest.(check (list bool)) "same seed, same weather" (run ()) (run ())

(* -- namespace policy ------------------------------------------------------- *)

let flaky_ns () =
  Namespace.static ~ns_id:"flaky"
    [ ("a.txt", "flaky://a", "alpha alpha\n"); ("b.txt", "flaky://b", "beta\n") ]

let policy_pair ?(policy = Namespace.default_policy) () =
  let clock = Clock.create () in
  let inj = Fault.create ~seed ~clock () in
  let ns = Namespace.with_policy ~policy ~clock (Namespace.with_faults inj (flaky_ns ())) in
  (clock, inj, ns)

let test_policy_retries_through () =
  let _, inj, ns = policy_pair () in
  (* default_policy allows 2 retries: two injected failures are absorbed. *)
  Fault.set_plans inj [ Fault.Fail_times 2 ];
  check_int "search succeeds after retries" 1 (List.length (ns.Namespace.search "beta"));
  let h = Option.get (Namespace.health ns) in
  check_int "one call" 1 h.Namespace.total_calls;
  check_int "two failures" 2 h.Namespace.total_failures;
  check_int "two retries" 2 h.Namespace.total_retries;
  Alcotest.(check string) "breaker closed" "closed" (Breaker.state_name h.Namespace.breaker)

let test_policy_exhausts_to_unavailable () =
  let _, inj, ns = policy_pair () in
  Fault.set_plans inj [ Fault.Outage ];
  (match ns.Namespace.search "beta" with
  | _ -> Alcotest.fail "expected Unavailable"
  | exception Namespace.Unavailable { ns_id; _ } ->
      Alcotest.(check string) "names the namespace" "flaky" ns_id);
  let h = Option.get (Namespace.health ns) in
  Alcotest.(check string) "breaker open" "open" (Breaker.state_name h.Namespace.breaker);
  (* While open, calls fail fast without touching the provider. *)
  let calls_before = Fault.calls inj in
  (match ns.Namespace.fetch "flaky://a" with
  | _ -> Alcotest.fail "expected Unavailable"
  | exception Namespace.Unavailable _ -> ());
  check_int "no provider call while open" calls_before (Fault.calls inj)

let test_policy_deadline () =
  (* A "successful" call that blows the per-call budget is a failure. *)
  let policy = { Namespace.default_policy with call_budget = 1.0; max_retries = 0 } in
  let _, inj, ns = policy_pair ~policy () in
  Fault.set_plans inj [ Fault.Latency 5.0 ];
  match ns.Namespace.search "beta" with
  | _ -> Alcotest.fail "expected Unavailable"
  | exception Namespace.Unavailable { reason; _ } ->
      check_bool "timeout reason" true (contains ~sub:"deadline" reason)

let test_policy_half_open_recovery () =
  let clock, inj, ns = policy_pair () in
  Fault.set_plans inj [ Fault.Outage ];
  (try ignore (ns.Namespace.search "beta") with Namespace.Unavailable _ -> ());
  let h = Option.get (Namespace.health ns) in
  Alcotest.(check string) "open after outage" "open" (Breaker.state_name h.Namespace.breaker);
  (* Provider recovers; past the probe interval the breaker lets one probe
     through, and with default success_to_close=1 it closes again. *)
  Fault.clear inj;
  Clock.advance clock (Breaker.default_config.Breaker.probe_interval +. 1.0);
  check_int "probe succeeds" 1 (List.length (ns.Namespace.search "beta"));
  let h = Option.get (Namespace.health ns) in
  Alcotest.(check string) "closed after probe" "closed" (Breaker.state_name h.Namespace.breaker)

let test_with_faults_corrupts_fetch () =
  let clock = Clock.create () in
  let inj = Fault.create ~seed ~clock () in
  let ns = Namespace.with_faults inj (flaky_ns ()) in
  Fault.set_plans inj [ Fault.Corrupt ];
  match ns.Namespace.fetch "flaky://a" with
  | None -> Alcotest.fail "fetch should return mangled content"
  | Some c ->
      check_bool "mangled" true (c <> "alpha alpha\n");
      check_int "length preserved" (String.length "alpha alpha\n") (String.length c)

(* -- graceful degradation (the acceptance scenario) -------------------------- *)

let degradation_world () =
  let t = Hac.create ~auto_sync:true () in
  Hac.smkdir t "/docs" "alpha OR beta";
  let clock = Hac.clock t in
  let inj = Fault.create ~seed ~clock () in
  let ns = Namespace.with_policy ~clock (Namespace.with_faults inj (flaky_ns ())) in
  Hac.smount t "/docs" ns;
  (t, inj)

let link_names t dir =
  Hac.links t dir |> List.map (fun l -> l.Link.name) |> List.sort compare

let test_degraded_resync_serves_stale () =
  let t, inj = degradation_world () in
  check_list "healthy entries" [ "a.txt"; "b.txt" ] (link_names t "/docs");
  check_int "nothing stale yet" 0 (List.length (Hac.stale_remotes t "/docs"));
  (* Total outage: re-evaluation must complete without raising and keep
     serving the last-good entries, marked stale. *)
  Fault.set_plans inj [ Fault.Outage ];
  Hac.ssync t "/docs";
  check_list "entries survive the outage" [ "a.txt"; "b.txt" ] (link_names t "/docs");
  check_int "both stale" 2 (List.length (Hac.stale_remotes t "/docs"));
  check_bool "failures counted" true (Hac.remote_failures t > 0);
  check_bool "stale serves counted" true (Hac.stale_serves t >= 2);
  (* mount-status reports the breaker open. *)
  let open_breakers =
    List.filter
      (fun { Hac.mh_health; _ } ->
        match mh_health with
        | Some h -> h.Namespace.breaker = Breaker.Open
        | None -> false)
      (Hac.mount_status t)
  in
  check_int "breaker open at the mount" 1 (List.length open_breakers);
  (* Repeated resyncs while down stay stable (and cheap: breaker is open). *)
  Hac.ssync t "/docs";
  Hac.ssync t "/docs";
  check_list "still stable" [ "a.txt"; "b.txt" ] (link_names t "/docs")

let test_recovery_restores_fresh_results () =
  let t, inj = degradation_world () in
  Fault.set_plans inj [ Fault.Outage ];
  Hac.ssync t "/docs";
  check_int "stale during outage" 2 (List.length (Hac.stale_remotes t "/docs"));
  (* Provider comes back; once the virtual clock passes the probe interval,
     a re-evaluation probes, succeeds and serves fresh results again. *)
  Fault.clear inj;
  Clock.advance (Hac.clock t) (Breaker.default_config.Breaker.probe_interval +. 1.0);
  Hac.ssync t "/docs";
  check_list "fresh entries back" [ "a.txt"; "b.txt" ] (link_names t "/docs");
  check_int "no longer stale" 0 (List.length (Hac.stale_remotes t "/docs"));
  let all_closed =
    List.for_all
      (fun { Hac.mh_health; _ } ->
        match mh_health with
        | Some h -> h.Namespace.breaker = Breaker.Closed
        | None -> true)
      (Hac.mount_status t)
  in
  check_bool "breaker closed again" true all_closed

let test_one_failing_mount_does_not_poison_others () =
  let t = Hac.create ~auto_sync:true () in
  Hac.smkdir t "/docs" "alpha OR beta";
  let clock = Hac.clock t in
  let inj = Fault.create ~seed ~clock () in
  let bad = Namespace.with_policy ~clock (Namespace.with_faults inj (flaky_ns ())) in
  let good =
    Namespace.static ~ns_id:"steady" [ ("c.txt", "steady://c", "beta notes\n") ]
  in
  Hac.smount t "/docs" bad;
  Hac.smount t "/docs" good;
  Fault.set_plans inj [ Fault.Outage ];
  Hac.ssync t "/docs";
  let names = link_names t "/docs" in
  check_bool "steady result present" true (List.mem "c.txt" names);
  check_bool "failing namespace's entries survive stale" true
    (List.mem "a.txt" names && List.mem "b.txt" names)

(* -- journal hardening ------------------------------------------------------- *)

let test_journal_seal_roundtrip () =
  List.iter
    (fun body ->
      match Journal.parse (Journal.seal body) with
      | Journal.Valid b -> Alcotest.(check string) ("roundtrip " ^ body) body b
      | Journal.Corrupt _ | Journal.Blank -> Alcotest.fail ("not valid: " ^ body))
    [ "D 3 /a"; "D 4 /with space/dir"; "X 9"; "M 2 /x#y"; "weird # body #abc" ]

(* Chain enumeration orders by parsed epoch, never by file name: the
   fixed-width zero padding runs out at seg-999999, and lexicographic
   order would put seg-1000000 *before* it — replaying a million-record
   history out of order. *)
let test_chain_enumeration_is_numeric () =
  Alcotest.(check bool)
    "seg-1000000.log parses" true
    (Journal.classify "seg-1000000.log" = Journal.Segment 1000000);
  Alcotest.(check bool)
    "ckpt-1000000.img parses" true
    (Journal.classify "ckpt-1000000.img" = Journal.Checkpoint 1000000);
  Alcotest.(check bool)
    "width overflow is not Other" true
    (Journal.classify "seg-23000000.log" = Journal.Segment 23000000);
  let fs = Fs.create () in
  Fs.mkdir_p fs "/.hac";
  List.iter
    (fun e -> Fs.write_file fs (Journal.segment_path e) "")
    [ 1000000; 999999; 999998 ];
  let segs, _ = Journal.scan fs in
  Alcotest.(check (list int))
    "epochs ascend numerically across the width boundary"
    [ 999998; 999999; 1000000 ]
    (List.map fst segs);
  Alcotest.(check int)
    "appends land on the numerically highest segment" 1000000
    (Journal.current_epoch fs)

let test_journal_rejects_tampering () =
  let sealed = Journal.seal "D 3 /docs" in
  let tampered = "D 4" ^ String.sub sealed 3 (String.length sealed - 3) in
  (match Journal.parse tampered with
  | Journal.Corrupt _ -> ()
  | Journal.Valid _ | Journal.Blank -> Alcotest.fail "tampered line accepted");
  (* Truncation (a torn tail) is detected too. *)
  (match Journal.parse (String.sub sealed 0 (String.length sealed - 3)) with
  | Journal.Corrupt _ -> ()
  | Journal.Valid _ | Journal.Blank -> Alcotest.fail "truncated line accepted");
  match Journal.parse "   " with
  | Journal.Blank -> ()
  | Journal.Valid _ | Journal.Corrupt _ -> Alcotest.fail "blank misclassified"

let build_crashed_world () =
  let t = Hac.create ~auto_sync:true () in
  Hac.mkdir_p t "/docs";
  Hac.write_file t "/docs/a.txt" "alpha text\n";
  Hac.write_file t "/docs/b.txt" "beta text\n";
  Hac.smkdir t "/alpha" "alpha";
  Hac.smkdir t "/beta" "beta";
  ignore (Hac.readdir t "/alpha");
  ignore (Hac.readdir t "/beta");
  Hac.shutdown ~graceful:false t;
  Hac.fs t

let test_reload_skips_torn_tail () =
  let fs = build_crashed_world () in
  (* Simulate a crash mid-append: the last journal record is torn. *)
  let log = Fs.read_file fs "/.hac/dirs.log" in
  let torn = String.sub log 0 (String.length log - 5) ^ "\n" in
  Fs.write_file fs "/.hac/dirs.log" torn;
  let t2 = Hac.of_fs ~auto_sync:true fs in
  let r = Recover.reload_report t2 in
  check_bool "tear detected" true (r.Recover.journal.Recover.corrupt >= 1);
  (* Everything whose record was intact is restored. *)
  check_bool "intact dirs restored" true (r.Recover.restored >= 1);
  check_bool "alpha back" true (Hac.is_semantic t2 "/alpha")

let test_reload_survives_garbage () =
  let fs = build_crashed_world () in
  let log = Fs.read_file fs "/.hac/dirs.log" in
  Fs.write_file fs "/.hac/dirs.log"
    ("#!garbage header\n" ^ log ^ "\x00\x01binary tail not a record\n");
  let t2 = Hac.of_fs ~auto_sync:true fs in
  let r = Recover.reload_report t2 in
  check_int "garbage lines counted" 2 r.Recover.journal.Recover.corrupt;
  check_int "both restored" 2 r.Recover.restored;
  check_bool "alpha live" true (Hac.is_semantic t2 "/alpha");
  check_bool "beta live" true (Hac.is_semantic t2 "/beta")

let test_replay_handles_paths_with_spaces () =
  (* A 'D' record whose path contains spaces must not be dropped. *)
  let text =
    String.concat "\n"
      [
        Journal.seal "D 3 /my docs/project notes";
        Journal.seal "D 4 /plain";
        Journal.seal "M 4 /see also/the plain one";
        Journal.seal "X 9";
      ]
  in
  let map = Recover.replay_journal text in
  Alcotest.(check (option string))
    "D with spaces" (Some "/my docs/project notes") (Hashtbl.find_opt map 3);
  Alcotest.(check (option string))
    "M with spaces" (Some "/see also/the plain one") (Hashtbl.find_opt map 4)

(* Exhaustive torn-tail sweep: chop the final journal record at every byte
   offset.  Whatever the cut, replay applies every earlier record, counts
   at most one corrupt line, and never misreads the partial tail as a
   record.  Paths embed the seed so the three pinned fault-suite seeds
   exercise different record bytes (and hence different checksums). *)
let test_truncated_tail_every_offset () =
  let d3 = Printf.sprintf "/docs %d/a dir" seed in
  let m4 = Printf.sprintf "/moved %d" seed in
  let head_records = [ "D 3 " ^ d3; "D 4 /plain"; "S 4"; "M 4 " ^ m4 ] in
  let head = String.concat "" (List.map (fun r -> Journal.seal r ^ "\n") head_records) in
  let last = Journal.seal "X 3" ^ "\n" in
  for keep = 0 to String.length last - 1 do
    let r = Journal.replay_create () in
    Journal.replay_text r (head ^ String.sub last 0 keep);
    let where = Printf.sprintf " (cut at %d)" keep in
    check_bool ("at most one corrupt line" ^ where) true (r.Journal.corrupt <= 1);
    check_int ("nothing malformed" ^ where) 0 r.Journal.malformed;
    (* All-or-nothing: the torn removal either did not happen (its bytes
       incomplete) or applied in full — and "in full" is only possible when
       the cut lost no more than the trailing newline separator. *)
    if r.Journal.applied = 5 then begin
      check_bool ("full record implies only the separator lost" ^ where) true
        (keep >= String.length last - 1);
      Alcotest.(check (option string))
        ("uid 3 removed by the intact record" ^ where)
        None (Hashtbl.find_opt r.Journal.map 3)
    end
    else begin
      check_int ("head records applied" ^ where) 4 r.Journal.applied;
      Alcotest.(check (option string))
        ("uid 3 survives its torn removal" ^ where)
        (Some d3) (Hashtbl.find_opt r.Journal.map 3)
    end;
    Alcotest.(check (option string))
      ("uid 4 moved" ^ where) (Some m4) (Hashtbl.find_opt r.Journal.map 4);
    check_bool ("semantic flag replayed" ^ where) true (Hashtbl.mem r.Journal.sem 4)
  done;
  (* The whole record present: the removal lands. *)
  let r = Journal.replay_create () in
  Journal.replay_text r (head ^ last);
  check_int "full tail applies" 5 r.Journal.applied;
  Alcotest.(check (option string)) "uid 3 removed" None (Hashtbl.find_opt r.Journal.map 3)

(* Property: whatever we do to the journal's tail — truncate it anywhere,
   append arbitrary garbage — reload never raises and restores every
   semantic directory whose records and structures are intact. *)
let prop_reload_total =
  QCheck.Test.make ~count:40 ~name:"reload is total under journal damage"
    QCheck.(pair (int_range 0 2000) small_string)
    (fun (cut, garbage) ->
      let fs = build_crashed_world () in
      let log = Fs.read_file fs "/.hac/dirs.log" in
      let keep = min cut (String.length log) in
      Fs.write_file fs "/.hac/dirs.log" (String.sub log 0 keep ^ garbage);
      let t2 = Hac.of_fs ~auto_sync:true fs in
      let r = Recover.reload_report t2 in
      (* Never raises (we got here), never restores more than existed, and
         with the journal fully intact plus garbage appended, everything
         still comes back. *)
      r.Recover.restored <= 2
      && (keep < String.length log || r.Recover.restored = 2))

let () =
  Alcotest.run "fault"
    [
      ( "clock+backoff",
        [
          Alcotest.test_case "clock" `Quick test_clock;
          Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "backoff budget" `Quick test_backoff_budget;
        ] );
      ("breaker", [ Alcotest.test_case "transitions" `Quick test_breaker_transitions ]);
      ( "injector",
        [
          Alcotest.test_case "fail N times" `Quick test_injector_fail_times;
          Alcotest.test_case "latency charges the clock" `Quick
            test_injector_latency_charges_clock;
          Alcotest.test_case "corrupt mangles" `Quick test_injector_corrupt_mangles;
          Alcotest.test_case "flaky is deterministic" `Quick test_injector_flaky_deterministic;
        ] );
      ( "policy",
        [
          Alcotest.test_case "retries through" `Quick test_policy_retries_through;
          Alcotest.test_case "exhausts to Unavailable" `Quick test_policy_exhausts_to_unavailable;
          Alcotest.test_case "deadline" `Quick test_policy_deadline;
          Alcotest.test_case "half-open recovery" `Quick test_policy_half_open_recovery;
          Alcotest.test_case "corrupt fetch" `Quick test_with_faults_corrupts_fetch;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "outage serves stale" `Quick test_degraded_resync_serves_stale;
          Alcotest.test_case "recovery restores fresh" `Quick test_recovery_restores_fresh_results;
          Alcotest.test_case "failure is isolated" `Quick
            test_one_failing_mount_does_not_poison_others;
        ] );
      ( "journal",
        [
          Alcotest.test_case "seal roundtrip" `Quick test_journal_seal_roundtrip;
          Alcotest.test_case "rejects tampering" `Quick test_journal_rejects_tampering;
          Alcotest.test_case "numeric chain order" `Quick test_chain_enumeration_is_numeric;
          Alcotest.test_case "torn tail skipped" `Quick test_reload_skips_torn_tail;
          Alcotest.test_case "garbage survived" `Quick test_reload_survives_garbage;
          Alcotest.test_case "paths with spaces" `Quick test_replay_handles_paths_with_spaces;
          Alcotest.test_case "torn tail at every offset" `Quick
            test_truncated_tail_every_offset;
          QCheck_alcotest.to_alcotest prop_reload_total;
        ] );
    ]
