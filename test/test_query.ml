(* Tests for the query language: lexer, parser, printer round trips, and
   evaluator algebra. *)

module Ast = Hac_query.Ast
module Lexer = Hac_query.Lexer
module Parser = Hac_query.Parser
module Eval = Hac_query.Eval
module Fileset = Hac_bitset.Fileset

let ast =
  Alcotest.testable (fun ppf q -> Format.pp_print_string ppf (Ast.to_string q)) Ast.equal

let check_ast = Alcotest.check ast

let parse = Parser.parse

let w s = Ast.Term (Ast.Word s)

(* -- lexer ----------------------------------------------------------------------- *)

let test_lexer_tokens () =
  Alcotest.(check int) "token count" 6 (List.length (Lexer.tokens "a AND (b)"));
  (match Lexer.tokens "foo" with
  | [ Lexer.WORD "foo"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "expected WORD foo");
  match Lexer.tokens "NAME:x" with
  | [ Lexer.ATTR ("name", "x"); Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "expected lowercased ATTR"

let test_lexer_case () =
  (match Lexer.tokens "FooBar and OR Not" with
  | [ Lexer.WORD "foobar"; Lexer.AND; Lexer.OR; Lexer.NOT; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "keywords case-insensitive, words lowercased")

let test_lexer_errors () =
  let expect_err input =
    match Lexer.tokens input with
    | _ -> Alcotest.failf "expected lex error on %S" input
    | exception Lexer.Syntax_error _ -> ()
  in
  expect_err "\"unterminated";
  expect_err "{unterminated";
  expect_err "\"\"" (* empty phrase *);
  expect_err "{}" (* empty dirref *);
  expect_err "~" (* bare approx *);
  expect_err "name:" (* missing value *);
  expect_err "&"

(* -- parser ---------------------------------------------------------------------- *)

let test_parse_atoms () =
  check_ast "word" (w "fish") (parse "fish");
  check_ast "star" Ast.All (parse "*");
  check_ast "phrase" (Ast.Term (Ast.Phrase [ "big"; "fish" ])) (parse "\"Big Fish\"");
  check_ast "approx default" (Ast.Term (Ast.Approx ("fish", 1))) (parse "~fish");
  check_ast "approx k" (Ast.Term (Ast.Approx ("fish", 2))) (parse "~2~fish");
  check_ast "attr" (Ast.Term (Ast.Attr ("ext", "ml"))) (parse "ext:ml");
  check_ast "attr path value" (Ast.Term (Ast.Attr ("path", "/a/b"))) (parse "path:/a/b");
  check_ast "dirref" (Ast.Term (Ast.Dirref (Ast.Ref_path "/mail/bob"))) (parse "{/mail/bob}");
  check_ast "dirref trimmed" (Ast.Term (Ast.Dirref (Ast.Ref_path "/x"))) (parse "{ /x }")

let test_parse_operators () =
  check_ast "and" (Ast.And (w "a1", w "b1")) (parse "a1 AND b1");
  check_ast "implicit and" (Ast.And (w "a1", w "b1")) (parse "a1 b1");
  check_ast "or" (Ast.Or (w "a1", w "b1")) (parse "a1 OR b1");
  check_ast "not" (Ast.Not (w "a1")) (parse "NOT a1");
  check_ast "double not" (Ast.Not (Ast.Not (w "a1"))) (parse "NOT NOT a1")

let test_parse_precedence () =
  (* AND binds tighter than OR; NOT tighter than AND. *)
  check_ast "a OR b AND c" (Ast.Or (w "aa", Ast.And (w "bb", w "cc"))) (parse "aa OR bb AND cc");
  check_ast "NOT under AND" (Ast.And (Ast.Not (w "aa"), w "bb")) (parse "NOT aa AND bb");
  check_ast "parens override"
    (Ast.And (Ast.Or (w "aa", w "bb"), w "cc"))
    (parse "(aa OR bb) AND cc")

let test_parse_associativity () =
  check_ast "and left assoc" (Ast.And (Ast.And (w "x1", w "x2"), w "x3")) (parse "x1 x2 x3");
  check_ast "or left assoc" (Ast.Or (Ast.Or (w "x1", w "x2"), w "x3")) (parse "x1 OR x2 OR x3")

let test_parse_paper_query () =
  (* The query from the paper: "fingerprint AND NOT murder". *)
  check_ast "paper example"
    (Ast.And (w "fingerprint", Ast.Not (w "murder")))
    (parse "fingerprint AND NOT murder")

let test_parse_errors () =
  let expect_err input =
    match Parser.parse_result input with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error on %S" input
  in
  expect_err "";
  expect_err "AND a";
  expect_err "a AND";
  expect_err "(a";
  expect_err "a)";
  expect_err "a OR";
  expect_err "NOT"

(* -- AST helpers -------------------------------------------------------------------- *)

let test_words_collection () =
  Alcotest.(check (list string))
    "words from all term kinds" [ "aa"; "bb"; "cc"; "dd" ]
    (Ast.words (parse "aa AND \"bb cc\" OR ~dd AND ext:ml {/d}"))

let test_dirref_mapping () =
  let q = parse "{/a} AND ({/b} OR xx)" in
  let installed =
    Ast.map_dirrefs
      (function Ast.Ref_path "/a" -> Ast.Ref_uid 10 | Ast.Ref_path _ -> Ast.Ref_uid 20 | r -> r)
      q
  in
  Alcotest.(check (list int)) "uids" [ 10; 20 ] (Ast.dir_uids installed);
  Alcotest.(check int) "size preserved" (Ast.size q) (Ast.size installed)

let test_to_string_uid_resolution () =
  let q = Ast.Term (Ast.Dirref (Ast.Ref_uid 7)) in
  Alcotest.(check string) "unresolved" "{#7}" (Ast.to_string q);
  Alcotest.(check string)
    "resolved" "{/mail/bob}"
    (Ast.to_string ~path_of_uid:(fun _ -> Some "/mail/bob") q)

(* -- printer/parser round trip -------------------------------------------------------- *)

let gen_word =
  QCheck.Gen.(
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 2 6) (char_range 'a' 'z')))

let gen_safe_word =
  (* Avoid the keywords. *)
  QCheck.Gen.map
    (fun w -> match w with "and" | "or" | "not" -> w ^ "x" | _ -> w)
    gen_word

let gen_term =
  QCheck.Gen.(
    oneof
      [
        map (fun w -> Ast.Word w) gen_safe_word;
        map (fun ws -> Ast.Phrase ws) (list_size (int_range 1 3) gen_safe_word);
        map2 (fun w k -> Ast.Approx (w, 1 + k)) gen_safe_word (int_bound 2);
        map2 (fun a v -> Ast.Attr (a, v)) gen_safe_word gen_safe_word;
        map (fun p -> Ast.Dirref (Ast.Ref_path ("/" ^ p))) gen_safe_word;
      ])

let gen_ast =
  QCheck.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 1 then oneof [ map (fun t -> Ast.Term t) gen_term; return Ast.All ]
            else
              frequency
                [
                  (2, map (fun t -> Ast.Term t) gen_term);
                  (2, map2 (fun a b -> Ast.And (a, b)) (self (n / 2)) (self (n / 2)));
                  (2, map2 (fun a b -> Ast.Or (a, b)) (self (n / 2)) (self (n / 2)));
                  (1, map (fun a -> Ast.Not a) (self (n - 1)));
                ])
          (min n 12)))

let arb_ast = QCheck.make gen_ast ~print:Ast.to_string

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (to_string q) = q" ~count:500 arb_ast (fun q ->
      Ast.equal (parse (Ast.to_string q)) q)

let prop_print_parse_print_stable =
  QCheck.Test.make ~name:"printing is stable" ~count:500 arb_ast (fun q ->
      let s = Ast.to_string q in
      Ast.to_string (parse s) = s)

(* -- evaluator -------------------------------------------------------------------------- *)

let env_of_table universe table =
  {
    Eval.universe = (fun () -> Fileset.of_list universe);
    word =
      (fun ?within:_ w -> Fileset.of_list (Option.value (List.assoc_opt w table) ~default:[]));
    phrase = (fun ?within:_ _ -> Fileset.empty);
    approx =
      (fun ?within:_ w _ ->
        Fileset.of_list (Option.value (List.assoc_opt w table) ~default:[]));
    attr = (fun ?within:_ _ _ -> Fileset.empty);
    regex = (fun ?within:_ _ -> Fileset.empty);
    dirref = (fun ?within:_ _ -> Fileset.empty);
  }

let test_eval_boolean () =
  let env = env_of_table [ 1; 2; 3; 4 ] [ ("aa", [ 1; 2 ]); ("bb", [ 2; 3 ]) ] in
  let run q = Fileset.elements (Eval.eval env (parse q)) in
  Alcotest.(check (list int)) "and" [ 2 ] (run "aa AND bb");
  Alcotest.(check (list int)) "or" [ 1; 2; 3 ] (run "aa OR bb");
  Alcotest.(check (list int)) "not" [ 3; 4 ] (run "NOT aa");
  Alcotest.(check (list int)) "star" [ 1; 2; 3; 4 ] (run "*");
  Alcotest.(check (list int)) "and not" [ 1 ] (run "aa AND NOT bb");
  Alcotest.(check (list int)) "de morgan check" (run "NOT (aa OR bb)") (run "NOT aa AND NOT bb")

let test_eval_missing_word () =
  let env = env_of_table [ 1 ] [] in
  Alcotest.(check (list int)) "unknown empty" [] (Fileset.elements (Eval.eval env (parse "zz")));
  Alcotest.(check (list int))
    "not unknown is universe" [ 1 ]
    (Fileset.elements (Eval.eval env (parse "NOT zz")))

(* Evaluating under a scope by intersecting afterwards must equal replacing
   the universe — the identity the scope algorithm relies on. *)
let prop_scope_restriction_commutes =
  QCheck.Test.make ~name:"(eval q) ∩ S = eval with universe S for positive scopes" ~count:200
    (QCheck.pair arb_ast (QCheck.small_list (QCheck.int_bound 30)))
    (fun (q, scope_l) ->
      let universe = List.init 31 (fun i -> i) in
      let table = [ ("aa", [ 1; 2; 3 ]); ("bb", [ 2; 4 ]) ] in
      let scope = Fileset.of_list scope_l in
      let env_full = env_of_table universe table in
      let restricted =
        {
          env_full with
          Eval.universe = (fun () -> scope);
          word = (fun ?within w -> Fileset.inter scope (env_full.Eval.word ?within w));
          approx =
            (fun ?within w k -> Fileset.inter scope (env_full.Eval.approx ?within w k));
        }
      in
      Fileset.equal
        (Fileset.inter scope (Eval.eval env_full q))
        (Eval.eval restricted q))

(* -- planner ------------------------------------------------------------------------------ *)

module Planner = Hac_query.Planner

let table_cost table t =
  match t with
  | Ast.Word w -> List.length (Option.value (List.assoc_opt w table) ~default:[])
  | _ -> 1000

let test_planner_reorders () =
  let cost = table_cost [ ("common", List.init 90 Fun.id); ("rare", [ 1 ]) ] in
  check_ast "rare first"
    (Ast.And (w "rare", w "common"))
    (Planner.optimize ~cost (parse "common AND rare"));
  check_ast "three-way chain"
    (Ast.And (Ast.And (w "rare", w "common"), Ast.Not (w "rare")))
    (Planner.optimize ~cost (parse "NOT rare AND common AND rare"));
  (* OR operands keep their order; recursion still fixes inner ANDs. *)
  check_ast "or preserved"
    (Ast.Or (w "common", Ast.And (w "rare", w "common")))
    (Planner.optimize ~cost (parse "common OR (common AND rare)"))

let test_planner_subtree_cost () =
  let cost = table_cost [ ("aa", [ 1; 2 ]); ("bb", List.init 10 Fun.id) ] in
  Alcotest.(check int) "term" 2 (Planner.subtree_cost ~cost (parse "aa"));
  Alcotest.(check int) "and takes min" 2 (Planner.subtree_cost ~cost (parse "aa AND bb"));
  Alcotest.(check int) "or sums" 12 (Planner.subtree_cost ~cost (parse "aa OR bb"));
  Alcotest.(check bool) "not is big" true (Planner.subtree_cost ~cost (parse "NOT aa") > 1000)

let test_planner_cost_saturates () =
  let big = max_int / 2 in
  let huge _ = max_int in
  (* Or of two Nots used to compute max_int/2 + max_int/2 and rely on a
     wrap-to-negative check that the operands evade. *)
  Alcotest.(check int)
    "or of two nots clamps" big
    (Planner.subtree_cost ~cost:huge (parse "NOT aa OR NOT bb"));
  Alcotest.(check int)
    "nested ors stay clamped" big
    (Planner.subtree_cost ~cost:huge (parse "(NOT aa OR NOT bb) OR (NOT cc OR NOT dd)"));
  Alcotest.(check int)
    "huge term costs clamp too" big
    (Planner.subtree_cost ~cost:huge (parse "aa OR bb"));
  Alcotest.(check bool)
    "negative estimates treated as zero" true
    (Planner.subtree_cost ~cost:(fun _ -> -5) (parse "aa OR bb") = 0)

let test_planner_verify_weights () =
  (* Weights order by per-candidate verification work: set lookup < token
     probe < stream scan < full regex match < edit-distance sweep. *)
  let wt q = Planner.verify_weight (match parse q with Ast.Term t -> t | _ -> assert false) in
  Alcotest.(check int) "dirref" 1 (wt "{/a}");
  Alcotest.(check int) "word" 2 (wt "aa");
  Alcotest.(check int) "attr" 2 (wt "type:mail");
  Alcotest.(check int) "phrase" 3 (wt "\"aa bb\"");
  Alcotest.(check int) "regex" 8 (wt "/ab+c/");
  Alcotest.(check bool) "approx heaviest" true (wt "~fuzzy" > wt "/ab+c/")

let test_planner_calibrated () =
  let big = max_int / 2 in
  let term q = match parse q with Ast.Term t -> t | _ -> assert false in
  let measured _ = 10 in
  (* Calibration multiplies a measured candidate count by the kind weight,
     so a 10-candidate regex outranks (costs more than) a 30-candidate
     word: 10*8 > 30*2. *)
  Alcotest.(check int) "word x2" 20 (Planner.calibrated ~measured (term "aa"));
  Alcotest.(check int) "regex x8" 80 (Planner.calibrated ~measured (term "/ab+c/"));
  Alcotest.(check bool)
    "ranking can flip on kind" true
    (Planner.calibrated ~measured (term "/ab+c/")
    > Planner.calibrated ~measured:(fun _ -> 30) (term "aa"));
  (* Saturation: a universe-sized measurement times the heaviest weight
     must clamp, not wrap. *)
  Alcotest.(check int)
    "saturates at big" big
    (Planner.calibrated ~measured:(fun _ -> max_int) (term "~fuzzy"));
  Alcotest.(check int)
    "negative measurements clamp to zero" 0
    (Planner.calibrated ~measured:(fun _ -> -3) (term "aa"))

let prop_planner_preserves_semantics =
  QCheck.Test.make ~name:"optimize preserves evaluation" ~count:500
    (QCheck.pair arb_ast (QCheck.small_list (QCheck.int_bound 30)))
    (fun (q, scope) ->
      let env =
        env_of_table
          (List.init 31 Fun.id)
          [ ("aa", [ 1; 2; 3 ]); ("bb", [ 2; 4 ]); ("cc", scope) ]
      in
      (* A deliberately arbitrary cost function: correctness must not depend
         on estimate quality. *)
      let cost t = Hashtbl.hash t mod 100 in
      Fileset.equal (Eval.eval env q) (Eval.eval env (Hac_query.Planner.optimize ~cost q)))

let () =
  Alcotest.run "query"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "case handling" `Quick test_lexer_case;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "atoms" `Quick test_parse_atoms;
          Alcotest.test_case "operators" `Quick test_parse_operators;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "associativity" `Quick test_parse_associativity;
          Alcotest.test_case "paper query" `Quick test_parse_paper_query;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "ast",
        [
          Alcotest.test_case "words" `Quick test_words_collection;
          Alcotest.test_case "dirref mapping" `Quick test_dirref_mapping;
          Alcotest.test_case "uid resolution in printing" `Quick test_to_string_uid_resolution;
        ] );
      ( "eval",
        [
          Alcotest.test_case "boolean algebra" `Quick test_eval_boolean;
          Alcotest.test_case "missing words" `Quick test_eval_missing_word;
        ] );
      ( "planner",
        [
          Alcotest.test_case "reorders conjunctions" `Quick test_planner_reorders;
          Alcotest.test_case "subtree cost" `Quick test_planner_subtree_cost;
          Alcotest.test_case "cost saturates" `Quick test_planner_cost_saturates;
          Alcotest.test_case "verify weights" `Quick test_planner_verify_weights;
          Alcotest.test_case "calibrated model" `Quick test_planner_calibrated;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip;
            prop_print_parse_print_stable;
            prop_scope_restriction_commutes;
            prop_planner_preserves_semantics;
          ] );
    ]
