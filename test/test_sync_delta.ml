(* Differential property tests for incremental scope maintenance: settling
   with the dirty-delta path (Hac.reindex -> Sync.sync_delta) must land on
   exactly the fixpoint the full oracle (Hac.reindex_full -> Sync.sync_all)
   reaches, over arbitrary interleavings of content and structural
   mutations.  Plus unit tests for the result cache's invalidation rules. *)

module Hac = Hac_core.Hac
module Link = Hac_core.Link
module Rescache = Hac_core.Rescache
module Fs = Hac_vfs.Fs
module Namespace = Hac_remote.Namespace
module Fault = Hac_fault.Fault

let files = [| "/d0/a.txt"; "/d0/b.txt"; "/d1/c.txt"; "/d1/d.txt"; "/d2/e.txt" |]
let words = [| "red"; "green"; "blue"; "cyan" |]
let sem_dirs = [| "/s0"; "/s1"; "/s2" |]
let queries = [| "red"; "green OR blue"; "blue AND NOT cyan"; "red OR cyan" |]

type op =
  | Write of int * int (* file slot, word slot *)
  | Delete of int
  | Move of int * int
  | Smkdir of int * int (* dir slot, query slot *)
  | Schquery of int * int
  | RemoveLink of int * int (* dir slot, rank among transient links *)
  | AddPerm of int * int (* dir slot, file slot *)
  | Unprohibit of int * int

let pp_op = function
  | Write (f, w) -> Printf.sprintf "Write(%d,%d)" f w
  | Delete f -> Printf.sprintf "Delete(%d)" f
  | Move (a, b) -> Printf.sprintf "Move(%d,%d)" a b
  | Smkdir (d, q) -> Printf.sprintf "Smkdir(%d,%d)" d q
  | Schquery (d, q) -> Printf.sprintf "Schquery(%d,%d)" d q
  | RemoveLink (d, r) -> Printf.sprintf "RemoveLink(%d,%d)" d r
  | AddPerm (d, f) -> Printf.sprintf "AddPerm(%d,%d)" d f
  | Unprohibit (d, f) -> Printf.sprintf "Unprohibit(%d,%d)" d f

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun f w -> Write (f, w)) (int_bound 4) (int_bound 3));
        (2, map (fun f -> Delete f) (int_bound 4));
        (2, map2 (fun a b -> Move (a, b)) (int_bound 4) (int_bound 4));
        (2, map2 (fun d q -> Smkdir (d, q)) (int_bound 2) (int_bound 3));
        (1, map2 (fun d q -> Schquery (d, q)) (int_bound 2) (int_bound 3));
        (1, map2 (fun d r -> RemoveLink (d, r)) (int_bound 2) (int_bound 3));
        (1, map2 (fun d f -> AddPerm (d, f)) (int_bound 2) (int_bound 4));
        (1, map2 (fun d f -> Unprohibit (d, f)) (int_bound 2) (int_bound 4));
      ])

let arb_ops =
  QCheck.make
    QCheck.Gen.(list_size (int_range 4 40) gen_op)
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))

(* Ops carry only pre-drawn data (slots and ranks), so applying the same op
   to two instances in the same state performs the same mutation on both. *)
let apply t op =
  let ignore_errors f = try f () with Hac_vfs.Errno.Error _ | Hac.Hac_error _ -> () in
  match op with
  | Write (f, w) ->
      ignore_errors (fun () ->
          Hac.write_file t files.(f) (Printf.sprintf "some %s text\n" words.(w)))
  | Delete f -> ignore_errors (fun () -> Hac.unlink t files.(f))
  | Move (a, b) -> ignore_errors (fun () -> Hac.rename t ~src:files.(a) ~dst:files.(b))
  | Smkdir (d, q) -> ignore_errors (fun () -> Hac.smkdir t sem_dirs.(d) queries.(q))
  | Schquery (d, q) -> ignore_errors (fun () -> Hac.schquery t sem_dirs.(d) queries.(q))
  | RemoveLink (d, r) ->
      ignore_errors (fun () ->
          let transients =
            Hac.links t sem_dirs.(d)
            |> List.filter (fun l -> l.Link.cls = Link.Transient)
            |> List.map (fun l -> l.Link.name)
            |> List.sort compare
          in
          match List.nth_opt transients (r mod max 1 (List.length transients)) with
          | Some name -> Hac.remove_link t ~dir:sem_dirs.(d) ~name
          | None -> ())
  | AddPerm (d, f) ->
      ignore_errors (fun () ->
          ignore (Hac.add_permanent t ~dir:sem_dirs.(d) ~target:files.(f)))
  | Unprohibit (d, f) ->
      ignore_errors (fun () -> Hac.unprohibit t ~dir:sem_dirs.(d) ~target:files.(f))

(* The externally observable semantic state: for every semantic directory,
   its links (name, canonical target, class) and its prohibited targets. *)
let observe t =
  Hac.semantic_dirs t
  |> List.map (fun dir ->
         let links =
           Hac.links t dir
           |> List.map (fun l ->
                  Printf.sprintf "%s>%s%s" l.Link.name
                    (Link.target_key l.Link.target)
                    (if l.Link.cls = Link.Permanent then "!" else ""))
           |> List.sort compare
         in
         let proh = List.sort compare (Hac.prohibited t dir) in
         Printf.sprintf "%s: [%s] proh[%s]" dir (String.concat "," links)
           (String.concat "," proh))
  |> String.concat "\n"

let fresh () =
  let t = Hac.create ~stem:false () in
  List.iter (Hac.mkdir_p t) [ "/d0"; "/d1"; "/d2" ];
  t

(* Split the op list into small batches; settle both twins after each batch
   (A incrementally, B fully) and require identical observable state. *)
let rec batches = function
  | [] -> []
  | ops ->
      let rec take n = function
        | x :: rest when n > 0 ->
            let h, t = take (n - 1) rest in
            (x :: h, t)
        | rest -> ([], rest)
      in
      let batch, rest = take 3 ops in
      batch :: batches rest

let twin_run ?(check = fun ~batch:_ _ _ -> ()) ops =
  let a = fresh () and b = fresh () in
  List.iteri
    (fun i batch ->
      List.iter
        (fun op ->
          apply a op;
          apply b op)
        batch;
      ignore (Hac.reindex a ());
      ignore (Hac.reindex_full b ());
      check ~batch:i a b)
    (batches ops);
  (a, b)

let prop_delta_equals_full =
  QCheck.Test.make ~name:"delta settle equals the sync_all oracle" ~count:60 arb_ops
    (fun ops ->
      let a, b =
        twin_run ops ~check:(fun ~batch a b ->
            if observe a <> observe b then
              QCheck.Test.fail_reportf "divergence at batch %d:\ndelta:\n%s\nfull:\n%s"
                batch (observe a) (observe b))
      in
      (* And the delta twin's state is a true fixpoint of the full engine. *)
      let before = observe a in
      Hac.sync_all a;
      ignore b;
      if observe a <> before then
        QCheck.Test.fail_reportf "delta state was not a sync_all fixpoint:\n%s\nvs\n%s"
          before (observe a)
      else true)

(* The same differential run under three pinned seeds, as plain test cases:
   a regression in the delta path fails fast and reproducibly even if the
   QCheck draw happens to wander elsewhere. *)
let seeded_run seed () =
  let rand = Random.State.make [| seed |] in
  let ops = QCheck.Gen.generate1 ~rand QCheck.Gen.(list_size (int_range 30 60) gen_op) in
  let a, _ =
    twin_run ops ~check:(fun ~batch a b ->
        Alcotest.(check string)
          (Printf.sprintf "seed %d batch %d" seed batch)
          (observe b) (observe a))
  in
  let before = observe a in
  Hac.sync_all a;
  Alcotest.(check string) "no-op sync_all is a fixpoint" before (observe a)

(* -- cache invalidation ------------------------------------------------------- *)

let link_names t dir =
  Hac.links t dir |> List.map (fun l -> l.Link.name) |> List.sort compare

let test_rename_invalidates () =
  let t = fresh () in
  Hac.write_file t "/d0/a.txt" "plain red text";
  Hac.smkdir t "/s" "red";
  ignore (Hac.reindex t ());
  Alcotest.(check (list string)) "linked" [ "a.txt" ] (link_names t "/s");
  (* A rename produces no reindex delta (content is unchanged), yet every
     cached result naming the old path is now wrong: the settle must fall
     back to a full sync and retarget the link. *)
  Hac.rename t ~src:"/d0/a.txt" ~dst:"/d0/z.txt";
  ignore (Hac.reindex t ());
  Alcotest.(check (list string)) "retargeted" [ "z.txt" ] (link_names t "/s")

let test_remove_invalidates () =
  let t = fresh () in
  Hac.write_file t "/d0/a.txt" "red";
  Hac.write_file t "/d0/b.txt" "red";
  Hac.smkdir t "/s" "red";
  ignore (Hac.reindex t ());
  Alcotest.(check (list string)) "both linked" [ "a.txt"; "b.txt" ] (link_names t "/s");
  Hac.unlink t "/d0/a.txt";
  ignore (Hac.reindex t ());
  Alcotest.(check (list string)) "dropped" [ "b.txt" ] (link_names t "/s")

let test_prohibition_invalidates () =
  let t = fresh () in
  Hac.write_file t "/d0/a.txt" "red";
  Hac.smkdir t "/s" "red";
  ignore (Hac.reindex t ());
  (* rm inside the semantic dir prohibits the target; the cached result
     still contains it, so the next settle must not serve the cache. *)
  Hac.remove_link t ~dir:"/s" ~name:"a.txt";
  ignore (Hac.reindex t ());
  Alcotest.(check (list string)) "prohibited stays out" [] (link_names t "/s");
  Hac.unprohibit t ~dir:"/s" ~target:"/d0/a.txt";
  ignore (Hac.reindex t ());
  Alcotest.(check (list string)) "unprohibit restores" [ "a.txt" ] (link_names t "/s")

let test_cache_hits_on_steady_state () =
  let t = fresh () in
  Hac.write_file t "/d0/a.txt" "red";
  Hac.write_file t "/d1/c.txt" "blue";
  Hac.smkdir t "/s0" "red";
  Hac.smkdir t "/s1" "blue";
  ignore (Hac.reindex_full t ());
  (* One converging resync: directories synced before the settle's last
     generation bump re-store their entries at the final generation. *)
  Hac.sync_all t;
  Hac.reset_result_cache_stats t;
  Hac.sync_all t;
  Hac.sync_all t;
  let rc = Hac.result_cache_stats t in
  Alcotest.(check int) "no misses on no-op resyncs" 0 rc.Rescache.misses;
  Alcotest.(check bool) "hits recorded" true (rc.Rescache.hits >= 4);
  (* A content change bumps the generation: the stale entry must miss. *)
  Hac.write_file t "/d0/a.txt" "now blue";
  ignore (Hac.reindex t ());
  Alcotest.(check (list string)) "s0 emptied" [] (link_names t "/s0");
  Alcotest.(check (list string)) "s1 gained" [ "a.txt"; "c.txt" ] (link_names t "/s1")

let test_namespace_stale_transition () =
  (* Graceful degradation must be unaffected by the cache: an outage serves
     stale remote entries, recovery drops them — across settles that hit
     the local-result cache in between. *)
  let t = fresh () in
  Hac.write_file t "/d0/a.txt" "sorting notes";
  Hac.smkdir t "/docs" "sorting";
  let ns =
    Namespace.static ~ns_id:"lib"
      [ ("paper.ps", "dlib://lib/paper.ps", "A survey of sorting networks.\n") ]
  in
  let clock = Hac.clock t in
  let inj = Fault.create ~seed:7 ~clock () in
  Hac.smount t "/docs" (Namespace.with_policy ~clock (Namespace.with_faults inj ns));
  ignore (Hac.reindex_full t ());
  Alcotest.(check (list string))
    "healthy: local + remote" [ "a.txt"; "paper.ps" ] (link_names t "/docs");
  Fault.set_plans inj [ Fault.Outage ];
  Hac.ssync t "/docs";
  Hac.ssync t "/docs";
  Alcotest.(check (list string))
    "outage: stale remote kept" [ "a.txt"; "paper.ps" ] (link_names t "/docs");
  Alcotest.(check bool)
    "marked stale" true
    (List.length (Hac.stale_remotes t "/docs") = 1);
  Fault.clear inj;
  Hac_fault.Clock.advance clock 60.0;
  Hac.ssync t "/docs";
  Alcotest.(check bool) "recovery drops stale markers" true
    (Hac.stale_remotes t "/docs" = []);
  Alcotest.(check (list string))
    "recovered entries" [ "a.txt"; "paper.ps" ] (link_names t "/docs")

let () =
  Alcotest.run "sync_delta"
    [
      ( "differential",
        QCheck_alcotest.to_alcotest prop_delta_equals_full
        :: List.map
             (fun seed ->
               Alcotest.test_case (Printf.sprintf "seed %d" seed) `Quick (seeded_run seed))
             [ 1; 42; 1999 ] );
      ( "cache invalidation",
        [
          Alcotest.test_case "rename retargets" `Quick test_rename_invalidates;
          Alcotest.test_case "remove drops" `Quick test_remove_invalidates;
          Alcotest.test_case "prohibit/unprohibit" `Quick test_prohibition_invalidates;
          Alcotest.test_case "steady state hits" `Quick test_cache_hits_on_steady_state;
          Alcotest.test_case "namespace outage" `Quick test_namespace_stale_transition;
        ] );
    ]
