(* The crash-consistency subsystem end to end: op replay into crash states,
   the exhaustive crash-point harness, checkpointed-remount bounds and the
   durability knob.

   The crash-suite alias in test/dune runs this binary under three pinned
   FAULT_SEEDs, so every assertion must hold for any damage-offset seed. *)

open Hac_core
module Fs = Hac_vfs.Fs
module Image = Hac_vfs.Image
module Store = Hac_fault.Store
module Sim = Hac_crash.Sim
module Harness = Hac_crash.Harness

let seed =
  match Sys.getenv_opt "FAULT_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 1)
  | None -> 1

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -- Sim: crash-state reconstruction -------------------------------------- *)

let test_replay_round_trip () =
  (* Everything the VFS logs replays back to an identical tree. *)
  let fs = Fs.create () in
  let store = Store.create ~seed () in
  Fs.attach_disk fs store;
  Fs.mkdir fs "/a";
  Fs.mkdir fs "/a/b";
  Fs.write_file fs "/a/f.txt" "one two three";
  Fs.append_file fs "/a/f.txt" " four";
  Fs.create_file fs "/a/empty";
  Fs.symlink fs ~target:"/a/f.txt" ~link:"/a/lnk";
  Fs.rename fs ~src:"/a/b" ~dst:"/a/c";
  Fs.write_file fs "/a/c/g.txt" "gee";
  Fs.unlink fs "/a/empty";
  Fs.chmod fs "/a/f.txt" 0o600;
  let fs' = Sim.replay (Store.ops store) in
  Alcotest.(check (list string)) "files" (Fs.find_files fs "/") (Fs.find_files fs' "/");
  Alcotest.(check string) "contents" (Fs.read_file fs "/a/f.txt") (Fs.read_file fs' "/a/f.txt");
  Alcotest.(check string) "link" (Fs.readlink fs "/a/lnk") (Fs.readlink fs' "/a/lnk");
  check_int "mode" (Fs.stat fs "/a/f.txt").Fs.st_mode (Fs.stat fs' "/a/f.txt").Fs.st_mode

let test_rename_dup_halfway_state () =
  (* An interrupted rename leaves both entries on disk. *)
  let fs = Fs.create () in
  Fs.write_file fs "/old.txt" "payload";
  Sim.apply fs (Store.Rename_dup { src = "/old.txt"; dst = "/new.txt" });
  check_bool "src kept" true (Fs.is_file fs "/old.txt");
  check_bool "dst written" true (Fs.is_file fs "/new.txt");
  Alcotest.(check string) "dst carries the data" "payload" (Fs.read_file fs "/new.txt")

let test_torn_write_is_a_prefix () =
  let fs = Fs.create () in
  let op = Store.Write ("/f.txt", "hello world") in
  (match Store.torn op ~keep:5 with
  | Some d -> Sim.apply fs d
  | None -> Alcotest.fail "payload op must tear");
  Alcotest.(check string) "prefix survived" "hello" (Fs.read_file fs "/f.txt")

(* -- the harness: every crash point recovers ------------------------------- *)

let test_harness_no_violations () =
  (* [flight_dir "."]: a violation leaves a flight dump next to the test
     binary for CI to upload as an artifact. *)
  let o = Harness.run ~seed ~flight_dir:"." () in
  if o.Harness.violations <> [] then Alcotest.fail (Harness.summary o);
  check_bool "a real matrix was enumerated" true (o.Harness.points > 100);
  check_bool "oracle boundaries checked" true (o.Harness.oracle_points >= 10);
  check_bool "crash-during-compaction covered" true (o.Harness.compaction_points > 0);
  check_bool "crash-during-recovery covered" true (o.Harness.recovery_points > 50);
  check_bool "crash-inside-group-commit covered" true (o.Harness.truncated_batch_points > 3);
  check_bool "dropped fsyncs exercised" true (o.Harness.dropped_fsyncs > 0)

(* -- checkpointed remount bounds ------------------------------------------- *)

let remount t =
  match Image.load (Image.dump (Hac.fs t)) with
  | Ok fs -> Hac.of_fs fs
  | Error e -> Alcotest.fail ("image round trip: " ^ e)

let test_recovery_replays_only_post_checkpoint_segments () =
  let t = Hac.create () in
  Hac.mkdir t "/docs";
  for i = 1 to 20 do
    Hac.write_file t (Printf.sprintf "/docs/f%02d.txt" i) "alpha payload text"
  done;
  Hac.smkdir t "/alpha" "alpha";
  Hac.settle t;
  ignore (Hac.checkpoint t);
  (* Post-checkpoint delta: one directory, one file. *)
  Hac.mkdir t "/later";
  Hac.write_file t "/docs/tail.txt" "alpha tail";
  Hac.settle t;
  let t2 = remount t in
  let rep = Recover.reload_report t2 in
  check_bool "semantic state recovered" true (Hac.is_semantic t2 "/alpha");
  (match rep.Recover.checkpoint_epoch with
  | Some _ -> ()
  | None -> Alcotest.fail "recovery did not start from the checkpoint");
  check_int "only the open segment replayed" 1 rep.Recover.segments_replayed;
  (* The metric agrees with the report. *)
  match Hac_obs.Metrics.find (Hac.metrics t2) "recover.segments_replayed" with
  | Some (Hac_obs.Metrics.Gauge_value v) ->
      check_int "recover.segments_replayed gauge" rep.Recover.segments_replayed
        (int_of_float v)
  | _ -> Alcotest.fail "recover.segments_replayed metric missing"

let test_compaction_truncates_history () =
  let t = Hac.create () in
  Hac.mkdir t "/docs";
  Hac.write_file t "/docs/a.txt" "alpha";
  Hac.smkdir t "/alpha" "alpha";
  Hac.settle t;
  ignore (Hac.checkpoint t);
  Hac.mkdir t "/one";
  ignore (Hac.checkpoint t);
  Hac.mkdir t "/two";
  Hac.settle t;
  let removed = Hac.compact t in
  check_bool "compaction removed superseded files" true (removed > 0);
  let segs, ckpts = Journal.scan (Hac.fs t) in
  let newest = List.fold_left (fun m (e, _) -> max m e) (-1) ckpts in
  check_int "a single checkpoint survives" 1 (List.length ckpts);
  check_bool "no segment at or below the checkpoint" true
    (List.for_all (fun (e, _) -> e > newest) segs);
  (* Recovery after compaction still reproduces the full state. *)
  let t2 = remount t in
  ignore (Recover.reload t2);
  check_bool "alpha recovered from truncated chain" true (Hac.is_semantic t2 "/alpha");
  check_bool "post-compaction dirs present" true (Hac.is_dir t2 "/one" && Hac.is_dir t2 "/two")

(* A diagnostic probe before recovery must not inflate the damage count:
   [recover.records_skipped] is incremented once per damaged record per
   actual recovery, however many times the chain gets replayed — here a
   [journal_report] probe, then a [reload_report] whose torn live
   structure also forces the checkpoint-copy fallback. *)
let test_records_skipped_counted_once () =
  let t = Hac.create () in
  Hac.mkdir t "/docs";
  Hac.write_file t "/docs/a.txt" "alpha";
  Hac.smkdir t "/alpha" "alpha";
  Hac.settle t;
  ignore (Hac.checkpoint t);
  let fs2 =
    match Image.load (Image.dump (Hac.fs t)) with
    | Ok fs -> fs
    | Error e -> Alcotest.fail ("image round trip: " ^ e)
  in
  (* Two torn journal records in the open segment... *)
  let seg = Journal.segment_path (Journal.current_epoch fs2) in
  Fs.append_file fs2 seg "torn record one\ntorn record two\n";
  (* ...and a torn live structure file, so restore falls back to the
     checkpoint's copy. *)
  List.iter
    (fun n ->
      if String.length n > 3 && String.sub n 0 3 = "sd-" then begin
        let p = "/.hac/" ^ n in
        let c = Fs.read_file fs2 p in
        Fs.write_file fs2 p (String.sub c 0 (String.length c / 2))
      end)
    (Fs.readdir fs2 "/.hac");
  let t2 = Hac.of_fs fs2 in
  let probe = Recover.journal_report t2 in
  check_int "probe sees the torn records" 2 probe.Recover.corrupt;
  check_int "a probe counts nothing"
    0
    (Hac_obs.Metrics.count (Hac.instr t2).Instr.recover_records_skipped);
  let rep = Recover.reload_report t2 in
  check_int "recovery still sees them" 2 rep.Recover.journal.Recover.corrupt;
  check_bool "checkpoint-copy fallback restored the directory" true
    (Hac.is_semantic t2 "/alpha");
  check_int "counted once per record, not once per replay" 2
    (Hac_obs.Metrics.count (Hac.instr t2).Instr.recover_records_skipped)

(* -- durability knob -------------------------------------------------------- *)

let test_settle_acknowledges_only_durable_state () =
  let fs = Fs.create () in
  let store = Store.create ~seed () in
  Fs.attach_disk fs store;
  let t = Hac.of_fs fs in
  Hac.mkdir t "/docs";
  Hac.write_file t "/docs/a.txt" "alpha";
  Hac.smkdir t "/alpha" "alpha";
  check_bool "work recorded before settle" true (Store.op_count store > 0);
  Hac.settle t;
  check_int "settle ack implies full durability" (Store.op_count store)
    (Store.durable_count store)

let test_durability_knob_always_vs_batch () =
  let fs = Fs.create () in
  let store = Store.create ~seed () in
  Fs.attach_disk fs store;
  let t = Hac.of_fs fs in
  check_bool "defaults to batch" true (Hac.durability t = `Batch);
  Hac.mkdir t "/d1";
  Hac.settle ~durability:`Always t;
  check_bool "knob is sticky" true (Hac.durability t = `Always);
  let before = Store.fsync_count store in
  Hac.mkdir t "/d2";
  (* Under `Always the journal append itself carries the barrier. *)
  check_bool "append fsyncs immediately" true (Store.fsync_count store > before);
  Hac.set_durability t `Batch;
  let before = Store.fsync_count store in
  Hac.mkdir t "/d3";
  check_int "batch defers the barrier to settle" before (Store.fsync_count store);
  Hac.settle t;
  check_bool "settle completes the barrier" true (Store.fsync_count store > before)

let () =
  Alcotest.run "crash"
    [
      ( "sim",
        [
          Alcotest.test_case "replay round trip" `Quick test_replay_round_trip;
          Alcotest.test_case "rename halfway state" `Quick test_rename_dup_halfway_state;
          Alcotest.test_case "torn write prefix" `Quick test_torn_write_is_a_prefix;
        ] );
      ( "harness",
        [ Alcotest.test_case "zero invariant violations" `Quick test_harness_no_violations ]
      );
      ( "checkpoint",
        [
          Alcotest.test_case "replays only the delta" `Quick
            test_recovery_replays_only_post_checkpoint_segments;
          Alcotest.test_case "compaction truncates history" `Quick
            test_compaction_truncates_history;
          Alcotest.test_case "skipped records counted once" `Quick
            test_records_skipped_counted_once;
        ] );
      ( "durability",
        [
          Alcotest.test_case "ack implies durable" `Quick
            test_settle_acknowledges_only_durable_state;
          Alcotest.test_case "always vs batch" `Quick test_durability_knob_always_vs_batch;
        ] );
    ]
