(* Tests for the dependency DAG: cycle refusal, topological ordering and
   affected-set computation. *)

module Depgraph = Hac_depgraph.Depgraph

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_list = Alcotest.(check (list int))

let ok = function Ok () -> () | Error _ -> Alcotest.fail "unexpected cycle"

let err = function Ok () -> Alcotest.fail "expected a cycle" | Error _ -> ()

(* Build a diamond: 3 and 2 depend on 1; 4 depends on 2 and 3. *)
let diamond () =
  let g = Depgraph.create () in
  ok (Depgraph.set_deps g 2 [ 1 ]);
  ok (Depgraph.set_deps g 3 [ 1 ]);
  ok (Depgraph.set_deps g 4 [ 2; 3 ]);
  g

let test_nodes () =
  let g = Depgraph.create () in
  Depgraph.add_node g 5;
  check_bool "mem" true (Depgraph.mem g 5);
  check_bool "not mem" false (Depgraph.mem g 6);
  Depgraph.add_node g 5 (* idempotent *);
  check_int "count" 1 (Depgraph.node_count g);
  Depgraph.remove_node g 5;
  check_bool "removed" false (Depgraph.mem g 5)

let test_deps_and_dependents () =
  let g = diamond () in
  check_list "deps of 4" [ 2; 3 ] (Depgraph.deps g 4);
  check_list "dependents of 1" [ 2; 3 ] (Depgraph.dependents g 1);
  check_list "dependents of 2" [ 4 ] (Depgraph.dependents g 2);
  check_int "edges" 4 (Depgraph.edge_count g)

let test_replace_deps () =
  let g = diamond () in
  ok (Depgraph.set_deps g 4 [ 1 ]);
  check_list "new deps" [ 1 ] (Depgraph.deps g 4);
  check_list "2 lost its dependent" [] (Depgraph.dependents g 2)

let test_self_cycle () =
  let g = Depgraph.create () in
  err (Depgraph.set_deps g 1 [ 1 ])

let test_two_cycle () =
  let g = Depgraph.create () in
  ok (Depgraph.set_deps g 1 [ 2 ]);
  err (Depgraph.set_deps g 2 [ 1 ]);
  (* The failed attempt must not leave partial edges. *)
  check_list "2 unchanged" [] (Depgraph.deps g 2);
  check_list "1 unchanged" [ 2 ] (Depgraph.deps g 1)

let test_long_cycle () =
  let g = Depgraph.create () in
  ok (Depgraph.set_deps g 2 [ 1 ]);
  ok (Depgraph.set_deps g 3 [ 2 ]);
  ok (Depgraph.set_deps g 4 [ 3 ]);
  err (Depgraph.set_deps g 1 [ 4 ])

let test_partial_rollback () =
  (* One good edge plus one cycling edge: whole call must roll back. *)
  let g = Depgraph.create () in
  ok (Depgraph.set_deps g 1 [ 9 ]);
  ok (Depgraph.set_deps g 2 [ 1 ]);
  err (Depgraph.set_deps g 1 [ 5; 2 ]);
  check_list "rollback to old deps" [ 9 ] (Depgraph.deps g 1)

let test_would_cycle_pure () =
  let g = diamond () in
  check_bool "cycle detected" true (Depgraph.would_cycle g 1 [ 4 ]);
  check_list "graph unchanged" [] (Depgraph.deps g 1);
  check_bool "no cycle" false (Depgraph.would_cycle g 1 []);
  check_list "still unchanged" [] (Depgraph.deps g 1);
  check_list "4 keeps deps" [ 2; 3 ] (Depgraph.deps g 4)

let test_affected_order () =
  let g = diamond () in
  (* Everything depending on 1, dependencies before dependents. *)
  let order = Depgraph.affected g 1 in
  check_int "three affected" 3 (List.length order);
  let pos x = Option.get (List.find_index (( = ) x) order) in
  check_bool "2 before 4" true (pos 2 < pos 4);
  check_bool "3 before 4" true (pos 3 < pos 4);
  check_bool "1 not included" true (not (List.mem 1 order));
  check_list "leaf affects nothing" [] (Depgraph.affected g 4)

let test_topo_all () =
  let g = diamond () in
  let order = Depgraph.topo_all g in
  check_int "all nodes" 4 (List.length order);
  let pos x = Option.get (List.find_index (( = ) x) order) in
  check_bool "1 first" true (pos 1 < pos 2 && pos 1 < pos 3);
  check_bool "4 last" true (pos 4 > pos 2 && pos 4 > pos 3)

let test_remove_node_detaches () =
  let g = diamond () in
  Depgraph.remove_node g 2;
  check_list "4's deps lose 2" [ 3 ] (Depgraph.deps g 4);
  check_list "1's dependents lose 2" [ 3 ] (Depgraph.dependents g 1)

let test_unknown_dep_registered () =
  let g = Depgraph.create () in
  ok (Depgraph.set_deps g 1 [ 42 ]);
  check_bool "implicit node" true (Depgraph.mem g 42)

(* -- properties: random DAG construction stays acyclic and topo-consistent --- *)

let gen_edge_attempts =
  QCheck.Gen.(list_size (int_range 0 60) (pair (int_bound 12) (list_size (int_range 0 4) (int_bound 12))))

let arb_attempts =
  QCheck.make gen_edge_attempts ~print:(fun l ->
      String.concat "; "
        (List.map
           (fun (n, ds) ->
             Printf.sprintf "%d<-[%s]" n (String.concat "," (List.map string_of_int ds)))
           l))

let build_graph attempts =
  let g = Depgraph.create () in
  List.iter (fun (n, ds) -> ignore (Depgraph.set_deps g n ds)) attempts;
  g

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topo_all places deps before dependents" ~count:300 arb_attempts
    (fun attempts ->
      let g = build_graph attempts in
      let order = Depgraph.topo_all g in
      let pos = Hashtbl.create 16 in
      List.iteri (fun i n -> Hashtbl.replace pos n i) order;
      List.length order = Depgraph.node_count g
      && List.for_all
           (fun n ->
             List.for_all
               (fun d -> Hashtbl.find pos d < Hashtbl.find pos n)
               (Depgraph.deps g n))
           order)

let prop_affected_closed =
  QCheck.Test.make ~name:"affected is transitively closed" ~count:300
    (QCheck.pair arb_attempts (QCheck.int_bound 12))
    (fun (attempts, start) ->
      let g = build_graph attempts in
      QCheck.assume (Depgraph.mem g start);
      let aff = Depgraph.affected g start in
      (* Every direct dependent of anything affected (or of start) is affected. *)
      List.for_all
        (fun n -> List.for_all (fun d -> List.mem d aff) (Depgraph.dependents g n))
        (start :: aff))

(* -- antichain levels (the parallel settle schedule) ---------------------- *)

let test_levels_diamond () =
  let g = diamond () in
  check_list "level 0" [ 1 ] (List.nth (Depgraph.levels g) 0);
  check_list "level 1" [ 2; 3 ] (List.nth (Depgraph.levels g) 1);
  check_list "level 2" [ 4 ] (List.nth (Depgraph.levels g) 2);
  check_int "levels" 3 (List.length (Depgraph.levels g))

let test_levels_of_subset () =
  let g = diamond () in
  (* Restricted to {2; 3; 4}: 2 and 3 lose their only (external) dependency
     and become the first wave. *)
  Alcotest.(check (list (list int)))
    "subset levels"
    [ [ 2; 3 ]; [ 4 ] ]
    (Depgraph.levels_of g [ 4; 3; 2 ]);
  Alcotest.(check (list (list int))) "empty set" [] (Depgraph.levels_of g [])

(* Every property the level engine relies on, over random DAGs: the levels
   partition the node set, concatenation is a valid topological order, and
   no node's dependency shares (or follows) its level. *)
let levels_properties g =
  let levels = Depgraph.levels g in
  let flat = List.concat levels in
  let partition =
    List.sort compare flat = List.sort compare (Depgraph.topo_all g)
    && List.length flat = Depgraph.node_count g
  in
  let level_of = Hashtbl.create 16 in
  List.iteri (fun i level -> List.iter (fun n -> Hashtbl.replace level_of n i) level) levels;
  let deps_strictly_earlier =
    List.for_all
      (fun n ->
        List.for_all
          (fun d -> Hashtbl.find level_of d < Hashtbl.find level_of n)
          (Depgraph.deps g n))
      flat
  in
  partition && deps_strictly_earlier

let test_levels_hand_built () =
  let g = Depgraph.create () in
  (* A chain hanging off one side of a wide fan. *)
  ok (Depgraph.set_deps g 10 [ 1 ]);
  ok (Depgraph.set_deps g 11 [ 1 ]);
  ok (Depgraph.set_deps g 12 [ 1 ]);
  ok (Depgraph.set_deps g 20 [ 10 ]);
  ok (Depgraph.set_deps g 30 [ 20; 11 ]);
  check_bool "properties hold" true (levels_properties g);
  check_list "widest wave" [ 10; 11; 12 ] (List.nth (Depgraph.levels g) 1)

let prop_levels_sound =
  QCheck.Test.make ~name:"levels partition topo_all into antichain waves" ~count:300
    arb_attempts (fun attempts -> levels_properties (build_graph attempts))

let prop_no_cycles_ever =
  QCheck.Test.make ~name:"graph stays acyclic under random set_deps" ~count:300 arb_attempts
    (fun attempts ->
      let g = build_graph attempts in
      (* A DAG's topological sort covers every node. *)
      List.length (Depgraph.topo_all g) = Depgraph.node_count g)

let () =
  Alcotest.run "depgraph"
    [
      ( "structure",
        [
          Alcotest.test_case "nodes" `Quick test_nodes;
          Alcotest.test_case "deps and dependents" `Quick test_deps_and_dependents;
          Alcotest.test_case "replace deps" `Quick test_replace_deps;
          Alcotest.test_case "remove detaches" `Quick test_remove_node_detaches;
          Alcotest.test_case "unknown deps registered" `Quick test_unknown_dep_registered;
        ] );
      ( "cycles",
        [
          Alcotest.test_case "self" `Quick test_self_cycle;
          Alcotest.test_case "two-node" `Quick test_two_cycle;
          Alcotest.test_case "long" `Quick test_long_cycle;
          Alcotest.test_case "partial rollback" `Quick test_partial_rollback;
          Alcotest.test_case "would_cycle is pure" `Quick test_would_cycle_pure;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "affected order" `Quick test_affected_order;
          Alcotest.test_case "topo_all" `Quick test_topo_all;
        ] );
      ( "levels",
        [
          Alcotest.test_case "diamond" `Quick test_levels_diamond;
          Alcotest.test_case "subset" `Quick test_levels_of_subset;
          Alcotest.test_case "hand-built" `Quick test_levels_hand_built;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_topo_respects_edges;
            prop_affected_closed;
            prop_no_cycles_ever;
            prop_levels_sound;
          ] );
    ]
