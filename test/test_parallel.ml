(* The parallel settle engine's correctness claim is equivalence: settling
   with a domain pool of any width must land on exactly the state the
   sequential engine reaches — same links, same prohibitions, same persisted
   metadata — over arbitrary interleavings of content and structural
   mutations.  Differential twin runs check that claim at widths 1, 2 and 4
   (1 exercises the shared per-pass caches alone; the engine's level
   scheduling is identical at every width).  Unit tests pin down the pool
   itself and the per-pass cache invalidation story. *)

module Hac = Hac_core.Hac
module Link = Hac_core.Link
module Fs = Hac_vfs.Fs
module Pool = Hac_par.Pool

let files = [| "/d0/a.txt"; "/d0/b.txt"; "/d1/c.txt"; "/d1/d.txt"; "/d2/e.txt" |]
let words = [| "red"; "green"; "blue"; "cyan" |]
let sem_dirs = [| "/s0"; "/s1"; "/s2" |]

(* Dirref queries give the dependency DAG real depth, so parallel runs
   schedule more than one level. *)
let queries =
  [| "red"; "green OR blue"; "blue AND NOT cyan"; "{/s0} AND green"; "red OR {/s1}" |]

type op =
  | Write of int * int
  | Delete of int
  | Move of int * int
  | Smkdir of int * int
  | Schquery of int * int
  | RemoveLink of int * int
  | AddPerm of int * int

let pp_op = function
  | Write (f, w) -> Printf.sprintf "Write(%d,%d)" f w
  | Delete f -> Printf.sprintf "Delete(%d)" f
  | Move (a, b) -> Printf.sprintf "Move(%d,%d)" a b
  | Smkdir (d, q) -> Printf.sprintf "Smkdir(%d,%d)" d q
  | Schquery (d, q) -> Printf.sprintf "Schquery(%d,%d)" d q
  | RemoveLink (d, r) -> Printf.sprintf "RemoveLink(%d,%d)" d r
  | AddPerm (d, f) -> Printf.sprintf "AddPerm(%d,%d)" d f

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun f w -> Write (f, w)) (int_bound 4) (int_bound 3));
        (2, map (fun f -> Delete f) (int_bound 4));
        (2, map2 (fun a b -> Move (a, b)) (int_bound 4) (int_bound 4));
        (3, map2 (fun d q -> Smkdir (d, q)) (int_bound 2) (int_bound 4));
        (2, map2 (fun d q -> Schquery (d, q)) (int_bound 2) (int_bound 4));
        (1, map2 (fun d r -> RemoveLink (d, r)) (int_bound 2) (int_bound 3));
        (1, map2 (fun d f -> AddPerm (d, f)) (int_bound 2) (int_bound 4));
      ])

let arb_ops =
  QCheck.make
    QCheck.Gen.(list_size (int_range 4 40) gen_op)
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))

(* Ops carry only pre-drawn data, so the same op applied to two instances in
   the same state performs the same mutation on both. *)
let apply t op =
  let ignore_errors f = try f () with Hac_vfs.Errno.Error _ | Hac.Hac_error _ -> () in
  match op with
  | Write (f, w) ->
      ignore_errors (fun () ->
          Hac.write_file t files.(f) (Printf.sprintf "some %s text\n" words.(w)))
  | Delete f -> ignore_errors (fun () -> Hac.unlink t files.(f))
  | Move (a, b) -> ignore_errors (fun () -> Hac.rename t ~src:files.(a) ~dst:files.(b))
  | Smkdir (d, q) -> ignore_errors (fun () -> Hac.smkdir t sem_dirs.(d) queries.(q))
  | Schquery (d, q) -> ignore_errors (fun () -> Hac.schquery t sem_dirs.(d) queries.(q))
  | RemoveLink (d, r) ->
      ignore_errors (fun () ->
          let transients =
            Hac.links t sem_dirs.(d)
            |> List.filter (fun l -> l.Link.cls = Link.Transient)
            |> List.map (fun l -> l.Link.name)
            |> List.sort compare
          in
          match List.nth_opt transients (r mod max 1 (List.length transients)) with
          | Some name -> Hac.remove_link t ~dir:sem_dirs.(d) ~name
          | None -> ())
  | AddPerm (d, f) ->
      ignore_errors (fun () ->
          ignore (Hac.add_permanent t ~dir:sem_dirs.(d) ~target:files.(f)))

(* The externally observable semantic state: for every semantic directory,
   its links (name, canonical target, class) and its prohibited targets. *)
let observe t =
  Hac.semantic_dirs t
  |> List.map (fun dir ->
         let links =
           Hac.links t dir
           |> List.map (fun l ->
                  Printf.sprintf "%s>%s%s" l.Link.name
                    (Link.target_key l.Link.target)
                    (if l.Link.cls = Link.Permanent then "!" else ""))
           |> List.sort compare
         in
         let proh = List.sort compare (Hac.prohibited t dir) in
         Printf.sprintf "%s: [%s] proh[%s]" dir (String.concat "," links)
           (String.concat "," proh))
  |> String.concat "\n"

(* The persisted metadata area, byte for byte: the parallel engine claims
   not just equal in-memory results but identical /.hac contents (per-dir
   structures and the directory journal). *)
let persisted t =
  let fs = Hac.fs t in
  match Fs.readdir fs "/.hac" with
  | exception Hac_vfs.Errno.Error _ -> ""
  | names ->
      List.sort compare names
      |> List.map (fun n ->
             let p = "/.hac/" ^ n in
             if Fs.is_file fs p then Printf.sprintf "%s:%s" n (Fs.read_file fs p) else n)
      |> String.concat "\n"

let fresh () =
  let t = Hac.create ~stem:false () in
  List.iter (Hac.mkdir_p t) [ "/d0"; "/d1"; "/d2" ];
  t

let rec batches = function
  | [] -> []
  | ops ->
      let rec take n = function
        | x :: rest when n > 0 ->
            let h, t = take (n - 1) rest in
            (x :: h, t)
        | rest -> ([], rest)
      in
      let batch, rest = take 3 ops in
      batch :: batches rest

(* Twin run: A settles with a [domains]-wide pool, B with the plain
   sequential engine; the observable state and the persisted metadata must
   agree after every settle. *)
let twin_run ~domains ~fail ops =
  let a = fresh () and b = fresh () in
  List.iteri
    (fun i batch ->
      List.iter
        (fun op ->
          apply a op;
          apply b op)
        batch;
      Hac.settle ~domains a;
      Hac.settle b;
      if observe a <> observe b then
        fail
          (Printf.sprintf "observable divergence (domains=%d, batch %d):\n%s\nvs\n%s"
             domains i (observe a) (observe b));
      if persisted a <> persisted b then
        fail
          (Printf.sprintf "persisted divergence (domains=%d, batch %d):\n%s\nvs\n%s"
             domains i (persisted a) (persisted b)))
    (batches ops);
  (a, b)

let widths = [ 1; 2; 4 ]

let prop_parallel_equals_sequential =
  QCheck.Test.make ~name:"parallel settle equals the sequential engine" ~count:40 arb_ops
    (fun ops ->
      List.iter
        (fun domains ->
          ignore
            (twin_run ~domains ops ~fail:(fun msg -> QCheck.Test.fail_report msg)))
        widths;
      true)

(* The same differential run under pinned seeds, as plain test cases: a
   regression fails fast and reproducibly even if the QCheck draw happens to
   wander elsewhere. *)
let seeded_run seed () =
  let rand = Random.State.make [| seed |] in
  let ops = QCheck.Gen.generate1 ~rand QCheck.Gen.(list_size (int_range 30 60) gen_op) in
  List.iter
    (fun domains ->
      let a, _ = twin_run ~domains ops ~fail:Alcotest.fail in
      (* The parallel result is a true fixpoint of the sequential engine. *)
      let before = observe a in
      Hac.sync_all a;
      Alcotest.(check string)
        (Printf.sprintf "seed %d domains %d: sequential fixpoint" seed domains)
        before (observe a))
    widths

(* -- the domain pool --------------------------------------------------------- *)

let test_pool_map_order () =
  Pool.with_pool ~domains:4 (fun p ->
      let xs = Array.init 100 Fun.id in
      let ys = Pool.map p (fun x -> (2 * x) + 1) xs in
      Alcotest.(check (array int)) "order kept" (Array.map (fun x -> (2 * x) + 1) xs) ys)

let test_pool_size_one_inline () =
  let p = Pool.create () in
  Alcotest.(check int) "size" 1 (Pool.size p);
  let self = Domain.self () in
  Pool.run p (fun slot ->
      Alcotest.(check int) "slot" 0 slot;
      Alcotest.(check bool) "same domain" true (Domain.self () = self));
  Pool.shutdown p

let test_pool_exception () =
  Pool.with_pool ~domains:3 (fun p ->
      match Pool.map p (fun x -> if x = 7 then failwith "boom" else x) (Array.init 16 Fun.id) with
      | _ -> Alcotest.fail "expected the worker exception to re-raise"
      | exception Pool.Task { index; exn = Failure m; _ } ->
          Alcotest.(check string) "propagated" "boom" m;
          Alcotest.(check int) "failing element attributed" 7 index
      | exception e -> Alcotest.fail ("unexpected exception " ^ Printexc.to_string e));
  (* Width 1 attributes identically — the error surface must not depend on
     the domain budget. *)
  Pool.with_pool ~domains:1 (fun p ->
      match Pool.map p (fun x -> if x = 5 then failwith "boom" else x) (Array.init 16 Fun.id) with
      | _ -> Alcotest.fail "expected the inline exception to re-raise"
      | exception Pool.Task { index; exn = Failure m; _ } ->
          Alcotest.(check string) "propagated inline" "boom" m;
          Alcotest.(check int) "inline element attributed" 5 index);
  (* The pool survives a failing region and runs the next one. *)
  Pool.with_pool ~domains:3 (fun p ->
      (try ignore (Pool.map p (fun _ -> failwith "first") [| 1; 2; 3 |])
       with Pool.Task _ -> ());
      let ys = Pool.map p (fun x -> x * x) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "next region fine" [| 1; 4; 9 |] ys)

let test_pool_reuse () =
  Pool.with_pool ~domains:2 (fun p ->
      for i = 1 to 5 do
        let ys = Pool.map p (fun x -> x + i) (Array.init 10 Fun.id) in
        Alcotest.(check int) "sum" (45 + (10 * i)) (Array.fold_left ( + ) 0 ys)
      done)

(* -- per-pass cache invalidation ---------------------------------------------

   The caches live exactly one settle pass, so a content change between
   passes must be visible to the next one — nothing may serve yesterday's
   tokens or term results. *)

let link_names t dir =
  Hac.links t dir |> List.map (fun l -> l.Link.name) |> List.sort compare

let test_caches_see_reindex () =
  let t = fresh () in
  Hac.write_file t "/d0/a.txt" "plain red text";
  Hac.write_file t "/d0/b.txt" "plain blue text";
  Hac.smkdir t "/s0" "red";
  Hac.smkdir t "/s1" "red";
  Hac.settle ~domains:2 t;
  Alcotest.(check (list string)) "a in s0" [ "a.txt" ] (link_names t "/s0");
  Alcotest.(check (list string)) "a in s1" [ "a.txt" ] (link_names t "/s1");
  (* Flip the contents: the next pass's doc cache must tokenize the new
     bytes, and its term memo must re-expand "red" from the fresh index. *)
  Hac.write_file t "/d0/a.txt" "plain blue text";
  Hac.write_file t "/d0/b.txt" "plain red text";
  Hac.settle ~domains:2 t;
  Alcotest.(check (list string)) "b in s0" [ "b.txt" ] (link_names t "/s0");
  Alcotest.(check (list string)) "b in s1" [ "b.txt" ] (link_names t "/s1")

let test_sibling_dirs_share_pass () =
  (* Many sibling directories with the same query within one pass: the memo
     serves one evaluation to all of them, and they must all agree. *)
  let t = fresh () in
  Hac.write_file t "/d0/a.txt" "red one";
  Hac.write_file t "/d1/c.txt" "red two";
  for j = 0 to 5 do
    Hac.smkdir t (Printf.sprintf "/m%d" j) "red"
  done;
  Hac.settle ~domains:4 t;
  let expect = link_names t "/m0" in
  Alcotest.(check bool) "result is non-trivial" true (expect <> []);
  for j = 1 to 5 do
    Alcotest.(check (list string))
      (Printf.sprintf "/m%d agrees" j)
      expect
      (link_names t (Printf.sprintf "/m%d" j))
  done;
  Hac.unlink t "/d0/a.txt";
  Hac.settle ~domains:4 t;
  let expect = link_names t "/m0" in
  for j = 1 to 5 do
    Alcotest.(check (list string))
      (Printf.sprintf "/m%d agrees after delete" j)
      expect
      (link_names t (Printf.sprintf "/m%d" j))
  done

let test_ablation_knob_equivalent () =
  let t1 = fresh () and t2 = fresh () in
  Hac.set_pass_caches t2 false;
  Alcotest.(check bool) "knob reads back" false (Hac.pass_caches_enabled t2);
  List.iter
    (fun t ->
      Hac.write_file t "/d0/a.txt" "red green";
      Hac.write_file t "/d1/c.txt" "green blue";
      Hac.smkdir t "/s0" "green OR red";
      Hac.smkdir t "/s1" "green AND blue";
      Hac.settle t)
    [ t1; t2 ];
  Alcotest.(check string) "cached and uncached engines agree" (observe t1) (observe t2)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map keeps order" `Quick test_pool_map_order;
          Alcotest.test_case "size-1 runs inline" `Quick test_pool_size_one_inline;
          Alcotest.test_case "exceptions re-raise" `Quick test_pool_exception;
          Alcotest.test_case "pool is reusable" `Quick test_pool_reuse;
        ] );
      ( "differential",
        [
          Alcotest.test_case "seed 7" `Quick (seeded_run 7);
          Alcotest.test_case "seed 1234" `Quick (seeded_run 1234);
          Alcotest.test_case "seed 202599" `Quick (seeded_run 202599);
          QCheck_alcotest.to_alcotest prop_parallel_equals_sequential;
        ] );
      ( "caches",
        [
          Alcotest.test_case "reindex invalidates" `Quick test_caches_see_reindex;
          Alcotest.test_case "siblings share a pass" `Quick test_sibling_dirs_share_pass;
          Alcotest.test_case "ablation knob equivalent" `Quick test_ablation_knob_equivalent;
        ] );
    ]
