(* The CAS index's correctness claim is equivalence: with the combined
   content-and-structure postings answering term lookups (the default),
   every externally observable result — links, prohibitions, persisted
   metadata — must be byte-identical to the Glimpse block path (the
   ablation baseline), over arbitrary interleavings of content and
   structural mutations.  Differential twin runs check that claim under
   pinned seeds and a QCheck sweep; Index-level units pin the [?under]
   superset contract through renames, removals and label drift. *)

module Hac = Hac_core.Hac
module Link = Hac_core.Link
module Fs = Hac_vfs.Fs
module Fileset = Hac_bitset.Fileset
module Index = Hac_index.Index
module Search = Hac_index.Search

(* Files at two depths so posting partitions carry distinct labels, and
   semantic dirs both at the root and below a plain directory so scoped
   evaluations really run with an [?under] hint. *)
let files =
  [| "/d0/a.txt"; "/d0/b.txt"; "/nest/d1/c.txt"; "/nest/d1/d.txt"; "/nest/d2/e.txt" |]

let words = [| "red"; "green"; "blue"; "cyan" |]
let sem_dirs = [| "/s0"; "/nest/s1"; "/nest/s2" |]

let queries =
  [| "red"; "green OR blue"; "blue AND NOT cyan"; "{/s0} AND green"; "red AND blue" |]

type op =
  | Write of int * int
  | Delete of int
  | Move of int * int
  | Smkdir of int * int
  | Schquery of int * int
  | AddPerm of int * int

let pp_op = function
  | Write (f, w) -> Printf.sprintf "Write(%d,%d)" f w
  | Delete f -> Printf.sprintf "Delete(%d)" f
  | Move (a, b) -> Printf.sprintf "Move(%d,%d)" a b
  | Smkdir (d, q) -> Printf.sprintf "Smkdir(%d,%d)" d q
  | Schquery (d, q) -> Printf.sprintf "Schquery(%d,%d)" d q
  | AddPerm (d, f) -> Printf.sprintf "AddPerm(%d,%d)" d f

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun f w -> Write (f, w)) (int_bound 4) (int_bound 3));
        (2, map (fun f -> Delete f) (int_bound 4));
        (3, map2 (fun a b -> Move (a, b)) (int_bound 4) (int_bound 4));
        (3, map2 (fun d q -> Smkdir (d, q)) (int_bound 2) (int_bound 4));
        (2, map2 (fun d q -> Schquery (d, q)) (int_bound 2) (int_bound 4));
        (1, map2 (fun d f -> AddPerm (d, f)) (int_bound 2) (int_bound 4));
      ])

let arb_ops =
  QCheck.make
    QCheck.Gen.(list_size (int_range 4 40) gen_op)
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))

(* Ops carry only pre-drawn data, so the same op applied to two instances
   in the same state performs the same mutation on both. *)
let apply t op =
  let ignore_errors f = try f () with Hac_vfs.Errno.Error _ | Hac.Hac_error _ -> () in
  match op with
  | Write (f, w) ->
      ignore_errors (fun () ->
          Hac.write_file t files.(f) (Printf.sprintf "some %s text\n" words.(w)))
  | Delete f -> ignore_errors (fun () -> Hac.unlink t files.(f))
  | Move (a, b) -> ignore_errors (fun () -> Hac.rename t ~src:files.(a) ~dst:files.(b))
  | Smkdir (d, q) -> ignore_errors (fun () -> Hac.smkdir t sem_dirs.(d) queries.(q))
  | Schquery (d, q) -> ignore_errors (fun () -> Hac.schquery t sem_dirs.(d) queries.(q))
  | AddPerm (d, f) ->
      ignore_errors (fun () ->
          ignore (Hac.add_permanent t ~dir:sem_dirs.(d) ~target:files.(f)))

let observe t =
  Hac.semantic_dirs t
  |> List.map (fun dir ->
         let links =
           Hac.links t dir
           |> List.map (fun l ->
                  Printf.sprintf "%s>%s%s" l.Link.name
                    (Link.target_key l.Link.target)
                    (if l.Link.cls = Link.Permanent then "!" else ""))
           |> List.sort compare
         in
         let proh = List.sort compare (Hac.prohibited t dir) in
         Printf.sprintf "%s: [%s] proh[%s]" dir (String.concat "," links)
           (String.concat "," proh))
  |> String.concat "\n"

let persisted t =
  let fs = Hac.fs t in
  match Fs.readdir fs "/.hac" with
  | exception Hac_vfs.Errno.Error _ -> ""
  | names ->
      List.sort compare names
      |> List.map (fun n ->
             let p = "/.hac/" ^ n in
             if Fs.is_file fs p then Printf.sprintf "%s:%s" n (Fs.read_file fs p) else n)
      |> String.concat "\n"

let fresh () =
  let t = Hac.create ~stem:false () in
  List.iter (Hac.mkdir_p t) [ "/d0"; "/nest/d1"; "/nest/d2" ];
  t

let rec batches = function
  | [] -> []
  | ops ->
      let rec take n = function
        | x :: rest when n > 0 ->
            let h, t = take (n - 1) rest in
            (x :: h, t)
        | rest -> ([], rest)
      in
      let batch, rest = take 3 ops in
      batch :: batches rest

(* Twin run: A answers terms through the CAS partitions (the default), B
   through Glimpse block expansion; observable state and persisted metadata
   must be byte-identical after every settle. *)
let twin_run ~fail ops =
  let a = fresh () and b = fresh () in
  Hac.set_cas b false;
  List.iteri
    (fun i batch ->
      List.iter
        (fun op ->
          apply a op;
          apply b op)
        batch;
      Hac.settle a;
      Hac.settle b;
      if observe a <> observe b then
        fail
          (Printf.sprintf "observable divergence (batch %d):\n%s\nvs\n%s" i (observe a)
             (observe b));
      if persisted a <> persisted b then
        fail
          (Printf.sprintf "persisted divergence (batch %d):\n%s\nvs\n%s" i (persisted a)
             (persisted b)))
    (batches ops);
  (a, b)

let prop_cas_equals_blocks =
  QCheck.Test.make ~name:"CAS settle equals the block-index engine" ~count:40 arb_ops
    (fun ops ->
      ignore (twin_run ops ~fail:(fun msg -> QCheck.Test.fail_report msg));
      true)

(* The pinned regression the bench claims ride on: path-scoped queries
   return byte-identical links under the old and the new index, at three
   fixed seeds, every run. *)
let seeded_twins () =
  List.iter
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let ops =
        QCheck.Gen.generate1 ~rand QCheck.Gen.(list_size (int_range 30 60) gen_op)
      in
      let a, b = twin_run ops ~fail:Alcotest.fail in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: final state" seed)
        (observe b) (observe a))
    [ 1; 42; 1999 ]

let test_knob_reads_back () =
  let t = fresh () in
  Alcotest.(check bool) "default on" true (Hac.cas_enabled t);
  Hac.set_cas t false;
  Alcotest.(check bool) "off reads back" false (Hac.cas_enabled t);
  Hac.set_cas t true;
  Alcotest.(check bool) "on reads back" true (Hac.cas_enabled t)

(* -- Index-level scoped lookups ---------------------------------------------

   [?under] is a pure pruning hint: after intersecting with the subtree's
   documents, a scoped verified search must equal the unscoped one.  The
   units walk that contract through the cases where the partition map can
   go stale — renames across labels, removals, documents deeper than the
   label depth. *)

let mk_index docs =
  let idx = Index.create ~stem:false () in
  let contents = Hashtbl.create 16 in
  List.iter
    (fun (path, content) ->
      Hashtbl.replace contents path content;
      ignore (Index.add_document idx ~path ~content))
    docs;
  (idx, contents)

let reader contents path = Hashtbl.find_opt contents path

let scoped_equal idx contents word scope =
  let sub = Index.doc_ids_under idx scope in
  let scoped =
    Fileset.inter (Search.search_word ~under:scope idx (reader contents) word) sub
  in
  let unscoped = Fileset.inter (Search.search_word idx (reader contents) word) sub in
  Fileset.equal scoped unscoped

let base_docs =
  [
    ("/a/x/one.txt", "red green");
    ("/a/x/two.txt", "red blue");
    ("/a/y/three.txt", "green");
    ("/b/z/four.txt", "red");
    ("/b/z/deep/five.txt", "red cyan");
    ("/six.txt", "red at the root");
  ]

let test_under_equals_unscoped () =
  let idx, contents = mk_index base_docs in
  List.iter
    (fun scope ->
      List.iter
        (fun w ->
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s" w scope)
            true
            (scoped_equal idx contents w scope))
        [ "red"; "green"; "blue"; "cyan"; "absent" ])
    [ "/a"; "/a/x"; "/b"; "/b/z"; "/b/z/deep"; "/" ]

let test_rename_crosses_labels () =
  let idx, contents = mk_index base_docs in
  (* Move a document to a different partition label: the old postings stay
     (lazily), so the relabeled drift set must keep scoped answers sound. *)
  let content = Hashtbl.find contents "/a/x/one.txt" in
  Index.rename_path idx ~old_path:"/a/x/one.txt" ~new_path:"/b/z/one.txt";
  Hashtbl.remove contents "/a/x/one.txt";
  Hashtbl.replace contents "/b/z/one.txt" content;
  let id = Option.get (Index.doc_of_path idx "/b/z/one.txt") in
  let under_b = Search.search_word ~under:"/b" idx (reader contents) "green" in
  Alcotest.(check bool) "found under the new label" true (Fileset.mem under_b id);
  List.iter
    (fun scope ->
      List.iter
        (fun w ->
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s after rename" w scope)
            true
            (scoped_equal idx contents w scope))
        [ "red"; "green"; "blue" ])
    [ "/a"; "/b"; "/" ]

let test_removed_docs_masked () =
  let idx, contents = mk_index base_docs in
  let id = Option.get (Index.doc_of_path idx "/b/z/four.txt") in
  Index.remove_path idx "/b/z/four.txt";
  Hashtbl.remove contents "/b/z/four.txt";
  Alcotest.(check bool)
    "dead id not a candidate" false
    (Fileset.mem (Index.candidate_docs ~under:"/b" idx "red") id);
  Alcotest.(check bool)
    "dead id not unscoped either" false
    (Fileset.mem (Index.candidate_docs idx "red") id);
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "%s under /b after removal" w)
        true
        (scoped_equal idx contents w "/b"))
    [ "red"; "cyan" ]

let test_scoped_cost_no_larger () =
  let idx, _ = mk_index base_docs in
  (* Partition-scoped sums can only drop terms' partitions, never add (no
     label drift here), so the scoped estimate is bounded by the unscoped. *)
  List.iter
    (fun w ->
      let all = Index.term_cost idx w in
      List.iter
        (fun scope ->
          let scoped = Index.term_cost ~under:scope idx w in
          Alcotest.(check bool)
            (Printf.sprintf "cost(%s under %s) <= cost(%s)" w scope w)
            true (scoped <= all))
        [ "/a"; "/a/x"; "/b/z" ])
    [ "red"; "green"; "blue" ];
  (* And a scope that excludes every "green" document prices as empty. *)
  Alcotest.(check int) "green under /b costs 0" 0 (Index.term_cost ~under:"/b" idx "green")

let () =
  Alcotest.run "cas"
    [
      ( "differential",
        [
          Alcotest.test_case "pinned seeds 1/42/1999" `Quick seeded_twins;
          Alcotest.test_case "knob reads back" `Quick test_knob_reads_back;
          QCheck_alcotest.to_alcotest prop_cas_equals_blocks;
        ] );
      ( "scoped",
        [
          Alcotest.test_case "under equals unscoped" `Quick test_under_equals_unscoped;
          Alcotest.test_case "rename crosses labels" `Quick test_rename_crosses_labels;
          Alcotest.test_case "removals masked" `Quick test_removed_docs_masked;
          Alcotest.test_case "scoped cost bounded" `Quick test_scoped_cost_no_larger;
        ] );
    ]
