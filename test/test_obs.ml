(* Tests for the observability layer: the metrics registry (counters,
   gauges, log-bucketed histograms and their percentiles), the tracer
   (nesting, ordering and eviction under the virtual clock), the wiring of
   both through the stack (result cache, resilient namespaces, settle
   spans), and the differential guarantee that turning tracing on never
   changes what HAC computes. *)

module Metrics = Hac_obs.Metrics
module Trace = Hac_obs.Trace
module Ctx = Hac_obs.Ctx
module Flight = Hac_obs.Flight
module Slo = Hac_obs.Slo
module Export = Hac_obs.Export
module Clock = Hac_fault.Clock
module Breaker = Hac_fault.Breaker
module Fault = Hac_fault.Fault
module Namespace = Hac_remote.Namespace
module Hac = Hac_core.Hac
module Link = Hac_core.Link
module Rescache = Hac_core.Rescache
module Fs = Hac_vfs.Fs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let counter_value m name =
  match Metrics.find m name with
  | Some (Metrics.Counter_value n) -> n
  | _ -> Alcotest.failf "no counter %s" name

let gauge_value m name =
  match Metrics.find m name with
  | Some (Metrics.Gauge_value v) -> v
  | _ -> Alcotest.failf "no gauge %s" name

let histogram_value m name =
  match Metrics.find m name with
  | Some (Metrics.Histogram_value s) -> s
  | _ -> Alcotest.failf "no histogram %s" name

(* -- registry basics ------------------------------------------------------- *)

let test_counters_and_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a.count" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check_int "counter accumulates" 5 (Metrics.count c);
  (* Same name returns the same instrument, not a fresh one. *)
  Metrics.incr (Metrics.counter m "a.count");
  check_int "find-or-create aliases" 6 (Metrics.count c);
  let g = Metrics.gauge m "a.gauge" in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge holds last value" 2.5 (Metrics.value g);
  (match Metrics.gauge m "a.count" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch not rejected");
  Metrics.reset m;
  check_int "reset zeroes counters in place" 0 (Metrics.count c);
  Alcotest.(check (float 0.0)) "reset zeroes gauges" 0.0 (Metrics.value g)

let test_disable_is_noop () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  let g = Metrics.gauge m "g" in
  let h = Metrics.histogram m "h" in
  Metrics.set_enabled m false;
  Metrics.incr c;
  Metrics.set g 7.0;
  Metrics.observe h 0.5;
  check_int "disabled counter unchanged" 0 (Metrics.count c);
  Alcotest.(check (float 0.0)) "disabled gauge unchanged" 0.0 (Metrics.value g);
  check_int "disabled histogram unchanged" 0 (Metrics.summary h).Metrics.count;
  Metrics.set_enabled m true;
  Metrics.incr c;
  check_int "re-enabled counter counts" 1 (Metrics.count c)

(* -- histograms ------------------------------------------------------------ *)

let test_histogram_buckets () =
  check_int "underflow lands in bucket 0" 0 (Metrics.bucket_of 0.0);
  check_int "lo itself lands in bucket 0" 0 (Metrics.bucket_of 1e-9);
  check_int "just above lo lands in bucket 1" 1 (Metrics.bucket_of 2e-9);
  (* Bucket upper bounds are consistent with bucket assignment. *)
  List.iter
    (fun i ->
      check_int
        (Printf.sprintf "upper bound of bucket %d maps back" i)
        i
        (Metrics.bucket_of (Metrics.bucket_upper i)))
    [ 1; 5; 20; 40 ];
  check_int "huge values saturate in the last bucket" (Metrics.buckets - 1)
    (Metrics.bucket_of 1e30);
  check_bool "last bucket is unbounded" true
    (Metrics.bucket_upper (Metrics.buckets - 1) = infinity)

let test_histogram_percentiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  (* A single repeated value: every percentile is clamped onto it. *)
  for _ = 1 to 10 do
    Metrics.observe h 0.003
  done;
  let s = Metrics.summary h in
  check_int "count" 10 s.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 0.03 s.Metrics.sum;
  Alcotest.(check (float 0.0)) "p50 clamps to the one value" 0.003 s.Metrics.p50;
  Alcotest.(check (float 0.0)) "p99 clamps to the one value" 0.003 s.Metrics.p99;
  (* A skewed distribution: the p50/p90 ranks sit in the small-value
     bucket (within one log2 bucket of 1 ms) while p99 reaches the single
     large observation, clamped to the true max. *)
  let h2 = Metrics.histogram m "lat2" in
  for _ = 1 to 9 do
    Metrics.observe h2 0.001
  done;
  Metrics.observe h2 1.0;
  let s2 = Metrics.summary h2 in
  check_bool "p50 within a bucket of the bulk" true
    (s2.Metrics.p50 >= 0.001 && s2.Metrics.p50 <= 0.0021);
  check_bool "p90 still in the bulk" true (s2.Metrics.p90 <= 0.0021);
  Alcotest.(check (float 0.0)) "p99 reaches the outlier, clamped to max" 1.0
    s2.Metrics.p99;
  Alcotest.(check (float 0.0)) "min tracked exactly" 0.001 s2.Metrics.vmin;
  Alcotest.(check (float 0.0)) "max tracked exactly" 1.0 s2.Metrics.vmax

(* -- tracer ---------------------------------------------------------------- *)

let make_tracer ?capacity ?on_close () =
  let clock = Clock.create () in
  let tr = Trace.create ?capacity ?on_close ~now:(fun () -> Clock.now clock) () in
  (clock, tr)

let test_span_nesting_and_order () =
  let clock, tr = make_tracer () in
  Trace.set_enabled tr true;
  Trace.with_span tr ~name:"outer" (fun () ->
      Clock.advance clock 1.0;
      Trace.with_span tr ~name:"inner" (fun () ->
          Trace.set_attr_int tr "k" 7;
          Clock.advance clock 0.5);
      Trace.with_span tr ~name:"inner2" (fun () -> ()));
  (match Trace.finished tr with
  | [ i1; i2; outer ] ->
      (* Children close before their parent; open order is the seq order. *)
      Alcotest.(check string) "first closed" "inner" i1.Trace.name;
      Alcotest.(check string) "second closed" "inner2" i2.Trace.name;
      Alcotest.(check string) "root closed last" "outer" outer.Trace.name;
      check_bool "seq follows open order" true
        (outer.Trace.seq < i1.Trace.seq && i1.Trace.seq < i2.Trace.seq);
      check_int "root depth" 0 outer.Trace.depth;
      check_int "child depth" 1 i1.Trace.depth;
      check_bool "child links to parent" true (i1.Trace.parent = Some outer.Trace.id);
      Alcotest.(check (float 0.0)) "child opens at virtual 1.0" 1.0 i1.Trace.vstart;
      Alcotest.(check (float 1e-9)) "child virtual duration" 0.5 (Trace.v_duration i1);
      Alcotest.(check (float 1e-9)) "root spans the whole window" 1.5
        (Trace.v_duration outer);
      check_bool "attr recorded on the innermost span" true
        (List.mem_assoc "k" i1.Trace.attrs && List.assoc "k" i1.Trace.attrs = "7")
  | spans -> Alcotest.failf "expected 3 finished spans, got %d" (List.length spans));
  check_int "jsonl has one line per span" 3
    (List.length
       (List.filter (fun l -> l <> "")
          (String.split_on_char '\n' (Trace.to_jsonl tr))))

let test_span_disabled_and_failed () =
  let _, tr = make_tracer () in
  check_int "disabled with_span is passthrough" 42
    (Trace.with_span tr ~name:"ghost" (fun () -> 42));
  check_int "disabled leaves no spans" 0 (Trace.total tr);
  Trace.set_enabled tr true;
  (match Trace.with_span tr ~name:"boom" (fun () -> failwith "no") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  (match Trace.finished tr with
  | [ sp ] ->
      check_bool "escaping exception marks the span failed" true sp.Trace.failed
  | _ -> Alcotest.fail "failed span not recorded");
  (* The active stack unwound: the next span is a fresh root. *)
  Trace.with_span tr ~name:"after" (fun () -> ());
  match Trace.finished tr with
  | [ _; after ] ->
      check_bool "stack unwound after failure" true
        (after.Trace.parent = None && after.Trace.depth = 0)
  | _ -> Alcotest.fail "expected two spans"

let test_ring_eviction () =
  let _, tr = make_tracer ~capacity:4 () in
  Trace.set_enabled tr true;
  for i = 1 to 6 do
    Trace.with_span tr ~name:(Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let names = List.map (fun sp -> sp.Trace.name) (Trace.finished tr) in
  Alcotest.(check (list string)) "ring keeps the newest, oldest first"
    [ "s3"; "s4"; "s5"; "s6" ] names;
  check_int "evictions counted" 2 (Trace.dropped tr);
  check_int "total unaffected by eviction" 6 (Trace.total tr);
  Trace.clear tr;
  check_int "clear empties the ring" 0 (List.length (Trace.finished tr));
  check_int "clear resets dropped" 0 (Trace.dropped tr);
  check_int "clear resets total" 0 (Trace.total tr)

let test_on_close_feeds_histograms () =
  let t = Hac.create () in
  Trace.set_enabled (Hac.tracer t) true;
  Hac.write_file t "/a.txt" "alpha beta";
  Hac.smkdir t "/q" "alpha";
  ignore (Hac.reindex t ());
  let s = histogram_value (Hac.metrics t) "span.sync.reindex.cpu_s" in
  check_bool "every finished span feeds span.<name>.cpu_s" true (s.Metrics.count > 0);
  let s2 = histogram_value (Hac.metrics t) "span.query.eval.cpu_s" in
  check_bool "query evaluation histogrammed" true (s2.Metrics.count > 0)

(* -- differential: tracing must not change behaviour ----------------------- *)

let run_workload ~traced =
  let t = Hac.create ~stem:false () in
  if traced then Trace.set_enabled (Hac.tracer t) true;
  let fs = Hac.fs t in
  Fs.mkdir_p fs "/docs";
  for i = 0 to 19 do
    Fs.write_file fs
      (Printf.sprintf "/docs/f%02d.txt" i)
      (Printf.sprintf "file number %d %s" i (if i mod 3 = 0 then "triple" else "plain"))
  done;
  Hac.smkdir t "/threes" "triple";
  Hac.smkdir t "/both" "triple AND number";
  ignore (Hac.reindex t ());
  Fs.write_file fs "/docs/f01.txt" "file number 1 triple now";
  Fs.write_file fs "/docs/f03.txt" "file number 3 plain now";
  ignore (Hac.reindex t ());
  Hac.schquery t "/both" "plain AND number";
  ignore (Hac.reindex t ());
  let links d = List.sort compare (List.map (fun l -> l.Link.name) (Hac.links t d)) in
  (Hac.semantic_dirs t, links "/threes", links "/both", Hac.dirty_count t)

let test_differential_tracing () =
  let plain = run_workload ~traced:false in
  let traced = run_workload ~traced:true in
  check_bool "tracing on and off compute identical results" true (plain = traced)

(* -- breaker + namespace metrics ------------------------------------------- *)

let test_breaker_metrics () =
  let clock = Clock.create () in
  let m = Metrics.create () in
  let ns =
    Namespace.static ~ns_id:"flaky"
      [ ("doc.ps", "dlib://flaky/doc.ps", "sorting networks survey") ]
  in
  let inj = Fault.create ~seed:11 ~clock () in
  let wrapped = Namespace.with_policy ~metrics:m ~clock (Namespace.with_faults inj ns) in
  ignore (wrapped.Namespace.search "sorting");
  check_int "healthy call counted" 1 (counter_value m "ns.flaky.calls");
  check_int "no failures yet" 0 (counter_value m "ns.flaky.failures");
  Alcotest.(check (float 0.0)) "breaker gauge starts closed" 0.0
    (gauge_value m "ns.flaky.breaker.state");
  check_bool "slack histogram observed on success" true
    ((histogram_value m "ns.flaky.deadline_slack_s").Metrics.count > 0);
  Fault.set_plans inj [ Fault.Outage ];
  for _ = 1 to 4 do
    (try ignore (wrapped.Namespace.search "sorting") with Namespace.Unavailable _ -> ())
  done;
  Alcotest.(check (float 0.0)) "breaker gauge open under persistent failure" 2.0
    (gauge_value m "ns.flaky.breaker.state");
  check_bool "transitions counted" true
    (counter_value m "ns.flaky.breaker.transitions" >= 1);
  check_bool "failures counted" true (counter_value m "ns.flaky.failures" > 0);
  check_bool "retries counted" true (counter_value m "ns.flaky.retries" > 0);
  (* Health is a reader over the same instruments — single source of truth. *)
  (match Namespace.health wrapped with
  | Some h ->
      check_int "health.total_calls reads the registry"
        (counter_value m "ns.flaky.calls")
        h.Namespace.total_calls;
      check_int "health.total_failures reads the registry"
        (counter_value m "ns.flaky.failures")
        h.Namespace.total_failures;
      check_int "health.total_retries reads the registry"
        (counter_value m "ns.flaky.retries")
        h.Namespace.total_retries;
      check_bool "health sees the open breaker" true (h.Namespace.breaker = Breaker.Open)
  | None -> Alcotest.fail "policy-wrapped namespace has no health");
  Fault.clear inj;
  Clock.advance clock 60.0;
  ignore (wrapped.Namespace.search "sorting");
  Alcotest.(check (float 0.0)) "recovery closes the breaker gauge" 0.0
    (gauge_value m "ns.flaky.breaker.state");
  check_bool "open -> half-open -> closed adds transitions" true
    (counter_value m "ns.flaky.breaker.transitions" >= 3)

(* -- result cache thin reader ---------------------------------------------- *)

let test_rescache_thin_reader () =
  let t = Hac.create () in
  Hac.write_file t "/a.txt" "needle in haystack";
  Hac.smkdir t "/q" "needle";
  ignore (Hac.reindex t ());
  Hac.sync_all t;
  Hac.sync_all t;
  let st = Hac.result_cache_stats t in
  let m = Hac.metrics t in
  check_int "stats.hits is the rescache.hits counter"
    (counter_value m "rescache.hits")
    st.Rescache.hits;
  check_int "stats.misses is the rescache.misses counter"
    (counter_value m "rescache.misses")
    st.Rescache.misses;
  check_int "stats.drops is the rescache.drops counter"
    (counter_value m "rescache.drops")
    st.Rescache.drops;
  check_bool "entries gauge mirrors the table" true
    (gauge_value m "rescache.entries" = float_of_int st.Rescache.entries);
  check_bool "warm no-change sync_all hits" true (st.Rescache.hits > 0);
  Hac.reset_result_cache_stats t;
  check_int "reset zeroes the registry counters too" 0
    (counter_value m "rescache.hits" + counter_value m "rescache.misses"
   + counter_value m "rescache.drops")

(* -- request trace context -------------------------------------------------- *)

let test_ctx_telescoping () =
  let g = Ctx.gen ~seed:7 in
  let c = Ctx.make ~id:(Ctx.fresh g) ~now:10.0 in
  Ctx.record_until c "admission" 10.25;
  Ctx.record_until c "queue" 10.75;
  Ctx.record_until c "eval" 11.0;
  (* A repeated stage accumulates under its first occurrence. *)
  Ctx.record_until c "queue" 11.5;
  Alcotest.(check (list string))
    "first-occurrence order"
    [ "admission"; "queue"; "eval" ]
    (List.map fst (Ctx.stages c));
  Alcotest.(check (float 1e-9)) "repeat accumulates" 1.0 (Option.get (Ctx.find c "queue"));
  Alcotest.(check (float 1e-9)) "stages telescope to the full interval" 1.5 (Ctx.total c);
  check_int "hex id is 16 digits" 16 (String.length (Ctx.id_hex c))

let test_ctx_ids_unique_across_rings () =
  (* The satellite guarantee: seeded 64-bit ids, no collisions within a
     stream, across differently seeded streams, across [clear], or across
     multiple tracer rings. *)
  let seen = Hashtbl.create 4096 in
  let g1 = Ctx.gen ~seed:1 and g2 = Ctx.gen ~seed:2 in
  for _ = 1 to 1000 do
    let a = Ctx.fresh g1 and b = Ctx.fresh g2 in
    check_bool "ids non-negative" true (a >= 0 && b >= 0);
    check_bool "no id collision" false (Hashtbl.mem seen a || Hashtbl.mem seen b);
    Hashtbl.replace seen a ();
    Hashtbl.replace seen b ()
  done;
  let clock = Clock.create () in
  let now () = Clock.now clock in
  let t1 = Trace.create ~now () and t2 = Trace.create ~now () in
  Trace.set_enabled t1 true;
  Trace.set_enabled t2 true;
  let id_of tr =
    Trace.with_span tr ~name:"s" (fun () -> ());
    match Trace.finished tr with
    | sp :: _ -> sp.Trace.id
    | [] -> Alcotest.fail "no finished span"
  in
  let a = id_of t1 in
  Trace.clear t1;
  let b = id_of t1 in
  let c = id_of t2 in
  check_bool "span ids unique across clear" true (a <> b);
  check_bool "span ids unique across rings" true (a <> c && b <> c)

(* -- SLO burn-rate monitor --------------------------------------------------- *)

let test_slo_burn_boundary () =
  let clock = Clock.create () in
  let m = Metrics.create () in
  let slo =
    Slo.create ~metrics:m
      ~now:(fun () -> Clock.now clock)
      [ { Slo.op = "read"; latency_s = 1.0; goal = 0.9 } ]
  in
  (* 1 bad of 10 consumes the 10% budget exactly: burn = 1.0 on both
     windows, and the >= threshold fires at the closed boundary. *)
  for _ = 1 to 9 do
    Slo.observe slo ~op:"read" ~latency_s:0.2 ~ok:true
  done;
  Slo.observe slo ~op:"read" ~latency_s:5.0 ~ok:true;
  (match Slo.evaluate slo with
  | [ a ] ->
      Alcotest.(check string) "alert names the op" "read" a.Slo.a_op;
      Alcotest.(check (float 1e-9)) "burn at exactly 1.0" 1.0 a.Slo.fast_burn
  | l -> Alcotest.failf "expected exactly one alert, got %d" (List.length l));
  check_bool "breached while active" true (Slo.breached slo);
  Alcotest.(check (list string)) "breached op listed" [ "read" ] (Slo.breached_ops slo);
  check_int "alert counter" 1 (counter_value m "slo.read.alerts");
  Alcotest.(check (float 0.0)) "breached gauge" 1.0 (gauge_value m "slo.read.breached");
  (* Rising edge only: re-evaluating the same state is silent. *)
  check_int "no re-fire without a new edge" 0 (List.length (Slo.evaluate slo));
  (* One more good sample tips the fraction below the budget: 1/11 < 10%. *)
  Slo.observe slo ~op:"read" ~latency_s:0.2 ~ok:true;
  check_int "below the boundary does not fire" 0 (List.length (Slo.evaluate slo));
  check_bool "alert cleared" false (Slo.breached slo)

let test_slo_below_boundary_does_not_fire () =
  let clock = Clock.create () in
  let slo =
    Slo.create
      ~now:(fun () -> Clock.now clock)
      [ { Slo.op = "read"; latency_s = 1.0; goal = 0.9 } ]
  in
  for _ = 1 to 10 do
    Slo.observe slo ~op:"read" ~latency_s:0.2 ~ok:true
  done;
  Slo.observe slo ~op:"read" ~latency_s:5.0 ~ok:true;
  check_int "1 bad of 11 stays under the budget" 0 (List.length (Slo.evaluate slo))

let test_slo_windows_and_recovery () =
  let clock = Clock.create () in
  let m = Metrics.create () in
  let alerts = ref [] in
  let slo =
    Slo.create ~metrics:m
      ~on_alert:(fun a -> alerts := a :: !alerts)
      ~now:(fun () -> Clock.now clock)
      [ { Slo.op = "write"; latency_s = 1.0; goal = 0.5 } ]
  in
  (* Errors are bad even under the latency target. *)
  for _ = 1 to 4 do
    Slo.observe slo ~op:"write" ~latency_s:0.1 ~ok:false
  done;
  check_int "alert fired" 1 (List.length (Slo.evaluate slo));
  check_int "on_alert callback fired" 1 (List.length !alerts);
  (* Past the fast window the burst ages out of it: the alert clears even
     though the slow window still remembers the burn. *)
  Clock.advance clock 301.0;
  Slo.observe slo ~op:"write" ~latency_s:0.1 ~ok:true;
  check_int "no rising edge while clearing" 0 (List.length (Slo.evaluate slo));
  check_bool "cleared once the fast window is clean" false (Slo.breached slo);
  (match Slo.burn slo ~op:"write" with
  | Some (fast, slow) ->
      check_bool "fast window forgot the burst" true (fast < 1.0);
      check_bool "slow window still remembers" true (slow >= 1.0)
  | None -> Alcotest.fail "tracked op must report burn rates");
  (* A fresh burst re-fires: the rising edge is counted again. *)
  for _ = 1 to 4 do
    Slo.observe slo ~op:"write" ~latency_s:0.1 ~ok:false
  done;
  check_int "re-fired" 1 (List.length (Slo.evaluate slo));
  check_int "alerts counter accumulates" 2 (counter_value m "slo.write.alerts")

(* -- flight recorder --------------------------------------------------------- *)

let test_flight_ring_roundtrip () =
  let clock = Clock.create () in
  let m = Metrics.create () in
  let fl = Flight.create ~capacity:4 ~metrics:m ~now:(fun () -> Clock.now clock) () in
  for i = 1 to 3 do
    Clock.advance clock 1.0;
    Flight.metric fl ~name:(Printf.sprintf "m%d" i) ~value:(float_of_int i)
  done;
  Flight.span fl ~name:"settle" ~vstart:1.0 ~vstop:2.5 ~failed:false;
  Flight.transition fl ~subsystem:"server" ~from_:"ok" ~to_:"degraded" ~reason:"slo burn";
  Flight.metric fl ~name:"m4" ~value:4.0;
  check_int "ring bounded" 4 (Flight.stored fl);
  check_int "evictions counted" 2 (Flight.dropped fl);
  check_int "everything counted" 6 (Flight.total fl);
  check_int "events counter" 6 (counter_value m "flight.events");
  let names =
    List.map
      (fun (e : Flight.entry) ->
        match e.Flight.ev with
        | Flight.Metric { name; _ } -> name
        | Flight.Span { name; _ } -> name
        | Flight.Transition { subsystem; _ } -> subsystem)
      (Flight.entries fl)
  in
  Alcotest.(check (list string))
    "oldest evicted, oldest-first order" [ "m3"; "settle"; "server"; "m4" ] names;
  let img = Flight.encode ~reason:"unit test" fl in
  (match Flight.decode img with
  | Ok d ->
      Alcotest.(check string) "reason survives" "unit test" d.Flight.reason;
      check_bool "entries survive the round trip" true (d.Flight.events = Flight.entries fl)
  | Error e -> Alcotest.fail ("decode: " ^ e));
  (match Flight.decode "not a flight dump" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not decode");
  match Flight.decode (String.sub img 0 (String.length img - 3)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated image must not decode"

let tmp_dir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_flight_breach_dumps () =
  let clock = Clock.create () in
  let fl = Flight.create ~now:(fun () -> Clock.now clock) () in
  Flight.metric fl ~name:"x" ~value:1.0;
  check_bool "no auto-dump dir, no file" true (Flight.breach fl ~reason:"r" = None);
  let dir = tmp_dir "hacflight" in
  Flight.set_auto_dump fl (Some dir);
  (match Flight.breach fl ~reason:"slo breach: read" with
  | Some path -> (
      check_bool "dump file exists" true (Sys.file_exists path);
      match Flight.load path with
      | Ok d ->
          Alcotest.(check string) "reason preserved" "slo breach: read" d.Flight.reason;
          check_int "ring content dumped" 1 (List.length d.Flight.events)
      | Error e -> Alcotest.fail ("load: " ^ e))
  | None -> Alcotest.fail "breach with an auto-dump dir must write");
  (match Flight.breach fl ~reason:"again" with
  | Some _ -> check_int "two distinct dumps on disk" 2 (Array.length (Sys.readdir dir))
  | None -> Alcotest.fail "second breach must write");
  check_int "dumps counted" 2 (Flight.dumps fl);
  rm_rf dir

(* -- exporters ---------------------------------------------------------------- *)

let has_sub hay sub =
  let n = String.length sub and l = String.length hay in
  let rec go i = i + n <= l && (String.sub hay i n = sub || go (i + 1)) in
  go 0

let test_prom_exposition () =
  let m = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter m "serve.ops-total");
  Metrics.set (Metrics.gauge m "slo.read.burn_fast") 1.25;
  let h = Metrics.histogram m "span.settle.cpu_s" in
  Metrics.observe h 0.001;
  Metrics.observe h 0.004;
  let text = Export.render_prom m in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' text) in
  let name_ok n =
    n <> ""
    && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
         n
  in
  let types = Hashtbl.create 8 and helps = Hashtbl.create 8 in
  List.iter
    (fun line ->
      if String.length line > 7 && String.sub line 0 7 = "# TYPE " then (
        match String.split_on_char ' ' line with
        | [ _; _; fam; kind ] ->
            check_bool ("family name valid: " ^ fam) true (name_ok fam);
            check_bool ("known kind: " ^ kind) true
              (List.mem kind [ "counter"; "gauge"; "summary" ]);
            check_bool ("one TYPE per family: " ^ fam) false (Hashtbl.mem types fam);
            Hashtbl.replace types fam kind
        | _ -> Alcotest.fail ("malformed TYPE line: " ^ line))
      else if String.length line > 7 && String.sub line 0 7 = "# HELP " then (
        match String.split_on_char ' ' line with
        | _ :: _ :: fam :: _ ->
            check_bool ("one HELP per family: " ^ fam) false (Hashtbl.mem helps fam);
            Hashtbl.replace helps fam ()
        | _ -> Alcotest.fail ("malformed HELP line: " ^ line))
      else if line.[0] <> '#' then (
        let name =
          match String.index_opt line '{' with
          | Some i -> String.sub line 0 i
          | None -> (
              match String.index_opt line ' ' with
              | Some i -> String.sub line 0 i
              | None -> line)
        in
        check_bool ("sample name valid: " ^ name) true (name_ok name);
        check_bool ("hac_ prefixed: " ^ name) true
          (String.length name > 4 && String.sub name 0 4 = "hac_")))
    lines;
  check_int "every family typed" (Hashtbl.length helps) (Hashtbl.length types);
  check_bool "counter sample" true (has_sub text "hac_serve_ops_total 3");
  check_bool "gauge sample" true (has_sub text "hac_slo_read_burn_fast 1.25");
  check_bool "summary quantiles" true
    (has_sub text "hac_span_settle_cpu_s{quantile=\"0.99\"}");
  check_bool "summary count" true (has_sub text "hac_span_settle_cpu_s_count 2");
  Alcotest.(check string) "sanitize keeps colons, replaces the rest" "hac_a_b_c:d"
    (Export.sanitize "a-b.c:d")

let test_jsonl_export () =
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter m "a");
  Metrics.set (Metrics.gauge m "b") 0.5;
  Metrics.observe (Metrics.histogram m "c") 0.25;
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Export.to_jsonl m))
  in
  check_int "one line per instrument" 3 (List.length lines);
  List.iter
    (fun l ->
      check_bool "one object per line" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}');
      check_bool "kind tagged" true (has_sub l "\"kind\":"))
    lines

(* -- json export ----------------------------------------------------------- *)

let test_json_export () =
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter m "x.calls");
  Metrics.set (Metrics.gauge m "x.level") 1.5;
  Metrics.observe (Metrics.histogram m "x.lat") 0.25;
  let j = Metrics.to_json m in
  let has sub =
    let n = String.length sub and l = String.length j in
    let rec go i = i + n <= l && (String.sub j i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "counter serialised" true (has "\"x.calls\": { \"type\": \"counter\"");
  check_bool "gauge serialised" true (has "\"x.level\": { \"type\": \"gauge\"");
  check_bool "histogram serialised with percentiles" true
    (has "\"x.lat\": { \"type\": \"histogram\"" && has "\"p99\"")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
          Alcotest.test_case "disable is a no-op" `Quick test_disable_is_noop;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "json export" `Quick test_json_export;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and order" `Quick test_span_nesting_and_order;
          Alcotest.test_case "disabled and failed spans" `Quick
            test_span_disabled_and_failed;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "on_close feeds histograms" `Quick
            test_on_close_feeds_histograms;
        ] );
      ( "ctx",
        [
          Alcotest.test_case "telescoping stage breakdown" `Quick test_ctx_telescoping;
          Alcotest.test_case "ids unique across rings" `Quick
            test_ctx_ids_unique_across_rings;
        ] );
      ( "slo",
        [
          Alcotest.test_case "fires at the exact boundary" `Quick test_slo_burn_boundary;
          Alcotest.test_case "below the boundary is quiet" `Quick
            test_slo_below_boundary_does_not_fire;
          Alcotest.test_case "windows and recovery" `Quick test_slo_windows_and_recovery;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring eviction and round trip" `Quick
            test_flight_ring_roundtrip;
          Alcotest.test_case "breach dumps" `Quick test_flight_breach_dumps;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus exposition" `Quick test_prom_exposition;
          Alcotest.test_case "jsonl snapshot" `Quick test_jsonl_export;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "tracing is behaviour-neutral" `Quick
            test_differential_tracing;
          Alcotest.test_case "breaker gauge and transitions" `Quick test_breaker_metrics;
          Alcotest.test_case "rescache thin reader" `Quick test_rescache_thin_reader;
        ] );
    ]
