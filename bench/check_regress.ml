(* Bench-trajectory regression gate.

   Compares freshly generated smoke-mode BENCH_*.json files against the
   checked-in baselines under bench/baselines/, key by key:

   - booleans and strings must match exactly (shape flags, modes,
     verified_equal, decode_ok — the qualitative results of each study);
   - numbers must sit within a 10% relative band of the baseline, which
     keeps deterministic counts (commits, spans, journal records, alert
     counts) honest while leaving slack for representation drift;
   - wall-clock-derived values (keys ending in _s/_pct, speedups,
     throughputs) and environment-dependent values (host_cores, the
     work-stealing cache splits) are reported but never gated — timing on
     a shared CI runner is not reproducible, counts are;
   - a key present in the baseline but missing from the fresh run is a
     regression (schema loss); new keys in the fresh run are fine.

   Usage: check_regress BASELINE FRESH [BASELINE FRESH ...]
   Exits non-zero if any gated key regressed, so the CI workflow fails. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
          advance ();
          skip_ws ()
      | _ -> ()
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected '%c'" c);
    advance ()
  in
  let lit l v =
    if !pos + String.length l <= n && String.sub s !pos (String.length l) = l then (
      pos := !pos + String.length l;
      v)
    else fail "bad literal"
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              (* Comparison only needs a stable rendering, not a decode. *)
              Buffer.add_string b "\\u";
              for _ = 1 to 4 do
                advance ();
                Buffer.add_char b (peek ())
              done
          | c -> Buffer.add_char b c);
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let isnum c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && isnum s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (
          advance ();
          Obj [])
        else
          let rec fields acc =
            let k = string_lit () in
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                skip_ws ();
                fields ((k, v) :: acc)
            | '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (
          advance ();
          Arr [])
        else
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elems (v :: acc)
            | ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
    | '"' -> Str (string_lit ())
    | 't' -> lit "true" (Bool true)
    | 'f' -> lit "false" (Bool false)
    | 'n' -> lit "null" Null
    | c when c = '-' || (c >= '0' && c <= '9') -> Num (number ())
    | _ -> fail "unexpected character"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* -- comparison policy ------------------------------------------------------ *)

let contains hay sub =
  let n = String.length sub and l = String.length hay in
  let rec go i = i + n <= l && (String.sub hay i n = sub || go (i + 1)) in
  go 0

(* Environment- or schedule-dependent keys: never gated. *)
let env_keys = [ "host_cores"; "memo_hits"; "memo_misses"; "doc_hits"; "doc_misses" ]

let ungated key =
  Filename.check_suffix key "_s"
  || Filename.check_suffix key "_pct"
  || key = "pct" || contains key "speedup" || contains key "per_s"
  || List.mem key env_keys

let problems = ref []
let flag path msg = problems := Printf.sprintf "  %s: %s" path msg :: !problems

let last_segment path =
  match String.rindex_opt path '.' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let rec compare_json path base fresh =
  match (base, fresh) with
  | Obj bs, Obj fs ->
      List.iter
        (fun (k, bv) ->
          let p = path ^ "." ^ k in
          match List.assoc_opt k fs with
          | None -> flag p "key missing from the fresh run"
          | Some fv -> compare_json p bv fv)
        bs
  | Arr bs, Arr fs ->
      if List.length bs <> List.length fs then
        flag path
          (Printf.sprintf "array length %d -> %d" (List.length bs) (List.length fs))
      else
        List.iteri
          (fun i bv -> compare_json (Printf.sprintf "%s[%d]" path i) bv (List.nth fs i))
          bs
  | Bool a, Bool b -> if a <> b then flag path (Printf.sprintf "%b -> %b" a b)
  | Str a, Str b -> if a <> b then flag path (Printf.sprintf "%S -> %S" a b)
  | Num a, Num b ->
      if not (ungated (last_segment path)) then
        if Float.abs (a -. b) > (0.10 *. Float.abs a) +. 1e-9 then
          flag path (Printf.sprintf "%.6g -> %.6g (beyond the 10%% band)" a b)
  | Null, Null -> ()
  | _ -> flag path "value kind changed"

let read_file p =
  let ic = open_in_bin p in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let () =
  let rec pairs = function
    | [] -> []
    | b :: f :: rest -> (b, f) :: pairs rest
    | [ _ ] ->
        prerr_endline "usage: check_regress BASELINE FRESH [BASELINE FRESH ...]";
        exit 2
  in
  let files = pairs (List.tl (Array.to_list Sys.argv)) in
  if files = [] then (
    prerr_endline "usage: check_regress BASELINE FRESH [BASELINE FRESH ...]";
    exit 2);
  let failed = ref false in
  List.iter
    (fun (bp, fp) ->
      problems := [];
      (match (parse (read_file bp), parse (read_file fp)) with
      | b, f -> compare_json (Filename.basename fp) b f
      | exception Sys_error e -> flag fp ("unreadable: " ^ e)
      | exception Parse e -> flag fp ("unparsable: " ^ e));
      match List.rev !problems with
      | [] -> Printf.printf "ok       %s\n" (Filename.basename fp)
      | ps ->
          failed := true;
          Printf.printf "REGRESS  %s\n" (Filename.basename fp);
          List.iter print_endline ps)
    files;
  if !failed then (
    prerr_endline "bench trajectory regressed against bench/baselines";
    exit 1)
