(* The benchmark harness: regenerates every table of the paper's evaluation
   (section 4) against this reproduction, prints the paper's numbers next to
   the measured ones, and checks the qualitative shape.  A Bechamel
   micro-benchmark backs each table with per-operation costs, and an
   ablation section sweeps the index block size (the Glimpse design knob).

   Run with:  dune exec bench/main.exe            (full harness)
              dune exec bench/main.exe -- quick   (smaller corpora)    *)

module Fs = Hac_vfs.Fs
module Vpath = Hac_vfs.Vpath
module Fileset = Hac_bitset.Fileset
module Index = Hac_index.Index
module Search = Hac_index.Search
module Hac = Hac_core.Hac
module Corpus = Hac_workload.Corpus
module Andrew = Hac_workload.Andrew
module Fsops = Hac_workload.Fsops
module Jade_fs = Hac_workload.Jade_fs
module Pseudo_fs = Hac_workload.Pseudo_fs
module Timer = Hac_workload.Timer
module Metrics = Hac_obs.Metrics
module Trace = Hac_obs.Trace

let quick = Array.exists (( = ) "quick") Sys.argv
let smoke = Array.exists (( = ) "smoke") Sys.argv
let json_only = Array.exists (( = ) "json") Sys.argv

(* Where the machine-readable trajectory lands; any .json argv overrides. *)
let json_path =
  match List.filter (fun a -> Filename.check_suffix a ".json") (Array.to_list Sys.argv) with
  | p :: _ -> p
  | [] -> "BENCH_sync.json"

(* Per-stage latency distributions land here; a second .json argv overrides. *)
let obs_json_path =
  match List.filter (fun a -> Filename.check_suffix a ".json") (Array.to_list Sys.argv) with
  | _ :: p :: _ -> p
  | _ -> "BENCH_obs.json"

(* The parallel-settle scaling curve lands here; a third .json argv overrides. *)
let par_json_path =
  match List.filter (fun a -> Filename.check_suffix a ".json") (Array.to_list Sys.argv) with
  | _ :: _ :: p :: _ -> p
  | _ -> "BENCH_parallel.json"

(* Remount-after-crash latencies land here; a fourth .json argv overrides. *)
let rec_json_path =
  match List.filter (fun a -> Filename.check_suffix a ".json") (Array.to_list Sys.argv) with
  | _ :: _ :: _ :: p :: _ -> p
  | _ -> "BENCH_recovery.json"

(* The scoped-lookup crossover study lands here; a fifth .json argv overrides. *)
let index_json_path =
  match List.filter (fun a -> Filename.check_suffix a ".json") (Array.to_list Sys.argv) with
  | _ :: _ :: _ :: _ :: p :: _ -> p
  | _ -> "BENCH_index.json"

(* The serving layer's throughput and degraded-tail study; a sixth .json
   argv overrides. *)
let serve_json_path =
  match List.filter (fun a -> Filename.check_suffix a ".json") (Array.to_list Sys.argv) with
  | _ :: _ :: _ :: _ :: _ :: p :: _ -> p
  | _ -> "BENCH_serve.json"

(* The storage tier's cold-mount and cache-residency study; a seventh .json
   argv overrides. *)
let store_json_path =
  match List.filter (fun a -> Filename.check_suffix a ".json") (Array.to_list Sys.argv) with
  | _ :: _ :: _ :: _ :: _ :: _ :: p :: _ -> p
  | _ -> "BENCH_store.json"

let banner title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let shape name ok =
  Printf.printf "  shape %-58s %s\n" name (if ok then "[ok]" else "[DIFFERS]")

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2: the Andrew Benchmark on UNIX / HAC / Jade / Pseudo *)
(* ------------------------------------------------------------------ *)

let andrew_spec =
  if quick then Corpus.medium_tree
  else { Corpus.depth = 3; dirs_per_level = 4; files_per_dir = 8; words_per_file = 300 }

let source = Andrew.make_source ~spec:andrew_spec ~seed:20251999 ()

let andrew_rounds = if quick then 5 else 7

(* Run every system once per round (decorrelating GC and cache state from
   the system under test), then take per-phase medians. *)
let run_andrew_all systems =
  let rounds =
    List.init andrew_rounds (fun _ ->
        List.map
          (fun (label, mk_ops) ->
            Gc.major ();
            (label, Andrew.run source (mk_ops ()) ~dest:"/dest"))
          systems)
  in
  List.map
    (fun (label, _) ->
      let runs = List.map (fun round -> List.assoc label round) rounds in
      let med f =
        let sorted = List.sort compare (List.map f runs) in
        List.nth sorted (List.length sorted / 2)
      in
      ( label,
        {
          Andrew.makedir = med (fun t -> t.Andrew.makedir);
          copy = med (fun t -> t.Andrew.copy);
          scan = med (fun t -> t.Andrew.scan);
          read = med (fun t -> t.Andrew.read);
          make = med (fun t -> t.Andrew.make);
        } ))
    systems

let tables_1_and_2 () =
  banner "Table 1: Andrew Benchmark (seconds per phase)";
  Printf.printf
    "  paper: UNIX 2/5/5/8/19 = 38s ; HAC 4/9/8/14/22 = 57s (46%% slower,\n\
    \  phases 1-2 worst, phase 5 'Make' least affected)\n\n";
  let systems =
    [
      ("UNIX", fun () -> Fsops.of_fs (Fs.create ()));
      ("HAC", fun () -> Fsops.of_hac (Hac.create ()));
      ( "Jade",
        fun () ->
          let fs = Fs.create () in
          let j = Jade_fs.create fs in
          (* A realistic skeleton: the benchmark tree lives on another
             volume (the benchmark itself creates the mapped directory). *)
          Fs.mkdir_p fs "/vol0";
          Jade_fs.add_mapping j ~logical:"/dest" ~physical:"/vol0/bench";
          Jade_fs.ops j );
      ("Pseudo", fun () -> Pseudo_fs.ops (Pseudo_fs.create (Fs.create ())));
    ]
  in
  let results = run_andrew_all systems in
  let unix_t = List.assoc "UNIX" results in
  let hac_t = List.assoc "HAC" results in
  let jade_t = List.assoc "Jade" results in
  let pseudo_t = List.assoc "Pseudo" results in
  Printf.printf "  %-10s %9s %9s %9s %9s %9s %10s\n" "system" "MakeDir" "Copy" "Scan"
    "Read" "Make" "Total";
  List.iter
    (fun (label, t) -> Format.printf "  %a@." Andrew.pp_times (label, t))
    [ ("UNIX", unix_t); ("HAC", hac_t) ];
  let pct = Andrew.slowdown ~base:unix_t in
  let phase_pct f = Timer.pct_over ~base:(f unix_t) (f hac_t) in
  Printf.printf "\n  HAC total slowdown: %.1f%%  (paper: 46%%)\n" (pct hac_t);
  Printf.printf
    "  per-phase slowdown: MakeDir %.0f%%  Copy %.0f%%  Scan %.0f%%  Read %.0f%%  Make %.0f%%\n"
    (phase_pct (fun t -> t.Andrew.makedir))
    (phase_pct (fun t -> t.Andrew.copy))
    (phase_pct (fun t -> t.Andrew.scan))
    (phase_pct (fun t -> t.Andrew.read))
    (phase_pct (fun t -> t.Andrew.make));
  shape "HAC slower than UNIX overall" (pct hac_t > 0.0);
  shape "structure phases (MakeDir) hit harder than compute (Make)"
    (phase_pct (fun t -> t.Andrew.makedir) > phase_pct (fun t -> t.Andrew.make));
  shape "'Make' phase least affected"
    (let phases =
       [
         phase_pct (fun t -> t.Andrew.makedir);
         phase_pct (fun t -> t.Andrew.copy);
         phase_pct (fun t -> t.Andrew.scan);
         phase_pct (fun t -> t.Andrew.read);
       ]
     in
     List.for_all (fun p -> p >= phase_pct (fun t -> t.Andrew.make)) phases);

  banner "Table 2: slowdown of user-level file systems vs native (percent)";
  Printf.printf "  paper: Jade FS 36 ; Pseudo FS 33.41 ; HAC FS 46\n\n";
  Printf.printf "  %-12s %10s\n" "system" "%slowdown";
  List.iter
    (fun (label, t) -> Printf.printf "  %-12s %10.1f\n" label (pct t))
    [ ("Jade FS", jade_t); ("Pseudo FS", pseudo_t); ("HAC FS", hac_t) ];
  shape "all user-level layers slower than native" (pct jade_t > 0. && pct pseudo_t > 0.);
  shape "HAC (which also maintains CBA structures) slowest of the three"
    (pct hac_t > pct jade_t && pct hac_t > pct pseudo_t)

(* ------------------------------------------------------ *)
(* Table 3: indexing a database directly vs through HAC   *)
(* ------------------------------------------------------ *)

let corpus_spec =
  if quick then
    { Corpus.depth = 3; dirs_per_level = 3; files_per_dir = 8; words_per_file = 300 }
  else { Corpus.depth = 3; dirs_per_level = 4; files_per_dir = 16; words_per_file = 400 }

let build_corpus_fs () =
  let corpus = Corpus.make ~seed:17 () in
  let fs = Fs.create () in
  let files = Corpus.build_tree corpus fs ~root:"/db" corpus_spec in
  (fs, files)

let table_3 () =
  banner "Table 3: indexing time and space, Glimpse-on-UNIX vs through HAC";
  Printf.printf
    "  paper: 17000 files / 150 MB; HAC has 27%% time overhead and 15%% space\n\
    \  overhead over running Glimpse directly\n\n";
  (* Direct: walk the files and feed the indexer. *)
  let fs, files = build_corpus_fs () in
  let mb = float_of_int (Fs.total_bytes fs) /. 1_048_576.0 in
  Printf.printf "  corpus: %d files, %.1f MB\n\n" (List.length files) mb;
  let direct_run () =
    Gc.major ();
    let direct_index = Index.create () in
    let time =
      Timer.time_only (fun () ->
          List.iter
            (fun p ->
              ignore (Index.add_document direct_index ~path:p ~content:(Fs.read_file fs p)))
            files)
    in
    (time, Index.index_bytes direct_index)
  in
  (* Through HAC: the same files arrive as intercepted writes; indexing is
     the data-consistency pass over the dirty set (every file access
     interposed and through a descriptor), and HAC also maintains its
     per-directory structures. *)
  let hac_run () =
    let corpus = Corpus.make ~seed:17 () in
    let t = Hac.create () in
    ignore (Corpus.build_tree corpus (Hac.fs t) ~root:"/db" corpus_spec);
    Gc.major ();
    let time = Timer.time_only (fun () -> ignore (Hac.reindex t ())) in
    let sp = Hac.space t in
    (time, sp.Hac.index_bytes + Hac.hac_overhead_bytes sp)
  in
  (* Interleave the two systems across rounds and take medians. *)
  let rounds = List.init (if quick then 5 else 9) (fun _ -> (direct_run (), hac_run ())) in
  let median l = List.nth (List.sort compare l) (List.length l / 2) in
  let direct_time = median (List.map (fun ((t, _), _) -> t) rounds) in
  let hac_time = median (List.map (fun (_, (t, _)) -> t) rounds) in
  let direct_bytes = (fun ((_, b), _) -> b) (List.hd rounds) in
  let hac_bytes = (fun (_, (_, b)) -> b) (List.hd rounds) in
  Printf.printf "  %-18s %12s %14s\n" "system" "time (s)" "index (KB)";
  Printf.printf "  %-18s %12.3f %14.1f\n" "Glimpse on UNIX" direct_time
    (float_of_int direct_bytes /. 1024.);
  Printf.printf "  %-18s %12.3f %14.1f\n" "Glimpse via HAC" hac_time
    (float_of_int hac_bytes /. 1024.);
  let time_over = Timer.pct_over ~base:direct_time hac_time in
  let space_over =
    Timer.pct_over ~base:(float_of_int direct_bytes) (float_of_int hac_bytes)
  in
  Printf.printf "\n  time overhead: %.1f%% (paper 27%%)   space overhead: %.1f%% (paper 15%%)\n"
    time_over space_over;
  shape "indexing through HAC costs extra time" (time_over > 0.0);
  shape "space overhead modest (< 60%)" (space_over > 0.0 && space_over < 60.0)

(* --------------------------------------------------------- *)
(* Table 4: query cost vs selectivity, search vs smkdir      *)
(* --------------------------------------------------------- *)

let table_4 () =
  banner "Table 4: query time by selectivity, Glimpse search vs HAC smkdir";
  Printf.printf
    "  paper: queries matching few files -> HAC ~4x slower; intermediate ->\n\
    \  ~15%% overhead; many files -> ~2%% overhead (fixed semantic-directory\n\
    \  creation cost amortises with result size)\n\n";
  let corpus = Corpus.make ~seed:23 () in
  (* Planted markers are unique words, so stemming adds nothing; without it
     verification is Glimpse's raw byte scan, as in the original.  A
     document-granular index (block_size 1) isolates the semantic-directory
     overhead the table is about from block-expansion noise. *)
  let t = Hac.create ~stem:false ~block_size:1 () in
  let files = Corpus.build_tree corpus (Hac.fs t) ~root:"/db" corpus_spec in
  let n = List.length files in
  (* Plant three marker words at controlled document frequencies. *)
  let plant word count = ignore (Corpus.plant (Hac.fs t) ~paths:files ~word ~count) in
  let few = 4 and mid = n * 15 / 100 and many = n * 70 / 100 in
  plant "zqfew" few;
  plant "zqmid" mid;
  plant "zqmany" many;
  ignore (Hac.reindex t ());
  (* The direct-Glimpse baseline reads files natively, not through HAC. *)
  let reader p =
    try Some (Fs.read_file (Hac.fs t) p) with Hac_vfs.Errno.Error _ -> None
  in
  let reps = if quick then 5 else 11 in
  let glimpse_time word =
    Gc.major ();
    Timer.median reps (fun () -> ignore (Search.search_word (Hac.index t) reader word))
  in
  let counter = ref 0 in
  let hac_time word =
    Gc.major ();
    Timer.median reps (fun () ->
        incr counter;
        let dir = Printf.sprintf "/q%d" !counter in
        Hac.smkdir t dir word;
        Hac.srmdir t dir)
  in
  Printf.printf "  %-14s %8s %14s %14s %9s\n" "selectivity" "matches" "glimpse (ms)"
    "smkdir (ms)" "ratio";
  let results =
    List.map
      (fun (label, word, count) ->
        let g = glimpse_time word and h = hac_time word in
        Printf.printf "  %-14s %8d %14.3f %14.3f %8.2fx\n" label count (g *. 1000.)
          (h *. 1000.) (h /. g);
        (label, g, h))
      [ ("few", "zqfew", few); ("intermediate", "zqmid", mid); ("many", "zqmany", many) ]
  in
  (match results with
  | [ (_, gf, hf); (_, gm, hm); (_, gl, hl) ] ->
      let rf = hf /. gf and rm = hm /. gm and rl = hl /. gl in
      shape "HAC never faster (creating a directory costs something)"
        (rf >= 1.0 && rm >= 0.9 && rl >= 0.9);
      (* The mid and large classes sit within measurement noise of each
         other once the fixed cost has amortised; require strict decrease
         from the selective class and near-parity beyond. *)
      shape "overhead ratio decreases as selectivity grows"
        (rf > rm && rf > rl && rm <= rl *. 1.15 +. 0.05);
      shape "highly selective queries pay the biggest relative price (paper: 4x)"
        (rf >= 1.5)
  | _ -> ());
  n

(* ----------------------------- *)
(* In-text space measurements    *)
(* ----------------------------- *)

let space_section indexed_files =
  banner "Space overheads (in-text measurements of section 4)";
  Printf.printf
    "  paper: HAC metadata 222 KB vs UNIX 210 KB (~5%% more); ~16 KB shared\n\
    \  memory per process; N/8 bytes of result bitmap per semantic directory\n\n";
  (* Replay the Andrew tree through HAC and account for everything. *)
  let t = Hac.create () in
  let ops = Fsops.of_hac t in
  ignore (Andrew.run source ops ~dest:"/dest");
  ignore (Hac.reindex t ());
  Hac.smkdir t "/sd1" "checksum OR object";
  Hac.smkdir t "/sd2" "nothing AND here";
  let sp = Hac.space t in
  let fs_kb = float_of_int sp.Hac.fs_metadata_bytes /. 1024. in
  let hac_kb =
    float_of_int (sp.Hac.fs_metadata_bytes + Hac.hac_overhead_bytes sp) /. 1024.
  in
  Printf.printf "  UNIX metadata : %8.1f KB\n" fs_kb;
  Printf.printf "  + HAC         : %8.1f KB  (+%.1f%%; paper ~5%%)\n" hac_kb
    (Timer.pct_over ~base:fs_kb hac_kb);
  (* Per-process shared memory: a descriptor table plus an attribute cache
     loaded by a scan of the tree. *)
  let fds = Hac_vfs.Fd_table.create (Hac.fs t) in
  let cache = Hac_vfs.Attr_cache.create (Hac.fs t) in
  Fs.walk (Hac.fs t) "/dest" (fun p st ->
      ignore (Hac_vfs.Attr_cache.stat cache p);
      if st.Fs.st_kind = Hac_vfs.Event.File then begin
        let fd = Hac_vfs.Fd_table.openfile fds Hac_vfs.Fd_table.Read_only p in
        if Hac_vfs.Fd_table.open_count fds > 16 then Hac_vfs.Fd_table.close fds fd
      end);
  let per_process =
    Hac_vfs.Fd_table.approx_bytes fds + Hac_vfs.Attr_cache.approx_bytes cache
  in
  Printf.printf "  per-process fd table + attribute cache: %.1f KB (paper ~16 KB)\n"
    (float_of_int per_process /. 1024.);
  let bitmap = Hac_bitset.Bitset.paper_byte_size ~universe:indexed_files in
  Printf.printf "  result bitmap per semantic directory for N=%d files: %d bytes (N/8)\n"
    indexed_files bitmap;
  Printf.printf "  (for the paper's N=17000: %d bytes ~ 2 KB)\n"
    (Hac_bitset.Bitset.paper_byte_size ~universe:17000);
  shape "HAC metadata overhead small (< 35%)" (Timer.pct_over ~base:fs_kb hac_kb < 35.0)

(* ------------------------------------------ *)
(* Ablation: Glimpse block size (design knob) *)
(* ------------------------------------------ *)

let ablation_block_size () =
  banner "Ablation: index block size (space vs verification cost)";
  Printf.printf
    "  Glimpse's design: coarser blocks shrink the index but widen candidate\n\
    \  sets, so verified queries slow down.  block_size=1 is a precise\n\
    \  document-level inverted index.\n\n";
  let fs, files = build_corpus_fs () in
  let reader p = try Some (Fs.read_file fs p) with Hac_vfs.Errno.Error _ -> None in
  ignore (Corpus.plant fs ~paths:files ~word:"zqmid" ~count:(List.length files * 15 / 100));
  Printf.printf "  %-12s %14s %16s\n" "block_size" "index (KB)" "query (ms)";
  let measure bs =
    let idx = Index.create ~block_size:bs () in
    (* This ablation is about Glimpse's block design: with the CAS
       partitions answering candidate generation, block size no longer
       affects query time, so measure the block path itself. *)
    Index.set_use_cas idx false;
    List.iter
      (fun p -> ignore (Index.add_document idx ~path:p ~content:(Fs.read_file fs p)))
      files;
    let q = Timer.median 5 (fun () -> ignore (Search.search_word idx reader "zqmid")) in
    (Index.index_bytes idx, q)
  in
  let rows = List.map (fun bs -> (bs, measure bs)) [ 1; 4; 8; 16; 32 ] in
  List.iter
    (fun (bs, (bytes, q)) ->
      Printf.printf "  %-12d %14.1f %16.3f\n" bs (float_of_int bytes /. 1024.) (q *. 1000.))
    rows;
  match (List.hd rows, List.rev rows |> List.hd) with
  | (_, (b1, q1)), (_, (b32, q32)) ->
      shape "coarser blocks shrink the index" (b32 < b1);
      shape "coarser blocks slow verified queries" (q32 > q1)

(* --------------------------------------------------------------- *)
(* Ablation: lazy materialisation of transient links (our design)  *)
(* --------------------------------------------------------------- *)

let ablation_lazy_links () =
  banner "Ablation: bitmap result storage with lazy link materialisation";
  Printf.printf
    "  The paper stores each directory's query result as an N/8-byte bitmap;\n\
    \  physical symbolic links appear on first access.  This splits smkdir\n\
    \  cost (evaluate + store) from access cost (expand links), which is why\n\
    \  Table 4's overhead shrinks as results grow.\n\n";
  let corpus = Corpus.make ~seed:29 () in
  let t = Hac.create ~stem:false ~block_size:1 () in
  let files = Corpus.build_tree corpus (Hac.fs t) ~root:"/db" corpus_spec in
  ignore (Corpus.plant (Hac.fs t) ~paths:files ~word:"zqbig" ~count:(List.length files * 60 / 100));
  ignore (Hac.reindex t ());
  let counter = ref 0 in
  let time_of ~access =
    Timer.median 5 (fun () ->
        incr counter;
        let dir = Printf.sprintf "/lz%d%b" !counter access in
        Hac.smkdir t dir "zqbig";
        if access then ignore (Hac.readdir t dir))
  in
  let create_only = time_of ~access:false in
  let create_and_access = time_of ~access:true in
  Printf.printf "  smkdir only (bitmap stored)       : %8.3f ms\n" (create_only *. 1000.);
  Printf.printf "  smkdir + first access (links made): %8.3f ms\n"
    (create_and_access *. 1000.);
  Printf.printf "  deferred fraction                  : %7.1f%%\n"
    (Timer.pct_over ~base:create_only create_and_access);
  shape "materialisation cost is real and deferred" (create_and_access > create_only)

(* ------------------------------------------- *)
(* Ablation: stemming (index size vs recall)   *)
(* ------------------------------------------- *)

let ablation_stemming () =
  banner "Ablation: stemming (vocabulary collapse vs index size)";
  (* Inflect the synthetic words so suffix stripping has something to do,
     as English text would. *)
  let corpus = Corpus.make ~seed:31 () in
  let g = Hac_workload.Prng.make ~seed:32 in
  let suffixes = [| ""; "s"; "es"; "ed"; "ing"; "ly" |] in
  let files =
    List.init 200 (fun i ->
        let b = Buffer.create 2048 in
        for _ = 1 to 250 do
          Buffer.add_string b (Corpus.word corpus);
          Buffer.add_string b (Hac_workload.Prng.choice g suffixes);
          Buffer.add_char b ' '
        done;
        (Printf.sprintf "/d%d.txt" i, Buffer.contents b))
  in
  let build stem =
    let idx = Index.create ~stem () in
    let time =
      Timer.time_only (fun () ->
          List.iter (fun (p, c) -> ignore (Index.add_document idx ~path:p ~content:c)) files)
    in
    (idx, time)
  in
  let on, t_on = build true in
  let off, t_off = build false in
  Printf.printf "  %-10s %12s %14s %12s\n" "stemming" "vocab" "index (KB)" "time (s)";
  Printf.printf "  %-10s %12d %14.1f %12.3f\n" "on" (Index.vocabulary_size on)
    (float_of_int (Index.index_bytes on) /. 1024.)
    t_on;
  Printf.printf "  %-10s %12d %14.1f %12.3f\n" "off" (Index.vocabulary_size off)
    (float_of_int (Index.index_bytes off) /. 1024.)
    t_off;
  shape "stemming collapses the vocabulary"
    (Index.vocabulary_size on <= Index.vocabulary_size off)

(* ------------------------------------------------------------------ *)
(* Ablation: conjunctive evaluation (planner + restriction pushdown)  *)
(* ------------------------------------------------------------------ *)

let ablation_conjunctions () =
  banner "Ablation: selectivity-ordered conjunctions with restriction pushdown";
  Printf.printf
    "  'common AND rare': naive evaluation verifies every candidate of both\n\
    \  terms; the planner orders the rare term first and the evaluator\n\
    \  restricts the common term's verification to the survivors.\n\n";
  let corpus = Corpus.make ~seed:37 () in
  let fs = Fs.create () in
  let files = Corpus.build_tree corpus fs ~root:"/db" corpus_spec in
  let n = List.length files in
  ignore (Corpus.plant fs ~paths:files ~word:"zqcommon" ~count:(n * 80 / 100));
  ignore (Corpus.plant fs ~paths:files ~word:"zqrare" ~count:3);
  let idx = Index.create ~stem:false ~block_size:1 () in
  List.iter
    (fun p -> ignore (Index.add_document idx ~path:p ~content:(Fs.read_file fs p)))
    files;
  let reader p = try Some (Fs.read_file fs p) with Hac_vfs.Errno.Error _ -> None in
  let naive () =
    Hac_bitset.Fileset.inter
      (Search.search_word idx reader "zqcommon")
      (Search.search_word idx reader "zqrare")
  in
  let planned () =
    let rare = Search.search_word idx reader "zqrare" in
    Search.search_word ~within:rare idx reader "zqcommon"
  in
  (if not (Hac_bitset.Fileset.equal (naive ()) (planned ())) then
     Printf.printf "  WARNING: results differ!\n");
  let t_naive = Timer.median 7 (fun () -> ignore (naive ())) in
  let t_planned = Timer.median 7 (fun () -> ignore (planned ())) in
  Printf.printf "  naive (verify both fully)     : %8.3f ms\n" (t_naive *. 1000.);
  Printf.printf "  planned (rare first, pushdown): %8.3f ms  (%.1fx faster)\n"
    (t_planned *. 1000.)
    (t_naive /. t_planned);
  shape "pushdown beats naive conjunction" (t_planned < t_naive)

(* -------------------------------------------------------- *)
(* Beyond the paper: a mixed read/write trace on all four   *)
(* -------------------------------------------------------- *)

let trace_replay () =
  banner "Extra workload: mixed read/write trace (beyond the paper)";
  Printf.printf
    "  The Andrew Benchmark is phase-separated; this deterministic trace\n\
    \  interleaves reads, stats, listings and rewrites (80%% reads), closer\n\
    \  to an interactive session.\n\n";
  let trace =
    Hac_workload.Trace.generate ~seed:41
      ~profile:
        {
          Hac_workload.Trace.dirs = 15;
          files = (if quick then 80 else 200);
          ops = (if quick then 1500 else 4000);
          read_fraction = 0.8;
          words_per_file = 120;
        }
      ()
  in
  let systems =
    [
      ("UNIX", fun () -> Fsops.of_fs (Fs.create ()));
      ("HAC", fun () -> Fsops.of_hac (Hac.create ()));
      ( "Jade",
        fun () ->
          let fs = Fs.create () in
          let j = Jade_fs.create fs in
          Fs.mkdir_p fs "/vol0";
          Jade_fs.add_mapping j ~logical:"/trace" ~physical:"/vol0/trace";
          Jade_fs.ops j );
      ("Pseudo", fun () -> Pseudo_fs.ops (Pseudo_fs.create (Fs.create ())));
    ]
  in
  let rounds = 5 in
  let measure mk_ops =
    let samples =
      List.init rounds (fun _ ->
          Gc.major ();
          let ops = mk_ops () in
          Timer.time_only (fun () -> ignore (Hac_workload.Trace.replay trace ops)))
    in
    List.nth (List.sort compare samples) (rounds / 2)
  in
  let base = measure (List.assoc "UNIX" systems) in
  Printf.printf "  %-10s %12s %12s\n" "system" "time (ms)" "%slowdown";
  Printf.printf "  %-10s %12.2f %12s\n" "UNIX" (base *. 1000.) "-";
  let slowdowns =
    List.filter_map
      (fun (label, mk) ->
        if label = "UNIX" then None
        else begin
          let t = measure mk in
          let pct = Timer.pct_over ~base t in
          Printf.printf "  %-10s %12.2f %12.1f\n" label (t *. 1000.) pct;
          Some (label, pct)
        end)
      systems
  in
  shape "every layer costs something on a mixed trace"
    (List.for_all (fun (_, pct) -> pct > -5.0) slowdowns)

(* ------------------------------------------------------------- *)
(* Beyond the paper: fault tolerance of remote namespaces        *)
(* ------------------------------------------------------------- *)

let fault_tolerance () =
  banner "Beyond the paper: fault-tolerant remote namespaces";
  Printf.printf
    "  A semantic directory mounted over a flaky remote: retries and the\n\
    \  circuit breaker bound the cost of failure, stale entries keep the\n\
    \  directory usable.  (Delays are virtual; times below are real work.)\n\n";
  let module Namespace = Hac_remote.Namespace in
  let module Fault = Hac_fault.Fault in
  let setup () =
    let t = Hac.create () in
    Hac.smkdir t "/docs" "sorting OR indexing";
    let ns =
      Namespace.static ~ns_id:"bench-lib"
        (List.init 50 (fun i ->
             ( Printf.sprintf "doc%02d.ps" i,
               Printf.sprintf "dlib://bench/doc%02d.ps" i,
               if i mod 2 = 0 then "A survey of sorting networks.\n"
               else "Notes on inverted indexing.\n" )))
    in
    let clock = Hac.clock t in
    let inj = Fault.create ~seed:7 ~clock () in
    Hac.smount t "/docs" (Namespace.with_policy ~clock (Namespace.with_faults inj ns));
    (t, inj)
  in
  let rounds = if quick then 20 else 100 in
  let measure_resyncs t =
    Gc.major ();
    Timer.time_only (fun () ->
        for _ = 1 to rounds do
          Hac.ssync t "/docs"
        done)
  in
  let t, inj = setup () in
  let healthy = measure_resyncs t in
  let entries_before = List.length (Hac.links t "/docs") in
  Fault.set_plans inj [ Fault.Outage ];
  let failing = measure_resyncs t in
  let entries_during = List.length (Hac.links t "/docs") in
  let stale = List.length (Hac.stale_remotes t "/docs") in
  let status_open =
    List.exists
      (fun { Hac.mh_health; _ } ->
        match mh_health with
        | Some h -> h.Namespace.breaker = Hac_fault.Breaker.Open
        | None -> false)
      (Hac.mount_status t)
  in
  Fault.clear inj;
  Hac_fault.Clock.advance (Hac.clock t) 60.0;
  Hac.ssync t "/docs";
  let stale_after = List.length (Hac.stale_remotes t "/docs") in
  Printf.printf "  %-34s %12s\n" "condition" "ms/resync";
  Printf.printf "  %-34s %12.3f\n" "healthy namespace" (healthy *. 1000. /. float rounds);
  Printf.printf "  %-34s %12.3f\n" "total outage (breaker engaged)"
    (failing *. 1000. /. float rounds);
  Printf.printf "  entries: %d healthy, %d during outage (%d stale), %d stale after recovery\n"
    entries_before entries_during stale stale_after;
  shape "outage never breaks re-evaluation" (entries_during = entries_before);
  shape "breaker opens under persistent failure" status_open;
  shape "recovery drops the stale markers" (stale_after = 0)

(* ------------------------------------------------------------------- *)
(* Beyond the paper: incremental settle (dirty-delta sync + the cache) *)
(* ------------------------------------------------------------------- *)

let incremental_settle () =
  banner "Incremental settle: dirty-delta sync vs full re-evaluation";
  Printf.printf
    "  After k files change, sync_delta re-evaluates every query only over\n\
    \  the delta documents and patches the link sets; sync_all re-evaluates\n\
    \  everything.  The per-directory result cache serves directories whose\n\
    \  generation is unchanged.  Writes %s.\n\n"
    json_path;
  let n_files, n_dirs, k =
    if smoke then (60, 6, 3) else if quick then (400, 20, 5) else (2000, 50, 10)
  in
  let t = Hac.create ~stem:false () in
  let fs = Hac.fs t in
  Fs.mkdir_p fs "/data";
  let path i = Printf.sprintf "/data/f%04d.txt" i in
  let filler = "lorem ipsum dolor sit amet consectetur adipiscing elit sed do" in
  (* File i always carries its home-class marker; touching it toggles a
     second marker, so membership in the alt class really changes. *)
  let content ~toggled i =
    let home = i mod n_dirs and alt = (i + 7) mod n_dirs in
    Printf.sprintf "%s wm%03d %s" filler home
      (if toggled then Printf.sprintf "wm%03d" alt else "plain")
  in
  for i = 0 to n_files - 1 do
    Fs.write_file fs (path i) (content ~toggled:false i)
  done;
  for j = 0 to n_dirs - 1 do
    Hac.smkdir t (Printf.sprintf "/s%02d" j) (Printf.sprintf "wm%03d" j)
  done;
  ignore (Hac.reindex_full t ());
  let toggled = ref false in
  let touch () =
    toggled := not !toggled;
    for j = 0 to k - 1 do
      let i = j * ((n_files / k) + 1) mod n_files in
      Fs.write_file fs (path i) (content ~toggled:!toggled i)
    done
  in
  let reps = if smoke then 3 else 5 in
  let measure settle =
    let samples =
      List.init reps (fun _ ->
          touch ();
          Gc.major ();
          Timer.time_only (fun () -> settle ()))
    in
    List.nth (List.sort compare samples) (reps / 2)
  in
  let full_s = measure (fun () -> ignore (Hac.reindex_full t ())) in
  let delta_s = measure (fun () -> ignore (Hac.reindex t ())) in
  (* Fixpoint check: the delta settle must land exactly where the oracle does. *)
  let snapshot () =
    List.init n_dirs (fun j ->
        List.sort compare
          (List.map
             (fun l -> l.Hac_core.Link.name)
             (Hac.links t (Printf.sprintf "/s%02d" j))))
  in
  touch ();
  ignore (Hac.reindex t ());
  let after_delta = snapshot () in
  ignore (Hac.reindex_full t ());
  let after_full = snapshot () in
  (* Steady state: a no-change sync_all should be answered by the cache. *)
  Hac.reset_result_cache_stats t;
  let noop_s = Timer.time_only (fun () -> Hac.sync_all t) in
  Hac.sync_all t;
  let rc = Hac.result_cache_stats t in
  let hits = rc.Hac_core.Rescache.hits and misses = rc.Hac_core.Rescache.misses in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  let speedup = full_s /. delta_s in
  Printf.printf "  corpus: %d files, %d semantic dirs, %d files touched per settle\n\n"
    n_files n_dirs k;
  Printf.printf "  %-34s %12s\n" "settle strategy" "median (ms)";
  Printf.printf "  %-34s %12.3f\n" "full (reindex + sync_all)" (full_s *. 1000.);
  Printf.printf "  %-34s %12.3f\n" "delta (reindex + sync_delta)" (delta_s *. 1000.);
  Printf.printf "  %-34s %12.3f\n" "no-change sync_all (cache warm)" (noop_s *. 1000.);
  Printf.printf "\n  speedup: %.1fx   cache: %d hits / %d misses (%.0f%% hit rate)\n" speedup
    hits misses (hit_rate *. 100.);
  shape "delta settle reaches the sync_all fixpoint" (after_delta = after_full);
  shape
    (Printf.sprintf "delta settle at least %s full"
       (if smoke || quick then "as fast as" else "5x faster than"))
    (speedup >= if smoke || quick then 1.0 else 5.0);
  shape "no-change sync_all served from the cache" (hits > 0 && misses = 0);
  let b = Buffer.create 512 in
  Printf.bprintf b "{\n";
  Printf.bprintf b
    "  \"config\": { \"files\": %d, \"semdirs\": %d, \"touched\": %d, \"reps\": %d, \
     \"mode\": \"%s\" },\n"
    n_files n_dirs k reps
    (if smoke then "smoke" else if quick then "quick" else "full");
  Printf.bprintf b "  \"full_settle_s\": %.6f,\n" full_s;
  Printf.bprintf b "  \"delta_settle_s\": %.6f,\n" delta_s;
  Printf.bprintf b "  \"speedup\": %.2f,\n" speedup;
  Printf.bprintf b "  \"noop_sync_all_s\": %.6f,\n" noop_s;
  Printf.bprintf b "  \"fixpoint_match\": %b,\n" (after_delta = after_full);
  Printf.bprintf b
    "  \"cache\": { \"hits\": %d, \"misses\": %d, \"entries\": %d, \"hit_rate\": %.3f }\n"
    hits misses rc.Hac_core.Rescache.entries hit_rate;
  Printf.bprintf b "}\n";
  let payload = Buffer.contents b in
  let oc = open_out json_path in
  output_string oc payload;
  close_out oc;
  shape
    (Printf.sprintf "trajectory written to %s" json_path)
    (String.length payload > 2
    && payload.[0] = '{'
    && payload.[String.length payload - 2] = '}')

(* ------------------------------------------------------------------- *)
(* Observability: per-stage latency distributions + the overhead guard *)
(* ------------------------------------------------------------------- *)

(* The incremental-settle workload as a reusable builder: [n_files] spread
   over [n_dirs] marker classes; [touch] rewrites [k] files so membership
   in the alternate class really changes on every settle. *)
let settle_workload ?(shared_or = false) ~n_files ~n_dirs ~k () =
  let t = Hac.create ~stem:false () in
  let fs = Hac.fs t in
  Fs.mkdir_p fs "/data";
  let path i = Printf.sprintf "/data/f%04d.txt" i in
  let filler = "lorem ipsum dolor sit amet consectetur adipiscing elit sed do" in
  let content ~toggled i =
    let home = i mod n_dirs and alt = (i + 7) mod n_dirs in
    Printf.sprintf "%s wm%03d %s%s" filler home
      (if toggled then Printf.sprintf "wm%03d" alt else "plain")
      (if shared_or && i mod 10 = 0 then " shr" else "")
  in
  for i = 0 to n_files - 1 do
    Fs.write_file fs (path i) (content ~toggled:false i)
  done;
  for j = 0 to n_dirs - 1 do
    (* With [shared_or] every query carries the same second disjunct, so the
       per-pass term memo has cross-directory work to share. *)
    Hac.smkdir t
      (Printf.sprintf "/s%02d" j)
      (Printf.sprintf "wm%03d%s" j (if shared_or then " OR shr" else ""))
  done;
  ignore (Hac.reindex_full t ());
  let toggled = ref false in
  let touch () =
    toggled := not !toggled;
    for j = 0 to k - 1 do
      let i = j * ((n_files / k) + 1) mod n_files in
      Fs.write_file fs (path i) (content ~toggled:!toggled i)
    done
  in
  (t, touch)

let obs_section () =
  banner "Observability: per-stage latency distributions (tracing on)";
  Printf.printf
    "  Every settle runs under the tracer; each finished span feeds a\n\
    \  span.<stage>.cpu_s histogram in the metrics registry, dumped below\n\
    \  with p50/p90/p99 per stage.  Writes %s.\n\n"
    obs_json_path;
  let n_files, n_dirs, k, passes =
    if smoke then (60, 6, 3, 6) else if quick then (300, 15, 5, 12) else (1000, 30, 8, 25)
  in
  let t, touch = settle_workload ~n_files ~n_dirs ~k () in
  Trace.set_enabled (Hac.tracer t) true;
  (* Mostly delta settles with a full one mixed in, so sync.delta,
     sync.full, sync.reindex and query.eval all accumulate samples. *)
  for p = 1 to passes do
    touch ();
    if p mod 5 = 0 then ignore (Hac.reindex_full t ()) else ignore (Hac.reindex t ())
  done;
  let m = Hac.metrics t in
  let stages =
    List.filter_map
      (fun (name, d) ->
        match d with
        | Metrics.Histogram_value s
          when String.length name > 11
               && String.sub name 0 5 = "span."
               && Filename.check_suffix name ".cpu_s" ->
            Some (String.sub name 5 (String.length name - 11), s)
        | _ -> None)
      (Metrics.dump m)
  in
  Printf.printf "  %-16s %7s %12s %12s %12s\n" "stage" "count" "p50 (us)" "p90 (us)"
    "p99 (us)";
  List.iter
    (fun (stage, s) ->
      Printf.printf "  %-16s %7d %12.2f %12.2f %12.2f\n" stage s.Metrics.count
        (s.Metrics.p50 *. 1e6) (s.Metrics.p90 *. 1e6) (s.Metrics.p99 *. 1e6))
    stages;
  shape "tracer populated a histogram for every settle stage"
    (List.mem_assoc "sync.reindex" stages
    && List.mem_assoc "sync.delta" stages
    && List.mem_assoc "sync.full" stages
    && List.mem_assoc "query.eval" stages);
  (* Overhead guard: tracing back off (one branch per span site), metrics
     updates on the settle path are a boolean test plus a store each.  An
     instrumented settle must sit within 10% of the same settle with the
     registry disabled; rounds are interleaved to decorrelate noise. *)
  Trace.set_enabled (Hac.tracer t) false;
  let reps = if smoke then 5 else 15 in
  (* Each sample times a batch of touch+settle cycles: a single smoke-size
     settle is ~0.2 ms, far below what wall-clock timing resolves reliably,
     and per-round ratios on such samples are pure noise. *)
  let batch = if smoke then 10 else if quick then 5 else 2 in
  let settle_once enabled =
    Metrics.set_enabled m enabled;
    Gc.major ();
    let s =
      Timer.time_only (fun () ->
          for _ = 1 to batch do
            touch ();
            ignore (Hac.reindex t ())
          done)
    in
    Metrics.set_enabled m true;
    s
  in
  (* One discarded warm-up pair: the first settle after the histogram pass
     hits cold caches and would skew whichever arm runs first. *)
  ignore (settle_once true);
  ignore (settle_once false);
  (* Paired rounds with the arm order alternating, judged by the median of
     the per-round overhead ratios.  A single difference-of-medians across
     unpaired lists flapped (negative overheads past the guard) because
     allocator and frequency drift between the arms dwarfed the effect
     being measured; pairing cancels the drift and the median discards the
     outlier rounds. *)
  let rounds =
    List.init reps (fun i ->
        if i mod 2 = 0 then (
          let on = settle_once true in
          (on, settle_once false))
        else
          let off = settle_once false in
          (settle_once true, off))
  in
  let median l = List.nth (List.sort compare l) (List.length l / 2) in
  let on_s = median (List.map fst rounds) /. float_of_int batch in
  let off_s = median (List.map snd rounds) /. float_of_int batch in
  let overhead_pct =
    median (List.map (fun (on, off) -> Timer.pct_over ~base:off on) rounds)
  in
  Printf.printf "\n  settle, metrics on  (tracing off): %8.3f ms\n" (on_s *. 1000.);
  Printf.printf "  settle, metrics off (tracing off): %8.3f ms\n" (off_s *. 1000.);
  Printf.printf "  instrumentation overhead: %+.1f%%  (median of %d paired rounds; guard: within 10%%)\n"
    overhead_pct reps;
  shape "tracing-off instrumentation overhead within 10%"
    (overhead_pct <= 10.0 || (on_s -. off_s) *. 1000. < 0.5);
  (* SLO-breach demo: a stalled environment (virtual-clock jump while
     writes queue) blows a deliberately tight write objective.  The
     burn-rate alert must fire, degrade the server with cause "slo", and
     the flight ring must freeze into a decodable image. *)
  let module Server = Hac_serve.Server in
  let module Msg = Hac_serve.Msg in
  let module Slo = Hac_obs.Slo in
  let module Flight = Hac_obs.Flight in
  let module Clock = Hac_fault.Clock in
  let alerts, cause_slo, img_bytes, img_events, decode_ok =
    let t2 = Hac.create ~stem:false () in
    Fs.mkdir_p (Hac.fs t2) "/srv";
    let config =
      {
        Server.default_config with
        slo_objectives = [ { Slo.op = "write"; latency_s = 0.5; goal = 0.9 } ];
      }
    in
    let server = Server.create ~config t2 in
    for i = 0 to 3 do
      ignore
        (Server.submit server
           ~session:(Printf.sprintf "w%d" i)
           (Msg.W (Msg.Write (Printf.sprintf "/srv/slo%d.txt" i, "x\n"))))
    done;
    Clock.advance (Hac.clock t2) 2.0;
    Server.pump server;
    let alerts =
      match Metrics.find (Hac.metrics t2) "slo.write.alerts" with
      | Some (Metrics.Counter_value n) -> n
      | _ -> 0
    in
    let cause_slo = List.mem "slo" (Server.degraded_causes server) in
    let img = Flight.encode ~reason:"bench slo breach" (Hac.flight t2) in
    let decode_ok, img_events =
      match Flight.decode img with
      | Ok d -> (true, List.length d.Hac_obs.Flight.events)
      | Error _ -> (false, 0)
    in
    Server.drain server;
    Server.stop server;
    (alerts, cause_slo, String.length img, img_events, decode_ok)
  in
  Printf.printf
    "\n  slo-breach demo: %d alert(s), degraded cause slo=%b,\n\
    \  flight image %d bytes / %d events, decode %s\n"
    alerts cause_slo img_bytes img_events
    (if decode_ok then "ok" else "FAILED");
  shape "slo breach fires the burn-rate alert with cause slo" (alerts >= 1 && cause_slo);
  shape "flight image decodes with the run-up intact" (decode_ok && img_events > 0);
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n";
  Printf.bprintf b
    "  \"config\": { \"files\": %d, \"semdirs\": %d, \"touched\": %d, \"passes\": %d, \
     \"mode\": \"%s\" },\n"
    n_files n_dirs k passes
    (if smoke then "smoke" else if quick then "quick" else "full");
  Printf.bprintf b "  \"stages\": {\n";
  let n_stages = List.length stages in
  List.iteri
    (fun i (stage, s) ->
      Printf.bprintf b
        "    \"%s\": { \"count\": %d, \"sum_s\": %.6f, \"min_s\": %.9f, \"max_s\": %.9f, \
         \"p50_s\": %.9f, \"p90_s\": %.9f, \"p99_s\": %.9f }%s\n"
        (Metrics.json_escape stage) s.Metrics.count s.Metrics.sum s.Metrics.vmin
        s.Metrics.vmax s.Metrics.p50 s.Metrics.p90 s.Metrics.p99
        (if i = n_stages - 1 then "" else ","))
    stages;
  Printf.bprintf b "  },\n";
  Printf.bprintf b
    "  \"overhead\": { \"settle_metrics_on_s\": %.6f, \"settle_metrics_off_s\": %.6f, \
     \"pct\": %.2f, \"reps\": %d, \"guard_pct\": 10.0 },\n"
    on_s off_s overhead_pct reps;
  Printf.bprintf b
    "  \"slo_breach\": { \"alerts\": %d, \"degraded_cause_slo\": %b, \
     \"flight_image_bytes\": %d, \"flight_image_events\": %d, \"decode_ok\": %b }\n"
    alerts cause_slo img_bytes img_events decode_ok;
  Printf.bprintf b "}\n";
  let payload = Buffer.contents b in
  let oc = open_out obs_json_path in
  output_string oc payload;
  close_out oc;
  shape
    (Printf.sprintf "stage distributions written to %s" obs_json_path)
    (n_stages > 0 && String.length payload > 2 && payload.[0] = '{')

(* ----------------------------- *)
(* Bechamel micro-benchmarks     *)
(* ----------------------------- *)

let micro_benchmarks () =
  banner "Bechamel micro-benchmarks (per-operation costs behind each table)";
  let open Bechamel in
  (* Table 1 micro: a directory creation on UNIX vs HAC (phase 1's unit). *)
  let t1_unix =
    let fs = Fs.create () in
    let n = ref 0 in
    Test.make ~name:"table1/mkdir-unix"
      (Staged.stage (fun () ->
           incr n;
           Fs.mkdir fs (Printf.sprintf "/d%d" !n)))
  in
  let t1_hac =
    let t = Hac.create () in
    let n = ref 0 in
    Test.make ~name:"table1/mkdir-hac"
      (Staged.stage (fun () ->
           incr n;
           Hac.mkdir t (Printf.sprintf "/d%d" !n)))
  in
  (* Table 2 micro: one marshalled RPC round trip (the Pseudo FS unit). *)
  let t2_rpc =
    let fs = Fs.create () in
    Fs.write_file fs "/f" "payload";
    let p = Pseudo_fs.create fs in
    let ops = Pseudo_fs.ops p in
    Test.make ~name:"table2/pseudo-rpc-stat" (Staged.stage (fun () -> ops.Fsops.stat "/f"))
  in
  (* Table 3 micro: indexing one document. *)
  let t3_add =
    let corpus = Corpus.make ~seed:3 () in
    let doc = Corpus.document corpus ~words:200 in
    let idx = Index.create () in
    let n = ref 0 in
    Test.make ~name:"table3/index-add-doc"
      (Staged.stage (fun () ->
           incr n;
           ignore (Index.add_document idx ~path:(Printf.sprintf "/f%d" !n) ~content:doc)))
  in
  (* Table 4 micro: one verified word query. *)
  let t4_query =
    let corpus = Corpus.make ~seed:4 () in
    let fs = Fs.create () in
    let files = Corpus.build_tree corpus fs ~root:"/db" Corpus.small_tree in
    ignore (Corpus.plant fs ~paths:files ~word:"zq" ~count:3);
    let idx = Index.create () in
    List.iter
      (fun p -> ignore (Index.add_document idx ~path:p ~content:(Fs.read_file fs p)))
      files;
    let reader p = try Some (Fs.read_file fs p) with Hac_vfs.Errno.Error _ -> None in
    Test.make ~name:"table4/verified-query"
      (Staged.stage (fun () -> ignore (Search.search_word idx reader "zq")))
  in
  let tests = [ t1_unix; t1_hac; t2_rpc; t3_add; t4_query ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun key raw ->
          match Analyze.one ols Toolkit.Instance.monotonic_clock raw with
          | ols_result -> (
              match Analyze.OLS.estimates ols_result with
              | Some [ est ] -> Printf.printf "  %-26s %14.1f ns/op\n" key est
              | Some _ | None -> Printf.printf "  %-26s (no estimate)\n" key)
          | exception _ -> Printf.printf "  %-26s (analysis failed)\n" key)
        results)
    tests

(* ----------------------------------------------------------------- *)
(* Beyond the paper: parallel settle (domain pool + per-pass caches)  *)
(* ----------------------------------------------------------------- *)

let parallel_section () =
  banner "Parallel settle: domain-pool levels + shared per-pass caches";
  Printf.printf
    "  The settle engine groups the dependency DAG into antichain levels\n\
    \  and evaluates each level's queries concurrently on a domain pool;\n\
    \  all domains share one per-pass term-result memo and document token\n\
    \  cache.  Baseline is the engine with the pass caches disabled (the\n\
    \  pre-caches sequential path).  Writes %s.\n\n"
    par_json_path;
  let n_files, n_dirs, k =
    if smoke then (60, 6, 3) else if quick then (400, 20, 5) else (2000, 50, 10)
  in
  let reps = if smoke then 3 else 5 in
  let host_cores = Domain.recommended_domain_count () in
  let t, touch = settle_workload ~shared_or:true ~n_files ~n_dirs ~k () in
  let measure settle =
    let samples =
      List.init reps (fun _ ->
          touch ();
          Gc.major ();
          Timer.time_only (fun () -> settle ()))
    in
    List.nth (List.sort compare samples) (reps / 2)
  in
  (* Baseline: full settle on the uncached sequential engine (the ablation
     knob restores the pre-caches behaviour; results are identical). *)
  Hac.set_pass_caches t false;
  let base_s = measure (fun () -> ignore (Hac.reindex_full t ())) in
  Hac.set_pass_caches t true;
  let widths = [ 1; 2; 4 ] in
  let curve =
    List.map
      (fun d -> (d, measure (fun () -> ignore (Hac.reindex_full ~domains:d t ()))))
      widths
  in
  let m = Hac.metrics t in
  let count name = Metrics.count (Metrics.counter m name) in
  let memo_hits = count "pass.term_memo.hits" and memo_misses = count "pass.term_memo.misses" in
  let doc_hits = count "pass.doc_cache.hits" and doc_misses = count "pass.doc_cache.misses" in
  let par_levels = count "sync.par.levels" and par_tasks = count "sync.par.tasks" in
  (* Equivalence: a fresh instance settled with 4 domains must land on
     exactly the link sets a fresh sequential instance reaches. *)
  let snapshot t =
    List.init n_dirs (fun j ->
        List.sort compare
          (List.map
             (fun l -> l.Hac_core.Link.name)
             (Hac.links t (Printf.sprintf "/s%02d" j))))
  in
  let t_seq, touch_seq = settle_workload ~shared_or:true ~n_files ~n_dirs ~k () in
  touch_seq ();
  ignore (Hac.reindex_full t_seq ());
  let t_par, touch_par = settle_workload ~shared_or:true ~n_files ~n_dirs ~k () in
  touch_par ();
  ignore (Hac.reindex_full ~domains:4 t_par ());
  let fixpoint_match = snapshot t_seq = snapshot t_par in
  let speedup_at d = base_s /. List.assoc d curve in
  Printf.printf "  corpus: %d files, %d semantic dirs, %d touched per settle (host: %d cores)\n\n"
    n_files n_dirs k host_cores;
  Printf.printf "  %-38s %12s %9s\n" "full settle configuration" "median (ms)" "speedup";
  Printf.printf "  %-38s %12.3f %9s\n" "sequential, caches off (baseline)" (base_s *. 1000.) "1.0x";
  List.iter
    (fun (d, s) ->
      Printf.printf "  %-38s %12.3f %8.1fx\n"
        (Printf.sprintf "%d domain(s), caches on" d)
        (s *. 1000.) (speedup_at d))
    curve;
  Printf.printf "\n  caches: term memo %d hits / %d misses, doc cache %d hits / %d misses\n"
    memo_hits memo_misses doc_hits doc_misses;
  Printf.printf "  pool:   %d levels scheduled, %d evaluations farmed out\n" par_levels
    par_tasks;
  shape "4-domain settle reaches the sequential fixpoint" fixpoint_match;
  shape "per-pass caches engaged" (memo_hits > 0 && doc_hits > 0);
  shape "levels were scheduled on the pool" (par_levels > 0 && par_tasks > 0);
  (if smoke || quick then
     (* Corpora this small settle in fractions of a millisecond: domain
        spawn noise swamps the signal, so only the machinery is asserted. *)
     shape "scaling curve produced at all widths"
       (List.for_all (fun (_, s) -> s > 0.) curve)
   else shape "4-domain settle at least 2x over uncached baseline" (speedup_at 4 >= 2.0));
  let b = Buffer.create 512 in
  Printf.bprintf b "{\n";
  Printf.bprintf b
    "  \"config\": { \"files\": %d, \"semdirs\": %d, \"touched\": %d, \"reps\": %d, \
     \"mode\": \"%s\", \"host_cores\": %d },\n"
    n_files n_dirs k reps
    (if smoke then "smoke" else if quick then "quick" else "full")
    host_cores;
  Printf.bprintf b "  \"baseline_uncached_s\": %.6f,\n" base_s;
  Printf.bprintf b "  \"curve\": [\n";
  List.iteri
    (fun i (d, s) ->
      Printf.bprintf b "    { \"domains\": %d, \"settle_s\": %.6f, \"speedup\": %.2f }%s\n" d
        s (speedup_at d)
        (if i = List.length curve - 1 then "" else ","))
    curve;
  Printf.bprintf b "  ],\n";
  Printf.bprintf b "  \"speedup_at_4\": %.2f,\n" (speedup_at 4);
  Printf.bprintf b "  \"fixpoint_match\": %b,\n" fixpoint_match;
  Printf.bprintf b
    "  \"caches\": { \"memo_hits\": %d, \"memo_misses\": %d, \"doc_hits\": %d, \
     \"doc_misses\": %d },\n"
    memo_hits memo_misses doc_hits doc_misses;
  Printf.bprintf b "  \"pool\": { \"levels\": %d, \"tasks\": %d }\n" par_levels par_tasks;
  Printf.bprintf b "}\n";
  let payload = Buffer.contents b in
  let oc = open_out par_json_path in
  output_string oc payload;
  close_out oc;
  shape
    (Printf.sprintf "scaling curve written to %s" par_json_path)
    (String.length payload > 2
    && payload.[0] = '{'
    && payload.[String.length payload - 2] = '}')

(* ------------------------------------------------------------------ *)
(* Beyond the paper: remount latency vs journal history (checkpoints)  *)
(* ------------------------------------------------------------------ *)

module Image = Hac_vfs.Image
module Recover = Hac_core.Recover

(* An image whose journal holds [history] records of churn (mkdir+rmdir
   pairs leave live state constant while the log grows), then — under the
   checkpointed variant — a checkpoint + compaction, then [delta] more
   records.  Live state is identical across all variants. *)
let recovery_image ~history ~delta ~checkpointed =
  let t = Hac.create ~stem:false () in
  let fs = Hac.fs t in
  Fs.mkdir_p fs "/data";
  Fs.write_file fs "/data/a.txt" "alpha apple";
  Fs.write_file fs "/data/b.txt" "alpha banana";
  Hac.smkdir t "/sem" "alpha";
  let churn n =
    for _ = 1 to n / 2 do
      Hac.mkdir t "/churn";
      Hac.rmdir t "/churn"
    done
  in
  churn history;
  if checkpointed then begin
    ignore (Hac.checkpoint t);
    ignore (Hac.compact t)
  end;
  churn delta;
  Hac.settle t;
  Hac.shutdown ~graceful:true t;
  Image.dump fs

let remount img =
  match Image.load img with
  | Error e -> failwith e
  | Ok fs ->
      let t = Hac.of_fs fs in
      Recover.reload_report t

let percentile samples q =
  let a = Array.of_list (List.sort compare samples) in
  a.(min (Array.length a - 1) (int_of_float (ceil (q *. float (Array.length a - 1)))))

let recovery_section () =
  banner "Crash recovery: remount latency vs journal history";
  Printf.printf
    "  Remount = image load + journal-chain replay + structure restore.\n\
    \  The churn workload grows the journal without growing live state, so\n\
    \  an uncheckpointed remount pays for history while a checkpointed one\n\
    \  pays only for the post-checkpoint delta.  Writes %s.\n\n"
    rec_json_path;
  let histories = if smoke then [ 20; 60; 120 ] else if quick then [ 100; 400; 1600 ] else [ 100; 1000; 10000 ] in
  let delta = if smoke then 4 else 10 in
  let reps = if smoke then 3 else 7 in
  let points =
    List.concat_map
      (fun history ->
        List.map
          (fun checkpointed ->
            let img = recovery_image ~history ~delta ~checkpointed in
            let r = remount img in
            let samples = List.init reps (fun _ -> Timer.time_only (fun () -> ignore (remount img))) in
            (history, checkpointed, r, percentile samples 0.5, percentile samples 0.9))
          [ false; true ])
      histories
  in
  Printf.printf "  %-10s %-12s %9s %9s %12s %12s\n" "history" "checkpoint" "applied" "segments"
    "p50 (ms)" "p90 (ms)";
  List.iter
    (fun (history, ckpt, (r : Recover.reload_report), p50, p90) ->
      Printf.printf "  %-10d %-12s %9d %9d %12.3f %12.3f\n" history
        (if ckpt then "on" else "off")
        r.Recover.journal.Recover.applied r.Recover.segments_replayed (p50 *. 1000.)
        (p90 *. 1000.))
    points;
  let sel ckpt = List.filter (fun (_, c, _, _, _) -> c = ckpt) points in
  let applied_of (_, _, (r : Recover.reload_report), _, _) = r.Recover.journal.Recover.applied in
  let p50_of (_, _, _, p, _) = p in
  let plain = sel false and ckpt = sel true in
  let last l = List.nth l (List.length l - 1) in
  shape "every remount restores the semantic dir"
    (List.for_all (fun (_, _, (r : Recover.reload_report), _, _) -> r.Recover.restored = 1) points);
  shape "checkpointed chains replay exactly one segment"
    (List.for_all
       (fun (_, _, (r : Recover.reload_report), _, _) ->
         r.Recover.checkpoint_epoch <> None && r.Recover.segments_replayed = 1)
       ckpt);
  (* The acceptance shape: replayed record counts track history without a
     checkpoint and only the (constant) delta with one. *)
  shape "uncheckpointed replay grows with history"
    (applied_of (last plain) > applied_of (List.hd plain));
  shape "checkpointed replay is independent of history"
    (List.for_all (fun p -> applied_of p = applied_of (List.hd ckpt)) ckpt);
  if not (smoke || quick) then
    shape "checkpointed remount beats full replay at max history"
      (p50_of (last ckpt) < p50_of (last plain));
  let b = Buffer.create 512 in
  Printf.bprintf b "{\n";
  Printf.bprintf b "  \"config\": { \"delta\": %d, \"reps\": %d, \"mode\": \"%s\" },\n" delta reps
    (if smoke then "smoke" else if quick then "quick" else "full");
  Printf.bprintf b "  \"points\": [\n";
  List.iteri
    (fun i (history, c, (r : Recover.reload_report), p50, p90) ->
      Printf.bprintf b
        "    { \"journal_records\": %d, \"checkpoint\": %b, \"applied\": %d, \
         \"segments_replayed\": %d, \"restored\": %d, \"remount_p50_s\": %.6f, \
         \"remount_p90_s\": %.6f }%s\n"
        history c r.Recover.journal.Recover.applied r.Recover.segments_replayed
        r.Recover.restored p50 p90
        (if i = List.length points - 1 then "" else ","))
    points;
  Printf.bprintf b "  ],\n";
  Printf.bprintf b "  \"checkpointed_applied_constant\": %b,\n"
    (List.for_all (fun p -> applied_of p = applied_of (List.hd ckpt)) ckpt);
  Printf.bprintf b "  \"uncheckpointed_applied_grows\": %b\n"
    (applied_of (last plain) > applied_of (List.hd plain));
  Printf.bprintf b "}\n";
  let payload = Buffer.contents b in
  let oc = open_out rec_json_path in
  output_string oc payload;
  close_out oc;
  shape
    (Printf.sprintf "remount curve written to %s" rec_json_path)
    (String.length payload > 2
    && payload.[0] = '{'
    && payload.[String.length payload - 2] = '}')

(* --------------------------------------------------------------------- *)
(* Content-and-structure index: the path-scoped lookup crossover study   *)
(* --------------------------------------------------------------------- *)

let index_section () =
  banner "CAS index: path-scoped lookups vs Glimpse block expansion";
  Printf.printf
    "  A term lookup scoped under a directory unions only the compressed\n\
    \  posting partitions whose path label can intersect the scope (CAS\n\
    \  on); the baseline expands the term's full posting blocks and\n\
    \  intersects with the subtree set afterwards (CAS off).  Both paths\n\
    \  verify candidates, so answers are identical; the sweep crosses\n\
    \  scope selectivity with term frequency and reports where each\n\
    \  representation wins.  Writes %s.\n\n"
    index_json_path;
  let top, sub, per_leaf = if smoke then (5, 4, 100) else (10, 10, 1000) in
  let n_docs = top * sub * per_leaf in
  let rare_stride = if smoke then 97 else 997 in
  let idx = Index.create ~stem:false () in
  let contents = Hashtbl.create (2 * n_docs) in
  let doc = ref 0 in
  for a = 0 to top - 1 do
    for b = 0 to sub - 1 do
      for f = 0 to per_leaf - 1 do
        let i = !doc in
        incr doc;
        let path = Printf.sprintf "/d%02d/s%d/f%05d.txt" a b f in
        (* Three frequency classes: [common] is in every document, [decim]
           in every 10th, [sparse] in every [rare_stride]th; the leaf word
           keeps the vocabulary from degenerating to three terms. *)
        let content =
          String.concat " "
            (List.filter
               (fun s -> s <> "")
               [
                 "common";
                 (if i mod 10 = 0 then "decim" else "");
                 (if i mod rare_stride = 0 then "sparse" else "");
                 Printf.sprintf "leaf%02d%d" a b;
               ])
        in
        Hashtbl.replace contents path content;
        ignore (Index.add_document idx ~path ~content)
      done
    done
  done;
  let reader path = Hashtbl.find_opt contents path in
  let scopes = [ ("/d00/s0", per_leaf); ("/d00", sub * per_leaf); ("/", n_docs) ] in
  let terms = [ ("common", 1); ("decim", 10); ("sparse", rare_stride) ] in
  let reps = if smoke then 7 else 21 in
  let median samples = List.nth (List.sort compare samples) (List.length samples / 2) in
  let scope_docs scope =
    if scope = "/" then Index.universe idx else Index.doc_ids_under idx scope
  in
  (* The timed operation is candidate generation + scope intersection — the
     part the representation changes.  Verification work is identical on
     both paths up to block-coarseness and is checked separately below. *)
  let time_lookup ~cas term scope =
    Index.set_use_cas idx cas;
    let under = if cas && scope <> "/" then Some scope else None in
    let sdocs = scope_docs scope in
    let run () =
      ignore (Fileset.cardinal (Fileset.inter (Index.candidate_docs ?under idx term) sdocs))
    in
    run ();
    median (List.init reps (fun _ -> Timer.time_only run))
  in
  let verified ~cas term scope =
    Index.set_use_cas idx cas;
    let under = if cas && scope <> "/" then Some scope else None in
    Fileset.inter (Search.search_word ?under idx reader term) (scope_docs scope)
  in
  let cells =
    List.concat_map
      (fun (term, stride) ->
        List.map
          (fun (scope, scope_size) ->
            let old_s = time_lookup ~cas:false term scope in
            let new_s = time_lookup ~cas:true term scope in
            let same = Fileset.equal (verified ~cas:false term scope) (verified ~cas:true term scope) in
            (term, stride, scope, scope_size, old_s, new_s, same))
          scopes)
      terms
  in
  Index.set_use_cas idx true;
  let stats = Index.cas_stats idx in
  Printf.printf "  corpus: %d docs in %d leaf dirs (%d per leaf)\n\n" n_docs (top * sub)
    per_leaf;
  let spd o n = o /. Float.max 1e-9 n in
  Printf.printf "  %-8s %-10s %10s %14s %14s %9s\n" "term" "scope" "scope-docs" "blocks (us)"
    "CAS (us)" "speedup";
  List.iter
    (fun (term, _, scope, scope_size, old_s, new_s, _) ->
      Printf.printf "  %-8s %-10s %10d %14.2f %14.2f %8.1fx\n" term scope scope_size
        (old_s *. 1e6) (new_s *. 1e6) (spd old_s new_s))
    cells;
  let ratio =
    if stats.Hac_index.Cas.bytes = 0 then 1.0
    else
      float_of_int stats.Hac_index.Cas.uncompressed_bytes
      /. float_of_int stats.Hac_index.Cas.bytes
  in
  Printf.printf
    "\n  postings: %d bytes compressed (%d arrays, %d bitmaps, %d runs)\n\
    \  vs %d bytes as one flat bitmap per term: %.1fx smaller\n"
    stats.Hac_index.Cas.bytes stats.Hac_index.Cas.arrays stats.Hac_index.Cas.bitmaps
    stats.Hac_index.Cas.run_containers stats.Hac_index.Cas.uncompressed_bytes ratio;
  (* Crossover narrative.  An unscoped lookup is served by the cached
     whole-term union, so the partition sweep only shows on scoped lookups:
     the narrower the scope, the fewer partitions are unioned, and the
     advantage over block expansion decays toward the cached-union floor as
     the scope widens — read off the mid-frequency term, whose scoped
     answers are too varied for any cache to hide the sweep. *)
  let cell term scope =
    let _, _, _, _, o, n, _ =
      List.find (fun (t, _, s, _, _, _, _) -> t = term && s = scope) cells
    in
    (o, n)
  in
  let speedup_at scope =
    let o, n = cell "decim" scope in
    spd o n
  in
  let narrow = speedup_at "/d00/s0" and broad = speedup_at "/d00" and whole = speedup_at "/" in
  Printf.printf
    "  crossover (mid-frequency term): %.1fx at /d00/s0, %.1fx at /d00, %.1fx unscoped\n"
    narrow broad whole;
  shape "CAS and block answers verify identically"
    (List.for_all (fun (_, _, _, _, _, _, same) -> same) cells);
  shape "scoped lookup faster at the narrow scope (/d00/s0)"
    (if smoke then narrow > 0. else narrow > 1.0);
  shape "scoped lookup faster at the broad scope (/d00)"
    (if smoke then broad > 0. else broad > 1.0);
  shape "partition advantage decays as the scope widens (crossover)"
    (if smoke then whole > 0. else narrow > broad && broad >= whole *. 0.5);
  shape "compressed postings smaller than flat per-term bitmaps"
    (stats.Hac_index.Cas.bytes < stats.Hac_index.Cas.uncompressed_bytes);
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n";
  Printf.bprintf b
    "  \"config\": { \"docs\": %d, \"leaf_dirs\": %d, \"per_leaf\": %d, \"reps\": %d, \
     \"mode\": \"%s\" },\n"
    n_docs (top * sub) per_leaf reps
    (if smoke then "smoke" else if quick then "quick" else "full");
  Printf.bprintf b
    "  \"memory\": { \"cas_bytes\": %d, \"flat_bitmap_bytes\": %d, \"ratio\": %.2f, \
     \"arrays\": %d, \"bitmaps\": %d, \"runs\": %d, \"terms\": %d, \"partitions\": %d },\n"
    stats.Hac_index.Cas.bytes stats.Hac_index.Cas.uncompressed_bytes ratio
    stats.Hac_index.Cas.arrays stats.Hac_index.Cas.bitmaps stats.Hac_index.Cas.run_containers
    stats.Hac_index.Cas.terms stats.Hac_index.Cas.partitions;
  Printf.bprintf b "  \"cells\": [\n";
  List.iteri
    (fun i (term, stride, scope, scope_size, old_s, new_s, same) ->
      Printf.bprintf b
        "    { \"term\": \"%s\", \"stride\": %d, \"scope\": \"%s\", \"scope_docs\": %d, \
         \"blocks_s\": %.9f, \"cas_s\": %.9f, \"speedup\": %.3f, \"verified_equal\": %b }%s\n"
        term stride scope scope_size old_s new_s (spd old_s new_s) same
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Printf.bprintf b "  ],\n";
  Printf.bprintf b
    "  \"crossover\": { \"narrow_speedup\": %.3f, \"broad_speedup\": %.3f, \
     \"unscoped_speedup\": %.3f }\n"
    narrow broad whole;
  Printf.bprintf b "}\n";
  let payload = Buffer.contents b in
  let oc = open_out index_json_path in
  output_string oc payload;
  close_out oc;
  shape
    (Printf.sprintf "crossover study written to %s" index_json_path)
    (String.length payload > 2
    && payload.[0] = '{'
    && payload.[String.length payload - 2] = '}')

(* --------------------------------------------------------------------- *)
(* Serving layer: group-commit throughput and the degraded-mode tail     *)
(* --------------------------------------------------------------------- *)

let serve_section () =
  let module Clock = Hac_fault.Clock in
  let module Store = Hac_fault.Store in
  let module Msg = Hac_serve.Msg in
  let module Server = Hac_serve.Server in
  let module Admission = Hac_serve.Admission in
  let module Spec = Hac_serve.Spec in
  let module Serveload = Hac_workload.Serveload in
  banner "Serving layer: group commit vs inline settling, degraded tail";
  Printf.printf
    "  A multi-session server batches writes into group commits — one\n\
    \  settle and one durability barrier per batch — and serves reads\n\
    \  from the published snapshot.  Baseline is the same Zipf op trace\n\
    \  applied inline by a single client with a settle after every\n\
    \  mutation.  The faulted run swallows the device's fsync barriers\n\
    \  mid-trace: the server must shed writes with retry hints, serve\n\
    \  reads stale, recover when the device heals, and keep the latency\n\
    \  tail bounded by the admission SLO.  Writes %s.\n\n"
    serve_json_path;
  let seed = 77 in
  let sessions, per_session = if smoke then (3, 12) else if quick then (4, 60) else (6, 200) in
  let reps = if smoke then 1 else 3 in
  let build_rig ?(disk = false) () =
    let fs = Fs.create () in
    let store =
      if disk then begin
        let s = Store.create ~seed () in
        Fs.attach_disk fs s;
        Some s
      end
      else None
    in
    let corpus = Corpus.make ~seed () in
    let files = Corpus.build_tree corpus fs ~root:"/ws" Corpus.small_tree in
    ignore (Corpus.plant fs ~paths:files ~word:"servedoc" ~count:6);
    Fs.mkdir_p fs "/srv";
    let hac = Hac.of_fs fs in
    Hac.smkdir hac "/ws/q-serve" "servedoc";
    Hac.settle hac;
    (hac, corpus, Array.of_list files, store)
  in
  (* One flattened round-robin interleave of the per-session streams: the
     op order every run (inline, served, faulted) replays identically. *)
  let trace corpus files =
    let profile = { Serveload.default with ops_per_session = per_session } in
    let streams =
      Array.init sessions (fun i ->
          ref
            (List.map Msg.of_workload
               (Serveload.session_ops profile ~corpus ~seed ~session:i ~files
                  ~semdirs:[| "/ws/q-serve" |] ~fresh_root:"/srv")))
    in
    let out = ref [] in
    while Array.exists (fun r -> !r <> []) streams do
      Array.iteri
        (fun i r ->
          match !r with
          | [] -> ()
          | op :: rest ->
              r := rest;
              out := (i, op) :: !out)
        streams
    done;
    List.rev !out
  in
  let median l = List.nth (List.sort compare l) (List.length l / 2) in
  (* Inline baseline: one client applying ops directly, every mutation
     settled (and its barrier paid) before the next op — the only way a
     single inline client stays durable. *)
  let inline_wall ops =
    median
      (List.init reps (fun _ ->
           let hac, _, _, _ = build_rig () in
           Gc.major ();
           Timer.time_only (fun () ->
               List.iter
                 (fun (_, op) ->
                   match op with
                   | Msg.W w -> ( try Server.apply_write hac w with _ -> ())
                   | Msg.R r -> ignore (Spec.eval_read hac r))
                 ops)))
  in
  let server_run ops =
    let hac, _, _, _ = build_rig () in
    (* One domain: reads evaluate inline, so the comparison isolates the
       group-commit effect (settle amortization) from pool scheduling. *)
    let config =
      {
        Server.default_config with
        domains = 1;
        max_batch = 16;
        admission = { Admission.default with queue_bound = 1 lsl 14; slo_s = 1e9; seed };
      }
    in
    let server = Server.create ~config hac in
    let clock = Hac.clock hac in
    let v0 = Clock.now clock in
    Gc.major ();
    let wall =
      Timer.time_only (fun () ->
          List.iter
            (fun (i, op) ->
              ignore (Server.submit server ~session:(Printf.sprintf "s%d" i) op);
              if Server.queue_depth server >= config.max_batch then Server.pump server)
            ops;
          Server.drain server)
    in
    let virtual_s = Clock.now clock -. v0 in
    let st = Server.stats server in
    Server.stop server;
    (wall, virtual_s, st)
  in
  let _, corpus0, files0, _ = build_rig () in
  let ops = trace corpus0 files0 in
  let n_ops = List.length ops in
  let inline_s = inline_wall ops in
  let runs = List.init reps (fun _ -> server_run ops) in
  let server_s = median (List.map (fun (w, _, _) -> w) runs) in
  let server_virtual_s, sstats =
    match List.hd runs with _, v, st -> (v, st)
  in
  (* The modelled device: settles in this engine are in-memory and nearly
     free, so wall clock cannot show what group commit buys on a device
     where the settle's durability barrier dominates.  The virtual clock
     does: the server charges read/write/settle costs per batch; an inline
     client pays the settle (and its barrier) after every mutation. *)
  let cost = Server.default_config in
  let inline_virtual_s =
    List.fold_left
      (fun acc (_, op) ->
        acc
        +.
        match op with
        | Msg.W _ -> cost.Server.write_cost_s +. cost.Server.settle_cost_s
        | Msg.R _ -> cost.Server.read_cost_s)
      0.0 ops
  in
  let inline_tput = float_of_int n_ops /. inline_virtual_s in
  let server_tput = float_of_int n_ops /. server_virtual_s in
  let speedup = server_tput /. inline_tput in
  (* The faulted run: mid-trace the device stops honouring barriers. *)
  let slo = 30.0 in
  let hac_f, corpus_f, files_f, store_f = build_rig ~disk:true () in
  let store_f = Option.get store_f in
  let fconfig =
    {
      Server.default_config with
      domains = 2;
      max_batch = 8;
      fsync_retries = 1;
      admission = { Admission.default with queue_bound = 64; slo_s = slo; seed };
    }
  in
  let fserver = Server.create ~config:fconfig hac_f in
  let fclock = Hac.clock hac_f in
  let fops = trace corpus_f files_f in
  let fn = List.length fops in
  let window_at = fn / 4 in
  let drops = if smoke then 12 else 40 in
  let ftickets = ref [] in
  List.iteri
    (fun k (i, op) ->
      if k = window_at then Store.drop_fsyncs store_f drops;
      ftickets := Server.submit fserver ~session:(Printf.sprintf "s%d" i) op :: !ftickets;
      if k mod 2 = 0 then Server.pump fserver;
      Clock.advance fclock 0.1)
    fops;
  Server.drain fserver;
  Server.stop fserver;
  let ftickets = List.rev !ftickets in
  let fstats = Server.stats fserver in
  let unresolved =
    List.length (List.filter (fun (tk : Msg.ticket) -> tk.Msg.outcome = None) ftickets)
  in
  let degraded_sheds =
    List.length
      (List.filter
         (fun (tk : Msg.ticket) ->
           match tk.Msg.outcome with
           | Some (Msg.Rejected { reason = Msg.Degraded_writes; retry_after_s }) ->
               retry_after_s >= 0.0
           | _ -> false)
         ftickets)
  in
  let latencies =
    List.filter_map
      (fun (tk : Msg.ticket) ->
        match tk.Msg.outcome with
        | Some (Msg.Replied { latency_s; _ }) -> Some latency_s
        | _ -> None)
      ftickets
  in
  let p99 = if latencies = [] then 0.0 else percentile latencies 0.99 in
  let p50 = if latencies = [] then 0.0 else percentile latencies 0.5 in
  let p99_bound = slo +. 5.0 in
  Printf.printf "  trace: %d sessions x %d ops (%d total)\n\n" sessions per_session n_ops;
  Printf.printf "  %-40s %14s %12s %10s\n" "configuration" "modelled (s)" "ops/s" "wall (ms)";
  Printf.printf "  %-40s %14.2f %12.0f %10.2f\n" "inline client, settle per mutation"
    inline_virtual_s inline_tput (inline_s *. 1000.);
  Printf.printf "  %-40s %14.2f %12.0f %10.2f\n"
    (Printf.sprintf "server, group commit (batch %d)" 16)
    server_virtual_s server_tput (server_s *. 1000.);
  Printf.printf "\n  group-commit speedup: %.1fx (%d batches for %d commits)\n" speedup
    sstats.Server.batches sstats.Server.commits;
  Printf.printf
    "  faulted: %d submitted, %d shed (%d degraded-write), %d stale reads, virtual \
     p50/p99 %.2f/%.2f s\n"
    fstats.Server.submitted fstats.Server.shed degraded_sheds fstats.Server.stale_reads p50
    p99;
  shape "group commit beats inline settling on the modelled device"
    (server_tput > inline_tput);
  shape "server commits acknowledged" (sstats.Server.acked > 0 && sstats.Server.acked = sstats.Server.commits);
  shape "faulted run resolved every ticket explicitly" (unresolved = 0);
  shape "degraded mode shed writes with retry hints" (degraded_sheds > 0);
  shape "stale reads served during the stall" (fstats.Server.stale_reads > 0);
  shape "degraded p99 bounded by the admission SLO" (p99 <= p99_bound);
  let b = Buffer.create 512 in
  Printf.bprintf b "{\n";
  Printf.bprintf b
    "  \"config\": { \"sessions\": %d, \"ops_per_session\": %d, \"total_ops\": %d, \
     \"reps\": %d, \"mode\": \"%s\" },\n"
    sessions per_session n_ops reps
    (if smoke then "smoke" else if quick then "quick" else "full");
  Printf.bprintf b
    "  \"inline\": { \"modelled_s\": %.3f, \"ops_per_s\": %.1f, \"wall_s\": %.6f },\n"
    inline_virtual_s inline_tput inline_s;
  Printf.bprintf b
    "  \"server\": { \"modelled_s\": %.3f, \"ops_per_s\": %.1f, \"wall_s\": %.6f, \
     \"batches\": %d, \"commits\": %d, \"acked\": %d, \"shed\": %d },\n"
    server_virtual_s server_tput server_s sstats.Server.batches sstats.Server.commits
    sstats.Server.acked sstats.Server.shed;
  Printf.bprintf b "  \"group_commit_speedup\": %.2f,\n" speedup;
  Printf.bprintf b
    "  \"faulted\": { \"submitted\": %d, \"completed\": %d, \"shed\": %d, \
     \"degraded_write_sheds\": %d, \"stale_reads\": %d, \"p50_latency_s\": %.3f, \
     \"p99_latency_s\": %.3f, \"p99_bound_s\": %.3f, \"unresolved\": %d }\n"
    fstats.Server.submitted fstats.Server.completed fstats.Server.shed degraded_sheds
    fstats.Server.stale_reads p50 p99 p99_bound unresolved;
  Printf.bprintf b "}\n";
  let payload = Buffer.contents b in
  let oc = open_out serve_json_path in
  output_string oc payload;
  close_out oc;
  shape
    (Printf.sprintf "serving study written to %s" serve_json_path)
    (String.length payload > 2
    && payload.[0] = '{'
    && payload.[String.length payload - 2] = '}')

(* ----------------------------- *)

(* --------------------------------------------------------------------- *)
(* Storage tier: checkpointed cold mount vs full journal replay, and the *)
(* block cache's byte bound under a corpus larger than its budget        *)
(* --------------------------------------------------------------------- *)

(* A device with [records] journal records of churn history around a small
   constant live state.  [checkpointed] also enables the tier and commits
   the fast-mount image (checkpoint + compact), so a remount replays only
   the consolidated log; without it a remount replays the whole history. *)
let store_image ~records ~checkpointed =
  let t = Hac.create ~stem:false () in
  let fs = Hac.fs t in
  Fs.mkdir_p fs "/data";
  for i = 0 to 49 do
    Hac.write_file t
      (Printf.sprintf "/data/f%02d.txt" i)
      (Printf.sprintf "alpha document %d with steady words" i)
  done;
  Hac.smkdir t "/sem" "alpha";
  Hac.settle t;
  if checkpointed then Hac.enable_store t;
  for _ = 1 to records / 2 do
    Hac.mkdir t "/churn";
    Hac.rmdir t "/churn"
  done;
  Hac.settle t;
  if checkpointed then begin
    ignore (Hac.checkpoint t);
    ignore (Hac.compact t)
  end;
  (* A small post-checkpoint delta, so the fast path really settles one. *)
  Hac.write_file t "/data/tail.txt" "alpha tail";
  Hac.settle t;
  Hac.shutdown ~graceful:true t;
  Image.dump fs

let store_section () =
  banner "Storage tier: O(delta) cold mount and the bounded block cache";
  Printf.printf
    "  A checkpointed device carries the directory-reconstruction image,\n\
    \  the document table and immutable postings segments; Recover.mount\n\
    \  rebuilds namespace and term directory from those in O(live entries)\n\
    \  and demand-faults postings, instead of replaying the journal.\n\
    \  Writes %s.\n\n"
    store_json_path;
  let sizes =
    if smoke then [ 40; 120 ]
    else if quick then [ 400; 1600 ]
    else [ 1000; 10000; 100000 ]
  in
  let reps = if smoke then 3 else 5 in
  let mount_points =
    List.map
      (fun records ->
        let fast_img = store_image ~records ~checkpointed:true in
        let full_img = store_image ~records ~checkpointed:false in
        let load img =
          match Image.load img with Ok fs -> fs | Error e -> failwith e
        in
        let mode = ref `Full in
        let fast_once () =
          let t, m = Recover.mount ~stem:false (load fast_img) in
          mode := m;
          Hac.shutdown ~graceful:false t
        in
        let full_once () =
          let t = Hac.of_fs ~stem:false (load full_img) in
          let (_ : Recover.reload_report) = Recover.reload_report t in
          Hac.shutdown ~graceful:false t
        in
        let fast = List.init reps (fun _ -> Timer.time_only fast_once) in
        let full = List.init reps (fun _ -> Timer.time_only full_once) in
        (records, !mode, percentile fast 0.5, percentile full 0.5))
      sizes
  in
  Printf.printf "  %-10s %-6s %14s %14s %10s\n" "records" "mode" "fast p50 (ms)"
    "full p50 (ms)" "speedup";
  List.iter
    (fun (records, mode, fast, full) ->
      Printf.printf "  %-10d %-6s %14.3f %14.3f %9.1fx\n" records
        (match mode with `Fast -> "fast" | `Full -> "FULL")
        (fast *. 1000.) (full *. 1000.)
        (full /. fast))
    mount_points;
  let all_fast = List.for_all (fun (_, m, _, _) -> m = `Fast) mount_points in
  shape "every checkpointed cold mount takes the fast path" all_fast;
  let last l = List.nth l (List.length l - 1) in
  let _, _, fast_max, full_max = last mount_points in
  if not (smoke || quick) then
    shape "fast mount >= 5x full replay at max history" (full_max >= 5. *. fast_max);
  (* The cache bound: settle a corpus 4x the byte budget through the tier;
     the resident gauge must never have exceeded the budget. *)
  let budget = if smoke then 2048 else 64 * 1024 in
  let body i = Printf.sprintf "file %05d carries %s padding words" i (String.make 120 'p') in
  let n_docs = (4 * budget / String.length (body 0)) + 4 in
  let t = Hac.create ~stem:false () in
  Fs.mkdir_p (Hac.fs t) "/corpus";
  Hac.enable_store ~budget t;
  for i = 1 to n_docs do
    Hac.write_file t (Printf.sprintf "/corpus/f%05d.txt" i) (body i)
  done;
  Hac.settle t;
  for i = 1 to n_docs do
    ignore (Hac.read_file t (Printf.sprintf "/corpus/f%05d.txt" i) : string)
  done;
  let gauge name =
    match Metrics.find (Hac.metrics t) name with
    | Some (Metrics.Gauge_value v) -> int_of_float v
    | _ -> -1
  in
  let peak = gauge "store.cache.peak_bytes" in
  let resident = gauge "store.cache.bytes" in
  let corpus_bytes = n_docs * String.length (body 0) in
  Printf.printf "\n  cache budget %d B, corpus %d B (%d docs): peak %d B, resident %d B\n"
    budget corpus_bytes n_docs peak resident;
  let within = peak >= 0 && peak <= budget && resident >= 0 && resident <= budget in
  shape "peak resident cache bytes within budget over 4x corpus" within;
  Hac.shutdown ~graceful:false t;
  let b = Buffer.create 512 in
  Printf.bprintf b "{\n";
  Printf.bprintf b "  \"config\": { \"reps\": %d, \"live_files\": 50, \"mode\": \"%s\" },\n"
    reps
    (if smoke then "smoke" else if quick then "quick" else "full");
  Printf.bprintf b "  \"mounts\": [\n";
  List.iteri
    (fun i (records, mode, fast, full) ->
      Printf.bprintf b
        "    { \"journal_records\": %d, \"fast_path\": %b, \"fast_mount_p50_s\": %.6f, \
         \"full_replay_p50_s\": %.6f, \"mount_speedup\": %.3f }%s\n"
        records
        (mode = `Fast)
        fast full (full /. fast)
        (if i = List.length mount_points - 1 then "" else ","))
    mount_points;
  Printf.bprintf b "  ],\n";
  Printf.bprintf b "  \"all_mounts_fast\": %b,\n" all_fast;
  if not (smoke || quick) then
    Printf.bprintf b "  \"speedup_ge_5_at_max_speedup\": %b,\n" (full_max >= 5. *. fast_max);
  Printf.bprintf b "  \"cache_budget_bytes\": %d,\n" budget;
  Printf.bprintf b "  \"cache_corpus_docs\": %d,\n" n_docs;
  Printf.bprintf b "  \"cache_peak_bytes\": %d,\n" peak;
  Printf.bprintf b "  \"cache_peak_within_budget\": %b\n" within;
  Printf.bprintf b "}\n";
  let payload = Buffer.contents b in
  let oc = open_out store_json_path in
  output_string oc payload;
  close_out oc;
  shape
    (Printf.sprintf "storage-tier curve written to %s" store_json_path)
    (String.length payload > 2
    && payload.[0] = '{'
    && payload.[String.length payload - 2] = '}')

let () =
  if json_only then begin
    (* Machine-readable mode: only the sections that write (and self-check)
       the BENCH_sync.json and BENCH_obs.json trajectories. *)
    incremental_settle ();
    obs_section ();
    parallel_section ();
    recovery_section ();
    index_section ();
    serve_section ();
    store_section ();
    Printf.printf "\ndone.\n"
  end
  else begin
    Printf.printf "HAC reproduction benchmark harness%s\n"
      (if quick then " (quick mode)" else "");
    tables_1_and_2 ();
    table_3 ();
    let indexed = table_4 () in
    space_section indexed;
    ablation_block_size ();
    ablation_lazy_links ();
    ablation_stemming ();
    ablation_conjunctions ();
    trace_replay ();
    fault_tolerance ();
    incremental_settle ();
    obs_section ();
    parallel_section ();
    recovery_section ();
    index_section ();
    serve_section ();
    store_section ();
    micro_benchmarks ();
    Printf.printf "\ndone.\n"
  end
