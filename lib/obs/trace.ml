(* Nested spans over two clocks: the caller-supplied [now] (the virtual
   fault clock in this repo, so traces are deterministic under tests) and a
   [cpu] clock ([Sys.time] by default) for real profiling durations.  A
   global sequence number orders spans strictly even when neither clock
   advances between events.  Finished spans land in a bounded ring.

   Span ids come from a seeded splitmix64 stream ([Ctx.gen]), not a
   per-ring counter: ids stay unique across [clear] and across multiple
   rings, so flight-recorder dumps from successive runs don't collide.
   Each tracer defaults to a distinct seed (a process-wide instance
   counter), and [create ?seed] pins the stream for reproducibility. *)

type span = {
  id : int;
  parent : int option;
  depth : int;
  name : string;
  mutable attrs : (string * string) list;
  seq : int;
  vstart : float;
  mutable vstop : float;
  cstart : float;
  mutable cstop : float;
  mutable failed : bool;
}

type t = {
  now : unit -> float;
  cpu : unit -> float;
  on_close : (span -> unit) option;
  capacity : int;
  ring : span option array;
  mutable head : int; (* next write position *)
  mutable stored : int; (* live entries, <= capacity *)
  mutable dropped : int;
  mutable total : int; (* spans ever finished *)
  ids : Ctx.gen;
  mutable next_seq : int;
  mutable active : span list; (* innermost first *)
  mutable live : bool;
}

let instances = ref 0

let create ?(capacity = 512) ?(cpu = Sys.time) ?on_close ?seed ~now () =
  let capacity = max 1 capacity in
  let seed =
    match seed with
    | Some s -> s
    | None ->
        incr instances;
        0x5EED + (!instances * 0x1003F)
  in
  {
    now;
    cpu;
    on_close;
    capacity;
    ring = Array.make capacity None;
    head = 0;
    stored = 0;
    dropped = 0;
    total = 0;
    ids = Ctx.gen ~seed;
    next_seq = 0;
    active = [];
    live = false;
  }

let set_enabled t b = t.live <- b

let enabled t = t.live

let push t sp =
  if t.stored = t.capacity then t.dropped <- t.dropped + 1
  else t.stored <- t.stored + 1;
  t.ring.(t.head) <- Some sp;
  t.head <- (t.head + 1) mod t.capacity;
  t.total <- t.total + 1;
  match t.on_close with Some f -> f sp | None -> ()

let close t sp =
  sp.vstop <- t.now ();
  sp.cstop <- t.cpu ();
  (* Pop down to (and including) [sp]: if tracing was toggled mid-span the
     stack may hold children that never closed; discard them rather than
     leaving the stack wedged. *)
  let rec pop = function
    | [] -> []
    | s :: rest -> if s.id = sp.id then rest else pop rest
  in
  t.active <- pop t.active;
  push t sp

let with_span t ?(attrs = []) ~name f =
  if not t.live then f ()
  else begin
    let sp =
      {
        id = Ctx.fresh t.ids;
        parent = (match t.active with [] -> None | s :: _ -> Some s.id);
        depth = List.length t.active;
        name;
        attrs;
        seq = t.next_seq;
        vstart = t.now ();
        vstop = 0.0;
        cstart = t.cpu ();
        cstop = 0.0;
        failed = false;
      }
    in
    t.next_seq <- t.next_seq + 1;
    t.active <- sp :: t.active;
    match f () with
    | v ->
        close t sp;
        v
    | exception e ->
        sp.failed <- true;
        close t sp;
        raise e
  end

let set_attr t k v =
  match t.active with
  | [] -> ()
  | sp :: _ -> sp.attrs <- (k, v) :: List.remove_assoc k sp.attrs

let set_attr_int t k v = set_attr t k (string_of_int v)

let current t = match t.active with [] -> None | sp :: _ -> Some sp.id

let emit t ?parent ?(attrs = []) ?(failed = false) ~name ~vstart ~vstop ~cpu_s () =
  (* Record an externally measured, already-finished span — e.g. per-read
     work timed on a pool domain, parent-linked to the caller's wave span
     after the barrier so the pool itself never touches the tracer. *)
  if not t.live then None
  else begin
    let depth =
      match parent with
      | Some p -> (
          match List.find_opt (fun s -> s.id = p) t.active with
          | Some s -> s.depth + 1
          | None -> 0)
      | None -> 0
    in
    let sp =
      {
        id = Ctx.fresh t.ids;
        parent;
        depth;
        name;
        attrs;
        seq = t.next_seq;
        vstart;
        vstop;
        cstart = 0.0;
        cstop = cpu_s;
        failed;
      }
    in
    t.next_seq <- t.next_seq + 1;
    push t sp;
    Some sp.id
  end

let finished t =
  (* Oldest first: the ring holds the last [stored] spans ending just
     before [head]. *)
  let out = ref [] in
  for i = 0 to t.stored - 1 do
    let idx = (t.head - 1 - i + (2 * t.capacity)) mod t.capacity in
    match t.ring.(idx) with Some sp -> out := sp :: !out | None -> ()
  done;
  !out

let dropped t = t.dropped

let total t = t.total

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.head <- 0;
  t.stored <- 0;
  t.dropped <- 0;
  t.total <- 0;
  t.active <- []

let v_duration sp = sp.vstop -. sp.vstart

let cpu_duration sp = sp.cstop -. sp.cstart

(* -- export ---------------------------------------------------------------- *)

let escape = Metrics.json_escape

let span_json sp =
  let b = Buffer.create 128 in
  Printf.bprintf b
    "{\"id\":%d,\"parent\":%s,\"name\":\"%s\",\"seq\":%d,\"vstart\":%.9g,\"vstop\":%.9g,\"cpu_s\":%.9g"
    sp.id
    (match sp.parent with Some p -> string_of_int p | None -> "null")
    (escape sp.name) sp.seq sp.vstart sp.vstop (cpu_duration sp);
  if sp.failed then Buffer.add_string b ",\"failed\":true";
  if sp.attrs <> [] then begin
    Buffer.add_string b ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b "\"%s\":\"%s\"" (escape k) (escape v))
      (List.rev sp.attrs);
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let to_jsonl t =
  let b = Buffer.create 512 in
  List.iter
    (fun sp ->
      Buffer.add_string b (span_json sp);
      Buffer.add_char b '\n')
    (finished t);
  Buffer.contents b

(* -- rendering ------------------------------------------------------------- *)

let render_forest spans =
  let b = Buffer.create 256 in
  let by_parent = Hashtbl.create 16 in
  let ids = Hashtbl.create 16 in
  List.iter (fun sp -> Hashtbl.replace ids sp.id ()) spans;
  List.iter
    (fun sp ->
      (* A span whose parent was evicted from the ring renders as a root. *)
      let key = match sp.parent with Some p when Hashtbl.mem ids p -> Some p | _ -> None in
      Hashtbl.replace by_parent key
        (sp :: (try Hashtbl.find by_parent key with Not_found -> [])))
    spans;
  let children key =
    (try Hashtbl.find by_parent key with Not_found -> [])
    |> List.sort (fun a b -> compare a.seq b.seq)
  in
  let rec emit indent sp =
    Printf.bprintf b "%s%s%s  v=%.3fs cpu=%.6fs%s\n" indent sp.name
      (if sp.failed then " [failed]" else "")
      (v_duration sp) (cpu_duration sp)
      (match sp.attrs with
      | [] -> ""
      | attrs ->
          "  "
          ^ String.concat " "
              (List.rev_map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs));
    List.iter (emit (indent ^ "  ")) (children (Some sp.id))
  in
  List.iter (emit "") (children None);
  Buffer.contents b

let render t = render_forest (finished t)

let last_subtree t =
  (* Subtree of the most recent root span, oldest first. *)
  let spans = finished t in
  let ids = Hashtbl.create 16 in
  List.iter (fun sp -> Hashtbl.replace ids sp.id sp) spans;
  let rec root sp =
    match sp.parent with
    | Some p -> ( match Hashtbl.find_opt ids p with Some up -> root up | None -> sp)
    | None -> sp
  in
  match List.rev spans with
  | [] -> []
  | last :: _ ->
      let r = root last in
      let rec in_subtree sp =
        sp.id = r.id
        ||
        match sp.parent with
        | Some p -> ( match Hashtbl.find_opt ids p with Some up -> in_subtree up | None -> false)
        | None -> false
      in
      List.filter in_subtree spans

let render_last t = render_forest (last_subtree t)
