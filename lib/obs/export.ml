(* Registry exporters: Prometheus-style text exposition and JSONL
   snapshots.  Both render the whole registry via [Metrics.dump], so a
   single scrape or snapshot is a consistent point-in-time view.

   Prometheus names only allow [a-zA-Z0-9_:]; the registry's dotted
   names are sanitized (every other character becomes '_') and prefixed
   with "hac_".  Histograms are exposed in summary form — the registry's
   log2 buckets give calibrated p50/p90/p99 already, and a summary keeps
   the exposition compact — with one HELP/TYPE header per family. *)

let prefix = "hac_"

let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        || c = '_' || c = ':'
      in
      if not ok then Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  let s = prefix ^ s in
  (* A metric name must not start a family with a digit; the prefix
     already guarantees a letter first. *)
  s

(* %.17g survives a round-trip; trim the common integral case for
   readability. *)
let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let render_prom metrics =
  let b = Buffer.create 1024 in
  let seen = Hashtbl.create 64 in
  let header family kind help =
    if not (Hashtbl.mem seen family) then (
      Hashtbl.add seen family ();
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" family help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" family kind))
  in
  List.iter
    (fun (name, dumped) ->
      let family = sanitize name in
      let help = "hac instrument " ^ name in
      match (dumped : Metrics.dumped) with
      | Metrics.Counter_value n ->
          header family "counter" help;
          Buffer.add_string b (Printf.sprintf "%s %d\n" family n)
      | Metrics.Gauge_value v ->
          header family "gauge" help;
          Buffer.add_string b (Printf.sprintf "%s %s\n" family (prom_float v))
      | Metrics.Histogram_value s ->
          header family "summary" help;
          Buffer.add_string b
            (Printf.sprintf "%s{quantile=\"0.5\"} %s\n" family (prom_float s.Metrics.p50));
          Buffer.add_string b
            (Printf.sprintf "%s{quantile=\"0.9\"} %s\n" family (prom_float s.Metrics.p90));
          Buffer.add_string b
            (Printf.sprintf "%s{quantile=\"0.99\"} %s\n" family (prom_float s.Metrics.p99));
          Buffer.add_string b
            (Printf.sprintf "%s_sum %s\n" family (prom_float s.Metrics.sum));
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" family s.Metrics.count))
    (Metrics.dump metrics);
  Buffer.contents b

let to_jsonl metrics =
  let b = Buffer.create 1024 in
  let str s = "\"" ^ Metrics.json_escape s ^ "\"" in
  List.iter
    (fun (name, dumped) ->
      (match (dumped : Metrics.dumped) with
      | Metrics.Counter_value n ->
          Buffer.add_string b
            (Printf.sprintf "{\"name\":%s,\"kind\":\"counter\",\"value\":%d}" (str name) n)
      | Metrics.Gauge_value v ->
          Buffer.add_string b
            (Printf.sprintf "{\"name\":%s,\"kind\":\"gauge\",\"value\":%s}" (str name)
               (prom_float v))
      | Metrics.Histogram_value s ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"name\":%s,\"kind\":\"histogram\",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
               (str name) s.Metrics.count (prom_float s.Metrics.sum)
               (prom_float s.Metrics.vmin) (prom_float s.Metrics.vmax)
               (prom_float s.Metrics.p50) (prom_float s.Metrics.p90)
               (prom_float s.Metrics.p99)));
      Buffer.add_char b '\n')
    (Metrics.dump metrics);
  Buffer.contents b
