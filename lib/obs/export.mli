(** Whole-registry exporters. *)

val sanitize : string -> string
(** Map a registry name to a valid Prometheus family name: characters
    outside [a-zA-Z0-9_:] become '_', with a "hac_" prefix. *)

val render_prom : Metrics.t -> string
(** Prometheus text exposition: counters and gauges verbatim, histograms
    in summary form (quantile 0.5/0.9/0.99 + _sum/_count), exactly one
    HELP and TYPE line per family. *)

val to_jsonl : Metrics.t -> string
(** One JSON object per instrument per line. *)
