(* Request-scoped trace context.

   A [Ctx.t] travels with one request (a serving-layer ticket, a profiled
   shell command) from admission to final ack.  It carries a 63-bit trace
   id and an ordered per-stage time breakdown: [record_until ctx stage now]
   charges the interval since the previous mark to [stage] and advances the
   mark, so the recorded stages telescope — their sum equals the span from
   the context's birth to the last mark, with no gaps and no double
   counting.  Stages repeat (a ticket can wait on fsync across several
   pumps); repeated charges accumulate under the first occurrence, keeping
   the breakdown stable and small.

   The id generator is splitmix64 over an explicit state so ids are
   deterministic for a fixed seed yet unique across rings, resets and
   successive runs — the flight recorder and trace ring both draw from it. *)

type gen = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let gen ~seed = { state = Int64.logxor golden (Int64.of_int seed) }

let fresh g =
  g.state <- Int64.add g.state golden;
  let z = g.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  (* [Int64.to_int] truncates to the native 63-bit int, where the mixed
     value's bit 62 would land on the sign; mask it off so ids are always
     non-negative. *)
  Int64.to_int z land max_int

type t = {
  id : int;
  born_s : float;
  mutable mark_s : float;
  mutable stages : (string * float) list; (* insertion order; <= a handful *)
}

let make ~id ~now = { id; born_s = now; mark_s = now; stages = [] }

let id t = t.id
let born_s t = t.born_s
let id_hex t = Printf.sprintf "%016Lx" (Int64.of_int t.id)

let add t name d =
  if List.mem_assoc name t.stages then
    t.stages <- List.map (fun (n, v) -> if n = name then (n, v +. d) else (n, v)) t.stages
  else t.stages <- t.stages @ [ (name, d) ]

let record_until t name now =
  add t name (now -. t.mark_s);
  t.mark_s <- now

let stages t = t.stages
let find t name = List.assoc_opt name t.stages
let total t = List.fold_left (fun acc (_, d) -> acc +. d) 0.0 t.stages

let render t =
  let b = Buffer.create 96 in
  Buffer.add_string b ("trace=" ^ id_hex t);
  List.iter
    (fun (name, d) -> Buffer.add_string b (Printf.sprintf " %s=%.6fs" name d))
    t.stages;
  Buffer.contents b
