(* SLO monitor: declarative per-op latency/error objectives evaluated
   with multi-window burn rates on the virtual clock.

   An objective says "fraction [goal] of [op] requests must succeed
   within [latency_s]".  Every resolved request is classified good or
   bad; the burn rate over a window is

     bad_fraction(window) / (1 - goal)

   i.e. 1.0 means the error budget is being consumed exactly as fast as
   it accrues.  Following the standard multi-window discipline, an alert
   fires only when the burn rate reaches the threshold on BOTH a fast
   window (responsive, 5-minute-equivalent) and a slow window (resistant
   to blips, 1-hour-equivalent) — [>=] on both, so the exact boundary
   fires.  The alert clears as soon as either window drops back below
   the threshold.

   Gauges [slo.<op>.burn_fast]/[.burn_slow]/[.breached] and the counter
   [slo.<op>.alerts] expose the state; the serving layer additionally
   folds [breached] into its degraded causes as cause "slo". *)

type objective = { op : string; latency_s : float; goal : float }

type config = {
  fast_window_s : float;
  slow_window_s : float;
  burn_threshold : float;
}

let default_config =
  { fast_window_s = 300.0; slow_window_s = 3600.0; burn_threshold = 1.0 }

let default_objectives =
  [
    { op = "read"; latency_s = 2.0; goal = 0.9 };
    { op = "write"; latency_s = 10.0; goal = 0.9 };
  ]

type alert = { a_op : string; at : float; fast_burn : float; slow_burn : float }

type tracked = {
  obj : objective;
  mutable events : (float * bool) list; (* (at, bad), newest first *)
  mutable active : bool;
  g_fast : Metrics.gauge option;
  g_slow : Metrics.gauge option;
  g_breached : Metrics.gauge option;
  c_alerts : Metrics.counter option;
  c_bad : Metrics.counter option;
}

type t = {
  config : config;
  now : unit -> float;
  tracked : tracked list;
  on_alert : (alert -> unit) option;
}

let create ?(config = default_config) ?metrics ?on_alert ~now objectives =
  let track obj =
    let inst make name = Option.map (fun m -> make m name) metrics in
    {
      obj;
      events = [];
      active = false;
      g_fast = inst Metrics.gauge (Printf.sprintf "slo.%s.burn_fast" obj.op);
      g_slow = inst Metrics.gauge (Printf.sprintf "slo.%s.burn_slow" obj.op);
      g_breached = inst Metrics.gauge (Printf.sprintf "slo.%s.breached" obj.op);
      c_alerts = inst Metrics.counter (Printf.sprintf "slo.%s.alerts" obj.op);
      c_bad = inst Metrics.counter (Printf.sprintf "slo.%s.bad" obj.op);
    }
  in
  { config; now; tracked = List.map track objectives; on_alert }

let objectives t = List.map (fun tr -> tr.obj) t.tracked
let objective t op = List.find_opt (fun o -> o.op = op) (objectives t)

let prune t tr =
  let horizon = t.now () -. t.config.slow_window_s in
  (* Newest first: keep the prefix that is still inside the slow window. *)
  let rec keep = function
    | (at, b) :: tl when at >= horizon -> (at, b) :: keep tl
    | _ -> []
  in
  tr.events <- keep tr.events

let observe t ~op ~latency_s ~ok =
  match List.find_opt (fun tr -> tr.obj.op = op) t.tracked with
  | None -> ()
  | Some tr ->
      let bad = (not ok) || latency_s > tr.obj.latency_s in
      tr.events <- (t.now (), bad) :: tr.events;
      if bad then Option.iter (fun c -> Metrics.incr c) tr.c_bad;
      prune t tr

let burn_over t tr window =
  let horizon = t.now () -. window in
  let total = ref 0 and bad = ref 0 in
  List.iter
    (fun (at, b) ->
      if at >= horizon then (
        incr total;
        if b then incr bad))
    tr.events;
  if !total = 0 then 0.0
  else
    let budget = 1.0 -. tr.obj.goal in
    if budget <= 0.0 then if !bad > 0 then infinity else 0.0
    else float_of_int !bad /. float_of_int !total /. budget

let burn t ~op =
  List.find_opt (fun tr -> tr.obj.op = op) t.tracked
  |> Option.map (fun tr ->
         (burn_over t tr t.config.fast_window_s, burn_over t tr t.config.slow_window_s))

let evaluate t =
  let fired = ref [] in
  List.iter
    (fun tr ->
      prune t tr;
      let fast = burn_over t tr t.config.fast_window_s in
      let slow = burn_over t tr t.config.slow_window_s in
      let breached = fast >= t.config.burn_threshold && slow >= t.config.burn_threshold in
      Option.iter (fun g -> Metrics.set g fast) tr.g_fast;
      Option.iter (fun g -> Metrics.set g slow) tr.g_slow;
      Option.iter (fun g -> Metrics.set g (if breached then 1.0 else 0.0)) tr.g_breached;
      if breached && not tr.active then (
        let a = { a_op = tr.obj.op; at = t.now (); fast_burn = fast; slow_burn = slow } in
        Option.iter (fun c -> Metrics.incr c) tr.c_alerts;
        Option.iter (fun f -> f a) t.on_alert;
        fired := a :: !fired);
      tr.active <- breached)
    t.tracked;
  List.rev !fired

let breached t = List.exists (fun tr -> tr.active) t.tracked

let breached_ops t =
  List.filter_map (fun tr -> if tr.active then Some tr.obj.op else None) t.tracked

let meets t ~op ~latency_s =
  match objective t op with None -> true | Some o -> latency_s <= o.latency_s

let describe_alert a =
  Printf.sprintf "op=%s fast-burn=%.2f slow-burn=%.2f" a.a_op a.fast_burn a.slow_burn

let render t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "windows: fast=%.0fs slow=%.0fs threshold=%.2f\n"
       t.config.fast_window_s t.config.slow_window_s t.config.burn_threshold);
  List.iter
    (fun tr ->
      let fast = burn_over t tr t.config.fast_window_s in
      let slow = burn_over t tr t.config.slow_window_s in
      Buffer.add_string b
        (Printf.sprintf "%-8s target=%.2fs goal=%.2f  burn fast=%.2f slow=%.2f  %s\n"
           tr.obj.op tr.obj.latency_s tr.obj.goal fast slow
           (if tr.active then "ALERT" else "ok")))
    t.tracked;
  Buffer.contents b
