(* Named instruments behind string keys.  Handles are resolved once and
   mutated in place, so a hot path pays one hashtable lookup at wiring time
   and a couple of loads per update afterwards; [set_enabled false] turns
   every update into a single boolean test. *)

type counter = { c_live : bool ref; mutable n : int }

type gauge = { g_live : bool ref; mutable g : float }

(* Log2-bucketed histogram: bucket 0 holds values <= [lo]; bucket i holds
   (lo*2^(i-1), lo*2^i]; the last bucket is unbounded above.  With lo = 1ns
   and 64 buckets the span covers ~1ns .. ~9.2s*2^30, i.e. any duration or
   count this system can produce. *)
let lo = 1e-9

let buckets = 64

type histogram = {
  h_live : bool ref;
  counts : int array;
  mutable h_count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

type instr = C of counter | G of gauge | H of histogram

type t = { tbl : (string, instr) Hashtbl.t; live : bool ref }

let create () = { tbl = Hashtbl.create 64; live = ref true }

let set_enabled t b = t.live := b

let enabled t = !(t.live)

let kind_error name = invalid_arg ("Metrics: instrument kind mismatch for " ^ name)

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (C c) -> c
  | Some _ -> kind_error name
  | None ->
      let c = { c_live = t.live; n = 0 } in
      Hashtbl.replace t.tbl name (C c);
      c

let incr ?(by = 1) c = if !(c.c_live) then c.n <- c.n + by

let count c = c.n

let reset_counter c = c.n <- 0

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (G g) -> g
  | Some _ -> kind_error name
  | None ->
      let g = { g_live = t.live; g = 0.0 } in
      Hashtbl.replace t.tbl name (G g);
      g

let set g v = if !(g.g_live) then g.g <- v

let value g = g.g

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (H h) -> h
  | Some _ -> kind_error name
  | None ->
      let h =
        {
          h_live = t.live;
          counts = Array.make buckets 0;
          h_count = 0;
          sum = 0.0;
          vmin = infinity;
          vmax = neg_infinity;
        }
      in
      Hashtbl.replace t.tbl name (H h);
      h

let bucket_of v =
  if v <= lo then 0
  else begin
    let rec go i ub = if v <= ub || i >= buckets - 1 then i else go (i + 1) (ub *. 2.0) in
    go 1 (lo *. 2.0)
  end

let bucket_upper i = if i >= buckets - 1 then infinity else lo *. (2.0 ** float_of_int i)

let observe h v =
  if !(h.h_live) then begin
    h.counts.(bucket_of v) <- h.counts.(bucket_of v) + 1;
    h.h_count <- h.h_count + 1;
    h.sum <- h.sum +. v;
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v
  end

let percentile h p =
  if h.h_count = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (ceil (p *. float_of_int h.h_count))) in
    let rec go i seen =
      let seen = seen + h.counts.(i) in
      if seen >= rank || i = buckets - 1 then i else go (i + 1) seen
    in
    let b = go 0 0 in
    (* The bucket's upper bound over-reports by up to 2x; clamping into the
       observed range makes degenerate distributions (all values equal)
       exact and keeps p99 <= max always. *)
    max h.vmin (min (bucket_upper b) h.vmax)
  end

type summary = {
  count : int;
  sum : float;
  vmin : float;
  vmax : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summary h =
  if h.h_count = 0 then
    { count = 0; sum = 0.0; vmin = 0.0; vmax = 0.0; p50 = 0.0; p90 = 0.0; p99 = 0.0 }
  else
    {
      count = h.h_count;
      sum = h.sum;
      vmin = h.vmin;
      vmax = h.vmax;
      p50 = percentile h 0.50;
      p90 = percentile h 0.90;
      p99 = percentile h 0.99;
    }

let reset t =
  Hashtbl.iter
    (fun _ instr ->
      match instr with
      | C c -> c.n <- 0
      | G g -> g.g <- 0.0
      | H h ->
          Array.fill h.counts 0 buckets 0;
          h.h_count <- 0;
          h.sum <- 0.0;
          h.vmin <- infinity;
          h.vmax <- neg_infinity)
    t.tbl

type dumped = Counter_value of int | Gauge_value of float | Histogram_value of summary

let dump t =
  Hashtbl.fold
    (fun name instr acc ->
      let v =
        match instr with
        | C c -> Counter_value c.n
        | G g -> Gauge_value g.g
        | H h -> Histogram_value (summary h)
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort compare

let find t name =
  Option.map
    (function
      | C c -> Counter_value c.n
      | G g -> Gauge_value g.g
      | H h -> Histogram_value (summary h))
    (Hashtbl.find_opt t.tbl name)

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let render t =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_value n -> Printf.bprintf b "%-40s %d\n" name n
      | Gauge_value g -> Printf.bprintf b "%-40s %s\n" name (fmt_float g)
      | Histogram_value s ->
          Printf.bprintf b
            "%-40s count=%d sum=%s min=%s max=%s p50=%s p90=%s p99=%s\n" name s.count
            (fmt_float s.sum) (fmt_float s.vmin) (fmt_float s.vmax) (fmt_float s.p50)
            (fmt_float s.p90) (fmt_float s.p99))
    (dump t);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* JSON numbers may not be [inf]/[nan]; empty-histogram summaries never
   produce them (summary returns zeros), and finite observations keep every
   aggregate finite. *)
let json_float f = if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  let entries = dump t in
  List.iteri
    (fun i (name, v) ->
      Printf.bprintf b "  \"%s\": " (json_escape name);
      (match v with
      | Counter_value n -> Printf.bprintf b "{ \"type\": \"counter\", \"value\": %d }" n
      | Gauge_value g ->
          Printf.bprintf b "{ \"type\": \"gauge\", \"value\": %s }" (json_float g)
      | Histogram_value s ->
          Printf.bprintf b
            "{ \"type\": \"histogram\", \"count\": %d, \"sum\": %s, \"min\": %s, \"max\": \
             %s, \"p50\": %s, \"p90\": %s, \"p99\": %s }"
            s.count (json_float s.sum) (json_float s.vmin) (json_float s.vmax)
            (json_float s.p50) (json_float s.p90) (json_float s.p99));
      Buffer.add_string b (if i = List.length entries - 1 then "\n" else ",\n"))
    entries;
  Buffer.add_string b "}\n";
  Buffer.contents b
