(** Nested tracing spans with deterministic timestamps.

    Spans take their primary timestamps from a caller-supplied [now]
    function — in this repo the virtual fault clock — so traces are
    reproducible under tests and fault injection.  A second CPU clock
    ([Sys.time] by default) records real durations for profiling, and a
    global sequence number gives a strict order even when neither clock
    advances.  Finished spans are kept in a bounded ring buffer.

    Span ids are seeded 64-bit values ([Ctx.gen] streams), unique across
    [clear] and across multiple rings — dumps from successive runs can be
    merged without id collisions. *)

type span = {
  id : int;
  parent : int option;  (** enclosing span id, [None] for roots *)
  depth : int;  (** nesting depth at open time, roots are 0 *)
  name : string;
  mutable attrs : (string * string) list;
  seq : int;  (** global open order; strictly increasing *)
  vstart : float;  (** virtual-clock open time *)
  mutable vstop : float;
  cstart : float;  (** CPU-clock open time *)
  mutable cstop : float;
  mutable failed : bool;  (** closed by an escaping exception *)
}

type t

val create :
  ?capacity:int ->
  ?cpu:(unit -> float) ->
  ?on_close:(span -> unit) ->
  ?seed:int ->
  now:(unit -> float) ->
  unit ->
  t
(** [capacity] bounds the finished-span ring (default 512).  [on_close]
    fires for every finished span — used to feed per-span histograms into a
    metrics registry.  [seed] pins the span-id stream; by default each
    tracer draws a distinct seed so ids never collide across rings.
    Tracing starts {e disabled}. *)

val set_enabled : t -> bool -> unit

val enabled : t -> bool

val with_span : t -> ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** Run [f] inside a new span.  When tracing is disabled this is exactly
    [f ()].  An escaping exception marks the span [failed] and is
    re-raised. *)

val set_attr : t -> string -> string -> unit
(** Attach an attribute to the innermost active span; no-op when no span is
    open (e.g. tracing disabled). *)

val set_attr_int : t -> string -> int -> unit

val current : t -> int option
(** Id of the innermost active span, if any — the parent to use when
    linking externally measured work (see [emit]). *)

val emit :
  t ->
  ?parent:int ->
  ?attrs:(string * string) list ->
  ?failed:bool ->
  name:string ->
  vstart:float ->
  vstop:float ->
  cpu_s:float ->
  unit ->
  int option
(** Record an already-finished span measured elsewhere (e.g. on a pool
    domain), optionally parent-linked.  Returns its id, or [None] when
    tracing is disabled. *)

val finished : t -> span list
(** Finished spans still in the ring, oldest first. *)

val dropped : t -> int
(** Spans evicted from the ring since the last [clear]. *)

val total : t -> int
(** Spans ever finished since the last [clear]. *)

val clear : t -> unit

val v_duration : span -> float

val cpu_duration : span -> float

val to_jsonl : t -> string
(** One JSON object per finished span, oldest first. *)

val render : t -> string
(** Indented forest of all spans in the ring. *)

val last_subtree : t -> span list
(** The spans of the most recently finished root span's subtree, oldest
    first; [[]] when the ring is empty. *)

val render_last : t -> string
(** Indented subtree of the most recently finished root span. *)
