(** Metrics registry: named counters, gauges and log-bucketed histograms.

    Instruments are found-or-created by name and returned as handles that
    update in place, so hot paths resolve a handle once and pay only a
    boolean test plus a store per update.  The whole registry can be turned
    off ([set_enabled]) which makes every update a no-op while keeping the
    handles valid. *)

type t

val create : unit -> t

val set_enabled : t -> bool -> unit
(** When disabled, [incr]/[set]/[observe] on every instrument of this
    registry become no-ops.  Reads still work. *)

val enabled : t -> bool

val reset : t -> unit
(** Zero every instrument in place; existing handles remain valid. *)

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Find or create.  @raise Invalid_argument if [name] exists with a
    different instrument kind. *)

val incr : ?by:int -> counter -> unit

val count : counter -> int

val reset_counter : counter -> unit

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge

val set : gauge -> float -> unit

val value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> float -> unit

val buckets : int
(** Number of log2 buckets (64). *)

val bucket_of : float -> int
(** Bucket index for a value: 0 for values <= 1e-9, else the smallest [i]
    with [v <= 1e-9 *. 2.^i], saturating at [buckets - 1]. *)

val bucket_upper : int -> float
(** Upper bound of bucket [i]; [infinity] for the last bucket. *)

type summary = {
  count : int;
  sum : float;
  vmin : float;
  vmax : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summary : histogram -> summary

val percentile : histogram -> float -> float
(** Upper bound of the bucket holding rank [ceil (p *. count)], clamped
    into the observed [vmin, vmax] range; 0 on an empty histogram. *)

(** {1 Inspection} *)

type dumped = Counter_value of int | Gauge_value of float | Histogram_value of summary

val dump : t -> (string * dumped) list
(** All instruments, sorted by name. *)

val find : t -> string -> dumped option

val render : t -> string
(** Human-readable table, one instrument per line. *)

val to_json : t -> string
(** JSON object keyed by instrument name. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)
