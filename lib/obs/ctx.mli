(** Request-scoped trace context: a 63-bit trace id plus an ordered
    per-stage time breakdown that telescopes — the stages sum exactly to
    the interval from the context's birth to its last mark. *)

type gen
(** Deterministic splitmix64 id source.  Ids from one generator never
    repeat in practice (2^63 period) and differ across seeds, so traces
    from successive runs or multiple rings don't collide. *)

val gen : seed:int -> gen
val fresh : gen -> int
(** A new non-negative 63-bit id. *)

type t

val make : id:int -> now:float -> t
(** A fresh context born at [now]; the first [record_until] charges from
    this instant. *)

val id : t -> int
val id_hex : t -> string
(** The trace id as 16 lowercase hex digits. *)

val born_s : t -> float

val record_until : t -> string -> float -> unit
(** [record_until t stage now] charges the time since the previous mark
    to [stage] (accumulating if the stage repeats) and moves the mark to
    [now].  Recorded stages therefore always sum to [last mark - born]. *)

val stages : t -> (string * float) list
(** Stage breakdown in first-occurrence order. *)

val find : t -> string -> float option
val total : t -> float
(** Sum of all recorded stages. *)

val render : t -> string
(** One line: [trace=<hex> stage=<seconds> ...]. *)
