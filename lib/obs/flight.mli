(** Flight recorder: an always-on bounded ring of recent spans, metric
    deltas and subsystem transitions, frozen to a binary
    [flight-NNNN.dump] when something goes wrong (crash-recovery damage,
    spec violation, SLO breach) so the run-up to the failure survives. *)

type event =
  | Span of { name : string; vstart : float; vstop : float; failed : bool }
  | Metric of { name : string; value : float }
  | Transition of { subsystem : string; from_ : string; to_ : string; reason : string }

type entry = { at : float; ev : event }

type t

val create : ?capacity:int -> ?metrics:Metrics.t -> now:(unit -> float) -> unit -> t
(** Bounded ring (default 512 entries); oldest entries are evicted.
    When [metrics] is given, [flight.events] / [flight.dumps] counters
    track activity. *)

val record : t -> event -> unit
val span : t -> name:string -> vstart:float -> vstop:float -> failed:bool -> unit
val metric : t -> name:string -> value:float -> unit

val transition :
  t -> subsystem:string -> from_:string -> to_:string -> reason:string -> unit

val entries : t -> entry list
(** Buffered entries, oldest first. *)

val stored : t -> int
val dropped : t -> int
(** Entries evicted to make room since creation. *)

val total : t -> int
val dumps : t -> int
val capacity : t -> int

val set_auto_dump : t -> string option -> unit
(** Directory that [breach] writes dumps into; [None] (the default)
    disables automatic dumps so fault-heavy tests don't litter files. *)

val auto_dump : t -> string option

val encode : ?reason:string -> t -> string
(** Self-describing binary image of the current ring. *)

type dump = { reason : string; dumped_at : float; events : entry list }

val decode : string -> (dump, string) result

val dump_to : t -> reason:string -> string -> unit
(** Write the ring to an explicit path (raises [Sys_error] on I/O
    failure) and count the dump. *)

val breach : t -> reason:string -> string option
(** Dump to [flight-NNNN.dump] under the auto-dump directory, if one is
    set; returns the path written. *)

val load : string -> (dump, string) result
(** Read and decode a dump file. *)

val render : entry list -> string
val render_dump : dump -> string
