(** SLO monitor: per-op latency/error objectives with multi-window
    burn-rate alerting on the virtual clock (see docs/slo.md). *)

type objective = {
  op : string;  (** request class, e.g. "read" or "write" *)
  latency_s : float;  (** per-request latency target *)
  goal : float;  (** fraction that must succeed within the target *)
}

type config = {
  fast_window_s : float;
  slow_window_s : float;
  burn_threshold : float;  (** alert when both windows burn at >= this *)
}

val default_config : config
(** fast 300 s, slow 3600 s, threshold 1.0. *)

val default_objectives : objective list
(** reads: 90% under 2 s; writes: 90% under 10 s. *)

type alert = { a_op : string; at : float; fast_burn : float; slow_burn : float }

type t

val create :
  ?config:config ->
  ?metrics:Metrics.t ->
  ?on_alert:(alert -> unit) ->
  now:(unit -> float) ->
  objective list ->
  t
(** With [metrics], maintains [slo.<op>.burn_fast]/[.burn_slow]/
    [.breached] gauges and [slo.<op>.alerts]/[.bad] counters. *)

val objectives : t -> objective list
val objective : t -> string -> objective option

val observe : t -> op:string -> latency_s:float -> ok:bool -> unit
(** Classify one resolved request: bad when it failed or exceeded the
    objective's latency target.  Unknown ops are ignored. *)

val evaluate : t -> alert list
(** Recompute both windows for every objective, update the gauges, and
    return the alerts that fired on this evaluation (rising edge only).
    An alert fires when the burn rate is [>= burn_threshold] on both
    windows, and clears when either window drops below it. *)

val breached : t -> bool
(** True while any objective's alert is active (as of last [evaluate]). *)

val breached_ops : t -> string list

val burn : t -> op:string -> (float * float) option
(** Current (fast, slow) burn rates for an op. *)

val meets : t -> op:string -> latency_s:float -> bool
(** Whether a single latency meets the op's target (true if no objective). *)

val describe_alert : alert -> string
val render : t -> string
