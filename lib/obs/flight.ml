(* Flight recorder: an always-on bounded ring of recent observability
   events — finished spans, metric deltas, and subsystem state
   transitions (admission sheds, breaker trips, degraded-mode flips, SLO
   alerts, recovery damage).  Recording is cheap and allocation-light so
   it can stay on in production paths; the payoff comes at a breach,
   when [breach] freezes the recent history into a self-describing
   binary [flight-NNNN.dump] that the reader half of this module (and
   the shell's [flight] command) can decode later, on another machine.

   Binary format (all integers big-endian):
     "HACF" magic, one version byte,
     f64 dump timestamp, u16+bytes dump reason,
     u32 entry count, then per entry:
       u8 tag, f64 timestamp, tag-specific payload
         1 = Span       name, f64 vstart, f64 vstop, u8 failed
         2 = Metric     name, f64 value
         3 = Transition subsystem, from, to, reason
     where every string is u16 length + bytes (truncated to 65535). *)

type event =
  | Span of { name : string; vstart : float; vstop : float; failed : bool }
  | Metric of { name : string; value : float }
  | Transition of { subsystem : string; from_ : string; to_ : string; reason : string }

type entry = { at : float; ev : event }

type t = {
  now : unit -> float;
  capacity : int;
  ring : entry option array;
  mutable head : int; (* next write position *)
  mutable stored : int;
  mutable dropped : int;
  mutable total : int;
  mutable dumps : int;
  mutable auto_dir : string option;
  c_events : Metrics.counter option;
  c_dumps : Metrics.counter option;
}

let create ?(capacity = 512) ?metrics ~now () =
  let capacity = max 1 capacity in
  {
    now;
    capacity;
    ring = Array.make capacity None;
    head = 0;
    stored = 0;
    dropped = 0;
    total = 0;
    dumps = 0;
    auto_dir = None;
    c_events = Option.map (fun m -> Metrics.counter m "flight.events") metrics;
    c_dumps = Option.map (fun m -> Metrics.counter m "flight.dumps") metrics;
  }

let record t ev =
  if t.ring.(t.head) <> None then t.dropped <- t.dropped + 1;
  t.ring.(t.head) <- Some { at = t.now (); ev };
  t.head <- (t.head + 1) mod t.capacity;
  if t.stored < t.capacity then t.stored <- t.stored + 1;
  t.total <- t.total + 1;
  Option.iter (fun c -> Metrics.incr c) t.c_events

let span t ~name ~vstart ~vstop ~failed = record t (Span { name; vstart; vstop; failed })
let metric t ~name ~value = record t (Metric { name; value })

let transition t ~subsystem ~from_ ~to_ ~reason =
  record t (Transition { subsystem; from_; to_; reason })

let entries t =
  (* Oldest first: the ring wraps at [head]. *)
  let out = ref [] in
  for i = t.capacity - 1 downto 0 do
    match t.ring.((t.head + i) mod t.capacity) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

let stored t = t.stored
let dropped t = t.dropped
let total t = t.total
let dumps t = t.dumps
let capacity t = t.capacity
let set_auto_dump t dir = t.auto_dir <- dir
let auto_dump t = t.auto_dir

(* --- encoding --- *)

let magic = "HACF"
let version = '\001'

let add_str b s =
  let s = if String.length s > 0xffff then String.sub s 0 0xffff else s in
  Buffer.add_uint16_be b (String.length s);
  Buffer.add_string b s

let add_f64 b f = Buffer.add_int64_be b (Int64.bits_of_float f)

let encode ?(reason = "") t =
  let es = entries t in
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  Buffer.add_char b version;
  add_f64 b (t.now ());
  add_str b reason;
  Buffer.add_int32_be b (Int32.of_int (List.length es));
  List.iter
    (fun { at; ev } ->
      (match ev with
      | Span s ->
          Buffer.add_uint8 b 1;
          add_f64 b at;
          add_str b s.name;
          add_f64 b s.vstart;
          add_f64 b s.vstop;
          Buffer.add_uint8 b (if s.failed then 1 else 0)
      | Metric m ->
          Buffer.add_uint8 b 2;
          add_f64 b at;
          add_str b m.name;
          add_f64 b m.value
      | Transition tr ->
          Buffer.add_uint8 b 3;
          add_f64 b at;
          add_str b tr.subsystem;
          add_str b tr.from_;
          add_str b tr.to_;
          add_str b tr.reason))
    es;
  Buffer.contents b

type dump = { reason : string; dumped_at : float; events : entry list }

exception Bad of string

let decode s =
  let pos = ref 0 in
  let need n what =
    if !pos + n > String.length s then raise (Bad ("truncated " ^ what))
  in
  let u8 () =
    need 1 "byte";
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let u16 () =
    need 2 "u16";
    let v = String.get_uint16_be s !pos in
    pos := !pos + 2;
    v
  in
  let u32 () =
    need 4 "u32";
    let v = Int32.to_int (String.get_int32_be s !pos) in
    pos := !pos + 4;
    v
  in
  let f64 () =
    need 8 "f64";
    let v = Int64.float_of_bits (String.get_int64_be s !pos) in
    pos := !pos + 8;
    v
  in
  let str () =
    let n = u16 () in
    need n "string";
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  try
    need 5 "header";
    if String.sub s 0 4 <> magic then raise (Bad "bad magic");
    if s.[4] <> version then raise (Bad "unsupported version");
    pos := 5;
    let dumped_at = f64 () in
    let reason = str () in
    let count = u32 () in
    if count < 0 || count > 1_000_000 then raise (Bad "implausible entry count");
    let events = ref [] in
    for _ = 1 to count do
      let tag = u8 () in
      let at = f64 () in
      let ev =
        match tag with
        | 1 ->
            let name = str () in
            let vstart = f64 () in
            let vstop = f64 () in
            let failed = u8 () <> 0 in
            Span { name; vstart; vstop; failed }
        | 2 ->
            let name = str () in
            let value = f64 () in
            Metric { name; value }
        | 3 ->
            let subsystem = str () in
            let from_ = str () in
            let to_ = str () in
            let reason = str () in
            Transition { subsystem; from_; to_; reason }
        | n -> raise (Bad (Printf.sprintf "unknown event tag %d" n))
      in
      events := { at; ev } :: !events
    done;
    Ok { reason; dumped_at; events = List.rev !events }
  with
  | Bad m -> Error m
  | Invalid_argument _ -> Error "truncated dump"

let dump_to t ~reason path =
  let data = encode ~reason t in
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc data);
  t.dumps <- t.dumps + 1;
  Option.iter (fun c -> Metrics.incr c) t.c_dumps

let breach t ~reason =
  match t.auto_dir with
  | None -> None
  | Some dir ->
      let path =
        Filename.concat dir (Printf.sprintf "flight-%04d.dump" (t.dumps + 1))
      in
      (try
         dump_to t ~reason path;
         Some path
       with Sys_error _ -> None)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match read_file path with
  | exception Sys_error m -> Error m
  | data -> decode data

let render_event = function
  | Span s ->
      Printf.sprintf "span %s v=[%.6f..%.6f]%s" s.name s.vstart s.vstop
        (if s.failed then " FAILED" else "")
  | Metric m -> Printf.sprintf "metric %s = %g" m.name m.value
  | Transition tr ->
      Printf.sprintf "transition %s: %s -> %s (%s)" tr.subsystem tr.from_ tr.to_
        tr.reason

let render es =
  let b = Buffer.create 256 in
  List.iter
    (fun { at; ev } -> Buffer.add_string b (Printf.sprintf "%12.6f  %s\n" at (render_event ev)))
    es;
  Buffer.contents b

let render_dump d =
  Printf.sprintf "flight dump: reason=%S at=%.6f events=%d\n%s" d.reason d.dumped_at
    (List.length d.events) (render d.events)
