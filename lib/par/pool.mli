(** A small fixed-size pool of OCaml 5 worker domains.

    Built for fork/join regions: {!run} publishes a job to every worker and
    joins them at a barrier, {!map} distributes an array over the pool with
    work stealing.  A pool of size 1 spawns nothing and runs everything
    inline on the caller, so the sequential path stays exactly the
    sequential code. *)

type t
(** A pool.  Workers park between parallel regions; {!shutdown} (or
    {!with_pool}) reaps them. *)

val create : ?domains:int -> unit -> t
(** A pool of [domains] total slots (default, and minimum, 1): the caller
    participates as slot 0, so [domains - 1] worker domains are spawned. *)

val size : t -> int
(** Total slots, including the caller's. *)

val default_domains : unit -> int
(** A sensible default width for interactive use:
    [min 4 (Domain.recommended_domain_count ())]. *)

exception Task of { index : int; exn : exn; trace : Printexc.raw_backtrace }
(** A task failure re-raised at the fork/join barrier.  [index] identifies
    the failing unit of work — the element index for {!map}, the slot for
    {!run} — and [trace] is the backtrace captured where the task raised,
    restored on re-raise so failures stay attributable. *)

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f slot] for every slot [0 .. size-1] concurrently
    (the caller runs slot 0) and returns once all have finished.  If any
    slot raises, the first failure is re-raised after the barrier as
    {!Task} with the slot index and original backtrace attached.  Not
    reentrant: a job must not call {!run} or {!map} on its own pool. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] applies [f] to every element, balancing elements across
    slots via a shared counter; results keep input order.  [f] must be safe
    to call from any domain.  The first failing element's exception is
    re-raised as {!Task} with that element's index and its backtrace; the
    width-1 pool raises identically, so error surfaces do not depend on the
    domain budget. *)

val map_timed : t -> ('a -> 'b) -> 'a array -> 'b array * float array
(** {!map} that additionally returns each element's CPU duration
    ([Sys.time]) as measured on the domain that executed it — the
    context handoff for request tracing.  The pool never touches the
    tracer, metrics or the virtual clock; callers turn these durations
    into parent-linked spans after the barrier. *)

val shutdown : t -> unit
(** Join all workers.  Idempotent; the pool must not be used afterwards. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], exception-safe. *)
