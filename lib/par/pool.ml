(* A fixed-size pool of worker domains for level-parallel settle passes.

   Deliberately tiny and dependency-free: one mutex, two condition
   variables, and an epoch counter.  A parallel region ([run]) publishes a
   job, wakes every worker, participates as slot 0 itself, and waits for the
   stragglers at a barrier — exactly the fork/join shape of evaluating one
   dependency level.  Workers park between regions, so spawning cost is paid
   once per pool, not once per level. *)

type t = {
  size : int;
  mutable workers : unit Domain.t array;
  mutable job : (int -> unit) option;
  mutable epoch : int;
  mutable pending : int;
  mutable shutdown : bool;
  lock : Mutex.t;
  start : Condition.t;  (* a new epoch (or shutdown) is available *)
  finished : Condition.t;  (* pending reached zero *)
}

let size t = t.size

let default_domains () = min 4 (max 1 (Domain.recommended_domain_count ()))

exception Task of { index : int; exn : exn; trace : Printexc.raw_backtrace }

let () =
  Printexc.register_printer (function
    | Task { index; exn; _ } ->
        Some (Printf.sprintf "Pool.Task(task %d: %s)" index (Printexc.to_string exn))
    | _ -> None)

(* Re-raise a captured task failure with its origin attached: the task (or
   slot) index says *which* unit of work failed — without it a chaos-harness
   failure in a 200-task map is anonymous — and the captured backtrace is
   restored so the trace points at the task body, not at the barrier. *)
let reraise_task (index, exn, trace) =
  Printexc.raise_with_backtrace (Task { index; exn; trace }) trace

let rec worker t ~slot seen_epoch =
  (* Invariant: [t.lock] is held on entry. *)
  if t.shutdown then Mutex.unlock t.lock
  else if t.epoch > seen_epoch then begin
    let epoch = t.epoch in
    let job = match t.job with Some j -> j | None -> fun _ -> () in
    Mutex.unlock t.lock;
    (* [run] wraps the job so it cannot raise; belt and braces here keeps a
       buggy job from deadlocking the barrier. *)
    (try job slot with _ -> ());
    Mutex.lock t.lock;
    t.pending <- t.pending - 1;
    if t.pending = 0 then Condition.broadcast t.finished;
    worker t ~slot epoch
  end
  else begin
    Condition.wait t.start t.lock;
    worker t ~slot seen_epoch
  end

let create ?(domains = 1) () =
  let size = max 1 domains in
  let t =
    {
      size;
      workers = [||];
      job = None;
      epoch = 0;
      pending = 0;
      shutdown = false;
      lock = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
    }
  in
  if size > 1 then
    t.workers <-
      Array.init (size - 1) (fun i ->
          Domain.spawn (fun () ->
              Mutex.lock t.lock;
              worker t ~slot:(i + 1) 0));
  t

let shutdown t =
  if t.size > 1 then begin
    Mutex.lock t.lock;
    let was = t.shutdown in
    t.shutdown <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.lock;
    if not was then Array.iter Domain.join t.workers
  end

(* Run [f slot] on every slot [0 .. size-1] concurrently; the calling domain
   takes slot 0.  Returns when all slots have finished.  The first failure is
   re-raised after the barrier as {!Task} carrying the slot index and the
   original backtrace (the other slots complete regardless). *)
let run t f =
  if t.size = 1 then (try f 0 with e -> reraise_task (0, e, Printexc.get_raw_backtrace ()))
  else begin
    let err = Atomic.make None in
    let guarded slot =
      try f slot
      with e ->
        let trace = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set err None (Some (slot, e, trace)))
    in
    Mutex.lock t.lock;
    t.job <- Some guarded;
    t.pending <- t.size - 1;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.start;
    Mutex.unlock t.lock;
    guarded 0;
    Mutex.lock t.lock;
    while t.pending > 0 do
      Condition.wait t.finished t.lock
    done;
    t.job <- None;
    Mutex.unlock t.lock;
    match Atomic.get err with Some e -> reraise_task e | None -> ()
  end

(* [map t f xs]: apply [f] to every element, work-stolen off a shared
   counter so uneven task costs balance across domains.  Results keep their
   input order.  With a 1-sized pool this is just [Array.map].  A failing
   element stops its slot; the first failure (by race, not by index) is
   re-raised as {!Task} with the *element* index attached, so a chaos-harness
   crash names the request that caused it rather than an anonymous slot. *)
let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.size = 1 then begin
    let i = ref 0 in
    try Array.map (fun x -> let y = f x in incr i; y) xs
    with e -> reraise_task (!i, e, Printexc.get_raw_backtrace ())
  end
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let err = Atomic.make None in
    run t (fun _slot ->
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else
            match f xs.(i) with
            | v -> results.(i) <- Some v
            | exception e ->
                let trace = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set err None (Some (i, e, trace)));
                continue := false
        done);
    (match Atomic.get err with Some e -> reraise_task e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

(* [map_timed] is [map] that also reports how long each element took on
   its worker, measured with [Sys.time] on the executing domain.  This is
   the pool's whole contribution to request tracing: the caller (who owns
   the tracer and the virtual clock — the pool touches neither) stitches
   the durations into parent-linked spans after the barrier. *)
let map_timed t f xs =
  let n = Array.length xs in
  if n = 0 then ([||], [||])
  else if t.size = 1 then begin
    let times = Array.make n 0.0 in
    let i = ref 0 in
    let ys =
      try
        Array.map
          (fun x ->
            let c0 = Sys.time () in
            let y = f x in
            times.(!i) <- Sys.time () -. c0;
            incr i;
            y)
          xs
      with e -> reraise_task (!i, e, Printexc.get_raw_backtrace ())
    in
    (ys, times)
  end
  else begin
    let results = Array.make n None in
    let times = Array.make n 0.0 in
    let next = Atomic.make 0 in
    let err = Atomic.make None in
    run t (fun _slot ->
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else begin
            let c0 = Sys.time () in
            match f xs.(i) with
            | v ->
                times.(i) <- Sys.time () -. c0;
                results.(i) <- Some v
            | exception e ->
                let trace = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set err None (Some (i, e, trace)));
                continue := false
          end
        done);
    (match Atomic.get err with Some e -> reraise_task e | None -> ());
    (Array.map (function Some v -> v | None -> assert false) results, times)
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
