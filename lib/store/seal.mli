(** Checksummed framing for persisted metadata.

    Two granularities, both FNV-1a/32 checksummed: {!seal}/{!parse} frame a
    single journal line ("body #hhhhhhhh"), {!seal_blob}/{!open_blob} frame
    a whole file payload behind a one-line header.  {!Journal} uses both for
    the directory log and checkpoint images; {!Sync} seals the per-directory
    structure files so recovery can tell a torn or bit-rotted structure from
    a real one (all-or-nothing, never a silently truncated query). *)

val checksum : string -> int
(** FNV-1a of the string, truncated to 32 bits. *)

val seal : string -> string
(** [seal body] is the journal line ["body #hhhhhhhh"]. *)

type line = Valid of string | Corrupt of string | Blank

val parse : string -> line
(** Classify one journal line: [Valid body] when the checksum matches,
    [Blank] for whitespace, [Corrupt] otherwise (torn, rotted, tampered). *)

val blob_magic : string
(** ["HACCKPT1"] — first token of a sealed payload header. *)

val seal_blob : string -> string
(** Wrap a payload as ["HACCKPT1 <len> <crc>\n<payload>"]. *)

val open_blob : string -> (string, string) result
(** Verify and strip the header; [Error reason] when the header is missing
    or malformed, the payload is short, or the checksum disagrees. *)

val unseal_file : string -> string option
(** Payload of a sealed file; anything else — including a torn prefix of a
    sealed file, whose first bytes could otherwise masquerade as a tiny
    raw payload — is [None]. *)
