(* The storage-tier façade an instance holds: content block store behind
   the byte-bounded LRU cache, the live postings-segment set with its
   manifest, and the size-tiered segment compactor.

   The tier is an accelerator, never an authority: every read has a sound
   fallback (blocks → the file-system copy; a damaged segment slice → the
   live universe), so torn or rotted store files degrade to slower reads
   and fatter candidate sets, not to wrong answers.  The manifest
   ([segs.tbl]) is the tier's commit record: a segment is live iff the
   manifest names it, and the manifest is only published (scratch, fsync,
   rename, fsync) after the segments it names are durable.

   Lineage guards the document-id space: segment postings are id lists,
   and ids are only meaningful against the document table they were
   written with.  A full (oracle) mount re-assigns ids, so it starts a
   new lineage; segments of another lineage are never consulted and are
   swept by the compactor. *)

module Fs = Hac_vfs.Fs
module Metrics = Hac_obs.Metrics
module Fileset = Hac_bitset.Fileset

type instruments = {
  cache_hits : Metrics.counter;
  cache_misses : Metrics.counter;
  cache_evictions : Metrics.counter;
  cache_bytes : Metrics.gauge;
  cache_peak : Metrics.gauge;
  block_puts : Metrics.counter;
  block_fallbacks : Metrics.counter;  (** Block reads that fell back to the fs copy. *)
  seg_loads : Metrics.counter;
  seg_damaged : Metrics.counter;
  segments : Metrics.gauge;
  compactor_merges : Metrics.counter;
  mount_reconstruct_ms : Metrics.gauge;
  mount_fallbacks : Metrics.counter;
}

let instruments_of metrics =
  {
    cache_hits = Metrics.counter metrics "store.cache.hits";
    cache_misses = Metrics.counter metrics "store.cache.misses";
    cache_evictions = Metrics.counter metrics "store.cache.evictions";
    cache_bytes = Metrics.gauge metrics "store.cache.bytes";
    cache_peak = Metrics.gauge metrics "store.cache.peak_bytes";
    block_puts = Metrics.counter metrics "store.blocks.puts";
    block_fallbacks = Metrics.counter metrics "store.blocks.fallbacks";
    seg_loads = Metrics.counter metrics "store.seg.loads";
    seg_damaged = Metrics.counter metrics "store.seg.damaged";
    segments = Metrics.gauge metrics "store.segments";
    compactor_merges = Metrics.counter metrics "store.compactor.merges";
    mount_reconstruct_ms = Metrics.gauge metrics "store.mount.reconstruct_ms";
    mount_fallbacks = Metrics.counter metrics "store.mount.fallbacks";
  }

type t = {
  fs : Fs.t;
  cache : Cache.t;
  doc_blocks : (int, string) Hashtbl.t;  (* doc id -> block key *)
  mutable segs : Segs.t list;  (* live postings segments, oldest first *)
  mutable lineage : int;
  mutable serial : int;
  mutable evictions_seen : int;  (* cache evictions already counted *)
  i : instruments;
}

let default_budget = 4 * 1024 * 1024

let publish t =
  Metrics.set t.i.cache_bytes (float_of_int (Cache.bytes t.cache));
  Metrics.set t.i.cache_peak (float_of_int (Cache.peak_bytes t.cache));
  Metrics.set t.i.segments (float_of_int (List.length t.segs));
  let ev = Cache.evictions t.cache in
  if ev > t.evictions_seen then begin
    Metrics.incr ~by:(ev - t.evictions_seen) t.i.cache_evictions;
    t.evictions_seen <- ev
  end

let cache t = t.cache
let lineage t = t.lineage
let segment_count t = List.length t.segs
let has_segments t = t.segs <> []
let instr t = t.i

(* -- the manifest ---------------------------------------------------------- *)

let render_manifest t =
  let b = Buffer.create 256 in
  Printf.bprintf b "lineage %d\nserial %d\n" t.lineage t.serial;
  List.iter (fun s -> Printf.bprintf b "seg %s\n" (Hac_vfs.Vpath.basename (Segs.path s))) t.segs;
  Seal.seal_blob (Buffer.contents b)

let write_manifest t =
  let tmp = Layout.tmp_path "segs.tbl" in
  Fs.mkdir_p t.fs Layout.root;
  Fs.write_file t.fs tmp (render_manifest t);
  Fs.fsync t.fs tmp;
  Fs.rename t.fs ~src:tmp ~dst:Layout.manifest_path;
  Fs.fsync t.fs Layout.manifest_path

let read_manifest fs : (int * int * string list) option =
  match Fs.read_file fs Layout.manifest_path with
  | exception Hac_vfs.Errno.Error _ -> None
  | data -> (
      match Seal.unseal_file data with
      | None -> None
      | Some text ->
          let lineage = ref None and serial = ref None and names = ref [] in
          let ok = ref true in
          List.iter
            (fun line ->
              if line <> "" then
                match String.split_on_char ' ' line with
                | [ "lineage"; n ] -> lineage := int_of_string_opt n
                | [ "serial"; n ] -> serial := int_of_string_opt n
                | [ "seg"; name ] -> names := name :: !names
                | _ -> ok := false)
            (String.split_on_char '\n' text);
          match (!ok, !lineage, !serial) with
          | true, Some l, Some s -> Some (l, s, List.rev !names)
          | _ -> None)

(* -- construction ---------------------------------------------------------- *)

(* A fresh tier for a full (oracle-indexed) instance: ids were just
   re-assigned, so open a lineage strictly newer than anything on disk. *)
let create ?(budget = default_budget) ~metrics fs =
  let prev = match read_manifest fs with Some (l, _, _) -> l | None -> 0 in
  {
    fs;
    cache = Cache.create ~budget;
    doc_blocks = Hashtbl.create 256;
    segs = [];
    lineage = prev + 1;
    serial = 0;
    evictions_seen = 0;
    i = instruments_of metrics;
  }

(* Re-attach the tier persisted by a previous life (the fast-mount path).
   Fails — sending the caller to the full oracle — when the manifest or
   any live segment's term directory is unreadable, or when the manifest's
   lineage does not match the document table's. *)
let attach ?(budget = default_budget) ~metrics ~lineage fs : (t, string) result =
  match read_manifest fs with
  | None -> Error "store manifest missing or damaged"
  | Some (l, serial, names) ->
      if l <> lineage then Error "store manifest lineage mismatch"
      else
        let rec load acc = function
          | [] -> Ok (List.rev acc)
          | name :: rest -> (
              match Segs.load fs (Layout.segment_path name) with
              | Ok s -> load (s :: acc) rest
              | Error e -> Error e)
        in
        (match load [] names with
        | Error e -> Error e
        | Ok segs ->
            let t =
              {
                fs;
                cache = Cache.create ~budget;
                doc_blocks = Hashtbl.create 256;
                segs;
                lineage;
                serial;
                evictions_seen = 0;
                i = instruments_of metrics;
              }
            in
            publish t;
            Ok t)

(* -- document blocks ------------------------------------------------------- *)

let put_doc t id content =
  let key = Blocks.put t.fs content in
  Hashtbl.replace t.doc_blocks id key;
  Metrics.incr t.i.block_puts;
  (* Freshly indexed content is the likeliest next verification read. *)
  Cache.insert t.cache key content;
  publish t

let forget_doc t id = Hashtbl.remove t.doc_blocks id
let doc_key t id = Hashtbl.find_opt t.doc_blocks id
let adopt_doc_key t id key = Hashtbl.replace t.doc_blocks id key

let read_doc t id =
  match Hashtbl.find_opt t.doc_blocks id with
  | None -> None
  | Some key -> (
      match Cache.find t.cache key with
      | Some content ->
          Metrics.incr t.i.cache_hits;
          publish t;
          Some content
      | None ->
          Metrics.incr t.i.cache_misses;
          (match Blocks.get t.fs key with
          | Some content ->
              Cache.insert t.cache key content;
              publish t;
              Some content
          | None ->
              (* Torn, rotted or swept block: the fs copy is authoritative. *)
              Metrics.incr t.i.block_fallbacks;
              publish t;
              None))

(* -- cold postings --------------------------------------------------------- *)

(* Union of the term's slices across every live segment; a damaged slice
   contributes the whole live [universe] — a sound superset the caller's
   verification pass trims back down. *)
let cold_lookup t key ~universe =
  List.fold_left
    (fun acc seg ->
      match Segs.term seg key ~on_load:(fun () -> Metrics.incr t.i.seg_loads) with
      | Segs.Absent -> acc
      | Segs.Hit s -> Fileset.union acc s
      | Segs.Damaged ->
          Metrics.incr t.i.seg_damaged;
          Fileset.union acc (universe ()))
    Fileset.empty t.segs

let cold_cost t key =
  List.fold_left (fun acc seg -> acc + Segs.cost seg key) 0 t.segs

(* Word terms present in any live segment's directory (for approximate-
   match vocabulary expansion); keys are "w:<word>". *)
let cold_words t =
  let words = Hashtbl.create 256 in
  List.iter
    (fun seg ->
      Segs.iter_terms seg (fun key _card ->
          if String.length key > 2 && String.sub key 0 2 = "w:" then
            Hashtbl.replace words (String.sub key 2 (String.length key - 2)) ()))
    t.segs;
  Hashtbl.fold (fun w () acc -> w :: acc) words []

(* -- segment dump and compaction ------------------------------------------- *)

(* Persist one postings dump as a new immutable segment and commit it to
   the manifest.  [replace] supersedes every previously live segment (a
   full dump from a fully-resident index); otherwise the segment joins
   the tier (a delta dump from a cold-backed life).  Old files are left
   for the compactor's sweep — the manifest alone decides liveness. *)
let dump_segment t ~replace entries =
  let name = Layout.segment_name ~lineage:t.lineage ~serial:t.serial in
  t.serial <- t.serial + 1;
  Segs.write t.fs (Layout.segment_path name) entries;
  match Segs.load t.fs (Layout.segment_path name) with
  | Error e -> invalid_arg ("segment readback failed: " ^ e)
  | Ok seg ->
      t.segs <- (if replace then [ seg ] else t.segs @ [ seg ]);
      write_manifest t;
      publish t;
      name

(* Size-tiered merge: when more than one segment is live, union every
   term across all of them into a single replacement segment.  Commit
   order — merged segment durable, then the manifest rename — makes every
   crash point recoverable: the old manifest still names the old segments
   until the rename lands.  A damaged slice aborts the merge (the tier
   keeps serving; the damaged term keeps falling back to the universe). *)
let merge t =
  if List.length t.segs < 2 then false
  else begin
    let acc = Hashtbl.create 1024 in
    let damaged = ref false in
    List.iter
      (fun seg ->
        Segs.iter_terms seg (fun key _card ->
            if not (Hashtbl.mem acc key) then
              match
                List.fold_left
                  (fun u s ->
                    match u with
                    | None -> None
                    | Some u -> (
                        match
                          Segs.term s key ~on_load:(fun () -> Metrics.incr t.i.seg_loads)
                        with
                        | Segs.Absent -> Some u
                        | Segs.Hit ids -> Some (Fileset.union u ids)
                        | Segs.Damaged -> None))
                  (Some Fileset.empty) t.segs
              with
              | Some u -> Hashtbl.replace acc key u
              | None -> damaged := true))
      t.segs;
    if !damaged then begin
      Metrics.incr t.i.seg_damaged;
      false
    end
    else begin
      let entries =
        Hashtbl.fold (fun key ids l -> (key, Fileset.elements ids) :: l) acc []
        |> List.sort compare
      in
      let old = List.map Segs.path t.segs in
      ignore (dump_segment t ~replace:true entries);
      List.iter
        (fun p -> try Fs.unlink t.fs p with Hac_vfs.Errno.Error _ -> ())
        old;
      Metrics.incr t.i.compactor_merges;
      publish t;
      true
    end
  end

(* -- the document table ----------------------------------------------------

   [docs.tbl] is the fast mount's directory-reconstruction image for
   documents: every live doc's id, block key and path, plus the id
   allocation frontier, stamped with the checkpoint epoch it was written
   beside.  A mount only believes it when that stamp matches the chain's
   newest readable checkpoint — a crash between the table's publish and
   the checkpoint's commit rename leaves a newer table than checkpoint
   (or vice versa), and the mismatch sends the mount to the full oracle. *)

type docs = {
  epoch : int;
  next : int;
  lineage : int;
  rows : (int * string option * string) list;  (* id, block key, path *)
}

let docs_tbl_path = Layout.root ^ "/docs.tbl"

let write_docs (t : t) ~epoch ~next rows =
  let b = Buffer.create 4096 in
  Printf.bprintf b "epoch %d\nnext %d\nlineage %d\n" epoch next t.lineage;
  List.iter
    (fun (id, key, path) ->
      Printf.bprintf b "%d %s %s\n" id
        (match key with Some k -> k | None -> "-")
        path)
    rows;
  let tmp = Layout.tmp_path "docs.tbl" in
  Fs.mkdir_p t.fs Layout.root;
  Fs.write_file t.fs tmp (Seal.seal_blob (Buffer.contents b));
  Fs.fsync t.fs tmp;
  Fs.rename t.fs ~src:tmp ~dst:docs_tbl_path;
  Fs.fsync t.fs docs_tbl_path

let read_docs fs : docs option =
  match Fs.read_file fs docs_tbl_path with
  | exception Hac_vfs.Errno.Error _ -> None
  | data -> (
      match Seal.unseal_file data with
      | None -> None
      | Some text -> (
          let epoch = ref None and next = ref None and lineage = ref None in
          let rows = ref [] in
          let ok = ref true in
          List.iter
            (fun line ->
              if line <> "" then
                match String.split_on_char ' ' line with
                | [ "epoch"; n ] -> epoch := int_of_string_opt n
                | [ "next"; n ] -> next := int_of_string_opt n
                | [ "lineage"; n ] -> lineage := int_of_string_opt n
                | id :: key :: (_ :: _ as path) -> (
                    (* Path last, rest-concat: paths may contain spaces. *)
                    match int_of_string_opt id with
                    | Some id when id >= 0 ->
                        let key = if key = "-" then None else Some key in
                        rows := (id, key, String.concat " " path) :: !rows
                    | _ -> ok := false)
                | _ -> ok := false)
            (String.split_on_char '\n' text);
          match (!ok, !epoch, !next, !lineage) with
          | true, Some epoch, Some next, Some lineage ->
              Some { epoch; next; lineage; rows = List.rev !rows }
          | _ -> None))

(* -- sweep ----------------------------------------------------------------- *)

(* Garbage left by crashes and supersession: scratch files, segment files
   the manifest no longer names (or of a dead lineage), and content
   blocks no live document references.  Returns files removed. *)
let sweep t =
  let removed = ref 0 in
  let rm path =
    match Fs.unlink t.fs path with
    | () -> incr removed
    | exception Hac_vfs.Errno.Error _ -> ()
  in
  if Fs.is_dir t.fs Layout.root then
    List.iter
      (fun name ->
        if String.length name >= 4 && String.sub name 0 4 = "tmp-" then
          rm (Layout.root ^ "/" ^ name))
      (Fs.readdir t.fs Layout.root);
  if Fs.is_dir t.fs Layout.segs_root then begin
    let live = List.map (fun s -> Hac_vfs.Vpath.basename (Segs.path s)) t.segs in
    List.iter
      (fun name -> if not (List.mem name live) then rm (Layout.segment_path name))
      (Fs.readdir t.fs Layout.segs_root)
  end;
  let live_keys = Hashtbl.create 256 in
  Hashtbl.iter (fun _id key -> Hashtbl.replace live_keys key ()) t.doc_blocks;
  removed := !removed + Blocks.sweep t.fs ~live:(fun key -> Hashtbl.mem live_keys key);
  publish t;
  !removed
