(* Checksummed framing for everything HAC persists: journal lines are
   sealed individually, whole-file payloads (checkpoints, structure files)
   are wrapped in a one-line header.  Shared by {!Journal} and {!Sync} —
   which is why it lives below both. *)

let checksum body =
  (* FNV-1a over the body, truncated to 32 bits — cheap, dependency-free and
     more than enough to catch torn writes and bit rot in a line-oriented
     log.  Not a defence against an adversary. *)
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF)
    body;
  !h

let hex_len = 8

(* "body #hhhhhhhh": the suffix is fixed-width so bodies may contain '#'. *)
let suffix_len = hex_len + 2

let seal body = Printf.sprintf "%s #%08x" body (checksum body)

type line = Valid of string | Corrupt of string | Blank

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let parse line =
  let n = String.length line in
  if String.trim line = "" then Blank
  else if n > suffix_len && line.[n - suffix_len] = ' ' && line.[n - suffix_len + 1] = '#'
  then begin
    let body = String.sub line 0 (n - suffix_len) in
    let hex = String.sub line (n - hex_len) hex_len in
    if
      String.for_all is_hex hex
      && int_of_string_opt ("0x" ^ hex) = Some (checksum body)
    then Valid body
    else Corrupt line
  end
  else Corrupt line

(* -- whole-payload blobs ---------------------------------------------------

   "HACCKPT1 <len> <crc>\n<payload>" — a torn or rotted file is detected as
   a unit (all-or-nothing) before any of it is believed. *)

let blob_magic = "HACCKPT1"

let seal_blob payload =
  Printf.sprintf "%s %d %08x\n%s" blob_magic (String.length payload)
    (checksum payload) payload

let open_blob data =
  match String.index_opt data '\n' with
  | None -> Error "unterminated checkpoint header"
  | Some nl -> (
      match String.split_on_char ' ' (String.sub data 0 nl) with
      | [ magic; len_s; crc_s ] when magic = blob_magic -> (
          match (int_of_string_opt len_s, int_of_string_opt ("0x" ^ crc_s)) with
          | Some len, Some crc ->
              if len < 0 || String.length data - nl - 1 < len then
                Error "truncated checkpoint payload"
              else
                let payload = String.sub data (nl + 1) len in
                if checksum payload <> crc then Error "checkpoint checksum mismatch"
                else Ok payload
          | _ -> Error "malformed checkpoint header")
      | _ -> Error "not a checkpoint blob")

(* Strictly sealed or nothing: falling back to raw text would let a torn
   prefix of a sealed file (or a bit-flipped header) masquerade as a tiny
   valid payload — e.g. the first bytes of the magic parsing as a query. *)
let unseal_file data =
  match open_blob data with Ok payload -> Some payload | Error _ -> None
