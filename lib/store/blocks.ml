(* The content block store: sealed, content-addressed file bodies under
   the hashed fan-out layout.

   Publication follows the journal chain's discipline — write the sealed
   payload to a scratch name, fsync, rename into place, fsync — so on the
   simulated device a crash leaves either no block, a torn scratch file
   (swept later), or the complete sealed block.  A torn or bit-rotted
   block fails {!Seal.unseal_file} and reads as absent; the caller falls
   back to the authoritative file-system copy, so block damage degrades
   performance, never correctness. *)

module Fs = Hac_vfs.Fs
module Vpath = Hac_vfs.Vpath

let put fs content =
  let key = Layout.key_of_content content in
  let path = Layout.block_path key in
  if not (Fs.is_file fs path) then begin
    let tmp = Layout.tmp_path ("blk-" ^ key) in
    Fs.mkdir_p fs (Vpath.dirname path);
    Fs.write_file fs tmp (Seal.seal_blob content);
    Fs.fsync fs tmp;
    Fs.rename fs ~src:tmp ~dst:path;
    Fs.fsync fs path
  end;
  key

let get fs key =
  match Fs.read_file fs (Layout.block_path key) with
  | data -> Seal.unseal_file data
  | exception Hac_vfs.Errno.Error _ -> None

(* Every block key on disk, by walking the two fan-out levels. *)
let iter_keys fs f =
  let root = Layout.blocks_root in
  if Fs.is_dir fs root then
    List.iter
      (fun l1 ->
        let d1 = root ^ "/" ^ l1 in
        if Fs.is_dir fs d1 then
          List.iter
            (fun l2 ->
              let d2 = d1 ^ "/" ^ l2 in
              if Fs.is_dir fs d2 then List.iter (fun key -> f key) (Fs.readdir fs d2))
            (Fs.readdir fs d1))
      (Fs.readdir fs root)

(* Remove blocks no longer referenced by any live document (and prune the
   fan-out directories they leave empty).  Returns files removed. *)
let sweep fs ~live =
  let removed = ref 0 in
  let doomed = ref [] in
  iter_keys fs (fun key -> if not (live key) then doomed := key :: !doomed);
  List.iter
    (fun key ->
      let path = Layout.block_path key in
      match Fs.unlink fs path with
      | () ->
          incr removed;
          let rec prune dir =
            if
              dir <> Layout.blocks_root
              && Fs.is_dir fs dir
              && Fs.readdir fs dir = []
            then begin
              Fs.rmdir fs dir;
              prune (Vpath.dirname dir)
            end
          in
          prune (Vpath.dirname path)
      | exception Hac_vfs.Errno.Error _ -> ())
    !doomed;
  !removed
