(* The on-"disk" geography of the storage tier.

   Everything the tier persists lives under [/.hac/store], beside (not
   inside) the journal chain, so the store area can exist only when the
   tier is enabled without perturbing a store-less instance's metadata
   bytes.  Content blocks use a hashed fan-out layout — [aa/bb/<key>],
   two hex levels of 256 entries each — so no directory ever accumulates
   more than 256 entries below ~16M blocks (and the full 16-hex-digit key
   space bounds it at any corpus size we can hold). *)

let root = "/.hac/store"
let blocks_root = root ^ "/blocks"
let segs_root = root ^ "/segs"
let manifest_path = root ^ "/segs.tbl"

(* FNV-1a, 64-bit: the content-address of a block.  32 bits would start
   colliding around 10^5 documents (birthday bound); 64 bits is safe past
   10^9.  A collision maps two distinct contents to one block file — the
   reader's seal check cannot catch that, so the key width is the defence. *)
let fnv64 s =
  let prime = 0x100000001b3L and basis = 0xcbf29ce484222325L in
  let h = ref basis in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let key_of_content content = Printf.sprintf "%016Lx" (fnv64 content)

let block_path key =
  Printf.sprintf "%s/%s/%s/%s" blocks_root (String.sub key 0 2) (String.sub key 2 2) key

(* Scratch names for the write-tmp/fsync/rename publication discipline.
   They live directly under the store root so an interrupted publication
   leaves its debris where the compactor's sweep looks. *)
let tmp_path name = root ^ "/tmp-" ^ name

let segment_name ~lineage ~serial = Printf.sprintf "postings-%d-%d.seg" lineage serial
let segment_path name = segs_root ^ "/" ^ name
