(* Byte-bounded LRU cache of block payloads.

   File bodies are demand-loaded through this cache, so a corpus larger
   than RAM never has every body resident: the cache holds at most
   [budget] payload bytes, evicting least-recently-used entries as new
   ones arrive.  A value larger than the whole budget is served but never
   cached (admitting it would evict everything for a single entry).

   Accounting is payload bytes — the quantity the [store.cache.bytes]
   gauge reports and the bench's residency bound asserts. *)

type entry = {
  key : string;
  value : string;
  mutable prev : entry option;  (* towards most-recent *)
  mutable next : entry option;  (* towards least-recent *)
}

type t = {
  budget : int;
  tbl : (string, entry) Hashtbl.t;
  mutable head : entry option;  (* most recently used *)
  mutable tail : entry option;  (* least recently used *)
  mutable bytes : int;
  mutable peak : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~budget =
  {
    budget = max 0 budget;
    tbl = Hashtbl.create 64;
    head = None;
    tail = None;
    bytes = 0;
    peak = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let budget t = t.budget
let bytes t = t.bytes
let peak_bytes t = t.peak
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let entries t = Hashtbl.length t.tbl

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  e.prev <- None;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some e ->
      unlink t e;
      Hashtbl.remove t.tbl e.key;
      t.bytes <- t.bytes - String.length e.value;
      t.evictions <- t.evictions + 1

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      t.hits <- t.hits + 1;
      unlink t e;
      push_front t e;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

let insert t key value =
  let len = String.length value in
  if len <= t.budget then begin
    (match Hashtbl.find_opt t.tbl key with
    | Some old ->
        unlink t old;
        Hashtbl.remove t.tbl key;
        t.bytes <- t.bytes - String.length old.value
    | None -> ());
    while t.bytes + len > t.budget do
      evict_lru t
    done;
    let e = { key; value; prev = None; next = None } in
    Hashtbl.replace t.tbl key e;
    push_front t e;
    t.bytes <- t.bytes + len;
    if t.bytes > t.peak then t.peak <- t.bytes
  end

let drop t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some e ->
      unlink t e;
      Hashtbl.remove t.tbl key;
      t.bytes <- t.bytes - String.length e.value

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  t.bytes <- 0
