(* Immutable on-disk postings segments.

   A segment file is a sealed {e term directory} followed by a raw
   payload:

     HACCKPT1 <dirlen> <dircrc>\n<directory text><payload bytes>

   The directory (one line per term: payload offset, slice length, slice
   checksum, cardinality, term key) is small, verified as a unit and kept
   memory-resident; term slices — the posting lists themselves — are
   loaded lazily with positioned reads ({!Hac_vfs.Fs.pread_ino}), never
   all at once, which is the mmap-style access the tier is after.  Reads
   go against the file-system tree the simulated device reconstructs, so
   torn and bit-flipped segment writes surface here exactly as a real
   crash would leave them.

   Damage is graded: an unreadable directory fails {!load} (the mount
   falls back to the full oracle), while a damaged individual slice
   returns {!Damaged} and the caller substitutes the whole live universe
   for that term — a sound superset, verification trims it. *)

module Fs = Hac_vfs.Fs
module Fileset = Hac_bitset.Fileset

type slot = { off : int; len : int; crc : int; card : int }

type t = {
  fs : Fs.t;
  path : string;
  ino : Hac_vfs.Inode.ino;
  base : int;  (* payload offset of slot 0 within the file *)
  dir : (string, slot) Hashtbl.t;
  loaded : (string, Fileset.t) Hashtbl.t;  (* verified, parsed slices *)
}

let path t = t.path
let term_count t = Hashtbl.length t.dir

(* -- writing --------------------------------------------------------------- *)

let render entries =
  let pay = Buffer.create 4096 in
  let dir = Buffer.create 1024 in
  List.iter
    (fun (term, ids) ->
      let slice = String.concat " " (List.map string_of_int ids) in
      Printf.bprintf dir "%d %d %08x %d %s\n" (Buffer.length pay) (String.length slice)
        (Seal.checksum slice) (List.length ids) term;
      Buffer.add_string pay slice)
    entries;
  Seal.seal_blob (Buffer.contents dir) ^ Buffer.contents pay

(* Publish atomically: scratch, fsync, rename, fsync — under the device's
   in-order durability model anything that later references this segment
   (manifest, checkpoint) can only be durable once the segment is. *)
let write fs path entries =
  let tmp = Layout.tmp_path ("seg-" ^ Hac_vfs.Vpath.basename path) in
  Fs.mkdir_p fs (Hac_vfs.Vpath.dirname path);
  Fs.write_file fs tmp (render entries);
  Fs.fsync fs tmp;
  Fs.rename fs ~src:tmp ~dst:path;
  Fs.fsync fs path

(* -- loading --------------------------------------------------------------- *)

let parse_dir_line line =
  match String.split_on_char ' ' line with
  | off :: len :: crc :: card :: (_ :: _ as term) -> (
      match
        ( int_of_string_opt off,
          int_of_string_opt len,
          int_of_string_opt ("0x" ^ crc),
          int_of_string_opt card )
      with
      | Some off, Some len, Some crc, Some card when off >= 0 && len >= 0 ->
          Some (String.concat " " term, { off; len; crc; card })
      | _ -> None)
  | _ -> None

let load fs path : (t, string) result =
  match Fs.ino_of_path fs path with
  | exception Hac_vfs.Errno.Error _ -> Error (path ^ ": missing")
  | ino -> (
      let head = Fs.pread_ino fs ino ~pos:0 ~len:80 in
      match String.index_opt head '\n' with
      | None -> Error (path ^ ": bad segment header")
      | Some nl -> (
          match String.split_on_char ' ' (String.sub head 0 nl) with
          | [ magic; len_s; crc_s ] when magic = Seal.blob_magic -> (
              match (int_of_string_opt len_s, int_of_string_opt ("0x" ^ crc_s)) with
              | Some dlen, Some crc when dlen >= 0 ->
                  let dtext = Fs.pread_ino fs ino ~pos:(nl + 1) ~len:dlen in
                  if String.length dtext <> dlen || Seal.checksum dtext <> crc then
                    Error (path ^ ": torn term directory")
                  else begin
                    let dir = Hashtbl.create 256 in
                    let ok = ref true in
                    List.iter
                      (fun line ->
                        if line <> "" then
                          match parse_dir_line line with
                          | Some (term, slot) -> Hashtbl.replace dir term slot
                          | None -> ok := false)
                      (String.split_on_char '\n' dtext);
                    if not !ok then Error (path ^ ": malformed term directory")
                    else
                      Ok
                        {
                          fs;
                          path;
                          ino;
                          base = nl + 1 + dlen;
                          dir;
                          loaded = Hashtbl.create 64;
                        }
                  end
              | _ -> Error (path ^ ": bad segment header"))
          | _ -> Error (path ^ ": not a segment")))

type lookup = Hit of Fileset.t | Absent | Damaged

(* [term t key ~on_load] — the posting set of one term key, faulting the
   slice in on first touch.  [on_load] fires once per slice actually read
   from the device (the [store.seg.loads] instrument). *)
let term t key ~on_load =
  match Hashtbl.find_opt t.loaded key with
  | Some s -> Hit s
  | None -> (
      match Hashtbl.find_opt t.dir key with
      | None -> Absent
      | Some slot ->
          on_load ();
          let slice = Fs.pread_ino t.fs t.ino ~pos:(t.base + slot.off) ~len:slot.len in
          if String.length slice <> slot.len || Seal.checksum slice <> slot.crc then
            Damaged
          else begin
            let ids =
              if slice = "" then []
              else List.filter_map int_of_string_opt (String.split_on_char ' ' slice)
            in
            let s = Fileset.of_list ids in
            Hashtbl.replace t.loaded key s;
            Hit s
          end)

(* Cardinality straight from the verified directory — the planner's cost
   estimate never touches the payload. *)
let cost t key =
  match Hashtbl.find_opt t.dir key with Some slot -> slot.card | None -> 0

let iter_terms t f = Hashtbl.iter (fun key slot -> f key slot.card) t.dir
