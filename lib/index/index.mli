(** The Glimpse-style two-level content index — HAC's default CBA mechanism.

    Documents (files) are assigned dense integer identifiers and grouped into
    fixed-size {e blocks}.  The inverted index maps each (stemmed) word to a
    bitmap of blocks, not of documents: that is Glimpse's space/precision
    trade-off.  A word lookup expands candidate blocks to their live
    documents; callers needing exact answers verify candidates against the
    actual contents ({!Search}).  With [block_size = 1] the index degenerates
    to a precise document-level inverted index.

    Updates are lazy, like Glimpse's: removing or rewriting a document does
    not erase its old words from block bitmaps (that would need per-block
    reference counts); stale bits only cost verification work and disappear
    on {!rebuild}. *)

type t
(** One index instance. *)

type doc_id = int
(** Dense document identifier, stable for the life of the path. *)

val create : ?block_size:int -> ?stem:bool -> ?transducer:Transducer.t -> unit -> t
(** A fresh empty index.  [block_size] is the number of document slots per
    block (default 8); [stem] applies {!Stemmer.stem} to indexed and queried
    words (default [true]); [transducer] extracts attribute/value pairs from
    every document (default: none), making [attr:value] query terms answer
    from content metadata. *)

val block_size : t -> int
(** The block size chosen at creation. *)

val stemming : t -> bool
(** Whether stemming is on. *)

val transducer : t -> Transducer.t option
(** The attribute transducer installed at creation, if any. *)

val add_document : t -> path:string -> content:string -> doc_id
(** Index a new document.  If the path is already present this behaves like
    {!update_document}. *)

val update_document : t -> path:string -> content:string -> doc_id
(** Reindex the contents of an existing path (same identifier); adds the
    document when missing. *)

val remove_path : t -> string -> unit
(** Forget the document at the path; its identifier is never reused.  No-op
    when absent. *)

val adopt_document : t -> id:doc_id -> path:string -> unit
(** Register a live document at a {e given} identifier with no content — the
    fast-mount path, where postings live in cold on-disk segments keyed by
    that id.  Raises [Invalid_argument] on a negative id; advances the id
    allocator past [id]. *)

val next_doc_id : t -> doc_id
(** The next identifier {!add_document} would assign (= the id-space size,
    dead slots included). *)

val reserve_doc_ids : t -> int -> unit
(** Ensure future identifiers start at or above [n] — dead documents' ids
    still appear in cold segments, and a fresh id must never alias one. *)

val iter_live : t -> (doc_id -> string -> unit) -> unit
(** Every live document with its path, ascending by id. *)

val iter_cas_terms : t -> (string -> Hac_bitset.Fileset.t -> unit) -> unit
(** Every CAS term key with its live posting set (see {!Cas.iter_terms}) —
    what a postings-segment dump persists. *)

val set_cold :
  t ->
  lookup:(string -> Hac_bitset.Fileset.t) ->
  cost:(string -> int) ->
  words:(unit -> string list) ->
  unit
(** Install a cold-postings provider: term lookups over on-disk segments not
    loaded into memory, keyed by the {!Cas} flat term encodings.  Its sets
    are unioned into every candidate answer (masked by the live universe and
    trimmed by verification — an over-broad provider costs work, never
    correctness), its costs added to {!term_cost}/{!attr_cost}, and its
    [words] swept by approximate queries. *)

val clear_cold : t -> unit
(** Remove the cold provider ({!rebuild} also does). *)

val has_cold : t -> bool

val rename_path : t -> old_path:string -> new_path:string -> unit
(** Move a document to a new path, keeping its identifier.  No-op when
    [old_path] is not indexed. *)

val doc_count : t -> int
(** Number of live documents. *)

val universe : t -> Hac_bitset.Fileset.t
(** Set of all live document identifiers. *)

val doc_path : t -> doc_id -> string option
(** Path of a live document. *)

val doc_of_path : t -> string -> doc_id option
(** Identifier of an indexed path. *)

val candidate_docs :
  ?within:Hac_bitset.Fileset.t -> ?under:string -> t -> string -> Hac_bitset.Fileset.t
(** Live documents that may contain the word (after stemming) — a superset
    of the true answer, to be verified by the caller.  With the CAS path on
    (default, see {!set_use_cas}) candidates come from the doc-granular
    partitioned postings; [?under] (a normalized absolute directory)
    restricts generation to the partitions whose path label can hold
    documents under that scope, which is sound whenever the caller
    intersects the final result with a subtree scope below [under].
    [?within] intersects the answer with the given set.  With CAS off the
    Glimpse block path is used, [?under] is ignored, and [?within] restricts
    without expanding posting blocks. *)

val candidate_docs_approx :
  ?within:Hac_bitset.Fileset.t -> t -> word:string -> errors:int -> Hac_bitset.Fileset.t
(** Union of {!candidate_docs} over every vocabulary word within the given
    edit distance of [word] — Glimpse's approximate-query expansion. *)

val doc_ids_under : t -> string -> Hac_bitset.Fileset.t
(** Live documents at or below a (normalized, absolute) directory path —
    maintained incrementally per document, so subtree scopes cost a lookup
    rather than a scan over every document.  [doc_ids_under t "/"] equals
    {!universe}. *)

val attr_docs :
  ?within:Hac_bitset.Fileset.t ->
  ?under:string ->
  t ->
  string ->
  string ->
  Hac_bitset.Fileset.t
(** Live documents carrying the attribute/value pair (extracted by the
    transducer at indexing time).  Empty when no transducer is installed.
    Same superset/verification contract and [?within]/[?under] semantics as
    {!candidate_docs}; attribute lookups are exact on the value. *)

val term_cost : ?under:string -> t -> string -> int
(** Estimate of [candidate_docs t w]'s cardinality.  With CAS on this is
    measured from the compressed partitions the lookup would actually touch
    (scoped by [?under]); with CAS off it is the Glimpse posting-block upper
    bound (populated blocks × block size, clamped to the live document
    count).  Never materializes a candidate set — cheap enough to consult
    once per query term on every resync, which is what {!Planner.optimize}
    needs to rank conjuncts by real selectivity.  Safe to call from worker
    domains. *)

val attr_cost : ?under:string -> t -> string -> string -> int
(** {!term_cost} for an attribute/value pair. *)

val set_use_cas : t -> bool -> unit
(** Toggle the CAS query path (default on).  Off, term lookups fall back to
    Glimpse block expansion — the ablation baseline; indexing maintains both
    structures either way, so the knob can be flipped at any time. *)

val use_cas : t -> bool
(** Current state of the CAS query-path knob. *)

val cas_stats : t -> Cas.stats
(** Memory accounting and container histogram of the CAS postings (forces
    partition snapshots — a stats-time cost). *)

val attributes : t -> (string * string) list
(** All indexed attribute/value pairs, sorted. *)

val vocabulary : t -> string list
(** All indexed (stemmed) words, sorted. *)

val vocabulary_size : t -> int
(** Number of distinct indexed words. *)

val rebuild : t -> (doc_id -> string option) -> unit
(** Drop all postings and reindex every live document from the reader —
    reclaims stale bits left by removals and updates. *)

val index_bytes : t -> int
(** Estimated byte size of the index structures (vocabulary + block bitmaps
    + document table): the paper's Table 3 space column. *)

val stale_ratio : t -> float
(** Fraction of lazy operations (removals and in-place updates, which leave
    stale block bits) relative to live documents since the last {!rebuild}
    — the rebuild-freshness signal used for automatic compaction. *)
