(** Combined content-and-structure index: per-term postings partitioned by a
    path-prefix label, so a path-scoped term lookup unions only the
    partitions whose label can contain documents under the scope.

    Same laziness contract as the Glimpse block index — every answer is a
    sound superset of the truth (removals are masked by the alive set,
    renames by the relabeled set) and callers verify candidates against real
    content.  Mutation is main-domain-only between settle passes; lookups
    and costs are safe from worker domains. *)

type t

val create : unit -> t

val reset : t -> unit
(** Drop all postings, labels and drift sets (used by index rebuild). *)

val label_of_path : string -> string
(** The partition label of a document path: the depth-<=2 prefix of its
    directory ("/a/b/c/f.txt" -> "/a/b", "/f.txt" -> "/"). *)

val note_doc : t -> int -> path:string -> unit
(** Record (or refresh) the document's label and mark it alive.  A label
    change joins the document to the relabeled drift set. *)

val note_remove : t -> int -> unit
(** Mark the document dead; its postings stay until {!reset}. *)

val alive : t -> Hac_bitset.Fileset.t
(** Snapshot of the live-document set (cached between mutations). *)

val relabeled_count : t -> int
(** Documents whose label drifted since their postings were written. *)

val post_word : t -> int -> string -> unit
(** [post_word t id w] adds the (stemmed) word posting under the document's
    current label.  Consecutive duplicate ids are coalesced. *)

val post_attr : t -> int -> string -> string -> unit
(** Attribute/value posting, same contract as {!post_word}. *)

val word_key : string -> string
val attr_key : string -> string -> string
(** The flat encodings of a (stemmed) word / lowercased attribute pair as a
    single term key (["w:…"] / ["a:…"]) — the key space {!iter_terms}
    enumerates and on-disk postings segments are addressed by. *)

val iter_terms : t -> (string -> Hac_bitset.Fileset.t -> unit) -> unit
(** Every term key with its live posting set (all partitions unioned, dead
    documents masked out).  Forces partition snapshots — a dump-time cost,
    like {!stats}. *)

val word_candidates : ?under:string -> t -> string -> Hac_bitset.Fileset.t
(** Live documents that may contain the word.  With [?under] (a normalized
    absolute directory) only the partitions whose label can hold documents
    under that scope are unioned — a superset of (word docs ∩ docs under
    scope), to be verified by the caller. *)

val attr_candidates : ?under:string -> t -> string -> string -> Hac_bitset.Fileset.t

val word_cost : ?under:string -> t -> string -> int
(** Measured candidate-cardinality estimate: sum of the covered partitions'
    sizes, no set materialization.  Reflects the actual posting sizes of the
    compressed representation, per scope. *)

val attr_cost : ?under:string -> t -> string -> string -> int

type stats = {
  labels : int;
  terms : int;
  partitions : int;
  postings : int;  (** appended postings, duplicates included *)
  bytes : int;  (** compressed snapshot payload bytes *)
  raw_bytes : int;  (** posting-vector backing store bytes *)
  uncompressed_bytes : int;  (** one whole-universe bitmap per term *)
  arrays : int;
  bitmaps : int;
  run_containers : int;
  relabeled : int;
}

val stats : ?universe:int -> t -> stats
(** Container histogram and memory accounting over all partitions.  Forces
    every partition snapshot — an explicit stats-time cost.  [universe] (the
    document-id space size) prices the uncompressed one-bitmap-per-term
    alternative for the compression-ratio report. *)
