module Bitset = Hac_bitset.Bitset
module Fileset = Hac_bitset.Fileset

type doc_id = int

type doc = { mutable path : string; mutable alive : bool }

(* A cold-postings provider: term lookups over on-disk postings segments a
   fast mount did not load into memory.  Keys are the {!Cas} flat term
   encodings.  Every set it returns is unioned in as extra candidates —
   masked by the live universe and trimmed by verification, so a stale or
   over-broad provider can cost work but never correctness. *)
type cold = {
  lookup : string -> Fileset.t;
  cost : string -> int;
  words : unit -> string list;  (* stemmed words with cold postings *)
}

type t = {
  block_size : int;
  stem : bool;
  transducer : Transducer.t option;
  mutable docs : doc array; (* slot = doc_id; grows, never shrinks *)
  mutable next_id : int;
  by_path : (string, doc_id) Hashtbl.t;
  postings : (string, Bitset.t) Hashtbl.t; (* word -> block bitmap *)
  attr_postings : (string * string, Bitset.t) Hashtbl.t; (* (attr, value) -> block bitmap *)
  mutable lazy_ops : int; (* removals + in-place updates since the last rebuild *)
  by_dir : (string, Fileset.Builder.t) Hashtbl.t; (* ancestor dir -> live docs beneath it *)
  cas : Cas.t; (* content-and-structure postings, doc-granular *)
  mutable use_cas : bool; (* query-path knob: CAS vs block expansion *)
  mutable cold : cold option; (* on-disk postings behind the resident ones *)
}

let create ?(block_size = 8) ?(stem = true) ?transducer () =
  if block_size < 1 then invalid_arg "Index.create: block_size < 1";
  {
    block_size;
    stem;
    transducer;
    docs = Array.make 64 { path = ""; alive = false };
    next_id = 0;
    by_path = Hashtbl.create 256;
    postings = Hashtbl.create 4096;
    attr_postings = Hashtbl.create 64;
    lazy_ops = 0;
    by_dir = Hashtbl.create 256;
    cas = Cas.create ();
    use_cas = true;
    cold = None;
  }

let set_use_cas t flag = t.use_cas <- flag

let use_cas t = t.use_cas

let set_cold t ~lookup ~cost ~words = t.cold <- Some { lookup; cost; words }

let clear_cold t = t.cold <- None

let has_cold t = t.cold <> None

let block_size t = t.block_size

let stemming t = t.stem

let transducer t = t.transducer

let key t w = if t.stem then Stemmer.stem w else w

let block_of t id = id / t.block_size

let ensure_docs t id =
  let n = Array.length t.docs in
  if id >= n then begin
    let docs = Array.make (max (id + 1) (2 * n)) { path = ""; alive = false } in
    Array.blit t.docs 0 docs 0 n;
    t.docs <- docs
  end

let post_word t block w =
  let w = key t w in
  match Hashtbl.find_opt t.postings w with
  | Some bm -> Bitset.add bm block
  | None ->
      let bm = Bitset.create ~capacity:(block + 1) () in
      Bitset.add bm block;
      Hashtbl.replace t.postings w bm

let post_attr t block key value =
  let k = (String.lowercase_ascii key, String.lowercase_ascii value) in
  match Hashtbl.find_opt t.attr_postings k with
  | Some bm -> Bitset.add bm block
  | None ->
      let bm = Bitset.create ~capacity:(block + 1) () in
      Bitset.add bm block;
      Hashtbl.replace t.attr_postings k bm

(* Every ancestor directory of "/a/b/c.txt": "/", "/a", "/a/b".  Paths are
   normalized absolute by the callers' convention. *)
let ancestors path =
  let rec go acc i =
    match String.index_from_opt path i '/' with
    | Some j when j = 0 -> go ("/" :: acc) 1
    | Some j -> go (String.sub path 0 j :: acc) (j + 1)
    | None -> acc
  in
  go [] 0

let dir_enroll t path id =
  List.iter
    (fun dir ->
      match Hashtbl.find_opt t.by_dir dir with
      | Some b -> Fileset.Builder.add b id
      | None ->
          let b = Fileset.Builder.create () in
          Fileset.Builder.add b id;
          Hashtbl.replace t.by_dir dir b)
    (ancestors path)

let dir_withdraw t path id =
  List.iter
    (fun dir ->
      match Hashtbl.find_opt t.by_dir dir with
      | Some b -> Fileset.Builder.remove b id
      | None -> ())
    (ancestors path)

let index_content t id path content =
  let block = block_of t id in
  Cas.note_doc t.cas id ~path;
  Tokenizer.iter_words content (fun w ->
      post_word t block w;
      Cas.post_word t.cas id (key t w));
  match t.transducer with
  | None -> ()
  | Some td ->
      List.iter
        (fun (k, v) ->
          post_attr t block k v;
          Cas.post_attr t.cas id (String.lowercase_ascii k) (String.lowercase_ascii v))
        (td.Transducer.extract ~path ~content)

let update_document t ~path ~content =
  match Hashtbl.find_opt t.by_path path with
  | Some id ->
      (* Lazy update: stale words keep their block bits until [rebuild]. *)
      t.lazy_ops <- t.lazy_ops + 1;
      index_content t id path content;
      id
  | None ->
      let id = t.next_id in
      t.next_id <- t.next_id + 1;
      ensure_docs t id;
      t.docs.(id) <- { path; alive = true };
      Hashtbl.replace t.by_path path id;
      dir_enroll t path id;
      index_content t id path content;
      id

let add_document = update_document

(* Fast-mount adoption: register a document at a {e given} identifier with
   no content — its postings live in cold segments keyed by that id, so the
   id must survive the remount exactly.  Content arrives later only if the
   file changes (a normal {!update_document} through the dirty path). *)
let adopt_document t ~id ~path =
  if id < 0 then invalid_arg "Index.adopt_document: negative id";
  ensure_docs t id;
  t.docs.(id) <- { path; alive = true };
  Hashtbl.replace t.by_path path id;
  dir_enroll t path id;
  Cas.note_doc t.cas id ~path;
  if id >= t.next_id then t.next_id <- id + 1

let next_doc_id t = t.next_id

(* Dead documents' ids still appear in cold segments; allocating past the
   previous life's frontier keeps a fresh id from aliasing a dead one's
   postings. *)
let reserve_doc_ids t n = if n > t.next_id then t.next_id <- n

let iter_live t f =
  for id = 0 to t.next_id - 1 do
    if t.docs.(id).alive then f id t.docs.(id).path
  done

let iter_cas_terms t f = Cas.iter_terms t.cas f

let remove_path t path =
  match Hashtbl.find_opt t.by_path path with
  | None -> ()
  | Some id ->
      t.docs.(id).alive <- false;
      t.lazy_ops <- t.lazy_ops + 1;
      dir_withdraw t path id;
      Cas.note_remove t.cas id;
      Hashtbl.remove t.by_path path

let rename_path t ~old_path ~new_path =
  match Hashtbl.find_opt t.by_path old_path with
  | None -> ()
  | Some id ->
      Hashtbl.remove t.by_path old_path;
      dir_withdraw t old_path id;
      (* A pre-existing doc at the destination is overwritten, as the file
         it described just got replaced. *)
      (match Hashtbl.find_opt t.by_path new_path with
      | Some clobbered ->
          t.docs.(clobbered).alive <- false;
          dir_withdraw t new_path clobbered;
          Cas.note_remove t.cas clobbered
      | None -> ());
      Hashtbl.replace t.by_path new_path id;
      dir_enroll t new_path id;
      Cas.note_doc t.cas id ~path:new_path;
      t.docs.(id).path <- new_path

let doc_count t = Hashtbl.length t.by_path

(* The CAS alive set mirrors the docs array exactly (both are maintained by
   the same mutation paths), and its snapshot is cached between mutations. *)
let universe t = Cas.alive t.cas

let doc_path t id =
  if id < 0 || id >= t.next_id then None
  else
    let d = t.docs.(id) in
    if d.alive then Some d.path else None

let doc_of_path t path = Hashtbl.find_opt t.by_path path

(* Blocks iterate in increasing order and block ranges are disjoint, so the
   candidate ids stream out strictly increasing — straight into containers,
   no intermediate bitmap (the old code built a Bitset and copied it). *)
let expand_blocks t blocks =
  Fileset.of_increasing_iter (fun f ->
      Bitset.iter
        (fun block ->
          let lo = block * t.block_size in
          let hi = min (((block + 1) * t.block_size) - 1) (t.next_id - 1) in
          for id = lo to hi do
            if t.docs.(id).alive then f id
          done)
        blocks)

(* Delta-restricted expansion: when the caller only cares about a known
   (small) candidate set, test each of its members against the block bitmap
   instead of expanding every posting block — O(|within|) rather than
   O(populated blocks × block_size). *)
let within_blocks t blocks wset =
  Fileset.filter
    (fun id ->
      id >= 0 && id < t.next_id && t.docs.(id).alive && Bitset.mem blocks (block_of t id))
    wset

let expand ?within t blocks =
  match within with
  | None -> expand_blocks t blocks
  | Some wset -> within_blocks t blocks wset

(* CAS query path: doc-granular partitioned postings, resolved per scope.
   [?under] restricts candidate generation to the partitions whose label can
   contain documents under the given directory — sound because every answer
   is a verified superset, and the caller intersects the final result with
   the scope set anyway.  With [use_cas] off (the ablation/differential
   baseline) terms fall back to Glimpse block expansion and [?under] is
   ignored. *)
(* Cold candidates for one encoded term key: the provider's set masked by
   the live universe (dead documents' segment postings must not leak). *)
let cold_docs t key =
  match t.cold with
  | None -> Fileset.empty
  | Some c ->
      let s = c.lookup key in
      if Fileset.cardinal s = 0 then s else Fileset.inter s (universe t)

let cold_cost t key = match t.cold with None -> 0 | Some c -> c.cost key

let candidate_docs ?within ?under t w =
  let w = key t w in
  let base =
    if t.use_cas then Cas.word_candidates ?under t.cas w
    else
      match Hashtbl.find_opt t.postings w with
      | None -> Fileset.empty
      | Some blocks -> expand ?within t blocks
  in
  let c =
    if t.cold = None then base else Fileset.union base (cold_docs t (Cas.word_key w))
  in
  match within with None -> c | Some wset -> Fileset.inter c wset

let candidate_docs_approx ?within t ~word ~errors =
  let word = key t word in
  let blocks = Bitset.create () in
  Hashtbl.iter
    (fun w bm -> if Agrep.word_matches ~pattern:word ~errors w then Bitset.union_into blocks bm)
    t.postings;
  let base = expand ?within t blocks in
  match t.cold with
  | None -> base
  | Some cold ->
      (* Adopted documents' vocabulary lives only in segment directories;
         sweep it for near-matches too or approximate queries would go
         blind to everything a fast mount did not reindex. *)
      let c =
        List.fold_left
          (fun acc w ->
            if Agrep.word_matches ~pattern:word ~errors w then
              Fileset.union acc (cold_docs t (Cas.word_key w))
            else acc)
          base (cold.words ())
      in
      (match within with None -> c | Some wset -> Fileset.inter c wset)

let vocabulary t =
  let resident = Hashtbl.fold (fun w _ acc -> w :: acc) t.postings [] in
  let all =
    match t.cold with None -> resident | Some cold -> cold.words () @ resident
  in
  List.sort_uniq compare all

let vocabulary_size t =
  match t.cold with
  | None -> Hashtbl.length t.postings
  | Some _ -> List.length (vocabulary t)

(* Snapshot of the by_dir builder: cached between mutations, so repeated
   scope computations over a settled tree cost a hashtable lookup. *)
let doc_ids_under t dir =
  match Hashtbl.find_opt t.by_dir dir with
  | Some b -> Fileset.Builder.snapshot b
  | None -> Fileset.empty

let attr_docs ?within ?under t key value =
  let key = String.lowercase_ascii key and value = String.lowercase_ascii value in
  let base =
    if t.use_cas then Cas.attr_candidates ?under t.cas key value
    else
      match Hashtbl.find_opt t.attr_postings (key, value) with
      | None -> Fileset.empty
      | Some blocks -> expand ?within t blocks
  in
  let c =
    if t.cold = None then base
    else Fileset.union base (cold_docs t (Cas.attr_key key value))
  in
  match within with None -> c | Some wset -> Fileset.inter c wset

(* Candidate-cardinality upper bound from posting-block population alone —
   no block expansion, so safe to call once per query term per resync. *)
let blocks_cost t = function
  | None -> 0
  | Some blocks ->
      let pop = Bitset.cardinal blocks in
      if pop > max_int / t.block_size then doc_count t
      else min (pop * t.block_size) (doc_count t)

(* With CAS on, term costs are measured partition cardinalities of the real
   compressed representation (scoped by [?under]); otherwise the Glimpse
   block upper bound.  Called from worker domains during parallel passes —
   must not touch metrics or other main-domain-only state. *)
let term_cost ?under t w =
  let w = key t w in
  let resident =
    if t.use_cas then Cas.word_cost ?under t.cas w
    else blocks_cost t (Hashtbl.find_opt t.postings w)
  in
  resident + cold_cost t (Cas.word_key w)

let attr_cost ?under t key value =
  let key = String.lowercase_ascii key and value = String.lowercase_ascii value in
  let resident =
    if t.use_cas then Cas.attr_cost ?under t.cas key value
    else blocks_cost t (Hashtbl.find_opt t.attr_postings (key, value))
  in
  resident + cold_cost t (Cas.attr_key key value)

let attributes t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.attr_postings [] |> List.sort compare

let rebuild t reader =
  t.lazy_ops <- 0;
  (* The rebuild reads every live document, so afterwards the resident
     postings cover everything the cold segments did (for live documents);
     dropping the provider here is what ultimately retires segment files. *)
  t.cold <- None;
  Hashtbl.reset t.postings;
  Hashtbl.reset t.attr_postings;
  Cas.reset t.cas;
  for id = 0 to t.next_id - 1 do
    if t.docs.(id).alive then
      match reader id with
      | Some content -> index_content t id t.docs.(id).path content
      | None ->
          (* The document vanished from under us; treat as removed. *)
          Hashtbl.remove t.by_path t.docs.(id).path;
          t.docs.(id).alive <- false;
          Cas.note_remove t.cas id
  done

let cas_stats t = Cas.stats ~universe:t.next_id t.cas

let index_bytes t =
  let word = Sys.int_size / 8 + 1 in
  let postings_bytes =
    Hashtbl.fold
      (fun w bm acc -> acc + String.length w + (2 * word) + Bitset.byte_size bm)
      t.postings 0
    + Hashtbl.fold
        (fun (a, v) bm acc ->
          acc + String.length a + String.length v + (3 * word) + Bitset.byte_size bm)
        t.attr_postings 0
  in
  let dir_bytes =
    Hashtbl.fold
      (fun dir b acc ->
        acc + String.length dir + (2 * word)
        + Fileset.byte_size (Fileset.Builder.snapshot b))
      t.by_dir 0
  in
  let docs_bytes =
    let acc = ref 0 in
    for id = 0 to t.next_id - 1 do
      acc := !acc + (2 * word) + String.length t.docs.(id).path
    done;
    !acc
  in
  postings_bytes + dir_bytes + docs_bytes + (cas_stats t).Cas.bytes

let stale_ratio t =
  let live = doc_count t in
  if live + t.lazy_ops = 0 then 0.0
  else float_of_int t.lazy_ops /. float_of_int (live + t.lazy_ops)
