module Fileset = Hac_bitset.Fileset

type reader = string -> string option

(* Per-evaluation profiling accumulator.  A plain mutable record rather
   than a metrics dependency: callers that care allocate one, pass it down,
   and flush the totals wherever they like; the [None] fast path costs one
   match per call site. *)
type probe = {
  mutable postings_scanned : int;
  mutable candidates_expanded : int;
  mutable docs_verified : int;
  mutable restrict_kept : int;
  mutable restrict_dropped : int;
  mutable terms : int;
}

let new_probe () =
  {
    postings_scanned = 0;
    candidates_expanded = 0;
    docs_verified = 0;
    restrict_kept = 0;
    restrict_dropped = 0;
    terms = 0;
  }

let tick probe f = match probe with Some p -> f p | None -> ()

let key idx w = if Index.stemming idx then Stemmer.stem w else w

(* -- per-pass shared caches ------------------------------------------------

   Both caches live for exactly one settle pass — the window during which
   the index and every document's content are frozen — so they need no
   invalidation protocol: the pass drops them when it ends, and a reindex
   always starts a fresh pass.  Both are safe to share across domains: the
   table locks cover the maps, and an entry's token structures are built and
   read under the entry's own lock (publishing a half-built hashtable
   through a plain mutable field is not safe under the OCaml 5 memory
   model). *)

type doc_entry = {
  de_content : string;
  de_lock : Mutex.t;
  mutable de_keys : (string, unit) Hashtbl.t option;  (* index-keyed token set *)
  mutable de_tokens : string list option;  (* raw token stream, for phrases *)
}

type doc_cache = {
  dc_lock : Mutex.t;
  dc_tbl : (string, doc_entry option) Hashtbl.t;  (* None: unreadable path *)
  dc_max_bytes : int;
  mutable dc_bytes : int;
  mutable dc_hits : int;
  mutable dc_misses : int;
  mutable dc_uncached : int;
}

type cache_stats = {
  cache_hits : int;
  cache_misses : int;
  cache_uncached : int;
  cache_docs : int;
  cache_bytes : int;
}

let default_cache_bytes = 32 * 1024 * 1024

let doc_cache ?(max_bytes = default_cache_bytes) () =
  {
    dc_lock = Mutex.create ();
    dc_tbl = Hashtbl.create 1024;
    dc_max_bytes = max_bytes;
    dc_bytes = 0;
    dc_hits = 0;
    dc_misses = 0;
    dc_uncached = 0;
  }

let doc_cache_stats c =
  Mutex.lock c.dc_lock;
  let s =
    {
      cache_hits = c.dc_hits;
      cache_misses = c.dc_misses;
      cache_uncached = c.dc_uncached;
      cache_docs = Hashtbl.length c.dc_tbl;
      cache_bytes = c.dc_bytes;
    }
  in
  Mutex.unlock c.dc_lock;
  s

let cached_entry c (reader : reader) path =
  Mutex.lock c.dc_lock;
  match Hashtbl.find_opt c.dc_tbl path with
  | Some e ->
      c.dc_hits <- c.dc_hits + 1;
      Mutex.unlock c.dc_lock;
      e
  | None ->
      c.dc_misses <- c.dc_misses + 1;
      Mutex.unlock c.dc_lock;
      (* Read outside the lock: the file cannot change during a pass, so a
         concurrent same-path read is benign, and a slow reader must not
         serialize every other domain. *)
      let entry =
        Option.map
          (fun content ->
            { de_content = content; de_lock = Mutex.create (); de_keys = None; de_tokens = None })
          (reader path)
      in
      Mutex.lock c.dc_lock;
      (match Hashtbl.find_opt c.dc_tbl path with
      | Some e ->
          (* Another domain raced us to it; keep the published entry so all
             readers share one set of token structures. *)
          Mutex.unlock c.dc_lock;
          e
      | None ->
          let sz = match entry with Some e -> String.length e.de_content | None -> 0 in
          if c.dc_bytes + sz <= c.dc_max_bytes then begin
            Hashtbl.replace c.dc_tbl path entry;
            c.dc_bytes <- c.dc_bytes + sz
          end
          else c.dc_uncached <- c.dc_uncached + 1;
          Mutex.unlock c.dc_lock;
          entry)

let cached_content c reader path =
  Option.map (fun e -> e.de_content) (cached_entry c reader path)

(* Token structures are built at most once per entry, under the entry lock;
   once published they are immutable, so the returned table/list can be read
   without the lock. *)
let entry_keys idx e =
  Mutex.lock e.de_lock;
  let keys =
    match e.de_keys with
    | Some k -> k
    | None ->
        let k = Hashtbl.create 64 in
        Tokenizer.iter_words e.de_content (fun x -> Hashtbl.replace k (key idx x) ());
        e.de_keys <- Some k;
        k
  in
  Mutex.unlock e.de_lock;
  keys

let entry_tokens e =
  Mutex.lock e.de_lock;
  let tokens =
    match e.de_tokens with
    | Some t -> t
    | None ->
        let t = Tokenizer.words e.de_content in
        e.de_tokens <- Some t;
        t
  in
  Mutex.unlock e.de_lock;
  tokens

(* -- content predicates ---------------------------------------------------- *)

let contains_word idx ~content ~word =
  let w = String.lowercase_ascii word in
  if Index.stemming idx then begin
    (* Stemmed comparison needs materialised tokens. *)
    let wk = Stemmer.stem w in
    let found = ref false in
    Tokenizer.iter_words content (fun x -> if Stemmer.stem x = wk then found := true);
    !found
  end
  else Tokenizer.contains_word content w

(* Membership in the index-keyed token set is exactly [contains_word]:
   unstemmed keys are the raw (truncated) tokens [Tokenizer.contains_word]
   matches; stemmed keys compare stems as the scan does. *)
let entry_has_word idx e w = Hashtbl.mem (entry_keys idx e) (key idx (String.lowercase_ascii w))

(* Slide over the token stream keeping how much of the phrase each in-flight
   match has consumed; token lists are short-lived (or pass-cached). *)
let phrase_in_tokens first rest tokens =
  let rec scan = function
    | [] -> false
    | t :: tl -> (t = first && tail_matches rest tl) || scan tl
  and tail_matches need toks =
    match (need, toks) with
    | [], _ -> true
    | _, [] -> false
    | n :: nrest, t :: trest -> t = n && tail_matches nrest trest
  in
  scan tokens

let contains_phrase ~content words =
  match List.map String.lowercase_ascii words with
  | [] -> true
  | first :: rest -> phrase_in_tokens first rest (Tokenizer.words content)

let entry_has_phrase e words =
  match List.map String.lowercase_ascii words with
  | [] -> true
  | first :: rest -> phrase_in_tokens first rest (entry_tokens e)

let restrict ?probe within candidates =
  match within with
  | None -> candidates
  | Some w ->
      let kept = Fileset.inter w candidates in
      tick probe (fun p ->
          let before = Fileset.cardinal candidates and after = Fileset.cardinal kept in
          p.restrict_kept <- p.restrict_kept + after;
          p.restrict_dropped <- p.restrict_dropped + (before - after));
      kept

let verify ?probe idx reader pred candidates =
  tick probe (fun p -> p.docs_verified <- p.docs_verified + Fileset.cardinal candidates);
  Fileset.filter
    (fun id ->
      match Index.doc_path idx id with
      | None -> false
      | Some path -> (
          match reader path with None -> false | Some content -> pred content))
    candidates

(* Cache-backed verification: the same shape, but the predicate runs on a
   shared [doc_entry], so each file is read and tokenized at most once per
   pass no matter how many sibling directories verify it. *)
let verify_entry ?probe cache idx reader pred candidates =
  tick probe (fun p -> p.docs_verified <- p.docs_verified + Fileset.cardinal candidates);
  Fileset.filter
    (fun id ->
      match Index.doc_path idx id with
      | None -> false
      | Some path -> (
          match cached_entry cache reader path with None -> false | Some e -> pred e))
    candidates

let expanded ?probe candidates =
  tick probe (fun p ->
      p.candidates_expanded <- p.candidates_expanded + Fileset.cardinal candidates);
  candidates

let search_word ?probe ?within ?under ?cache idx reader w =
  let w = String.lowercase_ascii w in
  tick probe (fun p ->
      p.postings_scanned <- p.postings_scanned + Index.term_cost ?under idx w);
  let candidates =
    restrict ?probe within (expanded ?probe (Index.candidate_docs ?within ?under idx w))
  in
  match cache with
  | None -> verify ?probe idx reader (fun content -> contains_word idx ~content ~word:w) candidates
  | Some c -> verify_entry ?probe c idx reader (fun e -> entry_has_word idx e w) candidates

let search_phrase ?probe ?within ?under ?cache idx reader words =
  match words with
  | [] -> Fileset.empty
  | [ w ] -> search_word ?probe ?within ?under ?cache idx reader w
  | _ ->
      let candidates =
        if Index.use_cas idx then begin
          (* Doc-granular postings: fetch every word's candidate set (cached
             per term) and hand the lot to the container-level rarest-first
             [inter_many] — no pairwise intermediates. *)
          let sets =
            List.map
              (fun w ->
                tick probe (fun p ->
                    p.postings_scanned <- p.postings_scanned + Index.term_cost ?under idx w);
                Index.candidate_docs ?under idx w)
              words
          in
          let sets = match within with Some w -> w :: sets | None -> sets in
          Fileset.inter_many sets
        end
        else begin
          (* Rarest-first over block postings: expand the cheapest posting
             first and feed the accumulated intersection to each later
             expansion as its [within] — {!Index.expand}'s delta-restricted
             path then tests the shrinking candidate set against the block
             bitmap instead of expanding every block, and an empty
             intersection stops before touching the remaining postings.
             Verification keeps the original word order. *)
          let ranked =
            List.stable_sort
              (fun a b -> compare (Index.term_cost idx a) (Index.term_cost idx b))
              words
          in
          match ranked with
          | [] -> Fileset.empty
          | w0 :: rest ->
              tick probe (fun p ->
                  p.postings_scanned <- p.postings_scanned + Index.term_cost idx w0);
              List.fold_left
                (fun acc w ->
                  if Fileset.is_empty acc then acc
                  else begin
                    tick probe (fun p ->
                        p.postings_scanned <- p.postings_scanned + Index.term_cost idx w);
                    Index.candidate_docs ~within:acc idx w
                  end)
                (Index.candidate_docs ?within idx w0)
                rest
        end
      in
      let candidates = restrict ?probe within (expanded ?probe candidates) in
      (match cache with
      | None ->
          verify ?probe idx reader (fun content -> contains_phrase ~content words) candidates
      | Some c -> verify_entry ?probe c idx reader (fun e -> entry_has_phrase e words) candidates)

let search_approx ?probe ?within ?cache idx reader ~word ~errors =
  let word = String.lowercase_ascii word in
  let candidates = expanded ?probe (Index.candidate_docs_approx ?within idx ~word ~errors) in
  tick probe (fun p -> p.postings_scanned <- p.postings_scanned + Fileset.cardinal candidates);
  let candidates = restrict ?probe within candidates in
  match cache with
  | None ->
      let pred content =
        let found = ref false in
        Tokenizer.iter_words content (fun x ->
            if Agrep.word_matches ~pattern:(key idx word) ~errors (key idx x) then found := true)
        ;
        !found
      in
      verify ?probe idx reader pred candidates
  | Some c ->
      verify_entry ?probe c idx reader
        (fun e ->
          List.exists
            (fun x -> Agrep.word_matches ~pattern:(key idx word) ~errors (key idx x))
            (entry_tokens e))
        candidates

let search_substring ?probe idx reader pattern =
  let pred content = Agrep.find_exact ~pattern content <> None in
  verify ?probe idx reader pred (expanded ?probe (Index.universe idx))

let contains_substring hay needle =
  Agrep.find_exact ~pattern:needle hay <> None

let search_regex ?probe ?within ?under ?cache idx reader pattern =
  let re = Regex.compile pattern in
  let candidates =
    (* A literal run required by every match must appear inside some token
       of the document; scanning the vocabulary for it is sound as long as
       the vocabulary holds raw (unstemmed) tokens.  Tokens longer than
       [max_word_len] were truncated, so they are always candidates. *)
    match Regex.required_word re with
    | Some run when (not (Index.stemming idx)) && String.length run <= Tokenizer.max_word_len
      ->
        List.fold_left
          (fun acc w ->
            if String.length w = Tokenizer.max_word_len || contains_substring w run then begin
              tick probe (fun p ->
                  p.postings_scanned <- p.postings_scanned + Index.term_cost ?under idx w);
              Fileset.union acc (Index.candidate_docs ?within ?under idx w)
            end
            else acc)
          Fileset.empty (Index.vocabulary idx)
    | Some _ | None -> ( match within with Some w -> w | None -> Index.universe idx)
  in
  let candidates = restrict ?probe within (expanded ?probe candidates) in
  match cache with
  | None -> verify ?probe idx reader (fun content -> Regex.matches re content) candidates
  | Some c -> verify_entry ?probe c idx reader (fun e -> Regex.matches re e.de_content) candidates

let matching_lines idx reader ~path ~query_words =
  match reader path with
  | None -> []
  | Some content ->
      let keys = List.map (fun w -> key idx (String.lowercase_ascii w)) query_words in
      let hits = ref [] in
      Tokenizer.iter_lines content (fun lineno line ->
          let line_has = ref false in
          Tokenizer.iter_words line (fun x ->
              if List.mem (key idx x) keys then line_has := true);
          if !line_has then hits := (lineno, line) :: !hits);
      List.rev !hits

(* -- per-pass term memo ---------------------------------------------------- *)

type term_memo = {
  tm_lock : Mutex.t;
  tm_tbl : (string, Fileset.t) Hashtbl.t;
  mutable tm_hits : int;
  mutable tm_misses : int;
}

type memo_stats = { memo_hits : int; memo_misses : int; memo_entries : int }

let term_memo () =
  { tm_lock = Mutex.create (); tm_tbl = Hashtbl.create 64; tm_hits = 0; tm_misses = 0 }

let term_memo_stats m =
  Mutex.lock m.tm_lock;
  let s =
    { memo_hits = m.tm_hits; memo_misses = m.tm_misses; memo_entries = Hashtbl.length m.tm_tbl }
  in
  Mutex.unlock m.tm_lock;
  s

(* Concurrent misses on the same key may both compute; the value is a pure
   function of the frozen index, so last-write-wins is harmless and cheaper
   than holding the lock across an evaluation. *)
let memoized m k compute =
  Mutex.lock m.tm_lock;
  match Hashtbl.find_opt m.tm_tbl k with
  | Some v ->
      m.tm_hits <- m.tm_hits + 1;
      Mutex.unlock m.tm_lock;
      v
  | None ->
      m.tm_misses <- m.tm_misses + 1;
      Mutex.unlock m.tm_lock;
      let v = compute () in
      Mutex.lock m.tm_lock;
      if not (Hashtbl.mem m.tm_tbl k) then Hashtbl.replace m.tm_tbl k v;
      Mutex.unlock m.tm_lock;
      v

(* -- the hoisted evaluator -------------------------------------------------

   One {!Eval.env} closure record used to be allocated per evaluation; a
   settle pass over thousands of directories re-built identical closures
   thousands of times.  The evaluator hoists everything per-index (index,
   reader, caches, the env itself) and threads the two per-query bits —
   probe and restriction — through mutable fields read by the closures.  An
   evaluator therefore serves one domain at a time; parallel passes give
   each task its own evaluator over the {e shared} memo and cache. *)

type evaluator = {
  ev_idx : Index.t;
  ev_reader : reader;
  ev_memo : term_memo option;
  ev_cache : doc_cache option;
  mutable ev_probe : probe option;
  mutable ev_restrict : Fileset.t option;
  mutable ev_under : string option;
  mutable ev_env : Hac_query.Eval.env option;
}

(* Memoize only unrestricted term evaluations: a [?within] comes from AND
   threading or delta restriction and varies call to call, while the
   unrestricted result is a pure function of the frozen index — exactly the
   work identical sibling queries duplicate. *)
let memo_term ev ~within k compute =
  match (ev.ev_memo, within) with
  | Some m, None -> memoized m k compute
  | _ -> compute ()

let make_env ev ~attr ~dirref =
  let term () = tick ev.ev_probe (fun p -> p.terms <- p.terms + 1) in
  (* Scope-pruned term results genuinely differ per scope hint, so the hint
     is part of the memo key. *)
  let keyed k = match ev.ev_under with None -> k | Some u -> k ^ "@" ^ u in
  {
    Hac_query.Eval.universe =
      (fun () ->
        (* Under a restriction [*] and top-level NOT never need more than
           the restriction itself; without one they need the live-document
           set, computed once per pass via the memo. *)
        match ev.ev_restrict with
        | Some s -> s
        | None ->
            memo_term ev ~within:None "u:" (fun () -> Index.universe ev.ev_idx));
    word =
      (fun ?within w ->
        term ();
        memo_term ev ~within (keyed ("w:" ^ w)) (fun () ->
            search_word ?probe:ev.ev_probe ?within ?under:ev.ev_under ?cache:ev.ev_cache
              ev.ev_idx ev.ev_reader w));
    phrase =
      (fun ?within ws ->
        term ();
        memo_term ev ~within (keyed ("p:" ^ String.concat "\x00" ws)) (fun () ->
            search_phrase ?probe:ev.ev_probe ?within ?under:ev.ev_under ?cache:ev.ev_cache
              ev.ev_idx ev.ev_reader ws));
    approx =
      (fun ?within w k ->
        term ();
        memo_term ev ~within (Printf.sprintf "x:%d:%s" k w) (fun () ->
            search_approx ?probe:ev.ev_probe ?within ?cache:ev.ev_cache ev.ev_idx ev.ev_reader
              ~word:w ~errors:k));
    attr =
      (fun ?within k v ->
        memo_term ev ~within (keyed ("a:" ^ k ^ "\x00" ^ v)) (fun () -> attr ?within k v));
    regex =
      (fun ?within r ->
        term ();
        memo_term ev ~within (keyed ("r:" ^ r)) (fun () ->
            match
              search_regex ?probe:ev.ev_probe ?within ?under:ev.ev_under ?cache:ev.ev_cache
                ev.ev_idx ev.ev_reader r
            with
            | s -> s
            | exception Regex.Parse_error _ -> Fileset.empty));
    (* Directory scopes move as the pass applies results: never memoized. *)
    dirref;
  }

let evaluator ?memo ?cache idx reader ~attr ~dirref =
  let ev =
    {
      ev_idx = idx;
      ev_reader = reader;
      ev_memo = memo;
      ev_cache = cache;
      ev_probe = None;
      ev_restrict = None;
      ev_under = None;
      ev_env = None;
    }
  in
  ev.ev_env <- Some (make_env ev ~attr ~dirref);
  ev

let eval_with ev ?probe ?restrict_to ?under q =
  ev.ev_probe <- probe;
  ev.ev_restrict <- restrict_to;
  ev.ev_under <- under;
  let env = match ev.ev_env with Some e -> e | None -> assert false in
  Hac_query.Eval.eval ?within:restrict_to env q

let eval ?probe ?restrict_to ?under idx reader ~attr ~dirref q =
  eval_with (evaluator idx reader ~attr ~dirref) ?probe ?restrict_to ?under q
