module Fileset = Hac_bitset.Fileset

type reader = string -> string option

(* Per-evaluation profiling accumulator.  A plain mutable record rather
   than a metrics dependency: callers that care allocate one, pass it down,
   and flush the totals wherever they like; the [None] fast path costs one
   match per call site. *)
type probe = {
  mutable postings_scanned : int;
  mutable candidates_expanded : int;
  mutable docs_verified : int;
  mutable restrict_kept : int;
  mutable restrict_dropped : int;
  mutable terms : int;
}

let new_probe () =
  {
    postings_scanned = 0;
    candidates_expanded = 0;
    docs_verified = 0;
    restrict_kept = 0;
    restrict_dropped = 0;
    terms = 0;
  }

let tick probe f = match probe with Some p -> f p | None -> ()

let key idx w = if Index.stemming idx then Stemmer.stem w else w

let contains_word idx ~content ~word =
  let w = String.lowercase_ascii word in
  if Index.stemming idx then begin
    (* Stemmed comparison needs materialised tokens. *)
    let wk = Stemmer.stem w in
    let found = ref false in
    Tokenizer.iter_words content (fun x -> if Stemmer.stem x = wk then found := true);
    !found
  end
  else Tokenizer.contains_word content w

let contains_phrase ~content words =
  match List.map String.lowercase_ascii words with
  | [] -> true
  | first :: rest ->
      (* Slide over the token stream keeping how much of the phrase each
         in-flight match has consumed; token lists are short-lived. *)
      let tokens = Tokenizer.words content in
      let rec scan = function
        | [] -> false
        | t :: tl -> (t = first && tail_matches rest tl) || scan tl
      and tail_matches need toks =
        match (need, toks) with
        | [], _ -> true
        | _, [] -> false
        | n :: nrest, t :: trest -> t = n && tail_matches nrest trest
      in
      scan tokens

let restrict ?probe within candidates =
  match within with
  | None -> candidates
  | Some w ->
      let kept = Fileset.inter w candidates in
      tick probe (fun p ->
          let before = Fileset.cardinal candidates and after = Fileset.cardinal kept in
          p.restrict_kept <- p.restrict_kept + after;
          p.restrict_dropped <- p.restrict_dropped + (before - after));
      kept

let verify ?probe idx reader pred candidates =
  tick probe (fun p -> p.docs_verified <- p.docs_verified + Fileset.cardinal candidates);
  Fileset.filter
    (fun id ->
      match Index.doc_path idx id with
      | None -> false
      | Some path -> (
          match reader path with None -> false | Some content -> pred content))
    candidates

let expanded ?probe candidates =
  tick probe (fun p ->
      p.candidates_expanded <- p.candidates_expanded + Fileset.cardinal candidates);
  candidates

let search_word ?probe ?within idx reader w =
  let w = String.lowercase_ascii w in
  tick probe (fun p -> p.postings_scanned <- p.postings_scanned + Index.term_cost idx w);
  verify ?probe idx reader
    (fun content -> contains_word idx ~content ~word:w)
    (restrict ?probe within (expanded ?probe (Index.candidate_docs ?within idx w)))

let search_phrase ?probe ?within idx reader words =
  match words with
  | [] -> Fileset.empty
  | [ w ] -> search_word ?probe ?within idx reader w
  | _ ->
      let candidates =
        List.fold_left
          (fun acc w ->
            tick probe (fun p ->
                p.postings_scanned <- p.postings_scanned + Index.term_cost idx w);
            let c = Index.candidate_docs ?within idx w in
            match acc with None -> Some c | Some a -> Some (Fileset.inter a c))
          None words
      in
      let candidates = Option.value candidates ~default:Fileset.empty in
      verify ?probe idx reader
        (fun content -> contains_phrase ~content words)
        (restrict ?probe within (expanded ?probe candidates))

let search_approx ?probe ?within idx reader ~word ~errors =
  let word = String.lowercase_ascii word in
  let pred content =
    let found = ref false in
    Tokenizer.iter_words content (fun x ->
        if Agrep.word_matches ~pattern:(key idx word) ~errors (key idx x) then found := true);
    !found
  in
  let candidates = expanded ?probe (Index.candidate_docs_approx ?within idx ~word ~errors) in
  tick probe (fun p -> p.postings_scanned <- p.postings_scanned + Fileset.cardinal candidates);
  verify ?probe idx reader pred (restrict ?probe within candidates)

let search_substring ?probe idx reader pattern =
  let pred content = Agrep.find_exact ~pattern content <> None in
  verify ?probe idx reader pred (expanded ?probe (Index.universe idx))

let contains_substring hay needle =
  Agrep.find_exact ~pattern:needle hay <> None

let search_regex ?probe ?within idx reader pattern =
  let re = Regex.compile pattern in
  let candidates =
    (* A literal run required by every match must appear inside some token
       of the document; scanning the vocabulary for it is sound as long as
       the vocabulary holds raw (unstemmed) tokens.  Tokens longer than
       [max_word_len] were truncated, so they are always candidates. *)
    match Regex.required_word re with
    | Some run when (not (Index.stemming idx)) && String.length run <= Tokenizer.max_word_len
      ->
        List.fold_left
          (fun acc w ->
            if String.length w = Tokenizer.max_word_len || contains_substring w run then begin
              tick probe (fun p ->
                  p.postings_scanned <- p.postings_scanned + Index.term_cost idx w);
              Fileset.union acc (Index.candidate_docs ?within idx w)
            end
            else acc)
          Fileset.empty (Index.vocabulary idx)
    | Some _ | None -> ( match within with Some w -> w | None -> Index.universe idx)
  in
  verify ?probe idx reader
    (fun content -> Regex.matches re content)
    (restrict ?probe within (expanded ?probe candidates))

let matching_lines idx reader ~path ~query_words =
  match reader path with
  | None -> []
  | Some content ->
      let keys = List.map (fun w -> key idx (String.lowercase_ascii w)) query_words in
      let hits = ref [] in
      Tokenizer.iter_lines content (fun lineno line ->
          let line_has = ref false in
          Tokenizer.iter_words line (fun x ->
              if List.mem (key idx x) keys then line_has := true);
          if !line_has then hits := (lineno, line) :: !hits);
      List.rev !hits

let eval ?probe ?restrict_to idx reader ~attr ~dirref q =
  let term () = tick probe (fun p -> p.terms <- p.terms + 1) in
  let env =
    {
      Hac_query.Eval.universe =
        (* Under a restriction [*] and top-level NOT never need more than the
           restriction itself; without one they need the live-document set. *)
        lazy (match restrict_to with Some s -> s | None -> Index.universe idx);
      word =
        (fun ?within w ->
          term ();
          search_word ?probe ?within idx reader w);
      phrase =
        (fun ?within ws ->
          term ();
          search_phrase ?probe ?within idx reader ws);
      approx =
        (fun ?within w k ->
          term ();
          search_approx ?probe ?within idx reader ~word:w ~errors:k);
      attr;
      regex =
        (fun ?within r ->
          term ();
          match search_regex ?probe ?within idx reader r with
          | s -> s
          | exception Regex.Parse_error _ -> Fileset.empty);
      dirref;
    }
  in
  Hac_query.Eval.eval ?within:restrict_to env q
