(* Combined content-and-structure index.

   Per-term postings are partitioned along a path dimension: every document
   carries a {e label} — the depth-<=2 prefix of its directory — and each
   term keeps one posting list per label.  A path-scoped term lookup
   ({/path} AND term) unions only the partitions whose label can contain
   documents under the scope, so scoped candidate generation touches the
   relevant slice of the posting list instead of expanding everything and
   filtering against a subtree set afterwards.

   Laziness contract (same as the Glimpse block index): partitions are
   supersets of the truth.  Removing a document does not erase its postings
   (the [alive] set is intersected in), and renaming a document does not move
   its old postings between partitions — the document joins the [relabeled]
   set, which is unioned into every scoped answer so it stays a sound
   superset.  Verification cleans candidates; {!reset} (on rebuild) reclaims.

   Concurrency: all mutation happens on the main domain between settle
   passes.  During passes, worker domains only read — the lone mutable reads
   are cached snapshot fills, which go through [t.lock]. *)

module Fileset = Hac_bitset.Fileset

(* Growable posting vector: doc ids appended in arrival order.  During a
   rebuild ids arrive strictly increasing; incremental updates may append
   out of order or duplicate (a re-posted document), which only costs a
   sort_uniq at the next snapshot. *)
type vec = {
  mutable v : int array;
  mutable len : int;
  mutable sorted : bool;
  mutable snap : Fileset.t option;
}

let vec_create () = { v = Array.make 8 0; len = 0; sorted = true; snap = None }

let vec_push p id =
  (* Consecutive tokens of one document post the same id back to back. *)
  if p.len > 0 && p.v.(p.len - 1) = id then ()
  else begin
    if p.len = Array.length p.v then begin
      let v = Array.make (2 * p.len) 0 in
      Array.blit p.v 0 v 0 p.len;
      p.v <- v
    end;
    if p.len > 0 && p.v.(p.len - 1) > id then p.sorted <- false;
    p.v.(p.len) <- id;
    p.len <- p.len + 1;
    p.snap <- None
  end

let vec_snapshot p =
  match p.snap with
  | Some s -> s
  | None ->
      let s =
        if p.sorted then
          Fileset.of_increasing_iter (fun f ->
              let last = ref (-1) in
              for i = 0 to p.len - 1 do
                if p.v.(i) <> !last then begin
                  f p.v.(i);
                  last := p.v.(i)
                end
              done)
        else begin
          let a = Array.sub p.v 0 p.len in
          Array.sort compare a;
          Fileset.of_increasing_iter (fun f ->
              let last = ref (-1) in
              Array.iter
                (fun id ->
                  if id <> !last then begin
                    f id;
                    last := id
                  end)
                a)
        end
      in
      p.snap <- Some s;
      s

(* Estimated cardinality without forcing a snapshot: the appended length is
   an upper bound (duplicates only arise from re-posted documents). *)
let vec_card p = match p.snap with Some s -> Fileset.cardinal s | None -> p.len

type entry = {
  parts : (int, vec) Hashtbl.t; (* label id -> postings *)
  mutable all : Fileset.t option; (* cached union of all partitions *)
}

type t = {
  labels : (string, int) Hashtbl.t;
  mutable label_names : string array;
  mutable label_count : int;
  mutable doc_label : int array; (* doc id -> label id, -1 when unknown *)
  terms : (string, entry) Hashtbl.t;
  alive : Fileset.Builder.t;
  relabeled : Fileset.Builder.t;
  lock : Mutex.t;
}

let create () =
  {
    labels = Hashtbl.create 64;
    label_names = Array.make 16 "";
    label_count = 0;
    doc_label = Array.make 64 (-1);
    terms = Hashtbl.create 4096;
    alive = Fileset.Builder.create ();
    relabeled = Fileset.Builder.create ();
    lock = Mutex.create ();
  }

let reset t =
  Hashtbl.reset t.labels;
  t.label_count <- 0;
  Array.fill t.doc_label 0 (Array.length t.doc_label) (-1);
  Hashtbl.reset t.terms;
  Fileset.Builder.clear t.alive;
  Fileset.Builder.clear t.relabeled

(* -- labels ---------------------------------------------------------------- *)

let label_depth = 2

(* Depth-<=2 prefix of the document's directory: "/a/b/c/f.txt" -> "/a/b",
   "/a/f.txt" -> "/a", "/f.txt" -> "/". *)
let label_of_path path =
  let n = String.length path in
  (* The label is the directory part truncated at the [label_depth]-th slash;
     the last component is the file name and never part of the label. *)
  let dir_end =
    match String.rindex_opt path '/' with Some 0 -> 1 | Some i -> i | None -> n
  in
  let cut = ref dir_end in
  let slashes = ref 0 in
  (try
     for i = 1 to dir_end - 1 do
       if path.[i] = '/' then begin
         incr slashes;
         if !slashes = label_depth then begin
           cut := i;
           raise Exit
         end
       end
     done
   with Exit -> ());
  String.sub path 0 (max 1 !cut)

let label_id t name =
  match Hashtbl.find_opt t.labels name with
  | Some id -> id
  | None ->
      let id = t.label_count in
      if id >= Array.length t.label_names then begin
        let names = Array.make (2 * Array.length t.label_names) "" in
        Array.blit t.label_names 0 names 0 id;
        t.label_names <- names
      end;
      t.label_names.(id) <- name;
      t.label_count <- id + 1;
      Hashtbl.replace t.labels name id;
      id

let ensure_doc t id =
  let n = Array.length t.doc_label in
  if id >= n then begin
    let a = Array.make (max (id + 1) (2 * n)) (-1) in
    Array.blit t.doc_label 0 a 0 n;
    t.doc_label <- a
  end

(* Record (or refresh) a document's label.  A label change — a rename across
   the partition dimension — parks the document in [relabeled]: its old
   postings stay where they are, and every scoped answer unions [relabeled]
   to keep the superset sound. *)
let note_doc t id ~path =
  ensure_doc t id;
  let lid = label_id t (label_of_path path) in
  let old = t.doc_label.(id) in
  if old >= 0 && old <> lid then Fileset.Builder.add t.relabeled id;
  t.doc_label.(id) <- lid;
  Fileset.Builder.add t.alive id

let note_remove t id =
  if id >= 0 && id < Array.length t.doc_label then Fileset.Builder.remove t.alive id

let alive t = Fileset.Builder.snapshot t.alive

let relabeled_count t = Fileset.Builder.cardinal t.relabeled

(* -- posting --------------------------------------------------------------- *)

let word_key w = "w:" ^ w

let attr_key k v = "a:" ^ k ^ "\x00" ^ v

let post t key id =
  let e =
    match Hashtbl.find_opt t.terms key with
    | Some e -> e
    | None ->
        let e = { parts = Hashtbl.create 1; all = None } in
        Hashtbl.replace t.terms key e;
        e
  in
  let lid = if id < Array.length t.doc_label then t.doc_label.(id) else -1 in
  let lid = if lid < 0 then label_id t "/" else lid in
  let p =
    match Hashtbl.find_opt e.parts lid with
    | Some p -> p
    | None ->
        let p = vec_create () in
        Hashtbl.replace e.parts lid p;
        p
  in
  vec_push p id;
  e.all <- None

let post_word t id w = post t (word_key w) id

let post_attr t id k v = post t (attr_key k v) id

(* -- scoped lookup ----------------------------------------------------------

   Which labels can hold documents under scope [P]?  A document under [P]
   has a directory extending [P], so its label (the depth-<=2 prefix of that
   directory) is determined by [P]'s own depth:

   - depth(P) >= 2: the label is exactly the depth-2 prefix of [P];
   - depth(P) = 1: any label equal to [P] or starting with [P ^ "/"];
   - P = "/": any label (callers should pass [?under:None] instead). *)

let path_depth p =
  if p = "/" then 0
  else begin
    let d = ref 0 in
    String.iter (fun c -> if c = '/' then incr d) p;
    !d
  end

let covered_labels t under =
  match path_depth under with
  | 0 -> None (* all labels *)
  | d when d >= label_depth -> (
      let lbl = label_of_path (under ^ "/x") in
      match Hashtbl.find_opt t.labels lbl with Some id -> Some [ id ] | None -> Some [])
  | _ ->
      let prefix = under ^ "/" in
      let ids =
        Hashtbl.fold
          (fun name id acc ->
            if name = under || String.starts_with ~prefix name then id :: acc else acc)
          t.labels []
      in
      Some ids

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let union_all e =
  match e.all with
  | Some s -> s
  | None ->
      let s =
        Hashtbl.fold (fun _ p acc -> Fileset.union (vec_snapshot p) acc) e.parts
          Fileset.empty
      in
      e.all <- Some s;
      s

let candidates ?under t key =
  match Hashtbl.find_opt t.terms key with
  | None -> Fileset.empty
  | Some e ->
      let raw =
        locked t (fun () ->
            match under with
            | None -> union_all e
            | Some under -> (
                match covered_labels t under with
                | None -> union_all e
                | Some lids ->
                    let part_union =
                      List.fold_left
                        (fun acc lid ->
                          match Hashtbl.find_opt e.parts lid with
                          | Some p -> Fileset.union (vec_snapshot p) acc
                          | None -> acc)
                        Fileset.empty lids
                    in
                    (* Renamed documents may sit in a partition the scope no
                       longer covers; the relabeled set restores the superset. *)
                    if Fileset.Builder.cardinal t.relabeled = 0 then part_union
                    else Fileset.union part_union (Fileset.Builder.snapshot t.relabeled)))
      in
      Fileset.inter raw (Fileset.Builder.snapshot t.alive)

let word_candidates ?under t w = candidates ?under t (word_key w)

let attr_candidates ?under t k v = candidates ?under t (attr_key k v)

(* -- measured costs ----------------------------------------------------------

   Candidate-cardinality estimate from partition sizes alone: the sum of the
   covered partitions' cardinalities (plus the relabeled drift), no set
   materialization.  Unlike the block estimate this reflects the documents
   the term actually touches, per scope. *)

let cost ?under t key =
  match Hashtbl.find_opt t.terms key with
  | None -> 0
  | Some e ->
      locked t (fun () ->
          let sum_all () = Hashtbl.fold (fun _ p acc -> acc + vec_card p) e.parts 0 in
          match under with
          | None -> sum_all ()
          | Some under -> (
              match covered_labels t under with
              | None -> sum_all ()
              | Some lids ->
                  List.fold_left
                    (fun acc lid ->
                      match Hashtbl.find_opt e.parts lid with
                      | Some p -> acc + vec_card p
                      | None -> acc)
                    (Fileset.Builder.cardinal t.relabeled)
                    lids))

let word_cost ?under t w = cost ?under t (word_key w)

let attr_cost ?under t k v = cost ?under t (attr_key k v)

(* Every term's live posting set (all partitions unioned, dead documents
   masked) — what a segment dump persists.  Forces snapshots, like stats. *)
let iter_terms t f =
  locked t (fun () ->
      let live = Fileset.Builder.snapshot t.alive in
      Hashtbl.iter
        (fun key e ->
          let s = Fileset.inter (union_all e) live in
          if Fileset.cardinal s > 0 then f key s)
        t.terms)

(* -- accounting -------------------------------------------------------------- *)

type stats = {
  labels : int;
  terms : int;
  partitions : int;
  postings : int; (* appended postings, duplicates included *)
  bytes : int; (* compressed snapshot payload *)
  raw_bytes : int; (* posting-vector backing store *)
  uncompressed_bytes : int; (* one whole-universe bitmap per term *)
  arrays : int;
  bitmaps : int;
  run_containers : int;
  relabeled : int;
}

(* Forces every partition snapshot — an explicit stats-time cost, not paid on
   the indexing or query path. *)
let stats ?(universe = 0) t =
  locked t (fun () ->
      let partitions = ref 0 and postings = ref 0 and raw = ref 0 in
      let arrays = ref 0 and bitmaps = ref 0 and runs = ref 0 and bytes = ref 0 in
      Hashtbl.iter
        (fun _ e ->
          Hashtbl.iter
            (fun _ p ->
              incr partitions;
              postings := !postings + p.len;
              raw := !raw + (Array.length p.v * 8);
              let st = Fileset.container_stats (vec_snapshot p) in
              arrays := !arrays + st.arrays;
              bitmaps := !bitmaps + st.bitmaps;
              runs := !runs + st.run_containers;
              bytes := !bytes + st.bytes)
            e.parts)
        t.terms;
      let per_term_bitmap = (universe + 7) / 8 in
      {
        labels = t.label_count;
        terms = Hashtbl.length t.terms;
        partitions = !partitions;
        postings = !postings;
        bytes = !bytes;
        raw_bytes = !raw;
        uncompressed_bytes = Hashtbl.length t.terms * per_term_bitmap;
        arrays = !arrays;
        bitmaps = !bitmaps;
        run_containers = !runs;
        relabeled = Fileset.Builder.cardinal t.relabeled;
      })
