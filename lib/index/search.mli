(** Candidate verification and content retrieval over an {!Index.t}.

    The index answers with block-granular candidate sets; the functions here
    read the candidate documents and keep only the ones whose contents
    actually match — Glimpse's second level.  Content access is abstracted
    as a [reader] so the same code serves the local VFS, remote namespaces
    and tests. *)

type reader = string -> string option
(** [reader path] is the document's contents, or [None] when unreadable. *)

type probe = {
  mutable postings_scanned : int;
      (** Index cost units consulted ({!Index.term_cost} per word looked up;
          candidate cardinality for approximate lookups). *)
  mutable candidates_expanded : int;
      (** Documents in candidate sets before restriction/verification. *)
  mutable docs_verified : int;
      (** Documents whose contents were read and checked. *)
  mutable restrict_kept : int;
      (** Candidates surviving a [?within] restriction. *)
  mutable restrict_dropped : int;
      (** Candidates removed by a [?within] restriction — together with
          [restrict_kept] this gives the restriction hit rate. *)
  mutable terms : int;  (** Query terms evaluated through {!eval}. *)
}
(** Per-evaluation profiling accumulator.  Pass one [?probe] through a
    search to collect where the work went; omitting it costs nothing
    measurable.  Purely observational — never affects results. *)

val new_probe : unit -> probe
(** All-zero probe. *)

val search_word :
  ?probe:probe ->
  ?within:Hac_bitset.Fileset.t ->
  Index.t ->
  reader ->
  string ->
  Hac_bitset.Fileset.t
(** Documents that contain the word (index candidates, then verified whole-
    word containment; stemming follows the index's setting).  [?within]
    restricts the candidates before verification — conjunctive evaluation
    passes its accumulated result here so ever fewer documents are read. *)

val search_phrase :
  ?probe:probe ->
  ?within:Hac_bitset.Fileset.t ->
  Index.t ->
  reader ->
  string list ->
  Hac_bitset.Fileset.t
(** Documents containing the words consecutively, in order.  Candidate set is
    the intersection of the per-word candidates. *)

val search_approx :
  ?probe:probe ->
  ?within:Hac_bitset.Fileset.t ->
  Index.t ->
  reader ->
  word:string ->
  errors:int ->
  Hac_bitset.Fileset.t
(** Documents containing some word within the given edit distance — the
    [~term] query form. *)

val search_substring : ?probe:probe -> Index.t -> reader -> string -> Hac_bitset.Fileset.t
(** Documents whose raw contents contain the byte string (bitap scan over
    every live document — no index help; for short or non-word patterns). *)

val search_regex :
  ?probe:probe ->
  ?within:Hac_bitset.Fileset.t ->
  Index.t ->
  reader ->
  string ->
  Hac_bitset.Fileset.t
(** Documents whose raw contents match the regular expression (the [/re/]
    query term).  When the pattern syntactically requires a literal word
    ({!Regex.required_word}) and the index is unstemmed, candidates are
    narrowed through the vocabulary first, as Glimpse extracts literals from
    regular expressions; otherwise every live document is scanned.  Raises
    {!Regex.Parse_error} on a malformed pattern. *)

val matching_lines :
  Index.t -> reader -> path:string -> query_words:string list -> (int * string) list
(** Lines (1-based number, text) of the document that contain at least one
    of the query words — what the paper's [sact] shows the user for a link
    inside a semantic directory. *)

val contains_word : Index.t -> content:string -> word:string -> bool
(** Whole-word containment test consistent with the index's stemming. *)

val contains_phrase : content:string -> string list -> bool
(** Consecutive-words containment test (exact words, no stemming). *)

val eval :
  ?probe:probe ->
  ?restrict_to:Hac_bitset.Fileset.t ->
  Index.t ->
  reader ->
  attr:(?within:Hac_bitset.Fileset.t -> string -> string -> Hac_bitset.Fileset.t) ->
  dirref:(?within:Hac_bitset.Fileset.t -> Hac_query.Ast.dirref -> Hac_bitset.Fileset.t) ->
  Hac_query.Ast.t ->
  Hac_bitset.Fileset.t
(** Evaluate a parsed query against this index: the standard {!Eval.env}
    wiring (word/phrase/approx/regex answered by the searches above, with
    malformed regex terms evaluating to the empty set; attributes and
    directory references supplied by the caller).  [?restrict_to] evaluates
    the query only over the given documents — candidate expansion, content
    verification and NOT's universe all stay inside the set, which is what
    makes delta resync O(touched docs) ({!Eval.eval}'s restriction-pushdown
    contract guarantees [eval ~restrict_to:S q = S ∩ eval q]). *)
