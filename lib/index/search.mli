(** Candidate verification and content retrieval over an {!Index.t}.

    The index answers with block-granular candidate sets; the functions here
    read the candidate documents and keep only the ones whose contents
    actually match — Glimpse's second level.  Content access is abstracted
    as a [reader] so the same code serves the local VFS, remote namespaces
    and tests. *)

type reader = string -> string option
(** [reader path] is the document's contents, or [None] when unreadable. *)

type probe = {
  mutable postings_scanned : int;
      (** Index cost units consulted ({!Index.term_cost} per word looked up;
          candidate cardinality for approximate lookups). *)
  mutable candidates_expanded : int;
      (** Documents in candidate sets before restriction/verification. *)
  mutable docs_verified : int;
      (** Documents whose contents were read and checked. *)
  mutable restrict_kept : int;
      (** Candidates surviving a [?within] restriction. *)
  mutable restrict_dropped : int;
      (** Candidates removed by a [?within] restriction — together with
          [restrict_kept] this gives the restriction hit rate. *)
  mutable terms : int;  (** Query terms evaluated through {!eval}. *)
}
(** Per-evaluation profiling accumulator.  Pass one [?probe] through a
    search to collect where the work went; omitting it costs nothing
    measurable.  Purely observational — never affects results. *)

val new_probe : unit -> probe
(** All-zero probe. *)

(** {1 Per-pass shared caches}

    Both caches live for exactly one settle pass — the window during which
    the index and every document's content are frozen — so dropping them at
    the end of the pass is the whole invalidation story.  Both are safe to
    share across domains. *)

type doc_cache
(** A bounded document content/token cache.  The first verification of a
    path reads it; later verifications (by any sibling directory, from any
    domain) reuse the content and the lazily-built token structures, so each
    file is read and tokenized at most once per pass.  Unreadable paths are
    cached too.  Documents past the byte budget are served uncached. *)

type cache_stats = {
  cache_hits : int;
  cache_misses : int;
  cache_uncached : int;  (** Lookups past the byte budget, served uncached. *)
  cache_docs : int;
  cache_bytes : int;
}

val doc_cache : ?max_bytes:int -> unit -> doc_cache
(** An empty cache (default budget 32 MiB of document bytes). *)

val doc_cache_stats : doc_cache -> cache_stats

val cached_content : doc_cache -> reader -> string -> string option
(** Read through the cache: the document's contents, or [None] when
    unreadable (also cached). *)

type term_memo
(** A per-pass memo of {e unrestricted} term results, keyed by term.  Across
    sibling directories whose queries share [word:]/[attr:]/phrase subterms,
    each distinct subterm is evaluated once per pass. *)

type memo_stats = { memo_hits : int; memo_misses : int; memo_entries : int }

val term_memo : unit -> term_memo

val term_memo_stats : term_memo -> memo_stats

val search_word :
  ?probe:probe ->
  ?within:Hac_bitset.Fileset.t ->
  ?under:string ->
  ?cache:doc_cache ->
  Index.t ->
  reader ->
  string ->
  Hac_bitset.Fileset.t
(** Documents that contain the word (index candidates, then verified whole-
    word containment; stemming follows the index's setting).  [?within]
    restricts the candidates before verification — conjunctive evaluation
    passes its accumulated result here so ever fewer documents are read.
    [?under] is the CAS scope hint ({!Index.candidate_docs}): sound only
    when the caller intersects the result with a subtree scope below it.
    [?cache] routes content reads and tokenization through a pass cache. *)

val search_phrase :
  ?probe:probe ->
  ?within:Hac_bitset.Fileset.t ->
  ?under:string ->
  ?cache:doc_cache ->
  Index.t ->
  reader ->
  string list ->
  Hac_bitset.Fileset.t
(** Documents containing the words consecutively, in order.  With the CAS
    path on, the per-word candidate sets go through the container-level
    rarest-first {!Fileset.inter_many}; on the block path the intersection
    is built rarest-first ({!Index.term_cost} order) with each partial
    intersection narrowing the next posting expansion, short-circuiting when
    it empties. *)

val search_approx :
  ?probe:probe ->
  ?within:Hac_bitset.Fileset.t ->
  ?cache:doc_cache ->
  Index.t ->
  reader ->
  word:string ->
  errors:int ->
  Hac_bitset.Fileset.t
(** Documents containing some word within the given edit distance — the
    [~term] query form. *)

val search_substring : ?probe:probe -> Index.t -> reader -> string -> Hac_bitset.Fileset.t
(** Documents whose raw contents contain the byte string (bitap scan over
    every live document — no index help; for short or non-word patterns). *)

val search_regex :
  ?probe:probe ->
  ?within:Hac_bitset.Fileset.t ->
  ?under:string ->
  ?cache:doc_cache ->
  Index.t ->
  reader ->
  string ->
  Hac_bitset.Fileset.t
(** Documents whose raw contents match the regular expression (the [/re/]
    query term).  When the pattern syntactically requires a literal word
    ({!Regex.required_word}) and the index is unstemmed, candidates are
    narrowed through the vocabulary first, as Glimpse extracts literals from
    regular expressions; otherwise every live document is scanned.  Raises
    {!Regex.Parse_error} on a malformed pattern. *)

val matching_lines :
  Index.t -> reader -> path:string -> query_words:string list -> (int * string) list
(** Lines (1-based number, text) of the document that contain at least one
    of the query words — what the paper's [sact] shows the user for a link
    inside a semantic directory. *)

val contains_word : Index.t -> content:string -> word:string -> bool
(** Whole-word containment test consistent with the index's stemming. *)

val contains_phrase : content:string -> string list -> bool
(** Consecutive-words containment test (exact words, no stemming). *)

(** {1 Evaluators}

    {!eval} used to rebuild its {!Eval.env} closure record per call; a
    settle pass over thousands of directories re-allocated identical
    closures thousands of times.  An {!evaluator} hoists everything that is
    per-index — the index, the reader, the caches and the env itself — and
    threads the per-query probe and restriction through mutable fields, so
    one evaluator serves a whole pass.  An evaluator is single-domain (its
    fields are unsynchronized); parallel passes give each task its own
    evaluator over the {e shared} memo and cache. *)

type evaluator

val evaluator :
  ?memo:term_memo ->
  ?cache:doc_cache ->
  Index.t ->
  reader ->
  attr:(?within:Hac_bitset.Fileset.t -> string -> string -> Hac_bitset.Fileset.t) ->
  dirref:(?within:Hac_bitset.Fileset.t -> Hac_query.Ast.dirref -> Hac_bitset.Fileset.t) ->
  evaluator
(** The standard {!Eval.env} wiring (word/phrase/approx/regex answered by
    the searches above, with malformed regex terms evaluating to the empty
    set; attributes and directory references supplied by the caller).  With
    [?memo], unrestricted term evaluations — including the universe and the
    supplied [attr] — are memoized; [dirref] results never are (scopes move
    as a pass applies results).  With [?cache], content verification runs
    through the document cache. *)

val eval_with :
  evaluator ->
  ?probe:probe ->
  ?restrict_to:Hac_bitset.Fileset.t ->
  ?under:string ->
  Hac_query.Ast.t ->
  Hac_bitset.Fileset.t
(** Evaluate a parsed query.  [?restrict_to] evaluates the query only over
    the given documents — candidate expansion, content verification and
    NOT's universe all stay inside the set, which is what makes delta resync
    O(touched docs) ({!Eval.eval}'s restriction-pushdown contract guarantees
    [eval ~restrict_to:S q = S ∩ eval q]).  [?under] is the CAS scope hint,
    forwarded to every term lookup (and mixed into the pass-memo keys): the
    caller asserts the final result will be intersected with a scope set
    lying under that directory, which makes per-term partition pruning sound
    for any boolean query shape. *)

val eval :
  ?probe:probe ->
  ?restrict_to:Hac_bitset.Fileset.t ->
  ?under:string ->
  Index.t ->
  reader ->
  attr:(?within:Hac_bitset.Fileset.t -> string -> string -> Hac_bitset.Fileset.t) ->
  dirref:(?within:Hac_bitset.Fileset.t -> Hac_query.Ast.dirref -> Hac_bitset.Fileset.t) ->
  Hac_query.Ast.t ->
  Hac_bitset.Fileset.t
(** One-shot {!evaluator} + {!eval_with}, uncached — the historical entry
    point, kept for callers outside settle passes. *)
