(** The dependency graph between semantic directories (section 2.5).

    Nodes are directory UIDs.  An edge [a -> b] means {e [a] depends on [b]}:
    [a]'s query must be re-evaluated whenever [b]'s scope changes.  Two kinds
    of dependencies share the graph: the implicit parent edge (a semantic
    directory depends on its parent) and explicit [{dir}] references inside
    queries.  The graph must stay acyclic; every mutation that could create a
    cycle is refused. *)

type t
(** A mutable dependency graph. *)

val create : unit -> t
(** An empty graph. *)

val add_node : t -> int -> unit
(** Register a UID with no dependencies; no-op when present. *)

val remove_node : t -> int -> unit
(** Drop a UID and every edge touching it. *)

val mem : t -> int -> bool
(** Whether the UID is registered. *)

val set_deps : t -> int -> int list -> (unit, int list) result
(** [set_deps g uid deps] replaces [uid]'s outgoing dependencies.  Unknown
    dependency UIDs are registered implicitly.  If the new edges would close
    a cycle the graph is left unchanged and [Error cycle] returns one
    offending path (from [uid] back to itself). *)

val deps : t -> int -> int list
(** Current direct dependencies (sorted). *)

val dependents : t -> int -> int list
(** UIDs directly depending on the given one (sorted). *)

val affected : t -> int -> int list
(** Every UID whose result may change when the given UID's scope changes:
    all transitive dependents, in topological order (dependencies before
    dependents), excluding the start UID itself.  This is the re-evaluation
    schedule of the scope-consistency algorithm. *)

val topo_all : t -> int list
(** Every node, dependencies before dependents. *)

val levels_of : t -> int list -> int list list
(** [topo_of] grouped into antichain waves: level [k] holds the nodes of the
    given set whose longest dependency chain (within the set) has length [k],
    so every dependency of a node lives in a strictly earlier level and the
    nodes of one level are mutually independent — safe to evaluate
    concurrently.  Concatenating the levels yields a valid topological order
    of the set; each level is sorted by UID for determinism. *)

val levels : t -> int list list
(** {!levels_of} over every registered node. *)

val would_cycle : t -> int -> int list -> bool
(** [true] when [set_deps] with these edges would be refused. *)

val node_count : t -> int
(** Number of registered UIDs. *)

val edge_count : t -> int
(** Number of dependency edges. *)

val approx_bytes : t -> int
(** Estimated memory footprint, for space accounting. *)
