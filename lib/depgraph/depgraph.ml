module IntSet = Set.Make (Int)

type t = {
  out_edges : (int, IntSet.t) Hashtbl.t; (* uid -> its dependencies *)
  in_edges : (int, IntSet.t) Hashtbl.t; (* uid -> its dependents *)
}

let create () = { out_edges = Hashtbl.create 64; in_edges = Hashtbl.create 64 }

let get tbl k = Option.value (Hashtbl.find_opt tbl k) ~default:IntSet.empty

let add_node g uid =
  if not (Hashtbl.mem g.out_edges uid) then begin
    Hashtbl.replace g.out_edges uid IntSet.empty;
    Hashtbl.replace g.in_edges uid IntSet.empty
  end

let mem g uid = Hashtbl.mem g.out_edges uid

let remove_node g uid =
  IntSet.iter
    (fun dep -> Hashtbl.replace g.in_edges dep (IntSet.remove uid (get g.in_edges dep)))
    (get g.out_edges uid);
  IntSet.iter
    (fun dependent ->
      Hashtbl.replace g.out_edges dependent (IntSet.remove uid (get g.out_edges dependent)))
    (get g.in_edges uid);
  Hashtbl.remove g.out_edges uid;
  Hashtbl.remove g.in_edges uid

(* A path from [target] reachable by following out-edges starting at [from]?
   Used to detect that adding edge [uid -> dep] would close a cycle, i.e.
   [uid] is already reachable from [dep]. Returns the path for diagnostics. *)
let find_path g ~from ~target =
  let visited = Hashtbl.create 16 in
  let rec dfs node path =
    if node = target then Some (List.rev (node :: path))
    else if Hashtbl.mem visited node then None
    else begin
      Hashtbl.replace visited node ();
      IntSet.fold
        (fun next acc -> match acc with Some _ -> acc | None -> dfs next (node :: path))
        (get g.out_edges node) None
    end
  in
  dfs from []

let set_deps g uid new_deps =
  add_node g uid;
  let new_deps = List.sort_uniq compare new_deps in
  if List.mem uid new_deps then Error [ uid; uid ]
  else begin
    let old_deps = get g.out_edges uid in
    (* Detach the old edges first so a self-reaching path through them does
       not count; then check each new edge against the detached graph. *)
    IntSet.iter
      (fun dep -> Hashtbl.replace g.in_edges dep (IntSet.remove uid (get g.in_edges dep)))
      old_deps;
    Hashtbl.replace g.out_edges uid IntSet.empty;
    let cycle =
      List.fold_left
        (fun acc dep ->
          match acc with
          | Some _ -> acc
          | None -> (
              add_node g dep;
              match find_path g ~from:dep ~target:uid with
              | Some path -> Some (uid :: path)
              | None ->
                  Hashtbl.replace g.out_edges uid (IntSet.add dep (get g.out_edges uid));
                  Hashtbl.replace g.in_edges dep (IntSet.add uid (get g.in_edges dep));
                  acc))
        None new_deps
    in
    match cycle with
    | None -> Ok ()
    | Some path ->
        (* Roll back: restore exactly the old dependencies. *)
        IntSet.iter
          (fun dep -> Hashtbl.replace g.in_edges dep (IntSet.remove uid (get g.in_edges dep)))
          (get g.out_edges uid);
        Hashtbl.replace g.out_edges uid old_deps;
        IntSet.iter
          (fun dep -> Hashtbl.replace g.in_edges dep (IntSet.add uid (get g.in_edges dep)))
          old_deps;
        Error path
  end

let deps g uid = IntSet.elements (get g.out_edges uid)

let dependents g uid = IntSet.elements (get g.in_edges uid)

let would_cycle g uid new_deps =
  let old_deps = deps g uid in
  match set_deps g uid new_deps with
  | Error _ -> true
  | Ok () ->
      (* Pure predicate: restore the previous dependencies. *)
      (match set_deps g uid old_deps with
      | Ok () -> ()
      | Error _ -> assert false (* the old edges were acyclic *));
      false

(* Kahn's algorithm restricted to [nodes]; ties broken by uid order for
   determinism. *)
let topo_of g nodes =
  let in_deg = Hashtbl.create 64 in
  let node_set = List.fold_left (fun s n -> IntSet.add n s) IntSet.empty nodes in
  IntSet.iter
    (fun n ->
      let d = IntSet.cardinal (IntSet.inter (get g.out_edges n) node_set) in
      Hashtbl.replace in_deg n d)
    node_set;
  let ready =
    ref (IntSet.filter (fun n -> Hashtbl.find in_deg n = 0) node_set)
  in
  let order = ref [] in
  while not (IntSet.is_empty !ready) do
    let n = IntSet.min_elt !ready in
    ready := IntSet.remove n !ready;
    order := n :: !order;
    IntSet.iter
      (fun dependent ->
        if IntSet.mem dependent node_set then begin
          let d = Hashtbl.find in_deg dependent - 1 in
          Hashtbl.replace in_deg dependent d;
          if d = 0 then ready := IntSet.add dependent !ready
        end)
      (get g.in_edges n)
  done;
  List.rev !order

let topo_all g =
  let nodes = Hashtbl.fold (fun n _ acc -> n :: acc) g.out_edges [] in
  topo_of g nodes

(* Kahn's algorithm with the frontier drained a whole wave at a time: level k
   holds exactly the nodes whose longest dependency chain within [nodes] has
   length k, so everything a node depends on lives in a strictly earlier
   level and a level is safe to process concurrently. *)
let levels_of g nodes =
  let node_set = List.fold_left (fun s n -> IntSet.add n s) IntSet.empty nodes in
  let in_deg = Hashtbl.create 64 in
  IntSet.iter
    (fun n ->
      let d = IntSet.cardinal (IntSet.inter (get g.out_edges n) node_set) in
      Hashtbl.replace in_deg n d)
    node_set;
  let frontier = ref (IntSet.filter (fun n -> Hashtbl.find in_deg n = 0) node_set) in
  let levels = ref [] in
  while not (IntSet.is_empty !frontier) do
    let level = !frontier in
    levels := IntSet.elements level :: !levels;
    let next = ref IntSet.empty in
    IntSet.iter
      (fun n ->
        IntSet.iter
          (fun dependent ->
            if IntSet.mem dependent node_set then begin
              let d = Hashtbl.find in_deg dependent - 1 in
              Hashtbl.replace in_deg dependent d;
              if d = 0 then next := IntSet.add dependent !next
            end)
          (get g.in_edges n))
      level;
    frontier := !next
  done;
  List.rev !levels

let levels g =
  let nodes = Hashtbl.fold (fun n _ acc -> n :: acc) g.out_edges [] in
  levels_of g nodes

let affected g uid =
  (* Transitive dependents via reverse edges, then topologically ordered. *)
  let seen = Hashtbl.create 16 in
  let rec collect n =
    IntSet.iter
      (fun dep ->
        if not (Hashtbl.mem seen dep) then begin
          Hashtbl.replace seen dep ();
          collect dep
        end)
      (get g.in_edges n)
  in
  collect uid;
  let nodes = Hashtbl.fold (fun n _ acc -> n :: acc) seen [] in
  topo_of g nodes

let node_count g = Hashtbl.length g.out_edges

let edge_count g =
  Hashtbl.fold (fun _ s acc -> acc + IntSet.cardinal s) g.out_edges 0

let approx_bytes g =
  let word = Sys.int_size / 8 + 1 in
  (node_count g * 4 * word) + (edge_count g * 6 * word)
