module Fs = Hac_vfs.Fs
module Store = Hac_fault.Store
module Hac = Hac_core.Hac
module Recover = Hac_core.Recover
module Journal = Hac_core.Journal
module Link = Hac_core.Link

type violation = { point : string; what : string }

type outcome = {
  seed : int;
  ops : int;
  boundaries : int;
  points : int;
  oracle_points : int;
  recovery_points : int;
  compaction_points : int;
  truncated_batch_points : int;
  dropped_fsyncs : int;
  violations : violation list;
}

(* -- observable state of an instance ---------------------------------------

   Two instances agree when every semantic directory shows the same query,
   the same named links (with targets and classes) and the same prohibition
   set.  uids are deliberately absent: each recovered life allocates fresh
   ones. *)

type dir_state = {
  path : string;
  query : string;
  links : (string * string * string) list;  (* name, target key, class *)
  prohibited : string list;
}

let state_of t =
  Hac.semantic_dirs t
  |> List.map (fun path ->
         {
           path;
           query = Option.value ~default:"?" (Hac.sreadin t path);
           links =
             Hac.links t path
             |> List.map (fun l ->
                    (l.Link.name, Link.target_key l.Link.target, Link.cls_name l.Link.cls))
             |> List.sort compare;
           prohibited = List.sort compare (Hac.prohibited t path);
         })

let describe ds =
  ds
  |> List.map (fun d ->
         Printf.sprintf "%s[%s] links=%s proh=%s" d.path d.query
           (String.concat ","
              (List.map (fun (n, tgt, c) -> Printf.sprintf "%s->%s(%s)" n tgt c) d.links))
           (String.concat "," d.prohibited))
  |> String.concat "; "
  |> fun s -> if s = "" then "(no semantic dirs)" else s

let diff_states expected got =
  Printf.sprintf "expected %s / got %s" (describe expected) (describe got)

(* -- the recorded workload -------------------------------------------------

   A smoke workload exercising every journal record kind and both chain
   operations: directory and file churn, semantic creation, re-query,
   curation (permanent + prohibited links), rename, semantic removal, an
   explicit checkpoint and a compaction.  Small on purpose — the harness
   recovers a full instance at every single op boundary of this script. *)

type boundary = { label : string; at : int; state : dir_state list }

type recording = {
  store : Store.t;
  all_ops : Store.op list;
  bounds : boundary list;  (* ascending by [at] *)
  legal : (string * string, unit) Hashtbl.t;  (* acknowledged (path, query) *)
}

let steps t =
  [
    ("seed files", fun () ->
        Hac.mkdir t "/docs";
        Hac.write_file t "/docs/a.txt" "alpha notes here";
        Hac.write_file t "/docs/b.txt" "beta draft notes");
    ("smkdir alpha", fun () -> Hac.smkdir t "/alpha" "alpha");
    ("grow corpus", fun () -> Hac.write_file t "/docs/c.txt" "alpha beta mixed");
    ("smkdir beta", fun () -> Hac.smkdir t "/beta" "beta");
    ("rename target", fun () -> Hac.rename t ~src:"/docs/b.txt" ~dst:"/docs/bb.txt");
    ("curate links", fun () ->
        Hac.prohibit_target t ~dir:"/alpha" ~target:"/docs/c.txt";
        ignore (Hac.add_permanent t ~dir:"/alpha" ~target:"/docs/bb.txt"));
    ("checkpoint", fun () -> ignore (Hac.checkpoint t));
    ("post-checkpoint file", fun () -> Hac.write_file t "/docs/d.txt" "alpha again");
    ("requery beta", fun () -> Hac.schquery t "/beta" "notes");
    ("smkdir scratch", fun () -> Hac.smkdir t "/scratch" "mixed");
    ("srmdir scratch", fun () -> Hac.srmdir t "/scratch");
    ("compact", fun () -> ignore (Hac.compact t));
    ("tail file", fun () -> Hac.write_file t "/docs/e.txt" "beta finale");
  ]

(* A batched writer's workload — the serving layer's write path.  The
   "group commit" step applies several mutations with per-mutation settles
   disabled, so the step's single settle is the only completion barrier
   the whole batch gets.  Kept separate from [steps] so the batch
   truncation scan stays cheap. *)
let batch_steps t =
  [
    ("seed corpus", fun () ->
        Hac.mkdir t "/docs";
        Hac.write_file t "/docs/a.txt" "alpha notes";
        Hac.smkdir t "/alpha" "alpha");
    ("group commit", fun () ->
        Hac.set_auto_sync t false;
        Fun.protect
          ~finally:(fun () -> Hac.set_auto_sync t true)
          (fun () ->
            Hac.write_file t "/docs/g1.txt" "alpha group first";
            Hac.write_file t "/docs/g2.txt" "alpha group second";
            Hac.rename t ~src:"/docs/g1.txt" ~dst:"/docs/g_first.txt";
            Hac.write_file t "/docs/g3.txt" "beta group third"));
    ("tail", fun () -> Hac.write_file t "/docs/z.txt" "alpha finale");
  ]

let record ~seed ?(sabotage = fun _ _ -> ()) ?(steps_of = steps) ~on_boundary () =
  let fs = Fs.create () in
  let store = Store.create ~seed () in
  Fs.attach_disk fs store;
  let t = Hac.of_fs fs in
  let legal = Hashtbl.create 32 in
  let bounds = ref [] in
  List.iter
    (fun (label, f) ->
      sabotage label store;
      f ();
      (* Materialise every directory's physical links before the settle so
         the completion barrier covers them — [state_of] below must observe,
         not mutate, the acknowledged disk state. *)
      List.iter (fun d -> ignore (Hac.links t d)) (Hac.semantic_dirs t);
      Hac.settle t;
      let state = state_of t in
      List.iter (fun d -> Hashtbl.replace legal (d.path, d.query) ()) state;
      let b = { label; at = Store.op_count store; state } in
      on_boundary store b;
      bounds := b :: !bounds)
    (steps_of t);
  Fs.detach_disk fs;
  Hac.shutdown ~graceful:false t;
  { store; all_ops = Store.ops store; bounds = List.rev !bounds; legal }

(* -- recovery invariants ---------------------------------------------------

   For every crash state the harness checks:
   + recovery never raises, whatever the disk contains;
   + the recovered state is a settle fixpoint (links are exactly the
     current scopes' query results — re-settling changes nothing);
   + every recovered (path, query) was acknowledged at some settle of the
     original run (nothing invented, no silently mis-parsed query);
   + the re-keyed journal chain agrees with the instance: chain-semantic
     paths = live semantic dirs, and every journaled directory exists;
   + recovering the same disk twice yields the same state. *)

let take n l = List.filteri (fun i _ -> i < n) l

let check ~legal ~add ?(double = false) point fs =
  match
    let t = Hac.of_fs fs in
    let rep = Recover.reload_report t in
    (t, rep)
  with
  | exception e ->
      add point (Printf.sprintf "recovery raised %s" (Printexc.to_string e));
      None
  | t, rep ->
      let st = state_of t in
      Hac.sync_all t;
      let st' = state_of t in
      if st <> st' then
        add point ("recovered state is not a settle fixpoint: " ^ diff_states st st');
      List.iter
        (fun d ->
          if not (Hashtbl.mem legal (d.path, d.query)) then
            add point
              (Printf.sprintf "recovered (%s, %s) was never an acknowledged state" d.path
                 d.query))
        st;
      let r = Journal.replay_chain (Journal.read_chain fs) in
      let chain_sem = List.map snd (Journal.semantic_entries r) |> List.sort compare in
      let live_sem = List.map (fun d -> d.path) st in
      if chain_sem <> live_sem then
        add point
          (Printf.sprintf "chain flags [%s] semantic but instance has [%s]"
             (String.concat "," chain_sem)
             (String.concat "," live_sem));
      Hashtbl.iter
        (fun _ p ->
          if not (Fs.is_dir fs p) then
            add point (Printf.sprintf "journal names %s but no such directory" p))
        r.Journal.map;
      if double then begin
        Hac.shutdown ~graceful:false t;
        match
          let t2 = Hac.of_fs fs in
          ignore (Recover.reload t2);
          t2
        with
        | exception e ->
            add point (Printf.sprintf "second recovery raised %s" (Printexc.to_string e))
        | t2 ->
            let st2 = state_of t2 in
            if st <> st2 then
              add point ("double recovery diverged: " ^ diff_states st st2);
            Hac.shutdown ~graceful:false t2
      end;
      Some (rep, st)

(* Crash during recovery itself: record the recovery's own writes on a
   second device, then enumerate every prefix of (base crash state +
   recovery writes) and recover each — covering torn re-keying, the
   checkpoint rename, and every partially-restored structure file. *)
let recovery_crash_points ~seed ~legal ~add (base_label, base_ops) =
  let fs0 = Sim.replay base_ops in
  let store2 = Store.create ~seed () in
  Fs.attach_disk fs0 store2;
  let t = Hac.of_fs fs0 in
  ignore (Recover.reload t);
  Fs.detach_disk fs0;
  Hac.shutdown ~graceful:false t;
  let rec_ops = Store.ops store2 in
  let n = List.length rec_ops in
  for j = 0 to n do
    let fs = Sim.replay ~into:(Sim.replay base_ops) (take j rec_ops) in
    let point = Printf.sprintf "%s + recovery op %d/%d" base_label j n in
    ignore (check ~legal ~add ~double:(j = n || j mod 5 = 0) point fs)
  done;
  n + 1

let run ?(seed = 1) ?(double_stride = 7) ?flight_dir () =
  let violations = ref [] in
  let add point what = violations := { point; what } :: !violations in
  (* The oracle run: every settle acknowledges durability, so at each step
     boundary the whole log must be durable and recovering exactly the
     durable prefix must reproduce the acknowledged state. *)
  let rec_main =
    record ~seed
      ~on_boundary:(fun store b ->
        if Store.durable_count store <> Store.op_count store then
          add
            (Printf.sprintf "boundary %s" b.label)
            (Printf.sprintf "settle acknowledged with %d of %d ops durable"
               (Store.durable_count store) (Store.op_count store)))
      ()
  in
  let ops_n = List.length rec_main.all_ops in
  let label_of k =
    match List.find_opt (fun b -> k <= b.at) rec_main.bounds with
    | Some b -> b.label
    | None -> "tail"
  in
  let compact_range =
    let rec find prev = function
      | [] -> (0, 0)
      | b :: rest -> if b.label = "compact" then (prev, b.at) else find b.at rest
    in
    find 0 rec_main.bounds
  in
  let points = ref 0 and oracle_points = ref 0 and compaction_points = ref 0 in
  for k = 0 to ops_n do
    let prefix = Store.ops ~upto:k rec_main.store in
    let point = Printf.sprintf "op %d/%d (%s) clean" k ops_n (label_of k) in
    incr points;
    if k > fst compact_range && k <= snd compact_range then incr compaction_points;
    (match
       check ~legal:rec_main.legal ~add
         ~double:(k mod double_stride = 0 || k = ops_n)
         point (Sim.replay prefix)
     with
    | Some (_, st) -> (
        match List.find_opt (fun b -> b.at = k) rec_main.bounds with
        | Some b ->
            incr oracle_points;
            if st <> b.state then
              add point ("acknowledged state not recovered: " ^ diff_states b.state st)
        | None -> ())
    | None -> ());
    if k < ops_n then begin
      let op = List.nth rec_main.all_ops k in
      List.iter
        (fun (vlabel, damaged) ->
          match damaged with
          | None -> ()
          | Some d ->
              incr points;
              let point = Printf.sprintf "op %d/%d (%s) %s" k ops_n (label_of k) vlabel in
              ignore (check ~legal:rec_main.legal ~add point (Sim.replay (prefix @ [ d ]))))
        [
          ("torn", Store.torn op ~keep:(Store.tear_point rec_main.store op));
          ("flipped", Store.flipped op ~at:(Store.flip_point rec_main.store op));
          ("interrupted", Store.interrupted op);
        ]
    end
  done;
  (* Crash points inside recovery itself, from two bases: the state right
     after the explicit checkpoint (re-keying on top of a fresh base) and
     the final state (recovery after compaction). *)
  let ckpt_at =
    match List.find_opt (fun b -> b.label = "checkpoint") rec_main.bounds with
    | Some b -> b.at
    | None -> ops_n
  in
  let recovery_points =
    recovery_crash_points ~seed ~legal:rec_main.legal ~add
      ("ckpt boundary", Store.ops ~upto:ckpt_at rec_main.store)
    + recovery_crash_points ~seed ~legal:rec_main.legal ~add
        ("final state", rec_main.all_ops)
  in
  (* Post-checkpoint replay bound: recovering the final state must start
     from the checkpoint and replay only the open segment, not history. *)
  (match check ~legal:rec_main.legal ~add "final chain" (Sim.replay rec_main.all_ops) with
  | Some (rep, _) ->
      if rep.Recover.checkpoint_epoch = None then
        add "final chain" "no readable checkpoint after an explicit checkpoint";
      if rep.Recover.segments_replayed > 1 then
        add "final chain"
          (Printf.sprintf "replayed %d segments past the checkpoint (want <= 1)"
             rep.Recover.segments_replayed)
  | None -> ());
  (* A device that acknowledges fsyncs it never performs: the tail of the
     run is lost even though settle acknowledged it.  Consistency must
     survive; only durability of the lied-about suffix is forfeit. *)
  let dropped =
    let rec_drop =
      record ~seed
        ~sabotage:(fun label store ->
          if label = "post-checkpoint file" then Store.drop_fsyncs store 2)
        ~on_boundary:(fun _ _ -> ())
        ()
    in
    let d = Store.dropped_fsync_count rec_drop.store in
    if d = 0 then add "dropped-fsync run" "fault injection armed but no fsync was dropped";
    incr points;
    ignore
      (check ~legal:rec_drop.legal ~add ~double:true "dropped-fsync durable frontier"
         (Sim.replay (Store.ops ~upto:(Store.durable_count rec_drop.store) rec_drop.store)));
    d
  in
  (* Crash inside a group commit: a batched writer applies several
     mutations with per-mutation settles disabled, so one settle — one
     completion barrier — covers the whole batch.  A crash anywhere inside
     the batch leaves partially applied writes with no acknowledging
     settle; every truncation (and a torn variant of the first lost op)
     must still recover to an acknowledged (path, query) world, and the
     full batch must recover to exactly its acknowledged state.  A second
     run has the device swallow the batch's barrier and everything after:
     settle acknowledged a batch the disk never completed, and the durable
     prefix — ending before the batch — must recover clean. *)
  let truncated_batch =
    let rec_batch =
      record ~seed ~steps_of:batch_steps ~on_boundary:(fun _ _ -> ()) ()
    in
    let batch_b =
      match List.find_opt (fun b -> b.label = "group commit") rec_batch.bounds with
      | Some b -> b
      | None -> invalid_arg "batch workload lost its group step"
    in
    let prev_at =
      List.fold_left
        (fun acc b -> if b.at < batch_b.at then max acc b.at else acc)
        0 rec_batch.bounds
    in
    let n = ref 0 in
    for k = prev_at to batch_b.at do
      let prefix = Store.ops ~upto:k rec_batch.store in
      let point = Printf.sprintf "batch op %d/%d clean" k batch_b.at in
      incr n;
      (match
         check ~legal:rec_batch.legal ~add ~double:(k = batch_b.at) point
           (Sim.replay prefix)
       with
      | Some (_, st) when k = batch_b.at ->
          if st <> batch_b.state then
            add point ("acknowledged batch state not recovered: " ^ diff_states batch_b.state st)
      | Some _ | None -> ());
      if k < batch_b.at then begin
        let op = List.nth rec_batch.all_ops k in
        match Store.torn op ~keep:(Store.tear_point rec_batch.store op) with
        | None -> ()
        | Some d ->
            incr n;
            let point = Printf.sprintf "batch op %d/%d torn" k batch_b.at in
            ignore (check ~legal:rec_batch.legal ~add point (Sim.replay (prefix @ [ d ])))
      end
    done;
    let rec_lying =
      record ~seed ~steps_of:batch_steps
        ~sabotage:(fun label store ->
          if label = "group commit" then Store.drop_fsyncs store 100)
        ~on_boundary:(fun _ _ -> ())
        ()
    in
    if Store.dropped_fsync_count rec_lying.store = 0 then
      add "batch dropped-fsync run" "fault injection armed but no fsync was dropped";
    incr n;
    ignore
      (check ~legal:rec_lying.legal ~add ~double:true "batch dropped barrier"
         (Sim.replay (Store.ops ~upto:(Store.durable_count rec_lying.store) rec_lying.store)));
    !n
  in
  (* Freeze the violations into a flight dump: the harness spins up many
     short-lived engines, so their per-instance recorders are gone by the
     time a violation is reported — a dedicated recorder (indexed by
     violation order, not wall time) keeps the evidence in one artifact
     that CI can upload. *)
  (match (flight_dir, !violations) with
  | Some dir, (_ :: _ as vs) ->
      let k = ref 0.0 in
      let fl = Hac_obs.Flight.create ~capacity:(List.length vs + 1) ~now:(fun () -> !k) () in
      Hac_obs.Flight.set_auto_dump fl (Some dir);
      List.iter
        (fun v ->
          k := !k +. 1.0;
          Hac_obs.Flight.transition fl ~subsystem:"crash" ~from_:"recovered"
            ~to_:"violated"
            ~reason:(v.point ^ ": " ^ v.what))
        (List.rev vs);
      ignore (Hac_obs.Flight.breach fl ~reason:"crash harness recovery violations")
  | _ -> ());
  {
    seed;
    ops = ops_n;
    boundaries = List.length rec_main.bounds;
    points = !points;
    oracle_points = !oracle_points;
    recovery_points;
    compaction_points = !compaction_points;
    truncated_batch_points = truncated_batch;
    dropped_fsyncs = dropped;
    violations = List.rev !violations;
  }

let summary o =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "crash harness: seed %d, %d ops, %d crash states (%d oracle boundaries, %d in \
        compaction, %d during recovery, %d in a group commit, %d dropped fsyncs)\n"
       o.seed o.ops o.points o.oracle_points o.compaction_points o.recovery_points
       o.truncated_batch_points o.dropped_fsyncs);
  if o.violations = [] then Buffer.add_string b "no invariant violations\n"
  else
    List.iter
      (fun v -> Buffer.add_string b (Printf.sprintf "VIOLATION at %s: %s\n" v.point v.what))
      o.violations;
  Buffer.contents b

(* -- the storage-tier sweep -------------------------------------------------

   Same machinery, pointed at the durable storage tier: a workload that
   enables the tier mid-run (block puts, a checkpoint committing the
   postings segment and document table, a compaction sweeping scratch),
   crashed at every op boundary plus torn/flipped variants.  Every crash
   state is recovered twice — through the full oracle ({!check}, exactly as
   the base sweep) and through {!Hac_core.Recover.mount}, whose fast path
   rebuilds from the reconstruction images and must fall back whenever the
   images cannot vouch for the bytes.  At settle boundaries the two
   recoveries must agree exactly; in between, each must independently
   satisfy every invariant.  A second phase grows a second postings
   segment (a fast mount installs the cold provider, so the next
   checkpoint appends a delta) and crashes inside the compaction that
   merges them — the segment-merge commit points. *)

type store_outcome = {
  st_seed : int;
  st_ops : int;
  st_points : int;  (** Crash states swept (each recovered both ways). *)
  st_boundary_points : int;  (** Points where mount and oracle were compared. *)
  st_merge_points : int;  (** Crash states inside the segment merge phase. *)
  st_fast_mounts : int;
  st_full_mounts : int;
  st_violations : violation list;
}

(* Budget of 64 payload bytes: the bodies below are ~16 bytes each, so the
   cache holds only a few blocks and the sweep exercises eviction too. *)
let store_steps t =
  [
    ("seed files", fun () ->
        Hac.mkdir t "/docs";
        Hac.write_file t "/docs/a.txt" "alpha notes here";
        Hac.write_file t "/docs/b.txt" "beta draft notes");
    ("enable store", fun () -> Hac.enable_store ~budget:64 t);
    ("smkdir alpha", fun () -> Hac.smkdir t "/alpha" "alpha");
    ("grow corpus", fun () -> Hac.write_file t "/docs/c.txt" "alpha beta mixed");
    ("checkpoint", fun () -> ignore (Hac.checkpoint t));
    ("post-checkpoint file", fun () -> Hac.write_file t "/docs/d.txt" "alpha again");
    ("overwrite", fun () -> Hac.write_file t "/docs/a.txt" "alpha revised now");
    ("rename file", fun () -> Hac.rename t ~src:"/docs/b.txt" ~dst:"/docs/bb.txt");
    ("compact", fun () -> ignore (Hac.compact t));
    ("tail file", fun () -> Hac.write_file t "/docs/e.txt" "beta finale");
  ]

let check_mount ~legal ~add point fs =
  match Recover.mount ~budget:64 fs with
  | exception e ->
      add point (Printf.sprintf "mount raised %s" (Printexc.to_string e));
      None
  | t, mode ->
      let st = state_of t in
      Hac.sync_all t;
      let st' = state_of t in
      if st <> st' then
        add point ("mounted state is not a settle fixpoint: " ^ diff_states st st');
      List.iter
        (fun d ->
          if not (Hashtbl.mem legal (d.path, d.query)) then
            add point
              (Printf.sprintf "mounted (%s, %s) was never an acknowledged state" d.path
                 d.query))
        st;
      Hac.shutdown ~graceful:false t;
      Some (mode, st)

let store_merge_crash_points ~seed ~add (rec_main : recording) =
  let base_ops = rec_main.all_ops in
  let legal = Hashtbl.copy rec_main.legal in
  let fs0 = Sim.replay base_ops in
  let store2 = Store.create ~seed () in
  Fs.attach_disk fs0 store2;
  let t, mode = Recover.mount ~budget:64 fs0 in
  if mode <> `Fast then
    add "merge base" "expected a fast mount of the recorded final state";
  Hac.write_file t "/docs/m.txt" "alpha merge fodder";
  ignore (Hac.checkpoint t);
  List.iter (fun d -> Hashtbl.replace legal (d.path, d.query) ()) (state_of t);
  (match Hac.store t with
  | Some s when Hac_store.Store.segment_count s >= 2 -> ()
  | Some _ -> add "merge base" "expected a second (delta) segment before compaction"
  | None -> add "merge base" "mounted instance lost its storage tier");
  ignore (Hac.compact t);
  (match Hac.store t with
  | Some s when Hac_store.Store.segment_count s = 1 -> ()
  | _ -> add "merge base" "compaction did not merge the segments");
  Fs.detach_disk fs0;
  Hac.shutdown ~graceful:false t;
  let ops = Store.ops store2 in
  let n = List.length ops in
  for j = 0 to n do
    let point = Printf.sprintf "merge + op %d/%d" j n in
    ignore
      (check ~legal ~add point (Sim.replay ~into:(Sim.replay base_ops) (take j ops)));
    ignore
      (check_mount ~legal ~add point
         (Sim.replay ~into:(Sim.replay base_ops) (take j ops)))
  done;
  n + 1

let run_store ?(seed = 1) () =
  let violations = ref [] in
  let add point what = violations := { point; what } :: !violations in
  let rec_main = record ~seed ~steps_of:store_steps ~on_boundary:(fun _ _ -> ()) () in
  let ops_n = List.length rec_main.all_ops in
  let label_of k =
    match List.find_opt (fun b -> k <= b.at) rec_main.bounds with
    | Some b -> b.label
    | None -> "tail"
  in
  let points = ref 0 and boundary_pts = ref 0 in
  let fast = ref 0 and full = ref 0 in
  for k = 0 to ops_n do
    let prefix = Store.ops ~upto:k rec_main.store in
    let point = Printf.sprintf "store op %d/%d (%s) clean" k ops_n (label_of k) in
    incr points;
    (* Recovery mutates the disk, so each side gets its own replica of the
       same crash bytes. *)
    let oracle = check ~legal:rec_main.legal ~add point (Sim.replay prefix) in
    (match check_mount ~legal:rec_main.legal ~add point (Sim.replay prefix) with
    | None -> ()
    | Some (mode, st_m) -> (
        (if mode = `Fast then incr fast else incr full);
        match (List.find_opt (fun b -> b.at = k) rec_main.bounds, oracle) with
        | Some b, Some (_, st_o) ->
            incr boundary_pts;
            if st_m <> st_o then
              add point ("mount diverged from the oracle: " ^ diff_states st_o st_m);
            if st_m <> b.state then
              add point ("acknowledged state not mounted: " ^ diff_states b.state st_m)
        | _ -> ()));
    if k < ops_n then begin
      let op = List.nth rec_main.all_ops k in
      List.iter
        (fun (vlabel, damaged) ->
          match damaged with
          | None -> ()
          | Some d ->
              incr points;
              let point =
                Printf.sprintf "store op %d/%d (%s) %s" k ops_n (label_of k) vlabel
              in
              ignore
                (check ~legal:rec_main.legal ~add point (Sim.replay (prefix @ [ d ])));
              ignore
                (check_mount ~legal:rec_main.legal ~add point
                   (Sim.replay (prefix @ [ d ]))))
        [
          ("torn", Store.torn op ~keep:(Store.tear_point rec_main.store op));
          ("flipped", Store.flipped op ~at:(Store.flip_point rec_main.store op));
        ]
    end
  done;
  let merge_points = store_merge_crash_points ~seed ~add rec_main in
  {
    st_seed = seed;
    st_ops = ops_n;
    st_points = !points;
    st_boundary_points = !boundary_pts;
    st_merge_points = merge_points;
    st_fast_mounts = !fast;
    st_full_mounts = !full;
    st_violations = List.rev !violations;
  }

let summary_store o =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "store crash sweep: seed %d, %d ops, %d crash states each recovered twice (%d \
        boundary comparisons, %d merge points, mounts: %d fast / %d full)\n"
       o.st_seed o.st_ops o.st_points o.st_boundary_points o.st_merge_points
       o.st_fast_mounts o.st_full_mounts);
  if o.st_violations = [] then Buffer.add_string b "no invariant violations\n"
  else
    List.iter
      (fun v -> Buffer.add_string b (Printf.sprintf "VIOLATION at %s: %s\n" v.point v.what))
      o.st_violations;
  Buffer.contents b
