(** The exhaustive crash-point recovery harness.

    Runs a recorded smoke workload on an instance whose VFS is wired to a
    simulated device ({!Hac_fault.Store}), then reconstructs the disk state
    a crash would leave at {e every} operation boundary — plus torn,
    bit-flipped and interrupted variants of the first lost op, crash points
    inside recovery itself, crash points inside compaction, crash points
    inside a group commit (a batch of mutations truncated before its single
    completion barrier), and a run whose device drops fsyncs — and recovers
    each state, checking the recovery invariants (see [docs/recovery.md]):

    + recovery never raises;
    + the recovered state is a settle fixpoint — the links of every
      semantic directory are exactly its current scope's query results;
    + every recovered (path, query) pair was acknowledged by a settle of
      the original run (a sequential oracle: nothing invented, nothing
      silently mis-parsed);
    + the re-keyed journal chain agrees with the directory tree;
    + recovery is idempotent (recovering twice changes nothing);
    + at every settle boundary the whole log is durable, and recovering
      exactly the durable prefix reproduces the acknowledged state. *)

type violation = { point : string; what : string }
(** One invariant failure: which crash point, what went wrong. *)

type outcome = {
  seed : int;  (** Damage-offset seed the run used. *)
  ops : int;  (** Operations the recorded workload produced. *)
  boundaries : int;  (** Settle-acknowledged steps (oracle candidates). *)
  points : int;  (** Crash states recovered and checked. *)
  oracle_points : int;  (** Crash states compared against the oracle. *)
  recovery_points : int;  (** Crash states inside recovery itself. *)
  compaction_points : int;  (** Crash states inside the compaction step. *)
  truncated_batch_points : int;
      (** Crash states inside a group commit — a batch of mutations with
          per-mutation settles disabled, crashed before (or torn at, or
          denied) its single completion barrier. *)
  dropped_fsyncs : int;  (** Fsync barriers swallowed in the lying-device run. *)
  violations : violation list;  (** Empty on a healthy implementation. *)
}

val run : ?seed:int -> ?double_stride:int -> ?flight_dir:string -> unit -> outcome
(** Run the whole matrix.  [seed] (default 1) drives the deterministic
    tear/flip offsets; [double_stride] (default 7) is how often the
    double-recovery idempotency check runs (every n-th point — it doubles
    the cost of a point).  With [flight_dir], any violations are also
    frozen into a [flight-NNNN.dump] under that directory (what CI
    uploads when the suite fails). *)

val summary : outcome -> string
(** Multi-line human-readable rendering (what the shell's [crashtest]
    prints). *)

type store_outcome = {
  st_seed : int;
  st_ops : int;
  st_points : int;
      (** Crash states swept; each is recovered twice — through the full
          oracle and through {!Hac_core.Recover.mount}. *)
  st_boundary_points : int;
      (** Settle boundaries where the mounted state was compared, exactly,
          against both the oracle's recovery and the acknowledged state. *)
  st_merge_points : int;
      (** Crash states inside the segment-merge (compaction) phase. *)
  st_fast_mounts : int;  (** Clean points the O(delta) fast path handled. *)
  st_full_mounts : int;  (** Clean points that fell back to the oracle. *)
  st_violations : violation list;
}

val run_store : ?seed:int -> unit -> store_outcome
(** The storage-tier sweep: a workload that enables the tier mid-run
    (block puts, a checkpoint committing postings segment + document
    table, a compaction), crashed at every op boundary plus torn and
    bit-flipped variants; every crash state recovered through both the
    oracle and {!Hac_core.Recover.mount}, which must agree at settle
    boundaries and independently satisfy every invariant elsewhere.  A
    second phase grows a delta segment via a fast mount and crashes at
    every point inside the merge that folds the segments together. *)

val summary_store : store_outcome -> string
(** Human-readable rendering of a store sweep. *)
