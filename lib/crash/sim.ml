module Fs = Hac_vfs.Fs
module Store = Hac_fault.Store

(* Applying one logged operation to a tree mirrors what the VFS did when it
   recorded it.  A damaged op (torn payload, halfway rename) may fail to
   apply — e.g. a torn append to a file whose create was itself lost — and
   that is exactly what a real disk would present: the op's effect is
   simply absent.  Errors are therefore swallowed, never propagated. *)
let apply fs (op : Store.op) =
  match op with
  | Store.Mkdir p -> Fs.mkdir fs p
  | Store.Create p -> Fs.create_file fs p
  | Store.Write (p, data) -> Fs.write_file fs p data
  | Store.Append (p, data) -> Fs.append_file fs p data
  | Store.Pwrite (p, pos, data) ->
      let ino = Fs.ino_of_path fs p in
      ignore (Fs.pwrite_ino fs ino ~path:p ~pos data)
  | Store.Unlink p -> Fs.unlink fs p
  | Store.Rmdir p -> Fs.rmdir fs p
  | Store.Symlink { target; link } -> Fs.symlink fs ~target ~link
  | Store.Rename { src; dst } -> Fs.rename fs ~src ~dst
  | Store.Rename_dup { src; dst } ->
      (* The halfway state of a crashed rename: the destination entry made
         it to disk, the source entry was never removed. *)
      if Fs.is_symlink fs src then begin
        let target = Fs.readlink fs src in
        if Fs.lexists fs dst then Fs.unlink fs dst;
        Fs.symlink fs ~target ~link:dst
      end
      else if Fs.is_dir fs src then Fs.mkdir fs dst
      else Fs.write_file fs dst (Fs.read_file fs src)
  | Store.Chmod (p, mode) -> Fs.chmod fs p mode
  | Store.Chown (p, uid) -> Fs.chown fs p uid
  | Store.Fsync _ -> ()

let replay ?into ops =
  let fs = match into with Some fs -> fs | None -> Fs.create () in
  List.iter (fun op -> try apply fs op with Hac_vfs.Errno.Error _ -> ()) ops;
  fs
