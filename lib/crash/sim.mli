(** Reconstruct the file-system tree a crash would leave behind.

    A {!Hac_fault.Store.t} holds the ordered operation log of an instance;
    under its in-order persistence model, every crash state is the replay
    of some prefix of that log into an empty tree, possibly with the first
    lost operation replaced by a damaged variant ({!Hac_fault.Store.torn},
    [flipped], [interrupted]).  This module performs that replay. *)

val apply : Hac_vfs.Fs.t -> Hac_fault.Store.op -> unit
(** Apply one operation.  [Rename_dup] materialises the halfway rename
    (destination written, source kept); [Fsync] is a no-op on the tree.
    Raises {!Hac_vfs.Errno.Error} as the underlying call would. *)

val replay : ?into:Hac_vfs.Fs.t -> Hac_fault.Store.op list -> Hac_vfs.Fs.t
(** Replay an op list into [into] (default: a fresh empty tree) and return
    it.  Individual op failures are swallowed — a damaged op that no longer
    applies is exactly an op whose effect never reached the disk. *)
