module Fileset = Hac_bitset.Fileset

type env = {
  universe : unit -> Fileset.t;
      (* A thunk rather than a [lazy_t] so one long-lived env (e.g. a settle
         pass's evaluator) can serve many evaluations whose effective
         universe differs per call (restriction pushdown). *)
  word : ?within:Fileset.t -> string -> Fileset.t;
  phrase : ?within:Fileset.t -> string list -> Fileset.t;
  approx : ?within:Fileset.t -> string -> int -> Fileset.t;
  attr : ?within:Fileset.t -> string -> string -> Fileset.t;
  regex : ?within:Fileset.t -> string -> Fileset.t;
  dirref : ?within:Fileset.t -> Ast.dirref -> Fileset.t;
}

(* Implementations may ignore [within], so term results are re-clipped
   here; when they honour it, the clip is a cheap no-op intersection. *)
let clip within set =
  match within with None -> set | Some w -> Fileset.inter w set

let rec eval ?within env q =
  match q with
  | Ast.All -> clip within (env.universe ())
  | Ast.Term (Ast.Word w) -> clip within (env.word ?within w)
  | Ast.Term (Ast.Phrase ws) -> clip within (env.phrase ?within ws)
  | Ast.Term (Ast.Approx (w, k)) -> clip within (env.approx ?within w k)
  | Ast.Term (Ast.Attr (a, v)) -> clip within (env.attr ?within a v)
  | Ast.Term (Ast.Regex r) -> clip within (env.regex ?within r)
  | Ast.Term (Ast.Dirref r) -> clip within (env.dirref ?within r)
  | Ast.Not a ->
      let scope = match within with Some s -> s | None -> env.universe () in
      Fileset.diff scope (eval ~within:scope env a)
  | Ast.Or (a, b) -> Fileset.union (eval ?within env a) (eval ?within env b)
  | Ast.And (a, b) ->
      (* Thread the left result into the right operand: with the planner's
         most-selective-first ordering this verifies ever fewer candidates. *)
      let ra = eval ?within env a in
      if Fileset.is_empty ra then Fileset.empty else eval ~within:ra env b

let const_env set =
  {
    universe = (fun () -> set);
    word = (fun ?within:_ _ -> set);
    phrase = (fun ?within:_ _ -> set);
    approx = (fun ?within:_ _ _ -> set);
    attr = (fun ?within:_ _ _ -> set);
    regex = (fun ?within:_ _ -> set);
    dirref = (fun ?within:_ _ -> set);
  }
