let big = max_int / 2

(* Estimates saturate at [big]: clamping every operand into [0, big] first
   means the sum fits in an int, so the old [sa + sb < 0] wrap check (which
   [big + big] evades — it equals [max_int - 1]) is replaced by an exact
   comparison. *)
let saturating_add a b = if a >= big - b then big else a + b

let saturating_mul a b =
  let a = min big (max 0 a) and b = min big (max 1 b) in
  if a = 0 then 0 else if a > big / b then big else a * b

(* Relative cost of verifying one candidate of each term kind: a directory
   reference is a set lookup, words and attributes a token-set probe, a
   phrase a token-stream scan, a regex a full content match, an approximate
   term an edit-distance check against every token.  Multiplying a measured
   candidate count by this weight turns "how many documents" into "how much
   verification work", which is the quantity AND ordering should minimize. *)
let verify_weight = function
  | Ast.Dirref _ -> 1
  | Ast.Word _ | Ast.Attr _ -> 2
  | Ast.Phrase _ -> 3
  | Ast.Regex _ -> 8
  | Ast.Approx _ -> 16

let calibrated ~measured t = saturating_mul (measured t) (verify_weight t)

let rec subtree_cost ~cost = function
  | Ast.Term t -> min big (max 0 (cost t))
  | Ast.And (a, b) -> min (subtree_cost ~cost a) (subtree_cost ~cost b)
  | Ast.Or (a, b) -> saturating_add (subtree_cost ~cost a) (subtree_cost ~cost b)
  | Ast.Not _ | Ast.All -> big

(* Flatten an AND chain into its operands. *)
let rec conjuncts = function
  | Ast.And (a, b) -> conjuncts a @ conjuncts b
  | q -> [ q ]

let rec optimize ?report ~cost q =
  match q with
  | Ast.Term _ | Ast.All -> q
  | Ast.Not a -> Ast.Not (optimize ?report ~cost a)
  | Ast.Or (a, b) -> Ast.Or (optimize ?report ~cost a, optimize ?report ~cost b)
  | Ast.And _ -> (
      let parts = List.map (optimize ?report ~cost) (conjuncts q) in
      let ranked =
        List.stable_sort
          (fun a b -> compare (subtree_cost ~cost a) (subtree_cost ~cost b))
          parts
      in
      (match (report, parts, ranked) with
      | Some f, naive_head :: _, chosen_head :: _ ->
          f
            ~chosen:(subtree_cost ~cost chosen_head)
            ~naive:(subtree_cost ~cost naive_head)
            ~terms:(List.length parts)
      | _ -> ());
      match ranked with
      | [] -> assert false (* conjuncts never returns [] *)
      | first :: rest -> List.fold_left (fun acc p -> Ast.And (acc, p)) first rest)
