(** Query planning: selectivity-ordered conjunctions.

    [a AND b] evaluates [a] first and short-circuits when it is empty, and
    intersecting a small set into a large one is cheaper than the reverse —
    so conjunctions should evaluate their most selective operand first.
    {!optimize} reorders every [AND] chain by a caller-supplied cost
    estimate (typically index candidate counts — cheap postings lookups).

    The rewrite is semantics-preserving: [AND]/[OR] are commutative and
    associative under set evaluation, and operand subtrees are untouched.
    It is applied at evaluation time only; the stored (and printed) query
    keeps the user's shape. *)

val optimize :
  ?report:(chosen:int -> naive:int -> terms:int -> unit) ->
  cost:(Ast.term -> int) ->
  Ast.t ->
  Ast.t
(** Reorder [AND] chains cheapest-first, recursing everywhere.  [cost]
    estimates how large a term's result is (smaller = more selective);
    it is consulted once per term.  [report], when given, is called once
    per reordered [AND] chain with the estimated cost of the operand the
    plan evaluates first ([chosen]), the cost of the operand the user's
    ordering would have evaluated first ([naive]), and the chain length
    ([terms]) — a profiling hook, never affecting the plan. *)

val verify_weight : Ast.term -> int
(** Relative cost of verifying one candidate of the term's kind (a dirref is
    a set lookup = 1; words and attributes probe a token set = 2; phrases
    scan the token stream = 3; regexes match whole contents = 8; approximate
    terms edit-distance every token = 16). *)

val calibrated : measured:(Ast.term -> int) -> Ast.term -> int
(** The calibrated cost model: a measured candidate count (e.g.
    {!Index.term_cost}'s per-container cardinalities) times the term kind's
    {!verify_weight}, saturating at [max_int/2].  Feeding this to
    {!optimize} ranks conjuncts by estimated verification work rather than
    by raw candidate count. *)

val subtree_cost : cost:(Ast.term -> int) -> Ast.t -> int
(** The estimate used for ordering: a term's own cost; [min] over [AND]
    operands (one selective operand bounds the chain); sum over [OR];
    [max_int/2] for [NOT] and [*], which touch the whole universe.  All
    arithmetic saturates at [max_int/2], so pathological costs (e.g. an
    [OR] of two [NOT]s) can never wrap negative and win the ordering. *)
