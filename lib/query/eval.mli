(** Query evaluation over an abstract CBA environment.

    The evaluator is agnostic about where filesets come from: the HAC core
    wires it to the local index, the uid→directory map and the mount table;
    tests wire it to synthetic tables.

    {b Restriction pushdown.}  Every term evaluator receives an optional
    [?within] candidate restriction: the set the result will immediately be
    intersected with.  Implementations may use it to verify fewer candidates
    (the expensive part of Glimpse-style search) — or ignore it entirely;
    the evaluator re-intersects, so pushdown is purely an optimisation.
    [AND] chains thread their accumulated result into the next operand,
    which with {!Planner.optimize} (most selective operand first) gives
    database-style conjunctive evaluation.

    [NOT q] is evaluated as [scope \ q] where scope is the current
    restriction (or the universe at top level); scope restriction composes
    correctly: [(U \ q) ∩ S = S \ (q ∩ S)]. *)

type env = {
  universe : unit -> Hac_bitset.Fileset.t;
      (** All files visible to the query — a thunk, called only by NOT and
          [*], so a long-lived env can serve calls whose effective universe
          differs (restriction pushdown) and implementations can memoize. *)
  word : ?within:Hac_bitset.Fileset.t -> string -> Hac_bitset.Fileset.t;
      (** Whole-word content match. *)
  phrase : ?within:Hac_bitset.Fileset.t -> string list -> Hac_bitset.Fileset.t;
      (** Consecutive words. *)
  approx : ?within:Hac_bitset.Fileset.t -> string -> int -> Hac_bitset.Fileset.t;
      (** Word within k errors. *)
  attr : ?within:Hac_bitset.Fileset.t -> string -> string -> Hac_bitset.Fileset.t;
      (** Metadata match. *)
  regex : ?within:Hac_bitset.Fileset.t -> string -> Hac_bitset.Fileset.t;
      (** Raw-contents regular expression. *)
  dirref : ?within:Hac_bitset.Fileset.t -> Ast.dirref -> Hac_bitset.Fileset.t;
      (** Files in a referenced directory's current result (section 2.5). *)
}

val eval : ?within:Hac_bitset.Fileset.t -> env -> Ast.t -> Hac_bitset.Fileset.t
(** Evaluate a query, optionally restricted to a candidate set.  [And]
    short-circuits when its accumulated result is empty and threads it into
    the remaining operands. *)

val const_env : Hac_bitset.Fileset.t -> env
(** Environment where every term evaluates to the given set (intersected
    with any restriction) — useful for tests and algebraic reasoning. *)
