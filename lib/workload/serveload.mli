(** Trace-driven serving workload: deterministic per-session op streams.

    Each session's stream derives from [(seed, session)] alone, so traces
    are replayable regardless of how a server interleaves sessions.  Reads
    are Zipf-distributed over the shared corpus (hot head, long tail);
    writes stay under a per-session fresh root so sessions never contend on
    a path. *)

type op =
  | Read of string  (** Read a file's contents. *)
  | Readdir of string  (** List a directory. *)
  | Links of string  (** Materialized link set of a semantic directory. *)
  | Mkdir of string
  | Write of string * string  (** path, contents *)
  | Append of string * string
  | Unlink of string
  | Smkdir of string * string  (** path, query *)

val is_write : op -> bool

val describe : op -> string
(** One-line rendering for logs and failure messages. *)

type profile = {
  ops_per_session : int;  (** Stream length (including the leading mkdir). *)
  read_fraction : float;  (** Probability an op is a read. *)
  links_fraction : float;  (** Among reads: probability of a semdir op. *)
  zipf_skew : float;  (** Skew for file/semdir popularity. *)
  write_words : int;  (** Approximate words per written document. *)
}

val default : profile
(** 40 ops, 70% reads, 40% of reads against semantic dirs. *)

val session_ops :
  profile ->
  corpus:Corpus.t ->
  seed:int ->
  session:int ->
  files:string array ->
  semdirs:string array ->
  fresh_root:string ->
  op list
(** The session's op stream.  The first op is always [Mkdir] of the
    session's home ([fresh_root]/s[session]); subsequent writes stay under
    it.  Only pure rank lookups touch [corpus] — its PRNG is never
    consumed, so streams are independent of call order.  Raises
    [Invalid_argument] when [files] is empty. *)
