(* Trace-driven serving workload: a deterministic per-session op stream.

   Each session gets its own splitmix64 generator derived from (seed,
   session), so the stream a session submits is independent of how the
   server interleaves sessions — the chaos harness can replay any client's
   trace bit-for-bit no matter what the scheduler did.  Reads follow a Zipf
   distribution over the shared corpus (a hot head and a long tail, the
   shape real query traffic has); writes land under a per-session fresh
   root so concurrent sessions never race on a path. *)

type op =
  | Read of string
  | Readdir of string
  | Links of string
  | Mkdir of string
  | Write of string * string
  | Append of string * string
  | Unlink of string
  | Smkdir of string * string

let is_write = function
  | Read _ | Readdir _ | Links _ -> false
  | Mkdir _ | Write _ | Append _ | Unlink _ | Smkdir _ -> true

let describe = function
  | Read p -> "read " ^ p
  | Readdir p -> "readdir " ^ p
  | Links p -> "links " ^ p
  | Mkdir p -> "mkdir " ^ p
  | Write (p, _) -> "write " ^ p
  | Append (p, _) -> "append " ^ p
  | Unlink p -> "unlink " ^ p
  | Smkdir (p, q) -> Printf.sprintf "smkdir %s %s" p q

type profile = {
  ops_per_session : int;
  read_fraction : float;
  links_fraction : float;
  zipf_skew : float;
  write_words : int;
}

let default =
  {
    ops_per_session = 40;
    read_fraction = 0.7;
    links_fraction = 0.4;
    zipf_skew = 1.05;
    write_words = 24;
  }

(* A short document built from Zipf-ranked vocabulary words drawn off the
   *session* generator — [Corpus.document] would consume the shared corpus
   PRNG and make one session's content depend on another's schedule. *)
let doc profile corpus g =
  let b = Buffer.create (profile.write_words * 8) in
  for i = 1 to profile.write_words do
    Buffer.add_string b (Corpus.vocab_word corpus (Prng.zipf g ~n:4000 ~skew:profile.zipf_skew));
    if i mod 10 = 0 then Buffer.add_char b '\n' else Buffer.add_char b ' '
  done;
  Buffer.add_char b '\n';
  Buffer.contents b

let session_ops profile ~corpus ~seed ~session ~files ~semdirs ~fresh_root =
  if Array.length files = 0 then invalid_arg "Serveload.session_ops: no files";
  let g = Prng.make ~seed:((seed * 0x9e3779b1) lxor (session * 0x85ebca77) lxor 0x5e17) in
  let home = Printf.sprintf "%s/s%d" fresh_root session in
  let own = ref [] and own_n = ref 0 and created = ref 0 in
  let zipf_of arr = arr.(Prng.zipf g ~n:(Array.length arr) ~skew:profile.zipf_skew) in
  let read_op () =
    if Array.length semdirs > 0 && Prng.float g < profile.links_fraction then
      let sd = zipf_of semdirs in
      if Prng.float g < 0.5 then Links sd else Readdir sd
    else if Prng.float g < 0.15 then Readdir (Filename.dirname (zipf_of files))
    else Read (zipf_of files)
  in
  let write_op () =
    let r = Prng.float g in
    if r < 0.55 || !own_n = 0 then begin
      incr created;
      let p = Printf.sprintf "%s/f%d.txt" home !created in
      own := p :: !own;
      incr own_n;
      Write (p, doc profile corpus g)
    end
    else if r < 0.75 then Append (List.nth !own (Prng.int g !own_n), doc profile corpus g)
    else if r < 0.9 then begin
      let victim = List.nth !own (Prng.int g !own_n) in
      own := List.filter (fun p -> p <> victim) !own;
      decr own_n;
      Unlink victim
    end
    else begin
      incr created;
      Smkdir
        ( Printf.sprintf "%s/q%d" home !created,
          Corpus.vocab_word corpus (Prng.int g 64) )
    end
  in
  let rest =
    List.init (max 0 (profile.ops_per_session - 1)) (fun _ ->
        if Prng.float g < profile.read_fraction then read_op () else write_op ())
  in
  Mkdir home :: rest
