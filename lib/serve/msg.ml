(* The serving layer's wire vocabulary: requests, replies, tickets.

   A client submits an [op] and gets back a [ticket]; the server resolves
   the ticket exactly once — either [Replied] (the op ran; the reply may
   still be a [Nack]) or [Rejected] (admission shed it; the op was *not*
   applied and carries a retry-after hint).  That trichotomy is the
   robustness contract the chaos harness enforces: every submission ends in
   exactly one of these states, never a hang or a silent drop. *)

type read =
  | Read of string  (** File contents. *)
  | Readdir of string  (** Directory entries. *)
  | Links of string  (** Materialized link set of a semantic directory. *)

type write =
  | Mkdir of string
  | Write of string * string
  | Append of string * string
  | Unlink of string
  | Smkdir of string * string  (** path, query *)

type op = R of read | W of write

let is_write = function R _ -> false | W _ -> true

let op_class op = if is_write op then "write" else "read"

let path_of_read = function Read p | Readdir p | Links p -> p

let describe = function
  | R (Read p) -> "read " ^ p
  | R (Readdir p) -> "readdir " ^ p
  | R (Links p) -> "links " ^ p
  | W (Mkdir p) -> "mkdir " ^ p
  | W (Write (p, _)) -> "write " ^ p
  | W (Append (p, _)) -> "append " ^ p
  | W (Unlink p) -> "unlink " ^ p
  | W (Smkdir (p, q)) -> Printf.sprintf "smkdir %s '%s'" p q

type linkrow = {
  l_name : string;
  l_target : string;  (** Canonical target key (path or uri). *)
  l_cls : string;  (** ["permanent"] or ["transient"]. *)
  l_stale : bool;  (** Re-served last-good remote entry. *)
}

type reply =
  | Data of string
  | Entries of string list
  | Linkset of linkrow list
  | Done  (** Write applied and durable. *)
  | Nack of string
      (** The op ran but could not be satisfied.  For a write: it may have
          been applied, but durability was never confirmed — the client
          must treat it as unknown, not as absent. *)

type shed_reason =
  | Queue_full
  | Slo_unmeetable
  | Session_suspended
  | Degraded_writes
  | Deadline_expired
  | Server_stopped

let reason_name = function
  | Queue_full -> "queue-full"
  | Slo_unmeetable -> "slo-unmeetable"
  | Session_suspended -> "session-suspended"
  | Degraded_writes -> "degraded-writes"
  | Deadline_expired -> "deadline-expired"
  | Server_stopped -> "server-stopped"

type outcome =
  | Replied of { reply : reply; seq : int; stale : bool; latency_s : float }
  | Rejected of { reason : shed_reason; retry_after_s : float }

type ticket = {
  op : op;
  session : string;
  submitted_s : float;
  deadline_s : float;
  trace : Hac_obs.Ctx.t;
  mutable outcome : outcome option;
}

let of_workload : Hac_workload.Serveload.op -> op = function
  | Hac_workload.Serveload.Read p -> R (Read p)
  | Hac_workload.Serveload.Readdir p -> R (Readdir p)
  | Hac_workload.Serveload.Links p -> R (Links p)
  | Hac_workload.Serveload.Mkdir p -> W (Mkdir p)
  | Hac_workload.Serveload.Write (p, c) -> W (Write (p, c))
  | Hac_workload.Serveload.Append (p, c) -> W (Append (p, c))
  | Hac_workload.Serveload.Unlink p -> W (Unlink p)
  | Hac_workload.Serveload.Smkdir (p, q) -> W (Smkdir (p, q))
