(** The serial executable spec — an Ernst-style sequential twin.

    Replays the server's commit log, prefix by prefix, through a fresh
    sequential engine and re-evaluates every observed read at its
    snapshot's prefix.  A difference is a snapshot-consistency violation:
    the server answered a read with a state no serial execution of the
    committed writes could produce. *)

type observation = {
  ob_read : Msg.read;
  ob_seq : int;  (** Committed prefix the server claims the reply reflects. *)
  ob_reply : Msg.reply;
}

val observe : Msg.ticket -> observation option
(** The observation a resolved read ticket contributes ([None] for
    writes, rejections and unresolved tickets). *)

val eval_read : Hac_core.Hac.t -> Msg.read -> Msg.reply
(** Evaluate a read on the twin with the snapshot's exact semantics
    (regular files only, listings without [/.hac], normalized [Nack]s). *)

val check :
  ?flight:Hac_obs.Flight.t ->
  build:(unit -> Hac_core.Hac.t) ->
  writes:Msg.write list ->
  observations:observation list ->
  unit ->
  string list
(** [check ~build ~writes ~observations ()] replays [writes] (the commit log,
    in order) through [build ()] — a fresh engine with the same initial
    corpus and semantic directories but no mounts, faults or store — and
    checks each observation at its prefix.  Returns violation
    descriptions; [[]] means every read was prefix-consistent.  Remote
    link rows are dropped before comparison (the twin mounts nothing);
    keep remote-facing reads out of [observations].  With [flight],
    violations are recorded as transitions and trigger a breach dump. *)
