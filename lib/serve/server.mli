(** The multi-session server: snapshot-isolated reads, batched
    group-commit writes, admission control, graceful degradation.

    Control flow is single-threaded — [submit]/[pump]/[drain]/[stop] are
    called from one domain; the domain pool is used only inside [pump] to
    evaluate a batch's reads concurrently against the current immutable
    snapshot.  Writes are applied sequentially and settled {e once per
    batch} (group commit: one journal fsync instead of one per mutation);
    acks are released only after the simulated device's durability
    frontier covers the batch.

    Degraded mode — settles over budget, a mounted namespace's breaker
    open, or durability stalled — sheds writes at admission and keeps
    serving reads from the last published snapshot, marked stale.
    Availability degrades in freshness, never in consistency: a snapshot
    is always a fully settled, fully durable committed-write prefix. *)

type config = {
  domains : int;  (** Read-evaluation pool width (1 = inline). *)
  max_batch : int;  (** Tickets consumed per pump. *)
  admission : Admission.config;
  read_cost_s : float;  (** Virtual cost of one snapshot read. *)
  write_cost_s : float;  (** Virtual cost of applying one write. *)
  settle_cost_s : float;  (** Base virtual cost of a settle. *)
  settle_budget_s : float;  (** Settles beyond this trip degraded mode. *)
  fsync_retries : int;  (** Barrier retries when durability stalls. *)
  slo_objectives : Hac_obs.Slo.objective list;
      (** Per-op latency/error objectives; a multi-window burn-rate
          breach joins the degraded causes as cause ["slo"]. *)
}

val default_config : config

type stats = {
  submitted : int;
  admitted : int;
  shed : int;  (** Rejections, including expiries. *)
  expired : int;  (** Deadline passed while queued. *)
  completed : int;  (** Replied (including [Nack]s). *)
  nacked : int;
  commits : int;  (** Writes in the commit log. *)
  acked : int;  (** Writes acknowledged durable. *)
  stale_reads : int;  (** Reads served from a lagging snapshot. *)
  batches : int;
}

type t

val create : ?config:config -> Hac_core.Hac.t -> t
(** Wrap an engine: disables per-mutation settling (restored by {!stop}),
    selects [`Batch] durability, settles, and captures the seq-0
    snapshot.  Instruments register in the engine's metrics registry
    under [serve.*]. *)

val submit : t -> session:string -> Msg.op -> Msg.ticket
(** Submit one op for [session] (created on first use).  The ticket is
    resolved immediately when admission sheds the op, otherwise queued
    until a {!pump} resolves it. *)

val pump : t -> unit
(** Process one batch: expire overdue tickets, evaluate reads against the
    snapshot on the pool, apply writes, settle once, confirm durability,
    publish the next snapshot and release acks. *)

val drain : ?max_pumps:int -> t -> unit
(** Pump until nothing is queued or pending (bounded by [max_pumps],
    default 64); whatever remains is resolved explicitly — queued tickets
    as [Rejected Server_stopped], unacked writes as
    [Nack "durability unconfirmed"].  The no-hang contract holds even
    against a device that never honours another fsync. *)

val stop : t -> unit
(** {!drain}, shut the pool down, restore the engine's auto-sync setting.
    Subsequent submissions are rejected with [Server_stopped]. *)

val apply_write : Hac_core.Hac.t -> Msg.write -> unit
(** Apply one write through the engine's interposed wrappers (raises
    engine errors).  Shared with {!Spec} so the serial twin replays
    commits with exactly the serving semantics. *)

val session : t -> string -> Session.t
(** Find or create a session. *)

val sessions : t -> Session.t list
(** All sessions, sorted by id. *)

val stats : t -> stats
val snapshot : t -> Snapshot.t
val committed_writes : t -> Msg.write list
(** The commit log in commit order — the input to {!Spec.check}. *)

val is_degraded : t -> bool
val degraded_reason : t -> string

val degraded_causes : t -> string list
(** Stable cause names behind {!is_degraded}: ["settle"], ["mount"],
    ["durability"], ["slo"] (see {!Admission.cause_name}). *)

val slo : t -> Hac_obs.Slo.t
(** The server's SLO monitor.  Fed by every [Replied] ticket (rejections
    are excluded — counting deliberate sheds as errors would make
    degraded mode self-sustaining); evaluated each pump. *)

val flight : t -> Hac_obs.Flight.t
(** The engine's flight recorder ({!Hac_core.Hac.flight}): admission
    sheds, degraded flips and SLO alerts are recorded as transitions, and
    a rising SLO alert triggers an automatic dump when enabled. *)

val queue_depth : t -> int
