(* Per-client session state: identity, a private circuit breaker, and
   counters.

   The breaker is the session's admission guard: every shed records a
   failure, every admitted op a success, so a client that keeps hammering
   a loaded server trips its own breaker and is suspended for the probe
   interval instead of occupying the admission path — per-session backoff
   enforced server-side. *)

type t = {
  id : string;
  breaker : Hac_fault.Breaker.t;
  mutable shed_streak : int;  (** Consecutive sheds, drives retry-after. *)
  mutable submitted : int;
  mutable admitted : int;
  mutable shed : int;
  mutable completed : int;  (** Replied, including [Nack]s. *)
  mutable failed : int;  (** [Nack] replies. *)
  mutable over_slo : int;  (** Replies that missed their SLO target. *)
  mutable last_reject : string option;
}

let create ?(breaker = Hac_fault.Breaker.default_config) id =
  {
    id;
    breaker = Hac_fault.Breaker.create ~config:breaker ();
    shed_streak = 0;
    submitted = 0;
    admitted = 0;
    shed = 0;
    completed = 0;
    failed = 0;
    over_slo = 0;
    last_reject = None;
  }

let breaker_state t = Hac_fault.Breaker.state t.breaker

let render t =
  Printf.sprintf "%-10s %-9s  sub %4d  adm %4d  shed %4d  done %4d  nack %3d  slo! %3d%s"
    t.id
    (Hac_fault.Breaker.state_name (breaker_state t))
    t.submitted t.admitted t.shed t.completed t.failed t.over_slo
    (match t.last_reject with None -> "" | Some r -> "  last-reject " ^ r)
