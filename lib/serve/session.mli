(** Per-client session state.

    Each session carries a private circuit breaker used by admission:
    sheds record failures, admissions record successes, so a client that
    hammers a loaded server is suspended (breaker open) for the probe
    interval — server-side per-session backoff. *)

type t = {
  id : string;
  breaker : Hac_fault.Breaker.t;
  mutable shed_streak : int;  (** Consecutive sheds; drives retry-after. *)
  mutable submitted : int;
  mutable admitted : int;
  mutable shed : int;
  mutable completed : int;  (** Replied, including [Nack]s. *)
  mutable failed : int;  (** [Nack] replies. *)
  mutable over_slo : int;  (** Replies that missed their SLO target. *)
  mutable last_reject : string option;
}

val create : ?breaker:Hac_fault.Breaker.config -> string -> t

val breaker_state : t -> Hac_fault.Breaker.state

val render : t -> string
(** One status line for the shell's [sessions] table. *)
