(* The serial executable spec — an Ernst-style twin of the server.

   The server promises snapshot isolation over a single commit order:
   every read it answers reflects exactly the first [seq] committed
   writes, fully settled.  The checker takes that promise literally: it
   replays the commit log, prefix by prefix, through a {e fresh
   sequential} engine (no pool, no faults, no store) and re-evaluates
   every observed read against the twin at its snapshot's prefix.  Any
   difference is a consistency violation — a read that saw a state no
   serial execution could produce.

   Settle placement is the one freedom: the server settles once per
   batch, the twin settles at each checked prefix.  Those agree because
   every observed [seq] is a batch boundary (snapshots are only published
   there) and a settle's outcome depends only on the current tree, not on
   how many settles produced it.

   Remote entries are outside the twin (it mounts nothing), so link-set
   comparisons drop remote rows; the harness likewise keeps remote-facing
   reads out of the observation set. *)

module Fs = Hac_vfs.Fs
module Hac = Hac_core.Hac
module Link = Hac_core.Link

type observation = { ob_read : Msg.read; ob_seq : int; ob_reply : Msg.reply }

let observe (tk : Msg.ticket) =
  match (tk.op, tk.outcome) with
  | Msg.R r, Some (Msg.Replied { reply; seq; _ }) ->
      Some { ob_read = r; ob_seq = seq; ob_reply = reply }
  | _ -> None

let is_remote target = String.length target > 2 && String.contains target ':'

(* Normalize a reply for comparison: drop remote link rows (the twin has
   no mounts) and their stale flags with them. *)
let local_reply = function
  | Msg.Linkset rows ->
      Msg.Linkset
        (List.filter (fun (r : Msg.linkrow) -> not (is_remote r.l_target)) rows)
  | r -> r

(* Evaluate a read on the twin with exactly the snapshot's semantics:
   regular files only (lstat, not follow), listings without [/.hac],
   links only for semantic directories, every failure the same
   normalized [Nack]. *)
let eval_read twin r =
  let fs = Hac.fs twin in
  match r with
  | Msg.Read p -> (
      match Fs.lstat fs p with
      | { Fs.st_kind = Hac_vfs.Event.File; _ } -> Msg.Data (Fs.read_file fs p)
      | _ -> Msg.Nack "unreadable"
      | exception _ -> Msg.Nack "unreadable")
  | Msg.Readdir p -> (
      match Hac.readdir twin p with
      | entries ->
          Msg.Entries (if p = "/" then List.filter (fun n -> n <> ".hac") entries else entries)
      | exception _ -> Msg.Nack "unreadable")
  | Msg.Links p -> (
      if not (try Hac.is_semantic twin p with _ -> false) then Msg.Nack "unreadable"
      else
        Msg.Linkset
          (List.filter_map
             (fun (l : Link.t) ->
               match l.target with
               | Link.Remote _ -> None
               | Link.Local _ ->
                   Some
                     {
                       Msg.l_name = l.name;
                       l_target = Link.target_key l.target;
                       l_cls = Link.cls_name l.cls;
                       l_stale = false;
                     })
             (Hac.links twin p)))

let render_reply = function
  | Msg.Data s -> Printf.sprintf "data(%d bytes)" (String.length s)
  | Msg.Entries es -> "entries[" ^ String.concat "," es ^ "]"
  | Msg.Linkset rows ->
      "links["
      ^ String.concat ","
          (List.map (fun (r : Msg.linkrow) -> r.l_name ^ "->" ^ r.l_target) rows)
      ^ "]"
  | Msg.Done -> "done"
  | Msg.Nack m -> "nack(" ^ m ^ ")"

let reply_equal a b =
  match (a, b) with
  | Msg.Data x, Msg.Data y -> x = y
  | Msg.Entries x, Msg.Entries y -> List.sort compare x = List.sort compare y
  | Msg.Linkset x, Msg.Linkset y ->
      let key (r : Msg.linkrow) = (r.l_name, r.l_target, r.l_cls) in
      List.sort compare (List.map key x) = List.sort compare (List.map key y)
  | Msg.Nack _, Msg.Nack _ -> true
  | Msg.Done, Msg.Done -> true
  | _ -> false

(* Check every observation against the twin at its prefix.  [build] makes
   the fresh twin (same initial corpus and semantic directories as the
   server's engine, no mounts, no store); [writes] is the commit log in
   commit order.  Returns violation descriptions, empty when every read
   is prefix-consistent.  With [flight], each violation is recorded as a
   transition and the run-up is frozen to a dump (a spec violation is a
   breach — the recent history is exactly what debugging needs). *)
let check ?flight ~build ~writes ~observations () =
  let obs = List.sort (fun a b -> compare a.ob_seq b.ob_seq) observations in
  let writes = Array.of_list writes in
  let twin = build () in
  Hac.settle twin;
  let cur = ref 0 in
  let violations = ref [] in
  List.iter
    (fun ob ->
      if ob.ob_seq > !cur then begin
        while !cur < ob.ob_seq && !cur < Array.length writes do
          (try Server.apply_write twin writes.(!cur)
           with _ -> () (* the server committed it, so this cannot fail; belt and braces *));
          incr cur
        done;
        Hac.settle twin
      end;
      if ob.ob_seq > Array.length writes then
        violations :=
          Printf.sprintf "read at seq %d beyond commit log (%d commits)" ob.ob_seq
            (Array.length writes)
          :: !violations
      else
        let expected = eval_read twin ob.ob_read in
        let got = local_reply ob.ob_reply in
        if not (reply_equal expected got) then
          violations :=
            Printf.sprintf "%s @seq %d: served %s, serial spec %s"
              (Msg.describe (Msg.R ob.ob_read))
              ob.ob_seq (render_reply got) (render_reply expected)
          :: !violations)
    obs;
  let violations = List.rev !violations in
  (match flight with
  | Some fl when violations <> [] ->
      List.iter
        (fun v ->
          Hac_obs.Flight.transition fl ~subsystem:"spec" ~from_:"consistent"
            ~to_:"violated" ~reason:v)
        violations;
      ignore
        (Hac_obs.Flight.breach fl
           ~reason:(Printf.sprintf "%d spec violations" (List.length violations)))
  | _ -> ());
  violations
