(** Requests, replies and tickets of the serving layer.

    The robustness contract: every submitted op resolves to exactly one
    {!outcome} — [Replied] (the op ran; the reply may be a [Nack]) or
    [Rejected] (admission shed it; the op was {e not} applied, retry is
    safe).  Never a hang, never a silent drop. *)

type read =
  | Read of string  (** File contents. *)
  | Readdir of string  (** Directory entries. *)
  | Links of string  (** Materialized link set of a semantic directory. *)

type write =
  | Mkdir of string
  | Write of string * string
  | Append of string * string
  | Unlink of string
  | Smkdir of string * string  (** path, query *)

type op = R of read | W of write

val is_write : op -> bool

val op_class : op -> string
(** ["read"] or ["write"] — the request class SLO objectives key on. *)

val path_of_read : read -> string

val describe : op -> string
(** One-line rendering for logs and failure messages. *)

type linkrow = {
  l_name : string;
  l_target : string;  (** Canonical target key (path or uri). *)
  l_cls : string;  (** ["permanent"] or ["transient"]. *)
  l_stale : bool;  (** Re-served last-good remote entry. *)
}

type reply =
  | Data of string
  | Entries of string list
  | Linkset of linkrow list
  | Done  (** Write applied and durable. *)
  | Nack of string
      (** The op ran but could not be satisfied.  For a write the
          application may have happened without durability confirmation —
          the client must treat the write's fate as unknown. *)

type shed_reason =
  | Queue_full  (** Admission queue at its bound. *)
  | Slo_unmeetable  (** Estimated wait already blows the deadline. *)
  | Session_suspended  (** The session's own breaker is open. *)
  | Degraded_writes  (** Server degraded: writes shed, reads served stale. *)
  | Deadline_expired  (** Admitted, but expired in queue before running. *)
  | Server_stopped

val reason_name : shed_reason -> string

type outcome =
  | Replied of {
      reply : reply;
      seq : int;  (** Committed-write prefix the reply reflects. *)
      stale : bool;  (** Snapshot lagged the commit frontier. *)
      latency_s : float;  (** Virtual submit-to-resolve latency. *)
    }
  | Rejected of { reason : shed_reason; retry_after_s : float }

type ticket = {
  op : op;
  session : string;
  submitted_s : float;
  deadline_s : float;
  trace : Hac_obs.Ctx.t;
      (** Request-scoped trace context: a 63-bit trace id plus the
          per-stage breakdown (admission/queue/eval/settle/fsync) the
          server records as the ticket moves; for a resolved ticket the
          stages sum to the reported latency. *)
  mutable outcome : outcome option;  (** Set exactly once by the server. *)
}

val of_workload : Hac_workload.Serveload.op -> op
(** Embed a trace-driven workload op. *)
