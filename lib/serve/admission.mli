(** Admission control — decided before any work, so a shed op is
    guaranteed untouched state and retrying is always safe.

    Check order: session breaker, degraded-mode write shedding, queue
    bound, SLO feasibility.  Retry-after hints grow with the session's
    consecutive-shed streak through the shared deterministic-jitter
    backoff. *)

type config = {
  queue_bound : int;  (** Max queued tickets before load-shedding. *)
  slo_s : float;  (** Default per-op deadline (submit time + slo). *)
  session_breaker : Hac_fault.Breaker.config;  (** Per-session guard. *)
  backoff : Hac_fault.Backoff.t;  (** Shapes retry-after hints. *)
  seed : int;  (** Jitter seed. *)
}

val default : config
(** Queue bound 64, 30 s SLO, suspend after 8 consecutive sheds. *)

type decision = Admit | Shed of Msg.shed_reason * float  (** reason, retry-after. *)

(** Why the server is in degraded mode.  Recomputed every pump by the
    server; the names ([cause_name]) are the stable vocabulary used in
    metrics, flight-recorder transitions and tests. *)
type degraded_cause =
  | Settle_error of string
  | Settle_over_budget of { took_s : float; budget_s : float }
  | Mount_breaker
  | Durability_stalled
  | Slo_burn of string  (** Multi-window burn-rate alert detail. *)

val cause_name : degraded_cause -> string
(** ["settle"], ["mount"], ["durability"] or ["slo"]. *)

val describe_cause : degraded_cause -> string

val decide :
  config ->
  session:Session.t ->
  now:float ->
  queue_depth:int ->
  est_wait_s:float ->
  deadline_s:float ->
  degraded:bool ->
  is_write:bool ->
  decision

val record_shed : Session.t -> now:float -> reason:Msg.shed_reason -> unit
(** Feed a shed back into the session: extends the breaker failure streak
    (enough consecutive sheds suspends the session) and the shed streak
    that lengthens retry-after hints. *)

val record_admit : Session.t -> unit
(** Feed an admission back: resets the streaks. *)
