(* Immutable copy-on-write snapshots of the served namespace.

   A snapshot is three persistent maps — file contents, directory entries,
   semantic-directory link sets — captured at a settle boundary, so a
   reader never observes torn scope state: every read against one snapshot
   sees the same committed-write prefix ([seq]).  Publishing a new snapshot
   after a batch reuses the previous maps and refreshes only the touched
   paths (plus every semantic directory, whose link sets a settle may have
   rewritten anywhere), so the copy cost tracks the batch, not the tree.

   Reads here are pure map lookups: safe to run from any pool domain with
   no locks, no VFS access and no metrics. *)

module Fs = Hac_vfs.Fs
module Vpath = Hac_vfs.Vpath
module Hac = Hac_core.Hac
module Link = Hac_core.Link
module SMap = Map.Make (String)

type t = {
  seq : int;  (** Committed writes reflected in this view. *)
  published_s : float;  (** Virtual publication time. *)
  files : string SMap.t;
  dirs : string list SMap.t;
  links : Msg.linkrow list SMap.t;
}

let seq t = t.seq
let published_s t = t.published_s
let file_count t = SMap.cardinal t.files
let dir_count t = SMap.cardinal t.dirs

let meta_root = "/.hac"

let in_meta path = path = meta_root || String.length path > 5 && String.sub path 0 6 = "/.hac/"

(* Directory listing as served: the metadata area never appears. *)
let dir_entries hac path =
  let names = Hac.readdir hac path in
  if path = "/" then List.filter (fun n -> n <> ".hac") names else names

let linkrows hac path =
  let stale =
    List.filter_map
      (fun (rr : Hac_core.Semdir.remote_result) ->
        if rr.rr_stale then Some rr.rr_uri else None)
      (Hac.stale_remotes hac path)
  in
  List.map
    (fun (l : Link.t) ->
      let key = Link.target_key l.target in
      {
        Msg.l_name = l.name;
        l_target = key;
        l_cls = Link.cls_name l.cls;
        l_stale = List.mem key stale;
      })
    (Hac.links hac path)

(* Refresh one path in the maps: as a file, as a directory, or gone. *)
let refresh hac path (files, dirs) =
  let fs = Hac.fs hac in
  let files =
    if Fs.is_file fs path then SMap.add path (Fs.read_file fs path) files
    else SMap.remove path files
  in
  let dirs =
    if Fs.is_dir fs path then SMap.add path (dir_entries hac path) dirs
    else SMap.remove path dirs
  in
  (files, dirs)

(* The link map is rebuilt from scratch each publication: semantic
   directories are few next to files, and starting empty drops any that
   were removed since the previous snapshot. *)
let refresh_semdirs hac dirs =
  List.fold_left
    (fun (dirs, links) sd ->
      (SMap.add sd (dir_entries hac sd) dirs, SMap.add sd (linkrows hac sd) links))
    (dirs, SMap.empty) (Hac.semantic_dirs hac)

let capture hac ~seq ~now =
  let fs = Hac.fs hac in
  let files = ref SMap.empty and dirs = ref SMap.empty in
  dirs := SMap.add "/" (dir_entries hac "/") !dirs;
  Fs.walk fs "/" (fun path st ->
      if not (in_meta path) then
        match st.Fs.st_kind with
        | Hac_vfs.Event.File -> files := SMap.add path (Fs.read_file fs path) !files
        | Hac_vfs.Event.Dir -> dirs := SMap.add path (dir_entries hac path) !dirs
        | Hac_vfs.Event.Link -> ());
  let dirs, links = refresh_semdirs hac !dirs in
  { seq; published_s = now; files = !files; dirs; links }

let advance t hac ~seq ~now ~touched =
  (* Refresh the touched paths and their parents (an entry appeared or
     vanished there), then rebuild every semantic directory's view — a
     settle may have rewritten link sets far from the touched paths.
     Everything else is shared structurally with the previous snapshot. *)
  let parents =
    List.sort_uniq compare (List.map Filename.dirname touched)
  in
  let files, dirs =
    List.fold_left
      (fun acc p -> refresh hac (Vpath.normalize p) acc)
      (t.files, t.dirs)
      (touched @ parents)
  in
  let dirs, links = refresh_semdirs hac dirs in
  { seq; published_s = now; files; dirs; links }

(* Pure read against the snapshot.  Every failure surfaces as the same
   [Nack "unreadable"] the sequential spec produces, so the checker
   compares one normalized error surface. *)
let read t = function
  | Msg.Read p -> (
      match SMap.find_opt (Vpath.normalize p) t.files with
      | Some c -> Msg.Data c
      | None -> Msg.Nack "unreadable")
  | Msg.Readdir p -> (
      match SMap.find_opt (Vpath.normalize p) t.dirs with
      | Some es -> Msg.Entries es
      | None -> Msg.Nack "unreadable")
  | Msg.Links p -> (
      match SMap.find_opt (Vpath.normalize p) t.links with
      | Some rows -> Msg.Linkset rows
      | None -> Msg.Nack "unreadable")
