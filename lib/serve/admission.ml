(* Admission control: the front door of the server.

   Every decision is made before any work happens, so a shed op is
   guaranteed untouched state — retrying it is always safe.  The checks
   run cheapest-first:

   1. session suspended?   the client's own breaker is open — retry after
                           its probe interval;
   2. degraded writes?     the server is in degraded mode (settles over
                           budget, a mount's breaker open, or durability
                           stalled) — reads still flow (served stale),
                           writes are shed with exponential retry-after;
   3. queue full?          the bounded queue is at capacity — shed rather
                           than queue without bound;
   4. SLO unmeetable?      the estimated wait already blows the op's
                           deadline — reject now instead of admitting work
                           we know will expire.

   Retry-after hints grow with the session's consecutive-shed streak via
   the shared deterministic-jitter backoff, so a polite client backs off
   exactly like a retried remote call would. *)

type config = {
  queue_bound : int;  (** Max queued tickets before load-shedding. *)
  slo_s : float;  (** Default per-op deadline (submit + slo). *)
  session_breaker : Hac_fault.Breaker.config;
  backoff : Hac_fault.Backoff.t;  (** Shapes retry-after hints. *)
  seed : int;  (** Jitter seed for the hints. *)
}

let default =
  {
    queue_bound = 64;
    slo_s = 30.0;
    session_breaker =
      { Hac_fault.Breaker.failure_threshold = 8; probe_interval = 10.0; success_to_close = 1 };
    backoff = { Hac_fault.Backoff.default with base = 0.5; max_delay = 30.0 };
    seed = 0;
  }

type decision = Admit | Shed of Msg.shed_reason * float

(* Why the server is (or would be) in degraded mode.  The serving layer
   recomputes the cause list every pump; [Slo_burn] arrives from the SLO
   monitor's multi-window burn-rate evaluation, making overload response
   principled rather than breaker-only. *)
type degraded_cause =
  | Settle_error of string
  | Settle_over_budget of { took_s : float; budget_s : float }
  | Mount_breaker
  | Durability_stalled
  | Slo_burn of string

let cause_name = function
  | Settle_error _ | Settle_over_budget _ -> "settle"
  | Mount_breaker -> "mount"
  | Durability_stalled -> "durability"
  | Slo_burn _ -> "slo"

let describe_cause = function
  | Settle_error e -> "settle failed: " ^ e
  | Settle_over_budget { took_s; budget_s } ->
      Printf.sprintf "settle %.2fs over %.2fs budget" took_s budget_s
  | Mount_breaker -> "mounted namespace breaker open"
  | Durability_stalled -> "durability stalled (fsync not honoured)"
  | Slo_burn detail -> "slo burn-rate alert: " ^ detail

let retry_after config (session : Session.t) =
  Hac_fault.Backoff.delay ~seed:(config.seed lxor Hashtbl.hash session.id) config.backoff
    ~attempt:(min session.shed_streak 16)

let decide config ~(session : Session.t) ~now ~queue_depth ~est_wait_s ~deadline_s ~degraded
    ~is_write =
  if not (Hac_fault.Breaker.allow session.breaker ~now) then
    Shed (Msg.Session_suspended, config.session_breaker.probe_interval)
  else if is_write && degraded then Shed (Msg.Degraded_writes, retry_after config session)
  else if queue_depth >= config.queue_bound then Shed (Msg.Queue_full, retry_after config session)
  else if now +. est_wait_s > deadline_s then
    Shed (Msg.Slo_unmeetable, retry_after config session)
  else Admit

(* Bookkeeping both outcomes feed back into the session so the next
   decision sees the history: sheds extend the breaker's failure streak
   (enough of them suspends the session), admissions reset it. *)
let record_shed (session : Session.t) ~now ~reason =
  session.shed <- session.shed + 1;
  session.shed_streak <- session.shed_streak + 1;
  session.last_reject <- Some (Msg.reason_name reason);
  Hac_fault.Breaker.record_failure session.breaker ~now

let record_admit (session : Session.t) =
  session.admitted <- session.admitted + 1;
  session.shed_streak <- 0;
  Hac_fault.Breaker.record_success session.breaker
