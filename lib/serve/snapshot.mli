(** Immutable copy-on-write snapshots of the served namespace.

    Captured at settle boundaries, so a reader never observes torn scope
    state: every read against one snapshot reflects the same
    committed-write prefix ({!seq}).  Reads are pure persistent-map
    lookups — safe from any pool domain, no locks, no VFS access. *)

type t

val seq : t -> int
(** Committed writes reflected in this view. *)

val published_s : t -> float
(** Virtual time the snapshot was published. *)

val file_count : t -> int
val dir_count : t -> int

val capture : Hac_core.Hac.t -> seq:int -> now:float -> t
(** Full capture of the current (settled) state: file contents, directory
    listings (the [/.hac] metadata area excluded) and semantic-directory
    link sets with stale flags. *)

val advance : t -> Hac_core.Hac.t -> seq:int -> now:float -> touched:string list -> t
(** Publish the post-batch view: refreshes the [touched] paths and their
    parent directories, rebuilds every semantic directory's entries and
    link set (a settle may rewrite them anywhere), and structurally shares
    the rest with the previous snapshot. *)

val read : t -> Msg.read -> Msg.reply
(** Evaluate a read against the snapshot.  Anything unresolvable — missing
    path, wrong kind, non-semantic directory for [Links] — is the
    normalized [Nack "unreadable"], matching the sequential spec. *)
