(* The multi-session server: snapshot-isolated reads, batched group-commit
   writes, admission control and graceful degradation.

   One pump cycle is the unit of progress:

     admit  — [submit] already filtered through {!Admission}; the queue
              holds only admitted tickets;
     batch  — pop up to [max_batch] tickets, expiring any whose deadline
              passed while queued (explicit rejection, never a hang);
     reads  — evaluated concurrently on the domain pool against the
              current immutable snapshot (pure map lookups, no locks);
     writes — applied sequentially to the engine in pop order; each
              success appends to the commit log, each engine error is an
              immediate [Nack] (not committed);
     settle — one settle for the whole batch: this is group commit, one
              journal fsync instead of one per mutation;
     ack    — writes are acknowledged only once the simulated device
              confirms the batch durable (the durability frontier covers
              the op log); then the next snapshot is published and reads
              start seeing the batch.

   Degraded mode is entered when settles blow their budget, a mounted
   namespace's breaker is open, or durability stalls (fsyncs swallowed).
   Degraded, the server sheds writes at admission and keeps serving reads
   from the last published snapshot, marked stale — availability for
   freshness, never for consistency: a snapshot is always a committed
   prefix.

   Single-threaded control: [submit]/[pump]/[drain] are called from one
   domain (the pool is used only inside [pump] for read evaluation), so
   plain mutable state and caller-domain metrics are safe. *)

module Fs = Hac_vfs.Fs
module Hac = Hac_core.Hac
module Clock = Hac_fault.Clock
module Metrics = Hac_obs.Metrics
module Trace = Hac_obs.Trace
module Ctx = Hac_obs.Ctx
module Flight = Hac_obs.Flight
module Slo = Hac_obs.Slo
module Pool = Hac_par.Pool

type config = {
  domains : int;  (** Read-evaluation pool width (1 = inline). *)
  max_batch : int;  (** Tickets consumed per pump. *)
  admission : Admission.config;
  read_cost_s : float;  (** Virtual cost of one snapshot read. *)
  write_cost_s : float;  (** Virtual cost of applying one write. *)
  settle_cost_s : float;  (** Base virtual cost of a settle. *)
  settle_budget_s : float;  (** Settles beyond this trip degraded mode. *)
  fsync_retries : int;  (** Re-fsync attempts when durability stalls. *)
  slo_objectives : Slo.objective list;  (** Per-op latency/error objectives. *)
}

let default_config =
  {
    domains = 1;
    max_batch = 16;
    admission = Admission.default;
    read_cost_s = 0.002;
    write_cost_s = 0.01;
    settle_cost_s = 0.05;
    settle_budget_s = 2.0;
    fsync_retries = 2;
    slo_objectives = Slo.default_objectives;
  }

type stats = {
  submitted : int;
  admitted : int;
  shed : int;
  expired : int;
  completed : int;
  nacked : int;
  commits : int;
  acked : int;
  stale_reads : int;
  batches : int;
}

type instruments = {
  c_admit : Metrics.counter;
  c_shed : Metrics.counter;
  c_expired : Metrics.counter;
  c_commits : Metrics.counter;
  c_acked : Metrics.counter;
  c_nacked : Metrics.counter;
  c_stale : Metrics.counter;
  g_queue : Metrics.gauge;
  g_degraded : Metrics.gauge;
  h_batch : Metrics.histogram;
  h_read : Metrics.histogram;
  h_write : Metrics.histogram;
  h_settle : Metrics.histogram;
  h_latency : Metrics.histogram;
}

type t = {
  hac : Hac.t;
  config : config;
  pool : Pool.t option;
  clock : Clock.t;
  sessions : (string, Session.t) Hashtbl.t;
  queue : Msg.ticket Queue.t;
  mutable queued_cost_s : float;  (** Estimated cost of the queue. *)
  mutable unacked : Msg.ticket list;  (** Committed, awaiting durability (reversed). *)
  mutable snap : Snapshot.t;
  mutable commits : Msg.write list;  (** Commit log, reversed. *)
  mutable committed_n : int;
  mutable degraded : bool;
  mutable degraded_reason : string;
  mutable causes : Admission.degraded_cause list;
  mutable last_settle_s : float;
  mutable last_settle_error : string option;
  mutable stopped : bool;
  prior_auto_sync : bool;
  ids : Ctx.gen;  (** Trace-id stream for tickets. *)
  slo : Slo.t;
  flight : Flight.t;
  mutable s : stats;
  i : instruments;
}

let zero_stats =
  {
    submitted = 0;
    admitted = 0;
    shed = 0;
    expired = 0;
    completed = 0;
    nacked = 0;
    commits = 0;
    acked = 0;
    stale_reads = 0;
    batches = 0;
  }

let make_instruments reg =
  {
    c_admit = Metrics.counter reg "serve.admit";
    c_shed = Metrics.counter reg "serve.shed";
    c_expired = Metrics.counter reg "serve.expired";
    c_commits = Metrics.counter reg "serve.commits";
    c_acked = Metrics.counter reg "serve.acked";
    c_nacked = Metrics.counter reg "serve.nacked";
    c_stale = Metrics.counter reg "serve.stale_reads";
    g_queue = Metrics.gauge reg "serve.queue_depth";
    g_degraded = Metrics.gauge reg "serve.degraded";
    h_batch = Metrics.histogram reg "serve.batch_size";
    h_read = Metrics.histogram reg "serve.read_s";
    h_write = Metrics.histogram reg "serve.write_s";
    h_settle = Metrics.histogram reg "serve.settle_s";
    h_latency = Metrics.histogram reg "serve.latency_s";
  }

let create ?(config = default_config) hac =
  let prior_auto_sync = Hac.auto_sync_enabled hac in
  (* Group commit owns the settle cadence: no per-mutation settles, and
     journal appends ride the per-settle durability barrier. *)
  Hac.set_auto_sync hac false;
  Hac.set_durability hac `Batch;
  Hac.settle ~domains:config.domains hac;
  let clock = Hac.clock hac in
  let snap = Snapshot.capture hac ~seq:0 ~now:(Clock.now clock) in
  (* The capture materialized transient links; barrier the tail (see
     [confirm]). *)
  Fs.fsync (Hac.fs hac) "/";
  {
    hac;
    config;
    pool = (if config.domains > 1 then Some (Pool.create ~domains:config.domains ()) else None);
    clock;
    sessions = Hashtbl.create 16;
    queue = Queue.create ();
    queued_cost_s = 0.0;
    unacked = [];
    snap;
    commits = [];
    committed_n = 0;
    degraded = false;
    degraded_reason = "";
    causes = [];
    last_settle_s = 0.0;
    last_settle_error = None;
    stopped = false;
    prior_auto_sync;
    ids = Ctx.gen ~seed:(config.admission.seed lxor 0x7AC3);
    slo =
      Slo.create ~metrics:(Hac.metrics hac)
        ~now:(fun () -> Clock.now clock)
        config.slo_objectives;
    flight = Hac.flight hac;
    s = zero_stats;
    i = make_instruments (Hac.metrics hac);
  }

let session t id =
  match Hashtbl.find_opt t.sessions id with
  | Some s -> s
  | None ->
      let s = Session.create ~breaker:t.config.admission.session_breaker id in
      Hashtbl.add t.sessions s.id s;
      s

let sessions t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions []
  |> List.sort (fun (a : Session.t) b -> compare a.id b.id)

let stats t = t.s
let snapshot t = t.snap
let committed_writes t = List.rev t.commits
let is_degraded t = t.degraded
let degraded_reason t = t.degraded_reason
let degraded_causes t = List.map Admission.cause_name t.causes
let slo t = t.slo
let flight t = t.flight
let queue_depth t = Queue.length t.queue

let op_cost t op = if Msg.is_write op then t.config.write_cost_s else t.config.read_cost_s

let resolve t (ticket : Msg.ticket) outcome =
  assert (ticket.outcome = None);
  ticket.outcome <- Some outcome;
  let session = session t ticket.session in
  match outcome with
  | Msg.Rejected _ -> ()
  | Msg.Replied { reply; latency_s; stale; _ } ->
      session.completed <- session.completed + 1;
      Metrics.observe t.i.h_latency latency_s;
      (* Only executed requests feed the SLO monitor: counting deliberate
         sheds as errors would make degraded mode self-sustaining (shed →
         bad → burn → degraded → shed). *)
      let op_class = Msg.op_class ticket.op in
      let ok = match reply with Msg.Nack _ -> false | _ -> true in
      Slo.observe t.slo ~op:op_class ~latency_s ~ok;
      if not (ok && Slo.meets t.slo ~op:op_class ~latency_s) then
        session.over_slo <- session.over_slo + 1;
      t.s <- { t.s with completed = t.s.completed + 1 };
      if stale then begin
        Metrics.incr t.i.c_stale;
        t.s <- { t.s with stale_reads = t.s.stale_reads + 1 }
      end;
      (match reply with
      | Msg.Nack _ ->
          session.failed <- session.failed + 1;
          Metrics.incr t.i.c_nacked;
          t.s <- { t.s with nacked = t.s.nacked + 1 }
      | _ -> ())

let submit t ~session:sid op =
  let now = Clock.now t.clock in
  let session = session t sid in
  session.submitted <- session.submitted + 1;
  t.s <- { t.s with submitted = t.s.submitted + 1 };
  let deadline_s = now +. t.config.admission.slo_s in
  let ticket =
    {
      Msg.op;
      session = sid;
      submitted_s = now;
      deadline_s;
      trace = Ctx.make ~id:(Ctx.fresh t.ids) ~now;
      outcome = None;
    }
  in
  if t.stopped then begin
    Admission.record_shed session ~now ~reason:Msg.Server_stopped;
    t.s <- { t.s with shed = t.s.shed + 1 };
    Metrics.incr t.i.c_shed;
    Ctx.record_until ticket.trace "admission" now;
    ticket.outcome <- Some (Msg.Rejected { reason = Msg.Server_stopped; retry_after_s = 0.0 });
    ticket
  end
  else begin
    let est_wait_s =
      t.queued_cost_s +. op_cost t op
      +. (if t.degraded then Float.max t.last_settle_s t.config.settle_cost_s
          else t.config.settle_cost_s)
    in
    match
      Admission.decide t.config.admission ~session ~now ~queue_depth:(Queue.length t.queue)
        ~est_wait_s ~deadline_s ~degraded:t.degraded ~is_write:(Msg.is_write op)
    with
    | Admission.Shed (reason, retry_after_s) ->
        Admission.record_shed session ~now ~reason;
        t.s <- { t.s with shed = t.s.shed + 1 };
        Metrics.incr t.i.c_shed;
        Ctx.record_until ticket.trace "admission" now;
        Flight.transition t.flight ~subsystem:"admission" ~from_:"admit" ~to_:"shed"
          ~reason:(Printf.sprintf "%s session=%s" (Msg.reason_name reason) sid);
        ticket.outcome <- Some (Msg.Rejected { reason; retry_after_s });
        ticket
    | Admission.Admit ->
        Admission.record_admit session;
        t.s <- { t.s with admitted = t.s.admitted + 1 };
        Metrics.incr t.i.c_admit;
        Ctx.record_until ticket.trace "admission" now;
        Queue.add ticket t.queue;
        t.queued_cost_s <- t.queued_cost_s +. op_cost t op;
        Metrics.set t.i.g_queue (float_of_int (Queue.length t.queue));
        ticket
  end

(* Apply one write through the engine's interposed wrappers.  Raises on
   engine errors; the caller turns those into an immediate [Nack] and
   keeps the op out of the commit log. *)
let apply_write hac = function
  | Msg.Mkdir p -> Hac.mkdir hac p
  | Msg.Write (p, c) -> Hac.write_file hac p c
  | Msg.Append (p, c) -> Hac.append_file hac p c
  | Msg.Unlink p -> Hac.unlink hac p
  | Msg.Smkdir (p, q) -> Hac.smkdir hac p q

let write_error = function
  | Hac_vfs.Errno.Error (code, subject) ->
      Some (Printf.sprintf "%s: %s" (Hac_vfs.Errno.to_string code) subject)
  | Hac.Hac_error m -> Some m
  | _ -> None

let touched_path = function
  | Msg.Mkdir p | Msg.Write (p, _) | Msg.Append (p, _) | Msg.Unlink p | Msg.Smkdir (p, _) -> p

(* Degraded-mode inputs that do not depend on this pump's work: an open
   breaker on any mounted namespace means re-evaluations over it are
   failing — keep serving the last-good snapshot, stop accepting writes
   whose settles would hammer it. *)
let mount_breaker_open t =
  List.exists
    (fun (mh : Hac.mount_health) ->
      match mh.mh_health with
      | Some h -> h.Hac_remote.Namespace.breaker = Hac_fault.Breaker.Open
      | None -> false)
    (Hac.mount_status t.hac)

(* The batch durable?  In-order global persistence: the frontier covering
   the whole op log covers every committed write. *)
let durable t =
  match Fs.disk (Hac.fs t.hac) with
  | None -> true
  | Some store -> Hac_fault.Store.durable_count store = Hac_fault.Store.op_count store

(* Degraded mode is a condition, not an event: recomputed from its inputs
   so each cause clears independently when it goes away — a slow settle
   stops degrading once a settle fits the budget again, a mount recovers
   when its breaker closes, a stall when a barrier is honoured, an SLO
   burn when the burn rate drops back below threshold on either window.
   Each evaluation also drives the flight recorder: a rising SLO alert is
   a breach (the ring is frozen to a dump when auto-dump is configured),
   and every degraded flip is a recorded transition. *)
let refresh_degraded t =
  let new_alerts = Slo.evaluate t.slo in
  List.iter
    (fun a ->
      Flight.transition t.flight ~subsystem:"slo" ~from_:"ok" ~to_:"alert"
        ~reason:(Slo.describe_alert a);
      ignore (Flight.breach t.flight ~reason:("slo breach: " ^ Slo.describe_alert a)))
    new_alerts;
  let causes =
    (match t.last_settle_error with
    | Some e -> [ Admission.Settle_error e ]
    | None ->
        if t.last_settle_s > t.config.settle_budget_s then
          [
            Admission.Settle_over_budget
              { took_s = t.last_settle_s; budget_s = t.config.settle_budget_s };
          ]
        else [])
    @ (if mount_breaker_open t then [ Admission.Mount_breaker ] else [])
    @ (if durable t then [] else [ Admission.Durability_stalled ])
    @
    match Slo.breached_ops t.slo with
    | [] -> []
    | ops -> [ Admission.Slo_burn (String.concat "," ops) ]
  in
  let was = t.degraded in
  t.causes <- causes;
  t.degraded <- causes <> [];
  t.degraded_reason <- String.concat "; " (List.map Admission.describe_cause causes);
  if t.degraded <> was then
    Flight.transition t.flight ~subsystem:"server"
      ~from_:(if was then "degraded" else "ok")
      ~to_:(if t.degraded then "degraded" else "ok")
      ~reason:(if t.degraded then t.degraded_reason else "recovered");
  Metrics.set t.i.g_degraded (if t.degraded then 1.0 else 0.0)

let serve_reads t tickets =
  let n = Array.length tickets in
  if n > 0 then begin
    let snap = t.snap in
    let reads =
      Array.map
        (fun (tk : Msg.ticket) ->
          match tk.op with Msg.R r -> r | Msg.W _ -> assert false)
        tickets
    in
    (* Pure lookups against one immutable snapshot: any domain may run
       them; replies come back in order.  The pool must not touch metrics,
       the tracer or the clock — it only reports per-element CPU durations
       ([map_timed]); spans, metrics and virtual time are all charged
       here, on the caller. *)
    let tr = Hac.tracer t.hac in
    Trace.with_span tr ~name:"serve.read_wave" (fun () ->
        let vstart = Clock.now t.clock in
        let replies, cpu =
          match t.pool with
          | Some pool -> Pool.map_timed pool (Snapshot.read snap) reads
          | None ->
              let times = Array.make n 0.0 in
              let rs =
                Array.mapi
                  (fun k r ->
                    let c0 = Sys.time () in
                    let v = Snapshot.read snap r in
                    times.(k) <- Sys.time () -. c0;
                    v)
                  reads
              in
              (rs, times)
        in
        let width = match t.pool with Some p -> Pool.size p | None -> 1 in
        let waves = (n + width - 1) / width in
        Clock.advance t.clock (float_of_int waves *. t.config.read_cost_s);
        let now = Clock.now t.clock in
        (* Cross-domain parent linking: each read's span carries the CPU
           time measured on whichever domain ran it, parent-linked to this
           wave's span and tagged with the request's trace id. *)
        if Trace.enabled tr then begin
          let parent = Trace.current tr in
          Array.iteri
            (fun k (tk : Msg.ticket) ->
              ignore
                (Trace.emit tr ?parent
                   ~attrs:[ ("trace", Ctx.id_hex tk.trace) ]
                   ~name:"serve.read" ~vstart ~vstop:now ~cpu_s:cpu.(k) ()))
            tickets
        end;
        let stale = Snapshot.seq snap < t.committed_n in
        Array.iteri
          (fun k (tk : Msg.ticket) ->
            Metrics.observe t.i.h_read t.config.read_cost_s;
            Ctx.record_until tk.trace "eval" now;
            resolve t tk
              (Msg.Replied
                 {
                   reply = replies.(k);
                   seq = Snapshot.seq snap;
                   stale;
                   latency_s = now -. tk.submitted_s;
                 }))
          tickets)
  end

let apply_writes t tickets =
  List.iter
    (fun (tk : Msg.ticket) ->
      let w = match tk.op with Msg.W w -> w | Msg.R _ -> assert false in
      Clock.advance t.clock t.config.write_cost_s;
      Metrics.observe t.i.h_write t.config.write_cost_s;
      match apply_write t.hac w with
      | () ->
          Ctx.record_until tk.trace "eval" (Clock.now t.clock);
          t.commits <- w :: t.commits;
          t.committed_n <- t.committed_n + 1;
          Metrics.incr t.i.c_commits;
          t.s <- { t.s with commits = t.s.commits + 1 };
          t.unacked <- tk :: t.unacked
      | exception e -> (
          match write_error e with
          | Some m ->
              let now = Clock.now t.clock in
              Ctx.record_until tk.trace "eval" now;
              resolve t tk
                (Msg.Replied
                   {
                     reply = Msg.Nack m;
                     seq = t.committed_n;
                     stale = false;
                     latency_s = now -. tk.submitted_s;
                   })
          | None -> raise e))
    tickets

(* Group commit: one settle (and thus one journal fsync) for the whole
   batch.  The settle's virtual duration is measured around it — injected
   remote latency and retry backoff advance the clock inside — plus the
   base cost; over budget trips degraded mode. *)
let settle_batch t =
  let before = Clock.now t.clock in
  let outcome = try Ok (Hac.settle ~domains:t.config.domains t.hac) with e -> Error e in
  Clock.advance t.clock t.config.settle_cost_s;
  let dur = Clock.now t.clock -. before in
  t.last_settle_s <- dur;
  Metrics.observe t.i.h_settle dur;
  (* Stage accounting for everything awaiting durability: a write settled
     for the first time charges this interval to "settle"; one already
     settled in an earlier batch has been waiting on the durability
     barrier, so its wait accrues under "fsync". *)
  let now = Clock.now t.clock in
  List.iter
    (fun (tk : Msg.ticket) ->
      let stage = if Ctx.find tk.trace "settle" = None then "settle" else "fsync" in
      Ctx.record_until tk.trace stage now)
    t.unacked;
  match outcome with
  | Ok () -> t.last_settle_error <- None
  | Error e -> t.last_settle_error <- Some (Printexc.to_string e)

(* Confirm durability, retrying the barrier a bounded number of times (a
   device swallowing fsyncs may honour the next one).  On success publish
   the post-batch snapshot and release every pending ack; on failure hold
   the acks — but resolve any past their deadline as an explicit [Nack]
   ("applied, durability unconfirmed"), never leave them hanging. *)
let confirm t ~touched =
  let fs = Hac.fs t.hac in
  let attempts = ref 0 in
  while (not (durable t)) && !attempts < t.config.fsync_retries do
    incr attempts;
    Clock.advance t.clock t.config.settle_cost_s;
    Fs.fsync fs "/"
  done;
  if durable t && t.last_settle_error = None then begin
    (* Settled and durable: publish the post-batch view and release every
       pending ack.  A snapshot is only ever published here, so readers
       always see a fully settled, fully durable prefix. *)
    t.snap <-
      Snapshot.advance t.snap t.hac ~seq:t.committed_n ~now:(Clock.now t.clock) ~touched;
    (* Building the view lazily materializes transient links — physical
       symlinks recorded on the device after the settle's barrier.  One
       more barrier keeps the frontier covering that maintenance tail. *)
    Fs.fsync fs "/";
    let now = Clock.now t.clock in
    List.iter
      (fun (tk : Msg.ticket) ->
        Metrics.incr t.i.c_acked;
        t.s <- { t.s with acked = t.s.acked + 1 };
        Ctx.record_until tk.trace "fsync" now;
        resolve t tk
          (Msg.Replied
             { reply = Msg.Done; seq = t.committed_n; stale = false; latency_s = now -. tk.submitted_s }))
      (List.rev t.unacked);
    t.unacked <- []
  end
  else begin
    (* Holding acks — but never past their deadline: an overdue write
       resolves as an explicit "applied, durability unconfirmed" [Nack]. *)
    let now = Clock.now t.clock in
    let overdue, waiting =
      List.partition (fun (tk : Msg.ticket) -> now > tk.deadline_s) t.unacked
    in
    t.unacked <- waiting;
    (* Held tickets keep accruing durability wait under "fsync". *)
    List.iter (fun (tk : Msg.ticket) -> Ctx.record_until tk.trace "fsync" now) waiting;
    List.iter
      (fun (tk : Msg.ticket) ->
        Ctx.record_until tk.trace "fsync" now;
        resolve t tk
          (Msg.Replied
             {
               reply = Msg.Nack "durability unconfirmed";
               seq = t.committed_n;
               stale = false;
               latency_s = now -. tk.submitted_s;
             }))
      (List.rev overdue)
  end;
  refresh_degraded t

let pump t =
  refresh_degraded t;
  let batch = ref [] in
  let n = ref 0 in
  while !n < t.config.max_batch && not (Queue.is_empty t.queue) do
    let tk = Queue.pop t.queue in
    t.queued_cost_s <- Float.max 0.0 (t.queued_cost_s -. op_cost t tk.op);
    batch := tk :: !batch;
    incr n
  done;
  Metrics.set t.i.g_queue (float_of_int (Queue.length t.queue));
  let batch = List.rev !batch in
  if batch <> [] || t.unacked <> [] then begin
    t.s <- { t.s with batches = t.s.batches + 1 };
    Metrics.observe t.i.h_batch (float_of_int (List.length batch));
    let now = Clock.now t.clock in
    (* Everything popped spent the interval since admission queued. *)
    List.iter (fun (tk : Msg.ticket) -> Ctx.record_until tk.trace "queue" now) batch;
    (* Deadline may have passed while queued: explicit rejection, and the
       session's streak grows — an expired op was real shed load. *)
    let live, expired = List.partition (fun (tk : Msg.ticket) -> now <= tk.deadline_s) batch in
    List.iter
      (fun (tk : Msg.ticket) ->
        Metrics.incr t.i.c_expired;
        t.s <- { t.s with expired = t.s.expired + 1; shed = t.s.shed + 1 };
        Admission.record_shed (session t tk.session) ~now ~reason:Msg.Deadline_expired;
        resolve t tk (Msg.Rejected { reason = Msg.Deadline_expired; retry_after_s = 0.0 }))
      expired;
    let reads, writes = List.partition (fun (tk : Msg.ticket) -> not (Msg.is_write tk.op)) live in
    serve_reads t (Array.of_list reads);
    apply_writes t writes;
    let touched =
      List.filter_map
        (fun (tk : Msg.ticket) ->
          match tk.op with
          | Msg.W w when tk.outcome = None -> Some (touched_path w)
          | _ -> None)
        writes
    in
    if writes <> [] || t.unacked <> [] then begin
      settle_batch t;
      confirm t ~touched
    end
  end

(* Pump until nothing is queued or pending, bounded; anything the bound
   leaves behind is resolved explicitly — the no-hang contract holds even
   when the device never honours another fsync. *)
let drain ?(max_pumps = 64) t =
  let i = ref 0 in
  while !i < max_pumps && not (Queue.is_empty t.queue && t.unacked = []) do
    incr i;
    pump t
  done;
  let now = Clock.now t.clock in
  Queue.iter
    (fun (tk : Msg.ticket) ->
      t.s <- { t.s with shed = t.s.shed + 1 };
      Metrics.incr t.i.c_shed;
      Admission.record_shed (session t tk.session) ~now ~reason:Msg.Server_stopped;
      resolve t tk (Msg.Rejected { reason = Msg.Server_stopped; retry_after_s = 0.0 }))
    t.queue;
  Queue.clear t.queue;
  t.queued_cost_s <- 0.0;
  List.iter
    (fun (tk : Msg.ticket) ->
      Ctx.record_until tk.trace "fsync" now;
      resolve t tk
        (Msg.Replied
           {
             reply = Msg.Nack "durability unconfirmed";
             seq = t.committed_n;
             stale = false;
             latency_s = now -. tk.submitted_s;
           }))
    (List.rev t.unacked);
  t.unacked <- []

let stop t =
  if not t.stopped then begin
    drain t;
    t.stopped <- true;
    (match t.pool with Some p -> Pool.shutdown p | None -> ());
    Hac.set_auto_sync t.hac t.prior_auto_sync
  end
