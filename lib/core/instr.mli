(** Per-instance observability handles.

    One {!t} lives in every {!Ctx.t}: the instance's metrics registry, its
    tracer (timestamps from the instance's virtual clock; every finished
    span also feeds a [span.<name>.cpu_s] histogram), and counter/gauge/
    histogram handles pre-resolved for the hot paths so instrumented code
    never performs a registry lookup.

    Instrument names follow [<subsystem>.<what>] — see
    [docs/observability.md] for the full catalogue. *)

type t = {
  metrics : Hac_obs.Metrics.t;
  tracer : Hac_obs.Trace.t;
  flight : Hac_obs.Flight.t;
      (** Always-on flight recorder: recent spans, metric deltas and
          subsystem transitions, dumped on breach (see
          [docs/observability.md]). *)
  journal_appends : Hac_obs.Metrics.counter;
  journal_replay_applied : Hac_obs.Metrics.counter;
  journal_replay_corrupt : Hac_obs.Metrics.counter;
  journal_replay_malformed : Hac_obs.Metrics.counter;
  journal_epoch : Hac_obs.Metrics.gauge;
      (** Epoch of the segment currently appended to. *)
  journal_checkpoints : Hac_obs.Metrics.counter;
      (** Checkpoints committed by this instance. *)
  journal_compactions : Hac_obs.Metrics.counter;
      (** Compaction passes that removed at least one file. *)
  recover_segments_replayed : Hac_obs.Metrics.gauge;
      (** Post-checkpoint segments the last recovery replayed. *)
  recover_checkpoint_age : Hac_obs.Metrics.gauge;
      (** Records the last recovery replayed beyond its checkpoint (the
          delta the checkpoint did not cover). *)
  recover_records_skipped : Hac_obs.Metrics.counter;
      (** Corrupt or malformed journal records skipped during replay. *)
  recover_dirs_skipped : Hac_obs.Metrics.counter;
      (** Recovery-plan directories that could not be restored. *)
  planner_chains : Hac_obs.Metrics.counter;
  planner_reordered : Hac_obs.Metrics.counter;
  planner_cost_saved : Hac_obs.Metrics.counter;
  planner_scoped_chains : Hac_obs.Metrics.counter;
      (** AND chains planned with a subtree scope hint (partition-scoped,
          calibrated costs rather than whole-index estimates). *)
  index_containers_arrays : Hac_obs.Metrics.gauge;
      (** Array containers across all CAS postings (set at stats time). *)
  index_containers_bitmaps : Hac_obs.Metrics.gauge;
      (** Bitmap containers across all CAS postings (set at stats time). *)
  index_containers_runs : Hac_obs.Metrics.gauge;
      (** Run containers across all CAS postings (set at stats time). *)
  index_postings_bytes : Hac_obs.Metrics.gauge;
      (** Compressed CAS postings footprint in bytes (set at stats time). *)
  index_postings_uncompressed : Hac_obs.Metrics.gauge;
      (** What flat per-term bitmaps over the doc-id space would cost. *)
  rescache_bytes : Hac_obs.Metrics.gauge;
      (** Bytes held by cached per-directory result sets. *)
  search_terms : Hac_obs.Metrics.counter;
  search_postings : Hac_obs.Metrics.counter;
  search_candidates : Hac_obs.Metrics.counter;
  search_verified : Hac_obs.Metrics.counter;
  restrict_kept : Hac_obs.Metrics.counter;
  restrict_dropped : Hac_obs.Metrics.counter;
  sync_full : Hac_obs.Metrics.counter;
  sync_delta : Hac_obs.Metrics.counter;
  sync_fallback : Hac_obs.Metrics.counter;
  sync_from : Hac_obs.Metrics.counter;
  sync_dirs : Hac_obs.Metrics.counter;
  sync_changed : Hac_obs.Metrics.counter;
  reindex_files : Hac_obs.Metrics.counter;
  index_rebuilds : Hac_obs.Metrics.counter;
  par_levels : Hac_obs.Metrics.counter;
      (** Dependency levels scheduled by parallel settle passes. *)
  par_tasks : Hac_obs.Metrics.counter;
      (** Directory evaluations farmed to the domain pool. *)
  par_domains : Hac_obs.Metrics.gauge;
      (** Domain count of the most recent parallel settle. *)
  memo_hits : Hac_obs.Metrics.counter;  (** Per-pass term-memo hits. *)
  memo_misses : Hac_obs.Metrics.counter;  (** Per-pass term-memo misses. *)
  doc_cache_hits : Hac_obs.Metrics.counter;  (** Per-pass doc-cache hits. *)
  doc_cache_misses : Hac_obs.Metrics.counter;
      (** Per-pass doc-cache misses (first read of a path in a pass). *)
  doc_cache_uncached : Hac_obs.Metrics.counter;
      (** Doc-cache lookups served uncached (past the byte budget). *)
  generation : Hac_obs.Metrics.gauge;
  pass_dirs : Hac_obs.Metrics.histogram;
}

val create : now:(unit -> float) -> unit -> t
(** Fresh registry + tracer ([now] supplies the tracer's virtual
    timestamps; tracing starts disabled, metrics enabled). *)

val flush_probe : t -> Hac_index.Search.probe -> unit
(** Add a finished per-evaluation probe's totals to the search counters. *)
