module Metrics = Hac_obs.Metrics
module Trace = Hac_obs.Trace
module Flight = Hac_obs.Flight

type t = {
  metrics : Metrics.t;
  tracer : Trace.t;
  flight : Flight.t;
  (* Handles resolved once at instance creation so hot paths never touch
     the registry's hashtable. *)
  journal_appends : Metrics.counter;
  journal_replay_applied : Metrics.counter;
  journal_replay_corrupt : Metrics.counter;
  journal_replay_malformed : Metrics.counter;
  journal_epoch : Metrics.gauge;
  journal_checkpoints : Metrics.counter;
  journal_compactions : Metrics.counter;
  recover_segments_replayed : Metrics.gauge;
  recover_checkpoint_age : Metrics.gauge;
  recover_records_skipped : Metrics.counter;
  recover_dirs_skipped : Metrics.counter;
  planner_chains : Metrics.counter;
  planner_reordered : Metrics.counter;
  planner_cost_saved : Metrics.counter;
  planner_scoped_chains : Metrics.counter;
  index_containers_arrays : Metrics.gauge;
  index_containers_bitmaps : Metrics.gauge;
  index_containers_runs : Metrics.gauge;
  index_postings_bytes : Metrics.gauge;
  index_postings_uncompressed : Metrics.gauge;
  rescache_bytes : Metrics.gauge;
  search_terms : Metrics.counter;
  search_postings : Metrics.counter;
  search_candidates : Metrics.counter;
  search_verified : Metrics.counter;
  restrict_kept : Metrics.counter;
  restrict_dropped : Metrics.counter;
  sync_full : Metrics.counter;
  sync_delta : Metrics.counter;
  sync_fallback : Metrics.counter;
  sync_from : Metrics.counter;
  sync_dirs : Metrics.counter;
  sync_changed : Metrics.counter;
  reindex_files : Metrics.counter;
  index_rebuilds : Metrics.counter;
  par_levels : Metrics.counter;
  par_tasks : Metrics.counter;
  par_domains : Metrics.gauge;
  memo_hits : Metrics.counter;
  memo_misses : Metrics.counter;
  doc_cache_hits : Metrics.counter;
  doc_cache_misses : Metrics.counter;
  doc_cache_uncached : Metrics.counter;
  generation : Metrics.gauge;
  pass_dirs : Metrics.histogram;
}

let create ~now () =
  let m = Metrics.create () in
  let flight = Flight.create ~capacity:1024 ~metrics:m ~now () in
  let tracer =
    (* Every finished span feeds a per-stage CPU-time histogram — what the
       bench reports as the settle latency breakdown — and the flight
       recorder's ring of recent spans. *)
    Trace.create ~now
      ~on_close:(fun sp ->
        Metrics.observe
          (Metrics.histogram m ("span." ^ sp.Trace.name ^ ".cpu_s"))
          (Trace.cpu_duration sp);
        Flight.span flight ~name:sp.Trace.name ~vstart:sp.Trace.vstart
          ~vstop:sp.Trace.vstop ~failed:sp.Trace.failed)
      ()
  in
  {
    metrics = m;
    tracer;
    flight;
    journal_appends = Metrics.counter m "journal.appends";
    journal_replay_applied = Metrics.counter m "journal.replay.applied";
    journal_replay_corrupt = Metrics.counter m "journal.replay.corrupt";
    journal_replay_malformed = Metrics.counter m "journal.replay.malformed";
    journal_epoch = Metrics.gauge m "journal.epoch";
    journal_checkpoints = Metrics.counter m "journal.checkpoints";
    journal_compactions = Metrics.counter m "journal.compactions";
    recover_segments_replayed = Metrics.gauge m "recover.segments_replayed";
    recover_checkpoint_age = Metrics.gauge m "recover.checkpoint_age";
    recover_records_skipped = Metrics.counter m "recover.records_skipped";
    recover_dirs_skipped = Metrics.counter m "recover.dirs_skipped";
    planner_chains = Metrics.counter m "planner.optimize.chains";
    planner_reordered = Metrics.counter m "planner.optimize.reordered";
    planner_cost_saved = Metrics.counter m "planner.optimize.cost_saved";
    planner_scoped_chains = Metrics.counter m "planner.cost.scoped_chains";
    index_containers_arrays = Metrics.gauge m "index.containers.arrays";
    index_containers_bitmaps = Metrics.gauge m "index.containers.bitmaps";
    index_containers_runs = Metrics.gauge m "index.containers.runs";
    index_postings_bytes = Metrics.gauge m "index.postings.bytes";
    index_postings_uncompressed = Metrics.gauge m "index.postings.uncompressed_bytes";
    rescache_bytes = Metrics.gauge m "rescache.bytes";
    search_terms = Metrics.counter m "search.terms";
    search_postings = Metrics.counter m "search.postings_scanned";
    search_candidates = Metrics.counter m "search.candidates_expanded";
    search_verified = Metrics.counter m "search.docs_verified";
    restrict_kept = Metrics.counter m "search.restrict_kept";
    restrict_dropped = Metrics.counter m "search.restrict_dropped";
    sync_full = Metrics.counter m "sync.full.count";
    sync_delta = Metrics.counter m "sync.delta.count";
    sync_fallback = Metrics.counter m "sync.delta.fallback";
    sync_from = Metrics.counter m "sync.from.count";
    sync_dirs = Metrics.counter m "sync.dirs_reevaluated";
    sync_changed = Metrics.counter m "sync.dirs_changed";
    reindex_files = Metrics.counter m "sync.reindex.files";
    index_rebuilds = Metrics.counter m "sync.index.rebuilds";
    par_levels = Metrics.counter m "sync.par.levels";
    par_tasks = Metrics.counter m "sync.par.tasks";
    par_domains = Metrics.gauge m "sync.par.domains";
    memo_hits = Metrics.counter m "pass.term_memo.hits";
    memo_misses = Metrics.counter m "pass.term_memo.misses";
    doc_cache_hits = Metrics.counter m "pass.doc_cache.hits";
    doc_cache_misses = Metrics.counter m "pass.doc_cache.misses";
    doc_cache_uncached = Metrics.counter m "pass.doc_cache.uncached";
    generation = Metrics.gauge m "scope.generation";
    pass_dirs = Metrics.histogram m "sync.pass.dirs";
  }

(* Fold a finished search probe into the registry. *)
let flush_probe t (p : Hac_index.Search.probe) =
  Metrics.incr ~by:p.Hac_index.Search.terms t.search_terms;
  Metrics.incr ~by:p.Hac_index.Search.postings_scanned t.search_postings;
  Metrics.incr ~by:p.Hac_index.Search.candidates_expanded t.search_candidates;
  Metrics.incr ~by:p.Hac_index.Search.docs_verified t.search_verified;
  Metrics.incr ~by:p.Hac_index.Search.restrict_kept t.restrict_kept;
  Metrics.incr ~by:p.Hac_index.Search.restrict_dropped t.restrict_dropped
