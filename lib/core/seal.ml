(* The sealing primitives moved into the storage tier (lib/store) so the
   block and segment formats can share them; core keeps this forwarder so
   Journal/Sync/Recover (and their tests) keep addressing [Seal]. *)
include Hac_store.Seal
