(** HAC — the Hierarchy And Content file system.

    The public facade: a hierarchical file system (all of {!Hac_vfs.Fs}'s
    operations work, through {!fs} or the wrappers here) extended with
    content-based access.  Semantic directories are created with {!smkdir},
    kept scope-consistent automatically, and manipulated with the [s*]
    commands the paper describes ([ssync], [sact], [smount], ...).

    HAC observes {e every} mutation of the underlying file system through
    its event stream, so applications may also mutate {!fs} directly —
    deleting a symbolic link from a semantic directory with the plain
    [unlink] still marks its target prohibited. *)

type t
(** One HAC file system. *)

exception Hac_error of string
(** Raised by the [s*] operations on user errors (bad query, unknown
    directory, dependency cycle, ...). *)

(** {1 Construction} *)

val create :
  ?block_size:int ->
  ?stem:bool ->
  ?transducer:Hac_index.Transducer.t ->
  ?auto_sync:bool ->
  ?reindex_every:int ->
  unit ->
  t
(** A fresh HAC over an empty file system.  [auto_sync] (default [false])
    reindexes and re-evaluates after every mutation — convenient
    interactively, costly on bulk loads.  [reindex_every] triggers the
    paper's periodic data-consistency pass after that many mutations.
    [block_size] and [stem] configure the content index. *)

val of_fs :
  ?block_size:int ->
  ?stem:bool ->
  ?transducer:Hac_index.Transducer.t ->
  ?auto_sync:bool ->
  ?reindex_every:int ->
  Hac_vfs.Fs.t ->
  t
(** Adopt an existing file system: registers every directory in the global
    uid map and indexes every regular file. *)

val fast_adopt :
  ?block_size:int ->
  ?stem:bool ->
  ?transducer:Hac_index.Transducer.t ->
  ?auto_sync:bool ->
  ?reindex_every:int ->
  ?budget:int ->
  Hac_vfs.Fs.t ->
  (t * (int * string) list, string) result
(** O(delta) adoption of a tree a previous store-enabled life checkpointed:
    rebuilds the namespace from the journal's uid map and the index
    skeleton from the store's document table, touching only metadata —
    file bodies are never read or re-tokenized, and postings stay on disk,
    demand-faulted per term ({!Hac_index.Index.set_cold}).  Paths the
    journal flagged dirty ([F] records) are queued for re-read on the
    first settle.  Returns the instance (with the storage tier attached)
    and the chain's semantic [(uid, path)] entries, whose structure files
    the caller should restore ({!Recover.mount} drives this and falls back
    to {!of_fs} + {!Recover.reload_report} on [Error]).  Refuses —
    [Error reason] — when there is no readable checkpoint, the tail
    carries damaged or namespace-surgery records, or the document table or
    store manifest is missing, damaged, or from another epoch/lineage.
    [budget] bounds the block cache as in {!enable_store}. *)

val shutdown : ?graceful:bool -> t -> unit
(** Stop this instance: it no longer observes the file system (simulating
    the user-level library going away).  With [graceful] (default) pending
    data consistency is settled first, as at a clean exit; pass [false] to
    simulate a crash.  Either way the persisted metadata in [/.hac] remains
    for {!Recover.reload} by a future instance. *)

val fs : t -> Hac_vfs.Fs.t
(** The underlying file system (safe to use directly). *)

val index : t -> Hac_index.Index.t
(** The content index (the CBA mechanism). *)

val intercept : t -> string -> unit
(** The per-call interposition work the paper's user-level DLL performs on
    {e every} file system call before delegating to UNIX: normalize the
    path, consult the global directory map, and check whether the containing
    directory is semantic (and hence needs consistency hooks).  The wrappers
    below call this; external layers driving {!fs} directly can call it to
    model the same cost. *)

(** {1 Plain file-system operations}

    Thin wrappers over {!Hac_vfs.Fs} on the wrapped instance; each performs
    the {!intercept} work first, like the paper's interposed calls. *)

val mkdir : t -> string -> unit
val mkdir_p : t -> string -> unit
val rmdir : t -> string -> unit
val write_file : t -> string -> string -> unit
val append_file : t -> string -> string -> unit
val read_file : t -> string -> string
val unlink : t -> string -> unit
val rename : t -> src:string -> dst:string -> unit
val symlink : t -> target:string -> link:string -> unit
val readlink : t -> string -> string
val readdir : t -> string -> string list
val exists : t -> string -> bool
val is_dir : t -> string -> bool

(** {1 Semantic directories} *)

val smkdir : t -> string -> string -> unit
(** [smkdir t path query] creates a semantic directory: makes the directory,
    parses and installs the query (directory references become uids), wires
    dependency edges and evaluates the query.  The result is stored compactly
    (the paper's N/8-byte bitmap); the transient symbolic links materialise
    on first access through HAC ({!links}, {!readdir}, {!read_file}, ...).
    Raises {!Hac_error} on parse errors, unknown referenced directories or
    dependency cycles (the directory is not created). *)

val srmdir : t -> string -> unit
(** Remove a semantic directory: deletes its HAC-managed links, then the
    directory itself (which must otherwise be empty), its semantic state,
    uid and dependency edges. *)

val schquery : t -> string -> string -> unit
(** Replace the query of a directory and re-evaluate it and its dependents.
    On a plain directory this {e makes} it semantic (retro-fit).  Raises
    {!Hac_error} on parse errors or cycles (state unchanged). *)

val sreadin : t -> string -> string option
(** The query of a directory, rendered with current referenced-directory
    paths; [None] for syntactic directories. *)

val squery_ast : t -> string -> Hac_query.Ast.t option
(** The installed query AST ([Ref_uid] form). *)

val is_semantic : t -> string -> bool
(** Whether the directory has a query. *)

val semantic_dirs : t -> string list
(** Paths of every semantic directory, sorted. *)

val settle : ?durability:[ `Always | `Batch ] -> ?domains:int -> t -> unit
(** Settle everything now: data consistency (reindex the dirty paths), then
    scope consistency (incremental, falling back to a full pass after
    structural events).  [?domains > 1] re-evaluates with a domain pool of
    that width: each dependency level's query evaluations run concurrently
    against the frozen index, results are applied in order — the outcome is
    identical to the sequential settle (see [docs/parallelism.md]).

    Every settle ends with a durability barrier: the journal tail is
    fsynced to the simulated disk before the settle returns, so nothing a
    settle acknowledged can be lost to a later crash.  [?durability] sets
    the (sticky) append-flush policy: [`Always] additionally fsyncs each
    journal append as it happens, [`Batch] (default) relies on the
    per-settle barrier alone.  See {!set_durability}. *)

val set_durability : t -> [ `Always | `Batch ] -> unit
(** Set the journal append-flush policy (see {!settle}). *)

val durability : t -> [ `Always | `Batch ]
(** The current append-flush policy. *)

val ssync : ?domains:int -> t -> string -> unit
(** Re-evaluate the directory's query and those of all directories that
    directly or indirectly depend on it (the paper's [ssync]).  [?domains]
    as in {!settle}. *)

val sync_all : ?domains:int -> t -> unit
(** Settle scope consistency everywhere (dependencies first).  [?domains]
    as in {!settle}. *)

val reindex : ?domains:int -> t -> ?under:string -> unit -> int
(** Settle data consistency now (optionally only below [under]) and then
    restore scope consistency {e incrementally}: queries are re-evaluated
    only over the documents the reindex touched or removed
    ({!Sync.sync_delta}).  Structural events since the last settle force a
    full re-evaluation instead.  Returns the number of files whose index
    entries were refreshed.  [?domains] as in {!settle}. *)

val reindex_full : ?domains:int -> t -> ?under:string -> unit -> int
(** Like {!reindex} but always re-evaluates every semantic directory from
    scratch ({!Sync.sync_all}) — the non-incremental baseline, useful for
    benchmarking and as a property-test oracle.  [?domains] as in
    {!settle}. *)

val dirty_count : t -> int
(** Files whose index entry is currently stale. *)

val set_auto_sync : t -> bool -> unit
(** Enable/disable settling after every mutation.  A server batching writes
    into group commits turns this off so [tick] stops settling inline, calls
    {!settle} once per batch, and restores the previous setting when it
    stops. *)

val auto_sync_enabled : t -> bool
(** Current setting of {!set_auto_sync}. *)

val set_pass_caches : t -> bool -> unit
(** Enable/disable the shared per-pass evaluation caches (term-result memo
    and document token cache).  On by default; disabling them is an ablation
    knob for benchmarks comparing against the uncached engine — results are
    identical either way. *)

val pass_caches_enabled : t -> bool
(** Current setting of {!set_pass_caches}. *)

val set_cas : t -> bool -> unit
(** Enable/disable the combined content-and-structure query path
    ({!Hac_index.Index.set_use_cas}).  On by default; off, term lookups fall
    back to Glimpse block expansion — the ablation baseline.  Results are
    identical either way (both paths verify candidates). *)

val cas_enabled : t -> bool
(** Current setting of {!set_cas}. *)

val index_report : t -> Hac_index.Cas.stats
(** Container histogram and memory accounting of the CAS postings, also
    published to the [index.containers.*] / [index.postings.*] gauges.
    Forces partition snapshots — a stats-time cost, cheap next to a settle
    but not free. *)

(** {1 Links} *)

val links : t -> string -> Link.t list
(** Present links of a semantic directory (sorted by name); [[]] for
    syntactic directories. *)

val prohibited : t -> string -> string list
(** Prohibited target keys of a semantic directory. *)

val add_permanent : t -> dir:string -> target:string -> string
(** Explicitly add a permanent link in [dir] to [target] (a local path or a
    remote uri); lifts any prohibition on the target.  Returns the link
    name created. *)

val remove_link : t -> dir:string -> name:string -> unit
(** Delete a link by name — the target becomes prohibited, exactly as if
    the user ran [rm] on it. *)

val unprohibit : t -> dir:string -> target:string -> unit
(** Forget a prohibition (the paper's special API for sophisticated users);
    the target may reappear at the next re-evaluation. *)

val prohibit_target : t -> dir:string -> target:string -> unit
(** Directly prohibit a target (the other half of the paper's special API):
    any present link to it is removed, and it will never be re-added
    implicitly. *)

val restore_semdir :
  t -> string -> query:string -> permanent:string list -> prohibited:string list -> unit
(** Reinstall a semantic directory from recovered metadata (see
    {!Recover.reload}): the directory must already exist physically;
    symlinks named in [permanent] are adopted as permanent, other present
    symlinks as transient, [prohibited] target keys are restored, then the
    query is installed and re-evaluated.  Raises {!Hac_error} if the
    directory is already semantic or the query is bad. *)

val sact : t -> string -> (int * string) list
(** [sact t link_path] retrieves the information in the linked file that
    matches the directory's query: (line number, line) pairs containing
    query words.  Works for local and remote targets. *)

val resolve_link : t -> string -> string option
(** Contents of the file a link (or plain path) designates, fetching from
    the remote namespace when the target is remote. *)

(** {1 Checkpoints and compaction}

    The directory journal is a chain of epoch-stamped segments plus
    atomically-published checkpoints (see {!Journal} and
    [docs/recovery.md]).  A checkpoint bounds remount cost by the delta
    since it was taken; compaction reclaims the history it supersedes. *)

val checkpoint : ?durability:[ `Always | `Batch ] -> ?domains:int -> t -> int
(** Settle, then commit an atomic checkpoint of the full semantic state
    (consolidated journal + every semantic directory's structure files,
    one checksummed image blob published by write-new/fsync/rename).
    Returns the epoch the checkpoint covers; subsequent journal appends
    open the next epoch's segment.  Crash-safe at every point: recovery
    sees either the old chain or the new one. *)

val compact : t -> int
(** Delete what the newest {e readable} checkpoint supersedes: older
    segments and checkpoints, uncommitted checkpoint scratch, and stale
    structure files no longer reachable from the chain.  Returns how many
    files were removed.  A no-op (except scratch cleanup) when no valid
    checkpoint exists — compaction never truncates history it cannot
    prove covered. *)

val journal_epoch : t -> int
(** Epoch of the segment journal appends currently go to. *)

(** {1 The durable storage tier}

    Off by default (every structure memory-resident, exactly the classic
    behaviour).  Enabled, the tier backs every live document with a
    content-addressed block under [/.hac/store] — verification reads are
    served through a byte-bounded LRU cache — and each checkpoint
    additionally persists the postings as immutable segments plus the
    document table that {!fast_adopt} rebuilds from. *)

val enable_store : ?budget:int -> t -> unit
(** Turn the tier on (idempotent): creates the block store, opens a fresh
    segment lineage, and eagerly seeds a block for every currently-live
    document.  [budget] bounds the block cache in payload bytes (default
    4 MiB). *)

val store_enabled : t -> bool
(** Whether the storage tier is on. *)

val store : t -> Hac_store.Store.t option
(** The tier itself, for introspection (cache and segment accounting). *)

val checkpoint_metadata : t -> unit
(** Re-key the on-"disk" metadata area around this instance's uids by
    committing a checkpoint of current state ({!checkpoint} without the
    settle).  {!Recover.reload} calls this after restoring so the old
    instance's identifiers cannot shadow the new ones. *)

(** {1 Mount points} *)

val smount : t -> string -> Hac_remote.Namespace.t -> unit
(** Attach a namespace as a semantic mount at the directory (several may be
    attached: multiple semantic mount points, section 3.2).  Re-evaluates
    affected semantic directories. *)

val sumount : t -> string -> ns_id:string -> unit
(** Detach one namespace and re-evaluate. *)

val mounted_at : t -> string -> string list
(** [ns_id]s mounted at the directory. *)

val refresh_mounts : t -> unit
(** Re-run every semantic directory whose scope includes a mount point —
    the "saved search" refresh over remote systems. *)

val smount_fs : t -> string -> Hac_vfs.Fs.t -> unit
(** Graft a foreign file system at the directory — a {e syntactic} mount
    point (section 3): paths below it resolve in the foreign system,
    read-only ([EROFS] on mutation), shadowing any local content.  This is
    how coworkers browse each other's classifications by name; combine with
    {!smount} of a {!Hac_remote.Remote_fs} namespace over the same file
    system for content-based access to it. *)

val sumount_fs : t -> string -> unit
(** Detach a syntactic mount (local content reappears). *)

val syntactic_mount_points : t -> string list
(** Paths carrying syntactic mounts, sorted. *)

(** {1 Fault tolerance}

    Remote namespaces fail; HAC degrades rather than breaks.  Wrap a
    namespace with {!Hac_remote.Namespace.with_policy} over this instance's
    {!clock} before mounting it and re-evaluations get bounded retries, a
    per-call deadline and a circuit breaker; when a namespace is unavailable
    anyway, its last-good entries are re-served marked stale (see
    {!Semdir.remote_result}).  See [docs/fault-model.md]. *)

val clock : t -> Hac_fault.Clock.t
(** The instance's virtual wall clock.  Advance it to make time pass for
    backoff delays and breaker probe intervals (nothing ever sleeps). *)

type mount_health = {
  mh_path : string;  (** Mount-point directory. *)
  mh_ns : string;  (** Namespace id. *)
  mh_health : Hac_remote.Namespace.health option;
      (** Live resilience counters; [None] when the namespace was mounted
          without {!Hac_remote.Namespace.with_policy}. *)
}
(** One row of {!mount_status}. *)

val mount_status : t -> mount_health list
(** Health of every mounted namespace, grouped by mount point (sorted). *)

val stale_remotes : t -> string -> Semdir.remote_result list
(** The entries of a semantic directory currently served stale — present
    only because their namespace failed during the last re-evaluation. *)

val remote_failures : t -> int
(** Total failed namespace calls observed during re-evaluations. *)

val stale_serves : t -> int
(** Total last-good entries re-served in place of a failing namespace. *)

(** {1 Incremental maintenance} *)

val result_cache_stats : t -> Rescache.stats
(** Hit/miss/entry/drop counters of the per-directory query-result cache. *)

val reset_result_cache_stats : t -> unit
(** Zero the hit/miss/drop counters (entries are kept). *)

val scope_generation : t -> int
(** Current value of the cache-freshness clock; it advances whenever a
    mutation could change some query's result. *)

(** {1 Observability} *)

val metrics : t -> Hac_obs.Metrics.t
(** The instance's metrics registry.  Every subsystem (planner, search,
    sync, result cache, journal, resilience-wrapped namespaces created
    with this registry) accounts here; see [docs/observability.md] for
    the instrument catalogue. *)

val tracer : t -> Hac_obs.Trace.t
(** The instance's tracer.  Disabled by default; enable it to collect
    nested spans ([hac.settle] > [sync.reindex] / [sync.delta] >
    [query.eval], ...) with virtual-clock timestamps and CPU durations.
    Every finished span also feeds a [span.<name>.cpu_s] histogram in
    {!metrics}. *)

val flight : t -> Hac_obs.Flight.t
(** The instance's flight recorder: an always-on bounded ring of recent
    spans, metric deltas and subsystem transitions, dumped to
    [flight-NNNN.dump] on breach (crash-recovery damage, spec violation,
    SLO breach).  Automatic dumps are off until a directory is set with
    [Hac_obs.Flight.set_auto_dump]. *)

val instr : t -> Instr.t
(** The pre-resolved instrument handles (advanced use: extending the
    core's own instrumentation). *)

(** {1 Accounting} *)

type space = {
  semdir_bytes : int;  (** Link sets, queries, prohibitions. *)
  uidmap_bytes : int;  (** The global identifier map. *)
  depgraph_bytes : int;  (** Dependency edges. *)
  index_bytes : int;  (** The content index. *)
  fs_metadata_bytes : int;  (** The underlying file system's metadata. *)
}
(** Byte-level space report (the paper's 222 KB vs 210 KB comparison). *)

val space : t -> space
(** Measure current space use. *)

val hac_overhead_bytes : space -> int
(** HAC-only structures: semdirs + uidmap + depgraph (excludes the index,
    reported separately in the paper's Table 3). *)

val semdir_count : t -> int
(** Number of semantic directories. *)
