(** Crash recovery from the on-"disk" metadata area.

    The paper's HAC stores every directory's structures on disk (section 4);
    the point of paying that I/O is that the system state survives the
    user-level library going away.  This module rebuilds the semantic state
    of a file system from the metadata HAC persisted into [/.hac]:

    + replay the directory journal ([dirs.log]: created / moved / removed)
      to learn which uids named which paths at shutdown;
    + for every surviving directory with persisted structures, reinstall its
      query, reclassify its physical links (permanent vs transient) and
      restore its prohibitions via {!Hac.restore_semdir};
    + re-evaluate everything.

    Typical use: [let t = Hac.of_fs fs in Recover.reload t]. *)

val reload : Hac.t -> int
(** Restore every recoverable semantic directory; returns how many were
    restored.  Directories whose metadata is missing or whose path no longer
    exists are skipped silently; a directory that is already semantic (e.g.
    restored twice) is skipped too. *)

type journal_report = {
  applied : int;  (** Intact records replayed. *)
  corrupt : int;  (** Lines dropped: checksum missing or wrong (torn write,
                      truncation, bit rot). *)
  malformed : int;  (** Checksum fine but the body didn't parse. *)
}
(** Integrity accounting of one journal replay.  Journal records are sealed
    with a per-line checksum ({!Journal.seal}); replay restores every intact
    record and never raises, whatever the file contains. *)

type reload_report = {
  restored : int;  (** Semantic directories reinstalled. *)
  skipped : int;  (** Recovery-plan entries not restored (already semantic,
                      or unparseable/cyclic after the crash). *)
  journal : journal_report;  (** Journal integrity during this reload. *)
  segments_replayed : int;
      (** Journal segments replayed beyond the checkpoint base — with a
          fresh checkpoint this is at most one (the open segment), however
          long the history before it. *)
  checkpoint_epoch : int option;
      (** Epoch of the checkpoint recovery started from, when one proved
          readable. *)
}

val reload_report : Hac.t -> reload_report
(** Like {!reload} but returns the full accounting — what the shell's
    [srecover -v] prints. *)

val journal_report : Hac.t -> journal_report
(** Verify the directory journal chain (checkpoint base plus every newer
    segment) without restoring anything.  A probe: it does not count toward
    [recover.records_skipped] — only an actual recovery
    ({!reload_report} / {!mount}) does, once per damaged record, however
    many times the chain ends up replayed. *)

val mount :
  ?block_size:int ->
  ?stem:bool ->
  ?transducer:Hac_index.Transducer.t ->
  ?auto_sync:bool ->
  ?reindex_every:int ->
  ?budget:int ->
  Hac_vfs.Fs.t ->
  Hac.t * [ `Fast | `Full ]
(** Bring a tree back up with the storage tier enabled.  [`Fast] is the
    O(delta) path ({!Hac.fast_adopt}): namespace and index skeleton rebuilt
    from the checkpoint's reconstruction images, semantic structures
    restored (live files preferred, checkpoint copies as fallback), then
    one settle over the journaled dirty delta — no document is re-read
    beyond that delta, postings load lazily from the store's segments.
    [`Full] is the fallback oracle — {!Hac.of_fs} + {!reload_report}, then
    {!Hac.enable_store} on a fresh lineage — taken whenever the images
    cannot vouch for the tree (no readable checkpoint, damaged tail
    records, post-checkpoint renames, missing/stale document table or
    manifest).  Sets [store.mount.reconstruct_ms] and counts
    [store.mount.fallbacks]. *)

val replay_journal : string -> (int, string) Hashtbl.t
(** Replay raw journal text to the uid → path map it describes, skipping
    corrupt lines — exposed for tests. *)

val journal_paths : Hac.t -> (int * string) list
(** The uid → path map recovered from the directory journal (after replaying
    moves and removals), sorted by uid — exposed for inspection and tests. *)
