(** The scope- and data-consistency engine (sections 2.3–2.5).

    Scope consistency: for every semantic directory [sd] with parent [p],
    the transient links of [sd] are exactly the files of [p]'s provided
    scope that satisfy [sd]'s query, minus prohibited and permanent targets.
    [resync_dir] re-establishes this for one directory; [sync_from]
    propagates along the dependency DAG in topological order; [sync_all]
    settles the whole file system.

    Data consistency: [reindex] brings the content index up to date with the
    dirty-path set accumulated from file system events. *)

type scope = {
  local : Hac_bitset.Fileset.t;  (** Local indexed documents in scope. *)
  remote : Link.target list;  (** Remote targets inherited via parent links. *)
  mount_uids : int list;  (** Semantic mount points visible in the scope. *)
}
(** What a directory provides to its semantic children. *)

val provided_scope : Ctx.t -> int -> scope
(** The scope provided by a directory (section 2.3): for the root, every
    indexed file; for a syntactic directory, the indexed files of its
    subtree; for a semantic directory, the targets of its present links plus
    the indexed physical files of its subtree.  Mount points anywhere in the
    subtree are visible. *)

val eval_query :
  Ctx.t -> ?restrict_to:Hac_bitset.Fileset.t -> Hac_query.Ast.t -> Hac_bitset.Fileset.t
(** Evaluate a query against the local index with directory references
    resolved through {!provided_scope}.  [?restrict_to] evaluates only over
    the given documents (candidate expansion and content verification stay
    inside the set); without it no scope restriction is applied. *)

val render_for : Hac_remote.Namespace.lang -> Hac_query.Ast.t -> string list
(** Query strings to submit to a namespace speaking the given language.  For
    [Keywords] this is a union of conjunctive keyword queries (one per OR
    branch); an empty string means "enumerate everything" ([*]). *)

val meta_root : string
(** ["/.hac"] — the directory where HAC persists its per-directory
    structures inside the file system, as the paper's implementation writes
    them to disk.  Everything below it is invisible to indexing and scopes. *)

val meta_files : int -> string list
(** Paths of a directory's structure files ([sd-<uid>.query/.links/.proh/
    .result]) under {!meta_root}, by uid. *)

val persist_semdir : Ctx.t -> Semdir.t -> unit
(** Write a semantic directory's structures (query, link sets, prohibitions
    and the paper's N/8-byte result bitmap) to its metadata file.  Performed
    after every re-evaluation, mirroring the paper's disk I/O. *)

val unpersist_semdir : Ctx.t -> int -> unit
(** Remove the metadata file of a (removed) directory, by uid. *)

val fetch_remote :
  ?on_failure:(string -> string -> unit) ->
  Ctx.t ->
  ns_id:string ->
  uri:string ->
  string option
(** Contents of a remote entry: ask the namespace registered under [ns_id]
    first, then fall back to every registered namespace (uri schemes don't
    reliably encode the namespace identifier).  A namespace raising —
    typically {!Hac_remote.Namespace.Unavailable} — is reported as
    [on_failure ns_id reason] (default: ignored) and treated as having no
    content; the exception never escapes. *)

val materialize : Ctx.t -> Semdir.t -> unit
(** Expand a directory's stored transient result (the bitmap) into physical
    symbolic links.  Idempotent; happens lazily on first access through HAC.
    Once materialised, {!resync_dir} keeps the physical links consistent. *)

val resync_dir : Ctx.t -> int -> bool
(** Re-evaluate one semantic directory against its parent's current scope,
    updating its physical transient links.  Permanent and prohibited sets
    are never modified.  Returns whether the transient set changed.  No-op
    ([false]) on syntactic directories. *)

val sync_from : ?pool:Hac_par.Pool.t -> Ctx.t -> int -> unit
(** [resync_dir] on the directory, then on every directory that directly or
    indirectly depends on it, in topological order.  With a [pool] of size
    > 1, the affected directories are processed level by level
    ({!Hac_depgraph.Depgraph.levels_of}): each level's query evaluations run
    concurrently on the pool against the frozen index, then their results
    are applied sequentially — the outcome is identical to the sequential
    walk. *)

val sync_all : ?pool:Hac_par.Pool.t -> Ctx.t -> unit
(** Re-evaluate every semantic directory, dependencies first.  [?pool] as in
    {!sync_from}. *)

type delta = {
  touched : Hac_bitset.Fileset.t;
      (** Documents added or whose content was reindexed. *)
  removed : Hac_bitset.Fileset.t;
      (** Documents dropped from the index (deleted or unreadable). *)
}
(** What one {!reindex_with_delta} changed — the input to {!sync_delta}. *)

val empty_delta : delta

val reindex : Ctx.t -> ?under:string -> unit -> int
(** Settle data consistency for the dirty paths (optionally only those below
    [under]): update or drop their index entries.  Returns the number of
    paths processed.  Does {e not} re-evaluate queries — callers typically
    follow with {!sync_delta} (via {!reindex_with_delta}) or {!sync_all}. *)

val reindex_with_delta : Ctx.t -> ?under:string -> unit -> int * delta
(** {!reindex}, also returning which documents it touched or removed. *)

val sync_delta : ?pool:Hac_par.Pool.t -> Ctx.t -> delta -> unit
(** Incremental scope maintenance: restore the scope invariant after a
    content-only change described by the delta.  Walks directories in
    dependency order but re-evaluates each query {e only over the delta
    documents in its parent scope}, patching the transient-link set — the
    settle after [k] changed files costs O(k × affected dirs) instead of
    O(all docs × all dirs).  Remote results are left as they are (remote
    membership does not depend on local contents).  When
    {!Ctx.t.needs_full_sync} is set (a structural event happened), clears it
    and falls back to {!sync_all}; both paths reach the same fixpoint. *)

val parent_uid : Ctx.t -> int -> int option
(** UID of the parent directory ([None] for the root or unknown uids). *)

val recompute_deps : Ctx.t -> Semdir.t -> (unit, int list) result
(** Reinstall the dependency edges of a semantic directory: its parent plus
    every directory its query references.  [Error cycle] when the query
    would create a dependency cycle (graph unchanged). *)
