(* Crash-safe journal records: each line carries a checksum of its body so
   replay can tell a real record from a torn or corrupted one. *)

module Fs = Hac_vfs.Fs
module Vpath = Hac_vfs.Vpath
module Image = Hac_vfs.Image

let checksum = Seal.checksum
let seal = Seal.seal

type line = Seal.line = Valid of string | Corrupt of string | Blank

let parse = Seal.parse

(* -- record replay ---------------------------------------------------------

   Journal record grammar (one sealed line each):
     D <uid> <path>     directory created (or known, in a consolidated log)
     M <uid> <path>     directory (and hence its subtree) moved here
     S <uid>            directory became semantic
     X <uid>            directory removed
     F <path>           file content changed since the last settle
   Replaying yields the uid -> path map plus the set of uids that were
   semantic, as of the last intact record.  Corrupt and malformed lines are
   counted and skipped — every intact record still applies. *)

type replay = {
  map : (int, string) Hashtbl.t;
  sem : (int, unit) Hashtbl.t;
  files : (string, unit) Hashtbl.t;
  mutable applied : int;
  mutable corrupt : int;
  mutable malformed : int;
  mutable seg_applied : int;
  mutable moved : int;
  mutable seg_moved : int;
}

let replay_create () =
  {
    map = Hashtbl.create 64;
    sem = Hashtbl.create 16;
    files = Hashtbl.create 16;
    applied = 0;
    corrupt = 0;
    malformed = 0;
    seg_applied = 0;
    moved = 0;
    seg_moved = 0;
  }

let replay_text r text =
  let apply_move uid new_path =
    match Hashtbl.find_opt r.map uid with
    | None -> Hashtbl.replace r.map uid new_path
    | Some old_path ->
        (* The move carries the whole registered subtree along. *)
        Hashtbl.iter
          (fun u p ->
            match Vpath.replace_prefix ~prefix:old_path ~by:new_path p with
            | Some p' when Vpath.is_prefix ~prefix:old_path p ->
                Hashtbl.replace r.map u p'
            | Some _ | None -> ())
          (Hashtbl.copy r.map)
  in
  (* Paths may contain spaces: D and M both take everything after the uid
     as the path (rest-concat), never a fixed arity. *)
  let handle_body body =
    match String.split_on_char ' ' (String.trim body) with
    | "D" :: uid :: rest when rest <> [] -> (
        match int_of_string_opt uid with
        | Some uid ->
            r.applied <- r.applied + 1;
            Hashtbl.replace r.map uid (String.concat " " rest)
        | None -> r.malformed <- r.malformed + 1)
    | "M" :: uid :: rest when rest <> [] -> (
        match int_of_string_opt uid with
        | Some uid ->
            r.applied <- r.applied + 1;
            r.moved <- r.moved + 1;
            apply_move uid (String.concat " " rest)
        | None -> r.malformed <- r.malformed + 1)
    | "F" :: rest when rest <> [] ->
        r.applied <- r.applied + 1;
        Hashtbl.replace r.files (String.concat " " rest) ()
    | [ "S"; uid ] -> (
        match int_of_string_opt uid with
        | Some uid ->
            r.applied <- r.applied + 1;
            Hashtbl.replace r.sem uid ()
        | None -> r.malformed <- r.malformed + 1)
    | [ "X"; uid ] -> (
        match int_of_string_opt uid with
        | Some uid ->
            r.applied <- r.applied + 1;
            r.moved <- r.moved + 1;
            Hashtbl.remove r.map uid;
            Hashtbl.remove r.sem uid
        | None -> r.malformed <- r.malformed + 1)
    | _ -> r.malformed <- r.malformed + 1
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         match parse line with
         | Valid body -> handle_body body
         | Corrupt _ -> r.corrupt <- r.corrupt + 1
         | Blank -> ())

let semantic_entries r =
  Hashtbl.fold
    (fun uid () acc ->
      match Hashtbl.find_opt r.map uid with
      | Some path -> (uid, path) :: acc
      | None -> acc)
    r.sem []
  |> List.sort compare

(* -- segments, checkpoints, epochs ----------------------------------------

   The journal is a chain of epoch-stamped files under the metadata area:

     dirs.log          segment, epoch 0 (the historical name)
     seg-NNNNNN.log    segment, epoch NNNNNN >= 1
     ckpt-NNNNNN.img   checkpoint covering every epoch <= NNNNNN
     ckpt.tmp          checkpoint being written (not yet committed)

   A checkpoint is published atomically (write ckpt.tmp, fsync, rename,
   fsync), after which appends move to the next epoch's segment.  Recovery
   starts from the newest checkpoint that proves readable and replays only
   the segments newer than it; compaction deletes what the checkpoint
   supersedes. *)

let meta_root = Sync.meta_root

let segment_name epoch =
  if epoch = 0 then "dirs.log" else Printf.sprintf "seg-%06d.log" epoch

let segment_path epoch = meta_root ^ "/" ^ segment_name epoch

let checkpoint_name epoch = Printf.sprintf "ckpt-%06d.img" epoch

let checkpoint_path epoch = meta_root ^ "/" ^ checkpoint_name epoch

let checkpoint_tmp = meta_root ^ "/ckpt.tmp"

type file_class = Segment of int | Checkpoint of int | Other

(* Epoch numbers are zero-padded to six digits but not bounded by them:
   epoch 10^6 writes [seg-1000000.log], one character longer.  Parse the
   digit run between prefix and suffix whatever its width — and compare
   epochs numerically, never file names lexicographically (where
   [seg-1000000.log] would sort {e before} [seg-999999.log] and a scan
   keyed on names would replay the chain out of order). *)
let parse_epoch name ~prefix ~suffix =
  let pl = String.length prefix
  and sl = String.length suffix
  and nl = String.length name in
  if
    nl > pl + sl
    && String.sub name 0 pl = prefix
    && String.sub name (nl - sl) sl = suffix
  then
    let mid = String.sub name pl (nl - pl - sl) in
    if String.for_all (fun c -> c >= '0' && c <= '9') mid then
      int_of_string_opt mid (* None on int overflow *)
    else None
  else None

let classify name =
  if name = "dirs.log" then Segment 0
  else
    match parse_epoch name ~prefix:"seg-" ~suffix:".log" with
    | Some e when e > 0 -> Segment e
    | Some _ -> Other
    | None -> (
        match parse_epoch name ~prefix:"ckpt-" ~suffix:".img" with
        | Some e -> Checkpoint e
        | None -> Other)

let sd_uid_of_name name =
  (* "sd-<uid>.<suffix>" — per-directory structure files. *)
  if String.length name > 3 && String.sub name 0 3 = "sd-" then
    match String.index_opt name '.' with
    | Some dot when dot > 3 -> int_of_string_opt (String.sub name 3 (dot - 3))
    | _ -> None
  else None

let scan fs =
  let names = if Fs.is_dir fs meta_root then Fs.readdir fs meta_root else [] in
  let segs, ckpts =
    List.fold_left
      (fun (segs, ckpts) name ->
        match classify name with
        | Segment e -> ((e, meta_root ^ "/" ^ name) :: segs, ckpts)
        | Checkpoint e -> (segs, (e, meta_root ^ "/" ^ name) :: ckpts)
        | Other -> (segs, ckpts))
      ([], []) names
  in
  (List.sort compare segs, List.sort compare ckpts)

let current_epoch fs =
  let segs, ckpts = scan fs in
  let top = List.fold_left (fun m (e, _) -> max m e) 0 segs in
  List.fold_left (fun m (e, _) -> max m (e + 1)) top ckpts

(* -- checkpoint blobs ------------------------------------------------------

   A checkpoint file is an {!Hac_vfs.Image} dump wrapped in a one-line
   header carrying the payload length and checksum, so a torn or rotted
   checkpoint is detected as a unit (all-or-nothing) before any of it is
   believed. *)

let seal_blob = Seal.seal_blob
let open_blob = Seal.open_blob

let read_opt fs path =
  try Some (Fs.read_file fs path) with Hac_vfs.Errno.Error _ -> None

let load_checkpoint fs path =
  match read_opt fs path with
  | None -> Error "unreadable checkpoint"
  | Some data -> ( match open_blob data with Error _ as e -> e | Ok p -> Image.load p)

(* -- the chain: what recovery reads ---------------------------------------- *)

type chain = {
  checkpoint : (int * Fs.t) option;
  invalid_checkpoints : int;
  segments : (int * string) list;
  skipped_segments : int;
}

let read_chain fs =
  let segs, ckpts = scan fs in
  let checkpoint, invalid =
    List.fold_left
      (fun (best, bad) (e, p) ->
        match load_checkpoint fs p with
        | Ok img -> (Some (e, img), bad)
        | Error _ -> (best, bad + 1))
      (None, 0) ckpts
  in
  let cutoff = match checkpoint with None -> -1 | Some (e, _) -> e in
  let post, pre = List.partition (fun (e, _) -> e > cutoff) segs in
  {
    checkpoint;
    invalid_checkpoints = invalid;
    segments = List.filter_map (fun (e, p) -> Option.map (fun t -> (e, t)) (read_opt fs p)) post;
    skipped_segments = List.length pre;
  }

let replay_chain chain =
  let r = replay_create () in
  (match chain.checkpoint with
  | None -> ()
  | Some (_, img) -> (
      match read_opt img "/dirs.log" with
      | Some text -> replay_text r text
      | None -> ()));
  let base = r.applied and base_moved = r.moved in
  List.iter (fun (_, text) -> replay_text r text) chain.segments;
  r.seg_applied <- r.applied - base;
  r.seg_moved <- r.moved - base_moved;
  r

(* Highest uid any on-disk metadata mentions — consolidated or not, live
   structure files included — so a recovering instance can allocate its own
   uids strictly above everything a previous life left behind. *)
let max_uid fs =
  let best = ref 0 in
  let see u = if u > !best then best := u in
  let scan_text text =
    String.split_on_char '\n' text
    |> List.iter (fun line ->
           match parse line with
           | Valid body -> (
               match String.split_on_char ' ' (String.trim body) with
               | ("D" | "M" | "S" | "X") :: uid :: _ -> (
                   match int_of_string_opt uid with Some u -> see u | None -> ())
               | _ -> ())
           | Corrupt _ | Blank -> ())
  in
  let segs, _ = scan fs in
  List.iter (fun (_, p) -> Option.iter scan_text (read_opt fs p)) segs;
  (match (read_chain fs).checkpoint with
  | Some (_, img) -> Option.iter scan_text (read_opt img "/dirs.log")
  | None -> ());
  (if Fs.is_dir fs meta_root then
     List.iter (fun name -> Option.iter see (sd_uid_of_name name)) (Fs.readdir fs meta_root));
  !best
