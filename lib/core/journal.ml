(* Crash-safe journal records: each line carries a checksum of its body so
   replay can tell a real record from a torn or corrupted one. *)

let checksum body =
  (* FNV-1a over the body, truncated to 32 bits — cheap, dependency-free and
     more than enough to catch torn writes and bit rot in a line-oriented
     log.  Not a defence against an adversary. *)
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF)
    body;
  !h

let hex_len = 8

(* "body #hhhhhhhh": the suffix is fixed-width so bodies may contain '#'. *)
let suffix_len = hex_len + 2

let seal body = Printf.sprintf "%s #%08x" body (checksum body)

type line = Valid of string | Corrupt of string | Blank

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let parse line =
  let n = String.length line in
  if String.trim line = "" then Blank
  else if n > suffix_len && line.[n - suffix_len] = ' ' && line.[n - suffix_len + 1] = '#'
  then begin
    let body = String.sub line 0 (n - suffix_len) in
    let hex = String.sub line (n - hex_len) hex_len in
    if
      String.for_all is_hex hex
      && int_of_string_opt ("0x" ^ hex) = Some (checksum body)
    then Valid body
    else Corrupt line
  end
  else Corrupt line
