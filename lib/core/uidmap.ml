module Vpath = Hac_vfs.Vpath

type t = {
  by_path : (string, int) Hashtbl.t;
  by_uid : (int, string) Hashtbl.t;
  mutable next : int;
}

let root_uid = 0

let create () =
  let t = { by_path = Hashtbl.create 256; by_uid = Hashtbl.create 256; next = 1 } in
  Hashtbl.replace t.by_path Vpath.root root_uid;
  Hashtbl.replace t.by_uid root_uid Vpath.root;
  t

let reserve t n = if n >= t.next then t.next <- n + 1

let register t path =
  let path = Vpath.normalize path in
  match Hashtbl.find_opt t.by_path path with
  | Some uid -> uid
  | None ->
      let uid = t.next in
      t.next <- t.next + 1;
      Hashtbl.replace t.by_path path uid;
      Hashtbl.replace t.by_uid uid path;
      uid

let adopt t uid path =
  if uid < 0 then invalid_arg "Uidmap.adopt: negative uid";
  let path = Vpath.normalize path in
  (match Hashtbl.find_opt t.by_path path with
  | Some old when old <> uid -> Hashtbl.remove t.by_uid old
  | _ -> ());
  (match Hashtbl.find_opt t.by_uid uid with
  | Some old_path when old_path <> path -> Hashtbl.remove t.by_path old_path
  | _ -> ());
  Hashtbl.replace t.by_path path uid;
  Hashtbl.replace t.by_uid uid path;
  reserve t uid

let uid_of_path t path = Hashtbl.find_opt t.by_path (Vpath.normalize path)

let path_of_uid t uid = Hashtbl.find_opt t.by_uid uid

let subtree_entries t prefix =
  Hashtbl.fold
    (fun path uid acc -> if Vpath.is_prefix ~prefix path then (path, uid) :: acc else acc)
    t.by_path []

let rename t ~old_path ~new_path =
  let old_path = Vpath.normalize old_path and new_path = Vpath.normalize new_path in
  let moved = subtree_entries t old_path in
  List.iter
    (fun (path, uid) ->
      match Vpath.replace_prefix ~prefix:old_path ~by:new_path path with
      | None -> ()
      | Some path' ->
          Hashtbl.remove t.by_path path;
          Hashtbl.replace t.by_path path' uid;
          Hashtbl.replace t.by_uid uid path')
    moved

let remove t path =
  let path = Vpath.normalize path in
  match Hashtbl.find_opt t.by_path path with
  | None -> None
  | Some uid ->
      Hashtbl.remove t.by_path path;
      Hashtbl.remove t.by_uid uid;
      Some uid

let remove_subtree t path =
  let entries = subtree_entries t (Vpath.normalize path) in
  List.filter_map (fun (p, _) -> remove t p) entries

let fold f t init = Hashtbl.fold (fun path uid acc -> f uid path acc) t.by_path init

let count t = Hashtbl.length t.by_path

let approx_bytes t =
  let word = Sys.int_size / 8 + 1 in
  Hashtbl.fold
    (fun path _ acc -> acc + (2 * (String.length path + (3 * word))))
    t.by_path 0
